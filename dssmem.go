// Package dssmem reproduces, as an execution-driven simulation study, the
// IPPS 2002 paper "Comparing the Memory System Performance of DSS Workloads
// on the HP V-Class and SGI Origin 2000" (Yu, Bhuyan, Iyer).
//
// The library models both multiprocessors (caches, directory coherence with
// the V-Class migratory enhancement and the Origin speculative reply,
// crossbar vs. hypercube interconnects), a miniature PostgreSQL-style DBMS
// whose every memory reference drives the machine model, the TPC-H subset
// the paper used (Q6, Q21, Q12 over generated data), and a simulated OS
// (time slices, select() back-off). The experiments layer regenerates every
// figure of the paper's evaluation.
//
// Quick start:
//
//	data := dssmem.GenerateData(0.004, 42)
//	st, err := dssmem.Run(dssmem.RunOptions{
//	    Spec:      dssmem.VClass(16, 64),
//	    Data:      data,
//	    Query:     dssmem.Q6,
//	    Processes: 4,
//	})
//	m := dssmem.Measure(st)
//	fmt.Println(m.CPI, m.L1MissesPerM)
//
// See the examples/ directory and cmd/dssbench for complete programs.
package dssmem

import (
	"context"
	"io"

	"dssmem/internal/core"
	"dssmem/internal/experiments"
	"dssmem/internal/machine"
	"dssmem/internal/obs"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Re-exported types: machine description and run plumbing.
type (
	// MachineSpec fully describes a simulated multiprocessor.
	MachineSpec = machine.Spec
	// RunOptions configures one workload run.
	RunOptions = workload.Options
	// RunStats is the raw outcome of a run.
	RunStats = workload.Stats
	// Measurement is one experimental cell in the paper's metrics.
	Measurement = core.Measurement
	// Series is one machine/query curve over process counts.
	Series = core.Series
	// Data is a generated TPC-H database image.
	Data = tpch.Data
	// QueryID selects one of the studied queries.
	QueryID = tpch.QueryID
	// QueryResult is a query answer.
	QueryResult = tpch.Result
	// Preset bundles database and machine scaling.
	Preset = experiments.Preset
	// Env is a reusable experiment environment.
	Env = experiments.Env
	// FigureResult is one regenerated figure or ablation.
	FigureResult = experiments.Result
	// ObsConfig selects the observability pillars of an Observer.
	ObsConfig = obs.Config
	// Observer collects interval counter samples, the protocol event trace
	// and per-operator attribution for one run (RunOptions.Obs).
	Observer = obs.Observer
	// ObsSample is one closed counter-sampling window.
	ObsSample = obs.Sample
	// ObsEvent is one timestamped trace event.
	ObsEvent = obs.Event
	// OpStats aggregates one query-plan operator's attribution.
	OpStats = obs.OpStats
	// SampleEstimate summarizes one CPU's SMARTS interval-sampling quality
	// (RunStats.Sampling): detailed vs fast-forwarded volume and CI95
	// half-widths of the key per-window rates.
	SampleEstimate = obs.SampleEstimate
	// RunTally accumulates host-side run accounting (runs, checkpoint
	// restores, warmup vs measured wall time) across an Env's measurements.
	RunTally = experiments.RunTally
)

// The three queries the paper studies, plus the Q1 extension.
const (
	Q6  = tpch.Q6
	Q21 = tpch.Q21
	Q12 = tpch.Q12
	// Q1 is an extension beyond the paper's workload (see internal/tpch/q1.go).
	Q1 = tpch.Q1
)

// Queries lists the paper's three queries in its order.
var Queries = tpch.AllQueries

// ExtendedQueries adds the extension queries.
var ExtendedQueries = tpch.ExtendedQueries

// Experiment presets (see DESIGN.md §4 for the scaling rule).
var (
	PresetTiny   = experiments.Tiny
	PresetSmall  = experiments.Small
	PresetMedium = experiments.Medium
)

// VClass returns the HP V-Class model (cpus ≤ 16; memScale divides cache
// capacities, 1 = full size).
func VClass(cpus, memScale int) MachineSpec { return machine.VClassSpec(cpus, memScale) }

// Origin returns the SGI Origin 2000 model (cpus ≤ 32).
func Origin(cpus, memScale int) MachineSpec { return machine.OriginSpec(cpus, memScale) }

// Starfire returns the Sun E10000-style extension platform (cpus ≤ 64).
func Starfire(cpus, memScale int) MachineSpec { return machine.StarfireSpec(cpus, memScale) }

// NewMachineSpec is the hook for custom machines: start from one of the two
// platform specs and adjust fields, or build a Spec from scratch (see
// examples/custom-machine).
func NewMachineSpec() MachineSpec { return MachineSpec{} }

// GenerateData builds the deterministic TPC-H subset at the given scale
// factor (1.0 = 1.5M orders; the paper's 200 MB database is ≈ 0.3).
func GenerateData(sf float64, seed uint64) *Data { return tpch.Generate(sf, seed) }

// Run executes one configuration, validating every process's query answer
// against the reference implementation.
func Run(opts RunOptions) (*RunStats, error) { return workload.Run(opts) }

// RunContext is Run with cancellation: when ctx ends, the simulation aborts
// at its next scheduling-quantum boundary (cmd/dssmemd is built on this).
func RunContext(ctx context.Context, opts RunOptions) (*RunStats, error) {
	return workload.RunContext(ctx, opts)
}

// RunTrials repeats a configuration n times with perturbed OS jitter (the
// paper's four averaged trials), fanning the independent trials out across
// host cores while preserving per-trial seeds and result order.
func RunTrials(opts RunOptions, n int) ([]*RunStats, error) { return workload.RunTrials(opts, n) }

// Measure converts run stats into the paper's metrics.
func Measure(st *RunStats) Measurement { return core.FromStats(st) }

// ReferenceAnswer computes a query's answer directly over the raw data.
func ReferenceAnswer(q QueryID, d *Data) *QueryResult { return tpch.Ref(q, d) }

// NewEnv creates an experiment environment (generates the preset's database).
func NewEnv(p Preset) *Env { return experiments.NewEnv(p) }

// PresetByName resolves "tiny", "small" or "medium".
func PresetByName(name string) (Preset, error) { return experiments.PresetByName(name) }

// RunFigure regenerates one of the paper's figures (2..10), writing the
// table to w (which may be nil).
func RunFigure(e *Env, id int, w io.Writer) (*FigureResult, error) {
	return experiments.RunFigure(e, id, w)
}

// RunAblation runs one named ablation (see AblationNames).
func RunAblation(e *Env, name string, w io.Writer) (*FigureResult, error) {
	return experiments.RunAblation(e, name, w)
}

// FigureIDs lists the available figures.
func FigureIDs() []int { return experiments.FigureIDs() }

// AblationNames lists the available ablations.
func AblationNames() []string { return experiments.AblationNames() }

// AttachWarm attaches a warm-state checkpoint to opts from the cache
// directory at dir: opts.Data and opts.Warm are populated so the run skips
// dataset generation (on a hit) and the warmup prelude entirely. On a miss
// the warm state is captured once and persisted for next time. The returned
// bool reports a cache hit. Restored runs are byte-identical to cold-started
// ones (see DESIGN.md §15).
func AttachWarm(ctx context.Context, dir string, sf float64, seed uint64, opts *RunOptions) (bool, error) {
	return experiments.WarmAttach(ctx, dir, sf, seed, opts)
}

// SamplingAccuracy cross-checks SMARTS interval sampling against exact
// simulation on the accuracy gate's figure metrics (see internal/experiments).
func SamplingAccuracy(e *Env, sampleQuanta int, tol float64) ([]experiments.AccuracyPoint, error) {
	return experiments.SamplingAccuracy(e, sampleQuanta, tol)
}

// NewObserver creates an observability collector. Attach it to a run via
// RunOptions.Obs; after the run, export with the Observer's WriteTrace
// (Chrome trace-event JSON for Perfetto), WriteSamplesCSV/WriteSamplesJSON
// (per-window counter time series), WriteOpsTable (per-operator
// attribution) and WriteSummary (terminal sparklines) methods.
func NewObserver(cfg ObsConfig) *Observer { return obs.New(cfg) }
