package memsys

import (
	"testing"
	"testing/quick"
)

func TestPrivateRegionsDisjoint(t *testing.T) {
	for pid := 0; pid < 32; pid++ {
		base := PrivateBase(pid)
		gotPid, ok := IsPrivate(base)
		if !ok || gotPid != pid {
			t.Fatalf("IsPrivate(PrivateBase(%d)) = %d,%v", pid, gotPid, ok)
		}
		end := base + privateSpan - 1
		gotPid, ok = IsPrivate(end)
		if !ok || gotPid != pid {
			t.Fatalf("last private byte of %d maps to %d,%v", pid, gotPid, ok)
		}
	}
}

func TestSharedIsNotPrivate(t *testing.T) {
	for _, a := range []Addr{0, SharedBase + 100, privateBase - 1} {
		if _, ok := IsPrivate(a); ok {
			t.Fatalf("addr %#x classified private", a)
		}
	}
}

func TestAllocatorSequentialAndAligned(t *testing.T) {
	a := NewAllocator("t", 1000, 10000)
	x := a.Alloc(10, 0)
	if x != 1000 {
		t.Fatalf("first alloc at %d", x)
	}
	y := a.Alloc(4, 64)
	if y%64 != 0 || y < x+10 {
		t.Fatalf("aligned alloc at %d", y)
	}
	if a.Used() == 0 || a.Base() != 1000 {
		t.Fatalf("bookkeeping broken: used=%d base=%d", a.Used(), a.Base())
	}
}

func TestAllocatorExhaustionPanics(t *testing.T) {
	a := NewAllocator("t", 0, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	a.Alloc(17, 0)
}

func TestInterleavedPlacement(t *testing.T) {
	iv := Interleaved{N: 8, Unit: 32}
	counts := make([]int, 8)
	for i := 0; i < 8*32*10; i += 32 {
		counts[iv.Home(Addr(i))]++
	}
	for n, c := range counts {
		if c != 10 {
			t.Fatalf("node %d got %d units, want 10", n, c)
		}
	}
	if iv.Nodes() != 8 {
		t.Fatalf("Nodes() = %d", iv.Nodes())
	}
}

func TestConcentratedPlacement(t *testing.T) {
	c := Concentrated{NodesTotal: 16, SharedNodes: 2, OwnerNode: func(pid int) int { return pid / 2 }}
	// Shared pages only ever land on nodes 0 and 1.
	for p := 0; p < 100; p++ {
		h := c.Home(Addr(p * PageSize))
		if h != 0 && h != 1 {
			t.Fatalf("shared page %d homed at %d", p, h)
		}
	}
	// Private pages land on the owner's node.
	for pid := 0; pid < 8; pid++ {
		if h := c.Home(PrivateBase(pid) + 123); h != pid/2 {
			t.Fatalf("private page of %d homed at %d, want %d", pid, h, pid/2)
		}
	}
}

func TestConcentratedDefaults(t *testing.T) {
	c := Concentrated{NodesTotal: 4}
	if h := c.Home(Addr(5 * PageSize)); h != 0 {
		t.Fatalf("SharedNodes=0 should pin to node 0, got %d", h)
	}
	if h := c.Home(PrivateBase(9)); h != 9%4 {
		t.Fatalf("nil OwnerNode fallback: got %d", h)
	}
}

// Property: every address has exactly one home and it is within range.
func TestPlacementTotality(t *testing.T) {
	iv := Interleaved{N: 8, Unit: 128}
	con := Concentrated{NodesTotal: 16, SharedNodes: 2}
	f := func(a uint64) bool {
		h1 := iv.Home(Addr(a))
		h2 := con.Home(Addr(a))
		return h1 >= 0 && h1 < 8 && h2 >= 0 && h2 < 16
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: allocations never overlap.
func TestAllocatorNoOverlap(t *testing.T) {
	f := func(sizes []uint8) bool {
		a := NewAllocator("t", 4096, 1<<20)
		var prevEnd Addr
		for _, s := range sizes {
			sz := uint64(s) + 1
			base := a.Alloc(sz, 8)
			if base < prevEnd {
				return false
			}
			prevEnd = base + Addr(sz)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
