// Package memsys models the simulated physical address space shared by the
// processes of a workload: a single large shared region (the DBMS shared
// memory: buffer pool, lock tables, catalog) plus one private region per
// process (executor state, sort/hash areas).
//
// Addresses are plain uint64 byte addresses. The package also implements
// page-to-home-node placement policies for ccNUMA machines; UMA machines
// interleave lines across memory controllers instead.
package memsys

// Addr is a simulated physical byte address.
type Addr uint64

// PageShift/PageSize define the OS page granularity used for NUMA placement.
const (
	PageShift = 12
	PageSize  = 1 << PageShift // 4 KiB
)

// Region bases. Private regions are disjoint per process so that cross-process
// false sharing can only happen in the shared region, as on the real machines.
const (
	SharedBase  Addr = 0x0000_0000_0000
	privateBase Addr = 0x1000_0000_0000
	privateSpan Addr = 0x0000_1000_0000 // 4 GiB of private space per process
)

// PrivateBase returns the base address of process pid's private region.
func PrivateBase(pid int) Addr {
	return privateBase + Addr(pid)*privateSpan
}

// IsPrivate reports whether addr falls in any private region, and if so whose.
func IsPrivate(addr Addr) (pid int, ok bool) {
	if addr < privateBase {
		return 0, false
	}
	return int((addr - privateBase) / privateSpan), true
}

// Page returns the page number containing addr.
func Page(addr Addr) uint64 { return uint64(addr) >> PageShift }

// Allocator hands out non-overlapping chunks of one region. The zero value is
// not usable; construct with NewAllocator.
type Allocator struct {
	base  Addr
	next  Addr
	limit Addr
	name  string
}

// NewAllocator returns a bump allocator over [base, base+size).
func NewAllocator(name string, base Addr, size uint64) *Allocator {
	return &Allocator{base: base, next: base, limit: base + Addr(size), name: name}
}

// Alloc reserves size bytes aligned to align (a power of two; 0 or 1 means
// unaligned) and returns the base address. It panics on exhaustion: the
// simulated regions are sized by the harness, so exhaustion is a setup bug.
func (a *Allocator) Alloc(size uint64, align uint64) Addr {
	if align > 1 {
		mask := Addr(align - 1)
		a.next = (a.next + mask) &^ mask
	}
	base := a.next
	a.next += Addr(size)
	if a.next > a.limit {
		panic("memsys: region " + a.name + " exhausted")
	}
	return base
}

// Used reports the number of bytes consumed so far, including alignment
// padding.
func (a *Allocator) Used() uint64 { return uint64(a.next - a.base) }

// Base returns the region base address.
func (a *Allocator) Base() Addr { return a.base }

// Placement maps pages to home memory nodes/controllers.
type Placement interface {
	// Home returns the memory node that owns addr.
	Home(addr Addr) int
	// Nodes returns the number of memory nodes.
	Nodes() int
}

// Interleaved spreads consecutive lines (or pages) round-robin over n
// controllers. Used for the V-Class UMA memory system, where the hyperplane
// crossbar gives every processor uniform access to 8 interleaved EMACs.
type Interleaved struct {
	N    int
	Unit uint64 // interleave granularity in bytes (e.g. a cache line)
}

// Home implements Placement.
func (iv Interleaved) Home(addr Addr) int {
	u := iv.Unit
	if u == 0 {
		u = 64
	}
	return int((uint64(addr) / u) % uint64(iv.N))
}

// Nodes implements Placement.
func (iv Interleaved) Nodes() int { return iv.N }

// Concentrated places all *shared* pages on the first K nodes (round-robin
// among them) and private pages on their owner's node. This mirrors the
// paper's observation that on the Origin 2000 "shared memory requests from
// different processors are routed to the same node or a couple of different
// nodes which hold the shared memory for the DBMS".
type Concentrated struct {
	NodesTotal  int
	SharedNodes int               // K nodes that hold the DBMS shared memory
	OwnerNode   func(pid int) int // node of a process's CPU, for private pages
}

// Home implements Placement.
func (c Concentrated) Home(addr Addr) int {
	if pid, ok := IsPrivate(addr); ok {
		if c.OwnerNode != nil {
			return c.OwnerNode(pid) % c.NodesTotal
		}
		return pid % c.NodesTotal
	}
	k := c.SharedNodes
	if k <= 0 {
		k = 1
	}
	return int(Page(addr) % uint64(k))
}

// Nodes implements Placement.
func (c Concentrated) Nodes() int { return c.NodesTotal }
