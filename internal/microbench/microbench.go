// Package microbench implements the microbenchmarks of Iyer et al. [4] (the
// authors' earlier V-Class/Origin study) against the simulated machines:
// dependent-load latency, streaming bandwidth, and lock ping-pong. They
// calibrate and sanity-check the machine models — e.g. that remote dirty
// misses cost more on the Origin, and that the V-Class crossbar is uniform.
package microbench

import (
	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/simos"
	"dssmem/internal/tpch"
)

// LatencyResult reports a pointer-chase experiment.
type LatencyResult struct {
	Machine        string
	WorkingSet     int
	AvgCycles      float64 // per dependent load
	AvgNanoseconds float64
}

// Latency measures average dependent-load latency over a working set of the
// given size in the shared region (cold caches, stride one line).
func Latency(spec machine.Spec, workingSet int, iters int) LatencyResult {
	m := machine.New(spec)
	osys := simos.New(m, simos.DefaultConfig(spec.ClockMHz), 0)
	line := spec.L1.LineSize
	lines := workingSet / line
	if lines < 1 {
		lines = 1
	}
	osys.Spawn(0, func(p *simos.Process) {
		for i := 0; i < iters; i++ {
			addr := memsys.SharedBase + memsys.Addr((i%lines)*line)
			p.Load(addr, 8)
		}
	})
	if err := osys.Run(); err != nil {
		panic(err) // no user input: a failure is a model bug
	}
	ct := m.Counters(0)
	avg := float64(ct.Cycles) / float64(iters)
	return LatencyResult{
		Machine:        spec.Name,
		WorkingSet:     workingSet,
		AvgCycles:      avg,
		AvgNanoseconds: avg * 1000 / float64(spec.ClockMHz),
	}
}

// BandwidthResult reports a streaming-read experiment.
type BandwidthResult struct {
	Machine       string
	BytesPerCycle float64
	MBPerSecond   float64
}

// Bandwidth streams bytes sequentially through one CPU and reports the
// achieved read bandwidth.
func Bandwidth(spec machine.Spec, bytes int) BandwidthResult {
	m := machine.New(spec)
	osys := simos.New(m, simos.DefaultConfig(spec.ClockMHz), 0)
	osys.Spawn(0, func(p *simos.Process) {
		for off := 0; off < bytes; off += 8 {
			p.Load(memsys.SharedBase+memsys.Addr(off), 8)
		}
	})
	if err := osys.Run(); err != nil {
		panic(err)
	}
	cyc := float64(m.Counters(0).Cycles)
	bpc := float64(bytes) / cyc
	return BandwidthResult{
		Machine:       spec.Name,
		BytesPerCycle: bpc,
		MBPerSecond:   bpc * float64(spec.ClockMHz),
	}
}

// PingPongResult reports a dirty-line hand-off experiment.
type PingPongResult struct {
	Machine         string
	Processes       int
	CyclesPerAccess float64
}

// PingPong has n processes read-modify-write one shared line in turn — the
// lock-metadata pattern whose hand-off cost the migratory enhancement and
// the hypercube's extra hops shape.
func PingPong(spec machine.Spec, n, rounds int) PingPongResult {
	m := machine.New(spec)
	osys := simos.New(m, simos.DefaultConfig(spec.ClockMHz), 256)
	addr := memsys.SharedBase + memsys.Addr(1<<20)
	for i := 0; i < n; i++ {
		osys.Spawn(i, func(p *simos.Process) {
			for r := 0; r < rounds; r++ {
				p.Load(addr, 8)
				p.Store(addr, 8)
				p.Work(50)
			}
		})
	}
	if err := osys.Run(); err != nil {
		panic(err)
	}
	var cyc uint64
	for i := 0; i < n; i++ {
		cyc += m.Counters(i).Cycles
	}
	return PingPongResult{
		Machine:         spec.Name,
		Processes:       n,
		CyclesPerAccess: float64(cyc) / float64(2*n*rounds),
	}
}

// ScanResult reports the DBMS-level scan microbenchmark (a tiny Q6).
type ScanResult struct {
	Machine      string
	CPI          float64
	MissesPerRow float64
}

// Scan runs a small sequential scan through the full DBMS stack — the
// shortest path that exercises buffer pins, hint bits and the executor — as
// a smoke-test kernel.
func Scan(spec machine.Spec, sf float64) ScanResult {
	data := tpch.Generate(sf, 99)
	st, err := runScan(spec, data)
	if err != nil {
		panic(err)
	}
	c := st.MeanCounters()
	return ScanResult{
		Machine:      spec.Name,
		CPI:          c.CPI(),
		MissesPerRow: float64(c.L1DMisses) / float64(len(data.Lineitem)),
	}
}
