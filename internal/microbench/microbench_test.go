package microbench

import (
	"testing"

	"dssmem/internal/machine"
)

func TestLatencySmallSetHitsAfterWarmup(t *testing.T) {
	spec := machine.VClassSpec(2, 64)
	r := Latency(spec, 1<<10, 100_000)
	// A 1KB working set fits the cache: steady state is ~1 cycle per load.
	if r.AvgCycles > 2.0 {
		t.Fatalf("resident working set averaged %.2f cycles/load", r.AvgCycles)
	}
	if r.AvgNanoseconds <= 0 {
		t.Fatal("ns conversion missing")
	}
}

func TestLatencyLargeSetMisses(t *testing.T) {
	spec := machine.VClassSpec(2, 64) // 32KB cache
	small := Latency(spec, 1<<10, 50_000)
	big := Latency(spec, 1<<20, 50_000) // 1MB working set: every line recycles
	if big.AvgCycles < 4*small.AvgCycles {
		t.Fatalf("thrashing set (%.2f) should be much slower than resident (%.2f)",
			big.AvgCycles, small.AvgCycles)
	}
}

func TestLatencyOriginLocalVsVClass(t *testing.T) {
	// At full scale, the Origin's local memory is faster in wall-clock terms
	// but its small L1 gives more misses for mid-size sets; just check both
	// produce sane numbers.
	v := Latency(machine.VClassSpec(2, 64), 1<<20, 20_000)
	o := Latency(machine.OriginSpec(2, 64), 1<<20, 20_000)
	if v.AvgCycles <= 0 || o.AvgCycles <= 0 {
		t.Fatal("zero latency")
	}
}

func TestBandwidthSane(t *testing.T) {
	r := Bandwidth(machine.VClassSpec(2, 64), 1<<20)
	if r.BytesPerCycle <= 0 || r.BytesPerCycle > 8 {
		t.Fatalf("bandwidth %.3f bytes/cycle implausible", r.BytesPerCycle)
	}
	if r.MBPerSecond <= 0 {
		t.Fatal("MB/s conversion missing")
	}
}

func TestPingPongCostsMoreThanPrivate(t *testing.T) {
	spec := machine.VClassSpec(4, 64)
	shared := PingPong(spec, 4, 500)
	solo := PingPong(spec, 1, 500)
	if shared.CyclesPerAccess <= solo.CyclesPerAccess {
		t.Fatalf("contended ping-pong (%.1f) should cost more than private (%.1f)",
			shared.CyclesPerAccess, solo.CyclesPerAccess)
	}
}

func TestPingPongOriginCostlier(t *testing.T) {
	// The paper: communication is more expensive on the Origin. The ping-pong
	// hand-off is communication in its purest form (cycles, not wall time).
	v := PingPong(machine.VClassSpec(8, 64), 8, 400)
	o := PingPong(machine.OriginSpec(8, 64), 8, 400)
	if o.CyclesPerAccess <= v.CyclesPerAccess {
		t.Fatalf("Origin hand-off (%.1f cyc) should cost more than V-Class (%.1f cyc)",
			o.CyclesPerAccess, v.CyclesPerAccess)
	}
}

func TestScanKernel(t *testing.T) {
	r := Scan(machine.VClassSpec(4, 256), 0.001)
	if r.CPI < 1.0 || r.CPI > 3.0 {
		t.Fatalf("scan CPI %.3f out of band", r.CPI)
	}
	if r.MissesPerRow <= 0 {
		t.Fatal("no misses per row")
	}
}
