package microbench

import (
	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// runScan executes Q6 once on one CPU of the given machine.
func runScan(spec machine.Spec, data *tpch.Data) (*workload.Stats, error) {
	return workload.Run(workload.Options{
		Spec:      spec,
		Data:      data,
		Query:     tpch.Q6,
		Processes: 1,
	})
}
