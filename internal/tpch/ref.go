package tpch

import "sort"

// This file holds brute-force reference implementations of the three queries,
// computed directly over the generated rows. Tests compare the DBMS results
// against these, so the simulator's timing instrumentation can never silently
// corrupt query semantics.

// RefQ6 computes Q6 over the raw data.
func RefQ6(d *Data) *Result {
	var revenue int64
	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		if l.ShipDate >= q6Lo && l.ShipDate < q6Hi &&
			l.Discount >= q6DiscLo && l.Discount <= q6DiscHi &&
			l.Quantity < q6Quantity {
			revenue += l.ExtendedPrice * l.Discount / 100
		}
	}
	return &Result{Query: Q6, Revenue: revenue}
}

// RefQ12 computes Q12 over the raw data.
func RefQ12(d *Data) *Result {
	prio := make(map[int64]int32, len(d.Orders))
	for i := range d.Orders {
		prio[d.Orders[i].OrderKey] = d.Orders[i].Priority
	}
	counts := map[int64]*Q12Row{}
	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		mode := int64(l.ShipMode)
		if mode != q12Mode1 && mode != q12Mode2 {
			continue
		}
		if l.ReceiptDate < q12Lo || l.ReceiptDate >= q12Hi ||
			l.CommitDate >= l.ReceiptDate || l.ShipDate >= l.CommitDate {
			continue
		}
		row := counts[mode]
		if row == nil {
			row = &Q12Row{ShipMode: mode}
			counts[mode] = row
		}
		if prio[l.OrderKey] <= 1 {
			row.HighCount++
		} else {
			row.LowCount++
		}
	}
	res := &Result{Query: Q12}
	for _, row := range counts {
		res.Q12 = append(res.Q12, *row)
	}
	sort.Slice(res.Q12, func(i, j int) bool { return res.Q12[i].ShipMode < res.Q12[j].ShipMode })
	return res
}

// RefQ21 computes Q21 over the raw data.
func RefQ21(d *Data) *Result {
	nationOf := make(map[int64]int32, len(d.Suppliers))
	for i := range d.Suppliers {
		nationOf[d.Suppliers[i].SuppKey] = d.Suppliers[i].NationKey
	}
	statusOf := make(map[int64]int32, len(d.Orders))
	for i := range d.Orders {
		statusOf[d.Orders[i].OrderKey] = d.Orders[i].OrderStatus
	}
	byOrder := map[int64][]*LineItem{}
	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		byOrder[l.OrderKey] = append(byOrder[l.OrderKey], l)
	}

	waits := map[int64]int64{}
	for orderKey, lines := range byOrder {
		if statusOf[orderKey] != StatusF {
			continue
		}
		for _, l1 := range lines {
			if l1.ReceiptDate <= l1.CommitDate {
				continue
			}
			if int64(nationOf[l1.SuppKey]) != Q21Nation {
				continue
			}
			exists, sole := false, true
			for _, l2 := range lines {
				if l2.SuppKey != l1.SuppKey {
					exists = true
					if l2.ReceiptDate > l2.CommitDate {
						sole = false
						break
					}
				}
			}
			if exists && sole {
				waits[l1.SuppKey]++
			}
		}
	}

	type kv struct{ k, v int64 }
	items := make([]kv, 0, len(waits))
	for k, v := range waits {
		items = append(items, kv{k, v})
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].v != items[j].v {
			return items[i].v > items[j].v
		}
		return items[i].k < items[j].k
	})
	if len(items) > Q21TopN {
		items = items[:Q21TopN]
	}
	res := &Result{Query: Q21}
	for _, it := range items {
		res.Q21 = append(res.Q21, Q21Row{SuppKey: it.k, NumWait: it.v})
	}
	return res
}

// Ref dispatches to the reference implementation of q.
func Ref(q QueryID, d *Data) *Result {
	switch q {
	case Q6:
		return RefQ6(d)
	case Q21:
		return RefQ21(d)
	case Q12:
		return RefQ12(d)
	case Q1:
		return RefQ1(d)
	}
	panic("tpch: unknown query")
}
