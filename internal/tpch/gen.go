// Package tpch provides the workload substrate: a deterministic dbgen-style
// generator for the TPC-H tables the studied queries touch (lineitem, orders,
// supplier, nation), a loader that materializes them in the miniature DBMS,
// and the three queries the paper selected — Q6 (pure sequential scan), Q21
// (index-scan dominated) and Q12 (mixed) — implemented with the same plan
// shapes the paper reports, plus brute-force reference implementations used
// to validate query answers.
package tpch

import (
	"time"

	"dssmem/internal/db/engine"
	"dssmem/internal/db/storage"
)

// Column indices of the generated tables.
const (
	LOrderKey = iota
	LSuppKey
	LQuantity
	LExtendedPrice
	LDiscount
	LShipDate
	LCommitDate
	LReceiptDate
	LShipMode
	LLineNumber
)

// Orders columns.
const (
	OOrderKey = iota
	OOrderStatus
	OOrderDate
	OOrderPriority
)

// Supplier columns.
const (
	SSuppKey = iota
	SNationKey
)

// Nation columns.
const (
	NNationKey = iota
	NRegionKey
)

// Order status codes.
const (
	StatusF = 0 // all lineitems delivered
	StatusO = 1 // none delivered
	StatusP = 2 // partially delivered
)

// Ship modes (dbgen's seven).
const (
	ModeRegAir = iota
	ModeAir
	ModeRail
	ModeMail
	ModeShip
	ModeTruck
	ModeFob
)

// NumNations matches dbgen.
const NumNations = 25

var epoch = time.Date(1992, 1, 1, 0, 0, 0, 0, time.UTC)

// Date returns days since 1992-01-01 for the given date.
func Date(y, m, d int) int32 {
	t := time.Date(y, time.Month(m), d, 0, 0, 0, 0, time.UTC)
	return int32(t.Sub(epoch).Hours() / 24)
}

// currentDate is dbgen's CURRENTDATE (1995-06-17), used to derive
// o_orderstatus.
var currentDate = Date(1995, 6, 17)

// LineItem is one generated lineitem row (retained for reference queries).
type LineItem struct {
	OrderKey      int64
	SuppKey       int64
	Quantity      int64
	ExtendedPrice int64 // cents
	Discount      int64 // percent, 0..10
	ShipDate      int32
	CommitDate    int32
	ReceiptDate   int32
	ShipMode      int32
	LineNumber    int32
}

// Order is one generated orders row.
type Order struct {
	OrderKey    int64
	OrderStatus int32
	OrderDate   int32
	Priority    int32 // 0 = 1-URGENT, 1 = 2-HIGH, 2.. lower
}

// Supplier is one generated supplier row.
type Supplier struct {
	SuppKey   int64
	NationKey int32
}

// Data is a generated database image.
type Data struct {
	SF        float64
	Lineitem  []LineItem
	Orders    []Order
	Suppliers []Supplier
	Nations   []int32 // region of each nation
}

// rng is a splitmix64 generator: deterministic across runs and platforms.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// Generate builds a deterministic database at the given scale factor.
// SF 1.0 corresponds to TPC-H's 1,500,000 orders; the paper used a 200 MB
// flat-file database (~SF 0.3 equivalents) scaled to its machines.
func Generate(sf float64, seed uint64) *Data {
	if sf <= 0 {
		panic("tpch: scale factor must be positive")
	}
	r := &rng{s: seed}
	nOrders := int(1_500_000 * sf)
	if nOrders < 64 {
		nOrders = 64
	}
	nSupp := int(10_000 * sf)
	if nSupp < 16 {
		nSupp = 16
	}
	d := &Data{SF: sf}

	d.Nations = make([]int32, NumNations)
	for i := range d.Nations {
		d.Nations[i] = int32(i % 5)
	}
	d.Suppliers = make([]Supplier, nSupp)
	for i := range d.Suppliers {
		d.Suppliers[i] = Supplier{SuppKey: int64(i + 1), NationKey: int32(r.intn(NumNations))}
	}

	maxOrderDate := int(Date(1998, 8, 2)) - 121 - 30
	d.Orders = make([]Order, nOrders)
	for i := 0; i < nOrders; i++ {
		orderKey := int64(i + 1)
		orderDate := int32(r.intn(maxOrderDate))
		nl := 1 + r.intn(7)
		allDelivered, noneDelivered := true, true
		for j := 0; j < nl; j++ {
			quantity := int64(1 + r.intn(50))
			price := int64(90_000 + r.intn(1_000_00))
			li := LineItem{
				OrderKey:      orderKey,
				SuppKey:       int64(1 + r.intn(nSupp)),
				Quantity:      quantity,
				ExtendedPrice: quantity * price,
				Discount:      int64(r.intn(11)),
				ShipDate:      orderDate + int32(1+r.intn(121)),
				CommitDate:    orderDate + int32(30+r.intn(61)),
				ShipMode:      int32(r.intn(7)),
				LineNumber:    int32(j + 1),
			}
			li.ReceiptDate = li.ShipDate + int32(1+r.intn(30))
			d.Lineitem = append(d.Lineitem, li)
			if li.ReceiptDate <= currentDate {
				noneDelivered = false
			} else {
				allDelivered = false
			}
		}
		status := int32(StatusP)
		if allDelivered {
			status = StatusF
		} else if noneDelivered {
			status = StatusO
		}
		d.Orders[i] = Order{
			OrderKey:    orderKey,
			OrderStatus: status,
			OrderDate:   orderDate,
			Priority:    int32(r.intn(5)),
		}
	}
	return d
}

// RawBytes estimates the flat-file footprint of the generated data (the
// paper's "200 MB" is this number for its database).
func (d *Data) RawBytes() uint64 {
	return uint64(len(d.Lineitem))*60 + uint64(len(d.Orders))*20 +
		uint64(len(d.Suppliers))*12 + uint64(len(d.Nations))*8
}

// Schemas for the stored tables.
func lineitemSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "l_orderkey", Width: 8},
		storage.Column{Name: "l_suppkey", Width: 8},
		storage.Column{Name: "l_quantity", Width: 8},
		storage.Column{Name: "l_extendedprice", Width: 8},
		storage.Column{Name: "l_discount", Width: 8},
		storage.Column{Name: "l_shipdate", Width: 4},
		storage.Column{Name: "l_commitdate", Width: 4},
		storage.Column{Name: "l_receiptdate", Width: 4},
		storage.Column{Name: "l_shipmode", Width: 4},
		storage.Column{Name: "l_linenumber", Width: 4},
	)
}

func ordersSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "o_orderkey", Width: 8},
		storage.Column{Name: "o_orderstatus", Width: 4},
		storage.Column{Name: "o_orderdate", Width: 4},
		storage.Column{Name: "o_orderpriority", Width: 4},
	)
}

func supplierSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "s_suppkey", Width: 8},
		storage.Column{Name: "s_nationkey", Width: 4},
	)
}

func nationSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "n_nationkey", Width: 4},
		storage.Column{Name: "n_regionkey", Width: 4},
	)
}

// PoolPagesFor returns a buffer-pool size (in pages) ample for the data plus
// its indexes, so the database is fully resident as in the paper.
func PoolPagesFor(d *Data) int {
	rows := len(d.Lineitem) + len(d.Orders) + len(d.Suppliers) + NumNations
	// Heap pages + generous index allowance + slack.
	pages := int(d.RawBytes()/storage.PageSize) + rows/400 + 64
	return pages * 2
}

// Load materializes the data in db: heap files plus the indexes the paper's
// plans use (lineitem(orderkey), orders(orderkey), supplier(suppkey),
// nation(nationkey)).
func Load(db *engine.Database, d *Data) {
	li := db.CreateTable("lineitem", lineitemSchema())
	ord := db.CreateTable("orders", ordersSchema())
	sup := db.CreateTable("supplier", supplierSchema())
	nat := db.CreateTable("nation", nationSchema())

	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		li.Heap.Append([]int64{
			l.OrderKey, l.SuppKey, l.Quantity, l.ExtendedPrice, l.Discount,
			int64(l.ShipDate), int64(l.CommitDate), int64(l.ReceiptDate),
			int64(l.ShipMode), int64(l.LineNumber),
		})
	}
	for i := range d.Orders {
		o := &d.Orders[i]
		ord.Heap.Append([]int64{o.OrderKey, int64(o.OrderStatus), int64(o.OrderDate), int64(o.Priority)})
	}
	for i := range d.Suppliers {
		s := &d.Suppliers[i]
		sup.Heap.Append([]int64{s.SuppKey, int64(s.NationKey)})
	}
	for i, reg := range d.Nations {
		nat.Heap.Append([]int64{int64(i), int64(reg)})
	}

	db.BuildIndex(li, "lineitem_orderkey", LOrderKey)
	db.BuildIndex(ord, "orders_pk", OOrderKey)
	db.BuildIndex(sup, "supplier_pk", SSuppKey)
	db.BuildIndex(nat, "nation_pk", NNationKey)
}
