package tpch

import (
	"fmt"

	"dssmem/internal/db/engine"
	"dssmem/internal/db/executor"
	"dssmem/internal/db/storage"
)

// Query parameters (dbgen defaults where they matter).
var (
	q6Lo       = Date(1994, 1, 1)
	q6Hi       = Date(1995, 1, 1) // exclusive
	q6DiscLo   = int64(5)
	q6DiscHi   = int64(7)
	q6Quantity = int64(24)

	q12Lo    = Date(1994, 1, 1)
	q12Hi    = Date(1995, 1, 1)
	q12Mode1 = int64(ModeMail)
	q12Mode2 = int64(ModeShip)

	// Q21Nation is the nation whose suppliers Q21 audits.
	Q21Nation = int64(7)

	// Q21TopN is the result size ("top 100 suppliers" in the spec).
	Q21TopN = 100
)

// QueryID names one of the studied queries.
type QueryID int

// The three queries the paper selected as representative.
const (
	Q6 QueryID = iota
	Q21
	Q12
)

// String implements fmt.Stringer.
func (q QueryID) String() string {
	switch q {
	case Q6:
		return "Q6"
	case Q21:
		return "Q21"
	case Q12:
		return "Q12"
	case Q1:
		return "Q1"
	}
	return fmt.Sprintf("Q%d?", int(q))
}

// AllQueries lists the studied queries in the paper's order.
var AllQueries = []QueryID{Q6, Q21, Q12}

// Q12Row is one output group of Q12.
type Q12Row struct {
	ShipMode  int64
	HighCount int64
	LowCount  int64
}

// Q21Row is one output row of Q21.
type Q21Row struct {
	SuppKey int64
	NumWait int64
}

// Result is a query result with a stable digest for cross-checking.
type Result struct {
	Query   QueryID
	Revenue int64    // Q6
	Q12     []Q12Row // Q12
	Q21     []Q21Row // Q21
	Q1      []Q1Row  // extension query Q1
}

// Digest folds the result into one value so the simulated run can be compared
// to the reference implementation cheaply.
func (r *Result) Digest() uint64 {
	h := uint64(14695981039346656037)
	mix := func(v int64) {
		h ^= uint64(v)
		h *= 1099511628211
	}
	mix(int64(r.Query))
	mix(r.Revenue)
	for _, g := range r.Q12 {
		mix(g.ShipMode)
		mix(g.HighCount)
		mix(g.LowCount)
	}
	for _, g := range r.Q21 {
		mix(g.SuppKey)
		mix(g.NumWait)
	}
	for _, g := range r.Q1 {
		mix(g.ReturnFlag)
		mix(g.LineStatus)
		mix(g.SumQty)
		mix(g.SumBasePrice)
		mix(g.SumDiscPrice)
		mix(g.Count)
	}
	return h
}

// Run executes the given query on a session.
func Run(q QueryID, s *engine.Session) *Result {
	switch q {
	case Q6:
		return RunQ6(s)
	case Q21:
		return RunQ21(s)
	case Q12:
		return RunQ12(s)
	case Q1:
		return RunQ1(s)
	}
	panic("tpch: unknown query")
}

// RunQ6 computes the forecast revenue change: a single sequential scan of
// lineitem with a conjunctive predicate and one running sum — the paper's
// pure sequential query with "very good spatial locality but poor temporal
// locality".
func RunQ6(s *engine.Session) *Result {
	ctx := executor.NewContext(s)
	li := s.Lookup("lineitem")
	ctx.Setup(li)
	s.LockRelationShared(li)
	defer s.UnlockRelationShared(li)

	var revenue int64
	sumAddr := ctx.AllocPrivate(64)
	cols := []int{LShipDate, LDiscount, LQuantity, LExtendedPrice}
	executor.SeqScan(ctx, li, cols, func(_ storage.TID, v []int64) bool {
		s.P.Work(executor.CostPredicate)
		ship := int32(v[0])
		if ship < q6Lo || ship >= q6Hi {
			return true
		}
		s.P.Work(2 * executor.CostPredicate)
		if v[1] < q6DiscLo || v[1] > q6DiscHi {
			return true
		}
		s.P.Work(executor.CostPredicate)
		if v[2] >= q6Quantity {
			return true
		}
		s.P.Work(executor.CostAggUpdate)
		s.P.Store(sumAddr, 8)
		revenue += v[3] * v[1] / 100
		return true
	})
	return &Result{Query: Q6, Revenue: revenue}
}

// RunQ12 determines whether cheap ship modes delay critical orders: a
// sequential scan of lineitem with, for each qualifying line, an index probe
// into orders — the mixed profile ("characteristics of both the sequential
// scan and the index scan").
func RunQ12(s *engine.Session) *Result {
	ctx := executor.NewContext(s)
	li := s.Lookup("lineitem")
	ord := s.Lookup("orders")
	ctx.Setup(li, ord)
	s.LockRelationShared(li)
	defer s.UnlockRelationShared(li)
	s.LockRelationShared(ord)
	defer s.UnlockRelationShared(ord)

	agg := executor.NewHashAgg(ctx, 64, 2)
	of := executor.NewFetcher(ctx, ord)
	defer of.Close()

	cols := []int{LShipMode, LReceiptDate, LCommitDate, LShipDate, LOrderKey}
	executor.SeqScan(ctx, li, cols, func(_ storage.TID, v []int64) bool {
		s.P.Work(2 * executor.CostPredicate)
		mode := v[0]
		if mode != q12Mode1 && mode != q12Mode2 {
			return true
		}
		receipt, commit, ship := int32(v[1]), int32(v[2]), int32(v[3])
		s.P.Work(3 * executor.CostPredicate)
		if receipt < q12Lo || receipt >= q12Hi || commit >= receipt || ship >= commit {
			return true
		}
		orderKey := v[4]
		executor.IndexLookupEach(ctx, ord, "orders_pk", orderKey, func(tid storage.TID) bool {
			prio := of.Field(tid, OOrderPriority)
			agg.Update(mode, func(slots []int64) {
				if prio <= 1 { // 1-URGENT or 2-HIGH
					slots[0]++
				} else {
					slots[1]++
				}
			})
			return false // order keys are unique
		})
		return true
	})

	res := &Result{Query: Q12}
	agg.Each(func(mode int64, slots []int64) {
		res.Q12 = append(res.Q12, Q12Row{ShipMode: mode, HighCount: slots[0], LowCount: slots[1]})
	})
	return res
}

// RunQ21 finds suppliers who were the sole late supplier of multi-supplier
// orders: the paper's plan — one sequential scan of orders plus five index
// scans per probe group, three of them on lineitem (l1, the EXISTS l2, the
// NOT EXISTS l3) and the others on supplier and nation.
func RunQ21(s *engine.Session) *Result {
	ctx := executor.NewContext(s)
	li := s.Lookup("lineitem")
	ord := s.Lookup("orders")
	sup := s.Lookup("supplier")
	nat := s.Lookup("nation")
	ctx.Setup(li, ord, sup, nat)
	s.LockRelationShared(li)
	defer s.UnlockRelationShared(li)
	s.LockRelationShared(ord)
	defer s.UnlockRelationShared(ord)
	s.LockRelationShared(sup)
	defer s.UnlockRelationShared(sup)
	s.LockRelationShared(nat)
	defer s.UnlockRelationShared(nat)

	agg := executor.NewHashAgg(ctx, 1024, 1)
	lf := executor.NewFetcher(ctx, li)
	defer lf.Close()
	sf := executor.NewFetcher(ctx, sup)
	defer sf.Close()
	nf := executor.NewFetcher(ctx, nat)
	defer nf.Close()

	type line struct {
		supp            int64
		commit, receipt int32
		tid             storage.TID
	}
	var lines []line

	executor.SeqScan(ctx, ord, []int{OOrderKey, OOrderStatus}, func(_ storage.TID, v []int64) bool {
		s.P.Work(executor.CostPredicate)
		if v[1] != StatusF {
			return true
		}
		orderKey := v[0]

		// Index scan 1 (lineitem l1): the order's lines.
		lines = lines[:0]
		executor.IndexLookupEach(ctx, li, "lineitem_orderkey", orderKey, func(tid storage.TID) bool {
			supp := lf.Field(tid, LSuppKey)
			commit := int32(lf.FieldAgain(tid, LCommitDate))
			receipt := int32(lf.FieldAgain(tid, LReceiptDate))
			lines = append(lines, line{supp: supp, commit: commit, receipt: receipt, tid: tid})
			return true
		})

		for _, l1 := range lines {
			s.P.Work(executor.CostPredicate)
			if l1.receipt <= l1.commit {
				continue
			}
			// Index scan on supplier: the candidate's nation.
			var nation int64 = -1
			executor.IndexLookupEach(ctx, sup, "supplier_pk", l1.supp, func(tid storage.TID) bool {
				nation = sf.Field(tid, SNationKey)
				return false
			})
			if nation != Q21Nation {
				continue
			}
			// Index scan on nation (the join to n_name in the real query).
			executor.IndexLookupEach(ctx, nat, "nation_pk", nation, func(tid storage.TID) bool {
				nf.Field(tid, NRegionKey)
				return false
			})

			// Index scan 2 (lineitem l2): EXISTS another supplier on the order.
			exists := false
			executor.IndexLookupEach(ctx, li, "lineitem_orderkey", orderKey, func(tid storage.TID) bool {
				s.P.Work(executor.CostPredicate)
				if lf.Field(tid, LSuppKey) != l1.supp {
					exists = true
					return false
				}
				return true
			})
			if !exists {
				continue
			}
			// Index scan 3 (lineitem l3): NOT EXISTS another late supplier.
			sole := true
			executor.IndexLookupEach(ctx, li, "lineitem_orderkey", orderKey, func(tid storage.TID) bool {
				s.P.Work(2 * executor.CostPredicate)
				supp := lf.Field(tid, LSuppKey)
				if supp == l1.supp {
					return true
				}
				commit := int32(lf.FieldAgain(tid, LCommitDate))
				receipt := int32(lf.FieldAgain(tid, LReceiptDate))
				if receipt > commit {
					sole = false
					return false
				}
				return true
			})
			if !sole {
				continue
			}
			agg.Update(l1.supp, func(slots []int64) { slots[0]++ })
		}
		return true
	})

	items := make([]executor.KV, 0, agg.Len())
	agg.Each(func(k int64, slots []int64) {
		items = append(items, executor.KV{Key: k, Val: slots[0]})
	})
	top := executor.TopN(ctx, items, Q21TopN)

	res := &Result{Query: Q21}
	for _, kv := range top {
		res.Q21 = append(res.Q21, Q21Row{SuppKey: kv.Key, NumWait: kv.Val})
	}
	return res
}
