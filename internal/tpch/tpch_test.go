package tpch

import (
	"testing"

	"dssmem/internal/db/dbtest"
	"dssmem/internal/db/engine"
)

const testSF = 0.001 // ~1500 orders, ~6000 lineitems

func testData(t *testing.T) *Data {
	t.Helper()
	return Generate(testSF, 42)
}

func loadDB(t *testing.T, d *Data) *engine.Database {
	t.Helper()
	db := engine.Open(engine.Config{PoolPages: PoolPagesFor(d)})
	Load(db, d)
	return db
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(testSF, 42)
	b := Generate(testSF, 42)
	if len(a.Lineitem) != len(b.Lineitem) || len(a.Orders) != len(b.Orders) {
		t.Fatal("sizes differ")
	}
	for i := range a.Lineitem {
		if a.Lineitem[i] != b.Lineitem[i] {
			t.Fatalf("lineitem %d differs", i)
		}
	}
	c := Generate(testSF, 43)
	same := true
	for i := range a.Lineitem {
		if i < len(c.Lineitem) && a.Lineitem[i] != c.Lineitem[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateShape(t *testing.T) {
	d := testData(t)
	if len(d.Orders) < 1000 {
		t.Fatalf("orders = %d", len(d.Orders))
	}
	ratio := float64(len(d.Lineitem)) / float64(len(d.Orders))
	if ratio < 3 || ratio > 5 {
		t.Fatalf("lineitems per order = %.2f, want ~4", ratio)
	}
	statuses := map[int32]int{}
	for _, o := range d.Orders {
		statuses[o.OrderStatus]++
	}
	if statuses[StatusF] == 0 || statuses[StatusO] == 0 || statuses[StatusP] == 0 {
		t.Fatalf("status mix: %v", statuses)
	}
	for _, l := range d.Lineitem[:100] {
		if l.ReceiptDate <= l.ShipDate {
			t.Fatal("receipt before ship")
		}
		if l.Discount < 0 || l.Discount > 10 {
			t.Fatal("discount out of range")
		}
	}
}

func TestDateHelper(t *testing.T) {
	if Date(1992, 1, 1) != 0 {
		t.Fatal("epoch wrong")
	}
	if Date(1993, 1, 1) != 366 { // 1992 is a leap year
		t.Fatalf("1993-01-01 = %d", Date(1993, 1, 1))
	}
	if Date(1994, 1, 1)-Date(1993, 1, 1) != 365 {
		t.Fatal("1993 length wrong")
	}
}

func TestRawBytesScalesWithSF(t *testing.T) {
	small := Generate(0.001, 1)
	big := Generate(0.002, 1)
	if big.RawBytes() <= small.RawBytes() {
		t.Fatal("RawBytes not monotone in SF")
	}
}

func sessionFor(db *engine.Database) *engine.Session {
	return db.NewSession(&dbtest.FakeProc{}, 0)
}

func TestQ6MatchesReference(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	got := RunQ6(sessionFor(db))
	want := RefQ6(d)
	if got.Revenue != want.Revenue {
		t.Fatalf("Q6 revenue = %d, want %d", got.Revenue, want.Revenue)
	}
	if want.Revenue == 0 {
		t.Fatal("degenerate test: reference revenue is zero")
	}
	if got.Digest() != want.Digest() {
		t.Fatal("digest mismatch")
	}
}

func TestQ12MatchesReference(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	got := RunQ12(sessionFor(db))
	want := RefQ12(d)
	if len(got.Q12) != len(want.Q12) {
		t.Fatalf("groups: got %v want %v", got.Q12, want.Q12)
	}
	for i := range want.Q12 {
		if got.Q12[i] != want.Q12[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got.Q12[i], want.Q12[i])
		}
	}
	if len(want.Q12) == 0 {
		t.Fatal("degenerate test: no Q12 groups")
	}
}

func TestQ21MatchesReference(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	got := RunQ21(sessionFor(db))
	want := RefQ21(d)
	if len(got.Q21) != len(want.Q21) {
		t.Fatalf("rows: got %d want %d", len(got.Q21), len(want.Q21))
	}
	for i := range want.Q21 {
		if got.Q21[i] != want.Q21[i] {
			t.Fatalf("row %d: got %+v want %+v", i, got.Q21[i], want.Q21[i])
		}
	}
	if len(want.Q21) == 0 {
		t.Fatal("degenerate test: empty Q21 result")
	}
}

func TestRunDispatch(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	for _, q := range AllQueries {
		got := Run(q, sessionFor(db))
		want := Ref(q, d)
		if got.Digest() != want.Digest() {
			t.Fatalf("%v: digest mismatch", q)
		}
	}
}

func TestQueryCharges(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	RunQ6(s)
	if p.Loads < uint64(len(d.Lineitem)) {
		t.Fatalf("Q6 charged %d loads for %d rows", p.Loads, len(d.Lineitem))
	}
	if s.Pins == 0 || s.Pins != s.Unpins {
		t.Fatalf("pins=%d unpins=%d", s.Pins, s.Unpins)
	}
}

func TestQ21IsIndexHeavy(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	p6 := &dbtest.FakeProc{}
	RunQ6(db.NewSession(p6, 0))
	p21 := &dbtest.FakeProc{}
	RunQ21(db.NewSession(p21, 1))
	// Q21 does repeated index descents; its loads per lineitem row must far
	// exceed Q6's sequential pass.
	if p21.Loads < p6.Loads {
		t.Fatalf("Q21 loads (%d) should exceed Q6 loads (%d)", p21.Loads, p6.Loads)
	}
}

func TestQueryNamesAndDigestStability(t *testing.T) {
	if Q6.String() != "Q6" || Q21.String() != "Q21" || Q12.String() != "Q12" {
		t.Fatal("names wrong")
	}
	r := Result{Query: Q6, Revenue: 123}
	if r.Digest() != (&Result{Query: Q6, Revenue: 123}).Digest() {
		t.Fatal("digest unstable")
	}
	if r.Digest() == (&Result{Query: Q6, Revenue: 124}).Digest() {
		t.Fatal("digest insensitive")
	}
}

func TestQ1MatchesReference(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	got := RunQ1(sessionFor(db))
	want := RefQ1(d)
	if len(got.Q1) != len(want.Q1) {
		t.Fatalf("groups: got %d want %d", len(got.Q1), len(want.Q1))
	}
	for i := range want.Q1 {
		if got.Q1[i] != want.Q1[i] {
			t.Fatalf("group %d: got %+v want %+v", i, got.Q1[i], want.Q1[i])
		}
	}
	// Q1 should produce the classic 4 populated groups (A/F, N/F, N/O, R/F).
	if len(want.Q1) != 4 {
		t.Fatalf("expected 4 groups, got %d", len(want.Q1))
	}
	if got.Digest() != want.Digest() {
		t.Fatal("digest mismatch")
	}
}

func TestExtendedQueriesDispatch(t *testing.T) {
	d := testData(t)
	db := loadDB(t, d)
	for _, q := range ExtendedQueries {
		got := Run(q, sessionFor(db))
		want := Ref(q, d)
		if got.Digest() != want.Digest() {
			t.Fatalf("%v digest mismatch", q)
		}
	}
	if Q1.String() != "Q1" {
		t.Fatal("Q1 name")
	}
}

func TestQ1GroupInvariants(t *testing.T) {
	d := testData(t)
	r := RefQ1(d)
	var total int64
	for _, g := range r.Q1 {
		if g.Count <= 0 || g.SumQty <= 0 || g.SumBasePrice <= 0 {
			t.Fatalf("degenerate group: %+v", g)
		}
		if g.SumDiscPrice > g.SumBasePrice*100 {
			t.Fatalf("disc price exceeds base: %+v", g)
		}
		total += g.Count
	}
	// Every lineitem with shipdate <= cutoff is counted exactly once.
	var want int64
	for i := range d.Lineitem {
		if d.Lineitem[i].ShipDate <= q1Cutoff {
			want++
		}
	}
	if total != want {
		t.Fatalf("counts: %d want %d", total, want)
	}
}
