package tpch

import (
	"sort"

	"dssmem/internal/db/engine"
	"dssmem/internal/db/executor"
	"dssmem/internal/db/storage"
)

// Q1 (the pricing summary report) is an EXTENSION beyond the paper's three
// queries: another pure sequential scan, but with a grouped aggregation that
// stresses private-memory locality differently from Q6's single running sum.
// It demonstrates that the characterization tooling generalizes past the
// paper's exact workload. Q1 is not part of the regenerated figures.
const Q1 QueryID = 3

// ExtendedQueries adds the extension queries to the paper's three.
var ExtendedQueries = []QueryID{Q6, Q21, Q12, Q1}

var q1Cutoff = Date(1998, 12, 1) - 90

// Q1 return flags / line statuses (derived deterministically from dates as
// dbgen correlates them; we avoid widening the stored schema).
const (
	flagA = 0
	flagR = 1
	flagN = 2

	statusF = 0
	statusO = 1
)

// q1Flag derives l_returnflag from the receipt date and a per-line hash.
func q1Flag(receipt int32, orderKey, lineNumber int64) int64 {
	if receipt > currentDate {
		return flagN
	}
	if (orderKey+lineNumber)%2 == 0 {
		return flagA
	}
	return flagR
}

// q1Status derives l_linestatus from the ship date.
func q1Status(ship int32) int64 {
	if ship > currentDate {
		return statusO
	}
	return statusF
}

// Q1Row is one output group.
type Q1Row struct {
	ReturnFlag   int64
	LineStatus   int64
	SumQty       int64
	SumBasePrice int64
	SumDiscPrice int64 // extendedprice * (100-discount) in cent-percent units
	Count        int64
}

// RunQ1 executes the extension query on a session.
func RunQ1(s *engine.Session) *Result {
	ctx := executor.NewContext(s)
	li := s.Lookup("lineitem")
	ctx.Setup(li)
	s.LockRelationShared(li)
	defer s.UnlockRelationShared(li)

	agg := executor.NewHashAgg(ctx, 16, 4)
	cols := []int{LShipDate, LReceiptDate, LQuantity, LExtendedPrice, LDiscount, LOrderKey, LLineNumber}
	executor.SeqScan(ctx, li, cols, func(_ storage.TID, v []int64) bool {
		s.P.Work(executor.CostPredicate)
		ship := int32(v[0])
		if ship > q1Cutoff {
			return true
		}
		s.P.Work(3 * executor.CostPredicate) // flag/status derivation
		key := q1Flag(int32(v[1]), v[5], v[6])*4 + q1Status(ship)
		agg.Update(key, func(slots []int64) {
			slots[0] += v[2]                // sum_qty
			slots[1] += v[3]                // sum_base_price
			slots[2] += v[3] * (100 - v[4]) // sum_disc_price (x100)
			slots[3]++                      // count
		})
		return true
	})

	res := &Result{Query: Q1}
	agg.Each(func(key int64, slots []int64) {
		res.Q1 = append(res.Q1, Q1Row{
			ReturnFlag:   key / 4,
			LineStatus:   key % 4,
			SumQty:       slots[0],
			SumBasePrice: slots[1],
			SumDiscPrice: slots[2],
			Count:        slots[3],
		})
	})
	return res
}

// RefQ1 computes Q1 over the raw data.
func RefQ1(d *Data) *Result {
	groups := map[int64]*Q1Row{}
	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		if l.ShipDate > q1Cutoff {
			continue
		}
		key := q1Flag(l.ReceiptDate, l.OrderKey, int64(l.LineNumber))*4 + q1Status(l.ShipDate)
		g := groups[key]
		if g == nil {
			g = &Q1Row{ReturnFlag: key / 4, LineStatus: key % 4}
			groups[key] = g
		}
		g.SumQty += l.Quantity
		g.SumBasePrice += l.ExtendedPrice
		g.SumDiscPrice += l.ExtendedPrice * (100 - l.Discount)
		g.Count++
	}
	res := &Result{Query: Q1}
	keys := make([]int64, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		res.Q1 = append(res.Q1, *groups[k])
	}
	return res
}
