package job

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary bytes — torn tails, bit flips,
// duplicate frames, random garbage — at the journal parser and the
// manager's load path. The invariants: replay never panics; whatever it
// accepts is a verified frame-boundary prefix (re-parsing the valid prefix
// reproduces the same records, error-free); and a manager opening a corrupt
// journal quarantines it instead of trusting or crashing on it.
func FuzzJournalReplay(f *testing.F) {
	start := AppendFrame(Record{Type: RecStart, ID: testID, Kind: "sweep", Path: "/v1/sweep?machine=vclass&query=Q6", Total: 5})
	p0 := AppendFrame(Record{Type: RecPoint, Index: 0, Digest: "d0"})
	p1 := AppendFrame(Record{Type: RecPoint, Index: 1, Digest: "d1"})
	done := AppendFrame(Record{Type: RecDone})

	whole := append(append(append(append([]byte{}, start...), p0...), p1...), done...)
	f.Add(whole)
	f.Add(whole[:len(whole)-3])                                     // torn tail
	f.Add(append(append([]byte{}, start...), p0[:7]...))            // tear inside a header
	f.Add(append(append(append([]byte{}, start...), p0...), p0...)) // duplicate frame
	flipped := append([]byte{}, whole...)
	flipped[len(start)+4] ^= 0x40 // bit flip inside a frame
	f.Add(flipped)
	f.Add([]byte("not a journal at all\n"))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte("x"), 2048)) // oversized headerless run

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := ReplayFrames(data)
		if valid < 0 || valid > len(data) {
			t.Fatalf("valid offset %d out of range [0,%d]", valid, len(data))
		}
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("non-ErrCorrupt error: %v", err)
		}
		// The accepted prefix must re-parse identically and cleanly: that is
		// what load() relies on when it truncates to valid and appends.
		recs2, valid2, err2 := ReplayFrames(data[:valid])
		if err2 != nil || valid2 != valid || len(recs2) != len(recs) {
			t.Fatalf("valid prefix unstable: valid %d->%d, recs %d->%d, err=%v",
				valid, valid2, len(recs), len(recs2), err2)
		}
		// Appending a good frame to the accepted prefix must parse through.
		ext := append(append([]byte{}, data[:valid]...), AppendFrame(Record{Type: RecPoint, Index: 9, Digest: "dx"})...)
		recs3, _, err3 := ReplayFrames(ext)
		if err3 != nil || len(recs3) != len(recs)+1 {
			t.Fatalf("append after truncation broke the journal: recs=%d err=%v", len(recs3), err3)
		}

		// The manager must survive this journal on disk: load or quarantine,
		// never panic, never half-trust.
		dir := t.TempDir()
		path := filepath.Join(dir, testID+".journal")
		if werr := os.WriteFile(path, data, 0o644); werr != nil {
			t.Fatal(werr)
		}
		m, merr := Open(dir)
		if merr != nil {
			t.Fatalf("Open failed on fuzzed journal: %v", merr)
		}
		if err != nil && m.Get(testID) != nil && m.Stats().Quarantined == 0 {
			t.Fatal("corrupt journal loaded without quarantine")
		}
	})
}
