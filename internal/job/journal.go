// Package job makes long-running requests durable. A job is a unit of work
// (today: a multi-point sweep) whose progress is recorded in an append-only
// write-ahead journal, one checksummed frame per event, so a process that is
// SIGKILLed mid-job can replay the journal on restart, see exactly which
// points completed, and resume without recomputing any of them — completed
// points come back as cache hits from the content-addressed store.
//
// The journal reuses the rescache entry framing (one-line JSON header with
// length + SHA-256, then the payload), concatenated: the header's length
// field makes frames self-delimiting, so a journal is parsed sequentially
// and every record is verified before it is believed. A torn tail — the
// half-written frame a crash leaves behind — is expected and silently
// truncated; anything else that fails verification mid-file means the
// journal is corrupt, and the whole file is quarantined rather than
// half-trusted, mirroring how rescache quarantines corrupt cache entries.
package job

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"

	"dssmem/internal/rescache"
)

// Record is one journal event. Type discriminates; the other fields are
// populated per type as documented on the constants.
type Record struct {
	Type string `json:"type"`

	// start records only.
	ID    string `json:"id,omitempty"`    // job ID (the result digest)
	Kind  string `json:"kind,omitempty"`  // e.g. "sweep"
	Path  string `json:"path,omitempty"`  // request path + query to re-issue on resume
	Total int    `json:"total,omitempty"` // number of points the job will complete

	// point records only.
	Index  int    `json:"index,omitempty"`  // point position within the job
	Digest string `json:"digest,omitempty"` // the completed point's result digest

	// fail records only.
	Error string `json:"error,omitempty"`
}

// The record types.
const (
	RecStart = "start" // job began: identity, shape, and how to re-issue it
	RecPoint = "point" // one point completed and is cached under Digest
	RecDone  = "done"  // every point completed and the result was assembled
	RecFail  = "fail"  // the job errored; a later start may retry it
)

// ErrCorrupt marks a journal that failed verification somewhere other than a
// torn tail. Test with errors.Is.
var ErrCorrupt = errors.New("job: corrupt journal")

// maxHeaderLine bounds the frame header search: a real header is a short
// JSON object, so a longer newline-free prefix is corruption, not a tear.
const maxHeaderLine = 512

// AppendFrame returns record encoded as one journal frame, ready to append.
func AppendFrame(rec Record) []byte {
	b, err := json.Marshal(rec)
	if err != nil {
		// Record is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("job: marshal record: %v", err))
	}
	return rescache.FrameEntry(b)
}

// ReplayFrames parses a journal byte-by-byte into its verified records.
// valid reports how many bytes of b form the verified prefix; a caller
// reopening the journal for append must truncate to valid first, or the torn
// tail would corrupt the next frame. The error is non-nil only for
// corruption (ErrCorrupt): a torn tail — an incomplete final frame, the
// normal residue of a crash mid-append — terminates the parse silently.
// Records after a corrupt frame are never returned, even if they verify:
// once the sequence is broken there is no trusting what follows it.
func ReplayFrames(b []byte) (recs []Record, valid int, err error) {
	off := 0
	for off < len(b) {
		rest := b[off:]
		nl := bytes.IndexByte(rest, '\n')
		if nl < 0 {
			if len(rest) > maxHeaderLine {
				return recs, off, fmt.Errorf("%w: unterminated header at offset %d", ErrCorrupt, off)
			}
			return recs, off, nil // torn tail: header never finished
		}
		if nl > maxHeaderLine {
			return recs, off, fmt.Errorf("%w: oversized header at offset %d", ErrCorrupt, off)
		}
		var h struct {
			Len int `json:"len"`
		}
		if jerr := json.Unmarshal(rest[:nl], &h); jerr != nil || h.Len < 0 {
			return recs, off, fmt.Errorf("%w: bad header at offset %d", ErrCorrupt, off)
		}
		end := nl + 1 + h.Len
		if end > len(rest) {
			return recs, off, nil // torn tail: payload cut short by the crash
		}
		payload, uerr := rescache.UnframeEntry(rest[:end])
		if uerr != nil {
			return recs, off, fmt.Errorf("%w: frame at offset %d: %v", ErrCorrupt, off, uerr)
		}
		var rec Record
		if jerr := json.Unmarshal(payload, &rec); jerr != nil {
			return recs, off, fmt.Errorf("%w: record at offset %d: %v", ErrCorrupt, off, jerr)
		}
		recs = append(recs, rec)
		off += end
	}
	return recs, off, nil
}
