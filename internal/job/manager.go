package job

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"sync"
	"time"
)

// State is a job's lifecycle position.
type State string

const (
	StateRunning State = "running" // started, not every point recorded
	StateDone    State = "done"    // assembled; the result is in the cache
	StateFailed  State = "failed"  // errored; a later Start retries it
)

// QuarantineDir is where corrupt journals are moved, relative to the
// manager's directory.
const QuarantineDir = "quarantine"

// Snapshot is a job's externally visible state, served by /v1/jobs.
type Snapshot struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Path      string `json:"path"`
	State     State  `json:"state"`
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
	Updated   int64  `json:"updated_unix"`
}

// Stats counts manager-level events for telemetry.
type Stats struct {
	Jobs        int // jobs known
	Running     int // jobs currently running
	Quarantined int // corrupt journals moved aside at Open
	Truncated   int // torn tails cut at Open
}

// validID keeps job IDs safe as file names: digest-shaped or close to it.
var validID = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,127}$`)

// Manager owns a directory of job journals. Open replays every journal in
// it, so jobs survive the process: a coordinator SIGKILLed mid-sweep finds
// the job running on restart and resumes it. A manager opened with an empty
// directory path keeps jobs in memory only — same API, no durability.
type Manager struct {
	dir  string
	mu   sync.Mutex
	jobs map[string]*Job

	quarantined int
	truncated   int
}

// Open loads (or creates) the journal directory and replays what it finds.
// Corrupt journals are quarantined to dir/quarantine and do not fail Open:
// losing a journal costs recomputation bookkeeping, never correctness.
func Open(dir string) (*Manager, error) {
	m := &Manager{dir: dir, jobs: make(map[string]*Job)}
	if dir == "" {
		return m, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("job: open %s: %w", dir, err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*.journal"))
	if err != nil {
		return nil, fmt.Errorf("job: scan %s: %w", dir, err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		m.load(p)
	}
	return m, nil
}

// load replays one journal file into a Job, quarantining it on corruption.
func (m *Manager) load(path string) {
	b, err := os.ReadFile(path)
	if err != nil {
		m.quarantine(path)
		return
	}
	recs, valid, err := ReplayFrames(b)
	if err != nil || len(recs) == 0 || recs[0].Type != RecStart || !validID.MatchString(recs[0].ID) {
		m.quarantine(path)
		return
	}
	if valid < len(b) {
		// Torn tail from the crash: cut it so appends start on a frame
		// boundary. The lost frame's point recomputes as a cache hit.
		if err := os.Truncate(path, int64(valid)); err != nil {
			m.quarantine(path)
			return
		}
		m.truncated++
	}
	j := &Job{
		m:       m,
		id:      recs[0].ID,
		kind:    recs[0].Kind,
		path:    recs[0].Path,
		total:   recs[0].Total,
		state:   StateRunning,
		points:  make(map[int]string),
		updated: time.Now(),
	}
	for _, rec := range recs[1:] {
		switch rec.Type {
		case RecPoint:
			j.points[rec.Index] = rec.Digest
		case RecDone:
			j.state = StateDone
		case RecFail:
			j.state = StateFailed
			j.errMsg = rec.Error
		case RecStart: // a retry of a failed job
			j.state = StateRunning
			j.errMsg = ""
		}
	}
	m.jobs[j.id] = j
}

func (m *Manager) quarantine(path string) {
	qdir := filepath.Join(m.dir, QuarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err == nil {
		if os.Rename(path, filepath.Join(qdir, filepath.Base(path))) == nil {
			m.quarantined++
			return
		}
	}
	os.Remove(path)
	m.quarantined++
}

// Start creates job id or reattaches to it. An existing done job is returned
// as-is (the caller serves from cache); a failed one flips back to running.
// The bool reports whether the job already existed.
func (m *Manager) Start(id, kind, path string, total int) (*Job, bool, error) {
	if !validID.MatchString(id) {
		return nil, false, fmt.Errorf("job: invalid id %q", id)
	}
	m.mu.Lock()
	if j := m.jobs[id]; j != nil {
		m.mu.Unlock()
		j.mu.Lock()
		if j.state == StateFailed {
			j.state = StateRunning
			j.errMsg = ""
			j.updated = time.Now()
			j.append(Record{Type: RecStart, ID: id, Kind: kind, Path: path, Total: total})
		}
		j.mu.Unlock()
		return j, true, nil
	}
	j := &Job{
		m:       m,
		id:      id,
		kind:    kind,
		path:    path,
		total:   total,
		state:   StateRunning,
		points:  make(map[int]string),
		updated: time.Now(),
	}
	m.jobs[id] = j
	m.mu.Unlock()
	j.mu.Lock()
	err := j.append(Record{Type: RecStart, ID: id, Kind: kind, Path: path, Total: total})
	j.mu.Unlock()
	return j, false, err
}

// Get returns job id, or nil.
func (m *Manager) Get(id string) *Job {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.jobs[id]
}

// Jobs returns every known job, ordered by ID.
func (m *Manager) Jobs() []*Job {
	m.mu.Lock()
	out := make([]*Job, 0, len(m.jobs))
	for _, j := range m.jobs {
		out = append(out, j)
	}
	m.mu.Unlock()
	sort.Slice(out, func(i, k int) bool { return out[i].id < out[k].id })
	return out
}

// Stats snapshots manager counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := Stats{Jobs: len(m.jobs), Quarantined: m.quarantined, Truncated: m.truncated}
	for _, j := range m.jobs {
		if j.State() == StateRunning {
			s.Running++
		}
	}
	return s
}

// Job is one journaled unit of work. All methods are safe for concurrent
// use; appends are fsynced so an acknowledged point survives SIGKILL.
type Job struct {
	m *Manager

	mu      sync.Mutex
	file    *os.File
	id      string
	kind    string
	path    string
	total   int
	points  map[int]string
	state   State
	errMsg  string
	updated time.Time
}

// append writes one frame to the journal. Callers hold j.mu. A memory-only
// manager appends nowhere.
func (j *Job) append(rec Record) error {
	if j.m.dir == "" {
		return nil
	}
	if j.file == nil {
		f, err := os.OpenFile(filepath.Join(j.m.dir, j.id+".journal"),
			os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			return fmt.Errorf("job: open journal: %w", err)
		}
		j.file = f
	}
	if _, err := j.file.Write(AppendFrame(rec)); err != nil {
		return fmt.Errorf("job: append: %w", err)
	}
	if err := j.file.Sync(); err != nil {
		return fmt.Errorf("job: sync: %w", err)
	}
	return nil
}

// Point records that point idx completed with the given result digest.
// Duplicate indices are idempotent — replayed or raced points append once.
func (j *Job) Point(idx int, digest string) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone {
		return nil
	}
	if _, ok := j.points[idx]; ok {
		return nil
	}
	j.points[idx] = digest
	j.updated = time.Now()
	return j.append(Record{Type: RecPoint, Index: idx, Digest: digest})
}

// Done marks the job complete and releases its journal handle.
func (j *Job) Done() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateDone {
		return nil
	}
	j.state = StateDone
	j.updated = time.Now()
	err := j.append(Record{Type: RecDone})
	j.closeFile()
	return err
}

// Fail marks the job failed; a later Start retries it.
func (j *Job) Fail(cause error) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state != StateRunning {
		return nil
	}
	j.state = StateFailed
	j.errMsg = cause.Error()
	j.updated = time.Now()
	return j.append(Record{Type: RecFail, Error: j.errMsg})
}

func (j *Job) closeFile() {
	if j.file != nil {
		j.file.Close()
		j.file = nil
	}
}

// ID returns the job's identifier (its result digest).
func (j *Job) ID() string { return j.id }

// State returns the job's current state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Path returns the request path + query recorded at start, the handle a
// resume loop re-issues.
func (j *Job) Path() string {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.path
}

// Completed reports how many distinct points have been recorded.
func (j *Job) Completed() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.points)
}

// HasPoint reports whether point idx already completed, and under which
// digest — the resume path's "skip this, it's cached" check.
func (j *Job) HasPoint(idx int) (string, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	d, ok := j.points[idx]
	return d, ok
}

// Snapshot returns the job's externally visible state.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	return Snapshot{
		ID:        j.id,
		Kind:      j.kind,
		Path:      j.path,
		State:     j.state,
		Total:     j.total,
		Completed: len(j.points),
		Error:     j.errMsg,
		Updated:   j.updated.Unix(),
	}
}
