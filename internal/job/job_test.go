package job

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testID = "a3f5c2d891b4e67f0123456789abcdef0123456789abcdef0123456789abcdef"

func TestJournalRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j, existed, err := m.Start(testID, "sweep", "/v1/sweep?machine=vclass&query=Q6", 5)
	if err != nil || existed {
		t.Fatalf("start: existed=%v err=%v", existed, err)
	}
	for i := 0; i < 3; i++ {
		if err := j.Point(i, "digest-of-point"); err != nil {
			t.Fatal(err)
		}
	}
	// Duplicate point: idempotent, no extra frame.
	before, _ := os.ReadFile(filepath.Join(dir, testID+".journal"))
	if err := j.Point(1, "digest-of-point"); err != nil {
		t.Fatal(err)
	}
	after, _ := os.ReadFile(filepath.Join(dir, testID+".journal"))
	if !bytes.Equal(before, after) {
		t.Fatal("duplicate point appended a frame")
	}

	// A new manager over the same dir sees the running job mid-flight.
	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j2 := m2.Get(testID)
	if j2 == nil {
		t.Fatal("job not recovered")
	}
	snap := j2.Snapshot()
	if snap.State != StateRunning || snap.Completed != 3 || snap.Total != 5 ||
		snap.Kind != "sweep" || !strings.Contains(snap.Path, "query=Q6") {
		t.Fatalf("recovered snapshot = %+v", snap)
	}
	if _, ok := j2.HasPoint(2); !ok {
		t.Fatal("point 2 lost in replay")
	}
	if _, ok := j2.HasPoint(4); ok {
		t.Fatal("point 4 invented by replay")
	}

	// Finish on the recovered handle; a third manager sees done.
	j2.Point(3, "d")
	j2.Point(4, "d")
	if err := j2.Done(); err != nil {
		t.Fatal(err)
	}
	m3, _ := Open(dir)
	if st := m3.Get(testID).State(); st != StateDone {
		t.Fatalf("state after done = %v", st)
	}
}

func TestJournalTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	m, _ := Open(dir)
	j, _, _ := m.Start(testID, "sweep", "/v1/sweep?q", 5)
	j.Point(0, "d0")
	j.Point(1, "d1")

	// SIGKILL mid-append: a partial frame lands at the tail.
	p := filepath.Join(dir, testID+".journal")
	f, err := os.OpenFile(p, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	full := AppendFrame(Record{Type: RecPoint, Index: 2, Digest: "d2"})
	f.Write(full[:len(full)/2])
	f.Close()

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Stats().Truncated != 1 {
		t.Fatalf("truncated = %d, want 1", m2.Stats().Truncated)
	}
	j2 := m2.Get(testID)
	if j2 == nil || j2.Completed() != 2 {
		t.Fatalf("recovered %v points, want the 2 before the tear", j2.Completed())
	}
	// Appending after recovery lands on a clean frame boundary.
	if err := j2.Point(2, "d2"); err != nil {
		t.Fatal(err)
	}
	m3, _ := Open(dir)
	if got := m3.Get(testID).Completed(); got != 3 {
		t.Fatalf("after post-tear append: %d points, want 3", got)
	}
}

func TestJournalCorruptQuarantined(t *testing.T) {
	dir := t.TempDir()
	m, _ := Open(dir)
	j, _, _ := m.Start(testID, "sweep", "/v1/sweep?q", 5)
	j.Point(0, "d0")
	j.Point(1, "d1")

	// Flip a byte mid-file (inside the first point frame, well past the
	// start record) — not a tear, a lie.
	p := filepath.Join(dir, testID+".journal")
	b, _ := os.ReadFile(p)
	b[len(b)/2] ^= 0xff
	os.WriteFile(p, b, 0o644)

	m2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Get(testID) != nil {
		t.Fatal("corrupt journal was trusted")
	}
	if m2.Stats().Quarantined != 1 {
		t.Fatalf("quarantined = %d, want 1", m2.Stats().Quarantined)
	}
	if _, err := os.Stat(filepath.Join(dir, QuarantineDir, testID+".journal")); err != nil {
		t.Fatalf("journal not in quarantine: %v", err)
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt journal still in place")
	}
}

func TestFailedJobRetries(t *testing.T) {
	dir := t.TempDir()
	m, _ := Open(dir)
	j, _, _ := m.Start(testID, "sweep", "/v1/sweep?q", 5)
	j.Point(0, "d0")
	j.Fail(errors.New("worker pool on fire"))
	if st := j.State(); st != StateFailed {
		t.Fatalf("state = %v", st)
	}

	// Restart: the failure is visible, then a re-Start resumes it with the
	// completed point intact.
	m2, _ := Open(dir)
	j2 := m2.Get(testID)
	if snap := j2.Snapshot(); snap.State != StateFailed || snap.Error == "" {
		t.Fatalf("recovered snapshot = %+v", snap)
	}
	j3, existed, err := m2.Start(testID, "sweep", "/v1/sweep?q", 5)
	if err != nil || !existed || j3 != j2 {
		t.Fatalf("reattach: existed=%v err=%v", existed, err)
	}
	if st := j3.State(); st != StateRunning {
		t.Fatalf("state after retry = %v", st)
	}
	if _, ok := j3.HasPoint(0); !ok {
		t.Fatal("retry lost the completed point")
	}
}

func TestMemoryOnlyManager(t *testing.T) {
	m, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	j, _, err := m.Start(testID, "sweep", "/v1/sweep?q", 2)
	if err != nil {
		t.Fatal(err)
	}
	j.Point(0, "d")
	j.Point(1, "d")
	if err := j.Done(); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs()) != 1 || m.Stats().Jobs != 1 {
		t.Fatal("memory-only job not tracked")
	}
}

func TestStartRejectsBadID(t *testing.T) {
	m, _ := Open(t.TempDir())
	for _, id := range []string{"", "../escape", "a/b", ".hidden", strings.Repeat("x", 200)} {
		if _, _, err := m.Start(id, "sweep", "/p", 1); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestJournalEmptyAndStartlessQuarantined(t *testing.T) {
	dir := t.TempDir()
	// A journal whose first record is not a start is unusable.
	frame := AppendFrame(Record{Type: RecPoint, Index: 0, Digest: "d"})
	os.WriteFile(filepath.Join(dir, "startless.journal"), frame, 0o644)
	os.WriteFile(filepath.Join(dir, "empty.journal"), nil, 0o644)
	m, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Stats().Quarantined; got != 2 {
		t.Fatalf("quarantined = %d, want 2", got)
	}
}
