// Package storage implements the bottom of the miniature DBMS: a shared
// buffer pool of slotted pages holding fixed-width binary tuples, in the
// style of the PostgreSQL releases the paper instrumented. The pool's bytes
// live in the simulated shared address space, so every field the executor
// touches is charged to the machine model at its real address.
package storage

import (
	"encoding/binary"
	"fmt"

	"dssmem/internal/memsys"
)

// PageSize is the database page size (PostgreSQL's 8 KiB).
const PageSize = 8192

// pageHeaderSize holds the slot count and padding at the start of each page.
const pageHeaderSize = 16

// Mem is the charging interface: the executor reports every simulated memory
// reference and every block of plain instructions through it. simos.Process
// implements it; NullMem discards (used while bulk-loading the database,
// which happens before the measured region).
type Mem interface {
	Load(addr memsys.Addr, size int)
	Store(addr memsys.Addr, size int)
	Work(n uint64)
}

// NullMem is a Mem that charges nothing.
type NullMem struct{}

// Load implements Mem.
func (NullMem) Load(memsys.Addr, int) {}

// Store implements Mem.
func (NullMem) Store(memsys.Addr, int) {}

// Work implements Mem.
func (NullMem) Work(uint64) {}

// Column describes one fixed-width attribute (width 4 or 8 bytes).
type Column struct {
	Name  string
	Width int
}

// Schema is an ordered set of columns with precomputed offsets.
type Schema struct {
	cols    []Column
	offsets []int
	width   int
}

// NewSchema builds a schema; widths must be 4 or 8.
func NewSchema(cols ...Column) *Schema {
	s := &Schema{cols: cols, offsets: make([]int, len(cols))}
	for i, c := range cols {
		if c.Width != 4 && c.Width != 8 {
			panic(fmt.Sprintf("storage: column %s width %d (want 4 or 8)", c.Name, c.Width))
		}
		s.offsets[i] = s.width
		s.width += c.Width
	}
	return s
}

// NumCols returns the column count.
func (s *Schema) NumCols() int { return len(s.cols) }

// Col returns column i's description.
func (s *Schema) Col(i int) Column { return s.cols[i] }

// ColIndex returns the index of the named column, or panics: schema lookups
// are code, not user input.
func (s *Schema) ColIndex(name string) int {
	for i, c := range s.cols {
		if c.Name == name {
			return i
		}
	}
	panic("storage: unknown column " + name)
}

// TupleWidth is the byte width of one tuple.
func (s *Schema) TupleWidth() int { return s.width }

// Offset is the byte offset of column i within a tuple.
func (s *Schema) Offset(i int) int { return s.offsets[i] }

// TuplesPerPage is how many tuples fit on one page.
func (s *Schema) TuplesPerPage() int { return (PageSize - pageHeaderSize) / s.width }

// PageKind tags what a pool page holds, supporting the paper's taxonomy of
// DBMS data (record data, index data, metadata, private data).
type PageKind uint8

// Page kinds.
const (
	PageUnknown PageKind = iota
	PageRecord
	PageIndex
)

// TID names a tuple: pool page number and slot.
type TID struct {
	Page uint32
	Slot uint16
}

// Pool is the shared buffer pool: a contiguous array of pages whose backing
// bytes double as the simulated memory contents. The paper's configuration
// (512 MB pool for a ~400 MB database) means the whole database is resident,
// so the pool is sized to hold everything and never replaces.
type Pool struct {
	base  memsys.Addr
	data  []byte
	kinds []PageKind
	pages int
	used  int
}

// NewPool allocates a pool of the given page count at base in the shared
// region.
func NewPool(base memsys.Addr, pages int) *Pool {
	return &Pool{
		base:  base,
		data:  make([]byte, pages*PageSize),
		kinds: make([]PageKind, pages),
		pages: pages,
	}
}

// Base returns the pool's base address in the simulated address space.
func (p *Pool) Base() memsys.Addr { return p.base }

// Size returns the pool capacity in bytes.
func (p *Pool) Size() uint64 { return uint64(p.pages) * PageSize }

// Pages returns the pool capacity in pages; Used the allocated count.
func (p *Pool) Pages() int { return p.pages }

// Used returns the number of allocated pages.
func (p *Pool) Used() int { return p.used }

// AllocPage reserves the next free page and returns its number.
func (p *Pool) AllocPage() int {
	if p.used >= p.pages {
		panic("storage: buffer pool exhausted; size the pool to hold the database")
	}
	pg := p.used
	p.used++
	return pg
}

// MarkPage tags page pg with its kind.
func (p *Pool) MarkPage(pg int, kind PageKind) { p.kinds[pg] = kind }

// UsedData returns the backing bytes of the allocated pages (checkpoint
// capture). The caller must not retain the slice across further allocations.
func (p *Pool) UsedData() []byte { return p.data[:p.used*PageSize] }

// UsedKinds returns the page-kind tags of the allocated pages (checkpoint
// capture); same aliasing caveat as UsedData.
func (p *Pool) UsedKinds() []PageKind { return p.kinds[:p.used] }

// Restore overwrites a freshly created pool with a captured page image:
// len(data)/PageSize pages become allocated with the given kinds. It is the
// checkpoint-restore counterpart of UsedData/UsedKinds and fails (never
// panics) on any shape mismatch, so a decoded-but-inconsistent snapshot falls
// back to a full rebuild.
func (p *Pool) Restore(data []byte, kinds []PageKind) error {
	if len(data)%PageSize != 0 {
		return fmt.Errorf("storage: restore: %d bytes is not a whole number of pages", len(data))
	}
	n := len(data) / PageSize
	if n != len(kinds) {
		return fmt.Errorf("storage: restore: %d pages but %d kind tags", n, len(kinds))
	}
	if n > p.pages {
		return fmt.Errorf("storage: restore: %d pages exceed pool capacity %d", n, p.pages)
	}
	copy(p.data, data)
	copy(p.kinds, kinds)
	p.used = n
	return nil
}

// KindOf returns the page kind of pg (PageUnknown when out of range).
func (p *Pool) KindOf(pg int) PageKind {
	if pg < 0 || pg >= len(p.kinds) {
		return PageUnknown
	}
	return p.kinds[pg]
}

// KindOfAddr classifies a simulated address within the pool.
func (p *Pool) KindOfAddr(addr memsys.Addr) PageKind {
	if addr < p.base {
		return PageUnknown
	}
	return p.KindOf(int((addr - p.base) / PageSize))
}

// PageAddr returns the simulated address of page pg.
func (p *Pool) PageAddr(pg int) memsys.Addr {
	return p.base + memsys.Addr(pg)*PageSize
}

// PageBytes returns the backing bytes of page pg.
func (p *Pool) PageBytes(pg int) []byte {
	return p.data[pg*PageSize : (pg+1)*PageSize]
}

// slotCount reads the page's tuple count from its header.
func (p *Pool) slotCount(pg int) int {
	return int(binary.LittleEndian.Uint16(p.PageBytes(pg)))
}

func (p *Pool) setSlotCount(pg, n int) {
	binary.LittleEndian.PutUint16(p.PageBytes(pg), uint16(n))
}

// Heap is a heap file: an ordered list of pool pages of fixed-width tuples.
type Heap struct {
	pool   *Pool
	schema *Schema
	pages  []int
	count  int
}

// NewHeap creates an empty heap file in pool.
func NewHeap(pool *Pool, schema *Schema) *Heap {
	return &Heap{pool: pool, schema: schema}
}

// RestoreHeap rebuilds a heap over already-restored pool pages (checkpoint
// restore). pages and count must describe exactly what a sequence of Appends
// produced: every page allocated, count filling ceil(count/per) pages. Any
// inconsistency is an error, never a panic.
func RestoreHeap(pool *Pool, schema *Schema, pages []int, count int) (*Heap, error) {
	per := schema.TuplesPerPage()
	if count < 0 {
		return nil, fmt.Errorf("storage: restore heap: negative tuple count %d", count)
	}
	want := (count + per - 1) / per
	if want != len(pages) {
		return nil, fmt.Errorf("storage: restore heap: %d tuples need %d pages, image has %d", count, want, len(pages))
	}
	for _, pg := range pages {
		if pg < 0 || pg >= pool.Used() {
			return nil, fmt.Errorf("storage: restore heap: page %d outside allocated pool [0,%d)", pg, pool.Used())
		}
	}
	return &Heap{pool: pool, schema: schema, pages: append([]int(nil), pages...), count: count}, nil
}

// Schema returns the heap's tuple schema.
func (h *Heap) Schema() *Schema { return h.schema }

// NumTuples returns the row count.
func (h *Heap) NumTuples() int { return h.count }

// NumPages returns the page count.
func (h *Heap) NumPages() int { return len(h.pages) }

// PoolPage returns the pool page number of the heap's i-th page.
func (h *Heap) PoolPage(i int) int { return h.pages[i] }

// Append adds a row (one int64 per column; 4-byte columns are truncated) and
// returns its TID. Append is a bulk-load operation: it charges nothing.
func (h *Heap) Append(vals []int64) TID {
	if len(vals) != h.schema.NumCols() {
		panic("storage: arity mismatch")
	}
	per := h.schema.TuplesPerPage()
	slot := h.count % per
	if slot == 0 {
		pg := h.pool.AllocPage()
		h.pool.MarkPage(pg, PageRecord)
		h.pages = append(h.pages, pg)
	}
	pg := h.pages[len(h.pages)-1]
	bytes := h.pool.PageBytes(pg)
	off := pageHeaderSize + slot*h.schema.TupleWidth()
	for i, v := range vals {
		o := off + h.schema.Offset(i)
		switch h.schema.Col(i).Width {
		case 4:
			binary.LittleEndian.PutUint32(bytes[o:], uint32(v))
		default:
			binary.LittleEndian.PutUint64(bytes[o:], uint64(v))
		}
	}
	h.pool.setSlotCount(pg, slot+1)
	h.count++
	return TID{Page: uint32(pg), Slot: uint16(slot)}
}

// SlotsOn returns the tuple count of the heap's i-th page (charging the
// header read).
func (h *Heap) SlotsOn(m Mem, i int) int {
	pg := h.pages[i]
	m.Load(h.pool.PageAddr(pg), 2)
	return h.pool.slotCount(pg)
}

// fieldAddr returns the simulated address and byte offset of a field.
func (h *Heap) fieldAddr(tid TID, col int) (memsys.Addr, int, int) {
	off := pageHeaderSize + int(tid.Slot)*h.schema.TupleWidth() + h.schema.Offset(col)
	return h.pool.PageAddr(int(tid.Page)) + memsys.Addr(off), int(tid.Page), off
}

// ReadField reads one column of the tuple at tid, charging the load.
func (h *Heap) ReadField(m Mem, tid TID, col int) int64 {
	addr, pg, off := h.fieldAddr(tid, col)
	w := h.schema.Col(col).Width
	m.Load(addr, w)
	bytes := h.pool.PageBytes(pg)
	if w == 4 {
		return int64(int32(binary.LittleEndian.Uint32(bytes[off:])))
	}
	return int64(binary.LittleEndian.Uint64(bytes[off:]))
}

// WriteField updates one column in place, charging the store.
func (h *Heap) WriteField(m Mem, tid TID, col int, v int64) {
	addr, pg, off := h.fieldAddr(tid, col)
	w := h.schema.Col(col).Width
	m.Store(addr, w)
	bytes := h.pool.PageBytes(pg)
	if w == 4 {
		binary.LittleEndian.PutUint32(bytes[off:], uint32(v))
	} else {
		binary.LittleEndian.PutUint64(bytes[off:], uint64(v))
	}
}

// TupleAddr returns the simulated address of the tuple header at tid (the
// location hint-bit writes touch).
func (h *Heap) TupleAddr(tid TID) memsys.Addr {
	off := pageHeaderSize + int(tid.Slot)*h.schema.TupleWidth()
	return h.pool.PageAddr(int(tid.Page)) + memsys.Addr(off)
}

// TIDOf returns the TID of global row r (rows are appended densely).
func (h *Heap) TIDOf(r int) TID {
	per := h.schema.TuplesPerPage()
	return TID{Page: uint32(h.pages[r/per]), Slot: uint16(r % per)}
}
