package storage

import (
	"testing"
	"testing/quick"

	"dssmem/internal/memsys"
)

// recordingMem captures the addresses the storage layer charges.
type recordingMem struct {
	loads, stores []memsys.Addr
	work          uint64
}

func (r *recordingMem) Load(a memsys.Addr, size int)  { r.loads = append(r.loads, a) }
func (r *recordingMem) Store(a memsys.Addr, size int) { r.stores = append(r.stores, a) }
func (r *recordingMem) Work(n uint64)                 { r.work += n }

func testSchema() *Schema {
	return NewSchema(
		Column{Name: "k", Width: 8},
		Column{Name: "a", Width: 4},
		Column{Name: "b", Width: 8},
	)
}

func TestSchemaLayout(t *testing.T) {
	s := testSchema()
	if s.TupleWidth() != 20 {
		t.Fatalf("width = %d", s.TupleWidth())
	}
	if s.Offset(0) != 0 || s.Offset(1) != 8 || s.Offset(2) != 12 {
		t.Fatal("offsets wrong")
	}
	if s.ColIndex("b") != 2 {
		t.Fatal("ColIndex wrong")
	}
	if s.TuplesPerPage() != (PageSize-16)/20 {
		t.Fatalf("tpp = %d", s.TuplesPerPage())
	}
}

func TestSchemaRejectsBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewSchema(Column{Name: "x", Width: 3})
}

func TestAppendAndRead(t *testing.T) {
	pool := NewPool(0x10000, 16)
	h := NewHeap(pool, testSchema())
	m := NullMem{}
	for i := 0; i < 1000; i++ {
		tid := h.Append([]int64{int64(i), int64(i * 2), int64(-i)})
		if got := h.ReadField(m, tid, 0); got != int64(i) {
			t.Fatalf("k = %d, want %d", got, i)
		}
	}
	if h.NumTuples() != 1000 {
		t.Fatalf("count = %d", h.NumTuples())
	}
	wantPages := (1000 + testSchema().TuplesPerPage() - 1) / testSchema().TuplesPerPage()
	if h.NumPages() != wantPages {
		t.Fatalf("pages = %d, want %d", h.NumPages(), wantPages)
	}
	// Re-read everything via TIDOf.
	for i := 0; i < 1000; i++ {
		tid := h.TIDOf(i)
		if h.ReadField(m, tid, 2) != int64(-i) {
			t.Fatalf("row %d corrupted", i)
		}
	}
}

func Test4ByteColumnSignedness(t *testing.T) {
	pool := NewPool(0, 2)
	h := NewHeap(pool, testSchema())
	tid := h.Append([]int64{1, -42, 2})
	if got := h.ReadField(NullMem{}, tid, 1); got != -42 {
		t.Fatalf("got %d, want -42", got)
	}
}

func TestWriteField(t *testing.T) {
	pool := NewPool(0, 2)
	h := NewHeap(pool, testSchema())
	tid := h.Append([]int64{1, 2, 3})
	m := &recordingMem{}
	h.WriteField(m, tid, 2, 99)
	if h.ReadField(NullMem{}, tid, 2) != 99 {
		t.Fatal("write lost")
	}
	if len(m.stores) != 1 {
		t.Fatal("store not charged")
	}
}

func TestChargedAddressesAreWithinPage(t *testing.T) {
	base := memsys.Addr(0x40000)
	pool := NewPool(base, 4)
	h := NewHeap(pool, testSchema())
	var tids []TID
	for i := 0; i < 500; i++ {
		tids = append(tids, h.Append([]int64{int64(i), 0, 0}))
	}
	m := &recordingMem{}
	for _, tid := range tids {
		h.ReadField(m, tid, 0)
	}
	if len(m.loads) != 500 {
		t.Fatalf("loads = %d", len(m.loads))
	}
	// Addresses must be monotonically non-decreasing for a sequential scan
	// (dense append), which is what gives seqscans their spatial locality.
	for i := 1; i < len(m.loads); i++ {
		if m.loads[i] < m.loads[i-1] {
			t.Fatal("sequential scan addresses not monotonic")
		}
	}
	end := base + memsys.Addr(pool.Size())
	for _, a := range m.loads {
		if a < base || a >= end {
			t.Fatalf("address %#x outside the pool", a)
		}
	}
}

func TestSlotsOnChargesHeaderRead(t *testing.T) {
	pool := NewPool(0, 4)
	h := NewHeap(pool, testSchema())
	h.Append([]int64{1, 2, 3})
	h.Append([]int64{4, 5, 6})
	m := &recordingMem{}
	if n := h.SlotsOn(m, 0); n != 2 {
		t.Fatalf("slots = %d", n)
	}
	if len(m.loads) != 1 {
		t.Fatal("header read not charged")
	}
}

func TestPoolExhaustionPanics(t *testing.T) {
	pool := NewPool(0, 1)
	pool.AllocPage()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	pool.AllocPage()
}

func TestArityMismatchPanics(t *testing.T) {
	pool := NewPool(0, 1)
	h := NewHeap(pool, testSchema())
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	h.Append([]int64{1})
}

// Property: round-tripping arbitrary rows preserves values (8-byte columns
// exactly; 4-byte columns modulo int32).
func TestRoundTripProperty(t *testing.T) {
	f := func(rows [][3]int64) bool {
		if len(rows) > 3000 {
			rows = rows[:3000]
		}
		pool := NewPool(0x1000, len(rows)/100+2)
		h := NewHeap(pool, testSchema())
		tids := make([]TID, len(rows))
		for i, r := range rows {
			tids[i] = h.Append([]int64{r[0], r[1], r[2]})
		}
		for i, r := range rows {
			if h.ReadField(NullMem{}, tids[i], 0) != r[0] {
				return false
			}
			if h.ReadField(NullMem{}, tids[i], 1) != int64(int32(r[1])) {
				return false
			}
			if h.ReadField(NullMem{}, tids[i], 2) != r[2] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: TIDOf agrees with the TIDs returned by Append.
func TestTIDOfProperty(t *testing.T) {
	f := func(n uint16) bool {
		count := int(n%2000) + 1
		pool := NewPool(0, count/100+2)
		h := NewHeap(pool, testSchema())
		tids := make([]TID, count)
		for i := 0; i < count; i++ {
			tids[i] = h.Append([]int64{int64(i), 0, 0})
		}
		for i := 0; i < count; i++ {
			if h.TIDOf(i) != tids[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
