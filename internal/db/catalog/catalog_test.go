package catalog

import (
	"testing"

	"dssmem/internal/db/btree"
	"dssmem/internal/db/dbtest"
	"dssmem/internal/db/storage"
)

func testCatalog() (*Catalog, *storage.Pool) {
	pool := storage.NewPool(0x100000, 8)
	return New(0x1000, 1<<16), pool
}

func TestCreateAndLookup(t *testing.T) {
	c, pool := testCatalog()
	h := storage.NewHeap(pool, storage.NewSchema(storage.Column{Name: "k", Width: 8}))
	r := c.Create("t1", h)
	if r.ID == 0 || r.Name != "t1" || r.MetaAddr == 0 {
		t.Fatalf("relation: %+v", r)
	}
	p := &dbtest.FakeProc{}
	got := c.Lookup(p, "t1")
	if got != r {
		t.Fatal("lookup returned wrong relation")
	}
	if p.Loads < 3 || p.Works == 0 {
		t.Fatal("catalog probe charged nothing")
	}
	if c.Relations() != 1 {
		t.Fatalf("relations = %d", c.Relations())
	}
}

func TestDuplicateCreatePanics(t *testing.T) {
	c, pool := testCatalog()
	h := storage.NewHeap(pool, storage.NewSchema(storage.Column{Name: "k", Width: 8}))
	c.Create("t", h)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Create("t", h)
}

func TestUnknownLookupPanics(t *testing.T) {
	c, _ := testCatalog()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Lookup(storage.NullMem{}, "missing")
}

func TestIndexAttachment(t *testing.T) {
	c, pool := testCatalog()
	h := storage.NewHeap(pool, storage.NewSchema(storage.Column{Name: "k", Width: 8}))
	r := c.Create("t", h)
	ix := btree.New(pool)
	c.AddIndex(r, "t_pk", ix)
	if r.Index("t_pk") != ix {
		t.Fatal("index lost")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for missing index")
		}
	}()
	r.Index("nope")
}

func TestMetaAddrsLineAligned(t *testing.T) {
	c, pool := testCatalog()
	var prev *Relation
	for i := 0; i < 10; i++ {
		h := storage.NewHeap(pool, storage.NewSchema(storage.Column{Name: "k", Width: 8}))
		r := c.Create(string(rune('a'+i)), h)
		if r.MetaAddr%64 != 0 {
			t.Fatalf("meta addr %#x not line aligned", r.MetaAddr)
		}
		if prev != nil && r.MetaAddr == prev.MetaAddr {
			t.Fatal("catalog rows alias")
		}
		prev = r
	}
}
