// Package catalog holds relation metadata in simulated shared memory. The
// paper's DBMS data taxonomy distinguishes record data, index data, metadata
// and private data; catalog entries are the metadata with high temporal
// locality ("private data and metadata both have temporal locality").
package catalog

import (
	"dssmem/internal/db/btree"
	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
)

// Relation describes one table: its heap, its indexes, and the address of its
// catalog tuple (pg_class row) in shared memory.
type Relation struct {
	ID       int
	Name     string
	Heap     *storage.Heap
	Indexes  map[string]*btree.Tree
	MetaAddr memsys.Addr
}

// Index returns the named index or panics (schema references are code).
func (r *Relation) Index(name string) *btree.Tree {
	ix := r.Indexes[name]
	if ix == nil {
		panic("catalog: relation " + r.Name + " has no index " + name)
	}
	return ix
}

// Catalog is the system catalog.
type Catalog struct {
	rels  map[string]*Relation
	byID  map[int]*Relation
	alloc *memsys.Allocator
	next  int
}

// New creates a catalog whose metadata tuples live at [base, base+size).
func New(base memsys.Addr, size uint64) *Catalog {
	return &Catalog{
		rels:  make(map[string]*Relation),
		byID:  make(map[int]*Relation),
		alloc: memsys.NewAllocator("catalog", base, size),
	}
}

// Create registers a relation over an existing heap.
func (c *Catalog) Create(name string, heap *storage.Heap) *Relation {
	if _, dup := c.rels[name]; dup {
		panic("catalog: duplicate relation " + name)
	}
	c.next++
	r := &Relation{
		ID:       c.next,
		Name:     name,
		Heap:     heap,
		Indexes:  make(map[string]*btree.Tree),
		MetaAddr: c.alloc.Alloc(128, 64), // one pg_class row, line-aligned
	}
	c.rels[name] = r
	c.byID[r.ID] = r
	return r
}

// AddIndex attaches an index to a relation.
func (c *Catalog) AddIndex(rel *Relation, name string, t *btree.Tree) {
	rel.Indexes[name] = t
}

// Lookup resolves a relation by name, charging the metadata reads a real
// catalog probe performs (syscache lookups of the pg_class row).
func (c *Catalog) Lookup(m storage.Mem, name string) *Relation {
	r := c.rels[name]
	if r == nil {
		panic("catalog: unknown relation " + name)
	}
	m.Work(40) // syscache hash + comparisons
	m.Load(r.MetaAddr, 8)
	m.Load(r.MetaAddr+8, 8)
	m.Load(r.MetaAddr+16, 8)
	return r
}

// Relations returns the number of registered relations.
func (c *Catalog) Relations() int { return len(c.rels) }

// All returns every relation in creation (ID) order. Create assigns IDs and
// metadata addresses sequentially, so rebuilding relations in this order
// reproduces identical MetaAddrs — what checkpoint restore relies on.
func (c *Catalog) All() []*Relation {
	out := make([]*Relation, 0, len(c.byID))
	for id := 1; id <= c.next; id++ {
		if r := c.byID[id]; r != nil {
			out = append(out, r)
		}
	}
	return out
}
