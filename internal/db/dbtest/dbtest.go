// Package dbtest provides a lightweight fake process for testing the DBMS
// layers without instantiating a machine model: time advances with work, and
// all charges are tallied.
package dbtest

import "dssmem/internal/memsys"

// FakeProc satisfies engine.Proc/lock.Proc/storage.Mem.
type FakeProc struct {
	Clock    uint64
	Loads    uint64
	Stores   uint64
	Works    uint64
	Spins    uint64
	Backoffs uint64

	// Trace captures charged addresses when non-nil.
	Trace []memsys.Addr
	Keep  bool
}

// Load implements the charging interface.
func (f *FakeProc) Load(a memsys.Addr, size int) {
	f.Loads++
	f.Clock += 2
	if f.Keep {
		f.Trace = append(f.Trace, a)
	}
}

// Store implements the charging interface.
func (f *FakeProc) Store(a memsys.Addr, size int) {
	f.Stores++
	f.Clock += 2
	if f.Keep {
		f.Trace = append(f.Trace, a)
	}
}

// Work implements the charging interface.
func (f *FakeProc) Work(n uint64) {
	f.Works += n
	f.Clock += n
}

// Spin implements lock.Proc.
func (f *FakeProc) Spin() {
	f.Spins++
	f.Clock += 4
}

// Backoff implements lock.Proc.
func (f *FakeProc) Backoff() {
	f.Backoffs++
	f.Clock += 100_000
}

// Now implements lock.Proc.
func (f *FakeProc) Now() uint64 { return f.Clock }
