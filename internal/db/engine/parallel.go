package engine

import "dssmem/internal/db/storage"

// Parallel (bound–weave) support. The engine's only shared mutable state on
// the warm read-only path is the hint-bit record (hintsSet/HintWrites) and
// the lock stack. In bound–weave mode each process buffers its hint stores in
// a per-process shard — the visibility decision reads the frozen global map
// (mutated only at the weave) plus the process's own shard — and the locks
// switch to their own shard mode (see lock/parallel.go). Weave merges the
// shards with the earliest store winning, an order-independent reduction, so
// results do not depend on goroutine scheduling.
//
// Because the kernel window is no longer than the hint race window
// (engine.DefaultHintRaceWindow spans several scheduler quanta), two
// processes racing past one unhinted tuple in the same window each pay the
// check-and-store — which is exactly what the serial race-window model
// charges them.
//
// Cold pools are not supported in parallel mode (the first-toucher I/O dedupe
// is order-dependent); workload falls back to serial for cold runs.

type dbShard struct {
	hints      map[storage.TID]uint64
	hintWrites uint64
	_          [64]byte
}

type dbPar struct {
	shards []dbShard
}

// EnableParallel switches the database — its hint-bit path, buffer-manager
// spinlock and lock manager — into bound–weave mode for nprocs processes.
// Call after Open and before the run; Weave must then run at every kernel
// window boundary.
func (db *Database) EnableParallel(nprocs int) {
	if db.resident != nil {
		panic("engine: parallel mode does not support cold pools")
	}
	par := &dbPar{shards: make([]dbShard, nprocs)}
	for i := range par.shards {
		par.shards[i].hints = make(map[storage.TID]uint64)
	}
	db.par = par
	db.BufMgrLock.EnableParallel(nprocs)
	db.LockMgr.EnableParallel(nprocs)
}

// checkHintsPar is CheckHints' bound-phase tail: called after the tuple
// hashed into the hinted fraction, with now = the process clock.
func (s *Session) checkHintsPar(tid storage.TID, now uint64) (setAt uint64, done bool) {
	db := s.DB
	sh := &db.par.shards[s.PID]
	setAt, done = db.hintsSet[tid]
	if !done {
		setAt, done = sh.hints[tid]
	}
	if !done {
		sh.hints[tid] = now
	}
	return setAt, done
}

// Weave folds the per-process hint shards into the authoritative map (first
// store wins) and the write counters, then weaves the lock stack.
func (db *Database) Weave() {
	for i := range db.par.shards {
		sh := &db.par.shards[i]
		for tid, t := range sh.hints {
			if prev, ok := db.hintsSet[tid]; !ok || t < prev {
				db.hintsSet[tid] = t
			}
		}
		clear(sh.hints)
		db.HintWrites += sh.hintWrites
		sh.hintWrites = 0
	}
	db.BufMgrLock.Weave()
	db.LockMgr.Weave()
}
