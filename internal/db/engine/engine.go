// Package engine assembles the miniature DBMS: shared-memory layout, buffer
// manager, catalog, lock manager, and per-process sessions. It corresponds to
// the single instrumented PostgreSQL executable of the paper: every session
// operation charges its memory references to the machine model via the
// process handle.
package engine

import (
	"dssmem/internal/db/btree"
	"dssmem/internal/db/catalog"
	"dssmem/internal/db/lock"
	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
	"dssmem/internal/perfctr"
)

// Proc is the process view the engine charges work to; *simos.Process
// implements it (see lock.Proc).
type Proc = lock.Proc

// Config sizes the database's shared memory.
type Config struct {
	// PoolPages is the buffer pool capacity; size it to hold the whole
	// database (the paper configured a 512 MB pool for a ~400 MB database).
	PoolPages int
	// SpinLimit overrides the spin count before select() back-off (0 =
	// default).
	SpinLimit int
	// BufHeaderBytes is the size of one buffer descriptor. The era's
	// PostgreSQL did not pad descriptors to cache lines, so neighbouring
	// headers share lines and false-share; 64+ makes each header line-private
	// on 32/64-byte-line machines (an ablation knob).
	BufHeaderBytes int
	// HintBitFraction is the fraction of tuples whose first visibility check
	// consults the shared transaction log and then writes hint bits back
	// into the tuple header — a store into the shared record page. The
	// paper averaged four trials per configuration, the first on freshly
	// loaded tables with no hint bits set, so about a quarter of all tuple
	// visits pay this path. Negative disables; 0 selects the default.
	HintBitFraction float64
	// HintRaceWindow is the simulated-cycle window within which concurrent
	// scanners racing past the same tuple all repeat the visibility check and
	// hint store (none of them sees the others' store in time). 0 selects
	// the default.
	HintRaceWindow uint64
	// ColdPool starts the buffer pool empty: the first pin of each page pays
	// a disk read of IOLatency cycles (a blocking I/O and thus a voluntary
	// context switch). The paper's steady-state measurements ran warm — its
	// pool held the whole database — so this models the first of its four
	// trials. 0 latency with ColdPool selects DefaultIOLatency.
	ColdPool  bool
	IOLatency uint64
}

// DefaultIOLatency approximates one 8 ms disk read at 200 MHz.
const DefaultIOLatency = 1_600_000

// DefaultHintRaceWindow spans a few scheduler quanta of lockstep skew.
const DefaultHintRaceWindow = 100_000

// DefaultHintBitFraction reflects the paper's 4-trial averaging over a
// freshly loaded database (see Config.HintBitFraction).
const DefaultHintBitFraction = 0.25

// Database is one DBMS instance over one simulated machine's shared memory.
type Database struct {
	cfg Config

	Pool    *storage.Pool
	Catalog *catalog.Catalog
	LockMgr *lock.Manager

	// BufMgrLock serializes buffer lookups and pins, as the single spinlock
	// did in the paper's PostgreSQL. It is the main contention point.
	BufMgrLock *lock.SpinLock

	bufHdrBase   memsys.Addr
	bufHashBase  memsys.Addr
	freelistAddr memsys.Addr
	pgLogBase    memsys.Addr
	hintPermille uint64
	hintRace     uint64
	hintsSet     map[storage.TID]uint64 // TID -> time of the first hint store
	ioLatency    uint64
	resident     []bool // per pool page; nil when the pool starts warm

	// DiskReads counts simulated device reads (cold pool only).
	DiskReads uint64

	// HintWrites counts hint-bit stores into shared record pages.
	HintWrites uint64

	// SharedBytes is the total shared footprint, used to size the machine's
	// dense directory region.
	SharedBytes uint64

	// par, when non-nil, switches the hint-bit path into bound–weave mode
	// (see parallel.go).
	par *dbPar
}

// DefaultBufHeaderBytes matches the unpadded descriptors of the era.
const DefaultBufHeaderBytes = 32

// Layout constants for the fixed head of shared memory.
const (
	bufMgrLockOff = 0       // one line for BufMgrLock (+ freelist head)
	pgLogOff      = 1 << 10 // transaction-status (pg_log) hot pages
	pgLogBytes    = 2 << 10
	lockMgrOff    = 4 << 10  // lock + transaction hash tables
	catalogOff    = 64 << 10 // system catalog tuples
	bufHashOff    = 128 << 10
)

// Open creates a database with an empty pool.
func Open(cfg Config) *Database {
	if cfg.PoolPages <= 0 {
		panic("engine: PoolPages must be positive")
	}
	if cfg.BufHeaderBytes <= 0 {
		cfg.BufHeaderBytes = DefaultBufHeaderBytes
	}
	hdrBytes := uint64(cfg.PoolPages * cfg.BufHeaderBytes)
	hashBytes := uint64(cfg.PoolPages * 16) // buffer hash table
	bufHdrBase := memsys.SharedBase + memsys.Addr(bufHashOff) + memsys.Addr(hashBytes)
	poolBase := (bufHdrBase + memsys.Addr(hdrBytes) + storage.PageSize - 1) &^ (storage.PageSize - 1)

	db := &Database{
		cfg:         cfg,
		Pool:        storage.NewPool(poolBase, cfg.PoolPages),
		Catalog:     catalog.New(memsys.SharedBase+catalogOff, bufHashOff-catalogOff),
		LockMgr:     lock.NewManager(memsys.SharedBase+lockMgrOff, 64),
		BufMgrLock:  lock.NewSpinLock(memsys.SharedBase + bufMgrLockOff),
		bufHdrBase:  bufHdrBase,
		bufHashBase: memsys.SharedBase + bufHashOff,
	}
	if cfg.SpinLimit > 0 {
		db.BufMgrLock.SpinLimit = cfg.SpinLimit
	}
	db.freelistAddr = memsys.SharedBase + bufMgrLockOff + 64
	db.pgLogBase = memsys.SharedBase + pgLogOff
	frac := cfg.HintBitFraction
	switch {
	case frac < 0:
		frac = 0
	case frac == 0:
		frac = DefaultHintBitFraction
	}
	db.hintPermille = uint64(frac * 1000)
	db.hintRace = cfg.HintRaceWindow
	if db.hintRace == 0 {
		db.hintRace = DefaultHintRaceWindow
	}
	db.hintsSet = make(map[storage.TID]uint64)
	if cfg.ColdPool {
		db.resident = make([]bool, cfg.PoolPages)
		db.ioLatency = cfg.IOLatency
		if db.ioLatency == 0 {
			db.ioLatency = DefaultIOLatency
		}
	}
	db.SharedBytes = uint64(poolBase) + uint64(cfg.PoolPages)*storage.PageSize
	return db
}

// Classify maps a simulated address to the paper's data taxonomy: record
// pages, index pages, shared metadata (locks, pg_log, catalog, buffer
// headers/hash), or backend-private memory.
func (db *Database) Classify(addr memsys.Addr) perfctr.Region {
	if _, priv := memsys.IsPrivate(addr); priv {
		return perfctr.RegionPrivate
	}
	switch db.Pool.KindOfAddr(addr) {
	case storage.PageRecord:
		return perfctr.RegionRecord
	case storage.PageIndex:
		return perfctr.RegionIndex
	}
	return perfctr.RegionMetadata
}

// CreateTable makes a relation with the given schema.
func (db *Database) CreateTable(name string, schema *storage.Schema) *catalog.Relation {
	heap := storage.NewHeap(db.Pool, schema)
	return db.Catalog.Create(name, heap)
}

// BuildIndex creates a B+tree on rel keyed by column col. Bulk-load time, so
// nothing is charged.
func (db *Database) BuildIndex(rel *catalog.Relation, name string, col int) *btree.Tree {
	t := btree.New(db.Pool)
	h := rel.Heap
	for i := 0; i < h.NumTuples(); i++ {
		tid := h.TIDOf(i)
		t.Insert(h.ReadField(storage.NullMem{}, tid, col), tid)
	}
	db.Catalog.AddIndex(rel, name, t)
	return t
}

// headerAddr returns the buffer descriptor address of pool page pg.
func (db *Database) headerAddr(pg int) memsys.Addr {
	return db.bufHdrBase + memsys.Addr(pg*db.cfg.BufHeaderBytes)
}

// hashAddr returns the buffer hash-table bucket address of pool page pg.
func (db *Database) hashAddr(pg int) memsys.Addr {
	return db.bufHashBase + memsys.Addr((pg%db.cfg.PoolPages)*16)
}

// Session is one backend process's handle onto the database.
type Session struct {
	DB  *Database
	P   Proc
	PID int

	// Stats.
	Pins   uint64
	Unpins uint64
}

// NewSession opens a backend for process pid.
func (db *Database) NewSession(p Proc, pid int) *Session {
	return &Session{DB: db, P: p, PID: pid}
}

// ioWaiter is the optional process capability cold-pool reads need;
// *simos.Process provides it.
type ioWaiter interface{ IOWait(cycles uint64) }

// maybeReadFromDisk pays the device read for a page's first touch when the
// pool starts cold. The page is marked resident before the wait so racing
// processes ride the same in-flight I/O instead of issuing duplicates.
func (s *Session) maybeReadFromDisk(pg int) {
	db := s.DB
	if db.resident == nil || db.resident[pg] {
		return
	}
	db.resident[pg] = true
	db.DiskReads++
	s.P.Work(900) // filesystem + driver path
	if w, ok := s.P.(ioWaiter); ok {
		w.IOWait(db.ioLatency)
	} else {
		s.P.Work(db.ioLatency)
	}
}

// PinPage looks up and pins a pool page: BufMgrLock, buffer hash probe, and a
// reference-count bump in the buffer descriptor — the shared-metadata writes
// that the paper identifies as the communication between query processes.
func (s *Session) PinPage(pg int) {
	db := s.DB
	s.maybeReadFromDisk(pg)
	db.BufMgrLock.Acquire(s.P, s.PID)
	s.P.Load(db.hashAddr(pg), 8) // hash bucket
	s.P.Work(18)                 // tag compare + bufmgr logic
	s.P.Load(db.headerAddr(pg), 8)
	s.P.Store(db.headerAddr(pg), 8) // refcount++
	// Unlink the buffer from the shared freelist (PG 6.5 kept every unpinned
	// buffer on a doubly-linked freelist, so each pin writes its head).
	s.P.Store(db.freelistAddr, 8)
	db.BufMgrLock.Release(s.P, s.PID)
	s.Pins++
}

// UnpinPage drops a pin (ReleaseBuffer). Releases touch only the buffer
// descriptor itself (per-buffer spinlock semantics), not the global
// BufMgrLock.
func (s *Session) UnpinPage(pg int) {
	db := s.DB
	s.P.Store(db.headerAddr(pg), 8) // refcount--
	s.P.Store(db.freelistAddr, 8)   // re-link onto the shared freelist
	s.P.Work(8)
	s.Unpins++
}

// WithPage pins pg, runs fn, and unpins.
func (s *Session) WithPage(pg int, fn func()) {
	s.PinPage(pg)
	fn()
	s.UnpinPage(pg)
}

// LockRelationShared takes the relation-level read lock, as each query does
// once per referenced table.
func (s *Session) LockRelationShared(rel *catalog.Relation) {
	s.DB.LockMgr.AcquireShared(s.P, s.PID, rel.ID)
}

// UnlockRelationShared releases it at end of query.
func (s *Session) UnlockRelationShared(rel *catalog.Relation) {
	s.DB.LockMgr.ReleaseShared(s.P, s.PID, rel.ID)
}

// CheckHints models the visibility check of one tuple: a deterministic
// subset of tuples (those "recently" written, HintBitFraction of them) have
// no hint bits yet, so their first reader consults the shared transaction
// log and writes HEAP_XMIN_COMMITTED back into the tuple header — a store to
// the shared record page that invalidates every other scanning process's
// copy of that line. This is the per-tuple shared-metadata communication the
// paper's multi-process runs expose.
func (s *Session) CheckHints(heap *storage.Heap, tid storage.TID) {
	db := s.DB
	if db.hintPermille == 0 {
		return
	}
	h := (uint64(tid.Page)*2654435761 + uint64(tid.Slot)) * 0x9E3779B97F4A7C15
	if (h>>32)%1000 >= db.hintPermille {
		return
	}
	now := s.P.Now()
	if db.par != nil {
		if setAt, done := s.checkHintsPar(tid, now); done && now > setAt+db.hintRace {
			return
		}
		db.par.shards[s.PID].hintWrites++
	} else if setAt, done := db.hintsSet[tid]; done {
		// Another process already stored the hint. If this process is racing
		// within the concurrency window it has not seen that store and
		// repeats the check and the store itself; otherwise the hint is
		// visible and the check is free.
		if now > setAt+db.hintRace {
			return
		}
		db.HintWrites++
	} else {
		db.hintsSet[tid] = now
		db.HintWrites++
	}
	s.P.Work(60) // HeapTupleSatisfies + TransactionIdDidCommit
	s.P.Load(db.pgLogBase+memsys.Addr(h%pgLogBytes), 8)
	s.P.Store(heap.TupleAddr(tid), 2)
}

// Lookup resolves a table by name with charged catalog reads.
func (s *Session) Lookup(name string) *catalog.Relation {
	return s.DB.Catalog.Lookup(memAdapter{s.P}, name)
}

// memAdapter narrows Proc to storage.Mem.
type memAdapter struct{ p Proc }

func (m memAdapter) Load(a memsys.Addr, size int)  { m.p.Load(a, size) }
func (m memAdapter) Store(a memsys.Addr, size int) { m.p.Store(a, size) }
func (m memAdapter) Work(n uint64)                 { m.p.Work(n) }

// Mem returns the session's charging interface for storage-level calls.
func (s *Session) Mem() storage.Mem { return memAdapter{s.P} }
