package engine

import (
	"testing"

	"dssmem/internal/db/dbtest"
	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
	"dssmem/internal/perfctr"
)

func testDB() *Database {
	return Open(Config{PoolPages: 64})
}

func kvSchema() *storage.Schema {
	return storage.NewSchema(
		storage.Column{Name: "k", Width: 8},
		storage.Column{Name: "v", Width: 8},
	)
}

func TestOpenLayout(t *testing.T) {
	db := testDB()
	if db.Pool.Base()%storage.PageSize != 0 {
		t.Fatal("pool not page aligned")
	}
	if db.SharedBytes < uint64(db.Pool.Base()) {
		t.Fatal("shared size wrong")
	}
	if db.BufMgrLock == nil || db.LockMgr == nil || db.Catalog == nil {
		t.Fatal("components missing")
	}
}

func TestOpenRejectsZeroPool(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Open(Config{})
}

func TestCreateTableAndIndex(t *testing.T) {
	db := testDB()
	rel := db.CreateTable("t", kvSchema())
	for i := 0; i < 500; i++ {
		rel.Heap.Append([]int64{int64(i % 50), int64(i)})
	}
	ix := db.BuildIndex(rel, "t_k", 0)
	if ix.Len() != 500 {
		t.Fatalf("index entries = %d", ix.Len())
	}
	got := ix.Lookup(storage.NullMem{}, 7, nil)
	if len(got) != 10 { // 500 rows, 50 distinct keys
		t.Fatalf("lookup = %d entries", len(got))
	}
}

func TestPinUnpinChargesSharedMetadata(t *testing.T) {
	db := testDB()
	p := &dbtest.FakeProc{Keep: true}
	s := db.NewSession(p, 0)
	s.PinPage(3)
	if s.Pins != 1 {
		t.Fatal("pin not counted")
	}
	// Pin path: lock word load+store, hash load, header load+store.
	if p.Loads < 3 || p.Stores < 2 {
		t.Fatalf("pin charges: loads=%d stores=%d", p.Loads, p.Stores)
	}
	s.UnpinPage(3)
	if s.Unpins != 1 {
		t.Fatal("unpin not counted")
	}
	// All charged addresses are in the shared region (before the pool end).
	for _, a := range p.Trace {
		if uint64(a) >= db.SharedBytes {
			t.Fatalf("addr %#x outside shared layout", a)
		}
	}
}

func TestDistinctHeaderAddresses(t *testing.T) {
	db := testDB()
	if db.headerAddr(0) == db.headerAddr(1) {
		t.Fatal("headers alias")
	}
	if db.headerAddr(1)-db.headerAddr(0) != DefaultBufHeaderBytes {
		t.Fatal("header stride wrong")
	}
}

func TestHeaderPaddingKnob(t *testing.T) {
	db := Open(Config{PoolPages: 8, BufHeaderBytes: 128})
	if db.headerAddr(1)-db.headerAddr(0) != 128 {
		t.Fatal("BufHeaderBytes not honored")
	}
}

func TestWithPage(t *testing.T) {
	db := testDB()
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	ran := false
	s.WithPage(0, func() { ran = true })
	if !ran || s.Pins != 1 || s.Unpins != 1 {
		t.Fatal("WithPage bookkeeping broken")
	}
}

func TestRelationLockFlow(t *testing.T) {
	db := testDB()
	rel := db.CreateTable("t", kvSchema())
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	s.LockRelationShared(rel)
	if db.LockMgr.Readers(rel.ID) != 1 {
		t.Fatal("lock not taken")
	}
	s.UnlockRelationShared(rel)
	if db.LockMgr.Readers(rel.ID) != 0 {
		t.Fatal("lock not released")
	}
}

func TestSessionLookupCharges(t *testing.T) {
	db := testDB()
	db.CreateTable("t", kvSchema())
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	if s.Lookup("t") == nil || p.Loads == 0 {
		t.Fatal("catalog lookup not charged")
	}
}

func TestPoolDataDoesNotOverlapMetadata(t *testing.T) {
	db := testDB()
	rel := db.CreateTable("t", kvSchema())
	tid := rel.Heap.Append([]int64{1, 2})
	// The first tuple's address must be beyond the metadata regions.
	if db.Pool.PageAddr(int(tid.Page)) < db.bufHdrBase {
		t.Fatal("pool overlaps buffer headers")
	}
}

func TestClassifyRegions(t *testing.T) {
	db := testDB()
	rel := db.CreateTable("t", kvSchema())
	tid := rel.Heap.Append([]int64{1, 2})
	db.BuildIndex(rel, "t_k", 0)
	// Record page.
	if r := db.Classify(db.Pool.PageAddr(int(tid.Page))); r != perfctr.RegionRecord {
		t.Fatalf("record page classified %v", r)
	}
	// Index page: find one via the pool kinds.
	found := false
	for pg := 0; pg < db.Pool.Used(); pg++ {
		if db.Pool.KindOf(pg) == storage.PageIndex {
			if r := db.Classify(db.Pool.PageAddr(pg)); r != perfctr.RegionIndex {
				t.Fatalf("index page classified %v", r)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no index pages marked")
	}
	// Metadata: the BufMgrLock line.
	if r := db.Classify(memsys.SharedBase); r != perfctr.RegionMetadata {
		t.Fatalf("lock word classified %v", r)
	}
	// Private region.
	if r := db.Classify(memsys.PrivateBase(3) + 64); r != perfctr.RegionPrivate {
		t.Fatalf("private addr classified %v", r)
	}
}

func TestHintBitsDeterministicSubset(t *testing.T) {
	db := Open(Config{PoolPages: 64, HintBitFraction: 0.25})
	rel := db.CreateTable("t", kvSchema())
	var tids []storage.TID
	for i := 0; i < 4000; i++ {
		tids = append(tids, rel.Heap.Append([]int64{int64(i), 0}))
	}
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	for _, tid := range tids {
		s.CheckHints(rel.Heap, tid)
	}
	frac := float64(db.HintWrites) / float64(len(tids))
	if frac < 0.18 || frac > 0.32 {
		t.Fatalf("hint fraction %.3f, want ~0.25", frac)
	}
	// Second pass far in the future: everything already set, no new writes.
	p.Clock += 10_000_000
	before := db.HintWrites
	for _, tid := range tids {
		s.CheckHints(rel.Heap, tid)
	}
	if db.HintWrites != before {
		t.Fatalf("late re-check rewrote hints: %d -> %d", before, db.HintWrites)
	}
}

func TestHintBitRaceWindow(t *testing.T) {
	db := Open(Config{PoolPages: 64, HintBitFraction: 1.0, HintRaceWindow: 1000})
	rel := db.CreateTable("t", kvSchema())
	tid := rel.Heap.Append([]int64{1, 2})
	a := &dbtest.FakeProc{}
	b := &dbtest.FakeProc{Clock: 500} // inside the race window
	c := &dbtest.FakeProc{Clock: 50_000}
	sa, sb, sc := db.NewSession(a, 0), db.NewSession(b, 1), db.NewSession(c, 2)
	sa.CheckHints(rel.Heap, tid)
	if db.HintWrites != 1 {
		t.Fatalf("first writer: %d", db.HintWrites)
	}
	sb.CheckHints(rel.Heap, tid) // racing: repeats the store
	if db.HintWrites != 2 {
		t.Fatalf("racer should re-store: %d", db.HintWrites)
	}
	sc.CheckHints(rel.Heap, tid) // far later: sees the hint
	if db.HintWrites != 2 {
		t.Fatalf("late reader should not store: %d", db.HintWrites)
	}
}

func TestHintBitsDisabled(t *testing.T) {
	db := Open(Config{PoolPages: 8, HintBitFraction: -1})
	rel := db.CreateTable("t", kvSchema())
	tid := rel.Heap.Append([]int64{1, 2})
	p := &dbtest.FakeProc{}
	db.NewSession(p, 0).CheckHints(rel.Heap, tid)
	if db.HintWrites != 0 || p.Stores != 0 {
		t.Fatal("disabled hints still wrote")
	}
}

func TestColdPoolFallbackWithoutIOWaiter(t *testing.T) {
	// A Proc without the IOWait capability (the test fake) still pays the
	// device latency as busy time.
	db := Open(Config{PoolPages: 8, ColdPool: true, IOLatency: 5000})
	rel := db.CreateTable("t", kvSchema())
	tid := rel.Heap.Append([]int64{1, 2})
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	before := p.Clock
	s.PinPage(int(tid.Page))
	if db.DiskReads != 1 {
		t.Fatalf("disk reads = %d", db.DiskReads)
	}
	if p.Clock-before < 5000 {
		t.Fatal("I/O latency not charged")
	}
	// Second pin: resident, no new read.
	s.UnpinPage(int(tid.Page))
	s.PinPage(int(tid.Page))
	if db.DiskReads != 1 {
		t.Fatal("resident page re-read")
	}
}
