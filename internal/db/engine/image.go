package engine

import (
	"fmt"
	"sort"

	"dssmem/internal/db/btree"
	"dssmem/internal/db/storage"
)

// Image is the warm-state snapshot of a loaded database at the measured-region
// boundary: the buffer-pool page bytes plus the structural metadata (heaps,
// indexes, schemas) needed to rebuild live handles over them. The warmup
// prelude runs entirely through storage.NullMem — it never touches the machine
// model — so this image, together with a fresh machine, IS the complete warm
// state of a run at the point workload.run calls ResetCounters.
//
// The image's identity depends only on the dataset (SF, seed) and the two
// knobs that shape the shared-memory layout: PoolPages and BufHeaderBytes.
// Machine spec, query, process count and trial provably do not affect it.
type Image struct {
	// Layout identity: FromImage refuses a config that disagrees.
	PoolPages      int
	BufHeaderBytes int
	SharedBytes    uint64

	// PoolData and Kinds cover exactly the allocated pages.
	PoolData []byte
	Kinds    []storage.PageKind

	// Rels lists relations in catalog creation (ID) order, so restore
	// reproduces identical catalog metadata addresses.
	Rels []RelImage
}

// RelImage is one relation's structural metadata.
type RelImage struct {
	Name    string
	Cols    []storage.Column // heap schema, in column order
	Pages   []int            // heap pages, in append order
	Count   int              // heap tuple count
	Indexes []IndexImage     // sorted by name for deterministic encoding
}

// IndexImage is one B+tree's structural metadata; its nodes live in PoolData.
type IndexImage struct {
	Name string
	Root int
	Size int
}

// Image captures the database's warm state. Call it only at the bulk-load
// boundary (before any charged execution): runtime state accumulated by
// queries — hint-bit history, lock state, pin counts — is deliberately not
// captured, because the measured region must start from the same state a
// fresh load produces.
func (db *Database) Image() *Image {
	img := &Image{
		PoolPages:      db.cfg.PoolPages,
		BufHeaderBytes: db.cfg.BufHeaderBytes,
		SharedBytes:    db.SharedBytes,
		PoolData:       append([]byte(nil), db.Pool.UsedData()...),
		Kinds:          append([]storage.PageKind(nil), db.Pool.UsedKinds()...),
	}
	for _, rel := range db.Catalog.All() {
		ri := RelImage{Name: rel.Name, Count: rel.Heap.NumTuples()}
		sch := rel.Heap.Schema()
		for i := 0; i < sch.NumCols(); i++ {
			ri.Cols = append(ri.Cols, sch.Col(i))
		}
		for i := 0; i < rel.Heap.NumPages(); i++ {
			ri.Pages = append(ri.Pages, rel.Heap.PoolPage(i))
		}
		names := make([]string, 0, len(rel.Indexes))
		for name := range rel.Indexes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			t := rel.Indexes[name]
			ri.Indexes = append(ri.Indexes, IndexImage{Name: name, Root: t.Root(), Size: t.Len()})
		}
		img.Rels = append(img.Rels, ri)
	}
	return img
}

// FromImage opens a database restored from a warm-state image, applying the
// run's runtime knobs (spin limit, hint bits, cold pool) fresh from cfg while
// taking the pool contents and structural metadata from the image. The
// restored database is byte-identical — same addresses, same page bytes, same
// catalog metadata — to one built by Open + load under the same cfg.
//
// Every structural claim the image makes is validated; a stale or corrupt
// image yields an error (callers fall back to a full rebuild), never a panic.
func FromImage(img *Image, cfg Config) (*Database, error) {
	if img == nil {
		return nil, fmt.Errorf("engine: restore: nil image")
	}
	if cfg.PoolPages != img.PoolPages {
		return nil, fmt.Errorf("engine: restore: config wants %d pool pages, image has %d", cfg.PoolPages, img.PoolPages)
	}
	effHdr := cfg.BufHeaderBytes
	if effHdr <= 0 {
		effHdr = DefaultBufHeaderBytes
	}
	if effHdr != img.BufHeaderBytes {
		return nil, fmt.Errorf("engine: restore: config wants %d-byte buffer headers, image has %d", effHdr, img.BufHeaderBytes)
	}
	db := Open(cfg)
	if db.SharedBytes != img.SharedBytes {
		return nil, fmt.Errorf("engine: restore: layout drift: open computes %d shared bytes, image recorded %d", db.SharedBytes, img.SharedBytes)
	}
	if err := db.Pool.Restore(img.PoolData, img.Kinds); err != nil {
		return nil, fmt.Errorf("engine: restore: %w", err)
	}
	seen := make(map[string]bool, len(img.Rels))
	for _, ri := range img.Rels {
		if ri.Name == "" || seen[ri.Name] {
			return nil, fmt.Errorf("engine: restore: empty or duplicate relation name %q", ri.Name)
		}
		seen[ri.Name] = true
		for _, c := range ri.Cols {
			if c.Width != 4 && c.Width != 8 {
				return nil, fmt.Errorf("engine: restore: relation %s column %q has width %d", ri.Name, c.Name, c.Width)
			}
		}
		if len(ri.Cols) == 0 {
			return nil, fmt.Errorf("engine: restore: relation %s has no columns", ri.Name)
		}
		heap, err := storage.RestoreHeap(db.Pool, storage.NewSchema(ri.Cols...), ri.Pages, ri.Count)
		if err != nil {
			return nil, fmt.Errorf("engine: restore: relation %s: %w", ri.Name, err)
		}
		rel := db.Catalog.Create(ri.Name, heap)
		for _, ix := range ri.Indexes {
			t, err := btree.Restore(db.Pool, ix.Root, ix.Size)
			if err != nil {
				return nil, fmt.Errorf("engine: restore: index %s.%s: %w", ri.Name, ix.Name, err)
			}
			db.Catalog.AddIndex(rel, ix.Name, t)
		}
	}
	return db, nil
}
