package lock

import (
	"testing"

	"dssmem/internal/memsys"
)

// fakeProc is a minimal Proc for unit tests: time advances with work.
type fakeProc struct {
	now      uint64
	loads    int
	stores   int
	spins    int
	backoffs int
}

func (f *fakeProc) Load(memsys.Addr, int)  { f.loads++; f.now += 2 }
func (f *fakeProc) Store(memsys.Addr, int) { f.stores++; f.now += 2 }
func (f *fakeProc) Work(n uint64)          { f.now += n }
func (f *fakeProc) Spin()                  { f.spins++; f.now += 4 }
func (f *fakeProc) Backoff()               { f.backoffs++; f.now += 10_000 }
func (f *fakeProc) Now() uint64            { return f.now }

func TestSpinLockBasic(t *testing.T) {
	l := NewSpinLock(0x100)
	p := &fakeProc{}
	l.Acquire(p, 1)
	if l.HeldBy() != 1 {
		t.Fatalf("owner = %d", l.HeldBy())
	}
	l.Release(p, 1)
	if l.HeldBy() != -1 {
		t.Fatal("not released")
	}
	if l.Acquires != 1 || l.Contended != 0 {
		t.Fatalf("stats: %+v", *l)
	}
	if p.loads == 0 || p.stores == 0 {
		t.Fatal("lock word traffic not charged")
	}
}

func TestSpinLockContentionWhileHeld(t *testing.T) {
	l := NewSpinLock(0x100)
	a, b := &fakeProc{}, &fakeProc{}
	l.Acquire(a, 1)
	if l.TryAcquire(b, 2) {
		t.Fatal("acquired a held lock")
	}
	held := l.acquiredAt
	l.Release(a, 1)
	// b's clock inside a's hold window (minus the lock-word load it charges
	// before checking): blocked.
	b.now = held - 2
	if l.TryAcquire(b, 2) {
		t.Fatal("acquired inside the previous hold window")
	}
	b.now = a.now + 1
	if !l.TryAcquire(b, 2) {
		t.Fatal("free lock not acquired")
	}
}

func TestSpinLockBacksOffAfterSpinLimit(t *testing.T) {
	l := NewSpinLock(0x100)
	l.SpinLimit = 5
	a := &fakeProc{}
	l.Acquire(a, 1)
	l.Release(a, 1)
	// Record a long historical hold; a process inside it must spin/back off
	// until its clock passes the window.
	b := &fakeProc{}
	l.windows.add(0, 60_000)
	l.Acquire(b, 2)
	if b.backoffs == 0 {
		t.Fatal("expected at least one backoff")
	}
	if b.spins == 0 {
		t.Fatal("expected spinning before backoff")
	}
	if l.Contended == 0 {
		t.Fatal("contention not recorded")
	}
}

func TestSpinLockReleaseByNonOwnerPanics(t *testing.T) {
	l := NewSpinLock(0)
	p := &fakeProc{}
	l.Acquire(p, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Release(p, 2)
}

func TestLWLockSharedCompatible(t *testing.T) {
	l := NewLWLock(0x200)
	a, b := &fakeProc{}, &fakeProc{}
	l.Acquire(a, 1, Shared)
	l.Acquire(b, 2, Shared) // must not block
	if b.backoffs != 0 {
		t.Fatal("shared lock blocked a reader")
	}
	l.Release(a, 1, Shared)
	l.Release(b, 2, Shared)
	if l.sharers != 0 {
		t.Fatalf("sharers = %d", l.sharers)
	}
}

func TestLWLockExclusiveBlocksUntilWindowPasses(t *testing.T) {
	l := NewLWLock(0x200)
	a := &fakeProc{}
	l.Acquire(a, 1, Exclusive)
	a.Work(5000)
	l.Release(a, 1, Exclusive)
	b := &fakeProc{} // clock 0, will attempt inside a's hold window
	l.Acquire(b, 2, Exclusive)
	if b.backoffs == 0 && b.spins == 0 {
		t.Fatal("exclusive window ignored")
	}
	if b.now <= 100 {
		t.Fatal("waiter did not advance past the window")
	}
	l.Release(b, 2, Exclusive)
}

func TestLWLockSharedBlocksExclusive(t *testing.T) {
	l := NewLWLock(0x200)
	a, b := &fakeProc{}, &fakeProc{}
	l.Acquire(a, 1, Shared)
	got := make(chan struct{})
	// Run the blocking acquire in the same goroutine by bounding it: with a
	// fakeProc, Acquire would loop forever while the reader holds. Check via
	// the internal grant logic instead.
	if l.exclusive || l.sharers != 1 {
		t.Fatal("state broken")
	}
	close(got)
	l.Release(a, 1, Shared)
	l.Acquire(b, 2, Exclusive)
	if !l.exclusive {
		t.Fatal("exclusive not granted after reader left")
	}
	l.Release(b, 2, Exclusive)
}

func TestLWLockReleaseUnderflowPanics(t *testing.T) {
	l := NewLWLock(0)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	l.Release(&fakeProc{}, 1, Shared)
}

func TestManagerSharedLocksNeverBlock(t *testing.T) {
	m := NewManager(0x1000, 16)
	procs := make([]*fakeProc, 8)
	for i := range procs {
		procs[i] = &fakeProc{now: uint64(i) * 10}
		m.AcquireShared(procs[i], i, 42)
	}
	if m.Readers(42) != 8 {
		t.Fatalf("readers = %d", m.Readers(42))
	}
	for i, p := range procs {
		m.ReleaseShared(p, i, 42)
	}
	if m.Readers(42) != 0 {
		t.Fatal("readers not drained")
	}
	if m.RelationAcquires != 8 {
		t.Fatalf("stats: %d", m.RelationAcquires)
	}
}

func TestManagerEntriesGetDistinctAddresses(t *testing.T) {
	m := NewManager(0x1000, 16)
	p := &fakeProc{}
	m.AcquireShared(p, 0, 1)
	m.AcquireShared(p, 0, 2)
	if m.entry(1, -1).addr == m.entry(2, -1).addr {
		t.Fatal("lock entries alias")
	}
}

func TestManagerReleaseUnderflowPanics(t *testing.T) {
	m := NewManager(0x1000, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReleaseShared(&fakeProc{}, 0, 7)
}

func TestManagerGeneratesSharedTableWrites(t *testing.T) {
	m := NewManager(0x1000, 16)
	p := &fakeProc{}
	m.AcquireShared(p, 0, 42)
	if p.stores < 3 { // mutex TAS + grant + proclock record
		t.Fatalf("stores = %d, want >= 3 (lock metadata writes)", p.stores)
	}
}

func TestManagerExclusiveBlocksReaders(t *testing.T) {
	m := NewManager(0x1000, 16)
	w := &fakeProc{}
	m.AcquireExclusive(w, 1, 42)
	if m.WriterOf(42) != 1 {
		t.Fatalf("writer = %d", m.WriterOf(42))
	}
	w.Work(5000)
	m.ReleaseExclusive(w, 1, 42)
	if m.WriterOf(42) != -1 {
		t.Fatal("writer not released")
	}
	// A reader attempting inside the writer's hold window must back off.
	r := &fakeProc{now: 100}
	m.AcquireShared(r, 2, 42)
	if r.backoffs == 0 && r.now < 5000 {
		t.Fatal("reader ignored the exclusive window")
	}
	m.ReleaseShared(r, 2, 42)
}

func TestManagerExclusiveBlocksExclusive(t *testing.T) {
	m := NewManager(0x1000, 16)
	a := &fakeProc{}
	m.AcquireExclusive(a, 1, 7)
	a.Work(9000)
	m.ReleaseExclusive(a, 1, 7)
	b := &fakeProc{} // inside a's window
	m.AcquireExclusive(b, 2, 7)
	if b.backoffs == 0 && b.now < 9000 {
		t.Fatal("second writer ignored the window")
	}
	m.ReleaseExclusive(b, 2, 7)
}

func TestManagerRowLocksIndependent(t *testing.T) {
	m := NewManager(0x1000, 16)
	a := &fakeProc{}
	m.AcquireRowExclusive(a, 1, 42, 100)
	// Start b past a's LockMgr-mutex hold window so only row-lock conflicts
	// could block it.
	b := &fakeProc{now: a.now + 100}
	m.AcquireRowExclusive(b, 2, 42, 200) // different row: no blocking
	if b.backoffs != 0 {
		t.Fatal("distinct rows should not conflict")
	}
	m.ReleaseRowExclusive(a, 1, 42, 100)
	m.ReleaseRowExclusive(b, 2, 42, 200)
	if m.RowAcquires != 2 {
		t.Fatalf("row acquires = %d", m.RowAcquires)
	}
}

func TestManagerExclusiveReleaseByNonOwnerPanics(t *testing.T) {
	m := NewManager(0x1000, 16)
	p := &fakeProc{}
	m.AcquireExclusive(p, 1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.ReleaseExclusive(p, 2, 5)
}
