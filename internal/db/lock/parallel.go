package lock

import (
	"fmt"
	"sort"
	"sync"

	"dssmem/internal/memsys"
)

// Parallel (bound–weave) support. During the bound phase every simulated
// process runs as its own goroutine, so lock state can no longer be mutated
// at acquisition time. Instead each process judges contention against the
// frozen authoritative state (the held flag, owner and window ring as of the
// last weave — mutated only by Weave, with all processes parked) and records
// its acquire/release transitions in a per-process shard. Weave then applies
// all shards' events in deterministic (timestamp, pid) order, rebuilding the
// authoritative state and the hold-window history the next window's
// contention checks will see.
//
// The fidelity cost is that two processes can hold one spinlock at
// overlapping simulated times within a single window — their holds only
// become visible to each other at the next weave. The skew is bounded by the
// kernel window, the same order of error the windowRing mechanism already
// absorbs for quantum-batched serial execution (see DESIGN.md §11).
//
// LWLock has no parallel mode: nothing on the workload's parallel path uses
// it (the buffer manager and lock manager are spinlock-based), and its
// sharer/exclusive state would need the same shard treatment. It remains
// serial-only.

type spinEvent struct {
	t       uint64
	release bool
}

type spinShard struct {
	holding   bool
	events    []spinEvent
	acquires  uint64
	contended uint64
	backoffs  uint64
	_         [64]byte // keep shards off each other's cache lines
}

type spinPar struct {
	shards    []spinShard
	openStart []uint64 // weave-side: per-pid start of the open hold
	merged    []mergedSpinEvent
}

type mergedSpinEvent struct {
	spinEvent
	pid int32
	seq int32
}

// EnableParallel switches the lock into bound–weave mode for nprocs
// processes. Call before the run; Weave must then run at every kernel window
// boundary.
func (l *SpinLock) EnableParallel(nprocs int) {
	l.par = &spinPar{
		shards:    make([]spinShard, nprocs),
		openStart: make([]uint64, nprocs),
	}
}

// tryAcquirePar is the bound-phase test-and-set: the decision reads only
// frozen authoritative state and the process's own shard.
func (l *SpinLock) tryAcquirePar(p Proc, pid int) bool {
	sh := &l.par.shards[pid]
	p.Load(l.addr, 8) // read the lock word
	now := p.Now()
	if (l.held && l.owner != pid) || l.windows.covers(now) {
		return false
	}
	sh.holding = true
	sh.events = append(sh.events, spinEvent{t: now})
	p.Store(l.addr, 8) // TAS write: takes the line exclusive
	return true
}

// acquirePar mirrors Acquire's spin/back-off loop with shard-local stats.
func (l *SpinLock) acquirePar(p Proc, pid int) {
	sh := &l.par.shards[pid]
	sh.acquires++
	if l.tryAcquirePar(p, pid) {
		notifyAcquired(p, l.addr, false)
		return
	}
	sh.contended++
	spins := 0
	for {
		spins++
		if spins > l.spinLimit() {
			spins = 0
			sh.backoffs++
			p.Backoff()
		} else {
			p.Spin()
		}
		if l.tryAcquirePar(p, pid) {
			notifyAcquired(p, l.addr, true)
			return
		}
	}
}

// releasePar records the release; ownership is tracked in the shard (a hold
// may span a window boundary, in which case the weave has already published
// it into the authoritative held/owner fields).
func (l *SpinLock) releasePar(p Proc, pid int) {
	sh := &l.par.shards[pid]
	if !sh.holding {
		panic(fmt.Sprintf("lock: release by non-holder: addr=%#x pid=%d", l.addr, pid))
	}
	sh.holding = false
	p.Store(l.addr, 8)
	sh.events = append(sh.events, spinEvent{t: p.Now(), release: true})
}

// Weave applies the window's logged transitions in (timestamp, pid) order and
// folds the shard stats into the lock's counters. Overlapping holds from
// different processes each contribute their own hold window; the last applied
// transition wins the held/owner fields, which is exactly the bounded skew
// the window model tolerates.
func (l *SpinLock) Weave() {
	par := l.par
	total := 0
	for i := range par.shards {
		total += len(par.shards[i].events)
	}
	if total == 0 {
		return
	}
	par.merged = par.merged[:0]
	for pid := range par.shards {
		sh := &par.shards[pid]
		for seq, ev := range sh.events {
			par.merged = append(par.merged, mergedSpinEvent{spinEvent: ev, pid: int32(pid), seq: int32(seq)})
		}
		l.Acquires += sh.acquires
		l.Contended += sh.contended
		l.Backoffs += sh.backoffs
		sh.acquires, sh.contended, sh.backoffs = 0, 0, 0
		sh.events = sh.events[:0]
	}
	sort.Slice(par.merged, func(i, j int) bool {
		a, b := &par.merged[i], &par.merged[j]
		if a.t != b.t {
			return a.t < b.t
		}
		if a.pid != b.pid {
			return a.pid < b.pid
		}
		return a.seq < b.seq
	})
	for i := range par.merged {
		ev := &par.merged[i]
		if !ev.release {
			par.openStart[ev.pid] = ev.t
			l.held = true
			l.owner = int(ev.pid)
			l.acquiredAt = ev.t
			continue
		}
		start := par.openStart[ev.pid]
		end := ev.t
		if end <= start {
			end = start + 1
		}
		l.windows.add(start, end)
		if l.owner == int(ev.pid) {
			l.held = false
			l.owner = -1
		}
	}
}

// --- Manager ---

type relEvKind uint8

const (
	evSharedAcq relEvKind = iota
	evSharedRel
	evExAcq
	evExRel
)

type relEvent struct {
	t    uint64
	row  int64
	rel  int32
	kind relEvKind
}

type mgrShard struct {
	events           []relEvent
	relationAcquires uint64
	rowAcquires      uint64
	_                [64]byte
}

type mgrPar struct {
	mu     sync.RWMutex // guards the entries map's structure (lazy inserts)
	shards []mgrShard
	merged []mergedRelEvent
}

type mergedRelEvent struct {
	relEvent
	pid int32
	seq int32
}

// EnableParallel switches the manager (and its table spinlock) into
// bound–weave mode.
func (m *Manager) EnableParallel(nprocs int) {
	m.par = &mgrPar{shards: make([]mgrShard, nprocs)}
	m.mutex.EnableParallel(nprocs)
}

// entryPar resolves (rel, row) with a lazily created entry whose table
// address is derived from the key alone — unlike the serial first-touch
// nextOff allocation, the address must not depend on which process happens to
// create the entry first.
func (m *Manager) entryPar(rel int, row int64) *relEntry {
	k := relKey{rel: rel, row: row}
	m.par.mu.RLock()
	e := m.entries[k]
	m.par.mu.RUnlock()
	if e != nil {
		return e
	}
	m.par.mu.Lock()
	defer m.par.mu.Unlock()
	if e = m.entries[k]; e != nil {
		return e
	}
	bucket := (uint64(rel)*31 + uint64(row)) % uint64(m.buckets)
	slot := ((uint64(rel)*2654435761 + uint64(row)) >> 7) % 4
	e = &relEntry{addr: m.base + memsys.Addr(bucket*128+slot*32)}
	m.entries[k] = e
	return e
}

// acquireSharedPar is AcquireShared's bound-phase path: the grant decision
// reads the frozen writer flag and window history; the reader count moves at
// the weave.
func (m *Manager) acquireSharedPar(p Proc, pid, rel int) {
	sh := &m.par.shards[pid]
	sh.relationAcquires++
	for {
		m.mutex.acquirePar(p, pid)
		e := m.entryPar(rel, -1)
		p.Load(e.addr, 8)
		p.Work(30)
		if !e.writer && !e.exWindows.covers(p.Now()) {
			sh.events = append(sh.events, relEvent{t: p.Now(), rel: int32(rel), row: -1, kind: evSharedAcq})
			p.Store(e.addr, 8)
			p.Store(e.addr+8, 8)
			m.mutex.releasePar(p, pid)
			return
		}
		m.mutex.releasePar(p, pid)
		p.Backoff()
	}
}

func (m *Manager) releaseSharedPar(p Proc, pid, rel int) {
	m.mutex.acquirePar(p, pid)
	e := m.entryPar(rel, -1)
	p.Load(e.addr, 8)
	m.par.shards[pid].events = append(m.par.shards[pid].events,
		relEvent{t: p.Now(), rel: int32(rel), row: -1, kind: evSharedRel})
	p.Store(e.addr, 8)
	p.Work(20)
	m.mutex.releasePar(p, pid)
}

// acquireExclusivePar mirrors acquireExclusive against frozen state. The
// reader count it consults lags by up to one window; read-only workloads (the
// paper's queries) never reach this path.
func (m *Manager) acquireExclusivePar(p Proc, pid, rel int, row int64) {
	for {
		m.mutex.acquirePar(p, pid)
		e := m.entryPar(rel, row)
		p.Load(e.addr, 8)
		p.Work(30)
		if !e.writer && e.readers == 0 && !e.exWindows.covers(p.Now()) {
			m.par.shards[pid].events = append(m.par.shards[pid].events,
				relEvent{t: p.Now(), rel: int32(rel), row: row, kind: evExAcq})
			p.Store(e.addr, 8)
			p.Store(e.addr+8, 8)
			m.mutex.releasePar(p, pid)
			return
		}
		m.mutex.releasePar(p, pid)
		p.Backoff()
	}
}

func (m *Manager) releaseExclusivePar(p Proc, pid, rel int, row int64) {
	m.mutex.acquirePar(p, pid)
	e := m.entryPar(rel, row)
	m.par.shards[pid].events = append(m.par.shards[pid].events,
		relEvent{t: p.Now(), rel: int32(rel), row: row, kind: evExRel})
	p.Store(e.addr, 8)
	p.Work(20)
	m.mutex.releasePar(p, pid)
}

// Weave applies the window's relation-lock transitions in (timestamp, pid)
// order and folds shard stats, then weaves the table spinlock itself.
func (m *Manager) Weave() {
	par := m.par
	total := 0
	for i := range par.shards {
		total += len(par.shards[i].events)
	}
	if total > 0 {
		par.merged = par.merged[:0]
		for pid := range par.shards {
			sh := &par.shards[pid]
			for seq, ev := range sh.events {
				par.merged = append(par.merged, mergedRelEvent{relEvent: ev, pid: int32(pid), seq: int32(seq)})
			}
			m.RelationAcquires += sh.relationAcquires
			m.RowAcquires += sh.rowAcquires
			sh.relationAcquires, sh.rowAcquires = 0, 0
			sh.events = sh.events[:0]
		}
		sort.Slice(par.merged, func(i, j int) bool {
			a, b := &par.merged[i], &par.merged[j]
			if a.t != b.t {
				return a.t < b.t
			}
			if a.pid != b.pid {
				return a.pid < b.pid
			}
			return a.seq < b.seq
		})
		for i := range par.merged {
			ev := &par.merged[i]
			e := m.entries[relKey{rel: int(ev.rel), row: ev.row}]
			switch ev.kind {
			case evSharedAcq:
				e.readers++
			case evSharedRel:
				if e.readers <= 0 {
					panic("lock: relation release without holders")
				}
				e.readers--
			case evExAcq:
				e.writer = true
				e.writerPid = int(ev.pid)
				e.exTakenAt = ev.t
			case evExRel:
				if !e.writer || e.writerPid != int(ev.pid) {
					panic("lock: exclusive release by non-owner")
				}
				e.writer = false
				end := ev.t
				if end <= e.exTakenAt {
					end = e.exTakenAt + 1
				}
				e.exWindows.add(e.exTakenAt, end)
			}
		}
	}
	m.mutex.Weave()
}
