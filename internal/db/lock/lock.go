// Package lock implements the DBMS synchronization stack the paper traces its
// voluntary context switches to: test-and-set spinlocks acquired with a
// bounded spin followed by a select() back-off (PostgreSQL's s_lock), light-
// weight shared/exclusive locks built on them, and a relation-level lock
// manager whose lock and transaction hash tables live in shared memory.
//
// Lock words and tables occupy real simulated addresses, so acquiring a lock
// generates exactly the coherence traffic the paper discusses (a
// read-modify-write of a shared line, which the V-Class migratory enhancement
// optimizes).
package lock

import (
	"fmt"

	"dssmem/internal/memsys"
)

// Proc is the view of a simulated process the lock layer needs. It is
// satisfied by *simos.Process.
type Proc interface {
	Load(addr memsys.Addr, size int)
	Store(addr memsys.Addr, size int)
	Work(n uint64)
	Spin()
	Backoff()
	Now() uint64
}

// Eventer is an optional extension of Proc: implementations that also carry
// lock-level telemetry (e.g. *simos.Process, which counts acquisitions in
// the CPU's counter file and feeds the obs event trace) receive one
// callback per successful spinlock acquisition.
type Eventer interface {
	LockAcquired(addr memsys.Addr, contended bool)
}

func notifyAcquired(p Proc, addr memsys.Addr, contended bool) {
	if e, ok := p.(Eventer); ok {
		e.LockAcquired(addr, contended)
	}
}

// DefaultSpinLimit is how many busy-wait iterations a process tries before
// backing off with select(). The era's s_lock gave up quickly — "if a query
// process cannot get a spinlock, the process would delay some time, using the
// select() system call, and try again later".
const DefaultSpinLimit = 4

// holdWindow is one completed lock hold in simulated time.
type holdWindow struct{ start, end uint64 }

// windowRing remembers recent hold intervals so a process whose clock lags
// the serialized execution still observes the contention a truly concurrent
// run would have had: an attempt at time t is blocked iff t falls inside a
// recorded hold.
type windowRing struct {
	buf [32]holdWindow
	n   int
}

func (w *windowRing) add(start, end uint64) {
	w.buf[w.n%len(w.buf)] = holdWindow{start, end}
	w.n++
}

func (w *windowRing) covers(t uint64) bool {
	for i := range w.buf {
		if h := w.buf[i]; h.end > h.start && t >= h.start && t < h.end {
			return true
		}
	}
	return false
}

// SpinLock is a test-and-set lock at a shared address. Because the simulation
// kernel serializes processes, the lock tracks logical hold intervals: a
// process attempting at simulated time t finds the lock busy if another
// process's hold covers t.
type SpinLock struct {
	addr       memsys.Addr
	held       bool
	owner      int
	acquiredAt uint64
	windows    windowRing
	SpinLimit  int

	// Stats.
	Acquires  uint64
	Contended uint64 // acquisitions that found the lock busy at least once
	Backoffs  uint64 // acquisitions that gave up spinning at least once

	// par, when non-nil, switches the lock into bound–weave mode (see
	// parallel.go).
	par *spinPar
}

// NewSpinLock creates a spinlock whose word lives at addr.
func NewSpinLock(addr memsys.Addr) *SpinLock {
	return &SpinLock{addr: addr, owner: -1, SpinLimit: DefaultSpinLimit}
}

// Addr returns the lock word's address.
func (l *SpinLock) Addr() memsys.Addr { return l.addr }

// TryAcquire attempts a single test-and-set at the process's current time.
func (l *SpinLock) TryAcquire(p Proc, pid int) bool {
	if l.par != nil {
		return l.tryAcquirePar(p, pid)
	}
	p.Load(l.addr, 8) // read the lock word
	if l.held || l.windows.covers(p.Now()) {
		return false
	}
	// Commit the lock state before charging the TAS store: the store may
	// yield the simulation quantum, and the atomic hardware TAS must not be
	// interleavable with another process's attempt.
	l.held = true
	l.owner = pid
	l.acquiredAt = p.Now()
	p.Store(l.addr, 8) // TAS write: takes the line exclusive
	return true
}

// Acquire takes the lock, spinning up to SpinLimit iterations and then
// backing off via select() (a voluntary context switch), exactly the
// PostgreSQL pattern the paper identifies as the source of the voluntary
// switches in Fig. 10.
func (l *SpinLock) Acquire(p Proc, pid int) {
	if l.par != nil {
		l.acquirePar(p, pid)
		return
	}
	l.Acquires++
	if l.TryAcquire(p, pid) {
		notifyAcquired(p, l.addr, false)
		return
	}
	l.Contended++
	spins := 0
	for {
		spins++
		if spins > l.spinLimit() {
			spins = 0
			l.Backoffs++
			p.Backoff()
		} else {
			p.Spin()
		}
		if l.TryAcquire(p, pid) {
			notifyAcquired(p, l.addr, true)
			return
		}
	}
}

func (l *SpinLock) spinLimit() int {
	if l.SpinLimit > 0 {
		return l.SpinLimit
	}
	return DefaultSpinLimit
}

// Release frees the lock; the caller must hold it.
func (l *SpinLock) Release(p Proc, pid int) {
	if l.par != nil {
		l.releasePar(p, pid)
		return
	}
	if !l.held || l.owner != pid {
		panic(fmt.Sprintf("lock: release by non-owner: addr=%#x held=%v owner=%d pid=%d", l.addr, l.held, l.owner, pid))
	}
	p.Store(l.addr, 8)
	l.held = false
	l.owner = -1
	end := p.Now()
	if end <= l.acquiredAt {
		end = l.acquiredAt + 1
	}
	l.windows.add(l.acquiredAt, end)
}

// HeldBy reports the current owner (-1 when free) — for tests.
func (l *SpinLock) HeldBy() int {
	if !l.held {
		return -1
	}
	return l.owner
}

// Mode distinguishes shared from exclusive acquisition.
type Mode int

// Lock modes.
const (
	Shared Mode = iota
	Exclusive
)

// LWLock is a lightweight shared/exclusive lock: a spinlock-protected state
// word, as in PostgreSQL's buffer manager and lock manager. Waiters back off
// with select() like spinlock waiters (the era's implementation).
type LWLock struct {
	mutex     *SpinLock
	stateAddr memsys.Addr
	sharers   int
	exclusive bool
	// exWindows records completed exclusive holds so late-clock processes
	// see historical contention windows.
	exWindows windowRing
	exTakenAt uint64

	// Stats.
	Acquires uint64
	Waits    uint64
}

// NewLWLock creates an LWLock occupying two shared words starting at addr.
func NewLWLock(addr memsys.Addr) *LWLock {
	return &LWLock{mutex: NewSpinLock(addr), stateAddr: addr + 8}
}

// Acquire takes the lock in the given mode.
func (l *LWLock) Acquire(p Proc, pid int, mode Mode) {
	l.Acquires++
	for {
		l.mutex.Acquire(p, pid)
		p.Load(l.stateAddr, 8)
		ok := false
		switch mode {
		case Shared:
			ok = !l.exclusive && !l.exWindows.covers(p.Now())
			if ok {
				l.sharers++
			}
		case Exclusive:
			ok = !l.exclusive && l.sharers == 0 && !l.exWindows.covers(p.Now())
			if ok {
				l.exclusive = true
				l.exTakenAt = p.Now()
			}
		}
		if ok {
			p.Store(l.stateAddr, 8)
			p.Work(10)
			l.mutex.Release(p, pid)
			return
		}
		l.Waits++
		l.mutex.Release(p, pid)
		p.Backoff()
	}
}

// Release drops the lock (mode must match the acquisition).
func (l *LWLock) Release(p Proc, pid int, mode Mode) {
	l.mutex.Acquire(p, pid)
	p.Load(l.stateAddr, 8)
	switch mode {
	case Shared:
		if l.sharers <= 0 {
			panic("lock: shared release without holders")
		}
		l.sharers--
	case Exclusive:
		if !l.exclusive {
			panic("lock: exclusive release while not held")
		}
		l.exclusive = false
		end := p.Now()
		if end <= l.exTakenAt {
			end = l.exTakenAt + 1
		}
		l.exWindows.add(l.exTakenAt, end)
	}
	p.Store(l.stateAddr, 8)
	l.mutex.Release(p, pid)
}

// relKey identifies a relation- or row-level lock (row < 0 means the whole
// relation).
type relKey struct {
	rel int
	row int64
}

type relEntry struct {
	addr      memsys.Addr
	readers   int
	writer    bool
	writerPid int
	exTakenAt uint64
	exWindows windowRing
}

// Manager is the relation-level lock manager: a shared hash table of lock
// entries guarded by a single LockMgr spinlock, like the paper's PostgreSQL
// ("currently PostgreSQL fully supports only relation level locking").
// Read-only TPC-H queries take relation locks in Shared mode, which never
// blocks — but every acquisition still reads and writes the shared lock and
// transaction hash tables, producing the migratory sharing the paper
// analyzes.
type Manager struct {
	mutex   *SpinLock
	base    memsys.Addr
	buckets int
	entries map[relKey]*relEntry
	nextOff uint64

	// Stats.
	RelationAcquires uint64
	RowAcquires      uint64

	// par, when non-nil, switches the manager into bound–weave mode (see
	// parallel.go).
	par *mgrPar
}

// NewManager creates a lock manager whose tables occupy [base, base+size).
func NewManager(base memsys.Addr, buckets int) *Manager {
	return &Manager{
		mutex:   NewSpinLock(base),
		base:    base + 64, // table starts after the LockMgrLock's line
		buckets: buckets,
		entries: make(map[relKey]*relEntry),
	}
}

func (m *Manager) entry(rel int, row int64) *relEntry {
	k := relKey{rel: rel, row: row}
	e := m.entries[k]
	if e == nil {
		bucket := (uint64(rel)*31 + uint64(row)) % uint64(m.buckets)
		e = &relEntry{addr: m.base + memsys.Addr(bucket*128+m.nextOff%128)}
		m.nextOff += 32
		m.entries[k] = e
	}
	return e
}

// AcquireShared takes a relation-level read lock: hash-table probe under the
// LockMgr spinlock, then an update of the lock and transaction tables (the
// read-check-update sequence whose dirty-line handoff the migratory protocol
// accelerates).
func (m *Manager) AcquireShared(p Proc, pid, rel int) {
	if m.par != nil {
		m.acquireSharedPar(p, pid, rel)
		return
	}
	m.RelationAcquires++
	for {
		m.mutex.Acquire(p, pid)
		e := m.entry(rel, -1)
		p.Load(e.addr, 8) // check lock compatibility
		p.Work(30)        // hash + compatibility logic
		if !e.writer && !e.exWindows.covers(p.Now()) {
			e.readers++
			p.Store(e.addr, 8)   // grant: bump reader count
			p.Store(e.addr+8, 8) // record in the transaction (proclock) table
			m.mutex.Release(p, pid)
			return
		}
		m.mutex.Release(p, pid)
		p.Backoff() // a writer holds the relation: sleep and retry
	}
}

// ReleaseShared drops a relation-level read lock.
func (m *Manager) ReleaseShared(p Proc, pid, rel int) {
	if m.par != nil {
		m.releaseSharedPar(p, pid, rel)
		return
	}
	m.mutex.Acquire(p, pid)
	e := m.entry(rel, -1)
	p.Load(e.addr, 8)
	if e.readers <= 0 {
		panic("lock: relation release without holders")
	}
	e.readers--
	p.Store(e.addr, 8)
	p.Work(20)
	m.mutex.Release(p, pid)
}

// acquireExclusive is the common writer path for relation- and row-level
// locks. Writers wait for readers and other writers, backing off with
// select() — PostgreSQL of the era supported only relation-level locking,
// which is why the paper remarks it "may become a bottleneck in multiple
// parallel queries".
func (m *Manager) acquireExclusive(p Proc, pid, rel int, row int64) {
	if m.par != nil {
		m.acquireExclusivePar(p, pid, rel, row)
		return
	}
	for {
		m.mutex.Acquire(p, pid)
		e := m.entry(rel, row)
		p.Load(e.addr, 8)
		p.Work(30)
		if !e.writer && e.readers == 0 && !e.exWindows.covers(p.Now()) {
			e.writer = true
			e.writerPid = pid
			e.exTakenAt = p.Now()
			p.Store(e.addr, 8)
			p.Store(e.addr+8, 8)
			m.mutex.Release(p, pid)
			return
		}
		m.mutex.Release(p, pid)
		p.Backoff()
	}
}

func (m *Manager) releaseExclusive(p Proc, pid, rel int, row int64) {
	if m.par != nil {
		m.releaseExclusivePar(p, pid, rel, row)
		return
	}
	m.mutex.Acquire(p, pid)
	e := m.entry(rel, row)
	if !e.writer || e.writerPid != pid {
		panic("lock: exclusive release by non-owner")
	}
	e.writer = false
	end := p.Now()
	if end <= e.exTakenAt {
		end = e.exTakenAt + 1
	}
	e.exWindows.add(e.exTakenAt, end)
	p.Store(e.addr, 8)
	p.Work(20)
	m.mutex.Release(p, pid)
}

// AcquireExclusive takes a relation-level write lock.
func (m *Manager) AcquireExclusive(p Proc, pid, rel int) {
	if m.par != nil {
		m.par.shards[pid].relationAcquires++
	} else {
		m.RelationAcquires++
	}
	m.acquireExclusive(p, pid, rel, -1)
}

// ReleaseExclusive drops a relation-level write lock.
func (m *Manager) ReleaseExclusive(p Proc, pid, rel int) {
	m.releaseExclusive(p, pid, rel, -1)
}

// AcquireRowExclusive takes a row-level write lock (the finer granularity
// PostgreSQL of the era lacked; used by the lock-granularity ablation).
func (m *Manager) AcquireRowExclusive(p Proc, pid, rel int, row int64) {
	if m.par != nil {
		m.par.shards[pid].rowAcquires++
	} else {
		m.RowAcquires++
	}
	m.acquireExclusive(p, pid, rel, row)
}

// ReleaseRowExclusive drops a row-level write lock.
func (m *Manager) ReleaseRowExclusive(p Proc, pid, rel int, row int64) {
	m.releaseExclusive(p, pid, rel, row)
}

// Readers reports the current reader count on rel (tests).
func (m *Manager) Readers(rel int) int { return m.entry(rel, -1).readers }

// WriterOf reports the pid holding rel exclusively (-1 if none) — tests.
func (m *Manager) WriterOf(rel int) int {
	e := m.entry(rel, -1)
	if !e.writer {
		return -1
	}
	return e.writerPid
}
