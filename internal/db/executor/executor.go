// Package executor provides the query-evaluation operators the three TPC-H
// queries are built from: sequential scans, index (range) scans, tuple
// fetches, hash aggregation in process-private memory, and top-N selection.
// Each operator charges per-tuple instruction costs and real memory
// references, so the executor's data taxonomy — record data, index data,
// metadata, private data — hits the simulated memory system exactly as the
// paper describes.
package executor

import (
	"sort"

	"dssmem/internal/db/catalog"
	"dssmem/internal/db/engine"
	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
	"dssmem/internal/obs"
)

// Per-tuple instruction costs. The era's PostgreSQL spent hundreds of
// instructions of interpreted-executor overhead per tuple (recursive
// ExecProcNode dispatch, per-column fmgr calls, MemoryContext churn); the
// constants are calibrated so the queries land in the paper's CPI range
// (1.3–1.6) on the modeled machines.
const (
	CostScanTuple  = 240 // ExecScan/heapgettup/slot bookkeeping per tuple
	CostPredicate  = 14  // one interpreted qual-clause evaluation
	CostFetchTuple = 420 // index-scan heap_fetch + ReadBuffer + qual recheck
	CostAggUpdate  = 45  // aggregate transition function call
	CostIndexNode  = 220 // _bt_moveright/_bt_binsrch setup per node visited
	CostQuerySetup = 30000
	CostSortPerCmp = 20
)

// Executor-state modelling: each tuple's evaluation walks the backend's
// private plan-state/expression/slot structures. The working set is a few
// pages — it fits the V-Class's large cache but not the Origin's small L1
// (which is why the paper sees roughly twice the L1 misses on the Origin for
// the purely sequential Q6) — and is revisited every tuple, giving private
// data its temporal locality.
const (
	execStateBytes  = 8192
	execStateStride = 64
)

// Context is one query's execution state: the session plus the backend's
// private memory (sort/hash work areas, executor nodes).
type Context struct {
	S    *engine.Session
	priv *memsys.Allocator

	execBase   memsys.Addr
	execCursor uint64
}

// NewContext opens a query context for a session. Private state lives in the
// process's private region.
func NewContext(s *engine.Session) *Context {
	base := memsys.PrivateBase(s.PID)
	c := &Context{
		S:    s,
		priv: memsys.NewAllocator("private", base, uint64(1)<<32),
	}
	c.execBase = c.priv.Alloc(execStateBytes, 64)
	return c
}

// TouchState charges loads (and stores) against the rotating executor-state
// working set; called once per tuple evaluated.
func (c *Context) TouchState(loads, stores int) {
	slots := uint64(execStateBytes / execStateStride)
	for j := 0; j < loads+stores; j++ {
		addr := c.execBase + memsys.Addr((c.execCursor%slots)*execStateStride)
		c.execCursor++
		if j < loads {
			c.S.P.Load(addr, 8)
		} else {
			c.S.P.Store(addr, 8)
		}
	}
}

// AllocPrivate reserves private memory (e.g. a hash table arena).
func (c *Context) AllocPrivate(size uint64) memsys.Addr {
	return c.priv.Alloc(size, 64)
}

// Setup charges query start-up: parser/planner/executor-init instructions and
// the catalog probes for each referenced relation.
func (c *Context) Setup(rels ...*catalog.Relation) {
	defer obs.Span(c.S.P, "setup")()
	c.S.P.Work(CostQuerySetup)
	for range rels {
		c.S.P.Work(120) // plan nodes, snapshot, relcache touches
	}
}

// pinSet tracks the pages a scan has pinned, mirroring PostgreSQL's
// PrivateRefCount: re-pinning a page the backend already holds skips the
// BufMgrLock fast path entirely.
type pinSet struct {
	s     *engine.Session
	pages map[int]struct{}
	order []int
}

func newPinSet(s *engine.Session) *pinSet {
	return &pinSet{s: s, pages: make(map[int]struct{})}
}

// pin pins pg if this scan does not already hold it.
func (ps *pinSet) pin(pg int) {
	if _, ok := ps.pages[pg]; ok {
		ps.s.P.Work(4) // local refcount bump
		return
	}
	ps.pages[pg] = struct{}{}
	ps.order = append(ps.order, pg)
	ps.s.PinPage(pg)
}

// releaseAll unpins everything at scan end.
func (ps *pinSet) releaseAll() {
	for _, pg := range ps.order {
		ps.s.UnpinPage(pg)
	}
	ps.pages = make(map[int]struct{})
	ps.order = ps.order[:0]
}

// SeqScan walks rel in heap order, reading the requested columns of every
// tuple and invoking fn; fn returning false stops the scan. Pages are pinned
// page-at-a-time, so the record data streams through the cache with spatial
// but no temporal locality — the paper's sequential-query profile.
func SeqScan(ctx *Context, rel *catalog.Relation, cols []int, fn func(tid storage.TID, vals []int64) bool) {
	defer obs.Span(ctx.S.P, "scan:"+rel.Name)()
	s := ctx.S
	h := rel.Heap
	m := s.Mem()
	vals := make([]int64, len(cols))
	for i := 0; i < h.NumPages(); i++ {
		pg := h.PoolPage(i)
		s.PinPage(pg)
		n := h.SlotsOn(m, i)
		for slot := 0; slot < n; slot++ {
			tid := storage.TID{Page: uint32(pg), Slot: uint16(slot)}
			s.P.Work(CostScanTuple)
			ctx.TouchState(2, 1)
			s.CheckHints(h, tid)
			for j, col := range cols {
				vals[j] = h.ReadField(m, tid, col)
			}
			if !fn(tid, vals) {
				s.UnpinPage(pg)
				return
			}
		}
		s.UnpinPage(pg)
	}
}

// IndexRange scans the named index of rel over keys in [lo, hi], calling fn
// with each entry; fn returning false stops the scan. Index pages are pinned
// through the scan (upper nodes stay pinned and cached — the paper's "nodes
// close to the root ... are likely to be reused").
func IndexRange(ctx *Context, rel *catalog.Relation, index string, lo, hi int64, fn func(key int64, tid storage.TID) bool) {
	defer obs.Span(ctx.S.P, "ixscan:"+rel.Name+"."+index)()
	s := ctx.S
	ix := rel.Index(index)
	ps := newPinSet(s)
	defer ps.releaseAll()
	m := s.Mem()
	it := ix.Seek(m, lo, hi, func(pg int) {
		s.P.Work(CostIndexNode)
		ps.pin(pg)
	})
	for {
		k, tid, ok := it.Next(m)
		if !ok {
			return
		}
		ctx.TouchState(1, 0)
		if !fn(k, tid) {
			return
		}
	}
}

// IndexLookupEach runs fn over the entries of an exact-key probe.
func IndexLookupEach(ctx *Context, rel *catalog.Relation, index string, key int64, fn func(tid storage.TID) bool) {
	IndexRange(ctx, rel, index, key, key, func(_ int64, tid storage.TID) bool {
		return fn(tid)
	})
}

// Fetcher reads heap tuples located by index scans, caching pins across
// fetches (one scan node's heap accesses).
type Fetcher struct {
	ctx  *Context
	rel  *catalog.Relation
	pins *pinSet
}

// NewFetcher creates a fetcher for rel.
func NewFetcher(ctx *Context, rel *catalog.Relation) *Fetcher {
	return &Fetcher{ctx: ctx, rel: rel, pins: newPinSet(ctx.S)}
}

// Field reads one column of the tuple at tid.
func (f *Fetcher) Field(tid storage.TID, col int) int64 {
	f.pins.pin(int(tid.Page))
	f.ctx.S.P.Work(CostFetchTuple)
	f.ctx.TouchState(3, 1)
	f.ctx.S.CheckHints(f.rel.Heap, tid)
	return f.rel.Heap.ReadField(f.ctx.S.Mem(), tid, col)
}

// FieldAgain reads another column of the same tuple (no re-pin, less
// overhead).
func (f *Fetcher) FieldAgain(tid storage.TID, col int) int64 {
	f.ctx.S.P.Work(4)
	return f.rel.Heap.ReadField(f.ctx.S.Mem(), tid, col)
}

// Close releases the fetcher's pins.
func (f *Fetcher) Close() { f.pins.releaseAll() }

// HashAgg is a group-by hash table in private memory. Bucket probes charge
// loads/stores at hashed private addresses, giving the private data its
// temporal locality.
type HashAgg struct {
	ctx     *Context
	base    memsys.Addr
	buckets uint64
	groups  map[int64][]int64
	nslots  int
}

// NewHashAgg creates a hash aggregate with the given bucket count and
// aggregate slots per group.
func NewHashAgg(ctx *Context, buckets int, nslots int) *HashAgg {
	entry := uint64(16 + 8*nslots)
	return &HashAgg{
		ctx:     ctx,
		base:    ctx.AllocPrivate(uint64(buckets) * entry),
		buckets: uint64(buckets),
		groups:  make(map[int64][]int64),
		nslots:  nslots,
	}
}

func (h *HashAgg) bucketAddr(key int64) memsys.Addr {
	x := uint64(key) * 0x9E3779B97F4A7C15
	entry := uint64(16 + 8*h.nslots)
	return h.base + memsys.Addr((x%h.buckets)*entry)
}

// Update applies fn to the group's aggregate slots, creating it zeroed on
// first touch.
func (h *HashAgg) Update(key int64, fn func(slots []int64)) {
	p := h.ctx.S.P
	addr := h.bucketAddr(key)
	p.Load(addr, 8) // bucket probe
	p.Work(CostAggUpdate)
	g, ok := h.groups[key]
	if !ok {
		g = make([]int64, h.nslots)
		h.groups[key] = g
		p.Store(addr, 16) // initialize group entry
	}
	fn(g)
	p.Store(addr+16, 8) // write back the aggregate state
}

// Len returns the group count.
func (h *HashAgg) Len() int { return len(h.groups) }

// Each visits groups in ascending key order (deterministic).
func (h *HashAgg) Each(fn func(key int64, slots []int64)) {
	keys := make([]int64, 0, len(h.groups))
	for k := range h.groups {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, k := range keys {
		fn(k, h.groups[k])
	}
}

// TopN returns the n largest items under less=false ordering... (see below).
// Items are (key, value) pairs ranked by value descending, then key ascending
// — the ORDER BY count DESC, name ASC shape of Q21. The sort is charged to
// private memory.
type KV struct {
	Key int64
	Val int64
}

// TopN charges and performs the final sort of a grouped result, returning at
// most n entries ordered by Val desc, Key asc.
func TopN(ctx *Context, items []KV, n int) []KV {
	defer obs.Span(ctx.S.P, "sort:topN")()
	count := len(items)
	if count > 1 {
		// n log n comparisons, each touching private sort state.
		cmps := uint64(count) * uint64(log2(count)+1)
		ctx.S.P.Work(cmps * CostSortPerCmp)
		area := ctx.AllocPrivate(uint64(count) * 16)
		for i := 0; i < count; i += 4 { // sampled touches of the sort area
			ctx.S.P.Store(area+memsys.Addr(i*16), 16)
		}
	}
	sort.Slice(items, func(i, j int) bool {
		if items[i].Val != items[j].Val {
			return items[i].Val > items[j].Val
		}
		return items[i].Key < items[j].Key
	})
	if len(items) > n {
		items = items[:n]
	}
	return items
}

func log2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}
