package executor

import (
	"testing"
	"testing/quick"

	"dssmem/internal/db/dbtest"
	"dssmem/internal/db/engine"
	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
)

// fixture builds a table of n rows (k = i%mod, v = i) with an index on k.
func fixture(n, mod int) (*engine.Database, *dbtest.FakeProc, *Context) {
	db := engine.Open(engine.Config{PoolPages: n/200 + 32})
	schema := storage.NewSchema(
		storage.Column{Name: "k", Width: 8},
		storage.Column{Name: "v", Width: 8},
	)
	rel := db.CreateTable("t", schema)
	for i := 0; i < n; i++ {
		rel.Heap.Append([]int64{int64(i % mod), int64(i)})
	}
	db.BuildIndex(rel, "t_k", 0)
	p := &dbtest.FakeProc{}
	s := db.NewSession(p, 0)
	return db, p, NewContext(s)
}

func TestSeqScanVisitsAllRows(t *testing.T) {
	_, p, ctx := fixture(1000, 10)
	rel := ctx.S.Lookup("t")
	var sum int64
	rows := 0
	SeqScan(ctx, rel, []int{1}, func(_ storage.TID, v []int64) bool {
		sum += v[0]
		rows++
		return true
	})
	if rows != 1000 {
		t.Fatalf("rows = %d", rows)
	}
	if sum != 999*1000/2 {
		t.Fatalf("sum = %d", sum)
	}
	if p.Loads == 0 || p.Works == 0 {
		t.Fatal("scan charged nothing")
	}
	// One pin per heap page.
	if ctx.S.Pins != uint64(rel.Heap.NumPages()) {
		t.Fatalf("pins = %d, pages = %d", ctx.S.Pins, rel.Heap.NumPages())
	}
	if ctx.S.Unpins != ctx.S.Pins {
		t.Fatal("pin leak")
	}
}

func TestSeqScanEarlyStop(t *testing.T) {
	_, _, ctx := fixture(1000, 10)
	rel := ctx.S.Lookup("t")
	rows := 0
	SeqScan(ctx, rel, []int{0}, func(_ storage.TID, _ []int64) bool {
		rows++
		return rows < 5
	})
	if rows != 5 {
		t.Fatalf("rows = %d", rows)
	}
	if ctx.S.Unpins != ctx.S.Pins {
		t.Fatal("early stop leaked a pin")
	}
}

func TestIndexRangeMatchesPredicate(t *testing.T) {
	_, _, ctx := fixture(1000, 100)
	rel := ctx.S.Lookup("t")
	count := 0
	IndexRange(ctx, rel, "t_k", 10, 19, func(k int64, _ storage.TID) bool {
		if k < 10 || k > 19 {
			t.Fatalf("key %d out of range", k)
		}
		count++
		return true
	})
	if count != 100 { // 10 keys x 10 rows each
		t.Fatalf("count = %d", count)
	}
	if ctx.S.Unpins != ctx.S.Pins {
		t.Fatal("index scan leaked pins")
	}
}

func TestIndexLookupEachEarlyStop(t *testing.T) {
	_, _, ctx := fixture(1000, 10)
	rel := ctx.S.Lookup("t")
	n := 0
	IndexLookupEach(ctx, rel, "t_k", 3, func(_ storage.TID) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("visited %d entries after stop", n)
	}
}

func TestFetcherReadsCorrectTuples(t *testing.T) {
	_, p, ctx := fixture(500, 500)
	rel := ctx.S.Lookup("t")
	f := NewFetcher(ctx, rel)
	defer f.Close()
	var tids []storage.TID
	IndexRange(ctx, rel, "t_k", 0, 499, func(_ int64, tid storage.TID) bool {
		tids = append(tids, tid)
		return true
	})
	for i, tid := range tids {
		if got := f.Field(tid, 1); got != int64(i) {
			t.Fatalf("row %d: v = %d", i, got)
		}
		if got := f.FieldAgain(tid, 0); got != int64(i) {
			t.Fatalf("row %d: k = %d", i, got)
		}
	}
	if p.Loads == 0 {
		t.Fatal("fetch charged nothing")
	}
}

func TestFetcherPinsPerPageNotPerTuple(t *testing.T) {
	_, _, ctx := fixture(800, 800)
	rel := ctx.S.Lookup("t")
	base := ctx.S.Pins
	f := NewFetcher(ctx, rel)
	defer f.Close()
	for i := 0; i < 800; i++ {
		f.Field(rel.Heap.TIDOf(i), 1)
	}
	pins := ctx.S.Pins - base
	if pins != uint64(rel.Heap.NumPages()) {
		t.Fatalf("pins = %d, want %d (per page)", pins, rel.Heap.NumPages())
	}
}

func TestHashAggGroups(t *testing.T) {
	_, p, ctx := fixture(10, 10)
	agg := NewHashAgg(ctx, 64, 2)
	for i := 0; i < 100; i++ {
		agg.Update(int64(i%7), func(s []int64) {
			s[0]++
			s[1] += int64(i)
		})
	}
	if agg.Len() != 7 {
		t.Fatalf("groups = %d", agg.Len())
	}
	var keys []int64
	total := int64(0)
	agg.Each(func(k int64, s []int64) {
		keys = append(keys, k)
		total += s[0]
	})
	if total != 100 {
		t.Fatalf("total count = %d", total)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] <= keys[i-1] {
			t.Fatal("Each not sorted")
		}
	}
	if p.Stores == 0 {
		t.Fatal("agg charged no private stores")
	}
}

func TestHashAggAddressesArePrivate(t *testing.T) {
	_, p, ctx := fixture(10, 10)
	p.Keep = true
	p.Trace = nil
	agg := NewHashAgg(ctx, 16, 1)
	agg.Update(5, func(s []int64) { s[0]++ })
	found := false
	for _, a := range p.Trace {
		if pid, ok := memsys.IsPrivate(a); ok {
			if pid != 0 {
				t.Fatalf("private addr of wrong process: %#x", a)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no private addresses charged")
	}
}

func TestTopNOrdering(t *testing.T) {
	_, _, ctx := fixture(10, 10)
	items := []KV{{Key: 3, Val: 5}, {Key: 1, Val: 9}, {Key: 2, Val: 5}, {Key: 9, Val: 1}}
	top := TopN(ctx, items, 3)
	want := []KV{{Key: 1, Val: 9}, {Key: 2, Val: 5}, {Key: 3, Val: 5}}
	if len(top) != 3 {
		t.Fatalf("len = %d", len(top))
	}
	for i := range want {
		if top[i] != want[i] {
			t.Fatalf("top = %v", top)
		}
	}
}

func TestSetupCharges(t *testing.T) {
	_, p, ctx := fixture(10, 10)
	rel := ctx.S.Lookup("t")
	w := p.Works
	ctx.Setup(rel)
	if p.Works <= w {
		t.Fatal("setup charged nothing")
	}
}

// Property: seqscan sum over the index column equals index-scan sum over the
// whole range — two access paths, one answer.
func TestAccessPathEquivalence(t *testing.T) {
	f := func(n uint16, mod uint8) bool {
		rows := int(n%2000) + 10
		m := int(mod%50) + 1
		_, _, ctx := fixture(rows, m)
		rel := ctx.S.Lookup("t")
		var seqSum, idxSum int64
		SeqScan(ctx, rel, []int{0}, func(_ storage.TID, v []int64) bool {
			seqSum += v[0]
			return true
		})
		IndexRange(ctx, rel, "t_k", 0, int64(m), func(k int64, _ storage.TID) bool {
			idxSum += k
			return true
		})
		return seqSum == idxSum
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
