package btree

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
)

func newTree(pages int) *Tree {
	return New(storage.NewPool(0x100000, pages))
}

func TestPackUnpackTID(t *testing.T) {
	tid := storage.TID{Page: 123456, Slot: 789}
	if UnpackTID(PackTID(tid)) != tid {
		t.Fatal("TID round trip broken")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := newTree(4)
	if tr.Len() != 0 || tr.Height() != 1 {
		t.Fatalf("len=%d height=%d", tr.Len(), tr.Height())
	}
	if got := tr.Lookup(storage.NullMem{}, 42, nil); len(got) != 0 {
		t.Fatal("lookup in empty tree")
	}
}

func TestInsertLookupSmall(t *testing.T) {
	tr := newTree(8)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i*3), storage.TID{Page: uint32(i), Slot: 1})
	}
	for i := 0; i < 100; i++ {
		got := tr.Lookup(storage.NullMem{}, int64(i*3), nil)
		if len(got) != 1 || got[0].Page != uint32(i) {
			t.Fatalf("lookup %d: %v", i*3, got)
		}
	}
	if got := tr.Lookup(storage.NullMem{}, 1, nil); len(got) != 0 {
		t.Fatal("absent key found")
	}
}

func TestDuplicateKeys(t *testing.T) {
	tr := newTree(8)
	for i := 0; i < 50; i++ {
		tr.Insert(7, storage.TID{Page: uint32(i)})
	}
	got := tr.Lookup(storage.NullMem{}, 7, nil)
	if len(got) != 50 {
		t.Fatalf("duplicates = %d, want 50", len(got))
	}
}

func TestSplitsAndHeightGrowth(t *testing.T) {
	tr := newTree(64)
	n := maxLeaf * 3
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), storage.TID{Page: uint32(i)})
	}
	if tr.Height() < 2 {
		t.Fatalf("height = %d, want >= 2 after %d inserts", tr.Height(), n)
	}
	if tr.Len() != n {
		t.Fatalf("len = %d", tr.Len())
	}
	// All keys still reachable.
	for i := 0; i < n; i += 97 {
		if len(tr.Lookup(storage.NullMem{}, int64(i), nil)) != 1 {
			t.Fatalf("key %d lost after splits", i)
		}
	}
	if tr.NumNodes() < 4 {
		t.Fatalf("nodes = %d", tr.NumNodes())
	}
}

func TestRangeScan(t *testing.T) {
	tr := newTree(64)
	for i := 0; i < 5000; i++ {
		tr.Insert(int64(i*2), storage.TID{Page: uint32(i)}) // even keys
	}
	it := tr.Seek(storage.NullMem{}, 100, 200, nil)
	var keys []int64
	for {
		k, _, ok := it.Next(storage.NullMem{})
		if !ok {
			break
		}
		keys = append(keys, k)
	}
	if len(keys) != 51 { // 100..200 even
		t.Fatalf("range size = %d, want 51", len(keys))
	}
	for i, k := range keys {
		if k != int64(100+i*2) {
			t.Fatalf("keys out of order: %v", keys[:i+1])
		}
	}
}

func TestRangeScanAcrossLeaves(t *testing.T) {
	tr := newTree(64)
	n := maxLeaf * 2
	for i := 0; i < n; i++ {
		tr.Insert(int64(i), storage.TID{Page: uint32(i)})
	}
	it := tr.Seek(storage.NullMem{}, 0, int64(n), nil)
	count := 0
	prev := int64(-1)
	for {
		k, _, ok := it.Next(storage.NullMem{})
		if !ok {
			break
		}
		if k < prev {
			t.Fatal("scan not sorted across leaf boundary")
		}
		prev = k
		count++
	}
	if count != n {
		t.Fatalf("scanned %d, want %d", count, n)
	}
}

type countingMem struct{ loads, works uint64 }

func (c *countingMem) Load(memsys.Addr, int)  { c.loads++ }
func (c *countingMem) Store(memsys.Addr, int) {}
func (c *countingMem) Work(n uint64)          { c.works += n }

func TestChargedTraversalScalesWithHeight(t *testing.T) {
	tr := newTree(128)
	for i := 0; i < maxLeaf*4; i++ {
		tr.Insert(int64(i), storage.TID{})
	}
	m := &countingMem{}
	tr.Lookup(m, 5, nil)
	if m.loads == 0 || m.works == 0 {
		t.Fatal("traversal charged nothing")
	}
	// A lookup should cost O(height * log(fanout)) loads, well under 100.
	if m.loads > 100 {
		t.Fatalf("lookup charged %d loads", m.loads)
	}
}

func TestVisitReportsTouchedPages(t *testing.T) {
	tr := newTree(128)
	for i := 0; i < maxLeaf*4; i++ {
		tr.Insert(int64(i), storage.TID{})
	}
	var visited []int
	tr.Lookup(storage.NullMem{}, 5, func(pg int) { visited = append(visited, pg) })
	if len(visited) != tr.Height() {
		t.Fatalf("visited %d pages, height %d", len(visited), tr.Height())
	}
}

// Property: lookup finds exactly the inserted multiset for random keys.
func TestLookupMatchesReference(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		count := int(n%3000) + 10
		rng := rand.New(rand.NewSource(seed))
		tr := newTree(count/200 + 16)
		ref := map[int64]int{}
		for i := 0; i < count; i++ {
			k := int64(rng.Intn(200)) // force duplicates
			tr.Insert(k, storage.TID{Page: uint32(i)})
			ref[k]++
		}
		for k, want := range ref {
			if len(tr.Lookup(storage.NullMem{}, k, nil)) != want {
				return false
			}
		}
		return tr.Len() == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// Property: a full scan returns all keys in sorted order.
func TestFullScanSorted(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree(64)
		var keys []int64
		for i := 0; i < 4000; i++ {
			k := rng.Int63n(1 << 40)
			tr.Insert(k, storage.TID{})
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		it := tr.Seek(storage.NullMem{}, -1<<62, 1<<62, nil)
		for _, want := range keys {
			k, _, ok := it.Next(storage.NullMem{})
			if !ok || k != want {
				return false
			}
		}
		_, _, ok := it.Next(storage.NullMem{})
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyRangeScan(t *testing.T) {
	tr := newTree(8)
	for i := 0; i < 100; i++ {
		tr.Insert(int64(i*10), storage.TID{})
	}
	it := tr.Seek(storage.NullMem{}, 5, 9, nil) // gap between keys
	if _, _, ok := it.Next(storage.NullMem{}); ok {
		t.Fatal("empty range returned an entry")
	}
	it = tr.Seek(storage.NullMem{}, 2000, 3000, nil) // beyond max
	if _, _, ok := it.Next(storage.NullMem{}); ok {
		t.Fatal("past-the-end range returned an entry")
	}
}

func TestSeekBeforeMin(t *testing.T) {
	tr := newTree(8)
	tr.Insert(100, storage.TID{Page: 1})
	it := tr.Seek(storage.NullMem{}, -50, 200, nil)
	k, tid, ok := it.Next(storage.NullMem{})
	if !ok || k != 100 || tid.Page != 1 {
		t.Fatalf("got %d %v %v", k, tid, ok)
	}
}

func TestNegativeKeys(t *testing.T) {
	tr := newTree(8)
	for i := -100; i <= 100; i += 10 {
		tr.Insert(int64(i), storage.TID{Page: uint32(i + 200)})
	}
	got := tr.Lookup(storage.NullMem{}, -50, nil)
	if len(got) != 1 || got[0].Page != 150 {
		t.Fatalf("negative key lookup: %v", got)
	}
}

// Property: Height and NumNodes stay consistent with the entry count for
// sequential and random insert orders.
func TestStructureConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := newTree(128)
		n := 2000 + rng.Intn(4000)
		for i := 0; i < n; i++ {
			tr.Insert(rng.Int63n(1<<30), storage.TID{})
		}
		if tr.Len() != n {
			return false
		}
		// All entries reachable by a full scan.
		it := tr.Seek(storage.NullMem{}, 0, 1<<31, nil)
		count := 0
		for {
			_, _, ok := it.Next(storage.NullMem{})
			if !ok {
				break
			}
			count++
		}
		return count == n && tr.NumNodes() >= tr.Height()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}
