// Package btree implements B+trees stored in buffer-pool pages, as
// PostgreSQL's nbtree stores index nodes in shared buffers. Tree nodes are
// page-sized, so index traversals have exactly the locality the paper
// discusses: "the nodes close to the root in the index tree are likely to be
// reused later".
//
// Keys are int64 (duplicates allowed); values are packed storage.TIDs.
package btree

import (
	"encoding/binary"
	"fmt"

	"dssmem/internal/db/storage"
	"dssmem/internal/memsys"
)

const (
	headerSize = 16 // nkeys(2) isLeaf(1) pad(5) next(8)
	entrySize  = 16 // key(8) + value/child(8)
	// child0Off is where an internal node stores its leftmost child.
	child0Off = headerSize
	// maxLeaf is the leaf entry capacity.
	maxLeaf = (storage.PageSize - headerSize) / entrySize
	// maxInternal is the internal key capacity (one extra child pointer).
	maxInternal = (storage.PageSize - headerSize - 8) / entrySize
)

// PackTID encodes a TID as a value word.
func PackTID(t storage.TID) uint64 { return uint64(t.Page)<<16 | uint64(t.Slot) }

// UnpackTID decodes a value word.
func UnpackTID(v uint64) storage.TID {
	return storage.TID{Page: uint32(v >> 16), Slot: uint16(v & 0xffff)}
}

// Tree is a B+tree rooted in a pool page.
type Tree struct {
	pool *storage.Pool
	root int
	size int
}

// New creates an empty tree with a single leaf root.
func New(pool *storage.Pool) *Tree {
	t := &Tree{pool: pool}
	t.root = t.newNode(true)
	return t
}

// Len returns the number of entries.
func (t *Tree) Len() int { return t.size }

// Root returns the pool page number of the root node (checkpoint capture).
func (t *Tree) Root() int { return t.root }

// Restore rebuilds a tree handle over already-restored pool pages (checkpoint
// restore): the node pages themselves live in the pool image, so only the
// root page and entry count need recording.
func Restore(pool *storage.Pool, root, size int) (*Tree, error) {
	if root < 0 || root >= pool.Used() {
		return nil, fmt.Errorf("btree: restore: root page %d outside allocated pool [0,%d)", root, pool.Used())
	}
	if size < 0 {
		return nil, fmt.Errorf("btree: restore: negative size %d", size)
	}
	return &Tree{pool: pool, root: root, size: size}, nil
}

// Height returns the tree height (1 = just a leaf root).
func (t *Tree) Height() int {
	h, pg := 1, t.root
	for !t.isLeaf(pg) {
		pg = t.childAt(pg, 0)
		h++
	}
	return h
}

// NumNodes counts the pages used by the tree.
func (t *Tree) NumNodes() int { return t.countNodes(t.root) }

func (t *Tree) countNodes(pg int) int {
	if t.isLeaf(pg) {
		return 1
	}
	n := 1
	for i := 0; i <= t.nkeys(pg); i++ {
		n += t.countNodes(t.childAt(pg, i))
	}
	return n
}

// --- raw node accessors (uncharged; charging versions add Mem loads) ---

func (t *Tree) newNode(leaf bool) int {
	pg := t.pool.AllocPage()
	t.pool.MarkPage(pg, storage.PageIndex)
	b := t.pool.PageBytes(pg)
	for i := range b[:headerSize] {
		b[i] = 0
	}
	if leaf {
		b[2] = 1
	}
	return pg
}

func (t *Tree) bytes(pg int) []byte { return t.pool.PageBytes(pg) }

func (t *Tree) nkeys(pg int) int { return int(binary.LittleEndian.Uint16(t.bytes(pg))) }

func (t *Tree) setNKeys(pg, n int) { binary.LittleEndian.PutUint16(t.bytes(pg), uint16(n)) }

func (t *Tree) isLeaf(pg int) bool { return t.bytes(pg)[2] == 1 }

// next returns the right sibling of a leaf (-1 if none).
func (t *Tree) next(pg int) int {
	v := binary.LittleEndian.Uint64(t.bytes(pg)[8:])
	return int(v) - 1
}

func (t *Tree) setNext(pg, next int) {
	binary.LittleEndian.PutUint64(t.bytes(pg)[8:], uint64(next+1))
}

func (t *Tree) entryOff(pg, i int) int {
	off := headerSize
	if !t.isLeaf(pg) {
		off += 8
	}
	return off + i*entrySize
}

func (t *Tree) keyAt(pg, i int) int64 {
	return int64(binary.LittleEndian.Uint64(t.bytes(pg)[t.entryOff(pg, i):]))
}

func (t *Tree) valAt(pg, i int) uint64 {
	return binary.LittleEndian.Uint64(t.bytes(pg)[t.entryOff(pg, i)+8:])
}

func (t *Tree) childAt(pg, i int) int {
	if i == 0 {
		return int(binary.LittleEndian.Uint64(t.bytes(pg)[child0Off:]))
	}
	return int(t.valAt(pg, i-1))
}

func (t *Tree) setChild0(pg, child int) {
	binary.LittleEndian.PutUint64(t.bytes(pg)[child0Off:], uint64(child))
}

func (t *Tree) setEntry(pg, i int, key int64, val uint64) {
	off := t.entryOff(pg, i)
	binary.LittleEndian.PutUint64(t.bytes(pg)[off:], uint64(key))
	binary.LittleEndian.PutUint64(t.bytes(pg)[off+8:], val)
}

// insertEntryAt shifts entries right and writes (key,val) at position i.
func (t *Tree) insertEntryAt(pg, i int, key int64, val uint64) {
	n := t.nkeys(pg)
	start := t.entryOff(pg, i)
	end := t.entryOff(pg, n)
	b := t.bytes(pg)
	copy(b[start+entrySize:end+entrySize], b[start:end])
	t.setEntry(pg, i, key, val)
	t.setNKeys(pg, n+1)
}

// upperBound returns the first position whose key is > key.
func (t *Tree) upperBound(pg int, key int64) int {
	lo, hi := 0, t.nkeys(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(pg, mid) <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first position whose key is >= key.
func (t *Tree) lowerBound(pg int, key int64) int {
	lo, hi := 0, t.nkeys(pg)
	for lo < hi {
		mid := (lo + hi) / 2
		if t.keyAt(pg, mid) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Insert adds (key → tid). Inserts are bulk-load time and charge nothing;
// queries in this workload are read-only, as in the paper.
func (t *Tree) Insert(key int64, tid storage.TID) {
	sk, np, split := t.insert(t.root, key, PackTID(tid))
	if split {
		newRoot := t.newNode(false)
		t.setChild0(newRoot, t.root)
		t.insertEntryAt(newRoot, 0, sk, uint64(np))
		t.root = newRoot
	}
	t.size++
}

func (t *Tree) insert(pg int, key int64, val uint64) (int64, int, bool) {
	if t.isLeaf(pg) {
		i := t.upperBound(pg, key)
		t.insertEntryAt(pg, i, key, val)
		if t.nkeys(pg) <= maxLeaf-1 {
			return 0, 0, false
		}
		return t.splitLeaf(pg)
	}
	ci := t.upperBound(pg, key)
	sk, np, split := t.insert(t.childAt(pg, ci), key, val)
	if !split {
		return 0, 0, false
	}
	t.insertEntryAt(pg, ci, sk, uint64(np))
	if t.nkeys(pg) <= maxInternal-1 {
		return 0, 0, false
	}
	return t.splitInternal(pg)
}

func (t *Tree) splitLeaf(pg int) (int64, int, bool) {
	n := t.nkeys(pg)
	mid := n / 2
	np := t.newNode(true)
	src := t.bytes(pg)
	dst := t.bytes(np)
	copy(dst[headerSize:], src[t.entryOff(pg, mid):t.entryOff(pg, n)])
	t.setNKeys(np, n-mid)
	t.setNKeys(pg, mid)
	t.setNext(np, t.next(pg))
	t.setNext(pg, np)
	return t.keyAt(np, 0), np, true
}

func (t *Tree) splitInternal(pg int) (int64, int, bool) {
	n := t.nkeys(pg)
	mid := n / 2
	sepKey := t.keyAt(pg, mid)
	np := t.newNode(false)
	t.setChild0(np, int(t.valAt(pg, mid)))
	src := t.bytes(pg)
	dst := t.bytes(np)
	copy(dst[headerSize+8:], src[t.entryOff(pg, mid+1):t.entryOff(pg, n)])
	t.setNKeys(np, n-mid-1)
	t.setNKeys(pg, mid)
	return sepKey, np, true
}

// --- charged traversal ---

// descend walks from the root to the leaf that may contain key, charging the
// node header and the binary-search key probes, and invoking visit for each
// page touched (the engine pins index pages like heap pages).
func (t *Tree) descend(m storage.Mem, key int64, visit func(pg int)) int {
	pg := t.root
	for {
		if visit != nil {
			visit(pg)
		}
		m.Load(t.pool.PageAddr(pg), 8) // node header
		// Charged binary search: one key probe per halving.
		lo, hi := 0, t.nkeys(pg)
		for lo < hi {
			mid := (lo + hi) / 2
			m.Load(t.pool.PageAddr(pg)+memsys.Addr(t.entryOff(pg, mid)), 8)
			m.Work(12)
			if t.keyAt(pg, mid) < key {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		if t.isLeaf(pg) {
			return pg
		}
		// Route left on equality (lower bound): with duplicate keys the run
		// may start left of an equal separator; the leaf chain covers the
		// rest. The probes above already paid for this comparison.
		ci := t.lowerBound(pg, key)
		if ci > 0 {
			m.Load(t.pool.PageAddr(pg)+memsys.Addr(t.entryOff(pg, ci-1)+8), 8)
		} else {
			m.Load(t.pool.PageAddr(pg)+memsys.Addr(child0Off), 8)
		}
		pg = t.childAt(pg, ci)
	}
}

// Iterator walks entries with keys in [lo, hi] in order.
type Iterator struct {
	t       *Tree
	pg, idx int
	hi      int64
	visit   func(pg int)
}

// Seek positions an iterator at the first entry with key >= lo; visit (may be
// nil) is called for every index page the scan touches, letting the engine
// charge page pins.
func (t *Tree) Seek(m storage.Mem, lo, hi int64, visit func(pg int)) *Iterator {
	pg := t.descend(m, lo, visit)
	idx := t.lowerBound(pg, lo)
	return &Iterator{t: t, pg: pg, idx: idx, hi: hi, visit: visit}
}

// Next returns the next entry within the range. ok=false at the end.
func (it *Iterator) Next(m storage.Mem) (key int64, tid storage.TID, ok bool) {
	t := it.t
	for {
		if it.idx >= t.nkeys(it.pg) {
			nxt := t.next(it.pg)
			m.Load(t.pool.PageAddr(it.pg)+8, 8) // follow the leaf chain
			if nxt < 0 {
				return 0, storage.TID{}, false
			}
			it.pg, it.idx = nxt, 0
			if it.visit != nil {
				it.visit(it.pg)
			}
			continue
		}
		off := t.entryOff(it.pg, it.idx)
		m.Load(t.pool.PageAddr(it.pg)+memsys.Addr(off), entrySize)
		m.Work(25)
		k := t.keyAt(it.pg, it.idx)
		if k > it.hi {
			return 0, storage.TID{}, false
		}
		v := t.valAt(it.pg, it.idx)
		it.idx++
		return k, UnpackTID(v), true
	}
}

// Lookup returns the TIDs for an exact key (duplicates included), charging the
// traversal to m.
func (t *Tree) Lookup(m storage.Mem, key int64, visit func(pg int)) []storage.TID {
	var out []storage.TID
	it := t.Seek(m, key, key, visit)
	for {
		_, tid, ok := it.Next(m)
		if !ok {
			return out
		}
		out = append(out, tid)
	}
}
