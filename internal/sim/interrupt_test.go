package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInterruptBeforeRun(t *testing.T) {
	k := NewKernel(0)
	ran := false
	k.Spawn(func(p *Proc) {
		ran = true
		for {
			p.Advance(10)
		}
	})
	k.Interrupt(nil)
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if ran {
		t.Fatal("process body ran despite pre-run interrupt")
	}
}

func TestInterruptFromAnotherGoroutine(t *testing.T) {
	k := NewKernel(100)
	for i := 0; i < 3; i++ {
		k.Spawn(func(p *Proc) {
			for {
				p.Advance(10) // never returns: only Interrupt can end this run
			}
		})
	}
	cause := errors.New("deadline blown")
	go func() {
		time.Sleep(2 * time.Millisecond)
		k.Interrupt(cause)
		k.Interrupt(errors.New("second cause, must be dropped")) // idempotent
	}()
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want wrapped cause %v", err, cause)
	}
	if strings.Contains(err.Error(), "second cause") {
		t.Fatalf("err = %v kept a later cause", err)
	}
}

// TestKillUnwindReentry pins the teardown contract killAll depends on: a
// killed process whose deferred cleanup re-enters the simulation (the db
// layer's lock releases simulate their own memory accesses, so during an
// ErrKilled unwind they call Advance past the quantum edge) must not talk to
// the scheduler. Before the p.killed guard in yield(), that re-entry emitted
// an extra event that killAll mistook for the end of the unwind, releasing
// the next process into a concurrent unwind over shared state — run with
// -race, where the unsynchronized counter below catches exactly that.
func TestKillUnwindReentry(t *testing.T) {
	const quantum = 100
	k := NewKernel(quantum)
	shared := 0 // written by every unwind; safe only if unwinds serialize
	for i := 0; i < 4; i++ {
		k.Spawn(func(p *Proc) {
			defer func() {
				for j := 0; j < 16; j++ {
					shared++
					p.Advance(quantum * 2) // crosses the quantum edge mid-unwind
				}
			}()
			for {
				p.Advance(10)
			}
		})
	}
	go func() {
		time.Sleep(2 * time.Millisecond)
		k.Interrupt(nil)
	}()
	if err := k.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if shared != 4*16 {
		t.Fatalf("cleanup ran %d/%d steps: deferred teardown was cut short", shared, 4*16)
	}
}

// TestInterruptWithinOneQuantum pins the cancellation contract the serving
// layer relies on: after Interrupt, no process advances more than one
// scheduling quantum past the point where the request landed.
func TestInterruptWithinOneQuantum(t *testing.T) {
	const quantum = 1000
	k := NewKernel(quantum)
	var stopAt Clock
	p := k.Spawn(func(p *Proc) {
		for {
			p.Advance(100)
			if stopAt == 0 && p.Now() >= 5000 {
				stopAt = p.Now()
				k.Interrupt(nil)
			}
		}
	})
	if err := k.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if p.Now() > stopAt+quantum {
		t.Fatalf("process ran to %d, more than one quantum past the interrupt at %d", p.Now(), stopAt)
	}
}
