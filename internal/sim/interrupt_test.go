package sim

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestInterruptBeforeRun(t *testing.T) {
	k := NewKernel(0)
	ran := false
	k.Spawn(func(p *Proc) {
		ran = true
		for {
			p.Advance(10)
		}
	})
	k.Interrupt(nil)
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if ran {
		t.Fatal("process body ran despite pre-run interrupt")
	}
}

func TestInterruptFromAnotherGoroutine(t *testing.T) {
	k := NewKernel(100)
	for i := 0; i < 3; i++ {
		k.Spawn(func(p *Proc) {
			for {
				p.Advance(10) // never returns: only Interrupt can end this run
			}
		})
	}
	cause := errors.New("deadline blown")
	go func() {
		time.Sleep(2 * time.Millisecond)
		k.Interrupt(cause)
		k.Interrupt(errors.New("second cause, must be dropped")) // idempotent
	}()
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !errors.Is(err, cause) {
		t.Fatalf("err = %v, want wrapped cause %v", err, cause)
	}
	if strings.Contains(err.Error(), "second cause") {
		t.Fatalf("err = %v kept a later cause", err)
	}
}

// TestInterruptWithinOneQuantum pins the cancellation contract the serving
// layer relies on: after Interrupt, no process advances more than one
// scheduling quantum past the point where the request landed.
func TestInterruptWithinOneQuantum(t *testing.T) {
	const quantum = 1000
	k := NewKernel(quantum)
	var stopAt Clock
	p := k.Spawn(func(p *Proc) {
		for {
			p.Advance(100)
			if stopAt == 0 && p.Now() >= 5000 {
				stopAt = p.Now()
				k.Interrupt(nil)
			}
		}
	})
	if err := k.Run(); !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if p.Now() > stopAt+quantum {
		t.Fatalf("process ran to %d, more than one quantum past the interrupt at %d", p.Now(), stopAt)
	}
}
