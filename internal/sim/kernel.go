// Package sim provides the deterministic multi-process execution kernel that
// underlies the machine simulators.
//
// Each simulated process runs as a goroutine. In the default serial mode at
// most one process executes at a time: the kernel always resumes the process
// with the smallest local clock and lets it run for a bounded quantum of
// simulated cycles before it must hand control back. This "min-clock quantum"
// discipline gives a deterministic, repeatable interleaving whose timing
// error is bounded by the quantum, which is the standard approach for
// execution-driven multiprocessor simulation (cf. RSIM, SimOS).
//
// EnableBoundWeave switches Run to a two-phase bound–weave scheduler
// (zSim-style): in the bound phase every runnable process executes
// concurrently as a real goroutine up to a shared window edge, touching only
// state private to its CPU and appending cross-CPU interactions to per-CPU
// logs; in the weave phase — entered only when every process is parked — the
// kernel runs the registered weavers, which drain those logs and apply the
// interactions to shared state serially in deterministic (timestamp, CPU)
// order. Parallel runs are deterministic and independent of GOMAXPROCS; their
// timing skew relative to the serial schedule is bounded by the window (see
// DESIGN.md §11).
package sim

import (
	"errors"
	"fmt"
	"sync"
)

// Clock counts simulated CPU cycles.
type Clock uint64

// DefaultQuantum is the default number of cycles a process may run before
// yielding to the kernel. Smaller quanta tighten the interleaving accuracy at
// the cost of more goroutine handoffs.
const DefaultQuantum Clock = 20_000

// ErrKilled is delivered to processes that are still running when the kernel
// is shut down early.
var ErrKilled = errors.New("sim: process killed")

// ErrInterrupted is returned by Run when the kernel was stopped early via
// Interrupt. Test with errors.Is; the cause passed to Interrupt (if any) is
// wrapped alongside it.
var ErrInterrupted = errors.New("sim: run interrupted")

type yieldKind int

const (
	yieldQuantum yieldKind = iota // quantum expired, process wants to continue
	yieldDone                     // process body returned
	yieldPanic                    // process body panicked
)

type yieldMsg struct {
	proc *Proc
	kind yieldKind
	err  error
}

// Proc is the kernel-side handle for one simulated process. All methods must
// be called from the process's own goroutine (the function passed to Spawn),
// never from outside.
type Proc struct {
	id     int
	kernel *Kernel

	clock      Clock
	quantumEnd Clock

	resume chan Clock // kernel -> proc: new quantum end
	killed bool
	done   bool // kernel-side: body finished (scheduling bookkeeping)

	// Hooks let higher layers observe scheduling points.
	// OnYield is invoked (in the process goroutine) just before the process
	// hands control back to the kernel because its quantum expired.
	OnYield func(now Clock)
	// OnExit is invoked (in the process goroutine) after the process body
	// returns normally, with the final clock — the last scheduling point of
	// the process's life. It is not called for killed or panicking processes.
	OnExit func(now Clock)
}

// ID returns the process identifier, unique within its kernel.
func (p *Proc) ID() int { return p.id }

// Now returns the process's local clock in cycles.
func (p *Proc) Now() Clock { return p.clock }

// Advance adds cycles to the local clock and yields to the kernel if the
// quantum has expired.
func (p *Proc) Advance(cycles Clock) {
	p.clock += cycles
	if p.clock >= p.quantumEnd {
		p.yield()
	}
}

// AdvanceTo moves the local clock forward to at least t. It is the primitive
// used to model waiting for an event that completes at a known simulated time.
// Advancing backwards is a no-op.
func (p *Proc) AdvanceTo(t Clock) {
	if t > p.clock {
		p.Advance(t - p.clock)
	}
}

// Yield unconditionally hands control back to the kernel, even if quantum
// remains. Use it before spinning on state owned by another process so the
// other process gets a chance to run. In bound–weave mode it is a no-op: the
// other processes are already running concurrently, and parking here would
// stall the spinner for a full window without advancing its clock.
func (p *Proc) Yield() {
	if p.kernel.window != 0 {
		return
	}
	p.yield()
}

func (p *Proc) yield() {
	if p.killed {
		// Dying: the kernel closed our resume channel and killAll counts
		// exactly one event (runBody's) for this process. A deferred cleanup
		// that re-enters the simulation during the ErrKilled unwind — a lock
		// release simulating its own memory accesses — must not talk to the
		// scheduler: an extra event here would make killAll think the unwind
		// finished and release the next process into a concurrent unwind over
		// shared machine state. Let the cleanup run free of the quantum.
		return
	}
	if p.OnYield != nil {
		p.OnYield(p.clock)
	}
	p.kernel.events <- yieldMsg{proc: p, kind: yieldQuantum}
	p.block()
}

// block waits until the kernel grants a new quantum. If the kernel is shutting
// down it panics with ErrKilled, which unwinds the process goroutine; the
// wrapper in Spawn recovers it.
func (p *Proc) block() {
	end, ok := <-p.resume
	if !ok {
		p.killed = true
		panic(ErrKilled)
	}
	p.quantumEnd = end
}

// Kernel schedules a set of simulated processes deterministically.
type Kernel struct {
	quantum Clock
	procs   []*Proc
	bodies  []func(*Proc)
	events  chan yieldMsg
	started bool

	// Bound–weave mode. window != 0 selects the parallel scheduler; weavers
	// run serially, in registration order, at every window boundary while all
	// processes are parked.
	window  Clock
	weavers []func()

	// FaultHook, when non-nil, is invoked in the scheduling goroutine at
	// every quantum boundary, after the interrupt check and before the next
	// process is resumed. It exists for the fault-injection layer: a hook
	// that sleeps models a scheduler-level latency stall (wall-clock only —
	// simulated clocks are untouched, so results are unperturbed); a hook
	// that never returns wedges the simulation in a way even Interrupt
	// cannot break, which is exactly the failure the service watchdog must
	// catch. Set before Run; never mutated concurrently with it.
	FaultHook func()

	// Interruption. stop is closed (once) by Interrupt; the scheduler checks
	// it before every quantum grant, so a run aborts within one quantum of
	// the request. These are the only kernel fields touched from outside the
	// scheduling goroutine.
	stop      chan struct{}
	stopOnce  sync.Once
	causeMu   sync.Mutex
	stopCause error
}

// NewKernel returns a kernel with the given scheduling quantum in cycles.
// A quantum of 0 selects DefaultQuantum.
func NewKernel(quantum Clock) *Kernel {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &Kernel{
		quantum: quantum,
		events:  make(chan yieldMsg),
		stop:    make(chan struct{}),
	}
}

// EnableBoundWeave switches Run to the two-phase parallel scheduler with the
// given window in cycles (0 selects the scheduling quantum). Call before Run.
// The window bounds the timing skew between concurrently executing processes:
// smaller windows tighten fidelity to the serial schedule at the cost of more
// synchronization barriers.
func (k *Kernel) EnableBoundWeave(window Clock) {
	if k.started {
		panic("sim: EnableBoundWeave after Run")
	}
	if window == 0 {
		window = k.quantum
	}
	k.window = window
}

// BoundWeave reports whether the parallel scheduler is enabled.
func (k *Kernel) BoundWeave() bool { return k.window != 0 }

// Window returns the bound–weave window in cycles (0 in serial mode).
func (k *Kernel) Window() Clock { return k.window }

// AddWeaver registers a function the parallel scheduler calls at every window
// boundary while all processes are parked. Weavers run serially on the
// scheduling goroutine in registration order; they are where per-CPU
// interaction logs are drained into shared state. Call before Run.
func (k *Kernel) AddWeaver(fn func()) { k.weavers = append(k.weavers, fn) }

// Interrupt requests that Run abort at the next scheduling-quantum boundary:
// every live process is killed (its goroutine unwinds via ErrKilled) and Run
// returns an error satisfying errors.Is(err, ErrInterrupted), wrapping cause
// when non-nil. Unlike every other Kernel method, Interrupt is safe to call
// from any goroutine, at any time (before, during or after Run), and is
// idempotent — only the first call's cause is kept.
func (k *Kernel) Interrupt(cause error) {
	k.stopOnce.Do(func() {
		k.causeMu.Lock()
		k.stopCause = cause
		k.causeMu.Unlock()
		close(k.stop)
	})
}

// interruptErr builds Run's return value after a stop request.
func (k *Kernel) interruptErr() error {
	k.causeMu.Lock()
	defer k.causeMu.Unlock()
	if k.stopCause != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, k.stopCause)
	}
	return ErrInterrupted
}

// Quantum reports the scheduling quantum in cycles.
func (k *Kernel) Quantum() Clock { return k.quantum }

// Spawn registers a process whose body is fn. Processes must all be spawned
// before Run is called. The returned Proc is handed to fn when the kernel
// starts; callers may also keep it to inspect the final clock after Run.
func (k *Kernel) Spawn(fn func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(k.procs),
		kernel: k,
		resume: make(chan Clock),
	}
	k.procs = append(k.procs, p)
	k.bodies = append(k.bodies, fn)
	return p
}

// Run executes all spawned processes to completion and returns the first
// process panic as an error (processes that complete normally return nil).
// Run is deterministic: given the same spawn order and process behaviour it
// produces the same interleaving every time — in bound–weave mode, the same
// results regardless of GOMAXPROCS or host scheduling.
func (k *Kernel) Run() error {
	if k.started {
		return errors.New("sim: Run called twice")
	}
	k.started = true
	if len(k.procs) == 0 {
		return nil
	}

	for i, p := range k.procs {
		go k.runBody(p, k.bodies[i])
	}
	if k.window != 0 {
		return k.runBoundWeave()
	}
	return k.runSerial()
}

// runSerial is the min-clock quantum scheduler. Process bookkeeping is O(1)
// per scheduling event — parked processes live in a slice whose order is
// irrelevant (the pick is always the unique (clock, ID) minimum, found by a
// linear scan), so yields append, exits are uncounted, and no per-iteration
// map or sort is needed.
func (k *Kernel) runSerial() error {
	// runnable holds every live process, each parked on its resume channel —
	// the one safe point to honour an interrupt by killing them all.
	runnable := make([]*Proc, len(k.procs))
	copy(runnable, k.procs)

	var firstErr error
	for len(runnable) > 0 {
		select {
		case <-k.stop:
			k.killAll(runnable)
			if firstErr == nil {
				firstErr = k.interruptErr()
			}
			return firstErr
		default:
		}
		if k.FaultHook != nil {
			k.FaultHook()
		}
		// Pick the runnable process with the minimum clock (ties by ID). A
		// linear scan beats re-sorting: the slice is small (≤ CPUs) and the
		// minimum under the (clock, ID) total order is unique, so the chosen
		// schedule is identical to the previous sort-based implementation.
		mi := 0
		for i := 1; i < len(runnable); i++ {
			if pi, pm := runnable[i], runnable[mi]; pi.clock < pm.clock ||
				(pi.clock == pm.clock && pi.id < pm.id) {
				mi = i
			}
		}
		next := runnable[mi]
		last := len(runnable) - 1
		runnable[mi] = runnable[last]
		runnable = runnable[:last]

		next.resume <- next.clock + k.quantum
		msg := <-k.events
		switch msg.kind {
		case yieldQuantum:
			runnable = append(runnable, msg.proc)
		case yieldDone:
			// Already removed from runnable; nothing to do.
		case yieldPanic:
			if firstErr == nil {
				firstErr = msg.err
			}
			k.killAll(runnable)
			runnable = runnable[:0]
		}
	}
	return firstErr
}

// killAll closes the resume channels of the given parked processes, unblocking
// each with ErrKilled, and drains their unwind notifications.
func (k *Kernel) killAll(parked []*Proc) {
	for _, p := range parked {
		close(p.resume)
		<-k.events // the ErrKilled unwind notification
	}
}

// runBoundWeave is the two-phase parallel scheduler. Each iteration is one
// window: every live process whose clock lies before the window edge is
// released and runs concurrently (bound phase) until it crosses the edge,
// finishes, or panics; once all released processes are parked again the
// weavers drain the per-CPU interaction logs in deterministic order (weave
// phase). Panic selection is by (clock, ID), not host arrival order, so runs
// abort deterministically too.
func (k *Kernel) runBoundWeave() error {
	live := make([]*Proc, len(k.procs))
	copy(live, k.procs)

	for len(live) > 0 {
		select {
		case <-k.stop:
			k.killAll(live)
			return k.interruptErr()
		default:
		}
		if k.FaultHook != nil {
			k.FaultHook()
		}

		// Window edge: the minimum live clock plus one window. At least the
		// minimum-clock process is released, so every window makes progress;
		// processes sleeping far ahead (e.g. in a select() back-off) stay
		// parked until the windows catch up to them.
		min := live[0].clock
		for _, p := range live[1:] {
			if p.clock < min {
				min = p.clock
			}
		}
		end := min + k.window

		// Bound phase: release and run concurrently.
		released := 0
		for _, p := range live {
			if p.clock < end {
				released++
				p.resume <- end
			}
		}
		var panics []yieldMsg
		for i := 0; i < released; i++ {
			msg := <-k.events
			switch msg.kind {
			case yieldQuantum:
				// Parked at the window edge; stays in live.
			case yieldDone:
				msg.proc.done = true
			case yieldPanic:
				msg.proc.done = true
				panics = append(panics, msg)
			}
		}

		if len(panics) > 0 {
			// Deterministic "first" panic: minimum (clock, ID) among this
			// window's panics, independent of host arrival order.
			first := panics[0]
			for _, m := range panics[1:] {
				if m.proc.clock < first.proc.clock ||
					(m.proc.clock == first.proc.clock && m.proc.id < first.proc.id) {
					first = m
				}
			}
			survivors := live[:0]
			for _, p := range live {
				if !p.done {
					survivors = append(survivors, p)
				}
			}
			k.killAll(survivors)
			return first.err
		}

		// Weave phase: all processes parked; apply logged interactions to
		// shared state in deterministic order.
		for _, w := range k.weavers {
			w()
		}

		if released > 0 {
			survivors := live[:0]
			for _, p := range live {
				if !p.done {
					survivors = append(survivors, p)
				}
			}
			live = survivors
		}
	}
	return nil
}

func (k *Kernel) runBody(p *Proc, fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if p.killed {
				k.events <- yieldMsg{proc: p, kind: yieldDone}
				return
			}
			k.events <- yieldMsg{proc: p, kind: yieldPanic, err: fmt.Errorf("sim: process %d panicked: %v", p.id, r)}
			return
		}
		k.events <- yieldMsg{proc: p, kind: yieldDone}
	}()
	p.block() // wait for the first quantum grant
	fn(p)
	if p.OnExit != nil {
		p.OnExit(p.clock)
	}
}
