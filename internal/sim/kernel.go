// Package sim provides the deterministic multi-process execution kernel that
// underlies the machine simulators.
//
// Each simulated process runs as a goroutine, but at most one process executes
// at a time: the kernel always resumes the process with the smallest local
// clock and lets it run for a bounded quantum of simulated cycles before it
// must hand control back. This "min-clock quantum" discipline gives a
// deterministic, repeatable interleaving whose timing error is bounded by the
// quantum, which is the standard approach for execution-driven multiprocessor
// simulation (cf. RSIM, SimOS).
package sim

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// Clock counts simulated CPU cycles.
type Clock uint64

// DefaultQuantum is the default number of cycles a process may run before
// yielding to the kernel. Smaller quanta tighten the interleaving accuracy at
// the cost of more goroutine handoffs.
const DefaultQuantum Clock = 20_000

// ErrKilled is delivered to processes that are still running when the kernel
// is shut down early.
var ErrKilled = errors.New("sim: process killed")

// ErrInterrupted is returned by Run when the kernel was stopped early via
// Interrupt. Test with errors.Is; the cause passed to Interrupt (if any) is
// wrapped alongside it.
var ErrInterrupted = errors.New("sim: run interrupted")

type yieldKind int

const (
	yieldQuantum yieldKind = iota // quantum expired, process wants to continue
	yieldDone                     // process body returned
	yieldPanic                    // process body panicked
)

type yieldMsg struct {
	proc *Proc
	kind yieldKind
	err  error
}

// Proc is the kernel-side handle for one simulated process. All methods must
// be called from the process's own goroutine (the function passed to Spawn),
// never from outside.
type Proc struct {
	id     int
	kernel *Kernel

	clock      Clock
	quantumEnd Clock

	resume chan Clock // kernel -> proc: new quantum end
	killed bool

	// Hooks let higher layers observe scheduling points.
	// OnYield is invoked (in the process goroutine) just before the process
	// hands control back to the kernel because its quantum expired.
	OnYield func(now Clock)
	// OnExit is invoked (in the process goroutine) after the process body
	// returns normally, with the final clock — the last scheduling point of
	// the process's life. It is not called for killed or panicking processes.
	OnExit func(now Clock)
}

// ID returns the process identifier, unique within its kernel.
func (p *Proc) ID() int { return p.id }

// Now returns the process's local clock in cycles.
func (p *Proc) Now() Clock { return p.clock }

// Advance adds cycles to the local clock and yields to the kernel if the
// quantum has expired.
func (p *Proc) Advance(cycles Clock) {
	p.clock += cycles
	if p.clock >= p.quantumEnd {
		p.yield()
	}
}

// AdvanceTo moves the local clock forward to at least t. It is the primitive
// used to model waiting for an event that completes at a known simulated time.
// Advancing backwards is a no-op.
func (p *Proc) AdvanceTo(t Clock) {
	if t > p.clock {
		p.Advance(t - p.clock)
	}
}

// Yield unconditionally hands control back to the kernel, even if quantum
// remains. Use it before spinning on state owned by another process so the
// other process gets a chance to run.
func (p *Proc) Yield() { p.yield() }

func (p *Proc) yield() {
	if p.OnYield != nil {
		p.OnYield(p.clock)
	}
	p.kernel.events <- yieldMsg{proc: p, kind: yieldQuantum}
	p.block()
}

// block waits until the kernel grants a new quantum. If the kernel is shutting
// down it panics with ErrKilled, which unwinds the process goroutine; the
// wrapper in Spawn recovers it.
func (p *Proc) block() {
	end, ok := <-p.resume
	if !ok {
		p.killed = true
		panic(ErrKilled)
	}
	p.quantumEnd = end
}

// Kernel schedules a set of simulated processes deterministically.
type Kernel struct {
	quantum Clock
	procs   []*Proc
	bodies  []func(*Proc)
	events  chan yieldMsg
	started bool

	// FaultHook, when non-nil, is invoked in the scheduling goroutine at
	// every quantum boundary, after the interrupt check and before the next
	// process is resumed. It exists for the fault-injection layer: a hook
	// that sleeps models a scheduler-level latency stall (wall-clock only —
	// simulated clocks are untouched, so results are unperturbed); a hook
	// that never returns wedges the simulation in a way even Interrupt
	// cannot break, which is exactly the failure the service watchdog must
	// catch. Set before Run; never mutated concurrently with it.
	FaultHook func()

	// Interruption. stop is closed (once) by Interrupt; the scheduler checks
	// it before every quantum grant, so a run aborts within one quantum of
	// the request. These are the only kernel fields touched from outside the
	// scheduling goroutine.
	stop      chan struct{}
	stopOnce  sync.Once
	causeMu   sync.Mutex
	stopCause error
}

// NewKernel returns a kernel with the given scheduling quantum in cycles.
// A quantum of 0 selects DefaultQuantum.
func NewKernel(quantum Clock) *Kernel {
	if quantum == 0 {
		quantum = DefaultQuantum
	}
	return &Kernel{
		quantum: quantum,
		events:  make(chan yieldMsg),
		stop:    make(chan struct{}),
	}
}

// Interrupt requests that Run abort at the next scheduling-quantum boundary:
// every live process is killed (its goroutine unwinds via ErrKilled) and Run
// returns an error satisfying errors.Is(err, ErrInterrupted), wrapping cause
// when non-nil. Unlike every other Kernel method, Interrupt is safe to call
// from any goroutine, at any time (before, during or after Run), and is
// idempotent — only the first call's cause is kept.
func (k *Kernel) Interrupt(cause error) {
	k.stopOnce.Do(func() {
		k.causeMu.Lock()
		k.stopCause = cause
		k.causeMu.Unlock()
		close(k.stop)
	})
}

// interruptErr builds Run's return value after a stop request.
func (k *Kernel) interruptErr() error {
	k.causeMu.Lock()
	defer k.causeMu.Unlock()
	if k.stopCause != nil {
		return fmt.Errorf("%w: %w", ErrInterrupted, k.stopCause)
	}
	return ErrInterrupted
}

// Quantum reports the scheduling quantum in cycles.
func (k *Kernel) Quantum() Clock { return k.quantum }

// Spawn registers a process whose body is fn. Processes must all be spawned
// before Run is called. The returned Proc is handed to fn when the kernel
// starts; callers may also keep it to inspect the final clock after Run.
func (k *Kernel) Spawn(fn func(*Proc)) *Proc {
	if k.started {
		panic("sim: Spawn after Run")
	}
	p := &Proc{
		id:     len(k.procs),
		kernel: k,
		resume: make(chan Clock),
	}
	k.procs = append(k.procs, p)
	k.bodies = append(k.bodies, fn)
	return p
}

// Run executes all spawned processes to completion and returns the first
// process panic as an error (processes that complete normally return nil).
// Run is deterministic: given the same spawn order and process behaviour it
// produces the same interleaving every time.
func (k *Kernel) Run() error {
	if k.started {
		return errors.New("sim: Run called twice")
	}
	k.started = true
	if len(k.procs) == 0 {
		return nil
	}

	for i, p := range k.procs {
		go k.runBody(p, k.bodies[i])
	}

	live := make(map[int]*Proc, len(k.procs))
	runnable := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		live[p.id] = p
		runnable = append(runnable, p)
	}

	var firstErr error
	for len(live) > 0 {
		// At the top of each iteration every live process is parked in
		// runnable, blocked on its resume channel — the one safe point to
		// honour an interrupt by killing them all.
		select {
		case <-k.stop:
			for _, p := range runnable {
				close(p.resume)
				<-k.events // the ErrKilled unwind notification
				delete(live, p.id)
			}
			runnable = runnable[:0]
			if firstErr == nil {
				firstErr = k.interruptErr()
			}
			return firstErr
		default:
		}
		if k.FaultHook != nil {
			k.FaultHook()
		}
		// Pick the runnable process with the minimum clock (ties by ID).
		sort.Slice(runnable, func(i, j int) bool {
			if runnable[i].clock != runnable[j].clock {
				return runnable[i].clock < runnable[j].clock
			}
			return runnable[i].id < runnable[j].id
		})
		next := runnable[0]
		runnable = runnable[1:]

		next.resume <- next.clock + k.quantum
		msg := <-k.events
		switch msg.kind {
		case yieldQuantum:
			runnable = append(runnable, msg.proc)
		case yieldDone:
			delete(live, msg.proc.id)
		case yieldPanic:
			delete(live, msg.proc.id)
			if firstErr == nil {
				firstErr = msg.err
			}
			// Kill the remaining processes: closing resume unblocks them
			// with ErrKilled.
			for _, p := range runnable {
				close(p.resume)
				<-k.events // their panic notification
				delete(live, p.id)
			}
			runnable = runnable[:0]
		}
	}
	return firstErr
}

func (k *Kernel) runBody(p *Proc, fn func(*Proc)) {
	defer func() {
		if r := recover(); r != nil {
			if p.killed {
				k.events <- yieldMsg{proc: p, kind: yieldDone}
				return
			}
			k.events <- yieldMsg{proc: p, kind: yieldPanic, err: fmt.Errorf("sim: process %d panicked: %v", p.id, r)}
			return
		}
		k.events <- yieldMsg{proc: p, kind: yieldDone}
	}()
	p.block() // wait for the first quantum grant
	fn(p)
	if p.OnExit != nil {
		p.OnExit(p.clock)
	}
}
