package sim

import (
	"errors"
	"strings"
	"testing"
	"testing/quick"
)

func TestEmptyKernel(t *testing.T) {
	if err := NewKernel(0).Run(); err != nil {
		t.Fatalf("empty kernel: %v", err)
	}
}

func TestSingleProcessAdvances(t *testing.T) {
	k := NewKernel(100)
	p := k.Spawn(func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Advance(7)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.Now(), Clock(7000); got != want {
		t.Fatalf("clock = %d, want %d", got, want)
	}
}

func TestAdvanceTo(t *testing.T) {
	k := NewKernel(0)
	p := k.Spawn(func(p *Proc) {
		p.AdvanceTo(500)
		p.AdvanceTo(100) // backwards: no-op
		p.AdvanceTo(501)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Now() != 501 {
		t.Fatalf("clock = %d, want 501", p.Now())
	}
}

// TestMinClockOrdering verifies that the process with the smallest clock is
// always the one scheduled, so a slow process interleaves densely between
// quanta of a fast one.
func TestMinClockOrdering(t *testing.T) {
	k := NewKernel(10)
	var order []int
	record := func(id int) func(*Proc) {
		return func(p *Proc) {
			for i := 0; i < 3; i++ {
				order = append(order, id)
				p.Advance(10) // exactly one quantum
			}
		}
	}
	k.Spawn(record(0))
	k.Spawn(record(1))
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{0, 1, 0, 1, 0, 1}
	if len(order) != len(want) {
		t.Fatalf("order = %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// TestDeterminism runs the same randomized workload twice and requires
// identical final clocks and interleavings.
func TestDeterminism(t *testing.T) {
	run := func() ([]Clock, []int) {
		k := NewKernel(50)
		var trace []int
		procs := make([]*Proc, 4)
		for i := 0; i < 4; i++ {
			i := i
			procs[i] = k.Spawn(func(p *Proc) {
				seed := uint64(i + 1)
				for j := 0; j < 200; j++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					trace = append(trace, i)
					p.Advance(Clock(seed%97 + 1))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		clocks := make([]Clock, 4)
		for i, p := range procs {
			clocks[i] = p.Now()
		}
		return clocks, trace
	}
	c1, t1 := run()
	c2, t2 := run()
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatalf("clocks differ: %v vs %v", c1, c2)
		}
	}
	if len(t1) != len(t2) {
		t.Fatalf("trace lengths differ")
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("traces diverge at %d", i)
		}
	}
}

// TestClockSkewBound: at any yield, no process can be behind the running
// process by more than one quantum, because the kernel always resumes the
// minimum clock.
func TestClockSkewBound(t *testing.T) {
	const quantum = 64
	k := NewKernel(quantum)
	procs := make([]*Proc, 3)
	maxSkew := Clock(0)
	for i := range procs {
		i := i
		procs[i] = k.Spawn(func(p *Proc) {
			for j := 0; j < 500; j++ {
				p.Advance(Clock((i*13+j*7)%30 + 1))
				// When this process is running, its clock may exceed others'
				// by at most quantum + one advance step.
				for _, q := range procs {
					if q != nil && q.clock < p.clock && p.clock-q.clock > maxSkew {
						maxSkew = p.clock - q.clock
					}
				}
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Skew observed mid-run is bounded by quantum plus the largest single
	// advance (30) plus the other process's own pending advance; allow 2x.
	if maxSkew > 2*quantum+60 {
		t.Fatalf("clock skew %d exceeds bound", maxSkew)
	}
}

func TestPanicPropagates(t *testing.T) {
	k := NewKernel(0)
	k.Spawn(func(p *Proc) {
		p.Advance(10)
		panic("boom")
	})
	k.Spawn(func(p *Proc) {
		for {
			p.Advance(1)
		}
	})
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want panic containing boom", err)
	}
}

func TestKilledProcessesDoNotReportError(t *testing.T) {
	k := NewKernel(5)
	k.Spawn(func(p *Proc) {
		p.Advance(1)
		panic("first")
	})
	for i := 0; i < 3; i++ {
		k.Spawn(func(p *Proc) {
			for {
				p.Advance(1)
			}
		})
	}
	err := k.Run()
	if err == nil || !strings.Contains(err.Error(), "first") {
		t.Fatalf("err = %v, want the first panic only", err)
	}
	if errors.Is(err, ErrKilled) {
		t.Fatalf("kill sentinel leaked into the reported error: %v", err)
	}
}

func TestSpawnAfterRunPanics(t *testing.T) {
	k := NewKernel(0)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from Spawn after Run")
		}
	}()
	k.Spawn(func(*Proc) {})
}

func TestOnYieldHook(t *testing.T) {
	k := NewKernel(10)
	var yields int
	k.Spawn(func(p *Proc) {
		p.OnYield = func(Clock) { yields++ }
		for i := 0; i < 5; i++ {
			p.Advance(10)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if yields != 5 {
		t.Fatalf("yields = %d, want 5", yields)
	}
}

// Property: total advanced cycles always equals the final clock, regardless of
// the advance pattern.
func TestAdvanceSumProperty(t *testing.T) {
	f := func(steps []uint16) bool {
		if len(steps) > 2000 {
			steps = steps[:2000]
		}
		k := NewKernel(33)
		var sum Clock
		p := k.Spawn(func(p *Proc) {
			for _, s := range steps {
				sum += Clock(s)
				p.Advance(Clock(s))
			}
		})
		if err := k.Run(); err != nil {
			return false
		}
		return p.Now() == sum
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: with N identical processes, all finish with identical clocks.
func TestSymmetryProperty(t *testing.T) {
	f := func(n uint8, step uint8) bool {
		nn := int(n%6) + 1
		st := Clock(step%50) + 1
		k := NewKernel(100)
		procs := make([]*Proc, nn)
		for i := 0; i < nn; i++ {
			procs[i] = k.Spawn(func(p *Proc) {
				for j := 0; j < 300; j++ {
					p.Advance(st)
				}
			})
		}
		if err := k.Run(); err != nil {
			return false
		}
		for _, p := range procs {
			if p.Now() != procs[0].Now() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestFaultHookAtQuantumBoundaries: the fault hook runs in the scheduler at
// every quantum boundary and never perturbs simulated clocks.
func TestFaultHookAtQuantumBoundaries(t *testing.T) {
	k := NewKernel(100)
	p := k.Spawn(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(100) // ten full quanta
		}
	})
	calls := 0
	k.FaultHook = func() { calls++ }
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// One call before each of the ~10 grants (plus the final done event's
	// loop entry); the exact count is pinned by determinism.
	if calls < 10 {
		t.Fatalf("hook ran %d times, want >= 10", calls)
	}
	if p.Now() != 1000 {
		t.Fatalf("hook perturbed the simulated clock: %d", p.Now())
	}

	// Determinism: an identical run makes the identical number of calls.
	k2 := NewKernel(100)
	k2.Spawn(func(p *Proc) {
		for i := 0; i < 10; i++ {
			p.Advance(100)
		}
	})
	calls2 := 0
	k2.FaultHook = func() { calls2++ }
	if err := k2.Run(); err != nil {
		t.Fatal(err)
	}
	if calls2 != calls {
		t.Fatalf("hook call count nondeterministic: %d vs %d", calls, calls2)
	}
}
