package sim

import (
	"errors"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
)

// TestBoundWeaveMatchesSerialClocks: compute-only processes (no shared state)
// must end at exactly the same clocks under both schedulers.
func TestBoundWeaveMatchesSerialClocks(t *testing.T) {
	run := func(parallel bool) []Clock {
		k := NewKernel(100)
		if parallel {
			k.EnableBoundWeave(0)
		}
		procs := make([]*Proc, 5)
		for i := range procs {
			i := i
			procs[i] = k.Spawn(func(p *Proc) {
				seed := uint64(i + 1)
				for j := 0; j < 300; j++ {
					seed = seed*6364136223846793005 + 1442695040888963407
					p.Advance(Clock(seed%173 + 1))
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		out := make([]Clock, len(procs))
		for i, p := range procs {
			out[i] = p.Now()
		}
		return out
	}
	serial, par := run(false), run(true)
	for i := range serial {
		if serial[i] != par[i] {
			t.Fatalf("proc %d: serial clock %d, parallel clock %d", i, serial[i], par[i])
		}
	}
}

// TestBoundWeaveSkewBound: at every weave point all parked live processes lie
// within one window of each other (or have run past the edge by at most their
// final Advance), because the scheduler only releases processes whose clock is
// before min+window.
func TestBoundWeaveSkewBound(t *testing.T) {
	const window = 256
	k := NewKernel(64)
	k.EnableBoundWeave(window)
	procs := make([]*Proc, 4)
	for i := range procs {
		i := i
		procs[i] = k.Spawn(func(p *Proc) {
			step := Clock(3 + 7*i) // unequal speeds
			for j := 0; j < 500; j++ {
				p.Advance(step)
			}
		})
	}
	maxSpread := Clock(0)
	k.AddWeaver(func() {
		lo, hi := Clock(1<<62), Clock(0)
		any := false
		for _, p := range procs {
			if p.done {
				continue
			}
			any = true
			if p.clock < lo {
				lo = p.clock
			}
			if p.clock > hi {
				hi = p.clock
			}
		}
		if any && hi-lo > maxSpread {
			maxSpread = hi - lo
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// A process released at clock c < end stops at its first advance past end,
	// so it overshoots by less than one step (< 32 here); the spread of live
	// clocks is bounded by window + maxStep.
	if limit := Clock(window + 32); maxSpread > limit {
		t.Fatalf("live clock spread %d exceeds window bound %d", maxSpread, limit)
	}
}

// TestBoundWeaveWeaverSerialized: weavers must run with every process parked
// — no process body may be executing concurrently with a weaver.
func TestBoundWeaveWeaverSerialized(t *testing.T) {
	k := NewKernel(50)
	k.EnableBoundWeave(0)
	var inBody atomic.Int32
	for i := 0; i < 4; i++ {
		k.Spawn(func(p *Proc) {
			for j := 0; j < 200; j++ {
				inBody.Add(1)
				runtime.Gosched() // invite interleaving bugs to show up
				inBody.Add(-1)
				p.Advance(13)
			}
		})
	}
	weaves := 0
	k.AddWeaver(func() {
		weaves++
		if n := inBody.Load(); n != 0 {
			t.Errorf("weaver ran with %d process bodies active", n)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if weaves == 0 {
		t.Fatal("weaver never ran")
	}
}

// TestBoundWeaveDeterministicPanic: when several processes panic in the same
// window, Run must report the (clock, ID)-minimal one regardless of host
// scheduling. Run many times to give nondeterminism a chance to show.
func TestBoundWeaveDeterministicPanic(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		k := NewKernel(1000)
		k.EnableBoundWeave(0)
		k.Spawn(func(p *Proc) {
			p.Advance(500)
			panic("late panic") // clock 500: must lose to the earlier one
		})
		k.Spawn(func(p *Proc) {
			p.Advance(100)
			panic("early panic") // clock 100: deterministic winner
		})
		k.Spawn(func(p *Proc) {
			for j := 0; j < 100; j++ {
				p.Advance(10)
			}
		})
		err := k.Run()
		if err == nil || !strings.Contains(err.Error(), "early panic") {
			t.Fatalf("trial %d: err = %v, want the clock-100 panic", trial, err)
		}
	}
}

// TestBoundWeaveInterrupt: Interrupt from another goroutine aborts a parallel
// run at a window boundary with ErrInterrupted.
func TestBoundWeaveInterrupt(t *testing.T) {
	k := NewKernel(10)
	k.EnableBoundWeave(0)
	started := make(chan struct{})
	k.Spawn(func(p *Proc) {
		close(started)
		for {
			p.Advance(1)
		}
	})
	go func() {
		<-started
		k.Interrupt(errors.New("external stop"))
	}()
	err := k.Run()
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("err = %v, want ErrInterrupted", err)
	}
	if !strings.Contains(err.Error(), "external stop") {
		t.Fatalf("err = %v, want wrapped cause", err)
	}
}

// TestBoundWeaveYieldIsNoop: Yield must not park a process in parallel mode
// (the window edge is the only scheduling point), so a yield-heavy process
// still finishes its window in one release.
func TestBoundWeaveYieldIsNoop(t *testing.T) {
	k := NewKernel(100)
	k.EnableBoundWeave(0)
	p := k.Spawn(func(p *Proc) {
		for j := 0; j < 50; j++ {
			p.Yield()
			p.Advance(2)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Now() != 100 {
		t.Fatalf("clock = %d, want 100", p.Now())
	}
}

// TestEnableBoundWeaveDefaultsToQuantum: window 0 selects the quantum.
func TestEnableBoundWeaveDefaultsToQuantum(t *testing.T) {
	k := NewKernel(640)
	k.EnableBoundWeave(0)
	if k.Window() != 640 {
		t.Fatalf("window = %d, want quantum 640", k.Window())
	}
	if !k.BoundWeave() {
		t.Fatal("BoundWeave() = false after enable")
	}
}

// TestEnableBoundWeaveAfterRunPanics guards the call-before-Run contract.
func TestEnableBoundWeaveAfterRunPanics(t *testing.T) {
	k := NewKernel(10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("EnableBoundWeave after Run did not panic")
		}
	}()
	k.EnableBoundWeave(5)
}

// TestBoundWeaveFaultHook: the fault hook keeps firing at window boundaries.
func TestBoundWeaveFaultHook(t *testing.T) {
	k := NewKernel(10)
	k.EnableBoundWeave(0)
	k.Spawn(func(p *Proc) {
		for j := 0; j < 100; j++ {
			p.Advance(5)
		}
	})
	calls := 0
	k.FaultHook = func() { calls++ }
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("FaultHook never called in bound–weave mode")
	}
}
