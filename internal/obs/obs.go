// Package obs is the simulation-wide observability layer: where perfctr
// models *what* the paper's hardware counters count, obs models *when* —
// the PARASOL-style interval sampling the authors used to watch counters
// evolve over a query run, plus a structured protocol-event trace and
// per-query-operator attribution.
//
// Three pillars:
//
//   - an interval sampler that snapshots each CPU's perfctr.Counters every
//     SampleInterval simulated cycles (driven from the sim kernel's
//     scheduling points), yielding per-window time series of CPI, miss rate
//     and memory latency;
//   - a structured event trace with simulated-cycle timestamps for
//     protocol-level events (directory requests, invalidations, 3-hop dirty
//     misses, lock acquisitions, select() back-offs, context switches),
//     exportable as Chrome trace-event JSON so a run opens directly in
//     Perfetto (one track per simulated CPU, spans for memory requests);
//   - span-based attribution: the DB executor opens spans per query-plan
//     operator (scan, index scan, aggregate, sort), so counters and events
//     are attributed to operators — the paper's "which DBMS data region /
//     which phase" question at operator granularity.
//
// A nil *Observer is valid everywhere and every hook is a no-op on it, so
// observation is strictly zero-cost when disabled. An Observer observes one
// run on one machine; like the machine model itself it relies on the sim
// kernel's serialization and is not safe for use from concurrently running
// simulations.
package obs

import "dssmem/internal/perfctr"

// DefaultMaxEvents bounds the in-memory event buffer (~1M events).
const DefaultMaxEvents = 1 << 20

// Config selects which pillars are active.
type Config struct {
	// SampleInterval is the minimum width of one counter-sampling window in
	// simulated cycles; 0 disables sampling. Windows are closed at the first
	// scheduling point past the interval, so their actual width is
	// interval-or-more (sampling never interrupts a running quantum).
	SampleInterval uint64
	// Events enables the structured event trace.
	Events bool
	// MaxEvents caps the buffered event count (0 selects DefaultMaxEvents);
	// events past the cap are counted in Dropped, never silently lost.
	MaxEvents int
	// ByOperator enables per-operator span attribution.
	ByOperator bool
}

// Sample is one closed sampling window on one CPU. C holds the counter
// deltas over the window, so every perfctr derived metric (CPI,
// AvgMemLatency, ...) applies to the window directly.
type Sample struct {
	CPU        int
	Start, End uint64 // simulated cycles
	C          perfctr.Counters
}

// Event is one timestamped trace event. TS and Dur are simulated cycles of
// the emitting CPU's clock; events emitted by one CPU are therefore
// monotonic within that CPU's track.
type Event struct {
	Name string
	Cat  string // "mem", "coh", "lock", "os", "op"
	Ph   byte   // 'X' (span) or 'i' (instant)
	TS   uint64
	Dur  uint64 // spans only
	CPU  int
	Line uint64 // protocol line or lock address (mem/coh/lock events)
	// Class carries the miss classification or other one-word detail
	// ("cold", "capacity", "coherence", "contended", "voluntary", ...).
	Class string
	// Dirty3Hop marks memory requests served by a dirty remote intervention.
	Dirty3Hop bool
	// Target is the victim CPU of an invalidation (-1 when not applicable).
	Target int
}

// OpStats aggregates every execution of one named operator.
type OpStats struct {
	Name  string
	Count uint64
	// WallCycles is inclusive span time (nested operators count toward
	// their ancestors too).
	WallCycles uint64
	// Self holds exclusive (self-time) counter deltas: work done while a
	// nested operator was open is attributed to the innermost span only.
	Self perfctr.Counters
}

type sampState struct {
	start uint64
	last  perfctr.Counters
}

type opFrame struct {
	name  string
	start uint64
	acc   perfctr.Counters
}

type opState struct {
	stack []opFrame
	mark  perfctr.Counters
}

// Observer collects samples, events and operator attributions for one run.
type Observer struct {
	cfg      Config
	cpus     int
	clockMHz int
	// requestID joins this run's trace to the API request that caused it
	// (the daemon's X-Request-ID). It is run identity, not per-binding state,
	// so Bind leaves it alone.
	requestID string

	samp    []sampState
	samples []Sample

	events  []Event
	dropped uint64

	ops     []opState
	opStats map[string]*OpStats
	opOrder []string
}

// New creates an Observer; Bind must be called (the workload layer does)
// before any hook fires.
func New(cfg Config) *Observer {
	if cfg.MaxEvents <= 0 {
		cfg.MaxEvents = DefaultMaxEvents
	}
	return &Observer{cfg: cfg, opStats: make(map[string]*OpStats)}
}

// Bind sizes the per-CPU state for a machine. clockMHz scales exported
// timestamps to microseconds (0 exports raw cycles). Bind resets any state
// from a previous binding, so one Observer observes one run.
func (o *Observer) Bind(cpus, clockMHz int) {
	if o == nil {
		return
	}
	o.cpus = cpus
	o.clockMHz = clockMHz
	o.samp = make([]sampState, cpus)
	o.ops = make([]opState, cpus)
	o.samples = nil
	o.events = nil
	o.dropped = 0
	o.opStats = make(map[string]*OpStats)
	o.opOrder = nil
}

// SetRequestID tags the observer with the API request ID driving this run,
// so the exported trace is joinable to the daemon's logs and metrics.
func (o *Observer) SetRequestID(id string) {
	if o == nil {
		return
	}
	o.requestID = id
}

// RequestID returns the tag set by SetRequestID ("" when untagged).
func (o *Observer) RequestID() string {
	if o == nil {
		return ""
	}
	return o.requestID
}

// Config returns the active configuration.
func (o *Observer) Config() Config {
	if o == nil {
		return Config{}
	}
	return o.cfg
}

// ---- interval sampler ----

// Tick is called at scheduling points (quantum yields) with CPU cpu's
// current clock and cumulative counter file; it closes the open window once
// the interval has elapsed.
func (o *Observer) Tick(cpu int, now uint64, c *perfctr.Counters) {
	if o == nil || o.cfg.SampleInterval == 0 || cpu >= len(o.samp) {
		return
	}
	s := &o.samp[cpu]
	if now < s.start+o.cfg.SampleInterval {
		return
	}
	o.samples = append(o.samples, Sample{CPU: cpu, Start: s.start, End: now, C: c.Sub(&s.last)})
	s.start = now
	s.last = *c
}

// flushSample closes the final partial window at process exit.
func (o *Observer) flushSample(cpu int, now uint64, c *perfctr.Counters) {
	if o == nil || o.cfg.SampleInterval == 0 || cpu >= len(o.samp) {
		return
	}
	s := &o.samp[cpu]
	if now <= s.start {
		return
	}
	o.samples = append(o.samples, Sample{CPU: cpu, Start: s.start, End: now, C: c.Sub(&s.last)})
	s.start = now
	s.last = *c
}

// Samples returns the closed windows in emission order.
func (o *Observer) Samples() []Sample {
	if o == nil {
		return nil
	}
	return o.samples
}

// SampleSeries extracts one CPU's windows as a float series via metric —
// ready for viz.Sparkline.
func (o *Observer) SampleSeries(cpu int, metric func(*Sample) float64) []float64 {
	if o == nil {
		return nil
	}
	var out []float64
	for i := range o.samples {
		if o.samples[i].CPU == cpu {
			out = append(out, metric(&o.samples[i]))
		}
	}
	return out
}

// ---- event trace ----

func (o *Observer) emit(e Event) {
	if len(o.events) >= o.cfg.MaxEvents {
		o.dropped++
		return
	}
	o.events = append(o.events, e)
}

// MemRequest records one directory transaction as a span on the requesting
// CPU's track. kind is "read", "write" or "upgrade"; now is the request's
// issue time and latency its total memory-system latency.
func (o *Observer) MemRequest(cpu int, kind string, line, now, latency uint64, class string, dirty3hop bool) {
	if o == nil || !o.cfg.Events {
		return
	}
	o.emit(Event{Name: kind, Cat: "mem", Ph: 'X', TS: now, Dur: latency,
		CPU: cpu, Line: line, Class: class, Dirty3Hop: dirty3hop, Target: -1})
}

// Invalidation records a coherence invalidation caused by CPU cpu killing
// target's copy of line. It is attributed to the requester's track (whose
// clock it carries); the victim is in Target.
func (o *Observer) Invalidation(cpu, target int, line, now uint64) {
	if o == nil || !o.cfg.Events {
		return
	}
	o.emit(Event{Name: "invalidate", Cat: "coh", Ph: 'i', TS: now,
		CPU: cpu, Line: line, Target: target})
}

// LockAcquire records a successful spinlock acquisition at the lock word's
// address.
func (o *Observer) LockAcquire(cpu int, addr, now uint64, contended bool) {
	if o == nil || !o.cfg.Events {
		return
	}
	class := ""
	if contended {
		class = "contended"
	}
	o.emit(Event{Name: "lock-acquire", Cat: "lock", Ph: 'i', TS: now,
		CPU: cpu, Line: addr, Class: class, Target: -1})
}

// Backoff records a select() back-off sleep as a span covering the off-CPU
// time.
func (o *Observer) Backoff(cpu int, now, sleep uint64) {
	if o == nil || !o.cfg.Events {
		return
	}
	o.emit(Event{Name: "backoff", Cat: "lock", Ph: 'X', TS: now, Dur: sleep,
		CPU: cpu, Target: -1})
}

// CtxSwitch records an OS context switch.
func (o *Observer) CtxSwitch(cpu int, now uint64, voluntary bool) {
	if o == nil || !o.cfg.Events {
		return
	}
	class := "involuntary"
	if voluntary {
		class = "voluntary"
	}
	o.emit(Event{Name: "ctx-switch", Cat: "os", Ph: 'i', TS: now,
		CPU: cpu, Class: class, Target: -1})
}

// Events returns the buffered events in emission order.
func (o *Observer) Events() []Event {
	if o == nil {
		return nil
	}
	return o.events
}

// Dropped reports events discarded past MaxEvents.
func (o *Observer) Dropped() uint64 {
	if o == nil {
		return 0
	}
	return o.dropped
}

// ---- operator spans ----

// Spanner is the optional process capability operator attribution needs;
// *simos.Process implements it. Executor code calls Span rather than
// asserting the interface itself.
type Spanner interface {
	BeginOp(name string)
	EndOp()
}

var noopEnd = func() {}

// Span opens an operator span on p if p supports attribution and returns
// the closer; otherwise it returns a no-op. Intended usage:
//
//	defer obs.Span(ctx.S.P, "scan:lineitem")()
func Span(p any, name string) func() {
	if s, ok := p.(Spanner); ok {
		s.BeginOp(name)
		return s.EndOp
	}
	return noopEnd
}

// settle charges the counter delta since the CPU's last transition to the
// innermost open span, establishing exclusive self-time attribution.
func (o *Observer) settle(s *opState, c *perfctr.Counters) {
	if n := len(s.stack); n > 0 {
		d := c.Sub(&s.mark)
		s.stack[n-1].acc.Add(&d)
	}
	s.mark = *c
}

// BeginOp opens span name on CPU cpu at time now; c is the CPU's cumulative
// counter file.
func (o *Observer) BeginOp(cpu int, name string, now uint64, c *perfctr.Counters) {
	if o == nil || !o.cfg.ByOperator || cpu >= len(o.ops) {
		return
	}
	s := &o.ops[cpu]
	o.settle(s, c)
	s.stack = append(s.stack, opFrame{name: name, start: now})
}

// EndOp closes the innermost span on CPU cpu.
func (o *Observer) EndOp(cpu int, now uint64, c *perfctr.Counters) {
	if o == nil || !o.cfg.ByOperator || cpu >= len(o.ops) {
		return
	}
	s := &o.ops[cpu]
	n := len(s.stack)
	if n == 0 {
		return
	}
	o.settle(s, c)
	f := s.stack[n-1]
	s.stack = s.stack[:n-1]
	o.recordOp(cpu, f, now)
}

func (o *Observer) recordOp(cpu int, f opFrame, now uint64) {
	st := o.opStats[f.name]
	if st == nil {
		st = &OpStats{Name: f.name}
		o.opStats[f.name] = st
		o.opOrder = append(o.opOrder, f.name)
	}
	st.Count++
	st.WallCycles += now - f.start
	st.Self.Add(&f.acc)
	if o.cfg.Events {
		o.emit(Event{Name: f.name, Cat: "op", Ph: 'X', TS: f.start, Dur: now - f.start,
			CPU: cpu, Target: -1})
	}
}

// ProcExit flushes a CPU's observer state when its process completes:
// the final sampling window closes and any spans still open are recorded.
func (o *Observer) ProcExit(cpu int, now uint64, c *perfctr.Counters) {
	if o == nil {
		return
	}
	o.flushSample(cpu, now, c)
	if o.cfg.ByOperator && cpu < len(o.ops) {
		s := &o.ops[cpu]
		for len(s.stack) > 0 {
			o.EndOp(cpu, now, c)
		}
	}
}

// Operators returns per-operator statistics in first-seen order.
func (o *Observer) Operators() []OpStats {
	if o == nil {
		return nil
	}
	out := make([]OpStats, 0, len(o.opOrder))
	for _, name := range o.opOrder {
		out = append(out, *o.opStats[name])
	}
	return out
}
