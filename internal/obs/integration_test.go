// Acceptance tests for the observability layer against real workload runs.
// External test package: workload imports obs (via Options.Obs), so the
// in-package form would be an import cycle.
package obs_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/obs"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

var testData = tpch.Generate(0.002, 7)

func runQ6(t *testing.T, ob *obs.Observer, procs int) *workload.Stats {
	t.Helper()
	st, err := workload.Run(workload.Options{
		Spec: machine.OriginSpec(32, 256), Data: testData, Query: tpch.Q6,
		Processes: procs, OSTimeScale: 256, Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// traceEvent is the subset of the Chrome trace-event schema the checks need.
type traceEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	Args map[string]string `json:"args"`
}

// TestChromeTraceWellFormed runs Q6 with the event trace on, exports it,
// parses it back as JSON and checks the events are well-formed with
// monotonic timestamps within every (pid, tid) track.
func TestChromeTraceWellFormed(t *testing.T) {
	ob := obs.New(obs.Config{Events: true, ByOperator: true})
	runQ6(t, ob, 2)
	if len(ob.Events()) == 0 {
		t.Fatal("no events recorded")
	}

	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents")
	}

	type track struct{ pid, tid int }
	lastTS := map[track]float64{}
	cats := map[string]int{}
	for i, e := range doc.TraceEvents {
		if e.Name == "" {
			t.Fatalf("event %d has no name", i)
		}
		switch e.Ph {
		case "M": // metadata: process/thread names
			if e.Args["name"] == "" {
				t.Fatalf("metadata event %d has no name arg", i)
			}
			continue
		case "X":
			if e.Dur < 0 {
				t.Fatalf("span %d (%s) has negative duration", i, e.Name)
			}
		case "i":
		default:
			t.Fatalf("event %d has unexpected phase %q", i, e.Ph)
		}
		if e.TS < 0 {
			t.Fatalf("event %d (%s) has negative timestamp", i, e.Name)
		}
		k := track{e.PID, e.TID}
		if e.TS < lastTS[k] {
			t.Fatalf("event %d (%s): ts %.3f goes backwards on track %v (last %.3f)",
				i, e.Name, e.TS, k, lastTS[k])
		}
		lastTS[k] = e.TS
		cats[e.Cat]++
	}
	// A 2-process Q6 run must produce memory requests, OS switches and
	// operator spans; lock and coherence traffic depend on contention.
	for _, cat := range []string{"mem", "os", "op"} {
		if cats[cat] == 0 {
			t.Errorf("no %q events in the trace (got %v)", cat, cats)
		}
	}
	if len(lastTS) < 2 {
		t.Errorf("expected events on at least 2 tracks, got %d", len(lastTS))
	}
}

// TestObservationIsPassive runs the same configuration with observability
// off and fully on: the per-CPU hardware counters and the directory stats
// must be byte-identical — observation must never perturb the simulation.
func TestObservationIsPassive(t *testing.T) {
	off := runQ6(t, nil, 2)
	ob := obs.New(obs.Config{SampleInterval: 500_000, Events: true, ByOperator: true})
	on := runQ6(t, ob, 2)

	if len(off.Procs) != len(on.Procs) {
		t.Fatalf("process counts differ: %d vs %d", len(off.Procs), len(on.Procs))
	}
	for i := range off.Procs {
		if off.Procs[i].Counters != on.Procs[i].Counters {
			t.Errorf("CPU %d counters differ with observation on:\noff: %+v\non:  %+v",
				i, off.Procs[i].Counters, on.Procs[i].Counters)
		}
		if off.Procs[i].WallCycles != on.Procs[i].WallCycles {
			t.Errorf("CPU %d wall cycles differ: %d vs %d",
				i, off.Procs[i].WallCycles, on.Procs[i].WallCycles)
		}
	}
	if off.Dir != on.Dir {
		t.Errorf("directory stats differ:\noff: %+v\non:  %+v", off.Dir, on.Dir)
	}

	// And the observer actually collected all three pillars.
	if len(ob.Samples()) == 0 {
		t.Error("no samples collected")
	}
	if len(ob.Events()) == 0 {
		t.Error("no events collected")
	}
	if len(ob.Operators()) == 0 {
		t.Error("no operator stats collected")
	}
}

// TestSamplesAccounting checks the sampler's bookkeeping on a real run: the
// windows of one CPU tile [0, end) without overlap, are at least the
// interval wide (except the final flush), and their counter deltas sum to
// the CPU's cumulative counter file.
func TestSamplesAccounting(t *testing.T) {
	const interval = 400_000
	ob := obs.New(obs.Config{SampleInterval: interval})
	st := runQ6(t, ob, 2)

	perCPU := map[int][]obs.Sample{}
	for _, s := range ob.Samples() {
		perCPU[s.CPU] = append(perCPU[s.CPU], s)
	}
	if len(perCPU) != 2 {
		t.Fatalf("samples on %d CPUs, want 2", len(perCPU))
	}
	for cpu, ss := range perCPU {
		var prevEnd uint64
		sum := ss[0].C
		for i, s := range ss {
			if s.Start != prevEnd {
				t.Fatalf("cpu%d window %d starts at %d, want %d (windows must tile)",
					cpu, i, s.Start, prevEnd)
			}
			if i > 0 {
				sum.Add(&ss[i].C)
			}
			if width := s.End - s.Start; width < interval && i != len(ss)-1 {
				t.Errorf("cpu%d window %d only %d cycles wide (interval %d)",
					cpu, i, width, interval)
			}
			prevEnd = s.End
		}
		if sum != st.Procs[cpu].Counters {
			t.Errorf("cpu%d window deltas do not sum to the counter file:\nsum:  %+v\nfile: %+v",
				cpu, sum, st.Procs[cpu].Counters)
		}
	}
}

// TestOperatorAttribution checks the span accounting on a real run: Q6 is a
// single sequential scan, so scan self-time must dominate, and the root
// query span's inclusive wall time must cover its children.
func TestOperatorAttribution(t *testing.T) {
	ob := obs.New(obs.Config{ByOperator: true})
	runQ6(t, ob, 1)

	ops := map[string]obs.OpStats{}
	for _, op := range ob.Operators() {
		ops[op.Name] = op
	}
	scan, ok := ops["scan:lineitem"]
	if !ok {
		t.Fatalf("no scan:lineitem span, got %v", keys(ops))
	}
	root, ok := ops["query:Q6"]
	if !ok {
		t.Fatalf("no query:Q6 root span, got %v", keys(ops))
	}
	if scan.Count != 1 || root.Count != 1 {
		t.Errorf("span counts: scan %d, root %d, want 1 and 1", scan.Count, root.Count)
	}
	if root.WallCycles < scan.WallCycles {
		t.Errorf("root wall %d < scan wall %d (inclusive time must cover children)",
			root.WallCycles, scan.WallCycles)
	}
	if scan.Self.Instructions < 10*root.Self.Instructions {
		t.Errorf("scan self-instructions (%d) should dominate the root's (%d): self-time must be exclusive",
			scan.Self.Instructions, root.Self.Instructions)
	}
}

func keys(m map[string]obs.OpStats) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestTraceCarriesRequestID tags the observer with a request ID through the
// context (the daemon's path) and checks it lands in the exported trace's
// metadata and on operator spans — the join key between a Perfetto file and
// the daemon's logs.
func TestTraceCarriesRequestID(t *testing.T) {
	ob := obs.New(obs.Config{Events: true, ByOperator: true})
	q := telemetry.NewRequest("trace-req-7", "/v1/measure")
	ctx := telemetry.NewContext(context.Background(), q)
	_, err := workload.RunContext(ctx, workload.Options{
		Spec: machine.OriginSpec(32, 256), Data: testData, Query: tpch.Q6,
		Processes: 1, OSTimeScale: 256, Obs: ob,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ob.RequestID(); got != "trace-req-7" {
		t.Fatalf("observer request ID = %q, want trace-req-7 (set via context through Bind)", got)
	}

	var buf bytes.Buffer
	if err := ob.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []traceEvent      `json:"traceEvents"`
		Metadata    map[string]string `json:"metadata"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Metadata["request_id"] != "trace-req-7" {
		t.Fatalf("trace metadata request_id = %q", doc.Metadata["request_id"])
	}
	tagged := 0
	for _, e := range doc.TraceEvents {
		if e.Cat == "op" && e.Args["req"] == "trace-req-7" {
			tagged++
		}
	}
	if tagged == 0 {
		t.Fatal("no operator span carries the request ID")
	}
}
