package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"dssmem/internal/perfctr"
)

// chromeEvent is one entry of the Chrome trace-event format ("JSON Array
// Format" / Perfetto legacy ingestion). Timestamps are microseconds.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat,omitempty"`
	Ph   string            `json:"ph"`
	TS   float64           `json:"ts"`
	Dur  float64           `json:"dur,omitempty"`
	PID  int               `json:"pid"`
	TID  int               `json:"tid"`
	S    string            `json:"s,omitempty"` // instant scope
	Args map[string]string `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	Metadata        map[string]string `json:"metadata,omitempty"`
}

// toMicros converts simulated cycles to trace microseconds. Without a known
// clock rate cycles are exported 1:1 (the viewer's unit is then "cycles").
func (o *Observer) toMicros(cycles uint64) float64 {
	if o.clockMHz > 0 {
		return float64(cycles) / float64(o.clockMHz)
	}
	return float64(cycles)
}

// WriteTrace exports the event buffer as Chrome trace-event JSON: one track
// (tid) per simulated CPU under one process, spans for memory requests,
// back-offs and operators, instants for invalidations, lock acquisitions and
// context switches. Events are sorted by timestamp (stable), so timestamps
// are monotonic within every track. The file opens directly in Perfetto or
// chrome://tracing.
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: no observer")
	}
	evs := make([]chromeEvent, 0, len(o.events)+o.cpus+1)
	evs = append(evs, chromeEvent{
		Name: "process_name", Ph: "M", PID: 0,
		Args: map[string]string{"name": "dssmem"},
	})
	for cpu := 0; cpu < o.cpus; cpu++ {
		evs = append(evs, chromeEvent{
			Name: "thread_name", Ph: "M", PID: 0, TID: cpu,
			Args: map[string]string{"name": fmt.Sprintf("cpu%d", cpu)},
		})
	}
	meta := len(evs)

	body := make([]chromeEvent, 0, len(o.events))
	for i := range o.events {
		e := &o.events[i]
		ce := chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: string(e.Ph),
			TS: o.toMicros(e.TS), PID: 0, TID: e.CPU,
		}
		if e.Ph == 'X' {
			ce.Dur = o.toMicros(e.Dur)
		}
		if e.Ph == 'i' {
			ce.S = "t" // thread-scoped instant
		}
		args := make(map[string]string, 4)
		switch e.Cat {
		case "mem", "coh":
			args["line"] = fmt.Sprintf("%#x", e.Line)
		case "lock":
			if e.Name == "lock-acquire" {
				args["addr"] = fmt.Sprintf("%#x", e.Line)
			}
		}
		if e.Class != "" {
			args["class"] = e.Class
		}
		if e.Dirty3Hop {
			args["dirty3hop"] = "true"
		}
		if e.Target >= 0 {
			args["target"] = fmt.Sprintf("cpu%d", e.Target)
		}
		if o.requestID != "" && e.Cat == "op" {
			// Operator spans carry the request ID so a span selected in the
			// viewer links back to the daemon's logs without leaving Perfetto.
			args["req"] = o.requestID
		}
		if len(args) > 0 {
			ce.Args = args
		}
		body = append(body, ce)
	}
	// Each CPU emits its own events in clock order, but tracks interleave in
	// the buffer; a stable sort by timestamp yields a globally ordered file
	// while preserving per-track emission order for equal timestamps.
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	evs = append(evs[:meta], body...)

	md := map[string]string{"dropped_events": fmt.Sprint(o.dropped)}
	if o.requestID != "" {
		md["request_id"] = o.requestID
	}
	doc := chromeTrace{
		TraceEvents:     evs,
		DisplayTimeUnit: "ms",
		Metadata:        md,
	}
	enc := json.NewEncoder(w)
	return enc.Encode(&doc)
}

// sampleCSVHeader lists the per-window columns of WriteSamplesCSV.
const sampleCSVHeader = "cpu,start,end,cycles,instructions,cpi,loads,stores," +
	"l1_misses,l2_misses,cold,capacity,coherence,mem_requests,avg_mem_latency," +
	"stall_cycles,dirty3hop,vol_cs,invol_cs,lock_acquires,backoffs\n"

// WriteSamplesCSV exports the sampled windows as CSV, one row per window.
func (o *Observer) WriteSamplesCSV(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: no observer")
	}
	if _, err := io.WriteString(w, sampleCSVHeader); err != nil {
		return err
	}
	for i := range o.samples {
		s := &o.samples[i]
		c := &s.C
		if _, err := fmt.Fprintf(w, "%d,%d,%d,%d,%d,%.4f,%d,%d,%d,%d,%d,%d,%d,%d,%.2f,%d,%d,%d,%d,%d,%d\n",
			s.CPU, s.Start, s.End, c.Cycles, c.Instructions, c.CPI(),
			c.Loads, c.Stores, c.L1DMisses, c.L2DMisses,
			c.ColdMisses, c.CapacityMisses, c.CoherenceMisses,
			c.MemRequests, c.AvgMemLatency(), c.StallCycles, c.Dirty3HopMisses,
			c.VolCtxSwitches, c.InvolCtxSwitches, c.LockAcquires, c.LockBackoffs); err != nil {
			return err
		}
	}
	return nil
}

// sampleJSON is the exported form of one window.
type sampleJSON struct {
	CPU           int              `json:"cpu"`
	Start         uint64           `json:"start"`
	End           uint64           `json:"end"`
	CPI           float64          `json:"cpi"`
	L1MissRate    float64          `json:"l1_miss_rate"`
	AvgMemLatency float64          `json:"avg_mem_latency"`
	Counters      perfctr.Counters `json:"counters"`
}

// WriteSamplesJSON exports the sampled windows as a JSON array with the
// derived per-window metrics inlined.
func (o *Observer) WriteSamplesJSON(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: no observer")
	}
	out := make([]sampleJSON, len(o.samples))
	for i := range o.samples {
		s := o.samples[i]
		out[i] = sampleJSON{
			CPU: s.CPU, Start: s.Start, End: s.End,
			CPI:           s.C.CPI(),
			L1MissRate:    perfctr.MissRate(s.C.L1DMisses, s.C.Loads+s.C.Stores),
			AvgMemLatency: s.C.AvgMemLatency(),
			Counters:      s.C,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// WriteOpsTable prints the per-operator attribution as an aligned table:
// execution count, inclusive wall cycles, and the self-time shares of
// instructions, misses and memory latency.
func (o *Observer) WriteOpsTable(w io.Writer) error {
	ops := o.Operators()
	if len(ops) == 0 {
		_, err := fmt.Fprintln(w, "obs: no operator spans recorded")
		return err
	}
	nameW := len("operator")
	for _, op := range ops {
		if len(op.Name) > nameW {
			nameW = len(op.Name)
		}
	}
	if _, err := fmt.Fprintf(w, "%-*s %10s %14s %14s %12s %12s %8s %12s\n",
		nameW, "operator", "count", "wall cycles", "instrs", "l1 misses", "mem reqs", "cpi", "avg mem lat"); err != nil {
		return err
	}
	for _, op := range ops {
		c := &op.Self
		if _, err := fmt.Fprintf(w, "%-*s %10d %14d %14d %12d %12d %8.3f %12.1f\n",
			nameW, op.Name, op.Count, op.WallCycles, c.Instructions,
			c.L1DMisses, c.MemRequests, c.CPI(), c.AvgMemLatency()); err != nil {
			return err
		}
	}
	return nil
}
