package obs

import (
	"fmt"
	"io"

	"dssmem/internal/perfctr"
	"dssmem/internal/viz"
)

// WriteSummary renders the observer's collected data for a terminal: the
// per-CPU sampled time series as sparklines (CPI, L1 miss rate, average
// memory latency per window), the per-operator attribution table, and the
// event-buffer accounting. Sections whose pillar was disabled are omitted.
func (o *Observer) WriteSummary(w io.Writer) error {
	if o == nil {
		return fmt.Errorf("obs: no observer")
	}
	if o.cfg.SampleInterval > 0 && len(o.samples) > 0 {
		metrics := []struct {
			name string
			fn   func(*Sample) float64
		}{
			{"CPI", func(s *Sample) float64 { return s.C.CPI() }},
			{"L1 miss rate", func(s *Sample) float64 {
				return perfctr.MissRate(s.C.L1DMisses, s.C.Loads+s.C.Stores)
			}},
			{"mem latency", func(s *Sample) float64 { return s.C.AvgMemLatency() }},
		}
		for _, m := range metrics {
			var labels []string
			var series [][]float64
			for cpu := 0; cpu < o.cpus; cpu++ {
				if s := o.SampleSeries(cpu, m.fn); len(s) > 0 {
					labels = append(labels, fmt.Sprintf("cpu%d", cpu))
					series = append(series, s)
				}
			}
			if len(series) == 0 {
				continue
			}
			title := fmt.Sprintf("%s per %d-cycle window", m.name, o.cfg.SampleInterval)
			if err := viz.Lines(w, title, labels, series); err != nil {
				return err
			}
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
	}
	if o.cfg.ByOperator {
		if err := o.WriteOpsTable(w); err != nil {
			return err
		}
	}
	if o.cfg.Events {
		if _, err := fmt.Fprintf(w, "events: %d buffered, %d dropped\n",
			len(o.events), o.dropped); err != nil {
			return err
		}
	}
	return nil
}
