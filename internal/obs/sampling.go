package obs

import (
	"dssmem/internal/perfctr"
	"dssmem/internal/stats"
)

// SamplingController implements SMARTS-style interval sampling over the
// kernel's scheduling quanta. Simulated time is divided per CPU into periods
// of P quanta (P = the configured SampleQuanta):
//
//   - quantum 0 of each period runs in detailed mode and is MEASURED — its
//     counter deltas form one sampling window;
//   - the final quantum runs in detailed mode but unmeasured — functional
//     warming, so the next measured window starts with caches and directory
//     state representative of continuous execution;
//   - the quanta in between FAST-FORWARD: every access still updates the
//     functional counters (instructions, loads, stores — and the DBMS's own
//     logical state, which executes exactly), but skips the cache/directory
//     walk, charging instead an online estimate of cycles per access learned
//     from the detailed stretches.
//
// The measured window leads its period so short runs (fewer quanta than one
// period) degrade to exact simulation. P=2 is fully detailed (measured +
// warming, nothing skipped); P>=3 skips P-2 of every P quanta.
//
// After the run, Extrapolate scales the event counters a fast-forwarded
// access never generated (misses, upgrades, memory requests/latency, stalls)
// by the measured windows' per-access rates, producing an estimated counter
// file that flows through the normal Stats -> Measurement pipeline; Estimate
// reports per-window dispersion as CI95 half-widths (internal/stats).
type SamplingController struct {
	period  uint64
	quantum uint64
	cpus    []samplingCPU
}

type samplingCPU struct {
	measuring bool
	winStart  perfctr.Counters
	windows   []perfctr.Counters // measured-window counter deltas

	// estFP is an EMA of detailed cycles per access in 48.16 fixed point —
	// the charge applied to each fast-forwarded access.
	estFP uint64

	ffAccesses uint64
	ffCycles   uint64
}

// emaShift sets the EMA horizon (2^6 = 64 accesses) — long enough to smooth
// per-access noise, short enough to track phase changes within a window.
const emaShift = 6

// NewSamplingController builds a controller for cpus CPUs with the given
// scheduling quantum (cycles) and sampling period (quanta per period; values
// below 2 are clamped to 2, which is fully detailed).
func NewSamplingController(cpus int, quantum uint64, period int) *SamplingController {
	if period < 2 {
		period = 2
	}
	if quantum == 0 {
		quantum = 1
	}
	return &SamplingController{
		period:  uint64(period),
		quantum: quantum,
		cpus:    make([]samplingCPU, cpus),
	}
}

// Period returns the sampling period in quanta.
func (c *SamplingController) Period() int { return int(c.period) }

// Access decides the fate of one memory access on cpu at simulated time now.
// It returns (cycles, true) when the access is fast-forwarded: the functional
// counters in ct have been bumped and cycles is the estimated charge — the
// caller must skip the machine model and advance its clock by cycles. It
// returns (0, false) when the access must run in detailed mode; the caller
// then reports the detailed cost via Detailed.
func (c *SamplingController) Access(cpu int, ct *perfctr.Counters, write bool, now uint64) (uint64, bool) {
	s := &c.cpus[cpu]
	idx := (now / c.quantum) % c.period
	measured := idx == 0
	if measured != s.measuring {
		if measured {
			s.winStart = *ct
		} else {
			w := ct.Sub(&s.winStart)
			if w.Instructions > 0 {
				s.windows = append(s.windows, w)
			}
		}
		s.measuring = measured
	}
	if measured || idx == c.period-1 {
		return 0, false
	}
	ct.Instructions++
	if write {
		ct.Stores++
	} else {
		ct.Loads++
	}
	cyc := s.estFP >> 16
	if cyc == 0 {
		cyc = 1 // first period not yet warmed; never charge zero time
	}
	ct.Cycles += cyc
	s.ffAccesses++
	s.ffCycles += cyc
	return cyc, true
}

// Detailed feeds the cost of one detailed-mode access into the per-CPU
// cycles-per-access estimate the fast-forward path charges.
func (c *SamplingController) Detailed(cpu int, cycles uint64) {
	s := &c.cpus[cpu]
	s.estFP += (cycles << 16 >> emaShift) - (s.estFP >> emaShift)
}

// closeWindow finalizes an open measured window at end of run.
func (s *samplingCPU) closeWindow(ct *perfctr.Counters) {
	if !s.measuring {
		return
	}
	s.measuring = false
	w := ct.Sub(&s.winStart)
	if w.Instructions > 0 {
		s.windows = append(s.windows, w)
	}
}

// Extrapolate scales the event counters fast-forwarded accesses skipped by
// the measured windows' mean per-access rates, in place. Cycles,
// instructions, loads and stores are NOT touched: they were accounted online
// (exactly for the functional ones, by estimate for cycles). Call once per
// CPU after the run completes.
func (c *SamplingController) Extrapolate(cpu int, ct *perfctr.Counters) {
	s := &c.cpus[cpu]
	s.closeWindow(ct)
	if s.ffAccesses == 0 || len(s.windows) == 0 {
		return
	}
	var tot perfctr.Counters
	for i := range s.windows {
		tot.Add(&s.windows[i])
	}
	det := tot.Loads + tot.Stores
	if det == 0 {
		return
	}
	// All inputs are integers and float64 arithmetic is deterministic, so
	// sampled runs remain cacheable by content digest.
	ratio := float64(s.ffAccesses) / float64(det)
	scale := func(v uint64) uint64 { return uint64(float64(v) * ratio) }
	ct.L1DMisses += scale(tot.L1DMisses)
	ct.L2DMisses += scale(tot.L2DMisses)
	ct.Upgrades += scale(tot.Upgrades)
	ct.ColdMisses += scale(tot.ColdMisses)
	ct.CapacityMisses += scale(tot.CapacityMisses)
	ct.CoherenceMisses += scale(tot.CoherenceMisses)
	ct.MemRequests += scale(tot.MemRequests)
	ct.MemLatencyCycles += scale(tot.MemLatencyCycles)
	ct.StallCycles += scale(tot.StallCycles)
	ct.Dirty3HopMisses += scale(tot.Dirty3HopMisses)
}

// SampleEstimate summarizes one CPU's sampling quality: how much was
// simulated in detail, how much was fast-forwarded, and the dispersion of the
// key per-window rates as 95% confidence half-widths.
type SampleEstimate struct {
	Windows       int     `json:"windows"`
	DetailedInstr uint64  `json:"detailed_instr"`
	FFAccesses    uint64  `json:"ff_accesses"`
	CPIMean       float64 `json:"cpi_mean"`
	CPICI95       float64 `json:"cpi_ci95"`
	L1PerMMean    float64 `json:"l1_per_m_mean"`
	L1PerMCI95    float64 `json:"l1_per_m_ci95"`
	MemLatMean    float64 `json:"memlat_mean"`
	MemLatCI95    float64 `json:"memlat_ci95"`
}

// Estimate reports cpu's sampling summary. Call after Extrapolate (windows
// are final then). Zero value when the CPU never measured a window.
func (c *SamplingController) Estimate(cpu int) SampleEstimate {
	s := &c.cpus[cpu]
	e := SampleEstimate{Windows: len(s.windows), FFAccesses: s.ffAccesses}
	var cpi, l1m, lat []float64
	for i := range s.windows {
		w := &s.windows[i]
		e.DetailedInstr += w.Instructions
		if w.Instructions > 0 {
			cpi = append(cpi, float64(w.Cycles)/float64(w.Instructions))
			l1m = append(l1m, float64(w.L1DMisses)/float64(w.Instructions)*1e6)
		}
		if w.MemRequests > 0 {
			lat = append(lat, float64(w.MemLatencyCycles)/float64(w.MemRequests))
		}
	}
	e.CPIMean, e.CPICI95 = stats.MeanCI95(cpi)
	e.L1PerMMean, e.L1PerMCI95 = stats.MeanCI95(l1m)
	e.MemLatMean, e.MemLatCI95 = stats.MeanCI95(lat)
	return e
}
