package coherence

import "dssmem/internal/cache"

// Preview transactions: the bound phase of the parallel simulator computes
// each miss's Result against the directory's frozen state — frozen because
// directory entries, remote caches and memory-server estimators are mutated
// only during the weave phase, while every process goroutine is parked — and
// installs the predicted grant immediately, without waiting for other CPUs.
// The weave phase later replays the logged transaction through the real
// Read/Write/Upgrade in deterministic (timestamp, CacheID) order, which
// evolves the shared state and accounts the Stats.
//
// Previews differ from the replayed transaction in two deliberate ways, both
// bounded by the window length (see DESIGN.md §11):
//
//   - they judge the owner by the directory's belief (entry.ownerMod) instead
//     of probing the owner cache's live state, since another CPU's cache is
//     not frozen state the bound phase may read;
//   - queueing delay comes from the memory server's estimator as of the last
//     weave (Server.PredictWait), not from this request's own arrival.
//
// Previews never mutate: no entry is created (unknown lines read a shared
// zero image), no stats are charged, no hooks fire.

// PreviewRead computes the Result Read would produce for cache c on line at
// time now against frozen directory state.
func (d *Directory) PreviewRead(c CacheID, line uint64, now uint64) Result {
	e := d.peek(line)
	res := Result{Class: d.classify(e, c)}
	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess + d.mem[home].PredictWait()
	memPath := d.params.MemAccess + d.net.Latency(home, rnode)

	switch e.state {
	case dirUncached:
		lat += memPath
		res.Grant = cache.Exclusive
		if d.params.NoExclusive {
			res.Grant = cache.Shared
		}
	case dirShared:
		lat += memPath
		res.Grant = cache.Shared
	case dirOwned:
		o := CacheID(e.owner)
		if o == c {
			lat += memPath
			res.Grant = cache.Exclusive
			if d.params.NoExclusive {
				res.Grant = cache.Shared
			}
			break
		}
		onode := d.nodeOf[o]
		threeHop := d.net.Latency(home, onode) + d.params.CacheExtract + d.net.Latency(onode, rnode)
		switch {
		case e.ownerMod && d.params.Migratory && e.migratory:
			lat += threeHop
			res.Grant = cache.Modified
			res.Dirty3Hop = true
		case e.ownerMod:
			lat += threeHop
			res.Grant = cache.Shared
			res.Dirty3Hop = true
		default:
			if d.params.Speculative {
				lat += memPath
			} else {
				lat += threeHop
			}
			res.Grant = cache.Shared
		}
	}
	res.Latency = lat
	return res
}

// PreviewWrite computes the Result Write would produce for cache c on line at
// time now against frozen directory state.
func (d *Directory) PreviewWrite(c CacheID, line uint64, now uint64) Result {
	e := d.peek(line)
	res := Result{Class: d.classify(e, c), Grant: cache.Modified}
	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess + d.mem[home].PredictWait()
	memPath := d.params.MemAccess + d.net.Latency(home, rnode)

	switch e.state {
	case dirUncached:
		lat += memPath
	case dirShared:
		lat += memPath + d.params.InvalLatency
	case dirOwned:
		o := CacheID(e.owner)
		if o == c {
			lat += memPath
		} else {
			onode := d.nodeOf[o]
			lat += d.net.Latency(home, onode) + d.params.CacheExtract + d.net.Latency(onode, rnode)
			res.Dirty3Hop = e.ownerMod
		}
	}
	res.Latency = lat
	return res
}

// PreviewUpgrade computes the Result Upgrade would produce for cache c on
// line at time now against frozen directory state, including the fallback to
// a full write miss when the directory no longer lists c as a sharer.
func (d *Directory) PreviewUpgrade(c CacheID, line uint64, now uint64) Result {
	e := d.peek(line)
	bit := uint64(1) << uint(c)
	if e.state != dirShared || e.sharers&bit == 0 {
		return d.PreviewWrite(c, line, now)
	}
	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess + d.mem[home].PredictWait()
	if e.sharers != bit {
		lat += d.params.InvalLatency
	}
	lat += d.net.Latency(home, rnode) // ack
	return Result{Latency: lat, Grant: cache.Modified, Class: Capacity}
}
