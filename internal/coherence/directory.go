// Package coherence implements a directory-based MESI cache-coherence
// protocol with the two vendor-specific optimizations the paper leans on:
//
//   - the HP V-Class "migratory enhancement": a read miss to a line that is
//     dirty in another cache invalidates the owner and hands the requester an
//     exclusive (dirty) copy, so the read-modify-write sequences of lock
//     metadata pay one intervention instead of two;
//   - the SGI Origin 2000 "speculative reply": on a read miss to a line the
//     directory believes is owned, memory speculatively returns its copy in
//     parallel with the owner intervention; when the owner's copy is clean
//     (Exclusive, never written) the speculative reply is used and the miss
//     costs no more than a clean miss.
//
// The directory also classifies every miss as cold, capacity/conflict, or
// coherence (communication), which is how the paper separates "normal cold
// start and capacity misses" from "misses caused by communication".
package coherence

import (
	"fmt"

	"dssmem/internal/cache"
	"dssmem/internal/interconnect"
	"dssmem/internal/memsys"
)

// CacheID identifies one coherent cache (the outermost level of one CPU).
type CacheID int

// CoherentCache is the view the directory needs of each CPU's cache
// hierarchy, at protocol-line granularity. Multi-level hierarchies implement
// it by forwarding coherence actions to inner levels (inclusion).
type CoherentCache interface {
	// StateOf returns the (outer-level) state of line, Invalid if absent.
	StateOf(line uint64) cache.State
	// Invalidate removes line from the whole hierarchy, returning the prior
	// outer-level state.
	Invalidate(line uint64) cache.State
	// Downgrade moves line from M/E to S throughout the hierarchy and returns
	// the prior outer-level state.
	Downgrade(line uint64) cache.State
}

// Class is the miss classification.
type Class uint8

// Miss classes.
const (
	Cold Class = iota
	Capacity
	Coherence
)

// String implements fmt.Stringer.
func (c Class) String() string {
	switch c {
	case Cold:
		return "cold"
	case Capacity:
		return "capacity"
	case Coherence:
		return "coherence"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// Params are the protocol latency knobs, in CPU cycles.
type Params struct {
	MemAccess    uint64 // DRAM row access at the home
	DirAccess    uint64 // directory lookup/update
	CacheExtract uint64 // owner cache supplies a line (intervention service)
	InvalLatency uint64 // invalidation round trip added to writes on shared lines

	Migratory   bool // V-Class migratory enhancement
	Speculative bool // Origin speculative memory reply
	// NoExclusive degrades the protocol from MESI to MSI: cold reads are
	// granted Shared instead of Exclusive. An ablation knob: the E state is
	// what makes second readers pay an intervention (the Fig. 9 jump), and
	// what lets private data be written without an upgrade.
	NoExclusive bool
}

// Result reports the outcome of a protocol transaction.
type Result struct {
	Latency   uint64      // total memory-system latency in cycles
	Grant     cache.State // state the requester installs
	Class     Class       // miss classification
	Dirty3Hop bool        // involved a dirty-owner intervention
}

type dirState uint8

const (
	dirUncached dirState = iota
	dirShared
	dirOwned // exclusive in one cache (clean or dirty; E or M there)
)

type entry struct {
	state    dirState
	owner    int16
	ownerMod bool // owner known to have modified (granted M or migrated)
	// migratory marks lines whose sharing pattern is read-modify-write
	// hand-offs (observed as an upgrade after a shared read). Only these
	// lines take the migratory fast path; write-once/read-many data (e.g.
	// hint-bit-stamped record pages) stays on the normal MESI path, as the
	// V-Class's pattern detector arranged.
	migratory bool
	sharers   uint64 // bitmask of CacheIDs with (believed) S copies
	ever      uint64 // caches that have ever held the line (cold classification)
	inval     uint64 // caches whose copy was killed by coherence (comm. misses)
}

// Stats aggregates protocol events. Per-requester latency lives in the
// directory's PerCache slice.
type Stats struct {
	Reads, Writes, Upgrades uint64
	CleanMisses             uint64 // served by home memory (2-hop)
	CleanSharedGrants       uint64
	DirtyInterventions      uint64 // 3-hop, owner had modified data
	CleanInterventions      uint64 // 3-hop, owner had a clean-exclusive copy
	SpeculativeHits         uint64 // interventions short-circuited by speculation
	MigratoryTransfers      uint64 // dirty lines migrated with ownership
	InvalidationsSent       uint64
	ColdMisses              uint64
	CapacityMisses          uint64
	CoherenceMisses         uint64
	Writebacks              uint64
	TotalLatency            uint64
	QueueWait               uint64 // portion of TotalLatency spent queueing
}

// PerCache carries per-requester latency accounting, the basis of the
// PA-8200-style "open request" memory-latency counter in Fig. 9.
type PerCache struct {
	Requests     uint64
	TotalLatency uint64
}

// Hooks observe individual protocol transactions as they happen (the obs
// layer's structured event trace). Nil fields cost one nil check per
// transaction; set them before the run starts — the simulation kernel
// serializes all protocol activity, so hooks need no locking.
type Hooks struct {
	// Request fires once per Read/Write/Upgrade with the final Result.
	// upgrade implies write. An Upgrade that races with an invalidation and
	// falls back to a full write miss reports as a write.
	Request func(c CacheID, write, upgrade bool, line, now uint64, r Result)
	// Invalidate fires once per remote copy killed by coherence activity,
	// attributed to the requester whose transaction caused it.
	Invalidate func(requester, target CacheID, line, now uint64)
}

// Directory is the protocol engine. One instance serves one machine. Not safe
// for concurrent use; the simulation kernel serializes accesses.
type Directory struct {
	params    Params
	placement memsys.Placement
	net       interconnect.Network
	nodeOf    []int                  // CacheID -> network endpoint/node
	mem       []*interconnect.Server // per home node
	caches    []CoherentCache        // per-CPU hierarchy views
	lineShift uint

	dense   []entry          // lines of the shared region, index = line number
	sparse  map[uint64]int32 // private-region lines: handle into slab
	slab    entrySlab
	Stats   Stats
	ByCache []PerCache
	Hooks   Hooks
}

// entrySlab is a chunked arena of directory entries for the sparse (private)
// region. Entries are addressed by int32 handles; chunks never move once
// allocated, so handles stay valid across growth and the per-line heap
// allocation of the old map[uint64]*entry representation disappears — the
// only steady-state cost of a new private line is a map insert and, once per
// slabChunkSize lines, one chunk allocation.
type entrySlab struct {
	chunks [][]entry
}

const (
	slabChunkBits = 12 // 4096 entries (~256 KB) per chunk
	slabChunkSize = 1 << slabChunkBits
)

func (s *entrySlab) alloc() int32 {
	n := len(s.chunks)
	if n == 0 || len(s.chunks[n-1]) == slabChunkSize {
		s.chunks = append(s.chunks, make([]entry, 0, slabChunkSize))
		n++
	}
	c := &s.chunks[n-1]
	*c = append(*c, entry{})
	return int32((n-1)<<slabChunkBits | (len(*c) - 1))
}

func (s *entrySlab) at(i int32) *entry {
	return &s.chunks[i>>slabChunkBits][i&(slabChunkSize-1)]
}

// Config assembles a Directory.
type Config struct {
	Params    Params
	Placement memsys.Placement
	Net       interconnect.Network
	NodeOf    []int           // node of each cache
	Caches    []CoherentCache // per-CPU coherent hierarchy views (index = CacheID)
	LineSize  int             // protocol granularity = outermost line size
	// SharedLimit bounds the shared-region bytes tracked densely; lines above
	// it (private regions) fall back to a map.
	SharedLimit uint64
	// MemOccupancy is the per-request occupancy of each home memory/directory
	// controller, the source of queueing contention.
	MemOccupancy uint64
}

// NewDirectory builds the protocol engine.
func NewDirectory(cfg Config) *Directory {
	if len(cfg.Caches) == 0 || len(cfg.NodeOf) != len(cfg.Caches) {
		panic("coherence: caches/nodeOf mismatch")
	}
	if len(cfg.Caches) > 64 {
		panic("coherence: at most 64 caches (bitmask sharers)")
	}
	ls := uint(0)
	for 1<<ls < cfg.LineSize {
		ls++
	}
	mem := make([]*interconnect.Server, cfg.Placement.Nodes())
	for i := range mem {
		mem[i] = &interconnect.Server{Occupancy: cfg.MemOccupancy}
	}
	return &Directory{
		params:    cfg.Params,
		placement: cfg.Placement,
		net:       cfg.Net,
		nodeOf:    cfg.NodeOf,
		mem:       mem,
		caches:    cfg.Caches,
		lineShift: ls,
		dense:     make([]entry, cfg.SharedLimit>>ls+1),
		sparse:    make(map[uint64]int32),
		ByCache:   make([]PerCache, len(cfg.Caches)),
	}
}

// LineOf maps an address to the protocol line number.
func (d *Directory) LineOf(addr memsys.Addr) uint64 { return uint64(addr) >> d.lineShift }

// MemServers exposes the per-node memory servers (for inspection/tests).
func (d *Directory) MemServers() []*interconnect.Server { return d.mem }

func (d *Directory) entryFor(line uint64) *entry {
	if line < uint64(len(d.dense)) {
		return &d.dense[line]
	}
	if i, ok := d.sparse[line]; ok {
		return d.slab.at(i)
	}
	i := d.slab.alloc()
	d.sparse[line] = i
	return d.slab.at(i)
}

// zeroEntry is the immutable image of a line the directory has never seen.
// peek hands it out for unknown lines so read-only paths allocate nothing;
// it must never be written through.
var zeroEntry entry

// peek returns the entry for line without creating one. Unlike entryFor it is
// safe to call concurrently with other readers (the parallel bound phase),
// because it never mutates the sparse index.
func (d *Directory) peek(line uint64) *entry {
	if line < uint64(len(d.dense)) {
		return &d.dense[line]
	}
	if i, ok := d.sparse[line]; ok {
		return d.slab.at(i)
	}
	return &zeroEntry
}

func (d *Directory) homeOf(line uint64) int {
	return d.placement.Home(memsys.Addr(line << d.lineShift))
}

func (d *Directory) classify(e *entry, c CacheID) Class {
	bit := uint64(1) << uint(c)
	switch {
	case e.ever&bit == 0:
		return Cold
	case e.inval&bit != 0:
		return Coherence
	default:
		return Capacity
	}
}

func (d *Directory) chargeClass(cl Class) {
	switch cl {
	case Cold:
		d.Stats.ColdMisses++
	case Capacity:
		d.Stats.CapacityMisses++
	case Coherence:
		d.Stats.CoherenceMisses++
	}
}

func (d *Directory) finish(c CacheID, lat uint64) {
	d.Stats.TotalLatency += lat
	d.ByCache[c].Requests++
	d.ByCache[c].TotalLatency += lat
}

// Read handles a read miss by cache c on the given protocol line at simulated
// time now. It updates directory and remote cache states and returns the
// latency and the state to install.
func (d *Directory) Read(c CacheID, line uint64, now uint64) Result {
	d.Stats.Reads++
	e := d.entryFor(line)
	bit := uint64(1) << uint(c)
	cl := d.classify(e, c)
	d.chargeClass(cl)
	e.ever |= bit
	e.inval &^= bit

	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess
	wait := d.mem[home].Serve(now + lat)
	lat += wait
	d.Stats.QueueWait += wait

	res := Result{Class: cl}
	switch e.state {
	case dirUncached:
		lat += d.params.MemAccess + d.net.Latency(home, rnode)
		d.Stats.CleanMisses++
		if d.params.NoExclusive {
			e.state = dirShared
			e.sharers = bit
			res.Grant = cache.Shared
			break
		}
		e.state = dirOwned
		e.owner = int16(c)
		e.ownerMod = false
		res.Grant = cache.Exclusive

	case dirShared:
		lat += d.params.MemAccess + d.net.Latency(home, rnode)
		d.Stats.CleanMisses++
		d.Stats.CleanSharedGrants++
		e.sharers |= bit
		res.Grant = cache.Shared

	case dirOwned:
		o := CacheID(e.owner)
		if o == c {
			// The owner's copy was silently replaced (or lost to pollution)
			// without a notification reaching us; treat as uncached.
			lat += d.params.MemAccess + d.net.Latency(home, rnode)
			d.Stats.CleanMisses++
			res.Grant = cache.Exclusive
			if d.params.NoExclusive {
				e.state = dirShared
				e.sharers = bit
				res.Grant = cache.Shared
			}
			break
		}
		onode := d.nodeOf[o]
		ownerState := d.caches[o].StateOf(line)
		dirtyOwner := ownerState == cache.Modified || (ownerState == cache.Invalid && e.ownerMod)
		threeHop := d.net.Latency(home, onode) + d.params.CacheExtract + d.net.Latency(onode, rnode)

		switch {
		case ownerState == cache.Invalid:
			// Owner silently dropped the line. If it had modified data we
			// would have seen the writeback; model as clean at home.
			lat += d.params.MemAccess + d.net.Latency(home, rnode)
			d.Stats.CleanMisses++
			e.state = dirOwned
			e.owner = int16(c)
			e.ownerMod = false
			res.Grant = cache.Exclusive

		case dirtyOwner && d.params.Migratory && e.migratory:
			// Migratory enhancement: invalidate the owner, pass the dirty
			// line with ownership.
			lat += threeHop
			d.caches[o].Invalidate(line)
			if d.Hooks.Invalidate != nil {
				d.Hooks.Invalidate(c, o, line, now)
			}
			e.inval |= uint64(1) << uint(o)
			e.owner = int16(c)
			e.ownerMod = true
			d.Stats.DirtyInterventions++
			d.Stats.MigratoryTransfers++
			res.Grant = cache.Modified
			res.Dirty3Hop = true

		case dirtyOwner:
			// Standard MESI: owner downgrades to S, home gets the data,
			// requester shares it. Speculation cannot help here — the only
			// valid data is the owner's — so the requester pays the 3-hop
			// intervention either way.
			lat += threeHop
			d.caches[o].Downgrade(line)
			e.state = dirShared
			e.sharers = (uint64(1) << uint(o)) | bit
			e.ownerMod = false
			d.Stats.DirtyInterventions++
			res.Grant = cache.Shared
			res.Dirty3Hop = true

		default:
			// Owner has a clean Exclusive copy.
			if d.params.Speculative {
				// The speculative home reply is valid: cost of a clean miss
				// plus the directory's extra bookkeeping.
				lat += d.params.MemAccess + d.net.Latency(home, rnode)
				d.Stats.SpeculativeHits++
			} else {
				// V-Class: the owner must confirm before home replies
				// ("the control information has to be sent back from p1 to
				// the home directory"), so the requester pays a 3-hop trip.
				lat += threeHop
			}
			d.caches[o].Downgrade(line)
			e.state = dirShared
			e.sharers = (uint64(1) << uint(o)) | bit
			d.Stats.CleanInterventions++
			res.Grant = cache.Shared
		}
	}

	res.Latency = lat
	d.finish(c, lat)
	if d.Hooks.Request != nil {
		d.Hooks.Request(c, false, false, line, now, res)
	}
	return res
}

// Write handles a write miss (read-with-intent-to-modify) by cache c.
func (d *Directory) Write(c CacheID, line uint64, now uint64) Result {
	d.Stats.Writes++
	e := d.entryFor(line)
	bit := uint64(1) << uint(c)
	cl := d.classify(e, c)
	d.chargeClass(cl)
	e.ever |= bit
	e.inval &^= bit

	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess
	wait := d.mem[home].Serve(now + lat)
	lat += wait
	d.Stats.QueueWait += wait

	res := Result{Class: cl, Grant: cache.Modified}
	switch e.state {
	case dirUncached:
		lat += d.params.MemAccess + d.net.Latency(home, rnode)
		d.Stats.CleanMisses++

	case dirShared:
		lat += d.params.MemAccess + d.params.InvalLatency + d.net.Latency(home, rnode)
		d.Stats.CleanMisses++
		d.invalidateSharers(e, line, c, now)
		e.migratory = true // write following shared reads: hand-off pattern

	case dirOwned:
		o := CacheID(e.owner)
		if o != c {
			onode := d.nodeOf[o]
			ownerState := d.caches[o].StateOf(line)
			if ownerState == cache.Invalid {
				lat += d.params.MemAccess + d.net.Latency(home, rnode)
				d.Stats.CleanMisses++
			} else {
				lat += d.net.Latency(home, onode) + d.params.CacheExtract + d.net.Latency(onode, rnode)
				d.caches[o].Invalidate(line)
				if d.Hooks.Invalidate != nil {
					d.Hooks.Invalidate(c, o, line, now)
				}
				e.inval |= uint64(1) << uint(o)
				d.Stats.InvalidationsSent++
				if ownerState == cache.Modified {
					d.Stats.DirtyInterventions++
					res.Dirty3Hop = true
				} else {
					d.Stats.CleanInterventions++
				}
			}
		} else {
			lat += d.params.MemAccess + d.net.Latency(home, rnode)
			d.Stats.CleanMisses++
		}
	}
	e.state = dirOwned
	e.owner = int16(c)
	e.ownerMod = true
	e.sharers = 0

	res.Latency = lat
	d.finish(c, lat)
	if d.Hooks.Request != nil {
		d.Hooks.Request(c, true, false, line, now, res)
	}
	return res
}

// Upgrade handles a write hit on a Shared line: cache c already has the data
// and needs ownership. If the directory no longer lists c (its copy was
// invalidated under it), the call falls back to a full write miss.
func (d *Directory) Upgrade(c CacheID, line uint64, now uint64) Result {
	e := d.entryFor(line)
	bit := uint64(1) << uint(c)
	if e.state != dirShared || e.sharers&bit == 0 {
		return d.Write(c, line, now)
	}
	d.Stats.Upgrades++
	home := d.homeOf(line)
	rnode := d.nodeOf[c]
	lat := d.net.Latency(rnode, home) + d.params.DirAccess
	wait := d.mem[home].Serve(now + lat)
	lat += wait
	d.Stats.QueueWait += wait

	if e.sharers != bit {
		lat += d.params.InvalLatency
	}
	lat += d.net.Latency(home, rnode) // ack
	d.invalidateSharers(e, line, c, now)
	e.migratory = true // read-then-write observed: migratory candidate
	e.state = dirOwned
	e.owner = int16(c)
	e.ownerMod = true
	e.sharers = 0

	res := Result{Latency: lat, Grant: cache.Modified, Class: Capacity}
	d.finish(c, lat)
	if d.Hooks.Request != nil {
		d.Hooks.Request(c, true, true, line, now, res)
	}
	return res
}

func (d *Directory) invalidateSharers(e *entry, line uint64, except CacheID, now uint64) {
	for i := range d.caches {
		bit := uint64(1) << uint(i)
		if e.sharers&bit != 0 && CacheID(i) != except {
			d.caches[i].Invalidate(line)
			if d.Hooks.Invalidate != nil {
				d.Hooks.Invalidate(except, CacheID(i), line, now)
			}
			e.inval |= bit
			d.Stats.InvalidationsSent++
		}
	}
	e.sharers = 0
}

// Evict tells the directory that cache c replaced line (capacity) with
// dirty=true if the line was Modified. Dirty evictions are written back to
// the home (charged as occupancy, not latency: the write buffer hides it).
func (d *Directory) Evict(c CacheID, line uint64, dirty bool, now uint64) {
	e := d.entryFor(line)
	bit := uint64(1) << uint(c)
	switch e.state {
	case dirOwned:
		if CacheID(e.owner) == c {
			e.state = dirUncached
			e.ownerMod = false
		}
	case dirShared:
		e.sharers &^= bit
		if e.sharers == 0 {
			e.state = dirUncached
		}
	}
	if dirty {
		d.Stats.Writebacks++
		home := d.homeOf(line)
		d.mem[home].Serve(now)
	}
}

// SeedResident marks line as present in cache c with the given state without
// charging latency — used to set up pre-loaded state (e.g. a warmed buffer
// pool image built before the measured region starts).
func (d *Directory) SeedResident(c CacheID, line uint64, st cache.State) {
	e := d.entryFor(line)
	bit := uint64(1) << uint(c)
	e.ever |= bit
	switch st {
	case cache.Shared:
		e.state = dirShared
		e.sharers |= bit
	case cache.Exclusive, cache.Modified:
		e.state = dirOwned
		e.owner = int16(c)
		e.ownerMod = st == cache.Modified
	}
}
