package coherence

import (
	"testing"
	"testing/quick"

	"dssmem/internal/cache"
)

// Latency floor: every transaction must cost at least the request trip plus
// the directory access — nothing is free.
func TestLatencyFloorProperty(t *testing.T) {
	d, caches := testRig(4, baseParams)
	floor := uint64(10 + 5) // crossbar hop + DirAccess
	f := func(ops []uint16) bool {
		for _, op := range ops {
			c := int(op) % 4
			line := uint64(op>>2) % 32
			var r Result
			if op&0x200 != 0 {
				r = d.Write(CacheID(c), line, uint64(op))
			} else {
				r = d.Read(CacheID(c), line, uint64(op))
			}
			caches[c].Insert(line, r.Grant)
			if r.Latency < floor {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Dirty interventions must always cost more than clean local misses under
// the same parameters.
func TestDirtyCostsMoreThanClean(t *testing.T) {
	d, caches := testRig(2, baseParams)
	clean := d.Read(0, 1, 0)
	caches[0].Insert(1, clean.Grant)

	w := d.Write(0, 2, 10)
	caches[0].Insert(2, w.Grant)
	dirty := d.Read(1, 2, 20)
	if dirty.Latency <= clean.Latency-d.params.MemAccess {
		t.Fatalf("dirty %d vs clean %d", dirty.Latency, clean.Latency)
	}
	if !dirty.Dirty3Hop {
		t.Fatal("dirty flag missing")
	}
}

func TestEvictByNonHolderIsNoop(t *testing.T) {
	d, caches := testRig(2, baseParams)
	r := d.Read(0, 7, 0)
	caches[0].Insert(7, r.Grant)
	// Cache 1 never held line 7; its (spurious) evict must not disturb the
	// owner's directory state.
	d.Evict(1, 7, false, 10)
	r2 := d.Read(1, 7, 20)
	if r2.Grant != cache.Shared && r2.Grant != cache.Exclusive {
		t.Fatalf("grant = %v", r2.Grant)
	}
	if caches[0].StateOf(7) == cache.Invalid && r2.Grant == cache.Exclusive {
		// Acceptable only if the directory saw the owner's copy gone.
		t.Log("owner silently lost its line")
	}
}

func TestByCacheAccountingMatchesGlobal(t *testing.T) {
	d, caches := testRig(3, baseParams)
	now := uint64(0)
	for i := 0; i < 200; i++ {
		c := i % 3
		access(d, caches, c, uint64(i%17), i%5 == 0, now)
		now += 13
	}
	var perCacheLat, perCacheReq uint64
	for _, pc := range d.ByCache {
		perCacheLat += pc.TotalLatency
		perCacheReq += pc.Requests
	}
	if perCacheLat != d.Stats.TotalLatency {
		t.Fatalf("latency: per-cache %d vs global %d", perCacheLat, d.Stats.TotalLatency)
	}
	if perCacheReq != d.Stats.Reads+d.Stats.Writes+d.Stats.Upgrades {
		t.Fatalf("requests: %d vs %d", perCacheReq, d.Stats.Reads+d.Stats.Writes+d.Stats.Upgrades)
	}
}

func TestSpeculativeNeverWorseThanPlain(t *testing.T) {
	// For the same access pattern, speculation can only reduce (or match)
	// total latency — provided owner extraction costs at least a memory
	// access, which holds on the real machines (the speculative reply
	// substitutes the home's DRAM read for the owner's cache extraction).
	realistic := Params{MemAccess: 45, DirAccess: 6, CacheExtract: 80, InvalLatency: 30}
	pattern := func(p Params) uint64 {
		d, caches := testRig(3, p)
		now := uint64(0)
		for i := 0; i < 300; i++ {
			access(d, caches, i%3, uint64(i%11), i%7 == 0, now)
			now += 9
		}
		return d.Stats.TotalLatency
	}
	spec := realistic
	spec.Speculative = true
	if pattern(spec) > pattern(realistic) {
		t.Fatal("speculation increased total latency")
	}
}

func TestWritebackServesHomeOccupancy(t *testing.T) {
	d, caches := testRig(2, baseParams)
	r := d.Write(0, 3, 0)
	caches[0].Insert(3, r.Grant)
	before := uint64(0)
	for _, s := range d.MemServers() {
		before += s.Requests
	}
	d.Evict(0, 3, true, 100)
	var after uint64
	for _, s := range d.MemServers() {
		after += s.Requests
	}
	if after != before+1 {
		t.Fatalf("writeback did not visit home memory: %d -> %d", before, after)
	}
}

func TestMigratoryTrainingPersists(t *testing.T) {
	p := baseParams
	p.Migratory = true
	d, caches := testRig(4, p)
	// Train via 0 -> 1 hand-off.
	access(d, caches, 0, 7, true, 0)
	access(d, caches, 1, 7, false, 10)
	access(d, caches, 1, 7, true, 20)
	// Every subsequent dirty-read hand-off migrates: 1->2, 2->3, 3->0.
	start := d.Stats.MigratoryTransfers
	access(d, caches, 2, 7, false, 30)
	access(d, caches, 2, 7, true, 40)
	access(d, caches, 3, 7, false, 50)
	access(d, caches, 3, 7, true, 60)
	access(d, caches, 0, 7, false, 70)
	if got := d.Stats.MigratoryTransfers - start; got != 3 {
		t.Fatalf("migratory transfers = %d, want 3", got)
	}
}

func TestNoExclusiveGrantsShared(t *testing.T) {
	p := baseParams
	p.NoExclusive = true
	d, caches := testRig(2, p)
	r := access(d, caches, 0, 7, false, 0)
	if r.Grant != cache.Shared {
		t.Fatalf("MSI cold read granted %v", r.Grant)
	}
	// The second reader is now served from memory — no intervention.
	r2 := access(d, caches, 1, 7, false, 10)
	if d.Stats.CleanInterventions != 0 {
		t.Fatalf("MSI should have no clean interventions: %+v", d.Stats)
	}
	if r2.Latency != 75 {
		t.Fatalf("second reader latency %d, want clean 75", r2.Latency)
	}
	// But a write by the original reader now needs an upgrade.
	access(d, caches, 0, 8, false, 20)
	access(d, caches, 0, 8, true, 30)
	if d.Stats.Upgrades == 0 {
		t.Fatal("MSI write-after-read must upgrade")
	}
}
