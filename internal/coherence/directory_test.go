package coherence

import (
	"testing"
	"testing/quick"

	"dssmem/internal/cache"
	"dssmem/internal/interconnect"
	"dssmem/internal/memsys"
)

// testRig wires N caches to a directory over a uniform crossbar so latency
// arithmetic is easy to verify by hand.
func testRig(n int, p Params) (*Directory, []*cache.Cache) {
	caches := make([]*cache.Cache, n)
	views := make([]CoherentCache, n)
	nodeOf := make([]int, n)
	for i := range caches {
		caches[i] = cache.New(cache.Config{Name: "L", Size: 4096, LineSize: 32, Assoc: 2})
		views[i] = caches[i]
		nodeOf[i] = i
	}
	d := NewDirectory(Config{
		Params:       p,
		Placement:    memsys.Interleaved{N: 4, Unit: 32},
		Net:          interconnect.Crossbar{Ports: 16, Hop: 10},
		NodeOf:       nodeOf,
		Caches:       views,
		LineSize:     32,
		SharedLimit:  1 << 20,
		MemOccupancy: 0,
	})
	return d, caches
}

var baseParams = Params{MemAccess: 50, DirAccess: 5, CacheExtract: 20, InvalLatency: 15}

// access simulates the machine layer: lookup, and on miss consult the
// directory and insert.
func access(d *Directory, caches []*cache.Cache, c int, line uint64, write bool, now uint64) Result {
	st, hit := caches[c].Lookup(line, write)
	if hit {
		if write && st == cache.Shared {
			r := d.Upgrade(CacheID(c), line, now)
			caches[c].SetState(line, r.Grant)
			return r
		}
		if write && st == cache.Exclusive {
			caches[c].SetState(line, cache.Modified)
		}
		return Result{}
	}
	var r Result
	if write {
		r = d.Write(CacheID(c), line, now)
	} else {
		r = d.Read(CacheID(c), line, now)
	}
	v := caches[c].Insert(line, r.Grant)
	if v.State != cache.Invalid {
		d.Evict(CacheID(c), v.Line, v.State.Dirty(), now)
	}
	return r
}

func TestColdReadGrantsExclusive(t *testing.T) {
	d, caches := testRig(2, baseParams)
	r := d.Read(0, 100, 0)
	if r.Grant != cache.Exclusive || r.Class != Cold {
		t.Fatalf("got %+v", r)
	}
	// crossbar 10 + dir 5 + mem 50 + crossbar 10
	if r.Latency != 75 {
		t.Fatalf("latency = %d, want 75", r.Latency)
	}
	caches[0].Insert(100, r.Grant)
	if d.Stats.CleanMisses != 1 || d.Stats.ColdMisses != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestSecondReaderPaysCleanIntervention(t *testing.T) {
	d, caches := testRig(3, baseParams)
	access(d, caches, 0, 7, false, 0)
	r := access(d, caches, 1, 7, false, 10)
	// Owner has clean E; without speculation the requester pays 3 hops:
	// req 10 + dir 5 + (home->owner 10 + extract 20 + owner->req 10) = 55.
	if r.Latency != 55 {
		t.Fatalf("second reader latency = %d, want 55", r.Latency)
	}
	if r.Grant != cache.Shared || d.Stats.CleanInterventions != 1 {
		t.Fatalf("got %+v, stats %+v", r, d.Stats)
	}
	if caches[0].StateOf(7) != cache.Shared {
		t.Fatal("owner not downgraded")
	}
	// Third reader: line now Shared at home — served by memory, cheaper.
	r3 := access(d, caches, 2, 7, false, 20)
	if r3.Latency != 75 {
		t.Fatalf("third reader latency = %d, want 75 (clean)", r3.Latency)
	}
	if r3.Latency >= 55+d.Stats.CleanMisses*0 && d.Stats.CleanSharedGrants != 1 {
		t.Fatalf("third read should be a shared grant: %+v", d.Stats)
	}
}

func TestSpeculativeReplyHidesCleanIntervention(t *testing.T) {
	p := baseParams
	p.Speculative = true
	d, caches := testRig(2, p)
	access(d, caches, 0, 7, false, 0)
	r := access(d, caches, 1, 7, false, 10)
	// Speculative reply: cost of a clean miss (75).
	if r.Latency != 75 {
		t.Fatalf("latency = %d, want 75", r.Latency)
	}
	if d.Stats.SpeculativeHits != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestDirtyReadIntervention(t *testing.T) {
	d, caches := testRig(2, baseParams)
	access(d, caches, 0, 7, true, 0) // write miss: cache 0 holds M
	if caches[0].StateOf(7) != cache.Modified {
		t.Fatal("setup failed")
	}
	r := access(d, caches, 1, 7, false, 10)
	if !r.Dirty3Hop || r.Latency != 55 {
		t.Fatalf("got %+v", r)
	}
	// Plain MESI (no migratory): both end up Shared.
	if r.Grant != cache.Shared || caches[0].StateOf(7) != cache.Shared {
		t.Fatal("expected S/S after dirty read intervention")
	}
	if r.Class != Cold {
		t.Fatalf("cache 1 never held the line: class = %v", r.Class)
	}
}

func TestMigratoryReadMigratesOwnership(t *testing.T) {
	p := baseParams
	p.Migratory = true
	d, caches := testRig(3, p)
	// Train the detector: read-then-upgrade hand-off 0 -> 1.
	access(d, caches, 0, 7, true, 0)
	access(d, caches, 1, 7, false, 10)
	access(d, caches, 1, 7, true, 20)
	// Trained: the next dirty read migrates ownership.
	r := access(d, caches, 2, 7, false, 30)
	if r.Grant != cache.Modified {
		t.Fatalf("migratory read should grant M, got %v", r.Grant)
	}
	if caches[1].StateOf(7) != cache.Invalid {
		t.Fatal("previous owner should be invalidated")
	}
	if d.Stats.MigratoryTransfers != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
	// The new owner can now write without any further protocol traffic.
	st, hit := caches[2].Lookup(7, true)
	if !hit || st != cache.Modified {
		t.Fatal("new owner should write-hit in M")
	}
}

func TestMigratoryUntrainedLineDoesNotMigrate(t *testing.T) {
	p := baseParams
	p.Migratory = true
	d, caches := testRig(2, p)
	access(d, caches, 0, 7, true, 0)
	r := access(d, caches, 1, 7, false, 10)
	if r.Grant != cache.Shared || d.Stats.MigratoryTransfers != 0 {
		t.Fatalf("untrained dirty read must downgrade, got %+v / %+v", r, d.Stats)
	}
}

func TestWriteToSharedInvalidatesAll(t *testing.T) {
	d, caches := testRig(4, baseParams)
	access(d, caches, 0, 7, false, 0)
	access(d, caches, 1, 7, false, 1)
	access(d, caches, 2, 7, false, 2) // line S in 0,1,2
	r := access(d, caches, 3, 7, true, 3)
	if r.Grant != cache.Modified {
		t.Fatalf("grant = %v", r.Grant)
	}
	for i := 0; i < 3; i++ {
		if caches[i].StateOf(7) != cache.Invalid {
			t.Fatalf("cache %d still holds the line", i)
		}
	}
	if d.Stats.InvalidationsSent != 3 {
		t.Fatalf("invalidations = %d", d.Stats.InvalidationsSent)
	}
	// Their next read is a coherence miss.
	r0 := access(d, caches, 0, 7, false, 4)
	if r0.Class != Coherence {
		t.Fatalf("class = %v, want coherence", r0.Class)
	}
	if d.Stats.CoherenceMisses != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
}

func TestUpgradeSoleSharerIsCheap(t *testing.T) {
	d, caches := testRig(2, baseParams)
	// Get line into S state in one cache only: reader then dirty intervention.
	access(d, caches, 0, 7, false, 0)
	access(d, caches, 1, 7, false, 1) // S in both
	access(d, caches, 1, 7, true, 2)  // upgrade with another sharer: invalidation
	if d.Stats.Upgrades != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
	if caches[0].StateOf(7) != cache.Invalid {
		t.Fatal("other sharer must be invalidated on upgrade")
	}
}

func TestUpgradeRaceFallsBackToWrite(t *testing.T) {
	d, caches := testRig(2, baseParams)
	access(d, caches, 0, 7, false, 0)
	access(d, caches, 1, 7, false, 1)
	access(d, caches, 0, 7, true, 2) // cache 0 upgrades; invalidates cache 1
	// Cache 1 believes it has S (it does not — already invalidated). Calling
	// Upgrade directly models the race; it must degrade to a full Write.
	r := d.Upgrade(1, 7, 3)
	if r.Grant != cache.Modified {
		t.Fatalf("grant = %v", r.Grant)
	}
	if caches[0].StateOf(7) != cache.Invalid {
		t.Fatal("old owner must be invalidated by fallback write")
	}
}

func TestEvictionReturnsLineToMemory(t *testing.T) {
	d, caches := testRig(2, baseParams)
	access(d, caches, 0, 7, true, 0)
	d.Evict(0, 7, true, 10)
	caches[0].Invalidate(7)
	if d.Stats.Writebacks != 1 {
		t.Fatalf("stats: %+v", d.Stats)
	}
	// Next reader sees it uncached: capacity-class miss for cache 0, cold for 1.
	r := d.Read(1, 7, 20)
	if r.Latency != 75 || r.Grant != cache.Exclusive {
		t.Fatalf("got %+v", r)
	}
	r0 := d.Read(0, 7, 30)
	if r0.Class != Capacity && r0.Class != Coherence {
		// cache 0's copy left by eviction, not invalidation -> capacity...
		t.Fatalf("class = %v", r0.Class)
	}
}

func TestSilentOwnerLossHandled(t *testing.T) {
	d, caches := testRig(2, baseParams)
	access(d, caches, 0, 7, false, 0) // E in cache 0
	caches[0].Invalidate(7)           // silent loss (e.g. flush) without Evict
	r := d.Read(1, 7, 10)
	if r.Grant != cache.Exclusive || r.Latency != 75 {
		t.Fatalf("got %+v", r)
	}
}

func TestMemoryContentionQueues(t *testing.T) {
	caches := []*cache.Cache{
		cache.New(cache.Config{Name: "a", Size: 1024, LineSize: 32, Assoc: 2}),
		cache.New(cache.Config{Name: "b", Size: 1024, LineSize: 32, Assoc: 2}),
	}
	d := NewDirectory(Config{
		Params:       baseParams,
		Placement:    memsys.Concentrated{NodesTotal: 2, SharedNodes: 1},
		Net:          interconnect.Crossbar{Ports: 2, Hop: 10},
		NodeOf:       []int{0, 1},
		Caches:       []CoherentCache{caches[0], caches[1]},
		LineSize:     32,
		SharedLimit:  1 << 16,
		MemOccupancy: 40,
	})
	r1 := d.Read(0, 1, 0)
	r2 := d.Read(1, 2, 0) // same home node (concentrated), same instant
	if r2.Latency <= r1.Latency {
		t.Fatalf("expected queueing: %d then %d", r1.Latency, r2.Latency)
	}
	if d.Stats.QueueWait == 0 {
		t.Fatal("queue wait not recorded")
	}
}

func TestPerCacheLatencyAccounting(t *testing.T) {
	d, caches := testRig(2, baseParams)
	access(d, caches, 0, 1, false, 0)
	access(d, caches, 0, 2, false, 1)
	access(d, caches, 1, 3, false, 2)
	if d.ByCache[0].Requests != 2 || d.ByCache[1].Requests != 1 {
		t.Fatalf("per-cache: %+v", d.ByCache)
	}
	if d.ByCache[0].TotalLatency != 150 {
		t.Fatalf("latency sum = %d", d.ByCache[0].TotalLatency)
	}
}

func TestSeedResident(t *testing.T) {
	d, caches := testRig(2, baseParams)
	d.SeedResident(0, 7, cache.Modified)
	caches[0].Insert(7, cache.Modified)
	r := d.Read(1, 7, 0)
	if !r.Dirty3Hop {
		t.Fatalf("seeded M line should cause intervention: %+v", r)
	}
}

func TestSparseFallbackForPrivateLines(t *testing.T) {
	d, caches := testRig(2, baseParams)
	priv := uint64(memsys.PrivateBase(0)) >> 5
	r := d.Read(0, priv, 0)
	if r.Class != Cold || r.Grant != cache.Exclusive {
		t.Fatalf("got %+v", r)
	}
	caches[0].Insert(priv, r.Grant)
	r2 := d.Read(0, priv, 1)
	if r2.Class != Capacity {
		t.Fatalf("second private read class = %v", r2.Class)
	}
}

// Property: for any interleaving of reads/writes by up to 4 caches over a
// small line set, the directory and cache states stay mutually consistent:
//   - at most one cache holds E/M on a line;
//   - if any cache holds M/E, no other cache holds S... (MESI single-writer)
func TestMESIInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		d, caches := testRig(4, baseParams)
		now := uint64(0)
		for _, op := range ops {
			c := int(op) % 4
			line := uint64(op>>2) % 8
			write := op&0x100 != 0
			access(d, caches, c, line, write, now)
			now += 7
			for l := uint64(0); l < 8; l++ {
				owners, sharers := 0, 0
				for _, cc := range caches {
					switch cc.StateOf(l) {
					case cache.Exclusive, cache.Modified:
						owners++
					case cache.Shared:
						sharers++
					}
				}
				if owners > 1 || (owners == 1 && sharers > 0) {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: miss classification counts always sum to the number of
// directory transactions that were misses.
func TestClassificationBalance(t *testing.T) {
	f := func(ops []uint16) bool {
		d, caches := testRig(3, baseParams)
		now := uint64(0)
		for _, op := range ops {
			access(d, caches, int(op)%3, uint64(op>>3)%16, op&4 != 0, now)
			now += 3
		}
		s := d.Stats
		return s.ColdMisses+s.CapacityMisses+s.CoherenceMisses == s.Reads+s.Writes
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
