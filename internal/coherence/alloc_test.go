package coherence

import "testing"

// TestDirectoryMissAllocFree: once a line's directory entry exists (slab
// handle in the sparse map), further misses on it — read, write, upgrade,
// evict — must not allocate. This is the guarantee that replaced the old
// per-line *entry heap allocation with the chunked slab.
func TestDirectoryMissAllocFree(t *testing.T) {
	d, caches := testRig(4, baseParams)
	const lines = 512
	// Warm: materialize every entry and both CPUs' sharer bookkeeping.
	now := uint64(0)
	for l := uint64(0); l < lines; l++ {
		d.Read(0, l, now)
		d.Read(1, l, now+1)
		now += 10
	}
	// Caches are tiny (4 KB / 32 B): almost all of these re-accesses are real
	// capacity misses against existing entries.
	var l uint64
	allocs := testing.AllocsPerRun(1000, func() {
		d.Read(0, l%lines, now)
		d.Write(1, (l+7)%lines, now+1)
		d.Evict(1, (l+7)%lines, true, now+2)
		now += 10
		l++
	})
	if allocs != 0 {
		t.Fatalf("steady-state directory miss path allocates %.1f objects/op, want 0", allocs)
	}
	_ = caches
}

// TestPreviewAllocFree: the bound-phase previews must never allocate — they
// run concurrently on the hot path and may not touch the sparse map beyond a
// read (unknown lines resolve to the shared zero entry).
func TestPreviewAllocFree(t *testing.T) {
	d, _ := testRig(4, baseParams)
	for l := uint64(0); l < 64; l++ {
		d.Read(0, l, 5)
	}
	var l uint64
	allocs := testing.AllocsPerRun(1000, func() {
		d.PreviewRead(1, l%128, 100) // half known, half unknown lines
		d.PreviewWrite(2, l%128, 101)
		d.PreviewUpgrade(0, l%64, 102)
		l++
	})
	if allocs != 0 {
		t.Fatalf("preview path allocates %.1f objects/op, want 0", allocs)
	}
}
