package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestJobStatusFetch(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/v1/jobs/abc123":
			json.NewEncoder(w).Encode(JobStatus{ID: "abc123", Kind: "sweep", State: "running", Total: 5, Completed: 2})
		case r.URL.Path == "/v1/jobs/sweep" && r.URL.Query().Get("machine") == "vclass":
			json.NewEncoder(w).Encode(JobStatus{ID: "abc123", Kind: "sweep", State: "done", Total: 5, Completed: 5})
		default:
			w.WriteHeader(http.StatusNotFound)
			fmt.Fprint(w, `{"error":"unknown job","retriable":false,"status":404}`)
		}
	}))
	defer ts.Close()
	cl := fastClient(t, ts.URL)

	js, err := cl.Job(context.Background(), "abc123")
	if err != nil {
		t.Fatal(err)
	}
	if js.State != "running" || js.Completed != 2 {
		t.Fatalf("Job = %+v", js)
	}
	js, err = cl.SweepJob(context.Background(), "machine=vclass&query=Q6")
	if err != nil {
		t.Fatal(err)
	}
	if js.State != "done" || js.Completed != 5 {
		t.Fatalf("SweepJob = %+v", js)
	}
	if _, err := cl.Job(context.Background(), "nope"); err == nil {
		t.Fatal("unknown job fetched without error")
	}
}

// TestResumeSweepRidesOutRestart scripts a coordinator crash: the first sweep
// GET dies, the durable job reports running then done, and ResumeSweep's
// re-issued GET lands on the post-restart cache.
func TestResumeSweepRidesOutRestart(t *testing.T) {
	var sweepCalls, jobPolls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/v1/sweep"):
			if sweepCalls.Add(1) == 1 {
				// The crash: one hard, non-retriable failure so the client
				// falls through to the job-poll path immediately.
				w.WriteHeader(http.StatusInternalServerError)
				fmt.Fprint(w, `{"error":"killed","retriable":false,"status":500}`)
				return
			}
			w.Header().Set("X-Cache", "hit")
			fmt.Fprint(w, `{"machine":"vclass","points":[]}`)
		case r.URL.Path == "/v1/jobs/sweep":
			state := "running"
			if jobPolls.Add(1) >= 3 {
				state = "done"
			}
			json.NewEncoder(w).Encode(JobStatus{ID: "j1", Kind: "sweep", State: state, Total: 5, Completed: 5})
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
			w.WriteHeader(http.StatusNotFound)
		}
	}))
	defer ts.Close()

	resp, err := fastClient(t, ts.URL).ResumeSweep(context.Background(), "machine=vclass&query=Q6", time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != `{"machine":"vclass","points":[]}` {
		t.Fatalf("body %q", resp.Body)
	}
	if got := sweepCalls.Load(); got != 2 {
		t.Fatalf("sweep fetched %d times, want 2 (initial failure + post-resume)", got)
	}
	if got := jobPolls.Load(); got < 3 {
		t.Fatalf("job polled %d times, want >= 3 (running, running, done)", got)
	}
}

func TestResumeSweepFailedJob(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/sweep") {
			w.WriteHeader(http.StatusInternalServerError)
			fmt.Fprint(w, `{"error":"boom","retriable":false,"status":500}`)
			return
		}
		json.NewEncoder(w).Encode(JobStatus{ID: "j1", Kind: "sweep", State: "failed", Error: "simulation diverged"})
	}))
	defer ts.Close()
	_, err := fastClient(t, ts.URL).ResumeSweep(context.Background(), "machine=vclass&query=Q6", time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), "simulation diverged") {
		t.Fatalf("err = %v, want the job's failure surfaced", err)
	}
}

// TestResumeSweepNoJournal: when the server has no job for the sweep (e.g. it
// never started, or journaling is off), the original sweep error comes back —
// ResumeSweep must not spin on a journal that will never appear.
func TestResumeSweepNoJournal(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/sweep") {
			w.WriteHeader(http.StatusBadRequest)
			fmt.Fprint(w, `{"error":"unknown machine","retriable":false,"status":400}`)
			return
		}
		w.WriteHeader(http.StatusNotFound)
		fmt.Fprint(w, `{"error":"no such job","retriable":false,"status":404}`)
	}))
	defer ts.Close()
	_, err := fastClient(t, ts.URL).ResumeSweep(context.Background(), "machine=zork&query=Q6", time.Millisecond)
	var ae *APIError
	if err == nil || !errors.As(err, &ae) || ae.Status != http.StatusBadRequest {
		t.Fatalf("err = %v, want the original 400 back", err)
	}
}

// TestResumeSweepCtxBound: with the server entirely gone, ResumeSweep gives
// up when the context does, reporting both causes.
func TestResumeSweepCtxBound(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"down","retriable":false,"status":503}`)
	}))
	defer ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := fastClient(t, ts.URL).ResumeSweep(ctx, "machine=vclass&query=Q6", time.Millisecond)
	if err == nil || !strings.Contains(err.Error(), context.DeadlineExceeded.Error()) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
}
