package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRequestIDHeaderStableAcrossAttempts verifies one logical request keeps
// one X-Request-ID over its retries, with X-Request-Attempt counting up.
func TestRequestIDHeaderStableAcrossAttempts(t *testing.T) {
	var mu sync.Mutex
	var ids, attempts []string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		ids = append(ids, r.Header.Get("X-Request-ID"))
		attempts = append(attempts, r.Header.Get("X-Request-Attempt"))
		n := len(ids)
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.Write([]byte(`{}`))
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.Get(context.Background(), "/v1/measure")
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("attempts seen = %d, want 3", len(ids))
	}
	if ids[0] == "" || ids[0] != ids[1] || ids[1] != ids[2] {
		t.Fatalf("X-Request-ID must be stable across attempts: %v", ids)
	}
	wantAttempts := []string{"1", "2", "3"}
	for i, want := range wantAttempts {
		if attempts[i] != want {
			t.Fatalf("X-Request-Attempt = %v, want %v", attempts, wantAttempts)
		}
	}
	if resp.RequestID != ids[0] {
		t.Fatalf("Response.RequestID = %q, want server echo %q", resp.RequestID, ids[0])
	}
	if resp.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", resp.Attempts)
	}

	st := c.Stats()
	if st.Requests != 1 || st.Attempts != 3 || st.Retries != 2 {
		t.Fatalf("Stats = %+v, want {1 3 2}", st)
	}
}

// TestAPIErrorCarriesRequestID verifies the server's ID echo survives into
// the error a caller logs.
func TestAPIErrorCarriesRequestID(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Request-ID", r.Header.Get("X-Request-ID"))
		w.WriteHeader(http.StatusBadRequest)
		w.Write([]byte(`{"error":"bad machine","retriable":false,"status":400}`))
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "/v1/measure?machine=nope")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("want *APIError, got %v", err)
	}
	if len(ae.RequestID) != 16 {
		t.Fatalf("APIError.RequestID = %q, want the 16-char minted ID", ae.RequestID)
	}
	if got := ae.Error(); !strings.Contains(got, ae.RequestID) {
		t.Fatalf("error string %q must mention the request ID", got)
	}
}
