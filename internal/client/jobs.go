package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"
)

// JobStatus is a daemon-side durable job snapshot (GET /v1/jobs/{id}): the
// journaled progress of a sweep, surviving daemon restarts.
type JobStatus struct {
	ID        string `json:"id"`
	Kind      string `json:"kind"`
	Path      string `json:"path"`
	State     string `json:"state"` // running | done | failed
	Total     int    `json:"total"`
	Completed int    `json:"completed"`
	Error     string `json:"error,omitempty"`
}

// Job fetches one job's status by ID (the X-Job-ID header of the request
// that started it).
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	return c.getJob(ctx, "/v1/jobs/"+id)
}

// SweepJob finds the sweep job for a set of sweep query parameters
// (rawQuery as in "machine=origin&query=Q6") — the reattach path when the
// response carrying X-Job-ID was lost to a server crash.
func (c *Client) SweepJob(ctx context.Context, rawQuery string) (*JobStatus, error) {
	return c.getJob(ctx, "/v1/jobs/sweep?"+strings.TrimPrefix(rawQuery, "?"))
}

func (c *Client) getJob(ctx context.Context, path string) (*JobStatus, error) {
	resp, err := c.Get(ctx, path)
	if err != nil {
		return nil, err
	}
	var js JobStatus
	if err := json.Unmarshal(resp.Body, &js); err != nil {
		return nil, fmt.Errorf("client: undecodable job status: %w", err)
	}
	return &js, nil
}

// ResumeSweep fetches a sweep, riding out a server crash mid-sweep: when the
// GET fails, it polls the sweep's durable job until the restarted server
// finishes resuming it, then re-issues the GET (which the server answers
// from its result cache). rawQuery is the sweep's query string. Bounded by
// ctx; poll is the job-poll cadence (0 = 500ms).
func (c *Client) ResumeSweep(ctx context.Context, rawQuery string, poll time.Duration) (*Response, error) {
	rawQuery = strings.TrimPrefix(rawQuery, "?")
	resp, err := c.Get(ctx, "/v1/sweep?"+rawQuery)
	if err == nil {
		return resp, nil
	}
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	for {
		js, jerr := c.SweepJob(ctx, rawQuery)
		switch {
		case jerr == nil && js.State == "done":
			// The server finished the job (live or resumed); the result is in
			// its cache now.
			return c.Get(ctx, "/v1/sweep?"+rawQuery)
		case jerr == nil && js.State == "failed":
			return nil, fmt.Errorf("client: sweep job %s failed: %s", js.ID, js.Error)
		case jerr != nil:
			var ae *APIError
			if errors.As(jerr, &ae) && ae.Status == http.StatusNotFound {
				// No journal for this sweep: nothing to wait out.
				return nil, err
			}
			// Server still down/restarting: keep polling until ctx gives up.
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("client: %w (last sweep error: %v)", context.Cause(ctx), err)
		case <-time.After(poll):
		}
	}
}
