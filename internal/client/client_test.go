package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

func fastClient(t *testing.T, url string) *Client {
	t.Helper()
	c, err := New(Config{BaseURL: url, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestRetriesUntilSuccess(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"warming up","retriable":true,"status":503}`)
			return
		}
		fmt.Fprint(w, "payload")
	}))
	defer ts.Close()

	resp, err := fastClient(t, ts.URL).Get(context.Background(), "/v1/thing")
	if err != nil {
		t.Fatal(err)
	}
	if string(resp.Body) != "payload" || resp.Attempts != 3 {
		t.Fatalf("body %q attempts %d", resp.Body, resp.Attempts)
	}
}

func TestNonRetriableFailsImmediately(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		fmt.Fprint(w, `{"error":"unknown machine","retriable":false,"status":400}`)
	}))
	defer ts.Close()

	_, err := fastClient(t, ts.URL).Get(context.Background(), "/v1/thing")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err %v, want APIError", err)
	}
	if ae.Status != 400 || ae.Retriable || ae.Msg != "unknown machine" {
		t.Fatalf("APIError %+v", ae)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retry of non-retriable)", calls.Load())
	}
}

// The server's body-level retriable flag overrides the status taxonomy in
// both directions.
func TestBodyRetriableFlagWins(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		// 503 is retriable by status, but the server says it is not.
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"shutting down for good","retriable":false,"status":503}`)
	}))
	defer ts.Close()

	_, err := fastClient(t, ts.URL).Get(context.Background(), "/x")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Retriable {
		t.Fatalf("err %v, want non-retriable APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1", calls.Load())
	}
}

func TestMaxAttemptsExhausted(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusTooManyRequests)
		fmt.Fprint(w, `{"error":"overloaded","retriable":true,"status":429}`)
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "/x")
	var ae *APIError
	if !errors.As(err, &ae) || ae.Status != 429 || ae.Attempts != 3 {
		t.Fatalf("err %v", err)
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3", calls.Load())
	}
}

func TestRetryAfterIsFloor(t *testing.T) {
	var calls atomic.Int64
	var firstRetryGap atomic.Int64
	var last atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now().UnixNano()
		if prev := last.Swap(now); prev != 0 && firstRetryGap.Load() == 0 {
			firstRetryGap.Store(now - prev)
		}
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"busy","retriable":true,"status":429}`)
			return
		}
		fmt.Fprint(w, "ok")
	}))
	defer ts.Close()

	// Backoff alone would wait ~1ms; Retry-After: 1 must stretch it to >=1s.
	resp, err := fastClient(t, ts.URL).Get(context.Background(), "/x")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Attempts != 2 {
		t.Fatalf("attempts %d", resp.Attempts)
	}
	if gap := time.Duration(firstRetryGap.Load()); gap < 900*time.Millisecond {
		t.Fatalf("retry came after %v, want >= ~1s (Retry-After honored)", gap)
	}
}

func TestContextCancelsBackoffSleep(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "30")
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprint(w, `{"error":"busy","retriable":true,"status":503}`)
	}))
	defer ts.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := fastClient(t, ts.URL).Get(ctx, "/x")
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; the 30s Retry-After sleep was not interrupted", elapsed)
	}
}

func TestNetworkErrorRetries(t *testing.T) {
	// A server that dies after its first (failing) response: connection
	// refused thereafter — a retriable network error that eventually
	// exhausts attempts.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	url := ts.URL
	ts.Close()

	c, err := New(Config{BaseURL: url, MaxAttempts: 3, BaseDelay: time.Millisecond, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "/x")
	if err == nil {
		t.Fatal("expected network error")
	}
	var ae *APIError
	if errors.As(err, &ae) {
		t.Fatalf("network failure surfaced as APIError: %v", err)
	}
}

func TestUnstructuredErrorBodyFallsBackToStatus(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusBadGateway)
		fmt.Fprint(w, "<html>proxy says no</html>")
	}))
	defer ts.Close()

	c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 2, BaseDelay: time.Millisecond, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Get(context.Background(), "/x")
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("err %v", err)
	}
	if !ae.Retriable || ae.Status != 502 || ae.Msg != "<html>proxy says no</html>" {
		t.Fatalf("APIError %+v", ae)
	}
}

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("BaseURL missing should error")
	}
	c, err := New(Config{BaseURL: "http://x/"})
	if err != nil {
		t.Fatal(err)
	}
	if c.cfg.BaseURL != "http://x" {
		t.Fatalf("trailing slash not trimmed: %q", c.cfg.BaseURL)
	}
	if c.cfg.MaxAttempts != 5 || c.cfg.BaseDelay != 100*time.Millisecond || c.cfg.MaxDelay != 5*time.Second {
		t.Fatalf("defaults not applied: %+v", c.cfg)
	}
}

func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("7"); d != 7*time.Second {
		t.Fatalf("seconds form: %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Fatalf("empty: %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Fatalf("garbage: %v", d)
	}
	httpDate := time.Now().Add(90 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(httpDate); d < 80*time.Second || d > 90*time.Second {
		t.Fatalf("http-date form: %v", d)
	}
	past := time.Now().Add(-time.Hour).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(past); d != 0 {
		t.Fatalf("past http-date: %v", d)
	}
	// RFC 9110 permits the obsolete RFC 850 and ANSI C asctime date forms
	// too; http.ParseTime accepts all three.
	future := time.Now().Add(90 * time.Second).UTC()
	for _, form := range []string{
		future.Format("Monday, 02-Jan-06 15:04:05 GMT"), // RFC 850
		future.Format(time.ANSIC),
	} {
		if d := parseRetryAfter(form); d < 80*time.Second || d > 90*time.Second {
			t.Fatalf("obsolete date form %q: %v", form, d)
		}
	}
	if d := parseRetryAfter("-5"); d != 0 {
		t.Fatalf("negative seconds: %v", d)
	}
	if d := parseRetryAfter("0"); d != 0 {
		t.Fatalf("zero seconds: %v", d)
	}
}

// TestAPIErrorRetryAfter: a proxying caller (the fleet coordinator) re-emits
// the server's Retry-After hint, so the decoded error must carry it — in
// both the delta-seconds and HTTP-date forms.
func TestAPIErrorRetryAfter(t *testing.T) {
	for _, tc := range []struct {
		header   string
		min, max time.Duration
	}{
		{"3", 3 * time.Second, 3 * time.Second},
		{time.Now().Add(60 * time.Second).UTC().Format(http.TimeFormat), 50 * time.Second, 60 * time.Second},
		{"junk", 0, 0},
	} {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Retry-After", tc.header)
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprint(w, `{"error":"busy","retriable":true}`)
		}))
		c, err := New(Config{BaseURL: ts.URL, MaxAttempts: 1, Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		_, err = c.Get(context.Background(), "/x")
		ts.Close()
		var ae *APIError
		if !errors.As(err, &ae) {
			t.Fatalf("Retry-After %q: err %v", tc.header, err)
		}
		if ae.RetryAfter < tc.min || ae.RetryAfter > tc.max {
			t.Errorf("Retry-After %q: parsed %v, want in [%v, %v]", tc.header, ae.RetryAfter, tc.min, tc.max)
		}
	}
}
