// Package client is the Go client for the dssmemd measurement daemon. It
// wraps net/http with the retry discipline the service's failure model calls
// for: exponential backoff with full jitter, the server's Retry-After hint
// honored as a floor, and retries only for statuses the server marks
// retriable (shed load, degraded dependencies, watchdog kills) — never for
// client errors, whose outcome a retry cannot change.
//
// The daemon's API is idempotent (every measurement is a pure function of
// its query parameters, keyed by content digest server-side), so retrying a
// request that may or may not have executed is always safe.
package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssmem/internal/telemetry"
)

// Config tunes a Client. The zero value of every field has a usable default.
type Config struct {
	// BaseURL is the daemon root, e.g. "http://localhost:8077". Required.
	BaseURL string
	// HTTP is the underlying client; nil means http.DefaultClient.
	HTTP *http.Client
	// MaxAttempts bounds tries per request, first attempt included.
	// 0 means 5; 1 disables retries.
	MaxAttempts int
	// BaseDelay is the cap of the first backoff window (full jitter draws
	// uniformly from [0, cap]). 0 means 100ms.
	BaseDelay time.Duration
	// MaxDelay caps the backoff window growth. 0 means 5s.
	MaxDelay time.Duration
	// Seed makes the jitter deterministic for tests. 0 seeds from the
	// default source behavior (still deterministic per seed value: 0 is a
	// valid seed).
	Seed int64
	// Log, when non-nil, receives one warn line per retry (request ID,
	// attempt, cause) — the client half of making retry storms visible.
	Log *slog.Logger
}

// Client issues GET requests against a dssmemd daemon with retries.
// Safe for concurrent use.
type Client struct {
	cfg Config

	requests atomic.Uint64
	attempts atomic.Uint64
	retries  atomic.Uint64

	mu  sync.Mutex
	rng *rand.Rand
}

// Stats is a snapshot of the client's attempt accounting: Retries much above
// zero relative to Requests means the daemon is shedding or failing and this
// client is part of the storm.
type Stats struct {
	Requests uint64 // Get calls issued
	Attempts uint64 // HTTP attempts sent (>= Requests)
	Retries  uint64 // attempts beyond the first, across all requests
}

// Stats returns the attempt counters accumulated so far.
func (c *Client) Stats() Stats {
	return Stats{
		Requests: c.requests.Load(),
		Attempts: c.attempts.Load(),
		Retries:  c.retries.Load(),
	}
}

// Response is a successful (HTTP 200) daemon reply.
type Response struct {
	Status int
	Header http.Header
	Body   []byte
	// RequestID is the server-confirmed X-Request-ID — the join key into the
	// daemon's logs, /debug/requests and trace files.
	RequestID string
	Attempts  int // total tries spent, >= 1
}

// APIError is a non-200 daemon reply after retries are exhausted (or a
// non-retriable reply, returned immediately).
type APIError struct {
	Status    int
	Msg       string // server's structured "error" field, or raw body
	RequestID string // server's X-Request-ID echo, if any
	Retriable bool
	Attempts  int
	// RetryAfter is the server's parsed Retry-After hint (zero if absent),
	// kept so a proxying caller — the fleet coordinator — can re-emit the
	// hint instead of inventing its own.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.RequestID != "" {
		return fmt.Sprintf("dssmem: server returned %d after %d attempt(s) (req %s): %s", e.Status, e.Attempts, e.RequestID, e.Msg)
	}
	return fmt.Sprintf("dssmem: server returned %d after %d attempt(s): %s", e.Status, e.Attempts, e.Msg)
}

// New builds a Client.
func New(cfg Config) (*Client, error) {
	if cfg.BaseURL == "" {
		return nil, errors.New("client: BaseURL required")
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	if cfg.HTTP == nil {
		cfg.HTTP = http.DefaultClient
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 5
	}
	if cfg.BaseDelay <= 0 {
		cfg.BaseDelay = 100 * time.Millisecond
	}
	if cfg.MaxDelay <= 0 {
		cfg.MaxDelay = 5 * time.Second
	}
	return &Client{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// retriableStatus mirrors the server's taxonomy: overload shedding (429),
// and transient upstream/internal conditions (502, 503, 504). Anything else
// is either success or an error a retry cannot fix.
func retriableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests,
		http.StatusBadGateway,
		http.StatusServiceUnavailable,
		http.StatusGatewayTimeout:
		return true
	}
	return false
}

// Get issues GET path (e.g. "/v1/measure?machine=vclass&query=Q6&procs=4")
// and retries retriable failures until success, a non-retriable failure,
// MaxAttempts, or ctx cancellation — whichever comes first.
func (c *Client) Get(ctx context.Context, path string) (*Response, error) {
	if !strings.HasPrefix(path, "/") {
		path = "/" + path
	}
	url := c.cfg.BaseURL + path
	// One logical request keeps one ID across all its attempts, so the
	// daemon's logs show the retries of a request as one thread. When ctx
	// already carries a tracked request (a fleet coordinator forwarding an
	// API call), its ID is reused so one inbound X-Request-ID stitches every
	// downstream hop into a single distributed trace.
	id := telemetry.NewID()
	if q := telemetry.FromContext(ctx); q != nil && telemetry.CleanID(q.ID) != "" {
		id = q.ID
	}
	c.requests.Add(1)

	var lastErr error
	for attempt := 1; ; attempt++ {
		c.attempts.Add(1)
		if attempt > 1 {
			c.retries.Add(1)
		}
		resp, err := c.once(ctx, url, id, attempt)
		if err == nil && resp.StatusCode == http.StatusOK {
			body, rerr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if rerr == nil {
				rid := resp.Header.Get("X-Request-ID")
				if rid == "" {
					rid = id
				}
				return &Response{Status: resp.StatusCode, Header: resp.Header, Body: body, RequestID: rid, Attempts: attempt}, nil
			}
			// A truncated 200 body is a transport failure: retry.
			err = fmt.Errorf("client: reading response body: %w", rerr)
		}

		var retryAfter time.Duration
		if err != nil {
			// Network-level failure. Retrying is safe because the API is
			// idempotent — except when our own context ended, where retrying
			// only burns time we no longer have.
			if ctx.Err() != nil {
				return nil, fmt.Errorf("client: %w", context.Cause(ctx))
			}
			lastErr = err
		} else {
			apiErr := decodeError(resp, attempt)
			resp.Body.Close()
			if !apiErr.Retriable {
				return nil, apiErr
			}
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"))
			lastErr = apiErr
		}

		if attempt >= c.cfg.MaxAttempts {
			return nil, lastErr
		}
		if c.cfg.Log != nil {
			c.cfg.Log.Warn("retrying", "req", id, "attempt", attempt, "path", path, "cause", lastErr.Error())
		}
		if err := c.sleep(ctx, attempt, retryAfter); err != nil {
			return nil, err
		}
	}
}

func (c *Client) once(ctx context.Context, url, id string, attempt int) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	req.Header.Set("X-Request-ID", id)
	req.Header.Set("X-Request-Attempt", strconv.Itoa(attempt))
	return c.cfg.HTTP.Do(req)
}

// decodeError extracts the server's structured error body
// {"error":..., "retriable":...}; if the body is not that shape (a proxy's
// HTML, a truncated write), it falls back to the status-code taxonomy.
func decodeError(resp *http.Response, attempts int) *APIError {
	ae := &APIError{
		Status:     resp.StatusCode,
		RequestID:  resp.Header.Get("X-Request-ID"),
		Retriable:  retriableStatus(resp.StatusCode),
		Attempts:   attempts,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
	var eb struct {
		Error     string `json:"error"`
		Retriable *bool  `json:"retriable"`
	}
	if json.Unmarshal(body, &eb) == nil && eb.Error != "" {
		ae.Msg = eb.Error
		if eb.Retriable != nil {
			// The server knows its own failure better than the status map.
			ae.Retriable = *eb.Retriable
		}
		return ae
	}
	ae.Msg = strings.TrimSpace(string(body))
	if ae.Msg == "" {
		ae.Msg = http.StatusText(resp.StatusCode)
	}
	return ae
}

// sleep waits for the backoff window before the next attempt: full jitter
// over an exponentially growing cap, with the server's Retry-After as a
// floor (the server's estimate of when capacity frees is better than our
// blind schedule, but jitter still spreads the retrying herd).
func (c *Client) sleep(ctx context.Context, attempt int, retryAfter time.Duration) error {
	cap := c.cfg.BaseDelay << (attempt - 1)
	if cap > c.cfg.MaxDelay || cap <= 0 { // <=0: shift overflow
		cap = c.cfg.MaxDelay
	}
	c.mu.Lock()
	d := time.Duration(c.rng.Int63n(int64(cap) + 1))
	c.mu.Unlock()
	if d < retryAfter {
		d = retryAfter
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("client: %w", context.Cause(ctx))
	}
}

func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if t, err := http.ParseTime(v); err == nil {
		if d := time.Until(t); d > 0 {
			return d
		}
	}
	return 0
}

// MeasureOpt carries the optional knobs of a /v1/measure request. The zero
// value is a plain warm, exact measurement.
type MeasureOpt struct {
	// Trial disambiguates repeated runs of one configuration (the paper
	// averaged four).
	Trial int
	// Cold measures trial 1 of the paper's protocol: cold buffer pool, every
	// first touch paying a simulated disk read.
	Cold bool
	// SampleQuanta > 1 requests SMARTS interval sampling at that period; the
	// server returns an estimated measurement cached under its own digest.
	SampleQuanta int
	// Checkpoint asks the daemon to restore the warmup prelude from a
	// warm-state checkpoint (capturing one if needed). Response bytes are
	// identical either way; only server-side latency changes.
	Checkpoint bool
}

// MeasurePath renders the /v1/measure request path for a configuration —
// one definition of the parameter names shared by every caller.
func MeasurePath(machineName, query string, procs int, o MeasureOpt) string {
	v := url.Values{}
	v.Set("machine", machineName)
	v.Set("query", query)
	v.Set("procs", strconv.Itoa(procs))
	if o.Trial != 0 {
		v.Set("trial", strconv.Itoa(o.Trial))
	}
	if o.Cold {
		v.Set("cold", "1")
	}
	if o.SampleQuanta > 1 {
		v.Set("sample_quanta", strconv.Itoa(o.SampleQuanta))
	}
	if o.Checkpoint {
		v.Set("ckpt", "1")
	}
	return "/v1/measure?" + v.Encode()
}

// Measure requests one measurement with the client's retry discipline.
func (c *Client) Measure(ctx context.Context, machineName, query string, procs int, o MeasureOpt) (*Response, error) {
	return c.Get(ctx, MeasurePath(machineName, query, procs, o))
}
