// Package interconnect models the two machines' interconnection fabrics:
// the HP V-Class hyperplane crossbar (uniform, nonblocking) and the SGI
// Origin 2000 bristled hypercube (hop-count dependent), plus a simple
// fixed-occupancy queueing model for contended resources such as memory
// controllers and hubs.
package interconnect

import (
	"fmt"
	"math/bits"
)

// Network computes message latencies between endpoints (nodes for NUMA
// machines, controllers for the crossbar). All latencies are in CPU cycles of
// the machine that owns the network.
type Network interface {
	// Latency is the one-way latency of a message from src to dst.
	Latency(src, dst int) uint64
	// Endpoints returns the number of addressable endpoints.
	Endpoints() int
	// Name identifies the fabric.
	Name() string
}

// Crossbar is a nonblocking uniform-latency fabric: every endpoint pair costs
// the same. The V-Class hyperplane connects 8 EPACs (16 CPUs) to 8 EMAC
// memory controllers this way.
type Crossbar struct {
	Ports int
	Hop   uint64 // one-way traversal latency in cycles
}

// Latency implements Network; src==dst still crosses the fabric on the
// V-Class (processors never own memory), so the cost is uniform.
func (c Crossbar) Latency(src, dst int) uint64 { return c.Hop }

// Endpoints implements Network.
func (c Crossbar) Endpoints() int { return c.Ports }

// Name implements Network.
func (c Crossbar) Name() string { return fmt.Sprintf("crossbar-%dport", c.Ports) }

// Hypercube is the Origin 2000 bristled hypercube: nodes (each holding two
// CPUs, memory and a hub) sit at the corners of a binary n-cube, and a
// message's hop count is the Hamming distance between node numbers. Local
// references (src==dst) only cross the hub.
type Hypercube struct {
	NodeCount int    // power of two
	HubDelay  uint64 // hub/NI traversal at each end and for local accesses
	HopDelay  uint64 // per router+link hop
}

// NewHypercube validates and returns a hypercube of n nodes.
func NewHypercube(n int, hub, hop uint64) Hypercube {
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("interconnect: hypercube needs power-of-two nodes, got %d", n))
	}
	return Hypercube{NodeCount: n, HubDelay: hub, HopDelay: hop}
}

// Hops returns the router hops between two nodes.
func (h Hypercube) Hops(src, dst int) int { return bits.OnesCount(uint(src ^ dst)) }

// Latency implements Network.
func (h Hypercube) Latency(src, dst int) uint64 {
	return h.HubDelay + uint64(h.Hops(src, dst))*h.HopDelay
}

// Endpoints implements Network.
func (h Hypercube) Endpoints() int { return h.NodeCount }

// Name implements Network.
func (h Hypercube) Name() string { return fmt.Sprintf("hypercube-%dnode", h.NodeCount) }

// AvgRemoteHops returns the mean hop count from a node to the other nodes
// (uniform traffic), a useful calibration number.
func (h Hypercube) AvgRemoteHops() float64 {
	if h.NodeCount <= 1 {
		return 0
	}
	total := 0
	for d := 1; d < h.NodeCount; d++ {
		total += h.Hops(0, d)
	}
	return float64(total) / float64(h.NodeCount-1)
}

// Server models a contended resource (memory bank, directory controller,
// hub) with fixed per-request occupancy. Because the execution-driven
// simulation replays each process's requests in quantum-sized batches,
// arrival timestamps are only approximately ordered, so a literal FIFO
// reservation would charge the scheduling skew as queueing. Instead the
// server estimates its utilization from an exponentially weighted moving
// average of inter-arrival gaps and charges the M/D/1 mean queueing delay
// Wq = s·ρ/(2(1−ρ)) — order-insensitive, deterministic, and smooth in the
// offered load.
type Server struct {
	Occupancy uint64 // cycles each request holds the resource

	last   uint64
	avgGap float64 // EWMA of inter-arrival gap in cycles

	// Stats
	Requests  uint64
	Waits     uint64 // requests that saw a nonzero queueing delay
	TotalWait uint64 // total queueing cycles
}

// serverAlpha is the EWMA smoothing factor for inter-arrival gaps.
const serverAlpha = 0.05

// maxRho caps estimated utilization so delays stay finite under saturation.
const maxRho = 0.95

// Serve records a request arriving at time now and returns its queueing
// delay in cycles.
func (s *Server) Serve(now uint64) uint64 {
	s.Requests++
	if s.Requests == 1 {
		s.last = now
		return 0
	}
	gap := float64(now) - float64(s.last)
	if gap < 0 {
		gap = -gap // quantum skew: treat as the magnitude
	}
	if gap < 1 {
		gap = 1
	}
	s.last = now
	if s.avgGap == 0 {
		s.avgGap = gap
	} else {
		s.avgGap += serverAlpha * (gap - s.avgGap)
	}
	rho := float64(s.Occupancy) / s.avgGap
	if rho > maxRho {
		rho = maxRho
	}
	wait := uint64(float64(s.Occupancy)*rho/(2*(1-rho)) + 0.5)
	if wait > 0 {
		s.Waits++
		s.TotalWait += wait
	}
	return wait
}

// PredictWait returns the queueing delay a request would be charged under the
// current utilization estimate, without recording an arrival. The parallel
// simulator's bound phase charges this frozen-estimator delay for requests it
// logs; the weave phase then replays each arrival through Serve, which is
// when the estimator actually evolves. It differs from the Serve result by at
// most one EWMA step of the gap average.
func (s *Server) PredictWait() uint64 {
	if s.Requests == 0 || s.avgGap == 0 {
		return 0
	}
	rho := float64(s.Occupancy) / s.avgGap
	if rho > maxRho {
		rho = maxRho
	}
	return uint64(float64(s.Occupancy)*rho/(2*(1-rho)) + 0.5)
}

// Utilization reports the current estimated load (0..1).
func (s *Server) Utilization() float64 {
	if s.avgGap == 0 {
		return 0
	}
	rho := float64(s.Occupancy) / s.avgGap
	if rho > 1 {
		rho = 1
	}
	return rho
}

// Reset clears estimator state but keeps configuration.
func (s *Server) Reset() {
	s.last, s.avgGap = 0, 0
	s.Requests, s.Waits, s.TotalWait = 0, 0, 0
}
