package interconnect

import (
	"testing"
	"testing/quick"
)

func TestCrossbarUniform(t *testing.T) {
	xb := Crossbar{Ports: 8, Hop: 12}
	for s := 0; s < 8; s++ {
		for d := 0; d < 8; d++ {
			if xb.Latency(s, d) != 12 {
				t.Fatalf("latency(%d,%d) = %d", s, d, xb.Latency(s, d))
			}
		}
	}
	if xb.Endpoints() != 8 || xb.Name() == "" {
		t.Fatal("metadata broken")
	}
}

func TestHypercubeHops(t *testing.T) {
	h := NewHypercube(16, 5, 10)
	cases := []struct{ s, d, hops int }{
		{0, 0, 0}, {0, 1, 1}, {0, 3, 2}, {0, 15, 4}, {5, 10, 4}, {7, 8, 4},
	}
	for _, c := range cases {
		if got := h.Hops(c.s, c.d); got != c.hops {
			t.Errorf("hops(%d,%d) = %d, want %d", c.s, c.d, got, c.hops)
		}
		want := 5 + uint64(c.hops)*10
		if got := h.Latency(c.s, c.d); got != want {
			t.Errorf("latency(%d,%d) = %d, want %d", c.s, c.d, got, want)
		}
	}
}

func TestHypercubeLocalCheaperThanRemote(t *testing.T) {
	h := NewHypercube(16, 5, 10)
	if h.Latency(3, 3) >= h.Latency(3, 2) {
		t.Fatal("local access must be cheaper than any remote")
	}
}

func TestHypercubeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-power-of-two")
		}
	}()
	NewHypercube(12, 1, 1)
}

func TestAvgRemoteHops(t *testing.T) {
	h := NewHypercube(16, 0, 1)
	// For a 4-cube, average Hamming distance to the 15 other nodes is
	// sum(k * C(4,k))/15 = 32/15.
	want := 32.0 / 15.0
	if got := h.AvgRemoteHops(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("avg hops = %v, want %v", got, want)
	}
	if NewHypercube(1, 0, 1).AvgRemoteHops() != 0 {
		t.Fatal("single node has no remote hops")
	}
}

// Property: hypercube latency is a metric-like function: symmetric, zero
// extra cost iff same node.
func TestHypercubeSymmetry(t *testing.T) {
	h := NewHypercube(32, 7, 9)
	f := func(a, b uint8) bool {
		s, d := int(a%32), int(b%32)
		if h.Latency(s, d) != h.Latency(d, s) {
			return false
		}
		if s == d {
			return h.Latency(s, d) == h.HubDelay
		}
		return h.Latency(s, d) > h.HubDelay
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerLightLoadNoQueueing(t *testing.T) {
	s := &Server{Occupancy: 10}
	var total uint64
	now := uint64(0)
	for i := 0; i < 200; i++ {
		now += 1000 // gaps 100x the occupancy
		total += s.Serve(now)
	}
	if total > 20 {
		t.Fatalf("light load queued %d cycles", total)
	}
	if s.Requests != 200 {
		t.Fatalf("requests = %d", s.Requests)
	}
}

func TestServerHeavyLoadQueues(t *testing.T) {
	s := &Server{Occupancy: 10}
	now := uint64(0)
	var last uint64
	for i := 0; i < 500; i++ {
		now += 12 // near saturation
		last = s.Serve(now)
	}
	if last == 0 || s.TotalWait == 0 {
		t.Fatal("heavy load produced no queueing")
	}
	if s.Utilization() < 0.5 {
		t.Fatalf("utilization = %v", s.Utilization())
	}
}

func TestServerDelayMonotoneInLoad(t *testing.T) {
	delayAt := func(gap uint64) uint64 {
		s := &Server{Occupancy: 10}
		now := uint64(0)
		var d uint64
		for i := 0; i < 500; i++ {
			now += gap
			d = s.Serve(now)
		}
		return d
	}
	if !(delayAt(15) > delayAt(40) && delayAt(40) >= delayAt(400)) {
		t.Fatalf("delays not monotone: %d %d %d", delayAt(15), delayAt(40), delayAt(400))
	}
}

func TestServerOrderInsensitive(t *testing.T) {
	// Interleaved out-of-order arrivals (quantum skew) must not produce
	// delays wildly different from the ordered equivalent.
	ordered := &Server{Occupancy: 10}
	skewed := &Server{Occupancy: 10}
	var totOrd, totSkew uint64
	for i := 0; i < 400; i++ {
		totOrd += ordered.Serve(uint64(i) * 100)
	}
	for i := 0; i < 200; i++ { // two processes, one 5000 cycles behind
		totSkew += skewed.Serve(uint64(i)*200 + 5000)
		totSkew += skewed.Serve(uint64(i) * 200)
	}
	if totSkew > 50*totOrd+1000 {
		t.Fatalf("skew inflated queueing: %d vs %d", totSkew, totOrd)
	}
}

func TestServerSaturationBounded(t *testing.T) {
	s := &Server{Occupancy: 100}
	var d uint64
	for i := 0; i < 1000; i++ {
		d = s.Serve(5) // all at the same instant
	}
	// M/D/1 at the 0.95 cap: 100*0.95/(2*0.05) = 950.
	if d > 1000 {
		t.Fatalf("saturated delay %d not capped", d)
	}
}

func TestServerReset(t *testing.T) {
	s := &Server{Occupancy: 10}
	for i := 0; i < 100; i++ {
		s.Serve(uint64(i * 11))
	}
	s.Reset()
	if s.Requests != 0 || s.Utilization() != 0 {
		t.Fatal("reset incomplete")
	}
	if w := s.Serve(0); w != 0 {
		t.Fatalf("first request after reset waited %d", w)
	}
}

// Property: total wait equals the sum of per-request waits and waits never
// exceed requests.
func TestServerAccounting(t *testing.T) {
	f := func(arrivals []uint16) bool {
		s := &Server{Occupancy: 7}
		var sum uint64
		now := uint64(0)
		for _, a := range arrivals {
			now += uint64(a % 20)
			sum += s.Serve(now)
		}
		return sum == s.TotalWait && s.Waits <= s.Requests
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
