// Package ckpt serializes warm-state checkpoints: the deterministic state a
// run holds at the measured-region boundary (generated TPC-H data plus the
// loaded database image), so figure runs restore the warmup prelude instead
// of rebuilding it. Snapshots are stored content-addressed in
// internal/rescache under their own namespace; this package owns the key
// derivation and the versioned, byte-deterministic encoding.
//
// The format is a fixed header (magic, version) over a DEFLATE-compressed
// little-endian body. Encoding the same snapshot always yields the same
// bytes; Decode never panics on arbitrary input (FuzzDecode) and bounds every
// allocation by the bytes actually present, so a truncated or hostile frame
// fails fast instead of ballooning memory.
package ckpt

import (
	"bufio"
	"bytes"
	"compress/flate"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"dssmem/internal/db/engine"
	"dssmem/internal/db/storage"
	"dssmem/internal/tpch"
)

// magic identifies a snapshot stream; the trailing digit is the format
// generation (bump with snapshotVersion on incompatible changes).
const magic = "dssmemW1"

// snapshotVersion versions the body layout.
const snapshotVersion = 1

// keySchema versions the key derivation; bump when the warm state's identity
// inputs change so stale snapshots miss instead of restoring a different
// prelude.
const keySchema = 1

// maxString bounds decoded string lengths (names are short identifiers).
const maxString = 1 << 16

// maxBody bounds the decompressed body size (1 GiB), so a crafted
// decompression bomb fails with an error instead of exhausting memory. The
// largest preset's snapshot is orders of magnitude below this.
const maxBody = 1 << 30

// Key identifies one warm state: the dataset generator inputs plus the two
// knobs that shape the shared-memory image. Everything else about a run —
// machine spec, OS config, query, process count, trial — does not influence
// the warmup prelude (the load runs through storage.NullMem, before the
// machine model exists), so it is deliberately excluded: one snapshot serves
// both machines and every measured-region configuration.
type Key struct {
	Schema         int     `json:"schema"`
	SF             float64 `json:"sf"`
	Seed           uint64  `json:"seed"`
	PoolPages      int     `json:"pool_pages"`
	BufHeaderBytes int     `json:"buf_header_bytes"`
}

// KeyFor derives the warm-state key for a dataset and a buffer-header stride
// (0 means the engine default, normalized here so equivalent runs share a
// snapshot).
func KeyFor(sf float64, seed uint64, data *tpch.Data, bufHeaderBytes int) Key {
	if bufHeaderBytes <= 0 {
		bufHeaderBytes = engine.DefaultBufHeaderBytes
	}
	return Key{
		Schema:         keySchema,
		SF:             sf,
		Seed:           seed,
		PoolPages:      tpch.PoolPagesFor(data),
		BufHeaderBytes: bufHeaderBytes,
	}
}

// Digest returns the key's content address (hex SHA-256 of the canonical
// JSON, same shape rescache digests take).
func (k Key) Digest() string {
	b, err := json.Marshal(k)
	if err != nil {
		// Plain numbers; cannot fail short of memory corruption.
		panic(fmt.Sprintf("ckpt: key digest: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Snapshot is one warm state: the generated data (needed for answer
// validation and reference digests) and the loaded database image.
type Snapshot struct {
	Data  *tpch.Data
	Image *engine.Image
}

// Encode serializes the snapshot deterministically.
func (s *Snapshot) Encode() []byte {
	var out bytes.Buffer
	out.WriteString(magic)
	var hdr [2]byte
	binary.LittleEndian.PutUint16(hdr[:], snapshotVersion)
	out.Write(hdr[:])
	// BestSpeed keeps capture cheap; pool pages of fixed-width tuples
	// compress well at any level, which matters for the fleet's 8 MB
	// peer-fill body cap.
	zw, err := flate.NewWriter(&out, flate.BestSpeed)
	if err != nil {
		panic(fmt.Sprintf("ckpt: flate: %v", err)) // invalid level only
	}
	w := &writer{w: bufio.NewWriter(zw)}
	s.encodeBody(w)
	if err := w.w.Flush(); err != nil {
		panic(fmt.Sprintf("ckpt: encode: %v", err)) // bytes.Buffer cannot fail
	}
	if err := zw.Close(); err != nil {
		panic(fmt.Sprintf("ckpt: encode: %v", err))
	}
	return out.Bytes()
}

func (s *Snapshot) encodeBody(w *writer) {
	d := s.Data
	w.u64(math.Float64bits(d.SF))
	w.u32(uint32(len(d.Lineitem)))
	for i := range d.Lineitem {
		l := &d.Lineitem[i]
		w.u64(uint64(l.OrderKey))
		w.u64(uint64(l.SuppKey))
		w.u64(uint64(l.Quantity))
		w.u64(uint64(l.ExtendedPrice))
		w.u64(uint64(l.Discount))
		w.u32(uint32(l.ShipDate))
		w.u32(uint32(l.CommitDate))
		w.u32(uint32(l.ReceiptDate))
		w.u32(uint32(l.ShipMode))
		w.u32(uint32(l.LineNumber))
	}
	w.u32(uint32(len(d.Orders)))
	for i := range d.Orders {
		o := &d.Orders[i]
		w.u64(uint64(o.OrderKey))
		w.u32(uint32(o.OrderStatus))
		w.u32(uint32(o.OrderDate))
		w.u32(uint32(o.Priority))
	}
	w.u32(uint32(len(d.Suppliers)))
	for i := range d.Suppliers {
		s := &d.Suppliers[i]
		w.u64(uint64(s.SuppKey))
		w.u32(uint32(s.NationKey))
	}
	w.u32(uint32(len(d.Nations)))
	for _, n := range d.Nations {
		w.u32(uint32(n))
	}

	img := s.Image
	w.u32(uint32(img.PoolPages))
	w.u32(uint32(img.BufHeaderBytes))
	w.u64(img.SharedBytes)
	w.u32(uint32(len(img.Kinds)))
	for _, k := range img.Kinds {
		w.w.WriteByte(byte(k))
	}
	w.w.Write(img.PoolData)
	w.u32(uint32(len(img.Rels)))
	for _, r := range img.Rels {
		w.str(r.Name)
		w.u32(uint32(len(r.Cols)))
		for _, c := range r.Cols {
			w.str(c.Name)
			w.w.WriteByte(byte(c.Width))
		}
		w.u32(uint32(len(r.Pages)))
		for _, pg := range r.Pages {
			w.u32(uint32(pg))
		}
		w.u32(uint32(r.Count))
		w.u32(uint32(len(r.Indexes)))
		for _, ix := range r.Indexes {
			w.str(ix.Name)
			w.u32(uint32(ix.Root))
			w.u32(uint32(ix.Size))
		}
	}
}

// Decode parses a snapshot. It returns an error — never panics — on
// truncated, corrupt or hostile input, and its allocations grow only with
// bytes actually present in the stream (a count field cannot force a large
// allocation on its own).
func Decode(b []byte) (*Snapshot, error) {
	if len(b) < len(magic)+2 {
		return nil, fmt.Errorf("ckpt: snapshot too short (%d bytes)", len(b))
	}
	if string(b[:len(magic)]) != magic {
		return nil, fmt.Errorf("ckpt: bad magic")
	}
	if v := binary.LittleEndian.Uint16(b[len(magic):]); v != snapshotVersion {
		return nil, fmt.Errorf("ckpt: snapshot version %d (want %d)", v, snapshotVersion)
	}
	zr := flate.NewReader(bytes.NewReader(b[len(magic)+2:]))
	r := &reader{r: bufio.NewReader(&io.LimitedReader{R: zr, N: maxBody})}
	s, err := decodeBody(r)
	if err != nil {
		return nil, err
	}
	if _, err := r.r.ReadByte(); err != io.EOF {
		return nil, fmt.Errorf("ckpt: trailing bytes after snapshot body")
	}
	return s, nil
}

func decodeBody(r *reader) (*Snapshot, error) {
	d := &tpch.Data{SF: math.Float64frombits(r.u64())}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		d.Lineitem = append(d.Lineitem, tpch.LineItem{
			OrderKey:      int64(r.u64()),
			SuppKey:       int64(r.u64()),
			Quantity:      int64(r.u64()),
			ExtendedPrice: int64(r.u64()),
			Discount:      int64(r.u64()),
			ShipDate:      int32(r.u32()),
			CommitDate:    int32(r.u32()),
			ReceiptDate:   int32(r.u32()),
			ShipMode:      int32(r.u32()),
			LineNumber:    int32(r.u32()),
		})
	}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		d.Orders = append(d.Orders, tpch.Order{
			OrderKey:    int64(r.u64()),
			OrderStatus: int32(r.u32()),
			OrderDate:   int32(r.u32()),
			Priority:    int32(r.u32()),
		})
	}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		d.Suppliers = append(d.Suppliers, tpch.Supplier{
			SuppKey:   int64(r.u64()),
			NationKey: int32(r.u32()),
		})
	}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		d.Nations = append(d.Nations, int32(r.u32()))
	}

	img := &engine.Image{
		PoolPages:      int(int32(r.u32())),
		BufHeaderBytes: int(int32(r.u32())),
		SharedBytes:    r.u64(),
	}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		img.Kinds = append(img.Kinds, storage.PageKind(r.byte()))
	}
	// Pool bytes: size is implied by the kinds count, but the allocation is
	// fed by io.CopyN from the stream, so a lying count hits EOF after the
	// bytes that exist instead of reserving the claimed size up front.
	want := int64(len(img.Kinds)) * storage.PageSize
	if r.err == nil && want > 0 {
		var pool bytes.Buffer
		got, err := io.CopyN(&pool, r.r, want)
		if err != nil || got != want {
			return nil, fmt.Errorf("ckpt: truncated pool image (%d of %d bytes)", got, want)
		}
		img.PoolData = pool.Bytes()
	}
	for n := r.u32(); n > 0 && r.err == nil; n-- {
		rel := engine.RelImage{Name: r.str()}
		for c := r.u32(); c > 0 && r.err == nil; c-- {
			rel.Cols = append(rel.Cols, storage.Column{Name: r.str(), Width: int(r.byte())})
		}
		for p := r.u32(); p > 0 && r.err == nil; p-- {
			rel.Pages = append(rel.Pages, int(int32(r.u32())))
		}
		rel.Count = int(int32(r.u32()))
		for i := r.u32(); i > 0 && r.err == nil; i-- {
			rel.Indexes = append(rel.Indexes, engine.IndexImage{
				Name: r.str(),
				Root: int(int32(r.u32())),
				Size: int(int32(r.u32())),
			})
		}
		img.Rels = append(img.Rels, rel)
	}
	if r.err != nil {
		return nil, fmt.Errorf("ckpt: truncated snapshot: %w", r.err)
	}
	return &Snapshot{Data: d, Image: img}, nil
}

// writer emits little-endian primitives to a buffered stream. The underlying
// bytes.Buffer cannot fail, so errors are not threaded.
type writer struct{ w *bufio.Writer }

func (w *writer) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.w.Write(b[:])
}

func (w *writer) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	w.w.Write(b[:])
}

func (w *writer) str(s string) {
	if len(s) > maxString {
		s = s[:maxString] // names are short identifiers; never hit in practice
	}
	w.u32(uint32(len(s)))
	w.w.WriteString(s)
}

// reader consumes little-endian primitives, latching the first error: after
// it every read returns zero values, so decode loops terminate.
type reader struct {
	r   *bufio.Reader
	err error
}

func (r *reader) read(b []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, b); err != nil {
		r.err = err
	}
}

func (r *reader) byte() byte {
	var b [1]byte
	r.read(b[:])
	return b[0]
}

func (r *reader) u32() uint32 {
	var b [4]byte
	r.read(b[:])
	return binary.LittleEndian.Uint32(b[:])
}

func (r *reader) u64() uint64 {
	var b [8]byte
	r.read(b[:])
	return binary.LittleEndian.Uint64(b[:])
}

func (r *reader) str() string {
	n := r.u32()
	if r.err != nil {
		return ""
	}
	if n > maxString {
		r.err = fmt.Errorf("string length %d exceeds limit %d", n, maxString)
		return ""
	}
	b := make([]byte, n)
	r.read(b)
	return string(b)
}
