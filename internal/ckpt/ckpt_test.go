package ckpt_test

import (
	"bytes"
	"reflect"
	"testing"

	"dssmem/internal/ckpt"
	"dssmem/internal/db/engine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

func testSnapshot(t testing.TB) *ckpt.Snapshot {
	t.Helper()
	data := tpch.Generate(0.002, 7)
	img, err := workload.CaptureWarm(workload.Options{Data: data})
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	return &ckpt.Snapshot{Data: data, Image: img}
}

func TestSnapshotRoundTrip(t *testing.T) {
	snap := testSnapshot(t)
	b := snap.Encode()
	got, err := ckpt.Decode(b)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !reflect.DeepEqual(got.Data, snap.Data) {
		t.Fatalf("decoded data differs from original")
	}
	if !reflect.DeepEqual(got.Image, snap.Image) {
		t.Fatalf("decoded image differs from original")
	}

	// The restored database must accept the decoded image: FromImage
	// revalidates every structural claim.
	cfg := engine.Config{PoolPages: tpch.PoolPagesFor(got.Data)}
	if _, err := engine.FromImage(got.Image, cfg); err != nil {
		t.Fatalf("restore from decoded image: %v", err)
	}
}

func TestSnapshotEncodeDeterministic(t *testing.T) {
	snap := testSnapshot(t)
	a, b := snap.Encode(), snap.Encode()
	if !bytes.Equal(a, b) {
		t.Fatalf("two encodings of the same snapshot differ (%d vs %d bytes)", len(a), len(b))
	}
}

func TestDecodeCorruptNeverPanics(t *testing.T) {
	good := testSnapshot(t).Encode()

	// Truncations at every region of the stream.
	for _, n := range []int{0, 1, 5, len(good) / 4, len(good) / 2, len(good) - 1} {
		if _, err := ckpt.Decode(good[:n]); err == nil {
			t.Errorf("truncation to %d bytes: want error, got nil", n)
		}
	}
	// Bit flips sprinkled through header and body.
	for _, off := range []int{0, 7, 8, 9, 10, 16, 64, len(good) / 2, len(good) - 2} {
		if off >= len(good) {
			continue
		}
		bad := append([]byte(nil), good...)
		bad[off] ^= 0xff
		snap, err := ckpt.Decode(bad)
		// A flip deep in compressed data may survive decode; it must never
		// panic, and a successful decode must still be structurally sane
		// enough that FromImage catches layout lies (exercised elsewhere).
		_ = snap
		_ = err
	}
	// Arbitrary garbage.
	if _, err := ckpt.Decode([]byte("not a snapshot at all")); err == nil {
		t.Errorf("garbage input: want error, got nil")
	}
	if _, err := ckpt.Decode(nil); err == nil {
		t.Errorf("nil input: want error, got nil")
	}
}

func TestKeyDigest(t *testing.T) {
	data := tpch.Generate(0.002, 7)
	base := ckpt.KeyFor(0.002, 7, data, 0)
	if base.Digest() != ckpt.KeyFor(0.002, 7, data, 0).Digest() {
		t.Fatalf("key digest not stable")
	}
	// 0 normalizes to the engine default: equivalent runs share a snapshot.
	if base.Digest() != ckpt.KeyFor(0.002, 7, data, engine.DefaultBufHeaderBytes).Digest() {
		t.Fatalf("default buffer-header size not normalized into key")
	}
	distinct := map[string]string{
		"seed":   ckpt.KeyFor(0.002, 8, data, 0).Digest(),
		"sf":     ckpt.KeyFor(0.004, 7, data, 0).Digest(),
		"bufhdr": ckpt.KeyFor(0.002, 7, data, 64).Digest(),
	}
	for what, d := range distinct {
		if d == base.Digest() {
			t.Errorf("changing %s does not change key digest", what)
		}
	}
}

func FuzzDecode(f *testing.F) {
	data := tpch.Generate(0.001, 3)
	img, err := workload.CaptureWarm(workload.Options{Data: data})
	if err != nil {
		f.Fatalf("capture: %v", err)
	}
	snap := &ckpt.Snapshot{Data: data, Image: img}
	f.Add(snap.Encode())
	f.Add([]byte("dssmemW1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, b []byte) {
		// Must never panic and never allocate unboundedly; errors are fine.
		s, err := ckpt.Decode(b)
		if err == nil && s == nil {
			t.Fatal("nil snapshot without error")
		}
	})
}
