// Package core is the paper's primary contribution as a library: the
// cross-platform memory-system characterization of DSS workloads. It turns
// raw workload runs into the metrics the paper reports (thread time, CPI,
// miss rates and classes, memory latency, context-switch rates), organizes
// them into the figure series of the evaluation, and provides the comparison
// operators ("who wins, by how much, where does it cross over") that the
// paper's analysis is built on.
package core

import (
	"fmt"
	"math"

	"dssmem/internal/workload"
)

// Measurement is one experimental cell: one machine, one query, one degree of
// multiprogramming — averaged over processes, exactly as the paper plots one
// bar per configuration.
type Measurement struct {
	Machine   string
	ClockMHz  int
	Query     string
	Processes int

	ThreadCycles    float64 // mean thread time in cycles (Fig. 2)
	WallSeconds     float64 // mean wall time in seconds
	Instructions    float64 // mean retired instructions
	CPI             float64 // Fig. 3
	CyclesPerMInstr float64 // Figs. 5 and 7

	L1Misses     float64 // mean absolute D-cache misses (Fig. 4)
	L2Misses     float64 // zero on single-level machines
	L1MissesPerM float64 // Fig. 8
	L2MissesPerM float64 // Fig. 6
	L1MissRate   float64 // misses per data reference

	ColdFraction      float64 // share of misses that are cold
	CapacityFraction  float64 // share that are capacity/conflict
	CoherenceFraction float64 // share that are communication (Fig. 6 discussion)

	MemLatencyCycles float64 // Fig. 9 (average open-request latency)
	MemLatencyMicros float64

	VolPerM   float64 // voluntary context switches / 1M instr (Fig. 10)
	InvolPerM float64 // involuntary switches / 1M instr (Fig. 10)

	LockBackoffs  float64 // mean select() back-offs per process
	Dirty3HopPerM float64 // dirty remote interventions / 1M instr
	SpinsPerM     float64
}

// FromStats derives a Measurement from a workload run.
func FromStats(st *workload.Stats) Measurement {
	c := st.MeanCounters()
	m := Measurement{
		Machine:   st.MachineName,
		ClockMHz:  st.ClockMHz,
		Query:     st.Query.String(),
		Processes: st.Processes,

		ThreadCycles: st.MeanThreadCycles(),
		WallSeconds:  st.MeanWallSeconds(),
		Instructions: float64(c.Instructions),
		CPI:          c.CPI(),

		L1Misses:     float64(c.L1DMisses),
		L2Misses:     float64(c.L2DMisses),
		L1MissesPerM: c.PerMillionInstr(c.L1DMisses),
		L2MissesPerM: c.PerMillionInstr(c.L2DMisses),

		MemLatencyCycles: c.AvgMemLatency(),
		VolPerM:          c.PerMillionInstr(c.VolCtxSwitches),
		InvolPerM:        c.PerMillionInstr(c.InvolCtxSwitches),
		LockBackoffs:     float64(c.LockBackoffs),
		Dirty3HopPerM:    c.PerMillionInstr(c.Dirty3HopMisses),
		SpinsPerM:        c.PerMillionInstr(c.SpinIterations),
	}
	if c.Instructions > 0 {
		m.CyclesPerMInstr = float64(c.Cycles) / float64(c.Instructions) * 1e6
	}
	if refs := c.Loads + c.Stores; refs > 0 {
		m.L1MissRate = float64(c.L1DMisses) / float64(refs)
	}
	if total := c.ColdMisses + c.CapacityMisses + c.CoherenceMisses; total > 0 {
		m.ColdFraction = float64(c.ColdMisses) / float64(total)
		m.CapacityFraction = float64(c.CapacityMisses) / float64(total)
		m.CoherenceFraction = float64(c.CoherenceMisses) / float64(total)
	}
	if st.ClockMHz > 0 {
		m.MemLatencyMicros = m.MemLatencyCycles / float64(st.ClockMHz)
	}
	return m
}

// OuterMisses returns the misses of the outermost cache level — the level
// whose misses go to memory (L2 on the Origin, the D-cache on the V-Class).
func (m Measurement) OuterMisses() float64 {
	if m.L2Misses > 0 {
		return m.L2Misses
	}
	return m.L1Misses
}

// Series is one machine/query curve over process counts (one line of Figs.
// 5–10).
type Series struct {
	Machine string
	Query   string
	Points  []Measurement // ascending process counts
}

// Growth returns metric(last)/metric(first) for the chosen metric.
func (s Series) Growth(metric func(Measurement) float64) float64 {
	if len(s.Points) < 2 {
		return 1
	}
	first := metric(s.Points[0])
	if first == 0 {
		return math.Inf(1)
	}
	return metric(s.Points[len(s.Points)-1]) / first
}

// At returns the point with the given process count (nil if absent).
func (s Series) At(procs int) *Measurement {
	for i := range s.Points {
		if s.Points[i].Processes == procs {
			return &s.Points[i]
		}
	}
	return nil
}

// Comparison captures "who wins by how much" between two measurements of the
// same workload on different machines.
type Comparison struct {
	A, B   Measurement
	Metric string
	// Ratio is metric(A)/metric(B); < 1 means A wins (lower is better for
	// every metric the paper compares).
	Ratio float64
}

// Compare builds a Comparison for a metric extractor.
func Compare(a, b Measurement, name string, metric func(Measurement) float64) Comparison {
	mb := metric(b)
	r := math.Inf(1)
	if mb != 0 {
		r = metric(a) / mb
	}
	return Comparison{A: a, B: b, Metric: name, Ratio: r}
}

// Winner names the machine with the lower metric ("tie" within 5%).
func (c Comparison) Winner() string {
	switch {
	case c.Ratio < 0.95:
		return c.A.Machine
	case c.Ratio > 1.05:
		return c.B.Machine
	default:
		return "tie"
	}
}

// Crossover scans two aligned series and returns the first process count at
// which the winner flips relative to the first point, or 0 if none.
func Crossover(a, b Series, metric func(Measurement) float64) int {
	n := len(a.Points)
	if len(b.Points) < n {
		n = len(b.Points)
	}
	if n == 0 {
		return 0
	}
	firstAWins := metric(a.Points[0]) <= metric(b.Points[0])
	for i := 1; i < n; i++ {
		if (metric(a.Points[i]) <= metric(b.Points[i])) != firstAWins {
			return a.Points[i].Processes
		}
	}
	return 0
}

// Metric extractors for the paper's figures.
var (
	MetricThreadCycles = func(m Measurement) float64 { return m.ThreadCycles }
	MetricCPI          = func(m Measurement) float64 { return m.CPI }
	MetricCyclesPerM   = func(m Measurement) float64 { return m.CyclesPerMInstr }
	MetricL1PerM       = func(m Measurement) float64 { return m.L1MissesPerM }
	MetricL2PerM       = func(m Measurement) float64 { return m.L2MissesPerM }
	MetricMemLatency   = func(m Measurement) float64 { return m.MemLatencyCycles }
	MetricVolPerM      = func(m Measurement) float64 { return m.VolPerM }
)

// QueryClass is the paper's taxonomy of the three queries.
type QueryClass int

// Query classes per §2.2 of the paper.
const (
	Sequential QueryClass = iota // Q6: one sequential scan
	Indexed                      // Q21: dominated by index scans
	Mixed                        // Q12: sequential scan + index probes
)

// String implements fmt.Stringer.
func (qc QueryClass) String() string {
	switch qc {
	case Sequential:
		return "sequential"
	case Indexed:
		return "indexed"
	case Mixed:
		return "mixed"
	}
	return fmt.Sprintf("QueryClass(%d)", int(qc))
}

// ClassOf returns the paper's classification of a query by name.
func ClassOf(query string) QueryClass {
	switch query {
	case "Q21":
		return Indexed
	case "Q12":
		return Mixed
	default:
		return Sequential
	}
}
