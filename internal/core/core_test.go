package core

import (
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

func measurementFixture(t *testing.T, q tpch.QueryID, procs int) Measurement {
	t.Helper()
	data := tpch.Generate(0.002, 7)
	st, err := workload.Run(workload.Options{
		Spec: machine.VClassSpec(16, 256), Data: data, Query: q,
		Processes: procs, OSTimeScale: 256,
	})
	if err != nil {
		t.Fatal(err)
	}
	return FromStats(st)
}

func TestFromStatsDerivedFields(t *testing.T) {
	m := measurementFixture(t, tpch.Q6, 2)
	if m.Machine != "HP V-Class" || m.Query != "Q6" || m.Processes != 2 {
		t.Fatalf("identity: %+v", m)
	}
	if m.CPI <= 1 || m.CyclesPerMInstr <= 1e6 {
		t.Fatalf("cycle metrics: CPI=%v c/M=%v", m.CPI, m.CyclesPerMInstr)
	}
	if m.L1MissesPerM <= 0 || m.L1MissRate <= 0 || m.L1MissRate > 1 {
		t.Fatalf("miss metrics: %v %v", m.L1MissesPerM, m.L1MissRate)
	}
	sum := m.ColdFraction + m.CapacityFraction + m.CoherenceFraction
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("miss class fractions sum to %v", sum)
	}
	if m.MemLatencyMicros <= 0 || m.MemLatencyCycles/m.MemLatencyMicros != 200 {
		t.Fatalf("latency conversion: %v cycles, %v us", m.MemLatencyCycles, m.MemLatencyMicros)
	}
	if m.WallSeconds <= 0 {
		t.Fatal("wall seconds missing")
	}
}

func TestOuterMisses(t *testing.T) {
	single := Measurement{L1Misses: 10}
	if single.OuterMisses() != 10 {
		t.Fatal("single-level outer misses")
	}
	two := Measurement{L1Misses: 10, L2Misses: 3}
	if two.OuterMisses() != 3 {
		t.Fatal("two-level outer misses")
	}
}

func TestSeriesHelpers(t *testing.T) {
	s := Series{Points: []Measurement{
		{Processes: 1, CPI: 1.0},
		{Processes: 2, CPI: 1.2},
		{Processes: 4, CPI: 1.5},
	}}
	if g := s.Growth(MetricCPI); g != 1.5 {
		t.Fatalf("growth = %v", g)
	}
	if s.At(2) == nil || s.At(2).CPI != 1.2 {
		t.Fatal("At broken")
	}
	if s.At(3) != nil {
		t.Fatal("At should miss")
	}
	empty := Series{}
	if empty.Growth(MetricCPI) != 1 {
		t.Fatal("empty growth should be 1")
	}
}

func TestComparisonWinner(t *testing.T) {
	a := Measurement{Machine: "A", CPI: 1.0}
	b := Measurement{Machine: "B", CPI: 2.0}
	c := Compare(a, b, "CPI", MetricCPI)
	if c.Ratio != 0.5 || c.Winner() != "A" {
		t.Fatalf("comparison: %+v winner %s", c, c.Winner())
	}
	tie := Compare(a, Measurement{Machine: "B", CPI: 1.01}, "CPI", MetricCPI)
	if tie.Winner() != "tie" {
		t.Fatalf("tie detection: %s", tie.Winner())
	}
	rev := Compare(b, a, "CPI", MetricCPI)
	if rev.Winner() != "A" {
		t.Fatalf("reverse winner: %s", rev.Winner())
	}
}

func TestCrossover(t *testing.T) {
	a := Series{Points: []Measurement{
		{Processes: 1, CPI: 1.0}, {Processes: 2, CPI: 1.5}, {Processes: 4, CPI: 2.5},
	}}
	b := Series{Points: []Measurement{
		{Processes: 1, CPI: 1.2}, {Processes: 2, CPI: 1.4}, {Processes: 4, CPI: 1.6},
	}}
	if x := Crossover(a, b, MetricCPI); x != 2 {
		t.Fatalf("crossover at %d, want 2", x)
	}
	if x := Crossover(a, a, MetricCPI); x != 0 {
		t.Fatal("identical series cannot cross")
	}
	if Crossover(Series{}, Series{}, MetricCPI) != 0 {
		t.Fatal("empty series")
	}
}

func TestQueryClassification(t *testing.T) {
	if ClassOf("Q6") != Sequential || ClassOf("Q21") != Indexed || ClassOf("Q12") != Mixed {
		t.Fatal("classes wrong")
	}
	if Sequential.String() != "sequential" || Indexed.String() != "indexed" || Mixed.String() != "mixed" {
		t.Fatal("names wrong")
	}
}

// The headline comparison of the paper, as a test: at one process the two
// machines' thread cycles are close; at eight the Origin grows more in CPI.
func TestPaperHeadlineShape(t *testing.T) {
	data := tpch.Generate(0.003, 7)
	get := func(spec machine.Spec, procs int) Measurement {
		st, err := workload.Run(workload.Options{
			Spec: spec, Data: data, Query: tpch.Q6, Processes: procs, OSTimeScale: 256,
		})
		if err != nil {
			t.Fatal(err)
		}
		return FromStats(st)
	}
	h1 := get(machine.VClassSpec(16, 256), 1)
	s1 := get(machine.OriginSpec(32, 256), 1)
	ratio := s1.ThreadCycles / h1.ThreadCycles
	if ratio < 0.6 || ratio > 1.4 {
		t.Fatalf("1-process cycles should be comparable, got SGI/HPV = %.2f", ratio)
	}
	h8 := get(machine.VClassSpec(16, 256), 8)
	s8 := get(machine.OriginSpec(32, 256), 8)
	hGrowth := h8.CPI / h1.CPI
	sGrowth := s8.CPI / s1.CPI
	if sGrowth < hGrowth {
		t.Fatalf("Origin CPI growth (%.3f) should exceed V-Class (%.3f)", sGrowth, hGrowth)
	}
}

func TestTrialsAggregation(t *testing.T) {
	data := tpch.Generate(0.002, 7)
	sts, err := workload.RunTrials(workload.Options{
		Spec: machine.VClassSpec(16, 256), Data: data, Query: tpch.Q21,
		Processes: 4, OSTimeScale: 256,
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	trials := MeasureTrials(sts)
	if len(trials) != 4 {
		t.Fatalf("trials = %d", len(trials))
	}
	sum := trials.Summary(MetricCPI)
	if sum.N != 4 || sum.Mean <= 1 {
		t.Fatalf("summary: %+v", sum)
	}
	mean := trials.Mean()
	if mean.Machine != "HP V-Class" || mean.CPI != sum.Mean {
		t.Fatalf("mean measurement: %+v", mean)
	}
	if mean.CPI < sum.Min || mean.CPI > sum.Max {
		t.Fatal("mean outside sample range")
	}
}

func TestTrialsEmpty(t *testing.T) {
	var tr Trials
	if tr.Mean() != (Measurement{}) {
		t.Fatal("empty trials mean should be zero")
	}
}
