package core

import (
	"dssmem/internal/stats"
	"dssmem/internal/workload"
)

// Trials is a set of repeated measurements of one configuration.
type Trials []Measurement

// MeasureTrials converts repeated runs into Trials.
func MeasureTrials(sts []*workload.Stats) Trials {
	out := make(Trials, len(sts))
	for i, st := range sts {
		out[i] = FromStats(st)
	}
	return out
}

// Summary aggregates one metric across the trials.
func (t Trials) Summary(metric func(Measurement) float64) stats.Summary {
	xs := make([]float64, len(t))
	for i, m := range t {
		xs[i] = metric(m)
	}
	return stats.Summarize(xs)
}

// Mean returns a Measurement whose headline metrics are the trial means —
// the "average values" the paper reports. Identity fields come from the
// first trial.
func (t Trials) Mean() Measurement {
	if len(t) == 0 {
		return Measurement{}
	}
	m := t[0]
	m.ThreadCycles = t.Summary(MetricThreadCycles).Mean
	m.CPI = t.Summary(MetricCPI).Mean
	m.CyclesPerMInstr = t.Summary(MetricCyclesPerM).Mean
	m.L1MissesPerM = t.Summary(MetricL1PerM).Mean
	m.L2MissesPerM = t.Summary(MetricL2PerM).Mean
	m.MemLatencyCycles = t.Summary(MetricMemLatency).Mean
	m.VolPerM = t.Summary(MetricVolPerM).Mean
	m.InvolPerM = t.Summary(func(x Measurement) float64 { return x.InvolPerM }).Mean
	return m
}
