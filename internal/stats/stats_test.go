package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.N != 4 || s.Mean != 2.5 || s.Min != 1 || s.Max != 4 {
		t.Fatalf("summary: %+v", s)
	}
	want := math.Sqrt((2.25 + 0.25 + 0.25 + 2.25) / 3)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, want)
	}
	if s.CI95() <= 0 {
		t.Fatal("CI missing")
	}
	if s.String() == "" {
		t.Fatal("stringer empty")
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if z := Summarize(nil); z.N != 0 || z.Mean != 0 {
		t.Fatalf("empty: %+v", z)
	}
	one := Summarize([]float64{5})
	if one.Std != 0 || one.CI95() != 0 || one.Min != 5 || one.Max != 5 {
		t.Fatalf("single: %+v", one)
	}
	if (Summary{Mean: 0, Std: 1}).RelStd() != 0 {
		t.Fatal("RelStd division by zero")
	}
}

func TestMedian(t *testing.T) {
	if Median(nil) != 0 {
		t.Fatal("empty median")
	}
	if Median([]float64{3, 1, 2}) != 2 {
		t.Fatal("odd median")
	}
	if Median([]float64{4, 1, 2, 3}) != 2.5 {
		t.Fatal("even median")
	}
	// Input must not be reordered.
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 {
		t.Fatal("median mutated input")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 4}); math.Abs(g-2) > 1e-12 {
		t.Fatalf("geomean = %v", g)
	}
	if GeoMean([]float64{1, -1}) != 0 || GeoMean(nil) != 0 {
		t.Fatal("non-positive handling")
	}
}

// Property: Min <= Median <= Max and Min <= Mean <= Max.
func TestOrderingProperty(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		med := Median(xs)
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 &&
			s.Min <= med && med <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: summarizing a constant sample gives Std 0 and Mean = the value.
func TestConstantSampleProperty(t *testing.T) {
	f := func(v int16, n uint8) bool {
		count := int(n%20) + 1
		xs := make([]float64, count)
		for i := range xs {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Std == 0 && s.Mean == float64(v)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
