// Package stats provides the summary statistics used to aggregate repeated
// trials, as the paper did ("we perform the same test four times and use the
// average values").
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary describes a sample.
type Summary struct {
	N    int
	Mean float64
	Std  float64 // sample standard deviation
	Min  float64
	Max  float64
}

// Summarize computes a Summary over xs (zero value for empty input).
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	if s.N > 1 {
		var ss float64
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(s.N-1))
	}
	return s
}

// CI95 returns the 95% confidence half-width under a normal approximation.
func (s Summary) CI95() float64 {
	if s.N < 2 {
		return 0
	}
	return 1.96 * s.Std / math.Sqrt(float64(s.N))
}

// RelStd returns the coefficient of variation (std/mean; 0 for mean 0).
func (s Summary) RelStd() float64 {
	if s.Mean == 0 {
		return 0
	}
	return s.Std / s.Mean
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.2g (n=%d)", s.Mean, s.CI95(), s.N)
}

// Median returns the sample median (0 for empty input). The input is not
// modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	mid := len(c) / 2
	if len(c)%2 == 1 {
		return c[mid]
	}
	return (c[mid-1] + c[mid]) / 2
}

// Percentile returns the p-th percentile of xs (p in [0,100]), using linear
// interpolation between closest ranks (the common "exclusive of
// extrapolation" definition: p=0 is the minimum, p=100 the maximum, p=50 the
// Median). Returns 0 for empty input; the input is not modified.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	c := append([]float64(nil), xs...)
	sort.Float64s(c)
	if p <= 0 {
		return c[0]
	}
	if p >= 100 {
		return c[len(c)-1]
	}
	rank := p / 100 * float64(len(c)-1)
	lo := int(math.Floor(rank))
	frac := rank - float64(lo)
	if frac == 0 || lo+1 >= len(c) {
		return c[lo]
	}
	return c[lo] + frac*(c[lo+1]-c[lo])
}

// MeanCI95 returns the sample mean and the half-width of its 95% confidence
// interval under a normal approximation — the error bars for RunTrials-style
// repeated measurements. The half-width is 0 for fewer than two samples.
func MeanCI95(xs []float64) (mean, halfWidth float64) {
	s := Summarize(xs)
	return s.Mean, s.CI95()
}

// GeoMean returns the geometric mean of positive samples (0 if any sample is
// non-positive or the input is empty).
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}
