package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},     // odd length: exact median element
		{25, 20},     // rank 1.0: exact element
		{40, 29},     // rank 1.6: 20 + 0.6*(35-20)
		{-5, 15},     // clamped below
		{150, 50},    // clamped above
		{12.5, 17.5}, // rank 0.5: midpoint
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(xs, %g) = %g, want %g", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(nil) = %g, want 0", got)
	}
	if got := Percentile([]float64{7}, 83); got != 7 {
		t.Errorf("Percentile of singleton = %g, want 7", got)
	}
	// The input must not be reordered.
	unsorted := []float64{3, 1, 2}
	Percentile(unsorted, 50)
	if unsorted[0] != 3 || unsorted[1] != 1 || unsorted[2] != 2 {
		t.Errorf("Percentile modified its input: %v", unsorted)
	}
}

// Property: percentiles are monotone in p and agree with Median at p=50.
func TestPercentileProperties(t *testing.T) {
	f := func(raw []int16, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa, pb := float64(a%101), float64(b%101)
		if pa > pb {
			pa, pb = pb, pa
		}
		if Percentile(xs, pa) > Percentile(xs, pb)+1e-9 {
			return false
		}
		// The interpolated p=50 matches Median for odd lengths exactly and
		// for even lengths by the same midpoint rule.
		return math.Abs(Percentile(xs, 50)-Median(xs)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanCI95(t *testing.T) {
	// n=4 of {2,4,4,6}: mean 4, sample std sqrt(8/3).
	mean, hw := MeanCI95([]float64{2, 4, 4, 6})
	if math.Abs(mean-4) > 1e-9 {
		t.Errorf("mean = %g, want 4", mean)
	}
	want := 1.96 * math.Sqrt(8.0/3.0) / 2
	if math.Abs(hw-want) > 1e-9 {
		t.Errorf("half-width = %g, want %g", hw, want)
	}

	if mean, hw = MeanCI95([]float64{5}); mean != 5 || hw != 0 {
		t.Errorf("singleton: mean %g hw %g, want 5 and 0", mean, hw)
	}
	if mean, hw = MeanCI95(nil); mean != 0 || hw != 0 {
		t.Errorf("empty: mean %g hw %g, want zeros", mean, hw)
	}
}
