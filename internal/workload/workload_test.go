package workload

import (
	"strings"
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/tpch"
)

var testData = tpch.Generate(0.002, 7)

func opts(spec machine.Spec, q tpch.QueryID, n int) Options {
	return Options{Spec: spec, Data: testData, Query: q, Processes: n, OSTimeScale: 256}
}

func TestRunValidatesAnswers(t *testing.T) {
	st, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q6, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st.MachineName != "HP V-Class" || st.Processes != 1 {
		t.Fatalf("stats header: %+v", st)
	}
	c := st.MeanCounters()
	if c.Instructions == 0 || c.L1DMisses == 0 {
		t.Fatalf("counters empty: %+v", c)
	}
	if c.CPI() < 1.0 || c.CPI() > 3.0 {
		t.Fatalf("CPI out of band: %v", c.CPI())
	}
}

func TestRunRejectsBadConfigs(t *testing.T) {
	if _, err := Run(Options{Spec: machine.VClassSpec(4, 256), Data: testData, Query: tpch.Q6, Processes: 0}); err == nil {
		t.Fatal("0 processes accepted")
	}
	if _, err := Run(Options{Spec: machine.VClassSpec(4, 256), Data: testData, Query: tpch.Q6, Processes: 9}); err == nil ||
		!strings.Contains(err.Error(), "exceed") {
		t.Fatalf("too many processes accepted: %v", err)
	}
	if _, err := Run(Options{Spec: machine.VClassSpec(4, 256), Query: tpch.Q6, Processes: 1}); err == nil {
		t.Fatal("nil data accepted")
	}
}

func TestAllQueriesBothMachines(t *testing.T) {
	for _, q := range tpch.AllQueries {
		for _, spec := range []machine.Spec{machine.VClassSpec(16, 256), machine.OriginSpec(32, 256)} {
			st, err := Run(opts(spec, q, 2))
			if err != nil {
				t.Fatalf("%v on %s: %v", q, spec.Name, err)
			}
			if len(st.Procs) != 2 {
				t.Fatalf("proc stats: %d", len(st.Procs))
			}
			for i, p := range st.Procs {
				if p.ThreadCycles == 0 || p.WallCycles < p.ThreadCycles {
					t.Fatalf("proc %d clocks: thread=%d wall=%d", i, p.ThreadCycles, p.WallCycles)
				}
			}
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func() *Stats {
		st, err := Run(opts(machine.OriginSpec(32, 256), tpch.Q12, 4))
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	for i := range a.Procs {
		if a.Procs[i] != b.Procs[i] {
			t.Fatalf("proc %d stats differ across identical runs", i)
		}
	}
	if a.Dir != b.Dir {
		t.Fatal("directory stats differ across identical runs")
	}
}

func TestOriginL2Populated(t *testing.T) {
	st, err := Run(opts(machine.OriginSpec(32, 256), tpch.Q6, 1))
	if err != nil {
		t.Fatal(err)
	}
	c := st.MeanCounters()
	if c.L2DMisses == 0 || c.L2DMisses > c.L1DMisses {
		t.Fatalf("L2 misses implausible: L1=%d L2=%d", c.L1DMisses, c.L2DMisses)
	}
}

func TestMultiProcessSharesWork(t *testing.T) {
	// Each process runs the full query, so instructions per process should
	// be roughly flat in the process count (paper's setup).
	one, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q6, 1))
	if err != nil {
		t.Fatal(err)
	}
	eight, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q6, 8))
	if err != nil {
		t.Fatal(err)
	}
	i1 := float64(one.MeanCounters().Instructions)
	i8 := float64(eight.MeanCounters().Instructions)
	if i8 < 0.8*i1 || i8 > 1.2*i1 {
		t.Fatalf("instructions per process changed too much: 1p %.3g vs 8p %.3g", i1, i8)
	}
}

func TestSessStatsPopulated(t *testing.T) {
	st, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q21, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.Sess.Pins == 0 || st.Sess.BufMgrAcquires == 0 || st.Sess.RelationAcquires == 0 {
		t.Fatalf("session stats empty: %+v", st.Sess)
	}
}

func TestMeanHelpers(t *testing.T) {
	st := &Stats{ClockMHz: 200, Procs: []ProcStats{
		{ThreadCycles: 100, WallCycles: 200},
		{ThreadCycles: 300, WallCycles: 400},
	}}
	if st.MeanThreadCycles() != 200 {
		t.Fatalf("mean thread = %v", st.MeanThreadCycles())
	}
	if w := st.MeanWallSeconds(); w != 300/(200e6) {
		t.Fatalf("mean wall = %v", w)
	}
}

func TestSpinLimitOverride(t *testing.T) {
	base, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q21, 4))
	if err != nil {
		t.Fatal(err)
	}
	o := opts(machine.VClassSpec(16, 256), tpch.Q21, 4)
	o.SpinLimit = 1 << 30 // pure spinning: no backoffs
	spin, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if spin.MeanCounters().LockBackoffs > base.MeanCounters().LockBackoffs {
		t.Fatal("huge spin limit should not increase backoffs")
	}
}

func TestHintFractionOff(t *testing.T) {
	o := opts(machine.OriginSpec(32, 256), tpch.Q6, 2)
	o.HintBitFraction = -1
	st, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	base, err := Run(opts(machine.OriginSpec(32, 256), tpch.Q6, 2))
	if err != nil {
		t.Fatal(err)
	}
	if st.MeanCounters().Stores >= base.MeanCounters().Stores {
		t.Fatal("disabling hint bits should remove shared-page stores")
	}
}

func TestRunTrialsVaryButAgree(t *testing.T) {
	o := opts(machine.VClassSpec(16, 256), tpch.Q21, 4)
	sts, err := RunTrials(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("trials = %d", len(sts))
	}
	// Same instructions every trial (work is deterministic)...
	i0 := sts[0].MeanCounters().Instructions
	for _, st := range sts[1:] {
		got := st.MeanCounters().Instructions
		if got < i0*95/100 || got > i0*105/100 {
			t.Fatalf("instructions vary too much: %d vs %d", got, i0)
		}
	}
	// ...but contention jitter differs across trials (the paper averaged
	// exactly this kind of run-to-run noise). Wall cycles are the most
	// jitter-sensitive metric.
	same := true
	for _, st := range sts[1:] {
		if st.Procs[0].WallCycles != sts[0].Procs[0].WallCycles {
			same = false
		}
	}
	if same {
		t.Log("warning: trials identical (contention too low to express jitter at this scale)")
	}
}

func TestRunTrialsZeroClamped(t *testing.T) {
	sts, err := RunTrials(opts(machine.VClassSpec(16, 256), tpch.Q6, 1), 0)
	if err != nil || len(sts) != 1 {
		t.Fatalf("got %d trials, err %v", len(sts), err)
	}
}

func TestMixedWorkloadValidatesEachQuery(t *testing.T) {
	o := opts(machine.VClassSpec(16, 256), tpch.Q6, 6)
	o.Mix = []tpch.QueryID{tpch.Q6, tpch.Q21, tpch.Q12}
	st, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	want := []tpch.QueryID{tpch.Q6, tpch.Q21, tpch.Q12, tpch.Q6, tpch.Q21, tpch.Q12}
	for i, p := range st.Procs {
		if p.Query != want[i] {
			t.Fatalf("proc %d ran %v, want %v", i, p.Query, want[i])
		}
	}
	// Q21 processes must have done far more work than Q6 processes.
	if st.Procs[1].Counters.Instructions <= st.Procs[0].Counters.Instructions {
		t.Fatal("mix lost per-query identity")
	}
}

func TestColdRunPaysIO(t *testing.T) {
	warm, err := Run(opts(machine.VClassSpec(16, 256), tpch.Q6, 1))
	if err != nil {
		t.Fatal(err)
	}
	o := opts(machine.VClassSpec(16, 256), tpch.Q6, 1)
	o.ColdRun = true
	cold, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if cold.DiskReads == 0 || warm.DiskReads != 0 {
		t.Fatalf("disk reads: cold=%d warm=%d", cold.DiskReads, warm.DiskReads)
	}
	// Cold runs block on I/O: wall time balloons, voluntary switches appear.
	if cold.Procs[0].WallCycles <= warm.Procs[0].WallCycles {
		t.Fatal("cold run should take longer wall time")
	}
	if cold.Procs[0].Vol == 0 {
		t.Fatal("cold run produced no I/O voluntary switches")
	}
	// The answer is still right (Run validates), and thread time is close.
	ratio := float64(cold.Procs[0].ThreadCycles) / float64(warm.Procs[0].ThreadCycles)
	if ratio > 1.5 {
		t.Fatalf("thread time should not balloon with I/O: ratio %.2f", ratio)
	}
}
