package workload

import (
	"encoding/json"
	"math"
	"runtime"
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/tpch"
)

func parOpts(spec machine.Spec, q tpch.QueryID, n int) Options {
	o := opts(spec, q, n)
	o.Parallel = true
	return o
}

// statsBytes canonicalizes a run's complete Stats (every per-process counter,
// directory Stats, session stats, regions) for byte-level comparison.
func statsBytes(t *testing.T, st *Stats) []byte {
	t.Helper()
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelDeterministic: three bound–weave runs of the same configuration
// must produce byte-identical Stats, and the result must not depend on
// GOMAXPROCS — the knob that changes how the bound-phase goroutines are
// actually scheduled on the host.
func TestParallelDeterministic(t *testing.T) {
	o := parOpts(machine.OriginSpec(8, 256), tpch.Q6, 4)
	var want []byte
	check := func(label string) {
		st, err := Run(o)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		got := statsBytes(t, st)
		if want == nil {
			want = got
			return
		}
		if string(got) != string(want) {
			t.Fatalf("%s: stats differ from first run", label)
		}
	}
	check("run 1")
	check("run 2")
	check("run 3")
	prev := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prev)
	for _, n := range []int{1, 2, 8} {
		runtime.GOMAXPROCS(n)
		check("GOMAXPROCS=" + string(rune('0'+n)))
	}
}

// TestParallelDeterministicQ21: the lock-heavy query exercises the spin-lock
// and lock-manager weave paths; it too must be run-to-run identical.
func TestParallelDeterministicQ21(t *testing.T) {
	o := parOpts(machine.VClassSpec(8, 256), tpch.Q21, 4)
	st1, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if string(statsBytes(t, st1)) != string(statsBytes(t, st2)) {
		t.Fatal("Q21 parallel runs differ")
	}
}

// TestParallelFidelity: bound–weave is not byte-identical to serial (preview
// latencies are frozen-state estimates), but at the benchmark (small-preset)
// scale the figures are generated at it must stay within the documented
// tolerances of the serial model: miss counts within 2%, latency metrics
// within 5%.
//
// The lock-heavy configuration gets looser tolerances (5% misses, 10%
// latencies): lock holds that overlap within one bound window serialize only
// at window granularity, so contention-driven cache-line bouncing — the
// dominant miss source in those runs — carries the full window skew rather
// than the per-access skew of the directory path.
func TestParallelFidelity(t *testing.T) {
	fidelityData := tpch.Generate(0.006, 7) // small preset: benchmark scale
	relErr := func(s, p float64) float64 {
		if s == 0 {
			return 0
		}
		return math.Abs(p-s) / s
	}
	for _, tc := range []struct {
		name    string
		spec    machine.Spec
		q       tpch.QueryID
		procs   int
		missTol float64
		latTol  float64
	}{
		{"origin-q6-p4", machine.OriginSpec(8, 64), tpch.Q6, 4, 0.02, 0.05},
		{"origin-q6-p8", machine.OriginSpec(16, 64), tpch.Q6, 8, 0.02, 0.05},
		{"vclass-q12-p4-locky", machine.VClassSpec(8, 64), tpch.Q12, 4, 0.05, 0.10},
	} {
		t.Run(tc.name, func(t *testing.T) {
			mk := func(par bool) Options {
				return Options{Spec: tc.spec, Data: fidelityData, Query: tc.q,
					Processes: tc.procs, OSTimeScale: 64, Parallel: par}
			}
			sst, err := Run(mk(false))
			if err != nil {
				t.Fatal(err)
			}
			pst, err := Run(mk(true))
			if err != nil {
				t.Fatal(err)
			}
			sc, pc := sst.MeanCounters(), pst.MeanCounters()
			for _, m := range []struct {
				name string
				s, p float64
				tol  float64
			}{
				{"L1 misses", float64(sc.L1DMisses), float64(pc.L1DMisses), tc.missTol},
				{"L2 misses", float64(sc.L2DMisses), float64(pc.L2DMisses), tc.missTol},
				{"mem latency", sc.AvgMemLatency(), pc.AvgMemLatency(), tc.latTol},
				{"thread cycles", sst.MeanThreadCycles(), pst.MeanThreadCycles(), tc.latTol},
				{"CPI", sc.CPI(), pc.CPI(), tc.latTol},
			} {
				if e := relErr(m.s, m.p); e > m.tol {
					t.Errorf("%s: serial %.4g vs parallel %.4g (%.2f%% > %.0f%% tolerance)",
						m.name, m.s, m.p, 100*e, 100*m.tol)
				}
			}
		})
	}
}

// TestParallelAnswersValidated: bound–weave runs still compute correct query
// answers (Options.Validate compares against the reference evaluator).
func TestParallelAnswersValidated(t *testing.T) {
	for _, q := range tpch.AllQueries {
		o := parOpts(machine.OriginSpec(8, 256), q, 2)
		o.Validate = true
		if _, err := Run(o); err != nil {
			t.Fatalf("%v: %v", q, err)
		}
	}
}

// TestParallelWindowDigestIdentity: the parallel flags are part of the run's
// cache identity, exercised here indirectly by checking a custom window also
// runs and is deterministic.
func TestParallelCustomWindow(t *testing.T) {
	o := parOpts(machine.OriginSpec(8, 256), tpch.Q6, 4)
	o.ParallelWindow = 5000
	st1, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := Run(o)
	if err != nil {
		t.Fatal(err)
	}
	if string(statsBytes(t, st1)) != string(statsBytes(t, st2)) {
		t.Fatal("custom-window runs differ")
	}
}
