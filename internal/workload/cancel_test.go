package workload

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"dssmem/internal/machine"
	"dssmem/internal/tpch"
)

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	st, err := RunContext(ctx, opts(machine.VClassSpec(16, 256), tpch.Q21, 4))
	if err == nil {
		// The interrupt races the (short, tiny-preset) run; completing first
		// is legal, but with a pre-cancelled context it should essentially
		// never happen.
		t.Skipf("run completed before the interrupt landed: %+v", st.Processes)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled in the chain", err)
	}
}

func TestRunContextCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := RunContext(ctx, opts(machine.OriginSpec(32, 256), tpch.Q21, 8))
		done <- err
	}()
	time.Sleep(3 * time.Millisecond) // let the run get going
	cancel()
	select {
	case err := <-done:
		if err != nil && !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want nil (already finished) or context.Canceled", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled run did not return")
	}
}

// TestRunTrialsMatchesSerialRuns pins the parallel-trials refactor: trial i
// must produce byte-identical stats to a lone Run with Trial=i.
func TestRunTrialsMatchesSerialRuns(t *testing.T) {
	o := opts(machine.VClassSpec(16, 256), tpch.Q6, 2)
	sts, err := RunTrials(o, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sts) != 3 {
		t.Fatalf("got %d trials", len(sts))
	}
	for i, st := range sts {
		oi := o
		oi.Trial = i
		ref, err := Run(oi)
		if err != nil {
			t.Fatalf("serial trial %d: %v", i, err)
		}
		got, _ := json.Marshal(st)
		want, _ := json.Marshal(ref)
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d diverges from serial run:\n got %s\nwant %s", i, got, want)
		}
	}
}

func TestRunTrialsErrorNamesLowestTrial(t *testing.T) {
	o := opts(machine.VClassSpec(4, 256), tpch.Q6, 9) // 9 procs > 4 CPUs: every trial fails
	_, err := RunTrials(o, 3)
	if err == nil {
		t.Fatal("invalid config accepted")
	}
	if want := "trial 0:"; !strings.Contains(err.Error(), want) {
		t.Fatalf("err = %v, want mention of %q", err, want)
	}
}
