// Package workload runs the paper's experimental configurations: N query
// processes (all running the same TPC-H query) pinned to distinct CPUs of a
// simulated machine, with hardware counters collected over the measured
// region and query answers validated against reference implementations.
package workload

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dssmem/internal/coherence"
	"dssmem/internal/db/engine"
	"dssmem/internal/machine"
	"dssmem/internal/obs"
	"dssmem/internal/perfctr"
	"dssmem/internal/sim"
	"dssmem/internal/simos"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
)

// Options describes one run.
type Options struct {
	Spec    machine.Spec
	OS      simos.Config // zero value: simos.DefaultConfig(Spec.ClockMHz)
	Quantum sim.Clock    // 0: sim.DefaultQuantum
	Data    *tpch.Data
	Query   tpch.QueryID
	// Mix, when non-empty, runs a heterogeneous workload: process i runs
	// Mix[i%len(Mix)] and Query is ignored. This models the reading of the
	// paper's §4 title ("Multiple (Diff) Query Execution") in which the
	// concurrent processes run different queries.
	Mix       []tpch.QueryID
	Processes int
	// Validate compares each process's answer against the reference
	// implementation (default on via Run; RunUnchecked skips).
	Validate bool
	// SpinLimit overrides the DBMS spin-before-backoff count (0 = default).
	SpinLimit int
	// BufHeaderBytes overrides the buffer-descriptor stride (0 = default).
	BufHeaderBytes int
	// OSTimeScale divides the select() back-off to match a scaled-down
	// machine (pass the memory-scale factor; 0 = 1). Ignored when OS is set
	// explicitly.
	OSTimeScale int
	// HintBitFraction forwards to the engine (0 = default, negative = off).
	HintBitFraction float64
	// Trial perturbs the OS jitter seed so repeated trials of one
	// configuration differ, as the paper's four averaged trials did.
	Trial int
	// ColdRun starts the buffer pool empty, modeling the first of the
	// paper's four trials: every first page touch pays a disk read and a
	// voluntary context switch.
	ColdRun bool
	// Obs, when non-nil, attaches the observability layer: interval
	// counter sampling, the structured event trace, and per-operator
	// attribution, per its configuration. The observer is rebound to this
	// run's CPU count and clock; observation is passive and does not
	// perturb counters or timing.
	Obs *obs.Observer
	// Parallel opts into the bound–weave parallel execution mode: processes
	// run concurrently up to shared window edges, with coherence, lock and
	// hint-bit interactions applied at deterministic weave points (see
	// DESIGN.md §11). Results are deterministic and GOMAXPROCS-independent
	// but not byte-identical to serial runs, so Parallel is part of the
	// result-cache identity. Runs needing an observer (Obs != nil) or a cold
	// pool (ColdRun) fall back to serial execution: the observer is a serial
	// consumer, and cold-pool I/O dedupe is first-toucher-order-dependent.
	Parallel bool
	// ParallelWindow is the bound-phase window in cycles (0 = the scheduling
	// quantum). It bounds the timing skew between concurrent processes.
	ParallelWindow uint64
	// SimFault, when non-nil, is installed as the simulation kernel's
	// quantum-boundary fault hook (sim.Kernel.FaultHook): the chaos layer
	// injects wall-clock stalls and hangs through it. Like Obs it never
	// perturbs simulated results, and like Obs and Data it carries no run
	// identity — it is excluded from the cache digest and cleared by
	// experiments.Env.CanonicalOptions.
	SimFault func()
	// Warm, when non-nil, restores the database from a previously captured
	// warm-state image (CaptureWarm) instead of re-running the load prelude.
	// A restored run is byte-identical to a rebuilt one — the prelude never
	// touches the machine model, so the image plus a fresh machine is the
	// complete state at the measured-region boundary — which is why Warm
	// carries no run identity: it is excluded from the cache digest and
	// cleared by experiments.Env.CanonicalOptions. A mismatched or stale
	// image silently falls back to a full rebuild; ColdRun ignores Warm
	// (the cold pool's first-touch I/O is the experiment).
	Warm *engine.Image
	// SampleQuanta enables SMARTS-style interval sampling with the given
	// period in scheduling quanta: of every SampleQuanta quanta per CPU, the
	// first is simulated in detail and measured, the last is simulated in
	// detail as functional warming, and the rest fast-forward with estimated
	// timing (see obs.SamplingController). 0 or 1 means exact simulation.
	// Sampled counters are estimates, so SampleQuanta is part of the result
	// identity (rescache digests sampled and exact runs differently), and
	// sampled runs execute serially like observed ones.
	SampleQuanta int
}

// ProcStats is one process's measured region.
type ProcStats struct {
	Query        tpch.QueryID
	Counters     perfctr.Counters
	ThreadCycles uint64
	WallCycles   uint64
	Vol, Invol   uint64
}

// Stats is the outcome of a run.
type Stats struct {
	MachineName string
	ClockMHz    int
	Query       tpch.QueryID
	Processes   int
	Procs       []ProcStats
	Dir         coherence.Stats
	Sess        SessStats
	// Regions aggregates per-data-region access/miss tallies across all
	// processes (the paper's record/index/metadata/private taxonomy).
	Regions perfctr.RegionCounters
	// DiskReads counts cold-pool device reads (0 for warm runs).
	DiskReads uint64
	// Restored reports whether the warmup prelude was restored from a
	// warm-state image rather than rebuilt. Host-side accounting only —
	// core.FromStats ignores it, so cached measurement bytes are identical
	// either way.
	Restored bool
	// WarmupHostNS and MeasuredHostNS split the run's host wall-clock time
	// between the warmup prelude (build or restore) and the measured region
	// (simulation). Host-side accounting only, like Restored.
	// They are excluded from the JSON encoding: Stats JSON must stay a pure
	// function of Options for digest-keyed caching and determinism tests.
	WarmupHostNS   int64 `json:"-"`
	MeasuredHostNS int64 `json:"-"`
	// Sampling carries per-process sampling-estimator diagnostics (window
	// counts, CI95 half-widths) when the run was sampled; nil for exact
	// runs. Host-side diagnostics only, like Restored.
	Sampling []obs.SampleEstimate
}

// SessStats aggregates DBMS-level instrumentation across processes.
type SessStats struct {
	Pins             uint64
	BufMgrAcquires   uint64
	BufMgrContended  uint64
	RelationAcquires uint64
}

// Run executes the configuration and validates the answers.
func Run(opts Options) (*Stats, error) {
	return RunContext(context.Background(), opts)
}

// RunContext is Run with cancellation: when ctx is cancelled (client
// disconnect, timeout, shutdown) the simulation kernel is interrupted at the
// next scheduling-quantum boundary and RunContext returns ctx's error — no
// goroutine keeps simulating in the background.
func RunContext(ctx context.Context, opts Options) (*Stats, error) {
	opts.Validate = true
	return run(ctx, opts)
}

// RunUnchecked executes without answer validation (benchmarks).
func RunUnchecked(opts Options) (*Stats, error) {
	opts.Validate = false
	return run(context.Background(), opts)
}

// RunUncheckedContext is RunUnchecked with cancellation.
func RunUncheckedContext(ctx context.Context, opts Options) (*Stats, error) {
	opts.Validate = false
	return run(ctx, opts)
}

func run(ctx context.Context, opts Options) (*Stats, error) {
	if opts.Processes <= 0 {
		return nil, fmt.Errorf("workload: need at least one process")
	}
	if opts.Processes > opts.Spec.CPUs {
		return nil, fmt.Errorf("workload: %d processes exceed %d CPUs", opts.Processes, opts.Spec.CPUs)
	}
	if opts.Data == nil {
		return nil, fmt.Errorf("workload: no data")
	}

	preludeStart := time.Now()
	db, restored, err := buildDB(opts)
	if err != nil {
		return nil, err
	}
	warmupNS := time.Since(preludeStart).Nanoseconds()

	spec := opts.Spec
	spec.SharedLimit = db.SharedBytes // dense directory covers all shared data
	m := machine.New(spec)

	osCfg := opts.OS
	if osCfg == (simos.Config{}) {
		osCfg = simos.DefaultConfigScaled(spec.ClockMHz, opts.OSTimeScale)
	}
	osCfg.Seed += uint64(opts.Trial)
	osys := simos.New(m, osCfg, opts.Quantum)

	if opts.Obs != nil {
		opts.Obs.Bind(spec.CPUs, spec.ClockMHz)
		if q := telemetry.FromContext(ctx); q != nil {
			// Tag the trace with the API request driving this run so the
			// Perfetto file joins to the daemon's logs and /debug/requests.
			opts.Obs.SetRequestID(q.ID)
		}
		m.Observe(opts.Obs)
		osys.Observe(opts.Obs)
	}
	if opts.SimFault != nil {
		osys.SetFaultHook(opts.SimFault)
	}
	var sampler *obs.SamplingController
	if opts.SampleQuanta > 1 {
		quantum := opts.Quantum
		if quantum == 0 {
			quantum = sim.DefaultQuantum
		}
		sampler = obs.NewSamplingController(spec.CPUs, uint64(quantum), opts.SampleQuanta)
		osys.SetSampling(sampler)
	}
	if opts.Parallel && opts.Obs == nil && !opts.ColdRun && sampler == nil {
		osys.EnableBoundWeave(sim.Clock(opts.ParallelWindow))
		m.EnableParallel()
		db.EnableParallel(opts.Processes)
		osys.AddWeaver(m.WeaveDirectory)
		osys.AddWeaver(db.Weave)
	}

	queryOf := func(i int) tpch.QueryID {
		if len(opts.Mix) > 0 {
			return opts.Mix[i%len(opts.Mix)]
		}
		return opts.Query
	}
	results := make([]*tpch.Result, opts.Processes)
	sessions := make([]*engine.Session, opts.Processes)
	for i := 0; i < opts.Processes; i++ {
		i := i
		osys.Spawn(i, func(p *simos.Process) {
			p.Classifier = db.Classify
			sess := db.NewSession(p, i)
			sessions[i] = sess
			p.BeginOp("query:" + queryOf(i).String())
			results[i] = tpch.Run(queryOf(i), sess)
			p.EndOp()
		})
	}

	m.ResetCounters() // measured region starts now (caches cold, pool warm)
	measuredStart := time.Now()
	if ctx != nil && ctx.Done() != nil {
		stop := context.AfterFunc(ctx, func() { osys.Interrupt(context.Cause(ctx)) })
		defer stop()
	}
	if err := osys.Run(); err != nil {
		if errors.Is(err, sim.ErrInterrupted) && ctx != nil && ctx.Err() != nil {
			return nil, fmt.Errorf("workload: run aborted: %w", context.Cause(ctx))
		}
		return nil, err
	}
	measuredNS := time.Since(measuredStart).Nanoseconds()
	if sampler != nil {
		// Estimate the event counters the fast-forwarded quanta skipped from
		// the measured windows' rates; the estimated counter files then flow
		// through the normal Stats -> Measurement pipeline.
		for i := 0; i < opts.Processes; i++ {
			sampler.Extrapolate(i, m.Counters(i))
		}
	}

	if opts.Validate {
		wants := map[tpch.QueryID]uint64{}
		for i, r := range results {
			q := queryOf(i)
			want, ok := wants[q]
			if !ok {
				want = tpch.Ref(q, opts.Data).Digest()
				wants[q] = want
			}
			if r == nil || r.Digest() != want {
				return nil, fmt.Errorf("workload: process %d returned a wrong %v answer", i, q)
			}
		}
	}

	st := &Stats{
		DiskReads:      db.DiskReads,
		Restored:       restored,
		WarmupHostNS:   warmupNS,
		MeasuredHostNS: measuredNS,
		MachineName:    spec.Name,
		ClockMHz:       spec.ClockMHz,
		Query:          opts.Query,
		Processes:      opts.Processes,
		Dir:            m.Directory().Stats,
		Sess: SessStats{
			BufMgrAcquires:   db.BufMgrLock.Acquires,
			BufMgrContended:  db.BufMgrLock.Contended,
			RelationAcquires: db.LockMgr.RelationAcquires,
		},
	}
	for _, sess := range sessions {
		if sess != nil {
			st.Sess.Pins += sess.Pins
		}
	}
	for _, p := range osys.Processes() {
		st.Regions.Add(&p.Regions)
	}
	for i, p := range osys.Processes() {
		st.Procs = append(st.Procs, ProcStats{
			Query:        queryOf(i),
			Counters:     *m.Counters(i),
			ThreadCycles: p.ThreadCycles(),
			WallCycles:   p.Now(),
			Vol:          p.VoluntarySwitches(),
			Invol:        p.InvoluntarySwitches(),
		})
	}
	if sampler != nil {
		for i := 0; i < opts.Processes; i++ {
			st.Sampling = append(st.Sampling, sampler.Estimate(i))
		}
	}
	return st, nil
}

// engineConfig derives the engine configuration from opts. It is the single
// definition of the warmup prelude's inputs, shared by live runs, cold runs
// and checkpoint capture, so the snapshot boundary and the cold-run boundary
// cannot drift apart.
func engineConfig(opts Options) engine.Config {
	ioLatency := uint64(0)
	if opts.ColdRun {
		scale := opts.OSTimeScale
		if scale < 1 {
			scale = 1
		}
		// 8 ms at the machine's clock, divided by the preset's time scale
		// like the select() back-off.
		ioLatency = uint64(opts.Spec.ClockMHz) * 8000 / uint64(scale)
		if ioLatency < 2000 {
			ioLatency = 2000
		}
	}
	return engine.Config{
		PoolPages:       tpch.PoolPagesFor(opts.Data),
		SpinLimit:       opts.SpinLimit,
		BufHeaderBytes:  opts.BufHeaderBytes,
		HintBitFraction: opts.HintBitFraction,
		ColdPool:        opts.ColdRun,
		IOLatency:       ioLatency,
	}
}

// buildDB runs the warmup prelude: restore from opts.Warm when possible,
// otherwise open and bulk-load. The returned bool reports a restore. A warm
// image that fails structural validation falls back to a full rebuild —
// checkpoints are an accelerator, never a correctness dependency.
func buildDB(opts Options) (*engine.Database, bool, error) {
	cfg := engineConfig(opts)
	if opts.Warm != nil && !opts.ColdRun {
		if db, err := engine.FromImage(opts.Warm, cfg); err == nil {
			return db, true, nil
		}
	}
	db := engine.Open(cfg)
	tpch.Load(db, opts.Data)
	return db, false, nil
}

// CaptureWarm runs the warmup prelude from scratch and returns the warm-state
// image at the measured-region boundary — exactly the state a run restores
// when Options.Warm is set. Only the prelude-shaping options matter (Data,
// BufHeaderBytes; plus SpinLimit/HintBitFraction, which affect runtime
// behavior but not the image); the rest may be left zero.
func CaptureWarm(opts Options) (*engine.Image, error) {
	if opts.Data == nil {
		return nil, fmt.Errorf("workload: capture: no data")
	}
	opts.Warm = nil
	opts.ColdRun = false
	db, _, err := buildDB(opts)
	if err != nil {
		return nil, err
	}
	return db.Image(), nil
}

// RunTrials repeats a configuration n times with perturbed OS jitter and
// returns every trial's stats, mirroring the paper's methodology ("we
// perform the same test four times and use the average values").
func RunTrials(opts Options, n int) ([]*Stats, error) {
	return RunTrialsContext(context.Background(), opts, n)
}

// RunTrialsContext runs the trials concurrently: each trial is an independent
// single-threaded simulation, so they fan out across host cores, bounded by
// GOMAXPROCS. Trial i keeps the jitter seed opts.Trial+i it would get under
// serial execution, and the returned slice is in trial order, so results are
// byte-identical to the old serial path. The lowest-indexed failing trial's
// error is reported. When opts.Obs is non-nil the trials run serially: one
// observer cannot watch two concurrent simulations.
func RunTrialsContext(ctx context.Context, opts Options, n int) ([]*Stats, error) {
	if n < 1 {
		n = 1
	}
	limit := runtime.GOMAXPROCS(0)
	if limit < 1 || opts.Obs != nil {
		limit = 1
	}
	out := make([]*Stats, n)
	errs := make([]error, n)
	sem := make(chan struct{}, limit)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		o := opts
		o.Trial = opts.Trial + i
		o.Validate = true // same contract as Run
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, o Options) {
			defer wg.Done()
			defer func() { <-sem }()
			out[i], errs[i] = run(ctx, o)
		}(i, o)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
	}
	return out, nil
}

// MeanCounters averages the per-process counter files (the paper reports one
// bar per configuration).
func (s *Stats) MeanCounters() perfctr.Counters {
	var sum perfctr.Counters
	for i := range s.Procs {
		sum.Add(&s.Procs[i].Counters)
	}
	return scaleCounters(sum, len(s.Procs))
}

func scaleCounters(c perfctr.Counters, n int) perfctr.Counters {
	c.Scale(n)
	return c
}

// MeanThreadCycles averages thread time across processes.
func (s *Stats) MeanThreadCycles() float64 {
	var sum uint64
	for _, p := range s.Procs {
		sum += p.ThreadCycles
	}
	return float64(sum) / float64(len(s.Procs))
}

// MeanWallSeconds averages wall time and converts to seconds.
func (s *Stats) MeanWallSeconds() float64 {
	var sum uint64
	for _, p := range s.Procs {
		sum += p.WallCycles
	}
	return float64(sum) / float64(len(s.Procs)) / (float64(s.ClockMHz) * 1e6)
}
