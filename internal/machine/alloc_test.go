package machine

import (
	"testing"

	"dssmem/internal/memsys"
)

// TestAccessHotPathAllocFree guards the simulator's two hottest paths against
// regressing into per-access heap allocation:
//
//   - L1 (and L2) hits: pure cache bookkeeping, no directory involvement;
//   - outer-level misses on already-materialized directory entries: the
//     slab-backed sparse map must serve steady-state capacity misses without
//     allocating.
func TestAccessHotPathAllocFree(t *testing.T) {
	m := New(OriginSpec(4, 64))
	// Warm: touch a footprint larger than the outer cache so every line has a
	// directory entry and the re-walk below is dominated by capacity misses.
	const footprint = 1 << 16
	for i := 0; i < footprint; i += 8 {
		m.Access(i&3, memsys.Addr(i), 8, false, uint64(i))
	}

	t.Run("hits", func(t *testing.T) {
		var now uint64 = footprint
		allocs := testing.AllocsPerRun(1000, func() {
			// 64 sequential bytes: after the first fill these hit in L1.
			base := memsys.Addr(now % 4096)
			for off := memsys.Addr(0); off < 64; off += 8 {
				m.Access(0, base+off, 8, false, now)
			}
			now++
		})
		if allocs != 0 {
			t.Fatalf("hit path allocates %.2f objects/op, want 0", allocs)
		}
	})

	t.Run("misses", func(t *testing.T) {
		var i uint64
		var now uint64 = 2 * footprint
		allocs := testing.AllocsPerRun(1000, func() {
			// Stride past the outer cache: steady-state capacity misses on
			// known lines, including evictions of earlier victims.
			addr := memsys.Addr((i * 4096) % footprint)
			m.Access(int(i&3), addr, 8, i&7 == 0, now)
			i++
			now += 10
		})
		if allocs != 0 {
			t.Fatalf("miss path allocates %.2f objects/op, want 0", allocs)
		}
	})
}
