// Package machine assembles caches, coherence and interconnect models into
// full multiprocessor machines and provides the two platforms under study:
// the HP V-Class and the SGI Origin 2000.
package machine

import (
	"fmt"

	"dssmem/internal/cache"
	"dssmem/internal/coherence"
	"dssmem/internal/interconnect"
	"dssmem/internal/memsys"
)

// NetKind selects the interconnect fabric.
type NetKind int

// Interconnect kinds.
const (
	NetCrossbar NetKind = iota
	NetHypercube
)

// PlacementKind selects page-to-home mapping.
type PlacementKind int

// Placement kinds.
const (
	// PlaceInterleaved spreads lines across all memory controllers (UMA).
	PlaceInterleaved PlacementKind = iota
	// PlaceConcentrated puts shared pages on SharedNodes nodes and private
	// pages on the owner's node (the Origin/IRIX behaviour the paper saw).
	PlaceConcentrated
)

// Spec fully describes a machine. All latencies are in that machine's CPU
// cycles.
type Spec struct {
	Name     string
	CPUs     int
	ClockMHz int

	// Cache hierarchy. L2 is nil for single-level machines (V-Class).
	L1 cache.Config
	L2 *cache.Config

	// Timing.
	BaseCPI          float64 // cycles per instruction with a perfect memory system
	L2HitCycles      uint64  // L1-miss/L2-hit service time
	ReadStallFactor  float64 // fraction of a read-miss latency the pipeline stalls
	WriteStallFactor float64 // same for writes/upgrades (store buffers hide more)

	// Memory system.
	Protocol     coherence.Params
	MemNodes     int    // memory controllers (V-Class EMACs) or NUMA nodes
	MemOccupancy uint64 // controller occupancy per request
	SharedNodes  int    // for PlaceConcentrated
	Placement    PlacementKind
	Net          NetKind
	NetHop       uint64 // crossbar hop or hypercube per-hop latency
	NetHub       uint64 // hypercube hub delay (ignored for crossbar)

	// SharedLimit bounds the dense directory region (bytes of shared space).
	SharedLimit uint64
}

// CPUNode returns the node/endpoint of a CPU: Origin packs two CPUs per node;
// crossbar machines hash CPUs over controllers (latency is uniform anyway).
func (s *Spec) CPUNode(cpu int) int {
	if s.Net == NetHypercube {
		return cpu / 2 % s.MemNodes
	}
	return cpu % s.MemNodes
}

// Validate checks the geometry.
func (s *Spec) Validate() error {
	if s.CPUs <= 0 || s.CPUs > 64 {
		return fmt.Errorf("machine %s: CPUs must be 1..64, got %d", s.Name, s.CPUs)
	}
	if err := s.L1.Validate(); err != nil {
		return err
	}
	if s.L2 != nil {
		if err := s.L2.Validate(); err != nil {
			return err
		}
		if s.L2.LineSize < s.L1.LineSize {
			return fmt.Errorf("machine %s: L2 line smaller than L1 line", s.Name)
		}
	}
	if s.MemNodes <= 0 {
		return fmt.Errorf("machine %s: need at least one memory node", s.Name)
	}
	return nil
}

// scaleCache divides a cache's capacity by scale, keeping line size and
// associativity, with a floor of 16 lines so the geometry stays valid.
func scaleCache(c cache.Config, scale int) cache.Config {
	if scale <= 1 {
		return c
	}
	size := c.Size / scale
	min := 16 * c.LineSize * c.Assoc / c.Assoc
	if min < c.LineSize*c.Assoc {
		min = c.LineSize * c.Assoc
	}
	if size < min {
		size = min
	}
	// Round down to a power-of-two set count.
	sets := size / (c.LineSize * c.Assoc)
	p := 1
	for p*2 <= sets {
		p *= 2
	}
	c.Size = p * c.LineSize * c.Assoc
	return c
}

// VClassSpec returns the HP V-Class model: up to 16 PA-8200s at 200 MHz with
// single-level 2 MB direct-mapped data caches (32 B lines), a uniform
// hyperplane crossbar to 8 interleaved EMAC memory controllers, and a
// directory protocol with the migratory enhancement. memScale divides cache
// capacities to match a scaled-down database (see DESIGN.md §4).
func VClassSpec(cpus, memScale int) Spec {
	if cpus <= 0 {
		cpus = 16
	}
	return Spec{
		Name:     "HP V-Class",
		CPUs:     cpus,
		ClockMHz: 200,
		L1: scaleCache(cache.Config{
			Name: "PA8200-D", Size: 2 << 20, LineSize: 32, Assoc: 1,
		}, memScale),
		BaseCPI:          1.0,
		ReadStallFactor:  0.7,
		WriteStallFactor: 0.25,
		Protocol: coherence.Params{
			MemAccess:    70,
			DirAccess:    6,
			CacheExtract: 90,
			InvalLatency: 25,
			Migratory:    true,
		},
		MemNodes:     8,
		MemOccupancy: 25,
		Placement:    PlaceInterleaved,
		Net:          NetCrossbar,
		NetHop:       8,
		SharedLimit:  16 << 20,
	}
}

// OriginSpec returns the SGI Origin 2000 model: up to 32 R10000s at 250 MHz
// (two per node), 32 KB 2-way L1 D caches (32 B lines) backed by 4 MB 2-way
// unified L2 caches (128 B lines), a bristled hypercube, concentrated shared
// memory placement, and a directory protocol with speculative replies.
func OriginSpec(cpus, memScale int) Spec {
	if cpus <= 0 {
		cpus = 32
	}
	nodes := (cpus + 1) / 2
	// Hypercube wants a power-of-two node count.
	n := 1
	for n < nodes {
		n *= 2
	}
	l2 := scaleCache(cache.Config{
		Name: "R10K-L2", Size: 4 << 20, LineSize: 128, Assoc: 2,
	}, memScale)
	return Spec{
		Name:     "SGI Origin 2000",
		CPUs:     cpus,
		ClockMHz: 250,
		L1: scaleCache(cache.Config{
			Name: "R10K-L1D", Size: 32 << 10, LineSize: 32, Assoc: 2,
		}, memScale),
		L2:               &l2,
		BaseCPI:          1.0,
		L2HitCycles:      10,
		ReadStallFactor:  0.7,
		WriteStallFactor: 0.25,
		Protocol: coherence.Params{
			MemAccess:    45,
			DirAccess:    6,
			CacheExtract: 80,
			InvalLatency: 30,
			Speculative:  true,
		},
		MemNodes:     n,
		MemOccupancy: 60,
		SharedNodes:  1,
		Placement:    PlaceConcentrated,
		Net:          NetHypercube,
		NetHop:       10,
		NetHub:       15,
		SharedLimit:  16 << 20,
	}
}

// StarfireSpec returns a third era platform for cross-platform studies: a
// Sun Enterprise 10000 ("Starfire")-style UMA SMP — up to 64 UltraSPARC-II
// CPUs at 250 MHz with 16 KB L1 D caches (32 B lines) and 4 MB external L2
// caches (64 B lines), a uniform address-crossbar fabric over 16 interleaved
// memory boards, and a plain MESI directory (no migratory or speculative
// tricks). It is not one of the paper's machines; it extends the comparison
// the paper invites.
func StarfireSpec(cpus, memScale int) Spec {
	if cpus <= 0 {
		cpus = 64
	}
	l2 := scaleCache(cache.Config{
		Name: "USII-L2", Size: 4 << 20, LineSize: 64, Assoc: 1,
	}, memScale)
	return Spec{
		Name:     "Sun Starfire",
		CPUs:     cpus,
		ClockMHz: 250,
		L1: scaleCache(cache.Config{
			Name: "USII-L1D", Size: 16 << 10, LineSize: 32, Assoc: 1,
		}, memScale),
		L2:               &l2,
		BaseCPI:          1.0,
		L2HitCycles:      8,
		ReadStallFactor:  0.7,
		WriteStallFactor: 0.25,
		Protocol: coherence.Params{
			MemAccess:    60,
			DirAccess:    8,
			CacheExtract: 85,
			InvalLatency: 28,
		},
		MemNodes:     16,
		MemOccupancy: 22,
		Placement:    PlaceInterleaved,
		Net:          NetCrossbar,
		NetHop:       12,
		SharedLimit:  16 << 20,
	}
}

func (s *Spec) network() interconnect.Network {
	switch s.Net {
	case NetHypercube:
		return interconnect.NewHypercube(s.MemNodes, s.NetHub, s.NetHop)
	default:
		return interconnect.Crossbar{Ports: s.MemNodes, Hop: s.NetHop}
	}
}

func (s *Spec) placement() memsys.Placement {
	switch s.Placement {
	case PlaceConcentrated:
		k := s.SharedNodes
		if k <= 0 {
			k = 1
		}
		if k > s.MemNodes {
			k = s.MemNodes
		}
		return memsys.Concentrated{
			NodesTotal:  s.MemNodes,
			SharedNodes: k,
			OwnerNode:   s.CPUNode, // process i is pinned to CPU i by convention
		}
	default:
		unit := uint64(s.L1.LineSize)
		if s.L2 != nil {
			unit = uint64(s.L2.LineSize)
		}
		return memsys.Interleaved{N: s.MemNodes, Unit: unit}
	}
}
