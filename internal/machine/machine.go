package machine

import (
	"fmt"

	"dssmem/internal/cache"
	"dssmem/internal/coherence"
	"dssmem/internal/memsys"
	"dssmem/internal/obs"
	"dssmem/internal/perfctr"
)

// Machine is a simulated shared-memory multiprocessor. All methods are
// single-threaded by construction: the simulation kernel serializes the
// processes that drive it.
type Machine struct {
	spec Spec
	l1   []*cache.Cache
	l2   []*cache.Cache // nil when single-level
	dir  *coherence.Directory
	ctrs []perfctr.Counters

	// sub-line factor between protocol (outer) lines and L1 lines
	// (a power of two; outerShift is its log2, used on the hot path).
	l1PerOuter uint64
	outerShift uint
	baseCycles uint64 // per-instruction cycles, uint64(BaseCPI + 0.5)
	// cpiIntegral lets InstrCycles use integer math when BaseCPI is a whole
	// number (every shipped spec); n*baseCycles is then exactly
	// uint64(float64(n)*BaseCPI + 0.5) for any plausible n.
	cpiIntegral bool

	// par, when non-nil, switches the directory path to the bound–weave
	// log-and-preview protocol (see parallel.go). The hit fast path is
	// unaffected: it touches only the CPU's own caches.
	par *parMachine
}

// New builds a machine from its spec; it panics on invalid specs (specs are
// constructed in code).
func New(spec Spec) *Machine {
	if err := spec.Validate(); err != nil {
		panic(err)
	}
	m := &Machine{spec: spec}
	views := make([]coherence.CoherentCache, spec.CPUs)
	nodeOf := make([]int, spec.CPUs)
	m.l1 = make([]*cache.Cache, spec.CPUs)
	if spec.L2 != nil {
		m.l2 = make([]*cache.Cache, spec.CPUs)
	}
	protoLine := spec.L1.LineSize
	if spec.L2 != nil {
		protoLine = spec.L2.LineSize
	}
	m.l1PerOuter = uint64(protoLine / spec.L1.LineSize)
	for 1<<m.outerShift < m.l1PerOuter {
		m.outerShift++
	}
	if 1<<m.outerShift != m.l1PerOuter {
		panic(fmt.Sprintf("machine: L2/L1 line ratio %d not a power of two", m.l1PerOuter))
	}
	m.baseCycles = uint64(spec.BaseCPI + 0.5)
	m.cpiIntegral = float64(m.baseCycles) == spec.BaseCPI
	for i := 0; i < spec.CPUs; i++ {
		m.l1[i] = cache.New(spec.L1)
		if spec.L2 != nil {
			m.l2[i] = cache.New(*spec.L2)
			views[i] = &hierarchyView{l1: m.l1[i], l2: m.l2[i], l1PerOuter: m.l1PerOuter}
		} else {
			views[i] = m.l1[i]
		}
		nodeOf[i] = spec.CPUNode(i)
	}
	m.dir = coherence.NewDirectory(coherence.Config{
		Params:       spec.Protocol,
		Placement:    spec.placement(),
		Net:          spec.network(),
		NodeOf:       nodeOf,
		Caches:       views,
		LineSize:     protoLine,
		SharedLimit:  spec.SharedLimit,
		MemOccupancy: spec.MemOccupancy,
	})
	m.ctrs = make([]perfctr.Counters, spec.CPUs)
	return m
}

// Spec returns the machine description.
func (m *Machine) Spec() Spec { return m.spec }

// Observe attaches an observer to the machine's protocol engine: every
// directory transaction becomes a memory-request span and every coherence
// invalidation an instant event on the requesting CPU's track (CacheID and
// CPU index coincide by construction). A nil observer detaches the hooks.
func (m *Machine) Observe(o *obs.Observer) {
	if o == nil || !o.Config().Events {
		m.dir.Hooks = coherence.Hooks{}
		return
	}
	m.dir.Hooks.Request = func(c coherence.CacheID, write, upgrade bool, line, now uint64, r coherence.Result) {
		kind := "read"
		switch {
		case upgrade:
			kind = "upgrade"
		case write:
			kind = "write"
		}
		o.MemRequest(int(c), kind, line, now, r.Latency, r.Class.String(), r.Dirty3Hop)
	}
	m.dir.Hooks.Invalidate = func(req, target coherence.CacheID, line, now uint64) {
		o.Invalidation(int(req), int(target), line, now)
	}
}

// Directory exposes the coherence engine (for global stats and tests).
func (m *Machine) Directory() *coherence.Directory { return m.dir }

// Counters returns CPU c's performance-counter file.
func (m *Machine) Counters(c int) *perfctr.Counters { return &m.ctrs[c] }

// L1 returns CPU c's first-level cache (tests/stats).
func (m *Machine) L1(c int) *cache.Cache { return m.l1[c] }

// L2 returns CPU c's second-level cache or nil.
func (m *Machine) L2(c int) *cache.Cache {
	if m.l2 == nil {
		return nil
	}
	return m.l2[c]
}

// InstrCycles returns the pipeline cycles for n instructions (perfect-memory
// component) and counts them on CPU c.
func (m *Machine) InstrCycles(c int, n uint64) uint64 {
	m.ctrs[c].Instructions += n
	var cyc uint64
	if m.cpiIntegral {
		cyc = n * m.baseCycles
	} else {
		cyc = uint64(float64(n)*m.spec.BaseCPI + 0.5)
	}
	m.ctrs[c].Cycles += cyc
	return cyc
}

// Access performs one memory instruction (load or store) of size bytes at
// addr on CPU c at simulated time now, and returns the cycles the CPU spends
// on it: one instruction slot plus the stall share of any miss latency.
// Accesses that straddle line boundaries touch every affected line.
func (m *Machine) Access(c int, addr memsys.Addr, size int, write bool, now uint64) uint64 {
	ct := &m.ctrs[c]
	ct.Instructions++
	if write {
		ct.Stores++
	} else {
		ct.Loads++
	}
	cycles := m.baseCycles
	if size <= 0 {
		size = 1
	}
	l1 := m.l1[c]
	first := l1.LineOf(uint64(addr))
	last := l1.LineOf(uint64(addr) + uint64(size) - 1)
	for line := first; line <= last; line++ {
		cycles += m.accessLine(c, line, write, now+cycles)
	}
	ct.Cycles += cycles
	return cycles
}

// accessLine handles one L1-line reference and returns its stall cycles.
func (m *Machine) accessLine(c int, l1line uint64, write bool, now uint64) uint64 {
	ct := &m.ctrs[c]
	l1 := m.l1[c]
	st, hit := l1.Lookup(l1line, write)
	if hit {
		if !write {
			return 0
		}
		switch st {
		case cache.Modified:
			return 0
		case cache.Exclusive:
			l1.SetState(l1line, cache.Modified)
			m.markOuterDirty(c, l1line)
			return 0
		default: // Shared: needs ownership
			return m.upgrade(c, l1line, now)
		}
	}
	ct.L1DMisses++
	if m.l2 == nil {
		return m.outerMiss(c, l1line, write, now)
	}
	return m.l2Access(c, l1line, write, now)
}

// l2Access services an L1 miss against the L2 (Origin path).
func (m *Machine) l2Access(c int, l1line uint64, write bool, now uint64) uint64 {
	ct := &m.ctrs[c]
	l2 := m.l2[c]
	outerLine := l1line >> m.outerShift
	st, hit := l2.Lookup(outerLine, write)
	if hit {
		stall := m.spec.L2HitCycles
		if write && st == cache.Shared {
			stall += m.upgradeOuter(c, outerLine, now)
			st = cache.Modified
		} else if write && st == cache.Exclusive {
			l2.SetState(outerLine, cache.Modified)
			st = cache.Modified
		}
		m.installL1(c, l1line, l1State(st, write))
		return stall
	}
	ct.L2DMisses++
	stall := m.spec.L2HitCycles + m.outerFetch(c, outerLine, write, now)
	grant := m.l2[c].StateOf(outerLine)
	m.installL1(c, l1line, l1State(grant, write))
	return stall
}

// l1State derives the L1 install state from the outer-level state.
func l1State(outer cache.State, write bool) cache.State {
	if write {
		return cache.Modified
	}
	switch outer {
	case cache.Modified, cache.Exclusive:
		return cache.Exclusive
	default:
		return cache.Shared
	}
}

// installL1 inserts a line into L1, handling the dirty-victim writeback into
// L2 (or the directory on single-level machines — not used there).
func (m *Machine) installL1(c int, l1line uint64, st cache.State) {
	v := m.l1[c].Insert(l1line, st)
	if v.State == cache.Invalid {
		return
	}
	if v.State.Dirty() && m.l2 != nil {
		// Write the dirty sub-block back into the covering L2 line.
		m.l2[c].MarkModified(v.Line >> m.outerShift)
	}
	if st == cache.Modified {
		m.markOuterDirty(c, l1line)
	}
}

// markOuterDirty propagates an L1 write into the covering outer-level state
// so the protocol (which acts at outer granularity) sees the line as dirty.
func (m *Machine) markOuterDirty(c int, l1line uint64) {
	if m.l2 == nil {
		return
	}
	m.l2[c].MarkModified(l1line >> m.outerShift)
}

// outerMiss handles a miss in the outermost (coherent) cache for single-level
// machines: consult the directory, install, and account stalls.
func (m *Machine) outerMiss(c int, line uint64, write bool, now uint64) uint64 {
	return m.outerFetch(c, line, write, now)
}

// outerFetch performs the directory transaction for an outer-level miss and
// installs the granted line into the outer cache.
func (m *Machine) outerFetch(c int, line uint64, write bool, now uint64) uint64 {
	ct := &m.ctrs[c]
	var r coherence.Result
	if m.par != nil {
		cid := coherence.CacheID(c)
		if write {
			r = m.dir.PreviewWrite(cid, line, now)
			m.par.logs[c] = append(m.par.logs[c], dirOp{kind: opWrite, cpu: int16(c), line: line, now: now})
		} else {
			r = m.dir.PreviewRead(cid, line, now)
			m.par.logs[c] = append(m.par.logs[c], dirOp{kind: opRead, cpu: int16(c), line: line, now: now})
		}
	} else if write {
		r = m.dir.Write(coherence.CacheID(c), line, now)
	} else {
		r = m.dir.Read(coherence.CacheID(c), line, now)
	}
	ct.MemRequests++
	ct.MemLatencyCycles += r.Latency
	switch r.Class {
	case coherence.Cold:
		ct.ColdMisses++
	case coherence.Capacity:
		ct.CapacityMisses++
	case coherence.Coherence:
		ct.CoherenceMisses++
	}
	if r.Dirty3Hop {
		ct.Dirty3HopMisses++
	}

	outer := m.outerCache(c)
	v := outer.Insert(line, r.Grant)
	if v.State != cache.Invalid {
		m.evict(c, v.Line, v.State.Dirty(), now)
		if m.l2 != nil {
			// Inclusion: back-invalidate the L1 sub-blocks of the victim.
			m.backInvalidateL1(c, v.Line)
		}
	}

	factor := m.spec.ReadStallFactor
	if write {
		factor = m.spec.WriteStallFactor
	}
	stall := uint64(float64(r.Latency)*factor + 0.5)
	ct.StallCycles += stall
	return stall
}

// upgrade handles a write hit on a Shared L1 line (single- or multi-level).
func (m *Machine) upgrade(c int, l1line uint64, now uint64) uint64 {
	if m.l2 == nil {
		stall := m.upgradeOuter(c, l1line, now)
		m.l1[c].SetState(l1line, cache.Modified)
		return stall
	}
	outer := l1line >> m.outerShift
	stall := m.spec.L2HitCycles
	if m.l2[c].StateOf(outer) == cache.Shared {
		stall += m.upgradeOuter(c, outer, now)
	} else if m.l2[c].StateOf(outer) != cache.Invalid {
		m.l2[c].SetState(outer, cache.Modified)
	}
	m.l1[c].SetState(l1line, cache.Modified)
	return stall
}

// upgradeOuter performs the directory upgrade for the outer cache.
func (m *Machine) upgradeOuter(c int, outerLine uint64, now uint64) uint64 {
	ct := &m.ctrs[c]
	var r coherence.Result
	if m.par != nil {
		r = m.dir.PreviewUpgrade(coherence.CacheID(c), outerLine, now)
		m.par.logs[c] = append(m.par.logs[c], dirOp{kind: opUpgrade, cpu: int16(c), line: outerLine, now: now})
	} else {
		r = m.dir.Upgrade(coherence.CacheID(c), outerLine, now)
	}
	ct.Upgrades++
	ct.MemRequests++
	ct.MemLatencyCycles += r.Latency
	outer := m.outerCache(c)
	if outer.StateOf(outerLine) != cache.Invalid {
		outer.SetState(outerLine, r.Grant)
	} else {
		v := outer.Insert(outerLine, r.Grant)
		if v.State != cache.Invalid {
			m.evict(c, v.Line, v.State.Dirty(), now)
			if m.l2 != nil {
				m.backInvalidateL1(c, v.Line)
			}
		}
	}
	stall := uint64(float64(r.Latency)*m.spec.WriteStallFactor + 0.5)
	ct.StallCycles += stall
	return stall
}

// hierarchyView exposes a two-level hierarchy to the directory at protocol
// (L2-line) granularity, forwarding coherence actions to the L1 sub-blocks so
// inclusion holds even under remote invalidations.
type hierarchyView struct {
	l1, l2     *cache.Cache
	l1PerOuter uint64
}

// StateOf implements coherence.CoherentCache. The L2 state is authoritative:
// L1 writes are propagated into the L2 state eagerly (markOuterDirty).
func (h *hierarchyView) StateOf(line uint64) cache.State { return h.l2.StateOf(line) }

// Invalidate implements coherence.CoherentCache.
func (h *hierarchyView) Invalidate(line uint64) cache.State {
	st := h.l2.Invalidate(line)
	base := line * h.l1PerOuter
	for i := uint64(0); i < h.l1PerOuter; i++ {
		h.l1.Invalidate(base + i)
	}
	return st
}

// Downgrade implements coherence.CoherentCache.
func (h *hierarchyView) Downgrade(line uint64) cache.State {
	st := h.l2.Downgrade(line)
	base := line * h.l1PerOuter
	for i := uint64(0); i < h.l1PerOuter; i++ {
		h.l1.Downgrade(base + i)
	}
	return st
}

func (m *Machine) outerCache(c int) *cache.Cache {
	if m.l2 != nil {
		return m.l2[c]
	}
	return m.l1[c]
}

// backInvalidateL1 removes the L1 sub-blocks covered by an evicted outer line
// (inclusion property).
func (m *Machine) backInvalidateL1(c int, outerLine uint64) {
	base := outerLine * m.l1PerOuter
	for i := uint64(0); i < m.l1PerOuter; i++ {
		m.l1[c].Invalidate(base + i)
	}
}

// FlushFraction models context-switch cache pollution on CPU c: a fraction of
// each cache level is displaced by kernel/scheduler footprint. Directory
// state is kept consistent (dirty outer victims write back).
func (m *Machine) FlushFraction(c int, frac float64, now uint64) {
	if m.l2 != nil {
		for _, v := range m.l1[c].FlushFraction(frac) {
			if v.State.Dirty() {
				outer := v.Line >> m.outerShift
				if m.l2[c].StateOf(outer) != cache.Invalid {
					m.l2[c].SetState(outer, cache.Modified)
				}
			}
		}
	}
	for _, v := range m.outerCache(c).FlushFraction(frac) {
		m.evict(c, v.Line, v.State.Dirty(), now)
		if m.l2 != nil {
			m.backInvalidateL1(c, v.Line)
		}
	}
}

// ResetCounters zeroes all CPU counter files (start of a measured region).
func (m *Machine) ResetCounters() {
	for i := range m.ctrs {
		m.ctrs[i] = perfctr.Counters{}
	}
}

// CyclesToSeconds converts this machine's cycles to wall seconds.
func (m *Machine) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / (float64(m.spec.ClockMHz) * 1e6)
}
