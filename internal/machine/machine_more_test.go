package machine

import (
	"testing"

	"dssmem/internal/cache"
	"dssmem/internal/memsys"
)

func TestStallAccounting(t *testing.T) {
	m := tinyVClass(1)
	m.Access(0, 0x1000, 8, false, 0)
	ct := m.Counters(0)
	if ct.StallCycles == 0 || ct.MemLatencyCycles == 0 || ct.MemRequests != 1 {
		t.Fatalf("stall accounting: %+v", ct)
	}
	// Stall is the configured fraction of the full latency.
	want := uint64(float64(ct.MemLatencyCycles)*m.Spec().ReadStallFactor + 0.5)
	if ct.StallCycles != want {
		t.Fatalf("stall = %d, want %d", ct.StallCycles, want)
	}
}

func TestWriteStallCheaperThanReadStall(t *testing.T) {
	m := tinyVClass(2)
	rd := m.Access(0, 0x1000, 8, false, 0)
	// Well-separated in time so the controller queue model sees no burst.
	wr := m.Access(1, 0x2000, 8, true, 1_000_000)
	if wr >= rd {
		t.Fatalf("write miss (%d) should stall less than read miss (%d)", wr, rd)
	}
}

func TestUpgradeCountsAndDirties(t *testing.T) {
	m := tinyVClass(2)
	addr := memsys.Addr(0x3000)
	m.Access(0, addr, 8, false, 0)
	m.Access(1, addr, 8, false, 10) // now shared S/S
	m.Access(0, addr, 8, true, 20)  // upgrade
	ct := m.Counters(0)
	if ct.Upgrades != 1 {
		t.Fatalf("upgrades = %d", ct.Upgrades)
	}
	if m.L1(0).StateOf(uint64(addr)/32) != cache.Modified {
		t.Fatal("upgrade did not leave M")
	}
	if m.L1(1).StateOf(uint64(addr)/32) != cache.Invalid {
		t.Fatal("other sharer survived the upgrade")
	}
}

func TestOriginSubLineWriteVisibleAtProtocolGranularity(t *testing.T) {
	m := tinyOrigin(2)
	// Write one 32B sub-block; then have the peer read a DIFFERENT sub-block
	// of the same 128B protocol line: it must see a dirty intervention.
	m.Access(0, 0x8000, 8, true, 0)
	m.Access(1, 0x8000+96, 8, false, 100)
	if m.Counters(1).Dirty3HopMisses != 1 {
		t.Fatalf("false sharing at protocol granularity missed: %+v", m.Counters(1))
	}
}

func TestFlushWritebacksDirtyLines(t *testing.T) {
	m := tinyVClass(1)
	for a := memsys.Addr(0); a < 2048; a += 32 {
		m.Access(0, a, 8, true, 0)
	}
	wbBefore := m.Directory().Stats.Writebacks
	m.FlushFraction(0, 1.0, 100)
	if m.Directory().Stats.Writebacks <= wbBefore {
		t.Fatal("full flush of dirty lines produced no writebacks")
	}
	if m.L1(0).ValidLines() != 0 {
		t.Fatal("full flush left lines")
	}
}

func TestCountersPerCPUIndependent(t *testing.T) {
	m := tinyVClass(4)
	m.Access(2, 0x100, 8, false, 0)
	for c := 0; c < 4; c++ {
		want := uint64(0)
		if c == 2 {
			want = 1
		}
		if m.Counters(c).Loads != want {
			t.Fatalf("cpu %d loads = %d", c, m.Counters(c).Loads)
		}
	}
}

func TestOriginWallClockFaster(t *testing.T) {
	v := tinyVClass(1)
	o := tinyOrigin(1)
	// Equal cycles, different clocks: the Origin finishes sooner.
	if o.CyclesToSeconds(1_000_000) >= v.CyclesToSeconds(1_000_000) {
		t.Fatal("250MHz machine should convert cycles to fewer seconds")
	}
}

func TestSpecCPULimit(t *testing.T) {
	s := VClassSpec(16, 256)
	s.CPUs = 65
	if err := s.Validate(); err == nil {
		t.Fatal("65 CPUs should exceed the sharers-bitmask limit")
	}
	s.CPUs = 0
	if err := s.Validate(); err == nil {
		t.Fatal("0 CPUs accepted")
	}
}

func TestL2LineSmallerThanL1Rejected(t *testing.T) {
	s := OriginSpec(4, 256)
	l2 := *s.L2
	l2.LineSize = 16
	s.L2 = &l2
	if err := s.Validate(); err == nil {
		t.Fatal("L2 line < L1 line accepted")
	}
}

func TestAccessSizeZeroTreatedAsOne(t *testing.T) {
	m := tinyVClass(1)
	m.Access(0, 0x40, 0, false, 0)
	if m.Counters(0).L1DMisses != 1 {
		t.Fatal("zero-size access mishandled")
	}
}

func TestSequentialScanMissRatioMatchesLineSize(t *testing.T) {
	// 8-byte strided reads over a large region: exactly one miss per 32B line.
	m := tinyVClass(1)
	const span = 1 << 16
	for a := memsys.Addr(0); a < span; a += 8 {
		m.Access(0, a, 8, false, uint64(a))
	}
	ct := m.Counters(0)
	wantMisses := uint64(span / 32)
	if ct.L1DMisses < wantMisses || ct.L1DMisses > wantMisses+16 {
		t.Fatalf("misses = %d, want ~%d", ct.L1DMisses, wantMisses)
	}
	// Miss classification: a cold scan is all cold misses.
	if ct.CoherenceMisses != 0 {
		t.Fatal("cold scan saw coherence misses")
	}
}

func TestOrigin128ByteLinesQuarterTheMisses(t *testing.T) {
	o := tinyOrigin(1)
	const span = 1 << 16
	for a := memsys.Addr(0); a < span; a += 8 {
		o.Access(0, a, 8, false, uint64(a))
	}
	ct := o.Counters(0)
	l1Want := uint64(span / 32)
	l2Want := uint64(span / 128)
	if ct.L1DMisses < l1Want || ct.L1DMisses > l1Want+16 {
		t.Fatalf("L1 misses = %d, want ~%d", ct.L1DMisses, l1Want)
	}
	if ct.L2DMisses < l2Want || ct.L2DMisses > l2Want+16 {
		t.Fatalf("L2 misses = %d, want ~%d (128B lines)", ct.L2DMisses, l2Want)
	}
}

func TestStarfireSpec(t *testing.T) {
	s := StarfireSpec(64, 1)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.L2 == nil || s.L2.LineSize != 64 || s.Net != NetCrossbar {
		t.Fatalf("spec: %+v", s)
	}
	if s.Protocol.Migratory || s.Protocol.Speculative {
		t.Fatal("Starfire should be plain MESI")
	}
	m := New(StarfireSpec(8, 256))
	m.Access(0, 0x1000, 8, false, 0)
	ct := m.Counters(0)
	if ct.L1DMisses != 1 || ct.L2DMisses != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}
