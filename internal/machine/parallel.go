package machine

import (
	"sort"

	"dssmem/internal/coherence"
)

// Parallel (bound–weave) support. When EnableParallel is on, the per-CPU
// access paths stop calling the coherence directory synchronously: cache hits
// are untouched (they are CPU-private already), and misses compute their
// latency and grant from the directory's frozen state (coherence.Preview*)
// while appending the transaction to a per-CPU log. The kernel's weave phase
// calls WeaveDirectory with every process parked, which replays the logged
// transactions through the real directory in deterministic (quantum
// timestamp, CacheID) order — evolving directory entries, remote cache
// copies, memory-server estimators and protocol Stats deterministically,
// independent of how the bound-phase goroutines were scheduled.

type dirOpKind uint8

const (
	opRead dirOpKind = iota
	opWrite
	opUpgrade
	opEvict
)

type dirOp struct {
	now   uint64
	line  uint64
	cpu   int16
	kind  dirOpKind
	dirty bool // opEvict only
}

type parMachine struct {
	logs  [][]dirOp // one per CPU, appended only by that CPU's goroutine
	order []int16   // weave scratch: CPU replay order, reused across windows
}

// EnableParallel switches the machine's directory path to log-and-preview
// mode. Call before the run starts; WeaveDirectory must then be invoked at
// every kernel window boundary (sim.Kernel.AddWeaver).
func (m *Machine) EnableParallel() {
	m.par = &parMachine{logs: make([][]dirOp, m.spec.CPUs)}
}

// Parallel reports whether log-and-preview mode is on.
func (m *Machine) Parallel() bool { return m.par != nil }

// evict retires an outer-cache victim: directly in serial mode, logged for
// the weave in parallel mode.
func (m *Machine) evict(c int, line uint64, dirty bool, now uint64) {
	if m.par != nil {
		m.par.logs[c] = append(m.par.logs[c], dirOp{kind: opEvict, cpu: int16(c), line: line, dirty: dirty, now: now})
		return
	}
	m.dir.Evict(coherence.CacheID(c), line, dirty, now)
}

// WeaveDirectory drains the per-CPU transaction logs and replays them through
// the real directory in deterministic (quantum timestamp, CacheID) order:
// whole per-CPU logs are ordered by each log's first timestamp (ties broken
// by CacheID) and replayed as batches, each batch in the CPU's own issue
// order. That is exactly the order in which the serial scheduler — which
// picks the minimum-clock process and runs its whole quantum before the next
// — would have serviced the same transactions, so the memory-server
// inter-arrival estimators (interconnect.Server) see the same quantum-batched
// arrival stream as serial mode. A fully time-sorted merge would interleave
// the streams, making the servers look N× more loaded than the serial model
// charges.
//
// Results of the replay are not fed back to the requesting CPUs — their
// counters were charged from the preview — but the replay is what evolves the
// shared protocol state: directory entries, sharer sets, remote
// invalidations/downgrades, memory-server queue estimators, and Stats.
func (m *Machine) WeaveDirectory() {
	p := m.par
	p.order = p.order[:0]
	for c, l := range p.logs {
		if len(l) > 0 {
			p.order = append(p.order, int16(c))
		}
	}
	if len(p.order) == 0 {
		return
	}
	sort.Slice(p.order, func(i, j int) bool {
		a, b := p.order[i], p.order[j]
		ta, tb := p.logs[a][0].now, p.logs[b][0].now
		if ta != tb {
			return ta < tb
		}
		return a < b
	})
	for _, cpu := range p.order {
		log := p.logs[cpu]
		c := coherence.CacheID(cpu)
		for i := range log {
			op := &log[i]
			switch op.kind {
			case opRead:
				m.dir.Read(c, op.line, op.now)
			case opWrite:
				m.dir.Write(c, op.line, op.now)
			case opUpgrade:
				m.dir.Upgrade(c, op.line, op.now)
			case opEvict:
				m.dir.Evict(c, op.line, op.dirty, op.now)
			}
		}
		p.logs[cpu] = log[:0]
	}
}
