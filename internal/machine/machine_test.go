package machine

import (
	"testing"
	"testing/quick"

	"dssmem/internal/cache"
	"dssmem/internal/memsys"
)

// tinyVClass returns a scaled-down V-Class for fast tests.
func tinyVClass(cpus int) *Machine { return New(VClassSpec(cpus, 256)) }

// tinyOrigin returns a scaled-down Origin for fast tests.
func tinyOrigin(cpus int) *Machine { return New(OriginSpec(cpus, 256)) }

func TestSpecConstruction(t *testing.T) {
	v := VClassSpec(16, 1)
	if v.L1.Size != 2<<20 || v.L2 != nil || !v.Protocol.Migratory {
		t.Fatalf("vclass spec: %+v", v)
	}
	o := OriginSpec(32, 1)
	if o.L2 == nil || o.L2.LineSize != 128 || !o.Protocol.Speculative {
		t.Fatalf("origin spec: %+v", o)
	}
	if o.MemNodes != 16 {
		t.Fatalf("origin nodes = %d, want 16", o.MemNodes)
	}
}

func TestScaledGeometryStaysValid(t *testing.T) {
	for _, scale := range []int{1, 4, 16, 64, 256, 4096} {
		for _, s := range []Spec{VClassSpec(8, scale), OriginSpec(8, scale)} {
			if err := s.Validate(); err != nil {
				t.Fatalf("scale %d, %s: %v", scale, s.Name, err)
			}
			New(s) // must not panic
		}
	}
}

func TestCPUNodeMapping(t *testing.T) {
	o := OriginSpec(8, 256)
	if o.CPUNode(0) != 0 || o.CPUNode(1) != 0 || o.CPUNode(2) != 1 || o.CPUNode(7) != 3 {
		t.Fatal("origin CPUs must pack two per node")
	}
}

func TestFirstAccessMissesThenHits(t *testing.T) {
	m := tinyVClass(2)
	c1 := m.Access(0, 0x1000, 8, false, 0)
	c2 := m.Access(0, 0x1000, 8, false, 100)
	if c1 <= c2 {
		t.Fatalf("miss (%d cycles) should cost more than hit (%d)", c1, c2)
	}
	ct := m.Counters(0)
	if ct.L1DMisses != 1 || ct.Loads != 2 || ct.MemRequests != 1 {
		t.Fatalf("counters: %+v", ct)
	}
}

func TestSpatialLocalityWithinLine(t *testing.T) {
	m := tinyVClass(1)
	m.Access(0, 0x2000, 4, false, 0)
	m.Access(0, 0x2004, 4, false, 10) // same 32B line
	if m.Counters(0).L1DMisses != 1 {
		t.Fatalf("misses = %d, want 1", m.Counters(0).L1DMisses)
	}
}

func TestStraddlingAccessTouchesBothLines(t *testing.T) {
	m := tinyVClass(1)
	m.Access(0, 0x2000+30, 4, false, 0) // crosses a 32B boundary
	if m.Counters(0).L1DMisses != 2 {
		t.Fatalf("misses = %d, want 2", m.Counters(0).L1DMisses)
	}
}

func TestOriginL2Hierarchy(t *testing.T) {
	m := tinyOrigin(2)
	m.Access(0, 0x4000, 8, false, 0)
	ct := m.Counters(0)
	if ct.L1DMisses != 1 || ct.L2DMisses != 1 {
		t.Fatalf("counters: %+v", ct)
	}
	// A different 32B L1 line inside the same 128B L2 line: L1 miss, L2 hit.
	m.Access(0, 0x4000+64, 8, false, 100)
	if ct.L1DMisses != 2 || ct.L2DMisses != 1 {
		t.Fatalf("counters after L2 hit: %+v", ct)
	}
}

func TestWriteMakesLineDirtyThroughHierarchy(t *testing.T) {
	m := tinyOrigin(2)
	m.Access(0, 0x4000, 8, true, 0)
	l2line := uint64(0x4000) / 128
	if m.L2(0).StateOf(l2line) != cache.Modified {
		t.Fatalf("L2 state = %v, want M", m.L2(0).StateOf(l2line))
	}
	// A remote read must see the dirty line (3-hop intervention).
	m.Access(1, 0x4000, 8, false, 1000)
	if m.Counters(1).Dirty3HopMisses != 1 {
		t.Fatalf("remote reader counters: %+v", m.Counters(1))
	}
}

func TestRemoteInvalidationReachesL1(t *testing.T) {
	m := tinyOrigin(2)
	m.Access(0, 0x4000, 8, false, 0) // CPU0 caches the line (L1+L2)
	m.Access(1, 0x4000, 8, true, 10) // CPU1 writes: CPU0 must lose both levels
	l1line := uint64(0x4000) / 32
	l2line := uint64(0x4000) / 128
	if m.L1(0).StateOf(l1line) != cache.Invalid || m.L2(0).StateOf(l2line) != cache.Invalid {
		t.Fatal("stale copies survived a remote write")
	}
	// CPU0's next read is a coherence miss.
	m.Access(0, 0x4000, 8, false, 2000)
	if m.Counters(0).CoherenceMisses != 1 {
		t.Fatalf("counters: %+v", m.Counters(0))
	}
}

func TestMigratoryVClassLockPattern(t *testing.T) {
	// Lock-style read-modify-write ping-pong between two CPUs: after the
	// pattern detector has seen one read-then-upgrade hand-off, the migratory
	// enhancement makes each further hand-off a single transaction (the read
	// miss already grants ownership).
	m := tinyVClass(2)
	addr := memsys.Addr(0x8000)
	m.Access(0, addr, 8, false, 0)
	m.Access(0, addr, 8, true, 10)
	// Training hand-off: plain MESI downgrade, then an upgrade that marks
	// the line migratory.
	m.Access(1, addr, 8, false, 20)
	m.Access(1, addr, 8, true, 30)
	base := m.Directory().Stats
	m.Access(0, addr, 8, false, 40) // migrates dirty line with ownership
	m.Access(0, addr, 8, true, 50)  // pure cache hit
	d := m.Directory().Stats
	if d.MigratoryTransfers != base.MigratoryTransfers+1 {
		t.Fatalf("no migratory transfer: %+v", d)
	}
	if got := d.Reads + d.Writes + d.Upgrades - (base.Reads + base.Writes + base.Upgrades); got != 1 {
		t.Fatalf("lock handoff took %d transactions, want 1", got)
	}
}

func TestMigratoryNotAppliedToWriteOnceData(t *testing.T) {
	// A line written once and then only read (hint-bit pattern) must NOT
	// migrate: readers share it and later readers are served from memory.
	m := tinyVClass(4)
	addr := memsys.Addr(0x9000)
	m.Access(0, addr, 8, true, 0) // writer
	m.Access(1, addr, 8, false, 100)
	m.Access(2, addr, 8, false, 200)
	d := m.Directory().Stats
	if d.MigratoryTransfers != 0 {
		t.Fatalf("write-once line migrated: %+v", d)
	}
	if m.L1(1).StateOf(uint64(addr)/32) != cache.Shared {
		t.Fatal("first reader should end Shared")
	}
}

func TestNonMigratoryCostsTwoTransactions(t *testing.T) {
	spec := VClassSpec(2, 256)
	spec.Protocol.Migratory = false
	m := New(spec)
	addr := memsys.Addr(0x8000)
	m.Access(0, addr, 8, false, 0)
	m.Access(0, addr, 8, true, 10)
	base := m.Directory().Stats
	m.Access(1, addr, 8, false, 20) // downgrade to S/S
	m.Access(1, addr, 8, true, 30)  // upgrade: second transaction
	d := m.Directory().Stats
	if got := d.Reads + d.Writes + d.Upgrades - (base.Reads + base.Writes + base.Upgrades); got != 2 {
		t.Fatalf("lock handoff took %d transactions, want 2", got)
	}
}

func TestInstrCycles(t *testing.T) {
	m := tinyVClass(1)
	cyc := m.InstrCycles(0, 1000)
	if cyc != 1000 { // BaseCPI = 1.0
		t.Fatalf("cycles = %d", cyc)
	}
	if m.Counters(0).Instructions != 1000 || m.Counters(0).Cycles != 1000 {
		t.Fatalf("counters: %+v", m.Counters(0))
	}
}

func TestFlushFractionPollutesAndStaysCoherent(t *testing.T) {
	m := tinyOrigin(2)
	for a := memsys.Addr(0); a < 4096; a += 32 {
		m.Access(0, a, 8, true, 0)
	}
	before := m.L1(0).ValidLines()
	m.FlushFraction(0, 0.5, 100)
	if m.L1(0).ValidLines() >= before {
		t.Fatal("flush did not displace lines")
	}
	// After pollution the directory must still serve other CPUs correctly.
	for a := memsys.Addr(0); a < 4096; a += 32 {
		m.Access(1, a, 8, false, 200)
	}
}

func TestResetCounters(t *testing.T) {
	m := tinyVClass(1)
	m.Access(0, 0x100, 8, false, 0)
	m.ResetCounters()
	if m.Counters(0).Loads != 0 || m.Counters(0).Cycles != 0 {
		t.Fatal("counters not reset")
	}
}

func TestCyclesToSeconds(t *testing.T) {
	m := tinyVClass(1)
	if got := m.CyclesToSeconds(200_000_000); got != 1.0 {
		t.Fatalf("200M cycles at 200MHz = %v s", got)
	}
}

func TestOriginRemoteCostsMoreThanLocal(t *testing.T) {
	// Private data homed on the owner's node (local) vs another process's
	// node (remote): local fetch must be cheaper.
	m := tinyOrigin(8)
	local := memsys.Addr(memsys.PrivateBase(0))  // home = node of CPU 0
	remote := memsys.Addr(memsys.PrivateBase(7)) // home = node of CPU 3
	c1 := m.Access(0, local, 8, false, 0)
	c2 := m.Access(0, remote, 8, false, 1000)
	if c2 <= c1 {
		t.Fatalf("remote (%d) should cost more than local (%d)", c2, c1)
	}
}

// Property: for random access streams the counter identities hold:
// loads+stores = memory instructions; classified misses = MemRequests minus
// upgrades... (upgrades are classified separately as Capacity inside the
// directory but machine counters only classify outer misses).
func TestCounterIdentities(t *testing.T) {
	f := func(ops []uint16) bool {
		m := tinyOrigin(2)
		now := uint64(0)
		for _, op := range ops {
			cpu := int(op & 1)
			addr := memsys.Addr(op&0x0ffc) * 8
			m.Access(cpu, addr, 4, op&2 != 0, now)
			now += 50
		}
		var loads, stores, instr uint64
		for c := 0; c < 2; c++ {
			ct := m.Counters(c)
			loads += ct.Loads
			stores += ct.Stores
			instr += ct.Instructions
			if ct.L2DMisses > ct.L1DMisses {
				return false
			}
			if ct.Cycles < ct.Instructions { // BaseCPI >= 1
				return false
			}
		}
		return loads+stores == uint64(len(ops)) && instr == uint64(len(ops))
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// Property: single-writer invariant holds across the full machine for any
// interleaving (at L2/protocol granularity).
func TestMachineMESIInvariant(t *testing.T) {
	f := func(ops []uint16) bool {
		m := tinyOrigin(4)
		now := uint64(0)
		lines := map[uint64]bool{}
		for _, op := range ops {
			cpu := int(op & 3)
			line := uint64(op>>2) % 16
			addr := memsys.Addr(line * 128)
			m.Access(cpu, addr, 8, op&0x400 != 0, now)
			lines[line] = true
			now += 25
		}
		for line := range lines {
			owners, sharers := 0, 0
			for c := 0; c < 4; c++ {
				switch m.L2(c).StateOf(line) {
				case cache.Exclusive, cache.Modified:
					owners++
				case cache.Shared:
					sharers++
				}
			}
			if owners > 1 || (owners == 1 && sharers > 0) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
