// Package trace captures and replays memory-reference traces. The authors'
// companion study ("A Trace-driven Analysis of Sharing Behavior in TPC-C")
// worked from such traces; here a query's reference stream can be recorded
// once and replayed against any machine model without re-running the DBMS —
// trace-driven simulation as a complement to the execution-driven mode.
//
// The format is a compact byte stream: one opcode byte per event, with
// zigzag-varint address deltas so sequential scans compress well.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"dssmem/internal/memsys"
)

// Op codes.
const (
	opLoad byte = iota
	opStore
	opWork
)

// header identifies trace files.
var header = []byte("DSSTRC1\n")

// Writer records a reference stream. It implements the charging interface
// (storage.Mem), so it can be slotted anywhere a Mem goes — typically inside
// Tee, which forwards to a real Mem while recording.
type Writer struct {
	w        *bufio.Writer
	lastAddr uint64
	events   uint64
	err      error
}

// NewWriter starts a trace on w.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(header); err != nil {
		return nil, err
	}
	return &Writer{w: bw}, nil
}

// Events returns the number of recorded events.
func (t *Writer) Events() uint64 { return t.events }

// Err returns the first write error. Emit paths are silent (they implement
// the charging interface, which has no error returns), so the error is
// deferred: it sticks here and on Flush, and recording stops at the first
// failure — callers must check one of the two.
func (t *Writer) Err() error { return t.err }

// Flush completes the trace. It surfaces the first deferred write error,
// including one that bufio only detects while flushing its final buffer;
// after a failed Flush, Err reports the same error.
func (t *Writer) Flush() error {
	if t.err != nil {
		return t.err
	}
	if err := t.w.Flush(); err != nil {
		t.err = err
	}
	return t.err
}

func (t *Writer) emit(op byte, a, b uint64) {
	if t.err != nil {
		return
	}
	var buf [21]byte
	buf[0] = op
	n := 1
	n += binary.PutUvarint(buf[n:], a)
	if op != opWork {
		n += binary.PutUvarint(buf[n:], b)
	}
	if _, err := t.w.Write(buf[:n]); err != nil {
		t.err = err
		return
	}
	t.events++
}

func zigzag(d int64) uint64 { return uint64((d << 1) ^ (d >> 63)) }

func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

func (t *Writer) delta(addr memsys.Addr) uint64 {
	d := int64(uint64(addr) - t.lastAddr)
	t.lastAddr = uint64(addr)
	return zigzag(d)
}

// Load implements the charging interface.
func (t *Writer) Load(addr memsys.Addr, size int) { t.emit(opLoad, t.delta(addr), uint64(size)) }

// Store implements the charging interface.
func (t *Writer) Store(addr memsys.Addr, size int) { t.emit(opStore, t.delta(addr), uint64(size)) }

// Work implements the charging interface.
func (t *Writer) Work(n uint64) { t.emit(opWork, n, 0) }

// Mem is the replay target (identical to storage.Mem; re-declared to keep
// this package free of db dependencies).
type Mem interface {
	Load(addr memsys.Addr, size int)
	Store(addr memsys.Addr, size int)
	Work(n uint64)
}

// Tee forwards to Out while recording into Trace.
type Tee struct {
	Out   Mem
	Trace *Writer
}

// Load implements Mem.
func (t Tee) Load(addr memsys.Addr, size int) {
	t.Trace.Load(addr, size)
	t.Out.Load(addr, size)
}

// Store implements Mem.
func (t Tee) Store(addr memsys.Addr, size int) {
	t.Trace.Store(addr, size)
	t.Out.Store(addr, size)
}

// Work implements Mem.
func (t Tee) Work(n uint64) {
	t.Trace.Work(n)
	t.Out.Work(n)
}

// Replay streams a trace into mem and returns the number of events.
func Replay(r io.Reader, mem Mem) (uint64, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(header))
	if _, err := io.ReadFull(br, head); err != nil {
		return 0, fmt.Errorf("trace: reading header: %w", err)
	}
	for i := range header {
		if head[i] != header[i] {
			return 0, errors.New("trace: bad magic (not a DSSTRC1 trace)")
		}
	}
	var events uint64
	var last uint64
	for {
		op, err := br.ReadByte()
		if err == io.EOF {
			return events, nil
		}
		if err != nil {
			return events, err
		}
		a, err := binary.ReadUvarint(br)
		if err != nil {
			return events, fmt.Errorf("trace: truncated event %d: %w", events, err)
		}
		switch op {
		case opWork:
			mem.Work(a)
		case opLoad, opStore:
			b, err := binary.ReadUvarint(br)
			if err != nil {
				return events, fmt.Errorf("trace: truncated event %d: %w", events, err)
			}
			last = uint64(int64(last) + unzigzag(a))
			if op == opLoad {
				mem.Load(memsys.Addr(last), int(b))
			} else {
				mem.Store(memsys.Addr(last), int(b))
			}
		default:
			return events, fmt.Errorf("trace: unknown opcode %d at event %d", op, events)
		}
		events++
	}
}

// Stats summarizes a trace without replaying it into a machine.
type Stats struct {
	Loads, Stores, WorkOps uint64
	Instructions           uint64 // work + one per memory reference
	DistinctLines          int    // at 64-byte granularity
}

// Analyze scans a trace and reports its composition.
func Analyze(r io.Reader) (Stats, error) {
	var st Stats
	lines := make(map[uint64]struct{})
	counter := analyzeMem{st: &st, lines: lines}
	if _, err := Replay(r, &counter); err != nil {
		return st, err
	}
	st.DistinctLines = len(lines)
	st.Instructions = st.Loads + st.Stores + counter.work
	return st, nil
}

type analyzeMem struct {
	st    *Stats
	lines map[uint64]struct{}
	work  uint64
}

func (a *analyzeMem) Load(addr memsys.Addr, size int) {
	a.st.Loads++
	a.lines[uint64(addr)>>6] = struct{}{}
}

func (a *analyzeMem) Store(addr memsys.Addr, size int) {
	a.st.Stores++
	a.lines[uint64(addr)>>6] = struct{}{}
}

func (a *analyzeMem) Work(n uint64) {
	a.st.WorkOps++
	a.work += n
}
