package trace

import (
	"io"

	"dssmem/internal/db/engine"
	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/tpch"
)

// captureProc satisfies the DBMS process interface while recording every
// charge into a trace. It runs with no machine underneath: time advances
// nominally so lock bookkeeping stays sane (single process, so no
// contention paths fire).
type captureProc struct {
	tw    *Writer
	clock uint64
}

func (p *captureProc) Load(addr memsys.Addr, size int)  { p.tw.Load(addr, size); p.clock += 2 }
func (p *captureProc) Store(addr memsys.Addr, size int) { p.tw.Store(addr, size); p.clock += 2 }
func (p *captureProc) Work(n uint64)                    { p.tw.Work(n); p.clock += n }
func (p *captureProc) Spin()                            { p.clock += 4 }
func (p *captureProc) Backoff()                         { p.clock += 100_000 }
func (p *captureProc) Now() uint64                      { return p.clock }

// CaptureQuery executes query q once, single-process, over data, recording
// the full reference stream (DBMS metadata, index, record and private
// accesses) into w. It returns the number of recorded events.
func CaptureQuery(w io.Writer, data *tpch.Data, q tpch.QueryID) (uint64, error) {
	tw, err := NewWriter(w)
	if err != nil {
		return 0, err
	}
	db := engine.Open(engine.Config{PoolPages: tpch.PoolPagesFor(data)})
	tpch.Load(db, data)
	p := &captureProc{tw: tw}
	sess := db.NewSession(p, 0)
	tpch.Run(q, sess)
	if err := tw.Flush(); err != nil {
		return tw.Events(), err
	}
	return tw.Events(), nil
}

// MachineMem replays a trace onto one CPU of a machine model, advancing a
// local wall clock by the returned access cycles.
type MachineMem struct {
	M   *machine.Machine
	CPU int
	now uint64
}

// Load implements Mem.
func (r *MachineMem) Load(addr memsys.Addr, size int) {
	r.now += r.M.Access(r.CPU, addr, size, false, r.now)
}

// Store implements Mem.
func (r *MachineMem) Store(addr memsys.Addr, size int) {
	r.now += r.M.Access(r.CPU, addr, size, true, r.now)
}

// Work implements Mem.
func (r *MachineMem) Work(n uint64) { r.now += r.M.InstrCycles(r.CPU, n) }

// Cycles returns the accumulated simulated time.
func (r *MachineMem) Cycles() uint64 { return r.now }
