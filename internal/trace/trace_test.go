package trace

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"testing/quick"

	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/tpch"
)

// event mirrors one charge for round-trip checking.
type event struct {
	op   byte
	addr memsys.Addr
	n    uint64
}

type recorder struct{ events []event }

func (r *recorder) Load(a memsys.Addr, s int)  { r.events = append(r.events, event{0, a, uint64(s)}) }
func (r *recorder) Store(a memsys.Addr, s int) { r.events = append(r.events, event{1, a, uint64(s)}) }
func (r *recorder) Work(n uint64)              { r.events = append(r.events, event{2, 0, n}) }

func TestRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	w.Load(0x1000, 8)
	w.Store(0x1008, 4)
	w.Work(100)
	w.Load(0x10, 2) // backwards delta
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Events() != 4 {
		t.Fatalf("events = %d", w.Events())
	}

	var rec recorder
	n, err := Replay(&buf, &rec)
	if err != nil || n != 4 {
		t.Fatalf("replay: n=%d err=%v", n, err)
	}
	want := []event{{0, 0x1000, 8}, {1, 0x1008, 4}, {2, 0, 100}, {0, 0x10, 2}}
	for i, e := range want {
		if rec.events[i] != e {
			t.Fatalf("event %d: got %+v want %+v", i, rec.events[i], e)
		}
	}
}

func TestReplayRejectsGarbage(t *testing.T) {
	if _, err := Replay(strings.NewReader("not a trace at all"), &recorder{}); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Replay(strings.NewReader(""), &recorder{}); err == nil {
		t.Fatal("empty input accepted")
	}
	// Valid header, truncated body.
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	w.Load(0x1234, 8)
	w.Flush()
	raw := buf.Bytes()
	if _, err := Replay(bytes.NewReader(raw[:len(raw)-1]), &recorder{}); err == nil {
		t.Fatal("truncated trace accepted")
	}
}

var errWriterBroken = errors.New("writer broken")

// failAfter fails every Write once n bytes have been accepted.
type failAfter struct {
	n     int
	wrote int
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.wrote+len(p) > f.n {
		return 0, errWriterBroken
	}
	f.wrote += len(p)
	return len(p), nil
}

func TestFlushSurfacesDeferredError(t *testing.T) {
	// The events fit bufio's buffer, so the failure only shows when Flush
	// pushes them to the broken underlying writer; both Flush and Err must
	// report it.
	w, err := NewWriter(&failAfter{n: len(header)})
	if err != nil {
		t.Fatal(err)
	}
	w.Load(0x1000, 8)
	w.Work(5)
	if err := w.Flush(); err == nil {
		t.Fatal("Flush swallowed the underlying write error")
	}
	if w.Err() == nil {
		t.Fatal("Err nil after failed Flush")
	}
	if err := w.Flush(); err == nil {
		t.Fatal("second Flush lost the sticky error")
	}
}

func TestTeeErrorPropagation(t *testing.T) {
	// A Tee keeps forwarding to the live memory even after the trace's
	// underlying writer breaks mid-stream, and the Writer reports the error
	// through Err and Flush rather than dropping events silently.
	w, err := NewWriter(&failAfter{n: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var out recorder
	tee := Tee{Out: &out, Trace: w}
	for i := 0; i < 4096; i++ { // >1 bufio buffer of encoded events
		tee.Load(memsys.Addr(i*64), 8)
	}
	if len(out.events) != 4096 {
		t.Fatalf("Tee dropped forwarded events: %d", len(out.events))
	}
	if w.Err() == nil {
		t.Fatal("mid-stream write error not deferred to Err")
	}
	if w.Flush() == nil {
		t.Fatal("Flush must surface the mid-stream error")
	}
	if w.Events() >= 4096 {
		t.Fatalf("recording should stop at the first failure, got %d events", w.Events())
	}
}

func TestCaptureQueryPropagatesWriteError(t *testing.T) {
	data := tpch.Generate(0.001, 7)
	if _, err := CaptureQuery(&failAfter{n: 8192}, data, tpch.Q6); err == nil {
		t.Fatal("CaptureQuery ignored the broken writer")
	}
}

func TestZigzag(t *testing.T) {
	for _, d := range []int64{0, 1, -1, 1 << 40, -(1 << 40)} {
		if unzigzag(zigzag(d)) != d {
			t.Fatalf("zigzag(%d) broken", d)
		}
	}
}

// Property: any event sequence round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(ops []uint32) bool {
		var buf bytes.Buffer
		w, err := NewWriter(&buf)
		if err != nil {
			return false
		}
		var want []event
		for _, o := range ops {
			switch o % 3 {
			case 0:
				a := memsys.Addr(o) * 7
				w.Load(a, 8)
				want = append(want, event{0, a, 8})
			case 1:
				a := memsys.Addr(o) * 3
				w.Store(a, 4)
				want = append(want, event{1, a, 4})
			default:
				w.Work(uint64(o % 1000))
				want = append(want, event{2, 0, uint64(o % 1000)})
			}
		}
		if w.Flush() != nil {
			return false
		}
		var rec recorder
		n, err := Replay(&buf, &rec)
		if err != nil || n != uint64(len(want)) {
			return false
		}
		for i := range want {
			if rec.events[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialCompression(t *testing.T) {
	// A sequential scan should cost ~3 bytes/event (op + tiny delta + size).
	var buf bytes.Buffer
	w, _ := NewWriter(&buf)
	for i := 0; i < 10_000; i++ {
		w.Load(memsys.Addr(i*8), 8)
	}
	w.Flush()
	perEvent := float64(buf.Len()) / 10_000
	if perEvent > 4 {
		t.Fatalf("%.2f bytes/event, want compact encoding", perEvent)
	}
}

func TestCaptureAndAnalyzeQuery(t *testing.T) {
	data := tpch.Generate(0.001, 7)
	var buf bytes.Buffer
	n, err := CaptureQuery(&buf, data, tpch.Q6)
	if err != nil {
		t.Fatal(err)
	}
	if n < uint64(len(data.Lineitem)) {
		t.Fatalf("trace too small: %d events for %d rows", n, len(data.Lineitem))
	}
	st, err := Analyze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if st.Loads == 0 || st.Stores == 0 || st.WorkOps == 0 || st.DistinctLines == 0 {
		t.Fatalf("analysis empty: %+v", st)
	}
	if st.Instructions <= st.Loads {
		t.Fatal("instruction estimate missing work")
	}
}

func TestReplayOntoMachineMatchesExecution(t *testing.T) {
	// Trace-driven and execution-driven modes must see the same reference
	// stream: replaying a 1-process capture onto a machine yields the same
	// loads/stores the machine counters would show.
	data := tpch.Generate(0.001, 7)
	var buf bytes.Buffer
	if _, err := CaptureQuery(&buf, data, tpch.Q12); err != nil {
		t.Fatal(err)
	}
	m := machine.New(machine.VClassSpec(2, 256))
	mem := &MachineMem{M: m, CPU: 0}
	if _, err := Replay(bytes.NewReader(buf.Bytes()), mem); err != nil {
		t.Fatal(err)
	}
	ct := m.Counters(0)
	if ct.Loads == 0 || ct.L1DMisses == 0 || mem.Cycles() == 0 {
		t.Fatalf("replay drove nothing: %+v", ct)
	}
	// CPI of the replayed stream should land in the usual band.
	if cpi := ct.CPI(); cpi < 1.0 || cpi > 3.0 {
		t.Fatalf("replayed CPI %.3f out of band", cpi)
	}
}
