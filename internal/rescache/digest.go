// Package rescache is the persistent, content-addressed result cache behind
// the serving layer. Every simulation in this repository is deterministic: a
// run is a pure function of its full configuration (machine spec, OS
// parameters, dataset identity, query, process count, every workload knob).
// rescache exploits that by digesting the canonical configuration and using
// the digest to key
//
//   - a two-tier (memory + disk) store of result JSON that survives daemon
//     restarts, and
//   - a singleflight table so N concurrent identical requests cost one
//     simulation, with a cancellation-aware lifecycle: the underlying run is
//     aborted only when the *last* waiter has gone.
package rescache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"dssmem/internal/machine"
	"dssmem/internal/simos"
	"dssmem/internal/workload"
)

// Digest is a hex-encoded SHA-256 content address.
type Digest string

// Short returns an abbreviated digest for logs and error messages.
func (d Digest) Short() string {
	if len(d) > 12 {
		return string(d[:12])
	}
	return string(d)
}

// requestSchema versions the canonical encoding; bump it whenever the Request
// shape, the encoding, or the simulation semantics behind it change, so stale
// disk caches miss instead of serving results of a different model.
const requestSchema = 1

// Request is the exhaustive canonical description of one workload run. Two
// runs with equal Requests produce byte-identical Measurement JSON, so the
// Request digest is a sound content address for the result.
//
// Deliberately excluded: workload.Options.Data (the dataset is identified by
// its generator inputs SF and Seed — the generator is deterministic),
// workload.Options.Obs (observation is passive and never perturbs results)
// and workload.Options.SimFault (wall-clock fault injection; simulated
// clocks and results are untouched).
type Request struct {
	Schema          int          `json:"schema"`
	DataSF          float64      `json:"data_sf"`
	DataSeed        uint64       `json:"data_seed"`
	Spec            machine.Spec `json:"spec"`
	OS              simos.Config `json:"os"`
	Quantum         uint64       `json:"quantum"`
	Query           string       `json:"query"`
	Mix             []string     `json:"mix,omitempty"`
	Processes       int          `json:"processes"`
	Validate        bool         `json:"validate"`
	SpinLimit       int          `json:"spin_limit"`
	BufHeaderBytes  int          `json:"buf_header_bytes"`
	OSTimeScale     int          `json:"os_time_scale"`
	HintBitFraction float64      `json:"hint_bit_fraction"`
	Trial           int          `json:"trial"`
	ColdRun         bool         `json:"cold_run"`
	// Parallel execution is timing-identity-relevant: bound–weave runs are
	// deterministic but not byte-identical to serial ones, so the mode and
	// window are part of the address. omitempty keeps every serial request's
	// digest byte-stable with pre-parallel caches.
	Parallel       bool   `json:"parallel,omitempty"`
	ParallelWindow uint64 `json:"parallel_window,omitempty"`
	// SampleQuanta > 1 selects SMARTS interval sampling: counters are
	// estimates, so sampled results must never share an address with exact
	// ones. omitempty keeps every exact request's digest byte-stable with
	// pre-sampling caches. Options.Warm is deliberately excluded: a restored
	// run is byte-identical to a cold-started one, so warm state is not
	// identity.
	SampleQuanta int `json:"sample_quanta,omitempty"`
}

// CanonicalRequest builds the Request for opts run over the dataset generated
// by tpch.Generate(sf, seed).
func CanonicalRequest(sf float64, seed uint64, opts workload.Options) Request {
	r := Request{
		Schema:          requestSchema,
		DataSF:          sf,
		DataSeed:        seed,
		Spec:            opts.Spec,
		OS:              opts.OS,
		Quantum:         uint64(opts.Quantum),
		Query:           CanonicalString(opts.Query.String()),
		Processes:       opts.Processes,
		Validate:        opts.Validate,
		SpinLimit:       opts.SpinLimit,
		BufHeaderBytes:  opts.BufHeaderBytes,
		OSTimeScale:     opts.OSTimeScale,
		HintBitFraction: opts.HintBitFraction,
		Trial:           opts.Trial,
		ColdRun:         opts.ColdRun,
		Parallel:        opts.Parallel,
		ParallelWindow:  opts.ParallelWindow,
		SampleQuanta:    opts.SampleQuanta,
	}
	for _, q := range opts.Mix {
		r.Mix = append(r.Mix, CanonicalString(q.String()))
	}
	return r
}

// CanonicalString maps a string to the form that survives a JSON round trip
// byte-for-byte. Go's encoder writes invalid UTF-8 bytes as a six-byte
// backslash-u escape of U+FFFD but a decoded U+FFFD literally, so a digest
// over a string
// with invalid bytes would change after one decode/re-encode cycle;
// replacing invalid bytes up front (idempotently) removes the instability.
// Found by FuzzDigestCanonical. Identity strings in practice (query names)
// are always valid UTF-8, so this is a no-op on the production path.
func CanonicalString(s string) string {
	return strings.ToValidUTF8(s, "�")
}

// Digest returns the request's content address.
func (r Request) Digest() Digest {
	d, err := DigestJSON(r)
	if err != nil {
		// A Request is plain data (numbers, strings, bools); encoding cannot
		// fail short of memory corruption.
		panic(fmt.Sprintf("rescache: request digest: %v", err))
	}
	return d
}

// DigestOptions returns the content address keying the results of one
// workload run (see CanonicalRequest for what identifies a run).
func DigestOptions(sf float64, seed uint64, opts workload.Options) Digest {
	return CanonicalRequest(sf, seed, opts).Digest()
}

// DigestJSON content-addresses any JSON-encodable value. Go's encoding/json
// emits struct fields in declaration order, so a fixed struct type is a
// stable canonical form; callers embed a schema version to guard against
// shape changes.
func DigestJSON(v any) (Digest, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return Digest(hex.EncodeToString(sum[:])), nil
}
