package rescache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dssmem/internal/fault"
)

func digestN(n byte) Digest {
	return Digest(strings.Repeat(string([]byte{'a' + n%16}), 64))
}

// TestCorruptEntryQuarantinedAndRecomputed is the issue's acceptance
// scenario: a hand-corrupted disk entry (one flipped byte) must be detected
// on read, quarantined, recomputed, and re-served correctly.
func TestCorruptEntryQuarantinedAndRecomputed(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := digestN(0)
	payload := []byte(`{"cpi":1.25,"query":"Q6"}`)
	if err := s1.Put(NSMeasurement, d, payload); err != nil {
		t.Fatal(err)
	}

	// Flip one byte of the payload region on disk.
	p := s1.path(NSMeasurement, d)
	raw, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x01
	if err := os.WriteFile(p, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store (no memory copy) must detect the corruption on read.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(NSMeasurement, d); ok {
		t.Fatalf("corrupt entry served as a hit: %q", v)
	}
	st := s2.Stats()
	if st.Corrupt != 1 || st.Quarantined != 1 {
		t.Fatalf("Corrupt=%d Quarantined=%d, want 1/1", st.Corrupt, st.Quarantined)
	}
	if st.DiskErrors != 0 {
		t.Fatalf("corruption wrongly counted as an I/O fault: %+v", st)
	}
	// The bad bytes are preserved for post-mortem, out of the serving tree.
	qfile := filepath.Join(s2.QuarantineDir(), NSMeasurement+"-"+string(d)+".json")
	qraw, err := os.ReadFile(qfile)
	if err != nil {
		t.Fatalf("quarantined entry missing: %v", err)
	}
	if string(qraw) != string(raw) {
		t.Fatal("quarantined bytes differ from the corrupt original")
	}
	if _, err := os.Stat(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("corrupt entry still in the serving tree")
	}

	// Do falls through to recompute and re-serves the correct value.
	var computes int
	v, hit, err := s2.Do(context.Background(), NSMeasurement, d, func(context.Context) ([]byte, error) {
		computes++
		return payload, nil
	})
	if err != nil || hit || string(v) != string(payload) || computes != 1 {
		t.Fatalf("recompute: v=%q hit=%v err=%v computes=%d", v, hit, err, computes)
	}

	// The recomputed entry is re-persisted and verifiable by a fresh store.
	s3, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s3.Get(NSMeasurement, d)
	if !ok || string(v) != string(payload) {
		t.Fatalf("re-persisted entry: %q, %v", v, ok)
	}
}

// TestTornWriteDetectedOnRead: a write that persisted only a prefix (crash
// mid-write that still renamed, or injected torn write) must never be served.
func TestTornWriteDetectedOnRead(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(11)
	inj.Set(fault.DiskWriteTorn, 1)
	s1, err := OpenFS(dir, fault.FS{Inner: OSFS{}, Inj: inj})
	if err != nil {
		t.Fatal(err)
	}
	d := digestN(1)
	if err := s1.Put(NSMeasurement, d, []byte(`{"big":"payload payload payload"}`)); err != nil {
		t.Fatalf("torn write surfaced as error: %v", err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := s2.Get(NSMeasurement, d); ok {
		t.Fatalf("torn entry served: %q", v)
	}
	if st := s2.Stats(); st.Corrupt != 1 {
		t.Fatalf("torn entry not flagged corrupt: %+v", st)
	}
}

// TestLegacyUnframedEntryQuarantined: pre-framing files (raw JSON, no
// header) are unverifiable and must be quarantined, not served.
func TestLegacyUnframedEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := digestN(2)
	p := s.path(NSFigure, d)
	os.MkdirAll(filepath.Dir(p), 0o755)
	os.WriteFile(p, []byte(`{"legacy":true}`), 0o644)
	if _, ok := s.Get(NSFigure, d); ok {
		t.Fatal("unverifiable legacy entry served")
	}
	if st := s.Stats(); st.Quarantined != 1 {
		t.Fatalf("legacy entry not quarantined: %+v", st)
	}
}

// TestGetDistinguishesIOErrorFromMiss pins the satellite fix: a cold cache
// is not a disk fault, a failing disk is not a cold cache.
func TestGetDistinguishesIOErrorFromMiss(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(5)
	s, err := OpenFS(dir, fault.FS{Inner: OSFS{}, Inj: inj})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSMeasurement, digestN(3)); ok {
		t.Fatal("hit on absent digest")
	}
	if st := s.Stats(); st.DiskErrors != 0 {
		t.Fatalf("plain miss counted as disk error: %+v", st)
	}
	inj.Set(fault.DiskReadErr, 1)
	if _, ok := s.Get(NSMeasurement, digestN(4)); ok {
		t.Fatal("hit through failing disk")
	}
	if st := s.Stats(); st.DiskErrors != 1 {
		t.Fatalf("injected I/O error not counted: %+v", st)
	}
}

// TestBreakerTripsAndRecovers drives the full state machine: consecutive
// faults -> open (memory-only), cooldown -> half-open probe, probe failure
// -> open again, probe success -> closed.
func TestBreakerTripsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(21)
	s, err := OpenFS(dir, fault.FS{Inner: OSFS{}, Inj: inj})
	if err != nil {
		t.Fatal(err)
	}
	s.SetBreaker(3, time.Hour)
	clock := time.Unix(1_000_000, 0)
	s.brk.now = func() time.Time { return clock }

	inj.Set(fault.DiskReadErr, 1)
	for i := 0; i < 3; i++ {
		if s.Degraded() {
			t.Fatalf("degraded after only %d faults", i)
		}
		s.Get(NSMeasurement, digestN(byte(5+i)))
	}
	if !s.Degraded() {
		t.Fatal("breaker did not trip after 3 consecutive faults")
	}
	if st := s.Stats(); st.Breaker != "open" || st.BreakerTrips != 1 {
		t.Fatalf("after trip: %+v", st)
	}

	// Open: disk bypassed entirely — no reads attempted, Puts skip disk.
	before := s.Stats().DiskErrors
	s.Get(NSMeasurement, digestN(8))
	if err := s.Put(NSMeasurement, digestN(9), []byte("v")); err != nil {
		t.Fatalf("degraded Put failed: %v", err)
	}
	st := s.Stats()
	if st.DiskErrors != before {
		t.Fatal("disk touched while breaker open")
	}
	if st.DiskSkipped == 0 {
		t.Fatal("skipped operations not counted")
	}
	if v, ok := s.Get(NSMeasurement, digestN(9)); !ok || string(v) != "v" {
		t.Fatal("memory tier broken in degraded mode")
	}
	if _, err := os.Stat(s.path(NSMeasurement, digestN(9))); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("degraded Put wrote to disk")
	}

	// Cooldown elapses; the probe fails; breaker re-opens.
	clock = clock.Add(2 * time.Hour)
	s.Get(NSMeasurement, digestN(10))
	if st := s.Stats(); st.Breaker != "open" || st.BreakerTrips != 2 {
		t.Fatalf("failed probe should re-open: %+v", st)
	}

	// Disk heals; next probe succeeds (ErrNotExist = healthy answer).
	inj.DisableAll()
	clock = clock.Add(2 * time.Hour)
	s.Get(NSMeasurement, digestN(11))
	if s.Degraded() {
		t.Fatal("breaker did not close after a successful probe")
	}
	// Persistence resumes.
	if err := s.Put(NSMeasurement, digestN(12), []byte("back")); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(s.path(NSMeasurement, digestN(12))); err != nil {
		t.Fatalf("recovered Put not on disk: %v", err)
	}
}

// TestOrphanSweep: temp files from a crashed writer are removed at Open.
func TestOrphanSweep(t *testing.T) {
	dir := t.TempDir()
	orphan := filepath.Join(dir, NSMeasurement, "ab", ".abcdef.tmp-3")
	os.MkdirAll(filepath.Dir(orphan), 0o755)
	os.WriteFile(orphan, []byte("half a result"), 0o644)

	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.OrphansSwept != 1 {
		t.Fatalf("OrphansSwept = %d, want 1", st.OrphansSwept)
	}
	if _, err := os.Stat(orphan); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("orphan temp file survived the sweep")
	}
}

// TestDoPanicRacesLastWaiterCancellation (satellite): a compute panicking
// while the last waiter is simultaneously cancelling must neither deadlock
// nor corrupt the flight table. Run with -race.
func TestDoPanicRacesLastWaiterCancellation(t *testing.T) {
	for i := 0; i < 150; i++ {
		s := NewMemory()
		d := digestN(byte(i))
		ctx1, cancel1 := context.WithCancel(context.Background())
		ctx2, cancel2 := context.WithCancel(context.Background())
		enter := make(chan struct{})
		compute := func(runCtx context.Context) ([]byte, error) {
			close(enter)
			// Vary interleaving: sometimes panic immediately, sometimes
			// after the waiters have started leaving.
			if i%3 != 0 {
				time.Sleep(time.Duration(i%5) * 50 * time.Microsecond)
			}
			panic(fault.ErrInjected)
		}

		var wg sync.WaitGroup
		errs := make([]error, 2)
		wg.Add(2)
		go func() {
			defer wg.Done()
			_, _, errs[0] = s.Do(ctx1, NSMeasurement, d, compute)
		}()
		go func() {
			defer wg.Done()
			_, _, errs[1] = s.Do(ctx2, NSMeasurement, d, compute)
		}()
		<-enter
		// Both waiters leave while the compute is panicking.
		cancel1()
		cancel2()
		wg.Wait()

		for w, err := range errs {
			if err == nil {
				t.Fatalf("iter %d waiter %d: nil error from cancelled/panicked flight", i, w)
			}
			if !errors.Is(err, context.Canceled) && !errors.Is(err, ErrPanicked) {
				t.Fatalf("iter %d waiter %d: unexpected error %v", i, w, err)
			}
		}
		// The store must remain fully usable: same digest, fresh compute.
		// (An immediate retry may still join the panicking flight — that is
		// the documented semantics — so retry until the flight has drained.)
		var v []byte
		var err error
		for try := 0; try < 50; try++ {
			v, _, err = s.Do(context.Background(), NSMeasurement, d, func(context.Context) ([]byte, error) {
				return []byte("recovered"), nil
			})
			if err == nil {
				break
			}
			if !errors.Is(err, ErrPanicked) {
				t.Fatalf("iter %d retry: unexpected error %v", i, err)
			}
			time.Sleep(time.Millisecond)
		}
		if err != nil || string(v) != "recovered" {
			t.Fatalf("iter %d: store wedged after race: v=%q err=%v", i, v, err)
		}
		cancel1()
		cancel2()
	}
}

// TestPanicErrorIsTyped: waiters can classify panics via errors.Is (the
// service maps them to a retriable status).
func TestPanicErrorIsTyped(t *testing.T) {
	s := NewMemory()
	_, _, err := s.Do(context.Background(), NSMeasurement, digestN(40), func(context.Context) ([]byte, error) {
		panic("kaboom")
	})
	if !errors.Is(err, ErrPanicked) {
		t.Fatalf("err = %v, want ErrPanicked", err)
	}
}
