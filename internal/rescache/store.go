package rescache

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sync"
	"sync/atomic"
)

// Namespaces partition the store by result kind. They appear in disk paths,
// so they must stay filename-safe (see validNS).
const (
	NSMeasurement = "measurement"
	NSFigure      = "figure"
	NSSweep       = "sweep"
)

var validNS = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// Stats is a snapshot of the store's counters (the daemon's /metrics source).
type Stats struct {
	MemHits    uint64 // served from the in-memory tier
	DiskHits   uint64 // served from disk (then promoted to memory)
	Misses     uint64 // required a compute
	Shared     uint64 // joined an in-flight identical compute (singleflight)
	Puts       uint64 // results stored
	Aborted    uint64 // computes cancelled because every waiter left
	Panics     uint64 // computes that panicked (isolated, reported as errors)
	DiskErrors uint64 // disk reads/writes that failed (store degrades to memory)
}

// Store is a two-tier content-addressed result store with singleflight
// deduplication. The memory tier is authoritative for the process lifetime;
// the optional disk tier persists results across restarts. All methods are
// safe for concurrent use.
type Store struct {
	dir string // "" = memory only

	mu      sync.Mutex
	mem     map[string][]byte
	flights map[string]*flight

	memHits    atomic.Uint64
	diskHits   atomic.Uint64
	misses     atomic.Uint64
	shared     atomic.Uint64
	puts       atomic.Uint64
	aborted    atomic.Uint64
	panics     atomic.Uint64
	diskErrors atomic.Uint64
}

// flight is one in-progress compute. Waiters hold a reference; when the last
// one leaves, the compute's context is cancelled so the simulation aborts
// instead of burning cycles for nobody.
type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

// Open returns a store persisting to dir (created if absent). An empty dir
// yields a memory-only store.
func Open(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: %w", err)
		}
	}
	return &Store{
		dir:     dir,
		mem:     make(map[string][]byte),
		flights: make(map[string]*flight),
	}, nil
}

// NewMemory returns a memory-only store (tests, one-shot CLI runs).
func NewMemory() *Store {
	s, _ := Open("")
	return s
}

// Dir reports the disk tier's directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		MemHits:    s.memHits.Load(),
		DiskHits:   s.diskHits.Load(),
		Misses:     s.misses.Load(),
		Shared:     s.shared.Load(),
		Puts:       s.puts.Load(),
		Aborted:    s.aborted.Load(),
		Panics:     s.panics.Load(),
		DiskErrors: s.diskErrors.Load(),
	}
}

func key(ns string, d Digest) string { return ns + "/" + string(d) }

// path maps a digest to its disk location, fanned out over a two-hex-char
// prefix directory to keep directories small.
func (s *Store) path(ns string, d Digest) string {
	prefix := "00"
	if len(d) >= 2 {
		prefix = string(d[:2])
	}
	return filepath.Join(s.dir, ns, prefix, string(d)+".json")
}

// Get returns the stored bytes for (ns, d): memory first, then disk (a disk
// hit is promoted to memory). The returned slice must not be modified.
func (s *Store) Get(ns string, d Digest) ([]byte, bool) {
	s.mu.Lock()
	v, ok := s.mem[key(ns, d)]
	s.mu.Unlock()
	if ok {
		s.memHits.Add(1)
		return v, true
	}
	if s.dir == "" || !validNS.MatchString(ns) {
		return nil, false
	}
	b, err := os.ReadFile(s.path(ns, d))
	if err != nil {
		if !os.IsNotExist(err) {
			s.diskErrors.Add(1)
		}
		return nil, false
	}
	s.mu.Lock()
	s.mem[key(ns, d)] = b
	s.mu.Unlock()
	s.diskHits.Add(1)
	return b, true
}

// Put stores v under (ns, d) in memory and, when configured, on disk
// (atomically: temp file + rename). A disk failure degrades the store to
// memory-only for that entry and is reported, but the value remains served.
func (s *Store) Put(ns string, d Digest, v []byte) error {
	if !validNS.MatchString(ns) {
		return fmt.Errorf("rescache: invalid namespace %q", ns)
	}
	s.mu.Lock()
	s.mem[key(ns, d)] = v
	s.mu.Unlock()
	s.puts.Add(1)
	if s.dir == "" {
		return nil
	}
	p := s.path(ns, d)
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.diskErrors.Add(1)
		return fmt.Errorf("rescache: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "."+string(d.Short())+".tmp-*")
	if err != nil {
		s.diskErrors.Add(1)
		return fmt.Errorf("rescache: %w", err)
	}
	if _, err := tmp.Write(v); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		s.diskErrors.Add(1)
		return fmt.Errorf("rescache: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		s.diskErrors.Add(1)
		return fmt.Errorf("rescache: %w", err)
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		os.Remove(tmp.Name())
		s.diskErrors.Add(1)
		return fmt.Errorf("rescache: %w", err)
	}
	return nil
}

// Do returns the cached bytes for (ns, d), computing them at most once across
// all concurrent callers. hit reports whether the result came from the cache
// without waiting on a compute started by this call chain.
//
// Lifecycle contract:
//   - compute runs on its own goroutine with a context that is cancelled
//     only when every waiter has abandoned the flight (last-waiter-cancels),
//     so one client disconnecting never aborts a run others still want;
//   - a panicking compute is isolated: waiters receive it as an error, the
//     store stays usable;
//   - a caller whose ctx ends stops waiting and gets ctx's error; the
//     compute result (if it still finishes) is cached for future callers;
//   - failed computes are not cached — the next request retries.
func (s *Store) Do(ctx context.Context, ns string, d Digest, compute func(context.Context) ([]byte, error)) (v []byte, hit bool, err error) {
	if v, ok := s.Get(ns, d); ok {
		return v, true, nil
	}
	k := key(ns, d)
	s.mu.Lock()
	// Re-check memory under the lock: a flight may have completed between
	// Get and here.
	if v, ok := s.mem[k]; ok {
		s.mu.Unlock()
		s.memHits.Add(1)
		return v, true, nil
	}
	f := s.flights[k]
	if f == nil {
		runCtx, cancel := context.WithCancelCause(context.Background())
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		s.flights[k] = f
		s.mu.Unlock()
		s.misses.Add(1)
		go s.runFlight(k, ns, d, f, runCtx, compute)
	} else {
		f.waiters++
		s.mu.Unlock()
		s.shared.Add(1)
	}

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		// The flight may have completed in the same instant; prefer its
		// result over a spurious abort.
		select {
		case <-f.done:
			return f.val, false, f.err
		default:
		}
		s.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		s.mu.Unlock()
		if last {
			s.aborted.Add(1)
			f.cancel(context.Cause(ctx))
		}
		return nil, false, ctx.Err()
	}
}

// runFlight executes one compute with panic isolation and publishes the
// outcome.
func (s *Store) runFlight(k, ns string, d Digest, f *flight, runCtx context.Context, compute func(context.Context) ([]byte, error)) {
	var v []byte
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				err = fmt.Errorf("rescache: compute %s/%s panicked: %v", ns, d.Short(), r)
			}
		}()
		v, err = compute(runCtx)
	}()
	if err == nil {
		// A disk failure must not fail the request; the value is still good.
		_ = s.Put(ns, d, v)
	}
	s.mu.Lock()
	delete(s.flights, k)
	s.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	f.cancel(nil) // release the context's resources
}
