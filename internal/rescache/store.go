package rescache

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssmem/internal/telemetry"
)

// Namespaces partition the store by result kind. They appear in disk paths,
// so they must stay filename-safe (see validNS).
const (
	NSMeasurement = "measurement"
	NSFigure      = "figure"
	NSSweep       = "sweep"
	// NSWarm holds warm-state checkpoints (internal/ckpt snapshots): the
	// database image at the measured-region boundary, keyed by the ckpt.Key
	// digest. Entries are large relative to result JSON but one snapshot
	// serves every machine spec, query, process count and trial at its
	// (SF, seed, layout) identity.
	NSWarm = "warmstate"
)

// quarantineDir holds entries that failed read verification, preserved for
// post-mortem instead of deleted. It is not a namespace; validNS namespaces
// never collide with it in practice (the store's namespaces are fixed).
const quarantineDir = "quarantine"

var validNS = regexp.MustCompile(`^[a-z][a-z0-9-]*$`)

// ErrPanicked marks a compute that panicked; the panic was recovered at the
// flight boundary and the digest stays retriable. Test with errors.Is.
var ErrPanicked = errors.New("compute panicked")

// errDegraded is the internal signal that the breaker bypassed a disk
// operation (memory-only degraded mode).
var errDegraded = errors.New("rescache: disk tier degraded")

// Stats is a snapshot of the store's counters (the daemon's /metrics source).
type Stats struct {
	MemHits      uint64 // served from the in-memory tier
	DiskHits     uint64 // served from disk (verified, then promoted to memory)
	Misses       uint64 // required a compute
	Shared       uint64 // joined an in-flight identical compute (singleflight)
	Puts         uint64 // results stored
	PeerHits     uint64 // misses filled from a peer (verified)
	PeerMisses   uint64 // peer tier consulted, no peer had the entry
	PeerErrors   uint64 // peer fetches that failed in transport (feed the peer breaker)
	PeerCorrupt  uint64 // peer replies that failed frame verification
	PeerSkipped  uint64 // peer fetches bypassed while the peer breaker was open
	PeerBreaker  string // peer breaker position ("" when the tier is unarmed)
	Aborted      uint64 // computes cancelled because every waiter left
	Panics       uint64 // computes that panicked (isolated, reported as errors)
	DiskErrors   uint64 // disk reads/writes that failed with a real I/O error
	Corrupt      uint64 // disk entries that failed checksum verification
	Quarantined  uint64 // corrupt entries moved to quarantine/
	DiskSkipped  uint64 // disk operations bypassed while the breaker was open
	BreakerTrips uint64 // closed/half-open -> open transitions
	OrphansSwept uint64 // leftover *.tmp files removed at startup
	Breaker      string // breaker position: closed | half-open | open
	Degraded     bool   // true when the disk tier is bypassed (not closed)
}

// Store is a two-tier content-addressed result store with singleflight
// deduplication. The memory tier is authoritative for the process lifetime;
// the optional disk tier persists results across restarts. Every disk entry
// is checksummed: a read that fails verification is quarantined and falls
// through to recompute — the store never serves bytes it cannot verify.
// Consecutive disk faults trip a circuit breaker into memory-only degraded
// mode with half-open probes. All methods are safe for concurrent use.
type Store struct {
	dir  string // "" = memory only
	fsys FS
	brk  *breaker

	// peer is the optional peer-fill tier (SetPeerFetch): consulted on a
	// full local miss, inside the singleflight flight, before computing.
	peer    PeerFetch
	peerBrk *breaker

	mu      sync.Mutex
	mem     map[string][]byte
	flights map[string]*flight

	tmpSeq atomic.Uint64 // unique temp-file names within this process

	memHits     atomic.Uint64
	diskHits    atomic.Uint64
	misses      atomic.Uint64
	shared      atomic.Uint64
	puts        atomic.Uint64
	aborted     atomic.Uint64
	panics      atomic.Uint64
	diskErrors  atomic.Uint64
	corrupt     atomic.Uint64
	quarantined atomic.Uint64
	diskSkipped atomic.Uint64
	orphans     atomic.Uint64

	peerHits    atomic.Uint64
	peerMisses  atomic.Uint64
	peerErrors  atomic.Uint64
	peerCorrupt atomic.Uint64
	peerSkipped atomic.Uint64
}

// flight is one in-progress compute. Waiters hold a reference; when the last
// one leaves, the compute's context is cancelled so the simulation aborts
// instead of burning cycles for nobody.
type flight struct {
	done    chan struct{}
	val     []byte
	err     error
	waiters int
	cancel  context.CancelCauseFunc
}

// Open returns a store persisting to dir (created if absent) on the real
// filesystem. An empty dir yields a memory-only store.
func Open(dir string) (*Store, error) {
	return OpenFS(dir, OSFS{})
}

// OpenFS is Open over an explicit filesystem — the seam the fault-injection
// layer uses. Startup sweeps temp files orphaned by crashes mid-write.
func OpenFS(dir string, fsys FS) (*Store, error) {
	s := &Store{
		dir:     dir,
		fsys:    fsys,
		brk:     newBreaker(0, 0),
		mem:     make(map[string][]byte),
		flights: make(map[string]*flight),
	}
	if dir != "" {
		if err := fsys.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("rescache: %w", err)
		}
		s.sweepOrphans()
	}
	return s, nil
}

// NewMemory returns a memory-only store (tests, one-shot CLI runs).
func NewMemory() *Store {
	s, _ := Open("")
	return s
}

// sweepOrphans removes temp files a crashed process left behind; they were
// never renamed into place, so deleting them loses nothing.
func (s *Store) sweepOrphans() {
	matches, err := s.fsys.Glob(filepath.Join(s.dir, "*", "*", ".*.tmp-*"))
	if err != nil {
		return
	}
	for _, m := range matches {
		if s.fsys.Remove(m) == nil {
			s.orphans.Add(1)
		}
	}
}

// SetBreaker reconfigures the disk circuit breaker: trip after threshold
// consecutive disk faults, probe again after cooldown. Zero values keep the
// defaults. Call before serving traffic.
func (s *Store) SetBreaker(threshold int, cooldown time.Duration) {
	s.brk = newBreaker(threshold, cooldown)
}

// Degraded reports whether the disk tier is currently bypassed (breaker not
// closed). Memory-only stores are never degraded — they have no disk tier
// to lose.
func (s *Store) Degraded() bool {
	if s.dir == "" {
		return false
	}
	st, _ := s.brk.snapshot()
	return st != BreakerClosed
}

// Dir reports the disk tier's directory ("" when memory-only).
func (s *Store) Dir() string { return s.dir }

// QuarantineDir reports where corrupt entries are preserved ("" when
// memory-only).
func (s *Store) QuarantineDir() string {
	if s.dir == "" {
		return ""
	}
	return filepath.Join(s.dir, quarantineDir)
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	bst, trips := s.brk.snapshot()
	peerBrk := ""
	if s.peer != nil {
		pst, _ := s.peerBrk.snapshot()
		peerBrk = pst.String()
	}
	return Stats{
		MemHits:      s.memHits.Load(),
		DiskHits:     s.diskHits.Load(),
		Misses:       s.misses.Load(),
		Shared:       s.shared.Load(),
		Puts:         s.puts.Load(),
		Aborted:      s.aborted.Load(),
		Panics:       s.panics.Load(),
		DiskErrors:   s.diskErrors.Load(),
		Corrupt:      s.corrupt.Load(),
		Quarantined:  s.quarantined.Load(),
		DiskSkipped:  s.diskSkipped.Load(),
		BreakerTrips: trips,
		OrphansSwept: s.orphans.Load(),
		PeerHits:     s.peerHits.Load(),
		PeerMisses:   s.peerMisses.Load(),
		PeerErrors:   s.peerErrors.Load(),
		PeerCorrupt:  s.peerCorrupt.Load(),
		PeerSkipped:  s.peerSkipped.Load(),
		PeerBreaker:  peerBrk,
		Breaker:      bst.String(),
		Degraded:     s.dir != "" && bst != BreakerClosed,
	}
}

func key(ns string, d Digest) string { return ns + "/" + string(d) }

// path maps a digest to its disk location, fanned out over a two-hex-char
// prefix directory to keep directories small.
func (s *Store) path(ns string, d Digest) string {
	prefix := "00"
	if len(d) >= 2 {
		prefix = string(d[:2])
	}
	return filepath.Join(s.dir, ns, prefix, string(d)+".json")
}

// Digests lists every digest held under ns, union of the memory and disk
// tiers, sorted. It powers the anti-entropy repair pass: a coordinator
// compares these listings across workers to find entries a failover computed
// on the wrong owner. Disk scan errors are ignored — a listing is advisory,
// the frames themselves are verified on every read.
func (s *Store) Digests(ns string) []Digest {
	set := make(map[Digest]struct{})
	prefix := ns + "/"
	s.mu.Lock()
	for k := range s.mem {
		if strings.HasPrefix(k, prefix) {
			set[Digest(k[len(prefix):])] = struct{}{}
		}
	}
	s.mu.Unlock()
	if s.dir != "" && validNS.MatchString(ns) {
		paths, _ := s.fsys.Glob(filepath.Join(s.dir, ns, "*", "*.json"))
		for _, p := range paths {
			base := strings.TrimSuffix(filepath.Base(p), ".json")
			if validDigestShape(base) {
				set[Digest(base)] = struct{}{}
			}
		}
	}
	out := make([]Digest, 0, len(set))
	for d := range set {
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// validDigestShape matches the hex digests the store writes; tmp files and
// strays in the cache tree are skipped by listings.
func validDigestShape(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get returns the stored bytes for (ns, d): memory first, then disk (a
// verified disk hit is promoted to memory). The returned slice must not be
// modified.
func (s *Store) Get(ns string, d Digest) ([]byte, bool) {
	return s.getCtx(context.Background(), ns, d)
}

// getCtx is Get charging tier lookup time to the request tracked on ctx (a
// nil tracked request makes both phase hooks no-ops, so untracked callers —
// CLI runs, tests — pay only a context lookup).
func (s *Store) getCtx(ctx context.Context, ns string, d Digest) ([]byte, bool) {
	q := telemetry.FromContext(ctx)
	endMem := q.StartPhase(telemetry.PhaseCacheMem)
	s.mu.Lock()
	v, ok := s.mem[key(ns, d)]
	s.mu.Unlock()
	endMem()
	if ok {
		s.memHits.Add(1)
		return v, true
	}
	if s.dir == "" || !validNS.MatchString(ns) {
		return nil, false
	}
	endDisk := q.StartPhase(telemetry.PhaseCacheDisk)
	b, err := s.diskGet(ns, d)
	endDisk()
	if err != nil {
		return nil, false
	}
	s.mu.Lock()
	s.mem[key(ns, d)] = b
	s.mu.Unlock()
	s.diskHits.Add(1)
	return b, true
}

// diskGet reads and verifies one disk entry. The error taxonomy matters:
//
//   - fs.ErrNotExist is a cold cache — a healthy answer, not a fault;
//   - ErrCorrupt means the bytes were readable but unverifiable — the entry
//     is quarantined and the caller recomputes;
//   - anything else is a real I/O fault and feeds the circuit breaker
//     (errDegraded reports the breaker already open: disk bypassed).
func (s *Store) diskGet(ns string, d Digest) ([]byte, error) {
	if !s.brk.allow() {
		s.diskSkipped.Add(1)
		return nil, errDegraded
	}
	b, err := s.fsys.ReadFile(s.path(ns, d))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			s.brk.success()
			return nil, err
		}
		s.diskErrors.Add(1)
		s.brk.failure()
		return nil, err
	}
	payload, err := unframe(b)
	if err != nil {
		// The disk performed the read; the data was bad. Quarantine the
		// entry for post-mortem and fall through to recompute. This is not
		// a breaker event: the I/O path is healthy.
		s.brk.success()
		s.corrupt.Add(1)
		s.quarantine(ns, d)
		return nil, err
	}
	s.brk.success()
	return payload, nil
}

// quarantine moves a corrupt entry out of the serving tree, preserving the
// bytes for inspection; if the move fails the entry is deleted so it can
// never be read again.
func (s *Store) quarantine(ns string, d Digest) {
	src := s.path(ns, d)
	dst := filepath.Join(s.dir, quarantineDir, ns+"-"+string(d)+".json")
	if err := s.fsys.MkdirAll(filepath.Dir(dst), 0o755); err == nil {
		if s.fsys.Rename(src, dst) == nil {
			s.quarantined.Add(1)
			return
		}
	}
	if s.fsys.Remove(src) == nil {
		s.quarantined.Add(1)
	}
}

// Put stores v under (ns, d) in memory and, when configured, on disk
// (checksummed frame, atomic temp-file + rename). A disk failure degrades
// the store to memory-only for that entry and is reported, but the value
// remains served; while the breaker is open the disk is skipped entirely
// (nil error — degraded mode is normal operation, not a failure).
func (s *Store) Put(ns string, d Digest, v []byte) error {
	if !validNS.MatchString(ns) {
		return fmt.Errorf("rescache: invalid namespace %q", ns)
	}
	s.mu.Lock()
	s.mem[key(ns, d)] = v
	s.mu.Unlock()
	s.puts.Add(1)
	if s.dir == "" {
		return nil
	}
	if !s.brk.allow() {
		s.diskSkipped.Add(1)
		return nil
	}
	p := s.path(ns, d)
	if err := s.fsys.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return s.putFailed(err)
	}
	tmp := filepath.Join(filepath.Dir(p), fmt.Sprintf(".%s.tmp-%d", d.Short(), s.tmpSeq.Add(1)))
	if err := s.fsys.WriteFile(tmp, frame(v), 0o644); err != nil {
		s.fsys.Remove(tmp)
		return s.putFailed(err)
	}
	if err := s.fsys.Rename(tmp, p); err != nil {
		s.fsys.Remove(tmp)
		return s.putFailed(err)
	}
	s.brk.success()
	return nil
}

func (s *Store) putFailed(err error) error {
	s.diskErrors.Add(1)
	s.brk.failure()
	return fmt.Errorf("rescache: %w", err)
}

// Do returns the cached bytes for (ns, d), computing them at most once across
// all concurrent callers. hit reports whether the result came from the cache
// without waiting on a compute started by this call chain.
//
// Lifecycle contract:
//   - compute runs on its own goroutine with a context that is cancelled
//     only when every waiter has abandoned the flight (last-waiter-cancels),
//     so one client disconnecting never aborts a run others still want;
//   - a panicking compute is isolated: waiters receive it as an error
//     wrapping ErrPanicked, the store stays usable;
//   - a caller whose ctx ends stops waiting and gets ctx's error; the
//     compute result (if it still finishes) is cached for future callers;
//   - failed computes are not cached — the next request retries.
func (s *Store) Do(ctx context.Context, ns string, d Digest, compute func(context.Context) ([]byte, error)) (v []byte, hit bool, err error) {
	if v, ok := s.getCtx(ctx, ns, d); ok {
		return v, true, nil
	}
	k := key(ns, d)
	s.mu.Lock()
	// Re-check memory under the lock: a flight may have completed between
	// Get and here.
	if v, ok := s.mem[k]; ok {
		s.mu.Unlock()
		s.memHits.Add(1)
		return v, true, nil
	}
	f := s.flights[k]
	if f == nil {
		// The flight's context is deliberately not derived from ctx (its
		// lifetime is last-waiter-cancels, not first-caller), but it does
		// carry the starting caller's tracked request so the compute layers
		// charge their phases somewhere: the request that caused the compute.
		// Joiners share the result without being charged.
		base := context.Background()
		if q := telemetry.FromContext(ctx); q != nil {
			base = telemetry.NewContext(base, q)
		}
		runCtx, cancel := context.WithCancelCause(base)
		f = &flight{done: make(chan struct{}), waiters: 1, cancel: cancel}
		s.flights[k] = f
		s.mu.Unlock()
		s.misses.Add(1)
		go s.runFlight(k, ns, d, f, runCtx, compute)
	} else {
		f.waiters++
		s.mu.Unlock()
		s.shared.Add(1)
	}

	select {
	case <-f.done:
		return f.val, false, f.err
	case <-ctx.Done():
		// The flight may have completed in the same instant; prefer its
		// result over a spurious abort.
		select {
		case <-f.done:
			return f.val, false, f.err
		default:
		}
		s.mu.Lock()
		f.waiters--
		last := f.waiters == 0
		s.mu.Unlock()
		if last {
			s.aborted.Add(1)
			f.cancel(context.Cause(ctx))
		}
		return nil, false, ctx.Err()
	}
}

// runFlight resolves one flight — peer fill first when the tier is armed,
// compute otherwise — with panic isolation, and publishes the outcome. The
// peer fetch lives inside the flight so singleflight covers it too: N
// concurrent misses on one digest cost at most one peer round trip.
func (s *Store) runFlight(k, ns string, d Digest, f *flight, runCtx context.Context, compute func(context.Context) ([]byte, error)) {
	var v []byte
	var err error
	func() {
		defer func() {
			if r := recover(); r != nil {
				s.panics.Add(1)
				err = fmt.Errorf("rescache: compute %s/%s: %w: %v", ns, d.Short(), ErrPanicked, r)
			}
		}()
		if pv, ok := s.peerGet(runCtx, ns, d); ok {
			v = pv
			return
		}
		v, err = compute(runCtx)
	}()
	if err == nil {
		// A disk failure must not fail the request; the value is still good.
		_ = s.Put(ns, d, v)
	}
	s.mu.Lock()
	delete(s.flights, k)
	s.mu.Unlock()
	f.val, f.err = v, err
	close(f.done)
	f.cancel(nil) // release the context's resources
}
