package rescache

import (
	"io/fs"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the disk tier runs on. Production uses OSFS;
// the fault layer (internal/fault.FS) wraps it to inject read/write errors,
// corrupted bytes and torn writes, so the store's failure handling is
// exercised on exactly the code paths production runs.
type FS interface {
	ReadFile(name string) ([]byte, error)
	WriteFile(name string, data []byte, perm fs.FileMode) error
	MkdirAll(path string, perm fs.FileMode) error
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Glob(pattern string) ([]string, error)
}

// OSFS is the production filesystem.
type OSFS struct{}

func (OSFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (OSFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (OSFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OSFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OSFS) Remove(name string) error                     { return os.Remove(name) }
func (OSFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }
