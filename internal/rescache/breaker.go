package rescache

import (
	"sync"
	"time"
)

// BreakerState is the disk-tier circuit breaker's position.
type BreakerState int

const (
	// BreakerClosed: disk operations flow normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the disk tier is bypassed (memory-only degraded mode);
	// after the cooldown one probe operation is allowed through.
	BreakerOpen
	// BreakerHalfOpen: a probe operation is in flight; its outcome closes
	// or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// Defaults for the store's breaker; override with Store.SetBreaker.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second
)

// breaker trips the store into memory-only operation after `threshold`
// consecutive disk faults, and probes the disk again (half-open, one
// operation at a time) once `cooldown` has elapsed. A missing file is a
// healthy disk answering truthfully, so only real I/O errors count as
// failures — that distinction is why Store reads must not fold every error
// into "miss".
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable clock (tests)

	state    BreakerState
	consec   int
	openedAt time.Time
	trips    uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	return &breaker{threshold: threshold, cooldown: cooldown, now: time.Now}
}

// allow reports whether a disk operation may proceed. While open, the first
// call after the cooldown transitions to half-open and is admitted as the
// probe; concurrent calls keep being rejected until the probe resolves.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.state = BreakerHalfOpen
			return true
		}
		return false
	default: // BreakerHalfOpen: a probe is already out
		return false
	}
}

// success records a completed disk operation; it closes a half-open breaker
// and resets the consecutive-failure count.
func (b *breaker) success() {
	b.mu.Lock()
	b.consec = 0
	b.state = BreakerClosed
	b.mu.Unlock()
}

// failure records a disk fault; the breaker opens when the probe fails or
// the consecutive-failure count reaches the threshold.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consec++
	if b.state == BreakerHalfOpen || (b.state == BreakerClosed && b.consec >= b.threshold) {
		b.state = BreakerOpen
		b.openedAt = b.now()
		b.trips++
	}
}

// snapshot returns (state, trips) without racing the transitions.
func (b *breaker) snapshot() (BreakerState, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.trips
}
