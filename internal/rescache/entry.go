package rescache

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Disk entries are framed so every read is verifiable: a one-line JSON
// header carrying the payload's length and SHA-256, then the payload bytes.
// A flipped bit, a torn write, a truncation — anything that breaks the
// checksum — is detected on read and the entry is quarantined instead of
// served. entrySchema versions the frame itself.
const entrySchema = 1

type entryHeader struct {
	Schema int    `json:"schema"`
	Alg    string `json:"alg"`
	Sum    string `json:"sum"`
	Len    int    `json:"len"`
}

// ErrCorrupt marks a disk entry that failed verification (bad frame, length
// mismatch, or checksum mismatch). Test with errors.Is.
var ErrCorrupt = errors.New("rescache: corrupt entry")

// frame wraps payload in a verifiable on-disk representation.
func frame(payload []byte) []byte {
	sum := sha256.Sum256(payload)
	h, err := json.Marshal(entryHeader{
		Schema: entrySchema,
		Alg:    "sha256",
		Sum:    hex.EncodeToString(sum[:]),
		Len:    len(payload),
	})
	if err != nil {
		// entryHeader is plain data; Marshal cannot fail.
		panic(fmt.Sprintf("rescache: frame header: %v", err))
	}
	out := make([]byte, 0, len(h)+1+len(payload))
	out = append(out, h...)
	out = append(out, '\n')
	return append(out, payload...)
}

// FrameEntry wraps payload in the checksummed entry framing. The peer-fetch
// wire format (/v1/cache/{ns}/{digest}) reuses the disk frame verbatim, so a
// fetching worker verifies peer bytes exactly as it verifies its own disk.
func FrameEntry(payload []byte) []byte { return frame(payload) }

// UnframeEntry verifies a framed entry (disk or peer wire format) and returns
// its payload; verification failures return ErrCorrupt.
func UnframeEntry(b []byte) ([]byte, error) { return unframe(b) }

// unframe verifies b and returns its payload. Any verification failure —
// including pre-framing legacy files — returns ErrCorrupt, and the caller
// quarantines and recomputes rather than serving unverified bytes.
func unframe(b []byte) ([]byte, error) {
	nl := bytes.IndexByte(b, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: no header line", ErrCorrupt)
	}
	var h entryHeader
	if err := json.Unmarshal(b[:nl], &h); err != nil {
		return nil, fmt.Errorf("%w: bad header: %v", ErrCorrupt, err)
	}
	if h.Schema != entrySchema || h.Alg != "sha256" {
		return nil, fmt.Errorf("%w: unsupported frame (schema %d, alg %q)", ErrCorrupt, h.Schema, h.Alg)
	}
	payload := b[nl+1:]
	if len(payload) != h.Len {
		return nil, fmt.Errorf("%w: length %d, header says %d", ErrCorrupt, len(payload), h.Len)
	}
	sum := sha256.Sum256(payload)
	if hex.EncodeToString(sum[:]) != h.Sum {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	return payload, nil
}
