package rescache

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestBreakerHalfOpenSingleProbe pins the half-open admission contract under
// contention: when the cooldown expires, exactly ONE of many goroutines
// racing allow() is admitted as the probe; everyone else keeps being rejected
// until that probe resolves. Two probes would defeat the point of half-open —
// a sick disk would take paired hits — and zero would wedge the breaker open
// forever. Run with -race: the admission decision is a single guarded
// transition, and this test is the proof.
func TestBreakerHalfOpenSingleProbe(t *testing.T) {
	b := newBreaker(1, time.Hour)
	var clockMu sync.Mutex
	clock := time.Unix(1_000_000, 0)
	b.now = func() time.Time {
		clockMu.Lock()
		defer clockMu.Unlock()
		return clock
	}
	advance := func(d time.Duration) {
		clockMu.Lock()
		clock = clock.Add(d)
		clockMu.Unlock()
	}

	// race has goroutines pile up on a barrier and storm allow() together,
	// returning how many were admitted.
	race := func(goroutines int) int {
		var admitted atomic.Int64
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		return int(admitted.Load())
	}

	b.failure() // threshold 1: first fault trips the breaker
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 1 {
		t.Fatalf("after trip: state=%v trips=%d", st, trips)
	}
	if n := race(32); n != 0 {
		t.Fatalf("%d operations admitted before the cooldown elapsed", n)
	}

	// Cooldown expires while 64 goroutines are storming the gate: exactly one
	// becomes the probe.
	advance(2 * time.Hour)
	if n := race(64); n != 1 {
		t.Fatalf("%d probes admitted at half-open, want exactly 1", n)
	}
	if st, _ := b.snapshot(); st != BreakerHalfOpen {
		t.Fatalf("state after probe admission = %v, want half-open", st)
	}
	// The probe is still unresolved: nobody else gets in, no matter how often
	// they ask.
	if n := race(32); n != 0 {
		t.Fatalf("%d extra operations admitted while the probe was in flight", n)
	}

	// Probe fails -> open again, cooldown restarts from now.
	b.failure()
	if st, trips := b.snapshot(); st != BreakerOpen || trips != 2 {
		t.Fatalf("after failed probe: state=%v trips=%d", st, trips)
	}
	if n := race(32); n != 0 {
		t.Fatalf("%d operations admitted right after a failed probe", n)
	}

	// Next cooldown: again exactly one probe — and this one succeeds,
	// closing the breaker for everyone.
	advance(2 * time.Hour)
	if n := race(64); n != 1 {
		t.Fatalf("%d probes admitted at second half-open, want exactly 1", n)
	}
	b.success()
	if st, _ := b.snapshot(); st != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", st)
	}
	if n := race(32); n != 32 {
		t.Fatalf("closed breaker admitted %d/32", n)
	}
}
