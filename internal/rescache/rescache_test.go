package rescache

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssmem/internal/machine"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

func baseOpts() workload.Options {
	return workload.Options{
		Spec:        machine.VClassSpec(16, 256),
		Query:       tpch.Q6,
		Processes:   4,
		Validate:    true,
		OSTimeScale: 256,
	}
}

func TestDigestStableAndSensitive(t *testing.T) {
	base := DigestOptions(0.002, 7, baseOpts())
	if base == DigestOptions(0.002, 7, baseOpts()) == false {
		t.Fatal("identical requests produced different digests")
	}
	if len(base) != 64 {
		t.Fatalf("digest %q is not hex sha256", base)
	}

	seen := map[Digest]string{base: "base"}
	variant := func(name string, mutate func(*workload.Options), sf float64, seed uint64) {
		o := baseOpts()
		if mutate != nil {
			mutate(&o)
		}
		d := DigestOptions(sf, seed, o)
		if prev, dup := seen[d]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[d] = name
	}
	variant("sf", nil, 0.006, 7)
	variant("seed", nil, 0.002, 8)
	variant("query", func(o *workload.Options) { o.Query = tpch.Q21 }, 0.002, 7)
	variant("procs", func(o *workload.Options) { o.Processes = 8 }, 0.002, 7)
	variant("spin", func(o *workload.Options) { o.SpinLimit = 1 << 20 }, 0.002, 7)
	variant("bufheader", func(o *workload.Options) { o.BufHeaderBytes = 128 }, 0.002, 7)
	variant("hint", func(o *workload.Options) { o.HintBitFraction = -1 }, 0.002, 7)
	variant("trial", func(o *workload.Options) { o.Trial = 1 }, 0.002, 7)
	variant("cold", func(o *workload.Options) { o.ColdRun = true }, 0.002, 7)
	variant("mix", func(o *workload.Options) { o.Mix = []tpch.QueryID{tpch.Q6, tpch.Q21} }, 0.002, 7)
	variant("machine", func(o *workload.Options) { o.Spec = machine.OriginSpec(32, 256) }, 0.002, 7)
	variant("quantum", func(o *workload.Options) { o.Quantum = 5000 }, 0.002, 7)
}

// TestDigestIgnoresNonIdentity: Data and Obs do not change results, so they
// must not change the address.
func TestDigestIgnoresNonIdentity(t *testing.T) {
	a := baseOpts()
	b := baseOpts()
	b.Data = tpch.Generate(0.002, 7)
	if DigestOptions(0.002, 7, a) != DigestOptions(0.002, 7, b) {
		t.Fatal("Data pointer leaked into the digest")
	}
}

func TestStorePersistsAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s1, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	d := Digest(strings.Repeat("ab", 32))
	if err := s1.Put(NSMeasurement, d, []byte(`{"x":1}`)); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir) // the "restarted daemon"
	if err != nil {
		t.Fatal(err)
	}
	v, ok := s2.Get(NSMeasurement, d)
	if !ok || string(v) != `{"x":1}` {
		t.Fatalf("Get after reopen = %q, %v", v, ok)
	}
	if st := s2.Stats(); st.DiskHits != 1 {
		t.Fatalf("DiskHits = %d, want 1", st.DiskHits)
	}
	// Promoted to memory: second read is a memory hit.
	if _, ok := s2.Get(NSMeasurement, d); !ok {
		t.Fatal("promoted entry missing")
	}
	if st := s2.Stats(); st.MemHits != 1 {
		t.Fatalf("MemHits = %d, want 1", st.MemHits)
	}
	// No stray temp files.
	matches, _ := filepath.Glob(filepath.Join(dir, NSMeasurement, "*", ".*tmp*"))
	if len(matches) != 0 {
		t.Fatalf("leftover temp files: %v", matches)
	}
}

func TestStoreRejectsBadNamespace(t *testing.T) {
	s := NewMemory()
	if err := s.Put("../evil", "d", nil); err == nil {
		t.Fatal("path-traversing namespace accepted")
	}
}

func TestDoSingleflight(t *testing.T) {
	s := NewMemory()
	var computes atomic.Int64
	release := make(chan struct{})
	const waiters = 8
	results := make([][]byte, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, _, err := s.Do(context.Background(), NSMeasurement, "dig", func(context.Context) ([]byte, error) {
				computes.Add(1)
				<-release
				return []byte("value"), nil
			})
			if err != nil {
				t.Errorf("waiter %d: %v", i, err)
			}
			results[i] = v
		}(i)
	}
	// Let every waiter reach the flight before the compute finishes.
	for s.Stats().Shared < waiters-1 {
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("%d computes for %d identical concurrent requests", n, waiters)
	}
	for i, v := range results {
		if string(v) != "value" {
			t.Fatalf("waiter %d got %q", i, v)
		}
	}
	// The value is now cached: a later Do is a hit with no compute.
	_, hit, err := s.Do(context.Background(), NSMeasurement, "dig", func(context.Context) ([]byte, error) {
		t.Error("compute ran on a cached digest")
		return nil, nil
	})
	if err != nil || !hit {
		t.Fatalf("post-flight Do: hit=%v err=%v", hit, err)
	}
}

// TestDoLastWaiterCancels pins the run lifecycle: a compute keeps running
// while anyone still wants it, and is cancelled when the last waiter leaves.
func TestDoLastWaiterCancels(t *testing.T) {
	s := NewMemory()
	started := make(chan struct{})
	aborted := make(chan error, 1)
	compute := func(runCtx context.Context) ([]byte, error) {
		close(started)
		<-runCtx.Done()
		aborted <- context.Cause(runCtx)
		return nil, runCtx.Err()
	}

	ctx1, cancel1 := context.WithCancel(context.Background())
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	errs := make(chan error, 2)
	go func() {
		_, _, err := s.Do(ctx1, NSMeasurement, "d", compute)
		errs <- err
	}()
	<-started
	go func() {
		_, _, err := s.Do(ctx2, NSMeasurement, "d", compute)
		errs <- err
	}()
	for s.Stats().Shared < 1 {
		time.Sleep(time.Millisecond)
	}

	cancel1() // first waiter leaves; the run must keep going
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("first waiter err = %v", err)
	}
	select {
	case err := <-aborted:
		t.Fatalf("run aborted while a waiter remained: %v", err)
	case <-time.After(20 * time.Millisecond):
	}

	cancel2() // last waiter leaves; now the run must abort
	if err := <-errs; !errors.Is(err, context.Canceled) {
		t.Fatalf("second waiter err = %v", err)
	}
	select {
	case <-aborted:
	case <-time.After(5 * time.Second):
		t.Fatal("compute not cancelled after the last waiter left")
	}
	if st := s.Stats(); st.Aborted != 1 {
		t.Fatalf("Aborted = %d, want 1", st.Aborted)
	}
	// The failed compute must not be cached: a new Do computes again.
	v, hit, err := s.Do(context.Background(), NSMeasurement, "d", func(context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || hit || string(v) != "fresh" {
		t.Fatalf("retry after abort: v=%q hit=%v err=%v", v, hit, err)
	}
}

// TestDoJoinerSurvivesInitiatorCancel covers the inverse of last-waiter-
// cancels: the caller that STARTED the flight walks away mid-compute while a
// joiner is still waiting. The compute must keep running, the joiner must
// receive the finished value, and — because the flight's context carries the
// initiating request's telemetry — the compute's phase time must still land
// on the initiator, the request that caused the run. The joiner shares the
// result without being charged for it.
func TestDoJoinerSurvivesInitiatorCancel(t *testing.T) {
	s := NewMemory()
	initReq := telemetry.NewRequest("req-init", "/v1/measure")
	joinReq := telemetry.NewRequest("req-join", "/v1/measure")

	started := make(chan struct{})
	release := make(chan struct{})
	compute := func(runCtx context.Context) ([]byte, error) {
		close(started)
		<-release
		// The initiator has cancelled by now, but the flight must still be
		// alive (a joiner waits) and must still track the initiating request.
		if err := runCtx.Err(); err != nil {
			t.Errorf("flight cancelled while the joiner still waits: %v", err)
		}
		q := telemetry.FromContext(runCtx)
		if q == nil || q.ID != "req-init" {
			t.Errorf("flight tracks %+v, want the initiating request", q)
		} else {
			q.AddPhase(telemetry.PhaseCompute, 10*time.Millisecond)
		}
		return []byte("survived"), nil
	}

	initCtx, cancelInit := context.WithCancel(telemetry.NewContext(context.Background(), initReq))
	initErrs := make(chan error, 1)
	go func() {
		_, _, err := s.Do(initCtx, NSMeasurement, "joined", compute)
		initErrs <- err
	}()
	<-started

	joinVals := make(chan []byte, 1)
	go func() {
		v, hit, err := s.Do(telemetry.NewContext(context.Background(), joinReq), NSMeasurement, "joined", compute)
		if err != nil || hit {
			t.Errorf("joiner: hit=%v err=%v", hit, err)
		}
		joinVals <- v
	}()
	for s.Stats().Shared < 1 {
		time.Sleep(time.Millisecond)
	}

	cancelInit()
	if err := <-initErrs; !errors.Is(err, context.Canceled) {
		t.Fatalf("initiator err = %v, want context.Canceled", err)
	}
	close(release) // compute finishes only after the initiator is gone

	if v := <-joinVals; string(v) != "survived" {
		t.Fatalf("joiner got %q, want the completed compute's value", v)
	}

	// Attribution: compute time on the initiator, none on the joiner.
	var initCompute time.Duration
	for _, p := range initReq.Phases() {
		if p.Name == telemetry.PhaseCompute {
			initCompute = time.Duration(p.Seconds * float64(time.Second))
		}
	}
	if initCompute < 5*time.Millisecond {
		t.Fatalf("initiator charged %v of compute, want the flight's time", initCompute)
	}
	for _, p := range joinReq.Phases() {
		if p.Name == telemetry.PhaseCompute {
			t.Fatalf("joiner charged %.3fs of compute it merely waited on", p.Seconds)
		}
	}

	// The flight was never orphaned, and its result is cached for everyone.
	if st := s.Stats(); st.Aborted != 0 || st.Misses != 1 || st.Shared != 1 {
		t.Fatalf("stats after joiner survival: %+v", st)
	}
	v, hit, err := s.Do(context.Background(), NSMeasurement, "joined", func(context.Context) ([]byte, error) {
		t.Error("compute ran on a digest the survived flight already cached")
		return nil, nil
	})
	if err != nil || !hit || string(v) != "survived" {
		t.Fatalf("post-flight Do: v=%q hit=%v err=%v", v, hit, err)
	}
}

func TestDoPanicIsolation(t *testing.T) {
	s := NewMemory()
	_, _, err := s.Do(context.Background(), NSMeasurement, "boom", func(context.Context) ([]byte, error) {
		panic("kaboom")
	})
	if err == nil || !strings.Contains(err.Error(), "panicked") {
		t.Fatalf("err = %v, want panic surfaced as error", err)
	}
	if st := s.Stats(); st.Panics != 1 {
		t.Fatalf("Panics = %d, want 1", st.Panics)
	}
	// The store remains usable and the digest retriable.
	v, _, err := s.Do(context.Background(), NSMeasurement, "boom", func(context.Context) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil || string(v) != "ok" {
		t.Fatalf("after panic: v=%q err=%v", v, err)
	}
}

func TestDiskMissFallsThrough(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(NSFigure, "absent"); ok {
		t.Fatal("hit on absent digest")
	}
	if st := s.Stats(); st.DiskErrors != 0 {
		t.Fatalf("a plain miss counted as a disk error: %+v", st)
	}
	// Corrupt namespace dir should not wedge Get.
	os.WriteFile(filepath.Join(dir, "x"), []byte("not a dir"), 0o644)
}
