package rescache

import (
	"encoding/json"
	"math"
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/simos"
)

// FuzzDigestCanonical fuzzes the request canonicalization behind every cache
// key. The properties pinned here are the ones a content-addressed store
// lives and dies by:
//
//   - determinism: equal requests digest equal, across re-encodings
//     (float formatting, unicode escaping, struct field order);
//   - map-order independence: DigestJSON over a map is insertion-order
//     blind (encoding/json sorts keys — this pins that we rely on it);
//   - sensitivity: changing any identity field changes the digest.
//
// CI runs this as a short -fuzz smoke over the seed corpus; the chaos job
// runs it longer.
func FuzzDigestCanonical(f *testing.F) {
	f.Add(0.002, uint64(7), "Q6", 4, 0, false, 0.0, 256)
	f.Add(1.0, uint64(0), "Q21", 1, 3, true, -1.0, 1)
	f.Add(0.1, uint64(1<<63), "Ωmega≠query ", 64, -1, false, 0.5, 1024)
	f.Add(3.14159, uint64(42), "q\x00uote\"back\\slash", 2, 1, true, 1e-9, 7)
	f.Add(math.MaxFloat64, uint64(math.MaxUint64), "", 0, math.MaxInt32, false, math.SmallestNonzeroFloat64, 0)

	f.Fuzz(func(t *testing.T, sf float64, seed uint64, query string, procs, trial int, cold bool, hint float64, scale int) {
		if math.IsNaN(sf) || math.IsInf(sf, 0) || math.IsNaN(hint) || math.IsInf(hint, 0) {
			t.Skip("non-finite floats are rejected upstream (JSON cannot carry them)")
		}
		// Identity strings enter Requests through CanonicalString (see
		// CanonicalRequest); it must be idempotent for the digest to be a
		// fixed point.
		if CanonicalString(CanonicalString(query)) != CanonicalString(query) {
			t.Fatalf("CanonicalString not idempotent on %q", query)
		}
		mk := func() Request {
			return Request{
				Schema:          requestSchema,
				DataSF:          sf,
				DataSeed:        seed,
				Spec:            machine.VClassSpec(16, 256),
				OS:              simos.Config{},
				Query:           CanonicalString(query),
				Processes:       procs,
				Trial:           trial,
				ColdRun:         cold,
				HintBitFraction: hint,
				OSTimeScale:     scale,
			}
		}

		// Determinism: two independently built equal requests digest equal.
		r1, r2 := mk(), mk()
		d1, d2 := r1.Digest(), r2.Digest()
		if d1 != d2 {
			t.Fatalf("equal requests digest differently: %s vs %s", d1, d2)
		}
		if len(d1) != 64 {
			t.Fatalf("digest %q is not hex sha256", d1)
		}

		// Stability across a JSON round trip: the canonical encoding must
		// survive decode/re-encode (float shortest-form round-trip, unicode
		// escaping, field order).
		b, err := json.Marshal(r1)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var rt Request
		if err := json.Unmarshal(b, &rt); err != nil {
			t.Fatalf("unmarshal own encoding: %v", err)
		}
		if rt.Digest() != d1 {
			t.Fatalf("digest changed across JSON round trip:\n %s\n %s", d1, rt.Digest())
		}

		// Map-order independence of DigestJSON.
		m1 := map[string]any{"sf": sf, "query": query, "trial": trial}
		m2 := map[string]any{"trial": trial, "query": query, "sf": sf}
		dm1, err1 := DigestJSON(m1)
		dm2, err2 := DigestJSON(m2)
		if err1 != nil || err2 != nil {
			t.Fatalf("map digest: %v %v", err1, err2)
		}
		if dm1 != dm2 {
			t.Fatalf("map insertion order leaked into digest")
		}

		// Sensitivity: every identity field perturbation moves the digest.
		perturb := []func(*Request){
			func(r *Request) { r.Trial++ },
			func(r *Request) { r.ColdRun = !r.ColdRun },
			func(r *Request) { r.Processes++ },
			func(r *Request) { r.DataSeed++ },
			func(r *Request) { r.Query += "x" },
			func(r *Request) { r.Schema++ },
		}
		for i, mut := range perturb {
			r := mk()
			mut(&r)
			if r.Digest() == d1 {
				t.Fatalf("perturbation %d did not change the digest", i)
			}
		}
	})
}
