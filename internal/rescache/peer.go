package rescache

import (
	"context"
	"errors"
	"time"

	"dssmem/internal/telemetry"
)

// The peer tier: in a fleet, a worker that misses memory and disk asks its
// peers for the entry before computing it — the service-layer analogue of a
// cc-NUMA remote-cache fill (local cache, local memory, remote node,
// recompute). Peer bytes travel in the same checksummed frame as disk
// entries, so the fetching store verifies them before serving; an
// unverifiable reply falls through to compute exactly like a corrupt disk
// entry. The tier has its own circuit breaker: consecutive transport
// failures bypass the peer tier entirely (degraded to local-only fill) with
// half-open probes, mirroring the disk tier's machinery.

// PeerFetch retrieves the framed entry for (ns, d) from a peer, or
// ErrPeerMiss when no reachable peer holds it. Implementations must treat a
// peer's 404 as a miss, not a failure — a cold peer is a healthy answer.
type PeerFetch func(ctx context.Context, ns string, d Digest) ([]byte, error)

// ErrPeerMiss is the PeerFetch result meaning "no peer has this entry";
// it is a healthy outcome and never feeds the peer breaker.
var ErrPeerMiss = errors.New("rescache: no peer has entry")

// SetPeerFetch arms the peer tier. Call before serving traffic; a nil fn
// disables the tier (the default).
func (s *Store) SetPeerFetch(fn PeerFetch) {
	s.peer = fn
	if s.peerBrk == nil {
		s.peerBrk = newBreaker(0, 0)
	}
}

// SetPeerBreaker reconfigures the peer tier's circuit breaker: trip after
// threshold consecutive fetch failures, probe again after cooldown. Zero
// values keep the defaults.
func (s *Store) SetPeerBreaker(threshold int, cooldown time.Duration) {
	s.peerBrk = newBreaker(threshold, cooldown)
}

// peerGet tries the peer tier for (ns, d): breaker-gated fetch, then frame
// verification. It returns (payload, true) only for bytes that verified.
// Outcome taxonomy mirrors diskGet: a miss is healthy, a transport error
// feeds the breaker, an unverifiable frame is counted as corrupt but is not
// a breaker event (the transport worked; the data was bad).
func (s *Store) peerGet(ctx context.Context, ns string, d Digest) ([]byte, bool) {
	if s.peer == nil || !validNS.MatchString(ns) {
		return nil, false
	}
	if !s.peerBrk.allow() {
		s.peerSkipped.Add(1)
		return nil, false
	}
	end := telemetry.FromContext(ctx).StartPhase(telemetry.PhaseCachePeer)
	framed, err := s.peer(ctx, ns, d)
	end()
	if err != nil {
		if errors.Is(err, ErrPeerMiss) {
			s.peerBrk.success()
			s.peerMisses.Add(1)
			return nil, false
		}
		if ctx.Err() != nil {
			// Our own cancellation, not the peer's health: no breaker event.
			return nil, false
		}
		s.peerErrors.Add(1)
		s.peerBrk.failure()
		return nil, false
	}
	payload, err := unframe(framed)
	if err != nil {
		s.peerBrk.success()
		s.peerCorrupt.Add(1)
		return nil, false
	}
	s.peerBrk.success()
	s.peerHits.Add(1)
	return payload, true
}
