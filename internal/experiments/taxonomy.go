package experiments

import (
	"fmt"

	"dssmem/internal/perfctr"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Taxonomy regenerates the paper's §3.3 analysis as a table: where each
// query's references and misses land in the record/index/metadata/private
// taxonomy, per machine at one process. It substantiates the claims that a
// pure sequential query uses no index data, that metadata and private data
// carry the temporal locality, and that Q21's footprint is index-heavy.
func Taxonomy(e *Env) (*Result, error) {
	r := &Result{
		ID:      "taxonomy",
		Title:   "References and outer-level misses by data region (1 process)",
		Headers: []string{"machine", "query", "region", "refs share", "L1-miss share", "outer-miss share"},
	}
	for _, q := range tpch.AllQueries {
		for _, which := range []int{0, 1} {
			spec := e.VClass()
			if which == 1 {
				spec = e.Origin()
			}
			st, err := workload.Run(workload.Options{
				Spec:        spec,
				Data:        e.Data,
				Query:       q,
				Processes:   1,
				OSTimeScale: e.Preset.MemScale,
			})
			if err != nil {
				return nil, err
			}
			reg := st.Regions
			outer := reg.L2Misses
			if spec.L2 == nil {
				outer = reg.L1Misses
			}
			for i := perfctr.Region(0); i < perfctr.NumRegions; i++ {
				r.Rows = append(r.Rows, []string{
					spec.Name, q.String(), i.String(),
					pct(perfctr.Share(reg.Accesses, i)),
					pct(perfctr.Share(reg.L1Misses, i)),
					pct(perfctr.Share(outer, i)),
				})
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper §3.3: 'in a pure sequential query like Q6, no index data is used'",
		"paper §3.3: 'private data and metadata both have temporal locality' — their miss share is far below their reference share on the V-Class's large cache",
		"paper §3.3: 'index queries express a somewhat bigger footprint but have better locality'")
	return r, nil
}

// RegionStats exposes one run's taxonomy for tests and programs.
func RegionStats(e *Env, origin bool, q tpch.QueryID, procs int) (perfctr.RegionCounters, error) {
	spec := e.VClass()
	if origin {
		spec = e.Origin()
	}
	st, err := workload.Run(workload.Options{
		Spec: spec, Data: e.Data, Query: q,
		Processes: procs, OSTimeScale: e.Preset.MemScale,
	})
	if err != nil {
		return perfctr.RegionCounters{}, fmt.Errorf("taxonomy run: %w", err)
	}
	return st.Regions, nil
}

func init() {
	Ablations["taxonomy"] = Taxonomy
}
