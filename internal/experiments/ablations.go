package experiments

import (
	"fmt"
	"io"
	"sort"

	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Ablations isolate the design choices DESIGN.md §6 calls out. Each compares
// the default machine against a variant with one mechanism changed and
// reports the metric that mechanism is supposed to move.

// AblationMigratory turns the V-Class migratory enhancement off. The paper
// credits it with cheap lock hand-offs (one intervention instead of an
// intervention plus an upgrade).
func AblationMigratory(e *Env) (*Result, error) {
	on := e.VClass()
	off := e.VClass()
	off.Protocol.Migratory = false
	r := &Result{
		ID:      "ablation-migratory",
		Title:   "V-Class migratory enhancement on/off (8 processes)",
		Headers: []string{"query", "variant", "thread cyc", "mem latency", "dirty-3hop/M", "vol/M"},
	}
	for _, q := range tpch.AllQueries {
		a, err := e.MeasureOpts(on.Name, q, 8, workload.Options{Spec: on})
		if err != nil {
			return nil, err
		}
		b, err := e.MeasureOpts("vclass-nomigratory", q, 8, workload.Options{Spec: off})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows,
			[]string{q.String(), "migratory", fm(a.ThreadCycles), f1(a.MemLatencyCycles), f1(a.Dirty3HopPerM), f1(a.VolPerM)},
			[]string{q.String(), "plain MESI", fm(b.ThreadCycles), f1(b.MemLatencyCycles), f1(b.Dirty3HopPerM), f1(b.VolPerM)},
		)
	}
	return r, nil
}

// AblationSpeculation turns the Origin's speculative memory reply off: clean
// interventions then cost a full 3-hop trip.
func AblationSpeculation(e *Env) (*Result, error) {
	on := e.Origin()
	off := e.Origin()
	off.Protocol.Speculative = false
	r := &Result{
		ID:      "ablation-speculation",
		Title:   "Origin speculative reply on/off (8 processes)",
		Headers: []string{"query", "variant", "thread cyc", "mem latency"},
	}
	for _, q := range tpch.AllQueries {
		a, err := e.MeasureOpts(on.Name, q, 8, workload.Options{Spec: on})
		if err != nil {
			return nil, err
		}
		b, err := e.MeasureOpts("origin-nospec", q, 8, workload.Options{Spec: off})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows,
			[]string{q.String(), "speculative", fm(a.ThreadCycles), f1(a.MemLatencyCycles)},
			[]string{q.String(), "no speculation", fm(b.ThreadCycles), f1(b.MemLatencyCycles)},
		)
	}
	r.Notes = append(r.Notes, "expect: latency rises without speculation, most for read-shared scans")
	return r, nil
}

// AblationL2Line shrinks the Origin L2 line from 128 B to 32 B. The paper
// attributes much of the L2's benefit on index queries to the longer lines.
func AblationL2Line(e *Env) (*Result, error) {
	long := e.Origin()
	short := e.Origin()
	l2 := *short.L2
	l2.LineSize = 32
	l2.Name = "R10K-L2-32B"
	short.L2 = &l2
	r := &Result{
		ID:      "ablation-l2line",
		Title:   "Origin L2 line size 128B vs 32B (1 process)",
		Headers: []string{"query", "variant", "L2 misses", "L2/M instr", "thread cyc"},
	}
	for _, q := range tpch.AllQueries {
		a, err := e.MeasureOpts(long.Name, q, 1, workload.Options{Spec: long})
		if err != nil {
			return nil, err
		}
		b, err := e.MeasureOpts("origin-l2line32", q, 1, workload.Options{Spec: short})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows,
			[]string{q.String(), "128B lines", fk(a.L2Misses), f0(a.L2MissesPerM), fm(a.ThreadCycles)},
			[]string{q.String(), "32B lines", fk(b.L2Misses), f0(b.L2MissesPerM), fm(b.ThreadCycles)},
		)
	}
	r.Notes = append(r.Notes, "paper: longer lines cut misses for both query types; the larger capacity matters more for the index query")
	return r, nil
}

// AblationBackoff compares the PostgreSQL select() back-off against pure
// spinning (a huge spin limit), the trade-off §4.2.4 of the paper discusses.
func AblationBackoff(e *Env) (*Result, error) {
	r := &Result{
		ID:      "ablation-backoff",
		Title:   "select() back-off vs pure spinning, V-Class, Q21, 8 processes",
		Headers: []string{"variant", "thread cyc", "wall s", "vol/M", "spins/M"},
	}
	spec := e.VClass()
	a, err := e.MeasureOpts(spec.Name, tpch.Q21, 8, workload.Options{Spec: spec})
	if err != nil {
		return nil, err
	}
	b, err := e.MeasureOpts("vclass-spinonly", tpch.Q21, 8, workload.Options{Spec: spec, SpinLimit: 1 << 30})
	if err != nil {
		return nil, err
	}
	r.Rows = append(r.Rows,
		[]string{"select() backoff", fm(a.ThreadCycles), fmt.Sprintf("%.4f", a.WallSeconds), f1(a.VolPerM), f1(a.SpinsPerM)},
		[]string{"pure spinning", fm(b.ThreadCycles), fmt.Sprintf("%.4f", b.WallSeconds), f1(b.VolPerM), f1(b.SpinsPerM)},
	)
	r.Notes = append(r.Notes, "paper: backoff is 'perfect for uniprocessors ... not so efficient in multiprocessors' — it trades spin cycles for wall-clock response time")
	return r, nil
}

// AblationHeaders pads buffer descriptors to a full line, removing the false
// sharing of neighbouring headers (era PostgreSQL packed them).
func AblationHeaders(e *Env) (*Result, error) {
	spec := e.Origin()
	r := &Result{
		ID:      "ablation-headers",
		Title:   "Buffer descriptor padding: 32B packed vs 128B line-private (Origin, 8 processes)",
		Headers: []string{"query", "variant", "L2/M instr", "coherence share", "thread cyc"},
	}
	for _, q := range tpch.AllQueries {
		a, err := e.MeasureOpts(spec.Name, q, 8, workload.Options{Spec: spec})
		if err != nil {
			return nil, err
		}
		b, err := e.MeasureOpts("origin-paddedhdrs", q, 8, workload.Options{Spec: spec, BufHeaderBytes: 128})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows,
			[]string{q.String(), "packed 32B", f0(a.L2MissesPerM), pct(a.CoherenceFraction), fm(a.ThreadCycles)},
			[]string{q.String(), "padded 128B", f0(b.L2MissesPerM), pct(b.CoherenceFraction), fm(b.ThreadCycles)},
		)
	}
	return r, nil
}

// AblationHints disables hint-bit stores, isolating the shared record-page
// writes from the rest of the communication.
func AblationHints(e *Env) (*Result, error) {
	spec := e.Origin()
	r := &Result{
		ID:      "ablation-hints",
		Title:   "Hint-bit stores on/off (Origin, 8 processes)",
		Headers: []string{"query", "variant", "dirty-3hop/M", "coherence share", "mem latency"},
	}
	for _, q := range tpch.AllQueries {
		a, err := e.MeasureOpts(spec.Name, q, 8, workload.Options{Spec: spec})
		if err != nil {
			return nil, err
		}
		b, err := e.MeasureOpts("origin-nohints", q, 8, workload.Options{Spec: spec, HintBitFraction: -1})
		if err != nil {
			return nil, err
		}
		r.Rows = append(r.Rows,
			[]string{q.String(), "hint bits", f1(a.Dirty3HopPerM), pct(a.CoherenceFraction), f1(a.MemLatencyCycles)},
			[]string{q.String(), "no hint bits", f1(b.Dirty3HopPerM), pct(b.CoherenceFraction), f1(b.MemLatencyCycles)},
		)
	}
	return r, nil
}

// AblationPlacement interleaves the Origin's shared pages across all nodes
// instead of concentrating them, undoing the hot-spot the paper observed.
func AblationPlacement(e *Env) (*Result, error) {
	conc := e.Origin()
	inter := e.Origin()
	inter.Placement = machine.PlaceInterleaved
	r := &Result{
		ID:      "ablation-placement",
		Title:   "Origin shared-memory placement: concentrated vs interleaved (Q6, sweep)",
		Headers: append([]string{"variant"}, procHeaders()...),
	}
	a, err := e.Sweep(conc.Name, conc, tpch.Q6, workload.Options{})
	if err != nil {
		return nil, err
	}
	b, err := e.Sweep("origin-interleaved", inter, tpch.Q6, workload.Options{})
	if err != nil {
		return nil, err
	}
	rowA := []string{"concentrated"}
	rowB := []string{"interleaved"}
	for i := range a.Points {
		rowA = append(rowA, f1(a.Points[i].MemLatencyCycles))
		rowB = append(rowB, f1(b.Points[i].MemLatencyCycles))
	}
	r.Rows = append(r.Rows, rowA, rowB)
	r.Notes = append(r.Notes, "memory latency in cycles; the paper blames the 6-8 process steepening on requests routed to the couple of nodes holding the DBMS shared memory")
	return r, nil
}

// Ablations maps names to runners.
var Ablations = map[string]func(*Env) (*Result, error){
	"migratory":   AblationMigratory,
	"speculation": AblationSpeculation,
	"l2line":      AblationL2Line,
	"backoff":     AblationBackoff,
	"headers":     AblationHeaders,
	"hints":       AblationHints,
	"placement":   AblationPlacement,
}

// AblationNames returns the sorted ablation names.
func AblationNames() []string {
	names := make([]string, 0, len(Ablations))
	for n := range Ablations {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// RunAblation executes one ablation and writes its table to w.
func RunAblation(e *Env, name string, w io.Writer) (*Result, error) {
	fn := Ablations[name]
	if fn == nil {
		return nil, fmt.Errorf("experiments: no ablation %q (have %v)", name, AblationNames())
	}
	r, err := fn(e)
	if err != nil {
		return nil, err
	}
	if w != nil {
		if _, err := r.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return r, nil
}
