package experiments

import (
	"fmt"
	"math"

	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// DefaultSamplingTolerance is the relative-error bound the sampling accuracy
// gate enforces at the default period (DefaultSamplingQuanta). Everything in
// the pipeline is deterministic, so the observed errors are fixed numbers for
// a given preset; the bound is set from them with headroom (see DESIGN.md §15
// for the error model and the measured values).
const DefaultSamplingTolerance = 0.08

// DefaultSamplingQuanta is the sampling period the gate (and the CLIs'
// -sample-quanta flag examples) use by default: simulate 2 of every 8 quanta
// in detail, fast-forward the rest.
const DefaultSamplingQuanta = 8

// AccuracyPoint is one exact-vs-sampled comparison in the sampling accuracy
// gate: a figure metric computed by full detailed simulation and by SMARTS
// interval sampling at the same configuration.
type AccuracyPoint struct {
	Name    string  `json:"name"`
	Exact   float64 `json:"exact"`
	Sampled float64 `json:"sampled"`
	RelErr  float64 `json:"rel_err"`
}

// SamplingAccuracy cross-checks interval sampling against exact simulation on
// the two figure metrics the paper leans on hardest: the Origin's Q6
// cycles-per-million-instructions at 8 processes (Fig. 5) and the V-Class's
// Q6 average memory latency at 2 processes (Fig. 9). It returns every
// comparison point and an error naming the first metric whose relative error
// exceeds tol. sampleQuanta <= 1 selects DefaultSamplingQuanta.
func SamplingAccuracy(e *Env, sampleQuanta int, tol float64) ([]AccuracyPoint, error) {
	if sampleQuanta <= 1 {
		sampleQuanta = DefaultSamplingQuanta
	}
	sampled := workload.Options{SampleQuanta: sampleQuanta}

	points := []AccuracyPoint{}
	run := func(name string, measure func(opts workload.Options) (float64, error)) error {
		exact, err := measure(workload.Options{})
		if err != nil {
			return fmt.Errorf("accuracy %s exact: %w", name, err)
		}
		est, err := measure(sampled)
		if err != nil {
			return fmt.Errorf("accuracy %s sampled: %w", name, err)
		}
		p := AccuracyPoint{Name: name, Exact: exact, Sampled: est}
		if exact != 0 {
			p.RelErr = math.Abs(est-exact) / math.Abs(exact)
		} else if est != 0 {
			p.RelErr = math.Inf(1)
		}
		points = append(points, p)
		return nil
	}

	origin := e.Origin()
	if err := run("sgi-cyc/Minstr@8p", func(o workload.Options) (float64, error) {
		o.Spec = origin
		m, err := e.MeasureOpts(origin.Name, tpch.Q6, 8, o)
		return m.CyclesPerMInstr, err
	}); err != nil {
		return points, err
	}
	vclass := e.VClass()
	if err := run("hpv-memlat-cyc@2p", func(o workload.Options) (float64, error) {
		o.Spec = vclass
		m, err := e.MeasureOpts(vclass.Name, tpch.Q6, 2, o)
		return m.MemLatencyCycles, err
	}); err != nil {
		return points, err
	}
	for _, p := range points {
		if p.RelErr > tol {
			return points, fmt.Errorf("sampling accuracy gate: %s off by %.2f%% (exact %.2f, sampled %.2f, tolerance %.0f%%)",
				p.Name, p.RelErr*100, p.Exact, p.Sampled, tol*100)
		}
	}
	return points, nil
}
