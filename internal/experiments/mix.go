package experiments

import (
	"fmt"

	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Mix runs the heterogeneous reading of the paper's §4 ("Multiple (Diff)
// Query Execution"): all three queries running concurrently, one per process,
// and reports each query's per-process slowdown relative to running alone.
// Interference here is purely memory-system and lock-level — processes never
// share CPUs — which is exactly the channel the paper studies.
func Mix(e *Env) (*Result, error) {
	r := &Result{
		ID:      "mix",
		Title:   "Heterogeneous mix: Q6+Q21+Q12 together (6 processes, 2 per query) vs alone",
		Headers: []string{"machine", "query", "alone cyc", "mixed cyc", "slowdown"},
	}
	mix := []tpch.QueryID{tpch.Q6, tpch.Q21, tpch.Q12}
	for _, which := range []int{0, 1} {
		spec := e.VClass()
		if which == 1 {
			spec = e.Origin()
		}
		st, err := workload.Run(workload.Options{
			Spec:        spec,
			Data:        e.Data,
			Mix:         mix,
			Processes:   6,
			OSTimeScale: e.Preset.MemScale,
		})
		if err != nil {
			return nil, err
		}
		// Mean thread cycles per query within the mix.
		mixed := map[tpch.QueryID]float64{}
		counts := map[tpch.QueryID]float64{}
		for _, p := range st.Procs {
			mixed[p.Query] += float64(p.ThreadCycles)
			counts[p.Query]++
		}
		for _, q := range mix {
			alone, err := e.Measure(spec, q, 1)
			if err != nil {
				return nil, err
			}
			avg := mixed[q] / counts[q]
			r.Rows = append(r.Rows, []string{
				spec.Name, q.String(),
				fm(alone.ThreadCycles), fm(avg),
				fmt.Sprintf("%.3fx", avg/alone.ThreadCycles),
			})
		}
	}
	r.Notes = append(r.Notes,
		"slowdown = mean thread cycles in the mix / thread cycles alone; processes never share CPUs, so all interference is memory-system and lock-level")
	return r, nil
}

func init() {
	Ablations["mix"] = Mix
}
