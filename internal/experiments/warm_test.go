package experiments

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"dssmem/internal/ckpt"
	"dssmem/internal/core"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// TestWarmRestoreByteIdentical is the tentpole's core correctness claim:
// a measurement that restores the warmup prelude from a checkpoint produces
// exactly the measurement a from-scratch run produces — same digest, same
// bytes — so checkpoints may stay outside the cache identity.
func TestWarmRestoreByteIdentical(t *testing.T) {
	data := tpch.Generate(Tiny.SF, Tiny.Seed)

	cold := NewEnvWith(Tiny, data)
	warm := NewEnvWith(Tiny, data)
	warm.Checkpoints = true
	warm.Tally = &RunTally{}

	for _, procs := range []int{1, 2} {
		a, err := cold.Measure(cold.VClass(), tpch.Q6, procs)
		if err != nil {
			t.Fatalf("cold measure p%d: %v", procs, err)
		}
		b, err := warm.Measure(warm.VClass(), tpch.Q6, procs)
		if err != nil {
			t.Fatalf("warm measure p%d: %v", procs, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("p%d: restored measurement differs from cold-run measurement:\ncold %+v\nwarm %+v", procs, a, b)
		}
	}

	runs, restored, _, _ := warm.Tally.Snapshot()
	if runs == 0 || restored != runs {
		t.Fatalf("want every run restored from checkpoint, got %d of %d", restored, runs)
	}
}

// TestWarmCheckpointCorruptionFallsBack covers the integrity satellite: a
// corrupt or truncated on-disk snapshot is quarantined by the store's frame
// verification and the measurement silently falls back to a full rebuild —
// same result, no panic, no wrong figure.
func TestWarmCheckpointCorruptionFallsBack(t *testing.T) {
	data := tpch.Generate(Tiny.SF, Tiny.Seed)
	dir := t.TempDir()

	store, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	env := NewEnvWith(Tiny, data)
	env.Results = store
	env.Checkpoints = true
	want, err := env.Measure(env.VClass(), tpch.Q6, 2)
	if err != nil {
		t.Fatalf("seed measure: %v", err)
	}

	paths, err := filepath.Glob(filepath.Join(dir, rescache.NSWarm, "*", "*.json"))
	if err != nil || len(paths) == 0 {
		t.Fatalf("no warm snapshot on disk (err %v)", err)
	}

	for _, corrupt := range []struct {
		name string
		mut  func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, b[:len(b)/3], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("}{ not a frame"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(corrupt.name, func(t *testing.T) {
			corrupt.mut(t, paths[0])
			// Drop the measurement results so the point recomputes while the
			// warm snapshot is damaged; keep the warmstate namespace.
			if err := os.RemoveAll(filepath.Join(dir, rescache.NSMeasurement)); err != nil {
				t.Fatal(err)
			}

			fresh, err := rescache.Open(dir) // fresh memory tier: reads hit disk
			if err != nil {
				t.Fatal(err)
			}
			env2 := NewEnvWith(Tiny, data)
			env2.Results = fresh
			env2.Checkpoints = true
			got, err := env2.Measure(env2.VClass(), tpch.Q6, 2)
			if err != nil {
				t.Fatalf("measure with corrupt checkpoint: %v", err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("measurement changed after checkpoint corruption:\nwant %+v\ngot  %+v", want, got)
			}
			if q := fresh.Stats().Quarantined; q == 0 {
				t.Fatalf("corrupt snapshot was not quarantined (stats %+v)", fresh.Stats())
			}
		})
	}
}

// TestWarmSnapshotSelfHeal covers the other damage class: an entry whose
// frame verifies (so the store serves it) but whose ckpt payload does not
// decode. warmSnapshot recaptures and overwrites it in place.
func TestWarmSnapshotSelfHeal(t *testing.T) {
	data := tpch.Generate(Tiny.SF, Tiny.Seed)
	store := rescache.NewMemory()

	key := ckpt.KeyFor(Tiny.SF, Tiny.Seed, data, 0)
	dig := rescache.Digest(key.Digest())
	if err := store.Put(rescache.NSWarm, dig, []byte("valid frame, not a snapshot")); err != nil {
		t.Fatal(err)
	}

	snap, hit, err := warmSnapshot(t.Context(), store, key, data, 0)
	if err != nil {
		t.Fatalf("self-heal: %v", err)
	}
	if hit {
		t.Fatalf("undecodable entry reported as a usable hit")
	}
	if snap == nil || snap.Image == nil {
		t.Fatalf("self-heal returned no snapshot")
	}
	// The overwritten entry now decodes for the next reader.
	raw, ok := store.Get(rescache.NSWarm, dig)
	if !ok {
		t.Fatalf("healed snapshot not stored")
	}
	if _, err := ckpt.Decode(raw); err != nil {
		t.Fatalf("healed snapshot does not decode: %v", err)
	}
}

// TestWarmAttach exercises the CLI-facing attach helper end to end against a
// disk store: miss then hit, and a run from the attached state matching a
// from-scratch run.
func TestWarmAttach(t *testing.T) {
	dir := t.TempDir()
	spec := Tiny

	opts := workload.Options{}
	hit, err := WarmAttach(t.Context(), dir, spec.SF, spec.Seed, &opts)
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	if hit {
		t.Fatalf("first attach reported a cache hit")
	}
	if opts.Data == nil || opts.Warm == nil {
		t.Fatalf("attach did not populate Data/Warm")
	}

	opts2 := workload.Options{}
	hit, err = WarmAttach(t.Context(), dir, spec.SF, spec.Seed, &opts2)
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	if !hit {
		t.Fatalf("second attach missed the disk store")
	}

	env := NewEnvWith(spec, opts2.Data)
	machineSpec := env.VClass()
	opts2.Spec = machineSpec
	opts2.Query = tpch.Q6
	opts2.Processes = 1
	opts2.OSTimeScale = spec.MemScale
	st, err := workload.RunContext(t.Context(), opts2)
	if err != nil {
		t.Fatalf("run from attached state: %v", err)
	}
	if !st.Restored {
		t.Fatalf("run did not restore from attached warm state")
	}

	want, err := env.Measure(machineSpec, tpch.Q6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := core.FromStats(st); !reflect.DeepEqual(got, want) {
		t.Fatalf("attached run differs from from-scratch measurement:\nwant %+v\ngot  %+v", want, got)
	}
}
