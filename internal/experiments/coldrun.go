package experiments

import (
	"fmt"

	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// ColdRun contrasts the first of the paper's four trials (cold buffer pool:
// every page touch pays a disk read and a voluntary context switch) with the
// warm steady state the averaged figures reflect. It explains why the paper
// ran each configuration four times before averaging.
func ColdRun(e *Env) (*Result, error) {
	r := &Result{
		ID:      "coldrun",
		Title:   "Cold vs warm buffer pool (V-Class, 1 process)",
		Headers: []string{"query", "variant", "wall s", "thread cyc", "vol switches", "disk reads"},
	}
	spec := e.VClass()
	for _, q := range tpch.AllQueries {
		warm, err := e.MeasureOpts(spec.Name, q, 1, workload.Options{Spec: spec})
		if err != nil {
			return nil, err
		}
		// The cold run goes through the same option canonicalization and
		// runner as every cached measurement — one definition of the warmup
		// prelude (workload's buildDB) serves warm runs, cold runs and
		// checkpoint capture, so the variants cannot drift apart. ColdRun
		// itself stays uncached here only because this ablation wants the
		// raw per-process stats, not the reduced measurement.
		coldOpts := e.CanonicalOptions(q, 1, workload.Options{Spec: spec, ColdRun: true})
		coldOpts.Data = e.Data
		coldStats, err := e.runner()(e.ctx(), coldOpts)
		if err != nil {
			return nil, err
		}
		e.Tally.add(coldStats)
		cold := coldStats.Procs[0]
		r.Rows = append(r.Rows,
			[]string{q.String(), "cold (trial 1)",
				fmt.Sprintf("%.4f", float64(cold.WallCycles)/(float64(spec.ClockMHz)*1e6)),
				fm(float64(cold.ThreadCycles)), fmt.Sprint(cold.Vol), fmt.Sprint(coldStats.DiskReads)},
			[]string{q.String(), "warm (steady state)",
				fmt.Sprintf("%.4f", warm.WallSeconds),
				fm(warm.ThreadCycles), fmt.Sprintf("%.0f", warm.VolPerM*warm.Instructions/1e6), "0"},
		)
	}
	r.Notes = append(r.Notes,
		"cold runs are dominated by I/O waits (every page's first touch blocks), inflating wall time and voluntary switches while thread time barely moves — the behaviour the paper's 4-trial averaging washes out")
	return r, nil
}

func init() {
	Ablations["coldrun"] = ColdRun
}
