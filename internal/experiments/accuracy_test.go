package experiments

import (
	"os"
	"strconv"
	"testing"
)

// TestSamplingAccuracyGate is the CI accuracy gate: sampled figure metrics
// must stay within tolerance of exact simulation. The nightly job tightens
// both knobs via environment (ACCURACY_QUANTA, ACCURACY_TOL); everything is
// deterministic, so a failure is a real estimator regression, not noise.
func TestSamplingAccuracyGate(t *testing.T) {
	quanta := DefaultSamplingQuanta
	if s := os.Getenv("ACCURACY_QUANTA"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil {
			t.Fatalf("ACCURACY_QUANTA=%q: %v", s, err)
		}
		quanta = v
	}
	tol := DefaultSamplingTolerance
	if s := os.Getenv("ACCURACY_TOL"); s != "" {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			t.Fatalf("ACCURACY_TOL=%q: %v", s, err)
		}
		tol = v
	}

	e := NewEnv(Tiny)
	points, err := SamplingAccuracy(e, quanta, tol)
	for _, p := range points {
		t.Logf("%-20s exact %10.2f  sampled %10.2f  rel err %6.2f%%  (P=%d, tol %.0f%%)",
			p.Name, p.Exact, p.Sampled, p.RelErr*100, quanta, tol*100)
	}
	if err != nil {
		t.Fatal(err)
	}
}
