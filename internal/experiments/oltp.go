package experiments

import (
	"fmt"

	"dssmem/internal/oltp"
)

// OLTP contrasts the DSS study with a transactional companion workload and
// quantifies the paper's §2.2 remark that relation-level locking "may become
// a bottleneck in multiple parallel queries": a TPC-C-flavoured
// Payment/New-Order mix under relation-level vs row-level write locks, on
// both machines, at 1 and 8 processes.
func OLTP(e *Env) (*Result, error) {
	cfg := oltp.DefaultConfig()
	// Keep the run proportionate to the preset.
	cfg.Transactions = 40 + 10*e.Preset.MemScale/32

	r := &Result{
		ID:      "oltp",
		Title:   "OLTP companion workload: lock granularity under write contention",
		Headers: []string{"machine", "locks", "procs", "tx/Mcycle", "backoffs", "dirty-3hop", "coherence%"},
	}
	for _, which := range []int{0, 1} {
		spec := e.VClass()
		if which == 1 {
			spec = e.Origin()
		}
		for _, gran := range []oltp.Granularity{oltp.RelationLocks, oltp.RowLocks} {
			for _, n := range []int{1, 8} {
				c := cfg
				c.Granularity = gran
				st, err := oltp.Run(spec, c, n, e.Preset.MemScale)
				if err != nil {
					return nil, err
				}
				r.Rows = append(r.Rows, []string{
					spec.Name, gran.String(), fmt.Sprint(n),
					fmt.Sprintf("%.2f", st.TxPerMCycle()),
					fmt.Sprint(st.Backoffs),
					fmt.Sprint(st.Dirty3Hop),
					fmt.Sprintf("%.1f", st.CoherencePct),
				})
			}
		}
	}
	r.Notes = append(r.Notes,
		"paper §2.2: 'currently PostgreSQL fully supports only relation level locking. This may become a bottleneck in multiple parallel queries' — visible as the relation-lock throughput collapse at 8 writers",
		"contrast with DSS: writes make communication (dirty 3-hop hand-offs) a first-order miss component, as the OLTP characterizations in the paper's related work report")
	return r, nil
}

func init() {
	Ablations["oltp"] = OLTP
}
