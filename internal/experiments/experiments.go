// Package experiments regenerates the paper's evaluation: one experiment per
// figure (Figs. 2–10), plus ablations of the design choices DESIGN.md calls
// out. Each experiment prints the same rows/series the paper reports and
// returns them as structured data for tests and benchmarks.
package experiments

import (
	"fmt"
	"runtime"
	"sync"

	"dssmem/internal/core"
	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Preset bundles a database scale factor with the matching machine memory
// scale (DESIGN.md §4: cache capacities divide by MemScale so the
// working-set:cache ratios match the paper's 200 MB : {2 MB, 32 KB, 4 MB}).
type Preset struct {
	Name     string
	SF       float64
	MemScale int
	Seed     uint64
}

// The standard presets.
var (
	// Tiny is for unit tests: seconds of wall time for a full figure.
	Tiny = Preset{Name: "tiny", SF: 0.002, MemScale: 256, Seed: 7}
	// Small is for benchmarks.
	Small = Preset{Name: "small", SF: 0.006, MemScale: 64, Seed: 7}
	// Medium is the default for the dssbench harness.
	Medium = Preset{Name: "medium", SF: 0.016, MemScale: 32, Seed: 7}
)

// PresetByName resolves a preset name.
func PresetByName(name string) (Preset, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium", "":
		return Medium, nil
	}
	return Preset{}, fmt.Errorf("experiments: unknown preset %q (tiny|small|medium)", name)
}

// ProcCounts is the multiprogramming sweep of the paper's Figs. 5–10.
var ProcCounts = []int{1, 2, 4, 6, 8}

// Env is a shared experimental environment: one generated database reused by
// every figure, plus a cache of completed runs (Figs. 2–4 share the same
// configurations, as do Figs. 5–10).
type Env struct {
	Preset Preset
	Data   *tpch.Data

	mu    sync.Mutex
	cache map[runKey]core.Measurement
	// Parallelism bounds concurrent simulations (each is single-threaded).
	Parallelism int
}

type runKey struct {
	tag   string
	query tpch.QueryID
	procs int
}

// NewEnv generates the preset's database once and returns the environment.
func NewEnv(p Preset) *Env {
	return NewEnvWith(p, tpch.Generate(p.SF, p.Seed))
}

// NewEnvWith reuses an already-generated database (benchmarks regenerate the
// run cache every iteration but share the data).
func NewEnvWith(p Preset, d *tpch.Data) *Env {
	return &Env{
		Preset:      p,
		Data:        d,
		cache:       make(map[runKey]core.Measurement),
		Parallelism: runtime.GOMAXPROCS(0),
	}
}

// VClass returns the V-Class spec at this environment's scale.
func (e *Env) VClass() machine.Spec { return machine.VClassSpec(16, e.Preset.MemScale) }

// Origin returns the Origin 2000 spec at this environment's scale.
func (e *Env) Origin() machine.Spec { return machine.OriginSpec(32, e.Preset.MemScale) }

// Measure runs (or recalls) one configuration on an unmodified machine.
func (e *Env) Measure(spec machine.Spec, q tpch.QueryID, procs int) (core.Measurement, error) {
	return e.MeasureOpts(spec.Name, q, procs, workload.Options{Spec: spec})
}

// MeasureOpts runs one configuration with workload overrides; tag must
// uniquely name the machine variant (ablations pass e.g. "vclass-nomigratory").
func (e *Env) MeasureOpts(tag string, q tpch.QueryID, procs int, opts workload.Options) (core.Measurement, error) {
	key := runKey{tag: tag, query: q, procs: procs}
	e.mu.Lock()
	if m, ok := e.cache[key]; ok {
		e.mu.Unlock()
		return m, nil
	}
	e.mu.Unlock()

	opts.Data = e.Data
	opts.Query = q
	opts.Processes = procs
	if opts.OSTimeScale == 0 {
		opts.OSTimeScale = e.Preset.MemScale
	}
	st, err := workload.Run(opts)
	if err != nil {
		return core.Measurement{}, fmt.Errorf("%s/%v/p%d: %w", tag, q, procs, err)
	}
	m := core.FromStats(st)
	e.mu.Lock()
	e.cache[key] = m
	e.mu.Unlock()
	return m, nil
}

// Sweep measures a query over ProcCounts on one machine variant, in parallel
// up to Env.Parallelism, and returns the series in ascending process count.
func (e *Env) Sweep(tag string, spec machine.Spec, q tpch.QueryID, opts workload.Options) (core.Series, error) {
	s := core.Series{Machine: spec.Name, Query: q.String(), Points: make([]core.Measurement, len(ProcCounts))}
	sem := make(chan struct{}, e.parallelism())
	errs := make([]error, len(ProcCounts))
	var wg sync.WaitGroup
	for i, n := range ProcCounts {
		i, n := i, n
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := opts
			o.Spec = spec
			s.Points[i], errs[i] = e.MeasureOpts(tag, q, n, o)
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func (e *Env) parallelism() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}
