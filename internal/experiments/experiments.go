// Package experiments regenerates the paper's evaluation: one experiment per
// figure (Figs. 2–10), plus ablations of the design choices DESIGN.md calls
// out. Each experiment prints the same rows/series the paper reports and
// returns them as structured data for tests and benchmarks.
package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"runtime"
	"sync"

	"dssmem/internal/core"
	"dssmem/internal/db/engine"
	"dssmem/internal/machine"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Preset bundles a database scale factor with the matching machine memory
// scale (DESIGN.md §4: cache capacities divide by MemScale so the
// working-set:cache ratios match the paper's 200 MB : {2 MB, 32 KB, 4 MB}).
type Preset struct {
	Name     string
	SF       float64
	MemScale int
	Seed     uint64
}

// The standard presets.
var (
	// Tiny is for unit tests: seconds of wall time for a full figure.
	Tiny = Preset{Name: "tiny", SF: 0.002, MemScale: 256, Seed: 7}
	// Small is for benchmarks.
	Small = Preset{Name: "small", SF: 0.006, MemScale: 64, Seed: 7}
	// Medium is the default for the dssbench harness.
	Medium = Preset{Name: "medium", SF: 0.016, MemScale: 32, Seed: 7}
)

// PresetByName resolves a preset name.
func PresetByName(name string) (Preset, error) {
	switch name {
	case "tiny":
		return Tiny, nil
	case "small":
		return Small, nil
	case "medium", "":
		return Medium, nil
	}
	return Preset{}, fmt.Errorf("experiments: unknown preset %q (tiny|small|medium)", name)
}

// ProcCounts is the multiprogramming sweep of the paper's Figs. 5–10.
var ProcCounts = []int{1, 2, 4, 6, 8}

// Env is a shared experimental environment: one generated database reused by
// every figure, plus a cache of completed runs (Figs. 2–4 share the same
// configurations, as do Figs. 5–10).
//
// Runs are keyed by the canonical digest of their full configuration
// (rescache.CanonicalRequest) — not by the caller-supplied tag, which is
// used only in error messages. Two ablations passing different
// workload.Options therefore never share a measurement, no matter how they
// are tagged.
type Env struct {
	Preset Preset
	Data   *tpch.Data

	// Results is the content-addressed run cache. Leave nil for a private
	// in-memory cache; the daemon points it at a shared, disk-persisted
	// store so measurements survive restarts and deduplicate across
	// requests.
	Results *rescache.Store

	// Ctx, when non-nil, bounds every measurement: its cancellation aborts
	// in-flight simulations at the next scheduling quantum (the daemon binds
	// it to the HTTP request). nil means context.Background().
	Ctx context.Context

	// Runner executes one workload run (nil selects workload.RunContext).
	// The daemon injects a runner that bounds global concurrency, applies
	// per-run timeouts and records metrics; tests inject failures.
	Runner func(context.Context, workload.Options) (*workload.Stats, error)

	// Parallelism bounds concurrent simulations (each is single-threaded
	// in serial mode; bound–weave runs additionally parallelize inside one
	// simulation).
	Parallelism int

	// Parallel applies workload bound–weave execution to every measurement
	// that does not set it explicitly (see workload.Options.Parallel). It
	// changes the content digests: parallel measurements are cached under
	// their own identity.
	Parallel bool
	// ParallelWindow is the default bound window in cycles (0 = quantum).
	ParallelWindow uint64

	// Checkpoints enables warm-state restore: before a (non-cold)
	// measurement simulates, the env attaches the dataset's warm-state image
	// — captured once, cached in Results under rescache.NSWarm, and memoized
	// decoded — so the run skips the warmup prelude. Restored runs are
	// byte-identical to cold-started ones, so checkpoints never change
	// content digests; any checkpoint failure silently falls back to a full
	// rebuild.
	Checkpoints bool

	// SampleQuanta, when > 1, applies SMARTS interval sampling (see
	// workload.Options.SampleQuanta) to every measurement that does not set
	// it explicitly. Sampled measurements carry their own content digests:
	// estimates never collide with exact results.
	SampleQuanta int

	// Tally, when non-nil, accumulates host-side run accounting (runs,
	// restores, warmup vs measured wall time) across this env's
	// measurements. Cache hits do not tally: nothing ran.
	Tally *RunTally

	initMu sync.Mutex // guards lazy Results init

	warmMu   sync.Mutex                        // guards warmImgs
	warmImgs map[rescache.Digest]*engine.Image // decoded warm images by ckpt key digest

	// OnPoint, when non-nil, is called after each sweep point completes,
	// with the point's index, process count, content digest, and whether it
	// was a cache hit. The daemon uses it to journal sweep progress so a
	// killed process resumes without recomputing completed points. Called
	// concurrently from sweep goroutines.
	OnPoint func(idx, procs int, dig rescache.Digest, hit bool)
}

// NewEnv generates the preset's database once and returns the environment.
func NewEnv(p Preset) *Env {
	return NewEnvWith(p, tpch.Generate(p.SF, p.Seed))
}

// NewEnvWith reuses an already-generated database (benchmarks regenerate the
// run cache every iteration but share the data).
func NewEnvWith(p Preset, d *tpch.Data) *Env {
	return &Env{
		Preset:      p,
		Data:        d,
		Results:     rescache.NewMemory(),
		Parallelism: runtime.GOMAXPROCS(0),
	}
}

func (e *Env) results() *rescache.Store {
	e.initMu.Lock()
	defer e.initMu.Unlock()
	if e.Results == nil {
		e.Results = rescache.NewMemory()
	}
	return e.Results
}

func (e *Env) ctx() context.Context {
	if e.Ctx != nil {
		return e.Ctx
	}
	return context.Background()
}

func (e *Env) runner() func(context.Context, workload.Options) (*workload.Stats, error) {
	if e.Runner != nil {
		return e.Runner
	}
	return workload.RunContext
}

// VClass returns the V-Class spec at this environment's scale.
func (e *Env) VClass() machine.Spec { return machine.VClassSpec(16, e.Preset.MemScale) }

// Origin returns the Origin 2000 spec at this environment's scale.
func (e *Env) Origin() machine.Spec { return machine.OriginSpec(32, e.Preset.MemScale) }

// Measure runs (or recalls) one configuration on an unmodified machine.
func (e *Env) Measure(spec machine.Spec, q tpch.QueryID, procs int) (core.Measurement, error) {
	return e.MeasureOpts(spec.Name, q, procs, workload.Options{Spec: spec})
}

// MeasureOpts runs one configuration with workload overrides; tag names the
// machine variant in error messages (ablations pass e.g.
// "vclass-nomigratory"). The cache key is the canonical digest of the full
// configuration, so the tag carries no identity.
func (e *Env) MeasureOpts(tag string, q tpch.QueryID, procs int, opts workload.Options) (core.Measurement, error) {
	m, _, err := e.MeasureCached(tag, q, procs, opts)
	return m, err
}

// CanonicalOptions normalizes opts exactly as a measurement run applies it:
// defaults made explicit so equivalent requests share a content digest, and
// non-identity fields (Data, Obs) cleared. rescache.DigestOptions over the
// result is the measurement's cache key.
func (e *Env) CanonicalOptions(q tpch.QueryID, procs int, opts workload.Options) workload.Options {
	opts.Data = nil
	opts.Obs = nil
	opts.SimFault = nil
	// Warm state is not identity: a restored run is byte-identical to a
	// cold-started one, so the same digest serves both.
	opts.Warm = nil
	opts.Query = q
	opts.Processes = procs
	opts.Validate = true
	if opts.OSTimeScale == 0 {
		opts.OSTimeScale = e.Preset.MemScale
	}
	if opts.SampleQuanta == 0 {
		opts.SampleQuanta = e.SampleQuanta
	}
	if opts.SampleQuanta == 1 {
		// A period of 1 cannot sample (the controller clamps to 2, fully
		// detailed); normalize to exact so the digest matches the behavior.
		opts.SampleQuanta = 0
	}
	if opts.SampleQuanta > 1 {
		// Sampled runs execute serially (the controller is not weave-aware);
		// keep the digest honest about it.
		opts.Parallel = false
		opts.ParallelWindow = 0
	} else if e.Parallel && !opts.Parallel {
		opts.Parallel = true
		opts.ParallelWindow = e.ParallelWindow
	}
	return opts
}

// MeasureCached is MeasureOpts exposing whether the measurement was answered
// from the cache (memory or disk) without running a simulation.
func (e *Env) MeasureCached(tag string, q tpch.QueryID, procs int, opts workload.Options) (core.Measurement, bool, error) {
	opts = e.CanonicalOptions(q, procs, opts)
	dig := rescache.DigestOptions(e.Preset.SF, e.Preset.Seed, opts)

	raw, hit, err := e.results().Do(e.ctx(), rescache.NSMeasurement, dig, func(runCtx context.Context) ([]byte, error) {
		o := opts
		o.Data = e.Data
		if e.Checkpoints && !o.ColdRun {
			// Best effort: a missing or failed checkpoint means a normal
			// full rebuild, never a failed measurement.
			if img, err := e.warmImage(runCtx, o.BufHeaderBytes); err == nil {
				o.Warm = img
			}
		}
		st, err := e.runner()(runCtx, o)
		if err != nil {
			return nil, err
		}
		e.Tally.add(st)
		return json.Marshal(core.FromStats(st))
	})
	if err != nil {
		return core.Measurement{}, false, fmt.Errorf("%s/%v/p%d: %w", tag, q, procs, err)
	}
	// Both cold and warm paths decode the stored JSON, so a given digest
	// yields byte-identical re-encodings regardless of cache state.
	var m core.Measurement
	if err := json.Unmarshal(raw, &m); err != nil {
		return core.Measurement{}, false, fmt.Errorf("%s/%v/p%d: corrupt cached measurement %s: %w", tag, q, procs, dig.Short(), err)
	}
	return m, hit, nil
}

// Sweep measures a query over ProcCounts on one machine variant, in parallel
// up to Env.Parallelism, and returns the series in ascending process count.
func (e *Env) Sweep(tag string, spec machine.Spec, q tpch.QueryID, opts workload.Options) (core.Series, error) {
	s := core.Series{Machine: spec.Name, Query: q.String(), Points: make([]core.Measurement, len(ProcCounts))}
	sem := make(chan struct{}, e.parallelism())
	errs := make([]error, len(ProcCounts))
	var wg sync.WaitGroup
	for i, n := range ProcCounts {
		i, n := i, n
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer wg.Done()
			defer func() { <-sem }()
			o := opts
			o.Spec = spec
			var hit bool
			s.Points[i], hit, errs[i] = e.MeasureCached(tag, q, n, o)
			if errs[i] == nil && e.OnPoint != nil {
				e.OnPoint(i, n, rescache.DigestOptions(e.Preset.SF, e.Preset.Seed, e.CanonicalOptions(q, n, o)), hit)
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return s, err
		}
	}
	return s, nil
}

func (e *Env) parallelism() int {
	if e.Parallelism < 1 {
		return 1
	}
	return e.Parallelism
}
