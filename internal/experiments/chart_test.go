package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestWriteChartRendersSeries(t *testing.T) {
	r, err := Fig9(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteChart(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "fig9 series") || !strings.Contains(out, "Q21") {
		t.Fatalf("chart output:\n%s", out)
	}
}

func TestWriteChartNoSeriesIsNoop(t *testing.T) {
	r := &Result{ID: "x"}
	var buf bytes.Buffer
	if err := r.WriteChart(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("chart emitted output without series")
	}
}

func TestEStateFlattensFig9Jump(t *testing.T) {
	r, err := EState(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Series) != 2 {
		t.Fatalf("series = %d", len(r.Series))
	}
	mesi, msi := r.Series[0], r.Series[1]
	mesiJump := mesi.Points[1].MemLatencyCycles - mesi.Points[0].MemLatencyCycles
	msiJump := msi.Points[1].MemLatencyCycles - msi.Points[0].MemLatencyCycles
	if msiJump >= mesiJump {
		t.Fatalf("MSI 1->2 jump (%.2f) should be below MESI's (%.2f)", msiJump, mesiJump)
	}
}

func TestPlatformsIncludesStarfire(t *testing.T) {
	r, err := Platforms(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range r.Rows {
		if row[0] == "Sun Starfire" {
			found = true
		}
	}
	if !found {
		t.Fatal("Starfire missing from the platform comparison")
	}
}
