package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"dssmem/internal/core"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// sharedEnv is built once: the tiny preset keeps every figure fast, and the
// run cache makes later tests nearly free.
var sharedEnv = NewEnv(Tiny)

func TestPresetByName(t *testing.T) {
	for _, name := range []string{"tiny", "small", "medium", ""} {
		if _, err := PresetByName(name); err != nil {
			t.Fatalf("%q: %v", name, err)
		}
	}
	if _, err := PresetByName("bogus"); err == nil {
		t.Fatal("bogus preset accepted")
	}
}

func TestEnvCaching(t *testing.T) {
	e := sharedEnv
	spec := e.VClass()
	a, err := e.Measure(spec, tpch.Q6, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Measure(spec, tpch.Q6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache returned a different measurement")
	}
}

func TestSweepOrdering(t *testing.T) {
	e := sharedEnv
	s, err := e.Sweep(e.VClass().Name, e.VClass(), tpch.Q6, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != len(ProcCounts) {
		t.Fatalf("points = %d", len(s.Points))
	}
	for i, n := range ProcCounts {
		if s.Points[i].Processes != n {
			t.Fatalf("point %d has %d processes, want %d", i, s.Points[i].Processes, n)
		}
	}
}

func TestAllFiguresRun(t *testing.T) {
	for _, id := range FigureIDs() {
		var buf bytes.Buffer
		r, err := RunFigure(sharedEnv, id, &buf)
		if err != nil {
			t.Fatalf("figure %d: %v", id, err)
		}
		if len(r.Rows) == 0 || len(r.Headers) == 0 {
			t.Fatalf("figure %d produced no table", id)
		}
		out := buf.String()
		if !strings.Contains(out, r.Title) || !strings.Contains(out, "Q21") {
			t.Fatalf("figure %d output malformed:\n%s", id, out)
		}
	}
}

func TestUnknownFigureAndAblation(t *testing.T) {
	if _, err := RunFigure(sharedEnv, 1, nil); err == nil {
		t.Fatal("figure 1 is the architecture diagram, not an experiment")
	}
	if _, err := RunAblation(sharedEnv, "nope", nil); err == nil {
		t.Fatal("unknown ablation accepted")
	}
}

func TestAllAblationsRun(t *testing.T) {
	for _, name := range AblationNames() {
		var buf bytes.Buffer
		r, err := RunAblation(sharedEnv, name, &buf)
		if err != nil {
			t.Fatalf("ablation %s: %v", name, err)
		}
		if len(r.Rows) < 2 {
			t.Fatalf("ablation %s: too few rows", name)
		}
	}
}

// Shape checks on the tiny preset: the paper's headline claims should hold
// qualitatively even at the smallest scale.
func TestShapeQ6MissRatio(t *testing.T) {
	r, err := Fig4(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	var q6h, q6s core.Measurement
	// Recompute from cached runs for precision.
	q6hM, _ := sharedEnv.Measure(sharedEnv.VClass(), tpch.Q6, 1)
	q6sM, _ := sharedEnv.Measure(sharedEnv.Origin(), tpch.Q6, 1)
	q6h, q6s = q6hM, q6sM
	ratio := q6s.L1Misses / q6h.L1Misses
	if ratio < 1.3 || ratio > 6 {
		t.Fatalf("Q6 SGI-L1/HPV ratio %.2f outside the paper's neighbourhood (~2x)", ratio)
	}
	_ = r
}

func TestShapeQ21L2Advantage(t *testing.T) {
	h, err := sharedEnv.Measure(sharedEnv.VClass(), tpch.Q21, 1)
	if err != nil {
		t.Fatal(err)
	}
	s, err := sharedEnv.Measure(sharedEnv.Origin(), tpch.Q21, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.L2Misses >= h.L1Misses {
		t.Fatalf("Origin L2 misses (%.3g) should be far below HPV Dcache misses (%.3g) for the index query",
			s.L2Misses, h.L1Misses)
	}
}

func TestShapeVolDominatesInvol(t *testing.T) {
	m, err := sharedEnv.Measure(sharedEnv.VClass(), tpch.Q21, 8)
	if err != nil {
		t.Fatal(err)
	}
	if m.VolPerM <= m.InvolPerM {
		t.Fatalf("voluntary (%.2f) should dominate involuntary (%.2f) at 8 processes", m.VolPerM, m.InvolPerM)
	}
	one, err := sharedEnv.Measure(sharedEnv.VClass(), tpch.Q21, 1)
	if err != nil {
		t.Fatal(err)
	}
	if one.VolPerM != 0 {
		t.Fatalf("single process should have no voluntary switches, got %.2f", one.VolPerM)
	}
}

func TestShapeOriginLatencyGrows(t *testing.T) {
	s, err := sharedEnv.Sweep(sharedEnv.Origin().Name, sharedEnv.Origin(), tpch.Q6, workload.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Growth(core.MetricMemLatency) <= 1.0 {
		t.Fatalf("Origin memory latency should grow with processes, growth=%.3f", s.Growth(core.MetricMemLatency))
	}
}

func TestResultWriteToFormatsColumns(t *testing.T) {
	r := &Result{
		ID: "x", Title: "t",
		Headers: []string{"a", "bbbb"},
		Rows:    [][]string{{"aaaaaa", "b"}},
		Notes:   []string{"n1"},
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "== x: t ==") || !strings.Contains(out, "note: n1") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestTaxonomyExperiment(t *testing.T) {
	r, err := Taxonomy(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	// 3 queries x 2 machines x 4 regions.
	if len(r.Rows) != 24 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	var buf bytes.Buffer
	if _, err := r.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "metadata") {
		t.Fatal("regions missing from output")
	}
}

func TestTaxonomyShapes(t *testing.T) {
	// Q6 must not touch index data; Q21 must touch it substantially.
	q6, err := RegionStats(sharedEnv, false, tpch.Q6, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q6.Accesses[1] != 0 { // RegionIndex
		t.Fatalf("Q6 touched %d index references ('no index data is used')", q6.Accesses[1])
	}
	q21, err := RegionStats(sharedEnv, false, tpch.Q21, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q21.Accesses[1] == 0 {
		t.Fatal("Q21 touched no index data")
	}
	// On the Origin, private data misses in the small L1 but is absorbed by
	// the L2 (the locality claim of §3.3).
	o6, err := RegionStats(sharedEnv, true, tpch.Q6, 1)
	if err != nil {
		t.Fatal(err)
	}
	const private = 3
	l1Share := float64(o6.L1Misses[private])
	l2Share := float64(o6.L2Misses[private])
	if l2Share >= l1Share {
		t.Fatalf("private data should be filtered by the Origin L2: L1 misses %v, L2 misses %v", l1Share, l2Share)
	}
}

func TestExportCSVAndJSON(t *testing.T) {
	r, err := Fig3(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf bytes.Buffer
	if err := r.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csvBuf.String()), "\n")
	if len(lines) != 1+len(r.Rows) {
		t.Fatalf("csv lines = %d, want %d", len(lines), 1+len(r.Rows))
	}
	if !strings.HasPrefix(lines[0], "query,") {
		t.Fatalf("csv header: %s", lines[0])
	}

	var jsonBuf bytes.Buffer
	if err := r.WriteJSON(&jsonBuf); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]interface{}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("json invalid: %v", err)
	}
	if decoded["id"] != "fig3" {
		t.Fatalf("json id: %v", decoded["id"])
	}
}

func TestExportJSONIncludesSeries(t *testing.T) {
	r, err := Fig5(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Series []struct {
			Query  string `json:"query"`
			Points []struct {
				Processes int     `json:"Processes"`
				CPI       float64 `json:"CPI"`
			} `json:"points"`
		} `json:"series"`
	}
	if err := json.Unmarshal(buf.Bytes(), &decoded); err != nil {
		t.Fatal(err)
	}
	if len(decoded.Series) != 3 || len(decoded.Series[0].Points) != len(ProcCounts) {
		t.Fatalf("series shape: %+v", decoded.Series)
	}
	if decoded.Series[0].Points[0].CPI <= 1 {
		t.Fatal("measurements not serialized")
	}
}

func TestMixExperiment(t *testing.T) {
	r, err := Mix(sharedEnv)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 6 { // 2 machines x 3 queries
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		if !strings.HasSuffix(row[4], "x") {
			t.Fatalf("slowdown cell malformed: %v", row)
		}
	}
}
