package experiments

import (
	"encoding/csv"
	"encoding/json"
	"io"

	"dssmem/internal/core"
)

// This file makes harness results machine-readable: CSV for the tables and
// JSON for the full structured result (rows, series, notes).

// WriteCSV emits the result's table as CSV (headers first).
func (r *Result) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(r.Headers); err != nil {
		return err
	}
	for _, row := range r.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// jsonResult is the stable JSON shape of a Result.
type jsonResult struct {
	ID      string       `json:"id"`
	Title   string       `json:"title"`
	Headers []string     `json:"headers"`
	Rows    [][]string   `json:"rows"`
	Series  []jsonSeries `json:"series,omitempty"`
	Notes   []string     `json:"notes,omitempty"`
}

type jsonSeries struct {
	Machine string             `json:"machine"`
	Query   string             `json:"query"`
	Points  []core.Measurement `json:"points"`
}

// WriteJSON emits the full structured result as indented JSON.
func (r *Result) WriteJSON(w io.Writer) error {
	out := jsonResult{
		ID:      r.ID,
		Title:   r.Title,
		Headers: r.Headers,
		Rows:    r.Rows,
		Notes:   r.Notes,
	}
	for _, s := range r.Series {
		out.Series = append(out.Series, jsonSeries{Machine: s.Machine, Query: s.Query, Points: s.Points})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}
