package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssmem/internal/core"
	"dssmem/internal/perfctr"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// fakeEnv returns an Env whose Runner is a synthetic workload: instant, and
// parameterized by the options so distinct configurations yield distinct
// measurements.
func fakeEnv(runner func(context.Context, workload.Options) (*workload.Stats, error)) *Env {
	e := NewEnvWith(Tiny, sharedEnv.Data)
	e.Runner = runner
	return e
}

func fakeStats(o workload.Options) *workload.Stats {
	cyc := uint64(1000 + 10*o.SpinLimit + o.Processes)
	return &workload.Stats{
		MachineName: o.Spec.Name,
		ClockMHz:    o.Spec.ClockMHz,
		Query:       o.Query,
		Processes:   o.Processes,
		Procs: []workload.ProcStats{{
			Query:        o.Query,
			Counters:     perfctr.Counters{Instructions: 1000, Cycles: cyc},
			ThreadCycles: cyc,
			WallCycles:   cyc + 100,
		}},
	}
}

// TestMeasureOptsKeysOnOptionsNotTag is the regression test for the cache-key
// collision hazard: two ablations passing different workload.Options under
// the SAME tag must not share a measurement, and the same options under
// DIFFERENT tags must.
func TestMeasureOptsKeysOnOptionsNotTag(t *testing.T) {
	var calls atomic.Int64
	e := fakeEnv(func(_ context.Context, o workload.Options) (*workload.Stats, error) {
		calls.Add(1)
		return fakeStats(o), nil
	})
	spec := e.VClass()

	plain, err := e.MeasureOpts("sametag", tpch.Q21, 8, workload.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	spun, err := e.MeasureOpts("sametag", tpch.Q21, 8, workload.Options{Spec: spec, SpinLimit: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("runs = %d: different options under one tag shared a cache entry", calls.Load())
	}
	if plain == spun {
		t.Fatal("distinct configurations returned the same measurement")
	}

	again, err := e.MeasureOpts("othertag", tpch.Q21, 8, workload.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("runs = %d: identical options under a new tag re-ran the simulation", calls.Load())
	}
	if again != plain {
		t.Fatal("tag leaked into the cache key")
	}
}

func TestSweepErrorPropagation(t *testing.T) {
	boom := errors.New("injected mid-sweep failure")
	e := fakeEnv(func(_ context.Context, o workload.Options) (*workload.Stats, error) {
		if o.Processes == 6 {
			return nil, boom
		}
		return fakeStats(o), nil
	})
	_, err := e.Sweep("vclass", e.VClass(), tpch.Q6, workload.Options{})
	if err == nil {
		t.Fatal("failing measurement did not fail the sweep")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want the injected failure in the chain", err)
	}
}

func TestSweepBoundedParallelism(t *testing.T) {
	var cur, peak atomic.Int64
	e := fakeEnv(func(_ context.Context, o workload.Options) (*workload.Stats, error) {
		n := cur.Add(1)
		defer cur.Add(-1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond) // hold the slot so overlap is observable
		return fakeStats(o), nil
	})
	e.Parallelism = 2
	if _, err := e.Sweep("vclass", e.VClass(), tpch.Q6, workload.Options{}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > 2 {
		t.Fatalf("observed %d concurrent runs, semaphore bound is 2", p)
	}
}

// TestColdWarmByteIdentical is the determinism contract of the result cache:
// the same digest yields byte-identical Measurement JSON whether the result
// was just simulated (cold), read back from the same store (warm memory), or
// read by a fresh process-equivalent store from disk (warm disk) — and all
// match a direct workload.Run of the canonical options.
func TestColdWarmByteIdentical(t *testing.T) {
	dir := t.TempDir()
	spec := sharedEnv.VClass()

	marshal := func(m core.Measurement) []byte {
		b, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}

	cold := NewEnvWith(Tiny, sharedEnv.Data)
	store1, err := rescache.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cold.Results = store1
	m1, hit, err := cold.MeasureCached(spec.Name, tpch.Q6, 1, workload.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("cold run reported a cache hit")
	}

	warm := NewEnvWith(Tiny, sharedEnv.Data)
	store2, err := rescache.Open(dir) // fresh store over the same disk: a daemon restart
	if err != nil {
		t.Fatal(err)
	}
	warm.Results = store2
	warm.Runner = func(context.Context, workload.Options) (*workload.Stats, error) {
		t.Error("warm path ran a simulation")
		return nil, errors.New("unreachable")
	}
	m2, hit, err := warm.MeasureCached(spec.Name, tpch.Q6, 1, workload.Options{Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("disk-persisted result not found after 'restart'")
	}
	if !bytes.Equal(marshal(m1), marshal(m2)) {
		t.Fatalf("cold/warm JSON differ:\ncold %s\nwarm %s", marshal(m1), marshal(m2))
	}

	// And both equal a direct, cache-free workload run.
	direct := cold.CanonicalOptions(tpch.Q6, 1, workload.Options{Spec: spec})
	direct.Data = sharedEnv.Data
	st, err := workload.Run(direct)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(marshal(core.FromStats(st)), marshal(m1)) {
		t.Fatal("cached measurement differs from a direct workload.Run")
	}
}

// TestMeasureCtxCancellation: a cancelled Env context aborts the measurement
// instead of waiting for it.
func TestMeasureCtxCancellation(t *testing.T) {
	started := make(chan struct{})
	e := fakeEnv(func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		close(started)
		<-ctx.Done()
		return nil, fmt.Errorf("aborted: %w", context.Cause(ctx))
	})
	ctx, cancel := context.WithCancel(context.Background())
	e.Ctx = ctx
	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		_, err = e.Measure(e.VClass(), tpch.Q6, 1)
	}()
	<-started
	cancel()
	wg.Wait()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
