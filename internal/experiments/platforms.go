package experiments

import (
	"dssmem/internal/machine"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Platforms extends the paper's two-machine comparison with a third era
// platform (a Sun Starfire-style UMA SMP with a two-level hierarchy): the
// cross-platform characterization the paper's methodology is built for.
func Platforms(e *Env) (*Result, error) {
	r := &Result{
		ID:      "platforms",
		Title:   "Cross-platform characterization (1 process; extension machine included)",
		Headers: []string{"machine", "query", "thread cyc", "CPI", "L1/M", "outer/M", "mem lat"},
	}
	specs := []machine.Spec{
		e.VClass(),
		e.Origin(),
		machine.StarfireSpec(16, e.Preset.MemScale),
	}
	for _, q := range tpch.AllQueries {
		for _, spec := range specs {
			m, err := e.MeasureOpts(spec.Name, q, 1, workload.Options{Spec: spec})
			if err != nil {
				return nil, err
			}
			outer := m.L2MissesPerM
			if outer == 0 {
				outer = m.L1MissesPerM
			}
			r.Rows = append(r.Rows, []string{
				spec.Name, q.String(), fm(m.ThreadCycles), f3(m.CPI),
				f0(m.L1MissesPerM), f0(outer), f1(m.MemLatencyCycles),
			})
		}
	}
	r.Notes = append(r.Notes,
		"the Starfire pairs UMA latencies with an Origin-style two-level hierarchy — it inherits the Origin's cache behaviour and the V-Class's flat memory, the quadrant neither studied machine occupies")
	return r, nil
}

// EState isolates the MESI Exclusive state by degrading the V-Class protocol
// to MSI. The paper's Fig. 9 explanation rests on E: the second reader's
// intervention disappears under MSI (at the cost of upgrades on every
// write-after-read).
func EState(e *Env) (*Result, error) {
	mesi := e.VClass()
	msi := e.VClass()
	msi.Protocol.NoExclusive = true
	msi.Protocol.Migratory = false // migratory rides on owned states
	r := &Result{
		ID:      "estate",
		Title:   "MESI vs MSI on the V-Class: the E state behind Fig. 9 (Q6)",
		Headers: append([]string{"variant"}, procHeaders()...),
	}
	a, err := e.Sweep(mesi.Name, mesi, tpch.Q6, workload.Options{})
	if err != nil {
		return nil, err
	}
	b, err := e.Sweep("vclass-msi", msi, tpch.Q6, workload.Options{})
	if err != nil {
		return nil, err
	}
	rowA := []string{"MESI (E state)"}
	rowB := []string{"MSI (no E)"}
	for i := range a.Points {
		rowA = append(rowA, f1(a.Points[i].MemLatencyCycles))
		rowB = append(rowB, f1(b.Points[i].MemLatencyCycles))
	}
	r.Rows = append(r.Rows, rowA, rowB)
	r.Series = append(r.Series, a, b)
	r.Notes = append(r.Notes,
		"memory latency in cycles: the 1->2 process jump (second readers paying interventions on E lines) flattens under MSI",
		"MSI's cost appears elsewhere: every private write-after-read becomes an upgrade transaction")
	return r, nil
}

func init() {
	Ablations["platforms"] = Platforms
	Ablations["estate"] = EState
}
