package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"dssmem/internal/core"
	"dssmem/internal/tpch"
	"dssmem/internal/viz"
	"dssmem/internal/workload"
)

// Result is one regenerated figure (or ablation): a titled table plus the
// underlying series and shape-check notes.
type Result struct {
	ID      string
	Title   string
	Headers []string
	Rows    [][]string
	Series  []core.Series
	Notes   []string
}

// WriteChart renders the result's series (if any) as terminal sparklines.
func (r *Result) WriteChart(w io.Writer) error {
	if len(r.Series) == 0 {
		return nil
	}
	labels := make([]string, len(r.Series))
	series := make([][]float64, len(r.Series))
	for i, s := range r.Series {
		labels[i] = s.Query
		vals := make([]float64, len(s.Points))
		for j, p := range s.Points {
			vals[j] = chartMetricFor(r.ID)(p)
		}
		series[i] = vals
	}
	return viz.Lines(w, "  ["+r.ID+" series]", labels, series)
}

// chartMetricFor picks the figure's plotted metric.
func chartMetricFor(id string) func(core.Measurement) float64 {
	switch id {
	case "fig6":
		return core.MetricL2PerM
	case "fig8":
		return core.MetricL1PerM
	case "fig9", "estate", "ablation-placement":
		return core.MetricMemLatency
	case "fig10":
		return core.MetricVolPerM
	default:
		return core.MetricCyclesPerM
	}
}

// WriteTo renders the result as an aligned text table.
func (r *Result) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	widths := make([]int, len(r.Headers))
	for i, h := range r.Headers {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(r.Headers)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	b.WriteByte('\n')
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

func f3(v float64) string  { return fmt.Sprintf("%.3f", v) }
func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f0(v float64) string  { return fmt.Sprintf("%.0f", v) }
func fm(v float64) string  { return fmt.Sprintf("%.3gM", v/1e6) }
func fk(v float64) string  { return fmt.Sprintf("%.3gK", v/1e3) }
func pct(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }

// bothEnds measures all queries on both machines at 1 and 8 processes (the
// shared substrate of Figs. 2–4).
func (e *Env) bothEnds() (map[string]map[tpch.QueryID][2]core.Measurement, error) {
	out := map[string]map[tpch.QueryID][2]core.Measurement{}
	for _, q := range tpch.AllQueries {
		for _, which := range []string{"HPV", "SGI"} {
			spec := e.VClass()
			if which == "SGI" {
				spec = e.Origin()
			}
			m1, err := e.Measure(spec, q, 1)
			if err != nil {
				return nil, err
			}
			m8, err := e.Measure(spec, q, 8)
			if err != nil {
				return nil, err
			}
			if out[which] == nil {
				out[which] = map[tpch.QueryID][2]core.Measurement{}
			}
			out[which][q] = [2]core.Measurement{m1, m8}
		}
	}
	return out, nil
}

// Fig2 regenerates Figure 2: thread time in cycles for Q6, Q21, Q12 on both
// machines, at 1 process (a) and 8 processes (b).
func Fig2(e *Env) (*Result, error) {
	data, err := e.bothEnds()
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig2",
		Title:   "Thread time in cycles (a: 1 process, b: 8 processes)",
		Headers: []string{"query", "HPV 1p", "SGI 1p", "HPV 8p", "SGI 8p", "SGI/HPV 1p", "SGI/HPV 8p"},
	}
	for _, q := range tpch.AllQueries {
		h, s := data["HPV"][q], data["SGI"][q]
		r.Rows = append(r.Rows, []string{
			q.String(),
			fm(h[0].ThreadCycles), fm(s[0].ThreadCycles),
			fm(h[1].ThreadCycles), fm(s[1].ThreadCycles),
			f3(s[0].ThreadCycles / h[0].ThreadCycles),
			f3(s[1].ThreadCycles / h[1].ThreadCycles),
		})
	}
	h6, s6 := data["HPV"][tpch.Q6], data["SGI"][tpch.Q6]
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper: 1-process cycle counts nearly equal; measured Q6 SGI/HPV = %.2f", s6[0].ThreadCycles/h6[0].ThreadCycles),
		fmt.Sprintf("paper: at 8 processes SGI grows more; measured Q6 growth SGI %.3fx vs HPV %.3fx",
			s6[1].ThreadCycles/s6[0].ThreadCycles*float64(s6[0].Instructions)/float64(s6[1].Instructions),
			h6[1].ThreadCycles/h6[0].ThreadCycles*float64(h6[0].Instructions)/float64(h6[1].Instructions)))
	return r, nil
}

// Fig3 regenerates Figure 3: CPI at 1 and 8 processes.
func Fig3(e *Env) (*Result, error) {
	data, err := e.bothEnds()
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig3",
		Title:   "Cycles per instruction (a: 1 process, b: 8 processes)",
		Headers: []string{"query", "HPV 1p", "SGI 1p", "HPV 8p", "SGI 8p"},
	}
	for _, q := range tpch.AllQueries {
		h, s := data["HPV"][q], data["SGI"][q]
		r.Rows = append(r.Rows, []string{
			q.String(), f3(h[0].CPI), f3(s[0].CPI), f3(h[1].CPI), f3(s[1].CPI),
		})
	}
	h6, s6 := data["HPV"][tpch.Q6], data["SGI"][tpch.Q6]
	r.Notes = append(r.Notes,
		"paper: CPI in 1.3..1.6; CPI rises with processes, more on the Origin",
		fmt.Sprintf("measured Q6 CPI growth: HPV +%.1f%%, SGI +%.1f%%",
			100*(h6[1].CPI/h6[0].CPI-1), 100*(s6[1].CPI/s6[0].CPI-1)))
	return r, nil
}

// Fig4 regenerates Figure 4: data-cache misses and miss rates — the HPV
// D-cache vs the Origin's L1 and L2 — at 1 and 8 processes.
func Fig4(e *Env) (*Result, error) {
	data, err := e.bothEnds()
	if err != nil {
		return nil, err
	}
	r := &Result{
		ID:      "fig4",
		Title:   "Data cache misses (absolute) and miss rate per reference",
		Headers: []string{"query", "procs", "HPV Dcache", "SGI L1", "SGI L2", "SGI-L1/HPV", "HPV rate"},
	}
	for _, q := range tpch.AllQueries {
		for i, procs := range []int{1, 8} {
			h, s := data["HPV"][q][i], data["SGI"][q][i]
			r.Rows = append(r.Rows, []string{
				q.String(), fmt.Sprint(procs),
				fk(h.L1Misses), fk(s.L1Misses), fk(s.L2Misses),
				f1(s.L1Misses / h.L1Misses), pct(h.L1MissRate),
			})
		}
	}
	h21, s21 := data["HPV"][tpch.Q21][0], data["SGI"][tpch.Q21][0]
	h6, s6 := data["HPV"][tpch.Q6][0], data["SGI"][tpch.Q6][0]
	r.Notes = append(r.Notes,
		fmt.Sprintf("paper: Q6 SGI-L1 ≈ 2x HPV misses; measured %.1fx", s6.L1Misses/h6.L1Misses),
		fmt.Sprintf("paper: Q21 SGI-L1/HPV ratio far larger than Q6's; measured Q21 %.1fx vs Q6 %.1fx",
			s21.L1Misses/h21.L1Misses, s6.L1Misses/h6.L1Misses),
		fmt.Sprintf("paper: Q21 SGI-L2 misses far below HPV misses; measured %.3gK vs %.3gK",
			s21.L2Misses/1e3, h21.L1Misses/1e3))
	return r, nil
}

// sweepFigure builds a per-query process sweep on one machine.
func (e *Env) sweepFigure(id, title string, machineSpec int, metric func(core.Measurement) float64, format func(float64) string) (*Result, error) {
	ms := e.VClass()
	if machineSpec == 1 {
		ms = e.Origin()
	}
	r := &Result{
		ID:      id,
		Title:   title,
		Headers: append([]string{"query"}, procHeaders()...),
	}
	for _, q := range tpch.AllQueries {
		s, err := e.Sweep(ms.Name, ms, q, workload.Options{})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, s)
		row := []string{q.String()}
		for _, p := range s.Points {
			row = append(row, format(metric(p)))
		}
		r.Rows = append(r.Rows, row)
	}
	return r, nil
}

func procHeaders() []string {
	h := make([]string, len(ProcCounts))
	for i, n := range ProcCounts {
		h[i] = fmt.Sprintf("%dproc", n)
	}
	return h
}

// Fig5 regenerates Figure 5: Origin thread time (cycles per 1M instructions)
// vs number of query processes.
func Fig5(e *Env) (*Result, error) {
	r, err := e.sweepFigure("fig5", "SGI Origin 2000 thread time (cycles/1M instr)", 1, core.MetricCyclesPerM, fm)
	if err != nil {
		return nil, err
	}
	for _, s := range r.Series {
		r.Notes = append(r.Notes, fmt.Sprintf("%s growth 1->8 procs: %.3fx (paper: clear increase, larger at 6-8)",
			s.Query, s.Growth(core.MetricCyclesPerM)))
	}
	return r, nil
}

// Fig6 regenerates Figure 6: Origin L2 data-cache misses per 1M instructions.
func Fig6(e *Env) (*Result, error) {
	r, err := e.sweepFigure("fig6", "SGI Origin 2000 L2 data cache misses per 1M instr", 1, core.MetricL2PerM, f0)
	if err != nil {
		return nil, err
	}
	var q6, q21 core.Series
	for _, s := range r.Series {
		switch s.Query {
		case "Q6":
			q6 = s
		case "Q21":
			q21 = s
		}
	}
	if len(q6.Points) > 0 && len(q21.Points) > 0 {
		r.Notes = append(r.Notes,
			fmt.Sprintf("paper: Q21's L2 misses/1M instr well below Q6/Q12; measured Q21 %.0f vs Q6 %.0f at 1 proc",
				q21.Points[0].L2MissesPerM, q6.Points[0].L2MissesPerM),
			fmt.Sprintf("paper: communication becomes the major L2-miss component for Q21; measured coherence share 1p %.1f%% -> 8p %.1f%%",
				100*q21.Points[0].CoherenceFraction, 100*q21.Points[len(q21.Points)-1].CoherenceFraction))
	}
	return r, nil
}

// Fig7 regenerates Figure 7: V-Class thread time per 1M instructions.
func Fig7(e *Env) (*Result, error) {
	r, err := e.sweepFigure("fig7", "HP V-Class thread time (cycles/1M instr)", 0, core.MetricCyclesPerM, fm)
	if err != nil {
		return nil, err
	}
	for _, s := range r.Series {
		if two, four := s.At(2), s.At(4); two != nil && four != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: 2->4 process change %.2f%% (paper: thread time even *decreases* from 2 to 4)",
				s.Query, 100*(four.CyclesPerMInstr/two.CyclesPerMInstr-1)))
		}
	}
	return r, nil
}

// Fig8 regenerates Figure 8: V-Class D-cache misses per 1M instructions.
func Fig8(e *Env) (*Result, error) {
	r, err := e.sweepFigure("fig8", "HP V-Class Dcache misses per 1M instr", 0, core.MetricL1PerM, f0)
	if err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes, "paper: moderate increase with processes; cold+capacity stay the major component")
	for _, s := range r.Series {
		last := s.Points[len(s.Points)-1]
		r.Notes = append(r.Notes, fmt.Sprintf("%s coherence share at 8 procs: %.1f%%", s.Query, 100*last.CoherenceFraction))
	}
	return r, nil
}

// Fig9 regenerates Figure 9: V-Class memory latency vs process count.
func Fig9(e *Env) (*Result, error) {
	r, err := e.sweepFigure("fig9", "HP V-Class memory latency (cycles; microseconds in series)", 0, core.MetricMemLatency, f1)
	if err != nil {
		return nil, err
	}
	for _, s := range r.Series {
		one, two, four := s.At(1), s.At(2), s.At(4)
		if one != nil && two != nil && four != nil {
			r.Notes = append(r.Notes, fmt.Sprintf("%s: 1p %.1f -> 2p %.1f -> 4p %.1f cycles (paper: big increase 1->2, decrease 2->4 from the migratory/E-state protocol)",
				s.Query, one.MemLatencyCycles, two.MemLatencyCycles, four.MemLatencyCycles))
		}
	}
	return r, nil
}

// Fig10 regenerates Figure 10: voluntary and involuntary context switches per
// 1M instructions on the V-Class.
func Fig10(e *Env) (*Result, error) {
	ms := e.VClass()
	r := &Result{
		ID:      "fig10",
		Title:   "HP V-Class context switches per 1M instr (voluntary/involuntary)",
		Headers: append([]string{"query", "kind"}, procHeaders()...),
	}
	for _, q := range tpch.AllQueries {
		s, err := e.Sweep(ms.Name, ms, q, workload.Options{})
		if err != nil {
			return nil, err
		}
		r.Series = append(r.Series, s)
		vol := []string{q.String(), "voluntary"}
		inv := []string{q.String(), "involuntary"}
		for _, p := range s.Points {
			vol = append(vol, fmt.Sprintf("%.2f", p.VolPerM))
			inv = append(inv, fmt.Sprintf("%.2f", p.InvolPerM))
		}
		r.Rows = append(r.Rows, vol, inv)
		last := s.Points[len(s.Points)-1]
		r.Notes = append(r.Notes, fmt.Sprintf("%s at 8 procs: voluntary %.2f vs involuntary %.2f per 1M instr (paper: voluntary dominate beyond 2 procs, growing almost linearly)",
			q.String(), last.VolPerM, last.InvolPerM))
	}
	r.Notes = append(r.Notes, "divergence: the paper found switch rates roughly independent of query type; in this model voluntary switches track buffer-pin lock pressure, which is highest for Q21")
	return r, nil
}

// Figures maps figure numbers to their runners.
var Figures = map[int]func(*Env) (*Result, error){
	2: Fig2, 3: Fig3, 4: Fig4, 5: Fig5,
	6: Fig6, 7: Fig7, 8: Fig8, 9: Fig9, 10: Fig10,
}

// FigureIDs returns the available figure numbers in order.
func FigureIDs() []int {
	ids := make([]int, 0, len(Figures))
	for id := range Figures {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// RunFigure executes one figure and writes its table to w.
func RunFigure(e *Env, id int, w io.Writer) (*Result, error) {
	fn := Figures[id]
	if fn == nil {
		return nil, fmt.Errorf("experiments: no figure %d (have 2..10)", id)
	}
	r, err := fn(e)
	if err != nil {
		return nil, err
	}
	if w != nil {
		if _, err := r.WriteTo(w); err != nil {
			return nil, err
		}
	}
	return r, nil
}
