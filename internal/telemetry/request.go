package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"sync/atomic"
	"time"
)

// Phase names of the serving path's time taxonomy. A request's wall time
// decomposes into waiting for a worker slot (PhaseQueue), looking up the
// result cache tiers (PhaseCacheMem, PhaseCacheDisk), simulating
// (PhaseCompute) and writing the response (PhaseEncode) — the same
// end-to-end attribution question the paper asks of a DSS query, asked of
// our own service. The names appear as the "phase" label of
// dssmem_phase_seconds and in /debug/requests.
const (
	PhaseQueue     = "queue"
	PhaseCacheMem  = "cache_mem"
	PhaseCacheDisk = "cache_disk"
	PhaseCachePeer = "cache_peer" // fleet peer-fill fetch (memory → disk → peer → compute)
	PhaseCompute   = "compute"
	PhaseEncode    = "encode"
)

var idFallback atomic.Uint64

// NewID mints a 16-hex-char request ID.
func NewID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// Entropy exhaustion is effectively unreachable; degrade to a
		// process-unique counter rather than failing a request over an ID.
		n := idFallback.Add(1)
		for i := range b {
			b[i] = byte(n >> (8 * i))
		}
	}
	return hex.EncodeToString(b[:])
}

// CleanID validates an inbound request ID (X-Request-ID is caller-supplied
// and ends up in logs, metrics labels and trace files): at most 64
// characters, each alphanumeric or one of "._-". Anything else returns "",
// telling the caller to mint a fresh ID.
func CleanID(s string) string {
	if len(s) == 0 || len(s) > 64 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == '-':
		default:
			return ""
		}
	}
	return s
}

// Request is one tracked API request: its identity, timing, and per-phase
// breakdown. A nil *Request is valid and every method no-ops, so
// instrumented layers (rescache, workload) record phases unconditionally and
// pay nothing when no request is in flight.
type Request struct {
	ID       string
	Endpoint string
	Attempt  int // client's X-Request-Attempt (1 = first try)
	Start    time.Time

	mu      sync.Mutex
	digest  string
	cache   string
	status  int
	outcome string
	done    bool
	end     time.Time
	phases  map[string]*phaseAgg
	order   []string
}

type phaseAgg struct {
	count   uint64
	seconds float64
}

// Phase is one aggregated phase of a request (a sweep request runs many
// measurements, so counts above one are normal).
type Phase struct {
	Name    string
	Count   uint64
	Seconds float64
}

// NewRequest starts tracking a request.
func NewRequest(id, endpoint string) *Request {
	return &Request{ID: id, Endpoint: endpoint, Attempt: 1, Start: time.Now(),
		phases: make(map[string]*phaseAgg)}
}

// AddPhase charges d to the named phase.
func (q *Request) AddPhase(name string, d time.Duration) {
	if q == nil {
		return
	}
	q.mu.Lock()
	a := q.phases[name]
	if a == nil {
		a = &phaseAgg{}
		q.phases[name] = a
		q.order = append(q.order, name)
	}
	a.count++
	a.seconds += d.Seconds()
	q.mu.Unlock()
}

// StartPhase opens the named phase and returns its closer:
//
//	defer req.StartPhase(telemetry.PhaseEncode)()
func (q *Request) StartPhase(name string) func() {
	if q == nil {
		return func() {}
	}
	begin := time.Now()
	return func() { q.AddPhase(name, time.Since(begin)) }
}

// SetDigest records the result's content address.
func (q *Request) SetDigest(d string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.digest = d
	q.mu.Unlock()
}

// SetCache records the cache outcome ("hit" or "miss").
func (q *Request) SetCache(c string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.cache = c
	q.mu.Unlock()
}

// Finish marks the request complete with its HTTP status and outcome word.
func (q *Request) Finish(status int, outcome string) {
	if q == nil {
		return
	}
	q.mu.Lock()
	q.status = status
	q.outcome = outcome
	q.done = true
	q.end = time.Now()
	q.mu.Unlock()
}

// Duration is wall time so far (or total, once finished).
func (q *Request) Duration() time.Duration {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.done {
		return q.end.Sub(q.Start)
	}
	return time.Since(q.Start)
}

// Phases returns the aggregated phase breakdown in first-charge order.
func (q *Request) Phases() []Phase {
	if q == nil {
		return nil
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	out := make([]Phase, 0, len(q.order))
	for _, name := range q.order {
		a := q.phases[name]
		out = append(out, Phase{Name: name, Count: a.count, Seconds: a.seconds})
	}
	return out
}

// ---- context plumbing ----

type ctxKey struct{}

// NewContext attaches q to ctx; downstream layers recover it with
// FromContext.
func NewContext(ctx context.Context, q *Request) context.Context {
	return context.WithValue(ctx, ctxKey{}, q)
}

// FromContext returns the request being served, or nil (CLI runs, tests,
// background work). Safe on a nil context.
func FromContext(ctx context.Context) *Request {
	if ctx == nil {
		return nil
	}
	q, _ := ctx.Value(ctxKey{}).(*Request)
	return q
}
