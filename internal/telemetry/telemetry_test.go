package telemetry

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestNewID(t *testing.T) {
	a, b := NewID(), NewID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("want 16 hex chars, got %q, %q", a, b)
	}
	if a == b {
		t.Fatalf("two IDs collided: %q", a)
	}
	if CleanID(a) != a {
		t.Fatalf("minted ID %q must survive CleanID", a)
	}
}

func TestCleanID(t *testing.T) {
	cases := []struct{ in, want string }{
		{"abc-123_x.Y", "abc-123_x.Y"},
		{"", ""},
		{strings.Repeat("a", 64), strings.Repeat("a", 64)},
		{strings.Repeat("a", 65), ""},
		{"has space", ""},
		{"quote\"", ""},
		{"new\nline", ""},
		{"über", ""},
	}
	for _, tc := range cases {
		if got := CleanID(tc.in); got != tc.want {
			t.Errorf("CleanID(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestRequestPhases(t *testing.T) {
	q := NewRequest("deadbeefdeadbeef", "/v1/measure")
	q.AddPhase(PhaseQueue, 10*time.Millisecond)
	q.AddPhase(PhaseCompute, 30*time.Millisecond)
	q.AddPhase(PhaseCompute, 20*time.Millisecond)
	q.SetDigest("sha256:abc")
	q.SetCache("miss")
	q.Finish(200, "ok")

	ph := q.Phases()
	if len(ph) != 2 {
		t.Fatalf("want 2 phases, got %v", ph)
	}
	if ph[0].Name != PhaseQueue || ph[0].Count != 1 {
		t.Errorf("phase 0 = %+v", ph[0])
	}
	if ph[1].Name != PhaseCompute || ph[1].Count != 2 || ph[1].Seconds < 0.049 || ph[1].Seconds > 0.051 {
		t.Errorf("phase 1 = %+v", ph[1])
	}
	v := q.View()
	if !v.Done || v.Status != 200 || v.Outcome != "ok" || v.Digest != "sha256:abc" || v.Cache != "miss" {
		t.Errorf("view = %+v", v)
	}
	if len(v.Phases) != 2 || v.Phases[1].DurationMS < 49 || v.Phases[1].DurationMS > 51 {
		t.Errorf("view phases = %+v", v.Phases)
	}
}

func TestRequestNilSafety(t *testing.T) {
	var q *Request
	q.AddPhase(PhaseQueue, time.Second)
	q.StartPhase(PhaseCompute)()
	q.SetDigest("x")
	q.SetCache("hit")
	q.Finish(200, "ok")
	if q.Duration() != 0 || q.Phases() != nil {
		t.Fatal("nil Request must be inert")
	}
	if v := q.View(); v.ID != "" {
		t.Fatalf("nil View = %+v", v)
	}
	var tr *Tracker
	tr.Begin(q)
	tr.End(q)
}

func TestContextRoundTrip(t *testing.T) {
	if FromContext(nil) != nil {
		t.Fatal("nil context must yield nil request")
	}
	if FromContext(context.Background()) != nil {
		t.Fatal("bare context must yield nil request")
	}
	q := NewRequest("id", "/v1/measure")
	ctx := NewContext(context.Background(), q)
	if FromContext(ctx) != q {
		t.Fatal("request lost in context round trip")
	}
}

func TestTrackerRing(t *testing.T) {
	tr := NewTracker(3)
	live := NewRequest("live", "/v1/measure")
	tr.Begin(live)
	for i, id := range []string{"r0", "r1", "r2", "r3", "r4"} {
		q := NewRequest(id, "/v1/measure")
		q.Start = q.Start.Add(time.Duration(i) * time.Millisecond)
		tr.Begin(q)
		q.Finish(200, "ok")
		tr.End(q)
	}
	inflight, recent := tr.Snapshot()
	if len(inflight) != 1 || inflight[0].ID != "live" {
		t.Fatalf("inflight = %+v", inflight)
	}
	if len(recent) != 3 {
		t.Fatalf("ring cap 3, got %d", len(recent))
	}
	for i, want := range []string{"r4", "r3", "r2"} {
		if recent[i].ID != want {
			t.Errorf("recent[%d] = %s, want %s (newest first)", i, recent[i].ID, want)
		}
	}
}

func TestTrackerServeHTTP(t *testing.T) {
	tr := NewTracker(4)
	q := NewRequest("abc123", "/v1/measure")
	q.AddPhase(PhaseCompute, 5*time.Millisecond)
	tr.Begin(q)
	done := NewRequest("def456", "/v1/sweep")
	tr.Begin(done)
	done.Finish(200, "ok")
	tr.End(done)

	rec := httptest.NewRecorder()
	tr.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	var body struct {
		Inflight []RequestView `json:"inflight"`
		Recent   []RequestView `json:"recent"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if len(body.Inflight) != 1 || body.Inflight[0].ID != "abc123" || body.Inflight[0].Done {
		t.Fatalf("inflight = %+v", body.Inflight)
	}
	if len(body.Recent) != 1 || body.Recent[0].ID != "def456" || !body.Recent[0].Done {
		t.Fatalf("recent = %+v", body.Recent)
	}
}
