// Package telemetry is the request-scoped observability substrate for the
// serving layer: a dependency-free metrics registry (counters, gauges and
// fixed-bucket histograms, all label-aware, with atomic hot paths and a
// Prometheus text-format renderer), request identity (IDs minted or honored
// from X-Request-ID) that flows through context, per-request phase timing
// (queue wait, cache tier lookups, compute, encode), and a live request
// tracker behind /debug/requests.
//
// Design constraints, in order:
//
//  1. Zero dependencies. Like internal/service's original hand-rolled
//     /metrics, the repository takes no metrics library; the exposition
//     format is convention, and the registry is ~300 lines.
//  2. Atomic hot paths. A resolved series (a *Counter, *Gauge or *Hist
//     child) is mutated with a single atomic op — no locks, no allocation.
//     Label resolution (With) takes a read-lock and allocates a key, so hot
//     callers resolve their children once and keep the pointer.
//  3. Aggregatable. Every series is label-structured so a fleet coordinator
//     can sum worker scrapes; histograms use fixed buckets for the same
//     reason (equal buckets merge by addition).
//  4. Nil-safety. A nil *Request is valid everywhere and every method on it
//     is a no-op, so instrumented code paths cost one predictable branch
//     when telemetry is absent (CLI runs, benchmarks).
package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"regexp"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// DefBuckets is the default latency histogram layout, in seconds. It spans
// sub-millisecond cache hits to ten-minute figure computations; every
// histogram in the daemon shares it so per-phase and per-endpoint series
// merge bucket-by-bucket in a fleet rollup.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
	1, 2.5, 5, 10, 30, 60, 120, 300, 600,
}

var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
var validLabel = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. All methods are safe for concurrent use.
type Registry struct {
	mu       sync.RWMutex
	families []*family
	index    map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{index: make(map[string]*family)}
}

type kind int

const (
	counterKind kind = iota
	gaugeKind
	histogramKind
)

func (k kind) String() string {
	switch k {
	case counterKind:
		return "counter"
	case gaugeKind:
		return "gauge"
	}
	return "histogram"
}

// PollFunc emits a polled family's current series, one emit call per series.
// Polled families have no stored children: the collector reads its source
// (e.g. rescache.Stats) at scrape time, so sources that already keep their
// own atomic counters are not duplicated.
type PollFunc func(emit func(v float64, labelValues ...string))

type family struct {
	name    string
	help    string
	kind    kind
	labels  []string
	buckets []float64 // histogramKind only

	mu     sync.RWMutex
	series map[string]any // label-values key -> *Counter | *Gauge | *Hist
	order  []string       // insertion order of series keys

	poll PollFunc // non-nil for polled families
}

// family registers (or returns the existing) family under name. Registering
// the same name with a different kind or label set is a programming error
// and panics.
func (r *Registry) family(name, help string, k kind, labels []string, buckets []float64, poll PollFunc) *family {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel.MatchString(l) || l == "le" {
			panic(fmt.Sprintf("telemetry: invalid label name %q on %s", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.index[name]; ok {
		if f.kind != k || !slices.Equal(f.labels, labels) {
			panic(fmt.Sprintf("telemetry: conflicting re-registration of %s", name))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: k,
		labels: slices.Clone(labels), buckets: buckets,
		series: make(map[string]any),
		poll:   poll,
	}
	r.index[name] = f
	r.families = append(r.families, f)
	return f
}

func (f *family) child(values []string, mk func() any) any {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("telemetry: %s wants %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	k := strings.Join(values, "\xff")
	f.mu.RLock()
	c, ok := f.series[k]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.series[k]; ok {
		return c
	}
	c = mk()
	f.series[k] = c
	f.order = append(f.order, k)
	return c
}

// ---- counters ----

// Counter is a monotonically increasing series. Mutations are one atomic op.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() uint64 { return c.v.Load() }

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With resolves the child for the given label values, creating it on first
// use. Resolve once and keep the pointer on hot paths.
func (v *CounterVec) With(labelValues ...string) *Counter {
	return v.f.child(labelValues, func() any { return new(Counter) }).(*Counter)
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.family(name, help, counterKind, nil, nil, nil).
		child(nil, func() any { return new(Counter) }).(*Counter)
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{r.family(name, help, counterKind, labelNames, nil, nil)}
}

// ---- gauges ----

// Gauge is a settable integer series. Mutations are one atomic op.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds delta (which may be negative) and returns the new value, so
// callers can gate on the level they just reached (admission control does).
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// GaugeVec is a labeled gauge family.
type GaugeVec struct{ f *family }

// With resolves the child for the given label values.
func (v *GaugeVec) With(labelValues ...string) *Gauge {
	return v.f.child(labelValues, func() any { return new(Gauge) }).(*Gauge)
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.family(name, help, gaugeKind, nil, nil, nil).
		child(nil, func() any { return new(Gauge) }).(*Gauge)
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{r.family(name, help, gaugeKind, labelNames, nil, nil)}
}

// ---- histograms ----

// Hist is a fixed-bucket histogram. Observe is lock-free: one atomic add per
// bucket, count and sum.
type Hist struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomicFloat
}

// Observe records one value.
func (h *Hist) Observe(v float64) {
	h.counts[sort.SearchFloat64s(h.bounds, v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// Snapshot returns the observation count and value sum.
func (h *Hist) Snapshot() (count uint64, sum float64) {
	return h.count.Load(), h.sum.Load()
}

// HistVec is a labeled histogram family. All children share the family's
// bucket layout, so they aggregate by addition.
type HistVec struct{ f *family }

// With resolves the child for the given label values.
func (v *HistVec) With(labelValues ...string) *Hist {
	return v.f.child(labelValues, func() any { return newHist(v.f.buckets) }).(*Hist)
}

func newHist(bounds []float64) *Hist {
	return &Hist{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

func checkBuckets(buckets []float64) []float64 {
	if buckets == nil {
		buckets = DefBuckets
	}
	b := slices.Clone(buckets)
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			panic(fmt.Sprintf("telemetry: histogram buckets not strictly increasing at %v", b[i]))
		}
	}
	return b
}

// Histogram registers an unlabeled histogram (nil buckets = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Hist {
	f := r.family(name, help, histogramKind, nil, checkBuckets(buckets), nil)
	return f.child(nil, func() any { return newHist(f.buckets) }).(*Hist)
}

// HistogramVec registers a labeled histogram family (nil buckets =
// DefBuckets).
func (r *Registry) HistogramVec(name, help string, buckets []float64, labelNames ...string) *HistVec {
	return &HistVec{r.family(name, help, histogramKind, labelNames, checkBuckets(buckets), nil)}
}

// ---- polled families ----

// PollCounter registers a counter family whose series are read from fn at
// scrape time (sources that keep their own atomic counters, like
// rescache.Stats).
func (r *Registry) PollCounter(name, help string, labelNames []string, fn PollFunc) {
	r.family(name, help, counterKind, labelNames, nil, fn)
}

// PollGauge is PollCounter for gauges.
func (r *Registry) PollGauge(name, help string, labelNames []string, fn PollFunc) {
	r.family(name, help, gaugeKind, labelNames, nil, fn)
}

// ---- atomic float ----

type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) Add(v float64) {
	for {
		old := f.bits.Load()
		if f.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

func (f *atomicFloat) Load() float64 { return math.Float64frombits(f.bits.Load()) }

// ---- text renderer ----

// WriteText renders every family in registration order in the Prometheus
// text exposition format (version 0.0.4): HELP and TYPE once per family,
// series in first-use order, histograms as cumulative _bucket/_sum/_count.
func (r *Registry) WriteText(w io.Writer) error {
	r.mu.RLock()
	fams := slices.Clone(r.families)
	r.mu.RUnlock()
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		f.write(bw)
	}
	return bw.Flush()
}

func (f *family) write(bw *bufio.Writer) {
	fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
	if f.poll != nil {
		f.poll(func(v float64, labelValues ...string) {
			writeSample(bw, f.name, f.labels, labelValues, "", "", v)
		})
		return
	}
	f.mu.RLock()
	keys := slices.Clone(f.order)
	children := make([]any, len(keys))
	for i, k := range keys {
		children[i] = f.series[k]
	}
	f.mu.RUnlock()
	for i, k := range keys {
		var values []string
		if len(f.labels) > 0 {
			values = strings.Split(k, "\xff")
		}
		switch m := children[i].(type) {
		case *Counter:
			writeSample(bw, f.name, f.labels, values, "", "", float64(m.Load()))
		case *Gauge:
			writeSample(bw, f.name, f.labels, values, "", "", float64(m.Load()))
		case *Hist:
			cum := uint64(0)
			for bi, b := range f.buckets {
				cum += m.counts[bi].Load()
				writeSample(bw, f.name+"_bucket", f.labels, values, "le", formatFloat(b), float64(cum))
			}
			count, sum := m.Snapshot()
			writeSample(bw, f.name+"_bucket", f.labels, values, "le", "+Inf", float64(count))
			writeSample(bw, f.name+"_sum", f.labels, values, "", "", sum)
			writeSample(bw, f.name+"_count", f.labels, values, "", "", float64(count))
		}
	}
}

// writeSample emits one series line; extraName/extraValue append a synthetic
// label (histogram "le").
func writeSample(bw *bufio.Writer, name string, labelNames, labelValues []string, extraName, extraValue string, v float64) {
	bw.WriteString(name)
	if len(labelNames) > 0 || extraName != "" {
		bw.WriteByte('{')
		sep := false
		for i, ln := range labelNames {
			if sep {
				bw.WriteByte(',')
			}
			sep = true
			bw.WriteString(ln)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(labelValues[i]))
			bw.WriteByte('"')
		}
		if extraName != "" {
			if sep {
				bw.WriteByte(',')
			}
			bw.WriteString(extraName)
			bw.WriteString(`="`)
			bw.WriteString(escapeLabel(extraValue))
			bw.WriteByte('"')
		}
		bw.WriteByte('}')
	}
	bw.WriteByte(' ')
	bw.WriteString(formatFloat(v))
	bw.WriteByte('\n')
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func escapeHelp(s string) string  { return helpEscaper.Replace(s) }
func escapeLabel(s string) string { return labelEscaper.Replace(s) }
