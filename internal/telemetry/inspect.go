package telemetry

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync"
	"time"
)

// DefaultRecent is how many completed requests a Tracker retains.
const DefaultRecent = 64

// PhaseView is the exported form of one aggregated phase.
type PhaseView struct {
	Name       string  `json:"name"`
	Count      uint64  `json:"count"`
	DurationMS float64 `json:"duration_ms"`
}

// RequestView is the exported snapshot of one tracked request.
type RequestView struct {
	ID         string      `json:"id"`
	Endpoint   string      `json:"endpoint"`
	Attempt    int         `json:"attempt"`
	Start      time.Time   `json:"start"`
	DurationMS float64     `json:"duration_ms"`
	Done       bool        `json:"done"`
	Status     int         `json:"status,omitempty"`
	Outcome    string      `json:"outcome,omitempty"`
	Digest     string      `json:"digest,omitempty"`
	Cache      string      `json:"cache,omitempty"`
	Phases     []PhaseView `json:"phases,omitempty"`
}

// View snapshots the request for the inspector.
func (q *Request) View() RequestView {
	if q == nil {
		return RequestView{}
	}
	q.mu.Lock()
	v := RequestView{
		ID: q.ID, Endpoint: q.Endpoint, Attempt: q.Attempt, Start: q.Start,
		Done: q.done, Status: q.status, Outcome: q.outcome,
		Digest: q.digest, Cache: q.cache,
	}
	end := q.end
	if !q.done {
		end = time.Now()
	}
	v.DurationMS = float64(end.Sub(q.Start).Microseconds()) / 1e3
	for _, name := range q.order {
		a := q.phases[name]
		v.Phases = append(v.Phases, PhaseView{Name: name, Count: a.count, DurationMS: a.seconds * 1e3})
	}
	q.mu.Unlock()
	return v
}

// Tracker is the live request inspector: the set of in-flight requests plus
// a ring of recently completed ones. It implements http.Handler, serving the
// snapshot as JSON (the daemon mounts it at /debug/requests).
type Tracker struct {
	mu       sync.Mutex
	inflight map[*Request]struct{}
	recent   []*Request // ring buffer, next is the oldest slot
	next     int
}

// NewTracker returns a tracker retaining recentCap completed requests
// (<= 0 selects DefaultRecent).
func NewTracker(recentCap int) *Tracker {
	if recentCap <= 0 {
		recentCap = DefaultRecent
	}
	return &Tracker{
		inflight: make(map[*Request]struct{}),
		recent:   make([]*Request, 0, recentCap),
	}
}

// Begin registers q as in flight.
func (t *Tracker) Begin(q *Request) {
	if t == nil || q == nil {
		return
	}
	t.mu.Lock()
	t.inflight[q] = struct{}{}
	t.mu.Unlock()
}

// End moves q from the in-flight set into the recent ring.
func (t *Tracker) End(q *Request) {
	if t == nil || q == nil {
		return
	}
	t.mu.Lock()
	delete(t.inflight, q)
	if len(t.recent) < cap(t.recent) {
		t.recent = append(t.recent, q)
	} else {
		t.recent[t.next] = q
		t.next = (t.next + 1) % cap(t.recent)
	}
	t.mu.Unlock()
}

// Snapshot returns the in-flight requests (oldest first) and the retained
// completed ones (newest first).
func (t *Tracker) Snapshot() (inflight, recent []RequestView) {
	t.mu.Lock()
	live := make([]*Request, 0, len(t.inflight))
	for q := range t.inflight {
		live = append(live, q)
	}
	done := make([]*Request, 0, len(t.recent))
	for i := 1; i <= len(t.recent); i++ { // walk the ring newest-first
		done = append(done, t.recent[(t.next+len(t.recent)-i)%len(t.recent)])
	}
	t.mu.Unlock()
	sort.Slice(live, func(i, j int) bool { return live[i].Start.Before(live[j].Start) })
	for _, q := range live {
		inflight = append(inflight, q.View())
	}
	for _, q := range done {
		recent = append(recent, q.View())
	}
	return inflight, recent
}

// ServeHTTP renders the snapshot as JSON.
func (t *Tracker) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	inflight, recent := t.Snapshot()
	if inflight == nil {
		inflight = []RequestView{}
	}
	if recent == nil {
		recent = []RequestView{}
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Inflight []RequestView `json:"inflight"`
		Recent   []RequestView `json:"recent"`
	}{inflight, recent})
}
