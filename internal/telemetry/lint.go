package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// LintReport is the outcome of parsing a Prometheus text exposition.
type LintReport struct {
	// Families maps each declared family name to its TYPE.
	Families map[string]string
	// Series holds every parsed sample's full name (including _bucket/_sum/
	// _count suffixes), with occurrence counts per exact labelset.
	Series map[string]int
	// Problems lists every format violation found, with line numbers.
	Problems []string
}

// HasSeries reports whether any sample with the given name was scraped.
func (r *LintReport) HasSeries(name string) bool { return r.Series[name] > 0 }

// HasFamily reports whether a family (HELP/TYPE pair) was declared.
func (r *LintReport) HasFamily(name string) bool { _, ok := r.Families[name]; return ok }

type lintFamily struct {
	kind    string
	help    bool
	samples bool
	// histogram bookkeeping, per non-le labelset key
	buckets map[string][]bucketSample
	sums    map[string]bool
	counts  map[string]bool
}

type bucketSample struct {
	le  float64
	val float64
}

// Lint parses a Prometheus text-format exposition and checks it
// structurally: HELP/TYPE declared once and before any sample, every sample
// attributable to a typed family, valid metric and label names, well-formed
// label escaping, parseable values, no duplicate series, and — for
// histograms — a +Inf bucket, _sum and _count per labelset with cumulative
// bucket counts that never decrease. It returns a report; a scrape is clean
// when Problems is empty. The parser is deliberately strict: it exists to
// keep this repository's exposition consumable by real scrapers and by the
// planned fleet rollup, not to accept everything Prometheus would.
func Lint(r io.Reader) (*LintReport, error) {
	rep := &LintReport{Families: make(map[string]string), Series: make(map[string]int)}
	fams := make(map[string]*lintFamily)
	problem := func(line int, format string, args ...any) {
		rep.Problems = append(rep.Problems, fmt.Sprintf("line %d: %s", line, fmt.Sprintf(format, args...)))
	}
	fam := func(name string) *lintFamily {
		f := fams[name]
		if f == nil {
			f = &lintFamily{buckets: make(map[string][]bucketSample), sums: make(map[string]bool), counts: make(map[string]bool)}
			fams[name] = f
		}
		return f
	}

	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	ln := 0
	for sc.Scan() {
		ln++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // free-form comment
			}
			name := fields[2]
			if !validName.MatchString(name) {
				problem(ln, "invalid metric name %q in %s", name, fields[1])
				continue
			}
			f := fam(name)
			switch fields[1] {
			case "HELP":
				if f.help {
					problem(ln, "duplicate HELP for %s", name)
				}
				if f.samples {
					problem(ln, "HELP for %s after its samples", name)
				}
				f.help = true
			case "TYPE":
				kind := ""
				if len(fields) == 4 {
					kind = fields[3]
				}
				switch kind {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					problem(ln, "unknown TYPE %q for %s", kind, name)
					continue
				}
				if f.kind != "" {
					problem(ln, "duplicate TYPE for %s", name)
				}
				if f.samples {
					problem(ln, "TYPE for %s after its samples", name)
				}
				f.kind = kind
				rep.Families[name] = kind
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			problem(ln, "%v", err)
			continue
		}
		base, suffix := name, ""
		for _, s := range []string{"_bucket", "_sum", "_count"} {
			trimmed := strings.TrimSuffix(name, s)
			if trimmed != name {
				if bf, ok := fams[trimmed]; ok && (bf.kind == "histogram" || bf.kind == "summary") {
					base, suffix = trimmed, s
				}
				break
			}
		}
		f, ok := fams[base]
		if !ok || f.kind == "" {
			problem(ln, "sample %s has no preceding TYPE", name)
			f = fam(base)
		}
		f.samples = true

		// Canonical series identity: name plus sorted label pairs.
		pairs := make([]string, 0, len(labels))
		seenLabel := make(map[string]bool, len(labels))
		le := ""
		for _, kv := range labels {
			if !validLabel.MatchString(kv[0]) {
				problem(ln, "invalid label name %q on %s", kv[0], name)
			}
			if seenLabel[kv[0]] {
				problem(ln, "duplicate label %q on %s", kv[0], name)
			}
			seenLabel[kv[0]] = true
			if kv[0] == "le" && suffix == "_bucket" {
				le = kv[1]
				continue // le is positional within a histogram, not identity
			}
			pairs = append(pairs, kv[0]+"="+kv[1])
		}
		sort.Strings(pairs)
		setKey := strings.Join(pairs, ",")
		seriesKey := name + "{" + setKey
		if suffix == "_bucket" {
			seriesKey += ",le=" + le
		}
		seriesKey += "}"
		rep.Series[name]++
		if prev := rep.Series[seriesKey]; prev > 0 {
			problem(ln, "duplicate series %s", seriesKey)
		}
		rep.Series[seriesKey]++

		if f.kind == "histogram" {
			switch suffix {
			case "_bucket":
				if le == "" {
					problem(ln, "histogram bucket %s missing le label", name)
				} else {
					bound, err := parseFloat(le)
					if err != nil {
						problem(ln, "histogram %s has unparseable le %q", base, le)
					} else {
						f.buckets[setKey] = append(f.buckets[setKey], bucketSample{bound, value})
					}
				}
			case "_sum":
				f.sums[setKey] = true
			case "_count":
				f.counts[setKey] = true
			default:
				problem(ln, "histogram %s has bare sample %s", base, name)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return rep, err
	}

	// Histogram completeness and monotonicity, per labelset.
	names := make([]string, 0, len(fams))
	for n := range fams {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f := fams[n]
		if f.kind != "histogram" || !f.samples {
			continue
		}
		sets := make([]string, 0, len(f.buckets))
		for s := range f.buckets {
			sets = append(sets, s)
		}
		sort.Strings(sets)
		for _, set := range sets {
			bs := f.buckets[set]
			hasInf := false
			for i, b := range bs {
				if math.IsInf(b.le, 1) {
					hasInf = true
				}
				if i > 0 {
					if bs[i].le <= bs[i-1].le {
						rep.Problems = append(rep.Problems, fmt.Sprintf("histogram %s{%s}: le not increasing at %g", n, set, bs[i].le))
					}
					if bs[i].val < bs[i-1].val {
						rep.Problems = append(rep.Problems, fmt.Sprintf("histogram %s{%s}: bucket counts decrease at le=%g", n, set, bs[i].le))
					}
				}
			}
			if !hasInf {
				rep.Problems = append(rep.Problems, fmt.Sprintf("histogram %s{%s}: no le=\"+Inf\" bucket", n, set))
			}
			if !f.sums[set] {
				rep.Problems = append(rep.Problems, fmt.Sprintf("histogram %s{%s}: missing _sum", n, set))
			}
			if !f.counts[set] {
				rep.Problems = append(rep.Problems, fmt.Sprintf("histogram %s{%s}: missing _count", n, set))
			}
		}
	}
	return rep, nil
}

// parseSample parses one exposition sample line:
//
//	name{label="value",...} value [timestamp]
//
// Label values are unescaped (\\, \", \n); a raw quote, unterminated label
// block or unparseable value is an error.
func parseSample(line string) (name string, labels [][2]string, value float64, err error) {
	i := 0
	for i < len(line) && line[i] != '{' && line[i] != ' ' && line[i] != '\t' {
		i++
	}
	name = line[:i]
	if !validName.MatchString(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	if i < len(line) && line[i] == '{' {
		i++
		for {
			for i < len(line) && (line[i] == ',' || line[i] == ' ') {
				i++
			}
			if i < len(line) && line[i] == '}' {
				i++
				break
			}
			start := i
			for i < len(line) && line[i] != '=' {
				i++
			}
			if i >= len(line) {
				return "", nil, 0, fmt.Errorf("unterminated label block")
			}
			lname := line[start:i]
			i++ // '='
			if i >= len(line) || line[i] != '"' {
				return "", nil, 0, fmt.Errorf("label %q value not quoted", lname)
			}
			i++
			var val strings.Builder
			closed := false
			for i < len(line) {
				c := line[i]
				if c == '\\' {
					if i+1 >= len(line) {
						return "", nil, 0, fmt.Errorf("dangling escape in label %q", lname)
					}
					switch line[i+1] {
					case '\\':
						val.WriteByte('\\')
					case '"':
						val.WriteByte('"')
					case 'n':
						val.WriteByte('\n')
					default:
						return "", nil, 0, fmt.Errorf("bad escape \\%c in label %q", line[i+1], lname)
					}
					i += 2
					continue
				}
				if c == '"' {
					i++
					closed = true
					break
				}
				val.WriteByte(c)
				i++
			}
			if !closed {
				return "", nil, 0, fmt.Errorf("unterminated value for label %q", lname)
			}
			labels = append(labels, [2]string{lname, val.String()})
		}
	}
	rest := strings.Fields(line[i:])
	if len(rest) < 1 || len(rest) > 2 {
		return "", nil, 0, fmt.Errorf("want 'value [timestamp]' after %s, got %q", name, strings.TrimSpace(line[i:]))
	}
	value, err = parseFloat(rest[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("unparseable value %q for %s", rest[0], name)
	}
	return name, labels, value, nil
}

// parseFloat is strconv.ParseFloat, which natively accepts the exposition
// format's "+Inf", "-Inf" and "NaN" spellings.
func parseFloat(s string) (float64, error) {
	return strconv.ParseFloat(s, 64)
}
