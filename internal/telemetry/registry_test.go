package telemetry

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
)

func render(t *testing.T, r *Registry) string {
	t.Helper()
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

func TestCounterGaugeRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops.")
	c.Add(3)
	c.Inc()
	g := r.Gauge("test_depth", "Depth.")
	g.Set(7)
	g.Dec()
	v := r.CounterVec("test_hits_total", "Hits by tier.", "tier")
	v.With("mem").Add(2)
	v.With("disk").Inc()

	out := render(t, r)
	for _, want := range []string{
		"# HELP test_ops_total Ops.\n# TYPE test_ops_total counter\ntest_ops_total 4\n",
		"# TYPE test_depth gauge\ntest_depth 6\n",
		`test_hits_total{tier="mem"} 2`,
		`test_hits_total{tier="disk"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if c.Load() != 4 || g.Load() != 6 {
		t.Errorf("Load: counter %d gauge %d", c.Load(), g.Load())
	}
}

func TestHistogramRender(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "Latency.", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	out := render(t, r)
	for _, want := range []string{
		"# TYPE test_seconds histogram",
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 3`,
		`test_seconds_bucket{le="10"} 4`,
		`test_seconds_bucket{le="+Inf"} 5`,
		"test_seconds_sum 56.05",
		"test_seconds_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	if count, sum := h.Snapshot(); count != 5 || sum != 56.05 {
		t.Errorf("Snapshot = %d, %g", count, sum)
	}
}

func TestHistogramBucketEdge(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("edge_seconds", "x", []float64{1, 2})
	h.Observe(1) // le is inclusive: lands in the first bucket
	out := render(t, r)
	if !strings.Contains(out, `edge_seconds_bucket{le="1"} 1`) {
		t.Fatalf("v==bound must count toward le=bound:\n%s", out)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("test_esc_total", "Help with \\ and\nnewline.", "path").
		With("a\\b\"c\nd").Inc()
	out := render(t, r)
	if !strings.Contains(out, `test_esc_total{path="a\\b\"c\nd"} 1`) {
		t.Fatalf("label not escaped:\n%s", out)
	}
	if !strings.Contains(out, `# HELP test_esc_total Help with \\ and\nnewline.`) {
		t.Fatalf("help not escaped:\n%s", out)
	}
	// The linter must parse the escaped form back without complaint.
	rep, err := Lint(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("lint problems on escaped output: %v", rep.Problems)
	}
}

func TestPolledFamilies(t *testing.T) {
	r := NewRegistry()
	n := 41.0
	r.PollCounter("test_polled_total", "Polled.", []string{"tier"}, func(emit func(float64, ...string)) {
		emit(n, "mem")
		emit(n+1, "disk")
	})
	r.PollGauge("test_uptime_seconds", "Up.", nil, func(emit func(float64, ...string)) {
		emit(12.5)
	})
	out := render(t, r)
	for _, want := range []string{
		`test_polled_total{tier="mem"} 41`,
		`test_polled_total{tier="disk"} 42`,
		"test_uptime_seconds 12.5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("test_x_total", "x")
	b := r.Counter("test_x_total", "x")
	if a != b {
		t.Fatal("same name must return the same counter")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("conflicting kind must panic")
		}
	}()
	r.Gauge("test_x_total", "x")
}

// TestLintFullOutput is the parser-based lint of a complete realistic
// exposition: HELP/TYPE pairing, label escaping, histogram structure, no
// duplicate series.
func TestLintFullOutput(t *testing.T) {
	r := NewRegistry()
	r.Counter("app_requests_total", "Requests.").Add(10)
	r.CounterVec("app_hits_total", "Hits.", "tier").With("mem").Add(5)
	r.Gauge("app_inflight", "Inflight.").Set(2)
	hv := r.HistogramVec("app_seconds", "Latency.", nil, "endpoint")
	hv.With("/v1/measure").Observe(0.2)
	hv.With("/v1/sweep").Observe(3)
	out := render(t, r)
	rep, err := Lint(strings.NewReader(out))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("problems: %v", rep.Problems)
	}
	for _, fam := range []string{"app_requests_total", "app_hits_total", "app_inflight", "app_seconds"} {
		if !rep.HasFamily(fam) {
			t.Errorf("family %s not seen", fam)
		}
	}
	for _, s := range []string{"app_seconds_bucket", "app_seconds_sum", "app_seconds_count"} {
		if !rep.HasSeries(s) {
			t.Errorf("series %s not seen", s)
		}
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"no TYPE", "orphan_total 3\n", "no preceding TYPE"},
		{"duplicate series", "# TYPE d_total counter\nd_total{a=\"x\"} 1\nd_total{a=\"x\"} 2\n", "duplicate series"},
		{"TYPE after sample", "# TYPE l_total counter\nl_total 1\n# TYPE l_total counter\n", "duplicate TYPE"},
		{"help after sample", "# TYPE h_total counter\nh_total 1\n# HELP h_total late\n", "after its samples"},
		{"raw quote", "# TYPE q_total counter\nq_total{a=\"x\"y\"} 1\n", "unterminated"},
		{"bad value", "# TYPE v_total counter\nv_total pony\n", "unparseable value"},
		{"missing +Inf", "# TYPE m_seconds histogram\nm_seconds_bucket{le=\"1\"} 1\nm_seconds_sum 1\nm_seconds_count 1\n", "+Inf"},
		{"decreasing buckets", "# TYPE w_seconds histogram\nw_seconds_bucket{le=\"1\"} 5\nw_seconds_bucket{le=\"2\"} 3\nw_seconds_bucket{le=\"+Inf\"} 5\nw_seconds_sum 1\nw_seconds_count 5\n", "decrease"},
		{"missing sum", "# TYPE s_seconds histogram\ns_seconds_bucket{le=\"+Inf\"} 1\ns_seconds_count 1\n", "missing _sum"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep, err := Lint(strings.NewReader(tc.text))
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, p := range rep.Problems {
				if strings.Contains(p, tc.want) {
					found = true
				}
			}
			if !found {
				t.Fatalf("want a problem containing %q, got %v", tc.want, rep.Problems)
			}
		})
	}
}

// TestRegistryRace hammers every mutation path concurrently with scrapes;
// its value is under -race (CI runs the package that way).
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_ops_total", "x")
	cv := r.CounterVec("race_hits_total", "x", "tier")
	g := r.Gauge("race_depth", "x")
	hv := r.HistogramVec("race_seconds", "x", nil, "phase")
	r.PollGauge("race_polled", "x", nil, func(emit func(float64, ...string)) { emit(float64(c.Load())) })

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tiers := []string{"mem", "disk"}
			phases := []string{"queue", "compute", "encode"}
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				cv.With(tiers[j%2]).Add(1)
				g.Add(1)
				hv.With(phases[j%3]).Observe(float64(j%100) / 100)
			}
		}(i)
	}
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				if err := r.WriteText(io.Discard); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Let the writers overlap the scrapers, then stop.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for i := 0; i < 3; i++ {
		if err := r.WriteText(io.Discard); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	<-done

	// A final scrape must still be structurally clean.
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	rep, err := Lint(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("post-race lint problems: %v", rep.Problems)
	}
}
