package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// Fleet metrics rollup: a coordinator scrapes each worker's /metrics and
// re-exposes every family with a `worker` label identifying the source, so
// the fleet's exposition aggregates by plain PromQL `sum by` — the registry's
// fixed histogram buckets exist precisely so those series merge by addition.

// Exposition is one scraped Prometheus text exposition attributed to a
// source (a worker name).
type Exposition struct {
	Source string // becomes the injected label's value
	Text   string
}

// rollupFamily accumulates one family across sources, preserving the
// first-seen HELP/TYPE and sample order.
type rollupFamily struct {
	name    string
	help    string
	kind    string
	samples []rollupSample
}

type rollupSample struct {
	name   string // full sample name including _bucket/_sum/_count suffixes
	labels [][2]string
	value  float64
}

// MergeExpositions parses each source's exposition, injects
// label="<Source>" as the first label of every sample, groups samples by
// family (HELP/TYPE emitted once, before the family's samples, as the text
// format requires), and writes one merged exposition. Families are ordered
// by first appearance across sources; a family missing HELP or TYPE in its
// first source takes them from the first source that declares them. A
// malformed line fails the merge — a fleet exposition that silently dropped
// a worker's series would read as "that worker is idle".
func MergeExpositions(w io.Writer, label string, sources []Exposition) error {
	if !validLabel.MatchString(label) {
		return fmt.Errorf("telemetry: invalid rollup label %q", label)
	}
	fams := make(map[string]*rollupFamily)
	var order []string
	fam := func(name string) *rollupFamily {
		f := fams[name]
		if f == nil {
			f = &rollupFamily{name: name}
			fams[name] = f
			order = append(order, name)
		}
		return f
	}

	for _, src := range sources {
		// Sample names carry histogram suffixes; family attribution follows
		// the declared TYPE lines seen so far in this source.
		kinds := make(map[string]string)
		sc := bufio.NewScanner(strings.NewReader(src.Text))
		sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
		ln := 0
		for sc.Scan() {
			ln++
			line := sc.Text()
			if strings.TrimSpace(line) == "" {
				continue
			}
			if strings.HasPrefix(line, "#") {
				fields := strings.SplitN(line, " ", 4)
				if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
					continue
				}
				name := fields[2]
				if !validName.MatchString(name) {
					return fmt.Errorf("telemetry: rollup %s line %d: invalid metric name %q", src.Source, ln, name)
				}
				f := fam(name)
				rest := ""
				if len(fields) == 4 {
					rest = fields[3]
				}
				switch fields[1] {
				case "HELP":
					if f.help == "" {
						f.help = rest
					}
				case "TYPE":
					if f.kind == "" {
						f.kind = rest
					}
					kinds[name] = rest
				}
				continue
			}
			name, labels, value, err := parseSample(line)
			if err != nil {
				return fmt.Errorf("telemetry: rollup %s line %d: %w", src.Source, ln, err)
			}
			base := familyOf(name, kinds)
			for _, kv := range labels {
				if kv[0] == label {
					return fmt.Errorf("telemetry: rollup %s line %d: sample %s already carries label %q", src.Source, ln, name, label)
				}
			}
			withSource := append([][2]string{{label, src.Source}}, labels...)
			fam(base).samples = append(fam(base).samples, rollupSample{name: name, labels: withSource, value: value})
		}
		if err := sc.Err(); err != nil {
			return fmt.Errorf("telemetry: rollup %s: %w", src.Source, err)
		}
	}

	bw := bufio.NewWriter(w)
	for _, name := range order {
		f := fams[name]
		if len(f.samples) == 0 {
			continue // declared but never sampled in any source
		}
		help := f.help
		if help == "" {
			help = "(no help from source)"
		}
		kind := f.kind
		if kind == "" {
			kind = "untyped"
		}
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, escapeHelp(help))
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, kind)
		for _, s := range f.samples {
			names := make([]string, len(s.labels))
			values := make([]string, len(s.labels))
			for i, kv := range s.labels {
				names[i], values[i] = kv[0], kv[1]
			}
			writeSample(bw, s.name, names, values, "", "", s.value)
		}
	}
	return bw.Flush()
}

// familyOf strips a histogram/summary sample suffix when the base family was
// declared with a matching TYPE, mirroring Lint's attribution rule.
func familyOf(name string, kinds map[string]string) string {
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, s); base != name {
			if k := kinds[base]; k == "histogram" || k == "summary" {
				return base
			}
			break
		}
	}
	return name
}
