// Package fleet turns N dssmemd workers into one logical measurement service
// behind the unchanged /v1 API. A coordinator shards the content-addressed
// keyspace across workers with a consistent-hash ring (every rescache digest
// has a stable home worker), fans /v1/sweep out point-by-point to the owning
// workers, steals work from stragglers past a deadline (re-issuing a slow
// point to the next worker on the ring — the simulations are deterministic
// and content-addressed, so a stolen-and-original duplicate yields one value
// and byte-identical bodies), and aggregates the fleet's health and metrics.
//
// The fleet is self-healing. Membership is dynamic: workers join and
// heartbeat via POST /v1/fleet/join, the coordinator observes every contact
// (push heartbeats, pull probes, health scrapes), ejects a worker after
// EjectAfter consecutive missed observations — rebuilding the routing ring
// so its keyspace fails over — and re-admits it through a half-open probe
// when it returns. Results computed elsewhere while an owner was down are
// queued as hints and replayed to the owner on rejoin; a background
// anti-entropy pass repairs what the hint queue missed. Sweeps are durable
// jobs: an append-only journal (internal/job) records each completed point,
// so a SIGKILLed coordinator resumes unfinished sweeps on restart, serving
// completed points from the workers' caches and recomputing nothing.
//
// The layering mirrors the paper's cc-NUMA machines: a worker's memory tier
// is the local cache, its disk tier is local memory, the peer-fill tier
// (rescache.PeerFetch, served by /v1/cache/{ns}/{digest}) is a remote-node
// fetch, the ring is the directory that names the home node, and recompute
// is the memory access of last resort. One X-Request-ID, minted or honored
// at the coordinator, rides every coordinator→worker call and peer fetch, so
// a single ID stitches the distributed trace across all logs and inspectors.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/experiments"
	"dssmem/internal/job"
	"dssmem/internal/rescache"
	"dssmem/internal/telemetry"
)

// Worker names one fleet member. Name is the sharding identity (hashed onto
// the ring, shown as the `worker` metrics label): keep it stable across
// restarts even when the URL moves, or ~all of the worker's keyspace remaps.
type Worker struct {
	Name string
	URL  string
}

// Config parameterizes a Coordinator.
type Config struct {
	// Preset must match every worker's preset: the coordinator computes the
	// same content digests the workers answer under, and verifies each
	// response's X-Digest against its own computation (a mismatch means
	// fleet misconfiguration and fails the request rather than serving
	// bytes of unknown identity).
	Preset experiments.Preset
	// Workers is the static boot roster, seeded as pending members. May be
	// empty: a coordinator can start alone and grow as workers join via
	// POST /v1/fleet/join.
	Workers []Worker
	// HTTP overrides the transport for worker calls (tests, benchmarks).
	// nil uses a dedicated client with no global timeout — per-call
	// lifetimes come from request contexts.
	HTTP *http.Client
	// StealAfter is the straggler deadline: a fanned-out call not resolved
	// within it is re-issued to the next worker on the ring while the
	// original keeps running; first verified answer wins. 0 = 15s;
	// negative disables stealing.
	StealAfter time.Duration
	// MaxAttempts bounds the retry loop of each per-worker client
	// (0 = 3; transport errors also fail over to the next worker).
	MaxAttempts int
	// ScrapeTimeout bounds each worker scrape during /healthz and /metrics
	// aggregation, and each membership probe (0 = 3s).
	ScrapeTimeout time.Duration
	// Replicas is the ring's virtual-node count per worker (0 = 128).
	Replicas int
	// Heartbeat is the membership cadence: workers are expected to push a
	// heartbeat this often, and the coordinator's ticker probes members it
	// has not heard from within it. 0 = 5s; negative disables the ticker
	// (observations then come only from health scrapes and pushes).
	Heartbeat time.Duration
	// EjectAfter is how many consecutive missed observations eject an
	// active member from the routing ring (0 = 3).
	EjectAfter int
	// RepairInterval is the anti-entropy cadence: every interval the
	// coordinator compares digest listings across active workers and
	// repairs entries missing at their home owner. 0 disables.
	RepairInterval time.Duration
	// JobDir persists sweep-job journals so a killed coordinator resumes
	// unfinished sweeps on restart. "" keeps jobs in memory only.
	JobDir string
	// DisableCache turns off the coordinator-local result cache so every
	// request fans out (routing-path benchmarks; production keeps it on).
	DisableCache bool
	// Log receives one structured line per API request. nil disables.
	Log *slog.Logger
	// RecentRequests sizes the /debug/requests ring (0 = default).
	RecentRequests int
}

// Coordinator serves the /v1 API over a worker fleet. Create with New; stop
// background membership/repair/resume loops with Close.
type Coordinator struct {
	cfg    Config
	mem    *membership
	hints  *hintQueue
	jobs   *job.Manager
	store  *rescache.Store // memory-only: coordinator result cache + singleflight
	scrape *http.Client    // healthz/metrics fan-in, probes, hint replay
	mux    *http.ServeMux
	start  time.Time

	baseCtx context.Context // cancelled by Close; bounds background work
	stop    context.CancelFunc
	bg      sync.WaitGroup

	reg     *telemetry.Registry
	tracker *telemetry.Tracker

	reqTotal     *telemetry.Counter
	reqErrors    *telemetry.Counter
	reqSeconds   *telemetry.HistVec
	phaseSeconds *telemetry.HistVec
	workerCalls  *telemetry.CounterVec // by worker, outcome
	steals       *telemetry.Counter
	failovers    *telemetry.Counter
	mismatches   *telemetry.Counter
	workerUp     *telemetry.GaugeVec
	scrapeErrs   *telemetry.CounterVec

	memberState *telemetry.GaugeVec   // by worker: numeric MemberState
	transitions *telemetry.CounterVec // by worker, to
	joins       *telemetry.Counter
	heartbeats  *telemetry.Counter
	hintsQueued *telemetry.Counter
	hintsSent   *telemetry.Counter
	hintsErrs   *telemetry.Counter
	repairs     *telemetry.Counter
	repairErrs  *telemetry.Counter
	jobsResumed *telemetry.Counter
	sweepPoints *telemetry.CounterVec // by cache (worker-reported hit/miss)
}

// PhaseFanout is the coordinator-side phase charging time spent waiting on
// workers (it appears in dssmem_fleet_phase_seconds and /debug/requests).
const PhaseFanout = "fanout"

// errNoWorkers is returned on the request path while the routing ring is
// empty (nothing joined yet, or everything is ejected). Retriable: the fleet
// heals as members join or probe back in.
var errNoWorkers = errors.New("fleet: no routable workers")

// New builds a coordinator. It performs no blocking I/O: workers are
// contacted lazily — per request, by the membership ticker, and by the job
// resume loop — so a coordinator starts before its fleet and reports
// degraded health until the fleet converges.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Preset.Name == "" {
		return nil, errors.New("fleet: config needs a preset")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	for i, w := range cfg.Workers {
		if w.Name == "" || w.URL == "" {
			return nil, fmt.Errorf("fleet: worker %d needs a name and a URL", i)
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("fleet: duplicate worker name %q", w.Name)
		}
		seen[w.Name] = true
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 3 * time.Second
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = 5 * time.Second
	}
	if cfg.EjectAfter <= 0 {
		cfg.EjectAfter = 3
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	jobs, err := job.Open(cfg.JobDir)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	c := &Coordinator{
		cfg:    cfg,
		hints:  newHintQueue(),
		jobs:   jobs,
		store:  rescache.NewMemory(),
		scrape: httpc,
		start:  time.Now(),
	}
	c.baseCtx, c.stop = context.WithCancel(context.Background())
	c.mem = newMembership(cfg.Replicas, func(w Worker, seq int) (*client.Client, error) {
		return client.New(client.Config{
			BaseURL:     w.URL,
			HTTP:        httpc,
			MaxAttempts: cfg.MaxAttempts,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Seed:        int64(seq),
			Log:         cfg.Log,
		})
	})
	c.tracker = telemetry.NewTracker(cfg.RecentRequests)
	c.initMetrics()
	c.mem.onChange = c.onMemberChange
	if err := c.mem.seed(cfg.Workers); err != nil {
		c.stop()
		return nil, fmt.Errorf("fleet: %w", err)
	}
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.Handle("GET /debug/requests", c.tracker)
	c.mux.Handle("GET /v1/measure", c.instrument("/v1/measure", c.handleMeasure))
	c.mux.Handle("GET /v1/figure/{id}", c.instrument("/v1/figure", c.handleFigure))
	c.mux.Handle("GET /v1/sweep", c.instrument("/v1/sweep", c.handleSweep))
	c.mux.HandleFunc("POST /v1/fleet/join", c.handleJoin)
	c.mux.HandleFunc("POST /v1/fleet/heartbeat", c.handleJoin) // alias: a heartbeat is an idempotent join
	c.mux.HandleFunc("GET /v1/jobs", c.handleJobs)
	c.mux.HandleFunc("GET /v1/jobs/sweep", c.handleJobLookup)
	c.mux.HandleFunc("GET /v1/jobs/{id}", c.handleJob)

	if cfg.Heartbeat > 0 {
		c.bg.Add(1)
		go c.membershipLoop()
	}
	if cfg.RepairInterval > 0 {
		c.bg.Add(1)
		go c.repairLoop()
	}
	c.resumeUnfinished()
	return c, nil
}

// Close stops the membership ticker, repair pass, hint replays and job
// resume loop, then waits for them.
func (c *Coordinator) Close() {
	c.stop()
	c.bg.Wait()
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry exposes the coordinator's own metrics registry (fleet families
// only; worker families are merged in at scrape time).
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// Ring exposes the current routing ring (tests, debugging). nil while no
// member is routable.
func (c *Coordinator) Ring() *Ring { return c.mem.snapshot().ring }

// Jobs exposes the coordinator's job manager (tests, debugging).
func (c *Coordinator) Jobs() *job.Manager { return c.jobs }

// MemberState reports a member's current membership state (tests,
// debugging); MemberEjected for unknown names.
func (c *Coordinator) MemberState(name string) MemberState { return c.mem.state(name) }

// DebugRequests exposes the live request inspector (mounted at
// /debug/requests; the debug listener mounts it too).
func (c *Coordinator) DebugRequests() http.Handler { return c.tracker }

func (c *Coordinator) initMetrics() {
	r := telemetry.NewRegistry()
	c.reg = r
	c.reqTotal = r.Counter("dssmem_fleet_requests_total", "API requests handled by the coordinator.")
	c.reqErrors = r.Counter("dssmem_fleet_request_errors_total", "Coordinator API requests that failed.")
	c.reqSeconds = r.HistogramVec("dssmem_fleet_request_seconds", "End-to-end coordinator request latency.", nil, "endpoint")
	c.phaseSeconds = r.HistogramVec("dssmem_fleet_phase_seconds",
		"Coordinator request time by phase: cache_mem, fanout, encode.", nil, "phase")
	c.workerCalls = r.CounterVec("dssmem_fleet_worker_calls_total",
		"Coordinator→worker calls by worker and outcome (ok, error, mismatch).", "worker", "outcome")
	c.steals = r.Counter("dssmem_fleet_steals_total",
		"Straggler re-issues: calls re-dispatched to another worker past the steal deadline.")
	c.failovers = r.Counter("dssmem_fleet_failovers_total",
		"Calls moved to the next ring worker after a worker failed.")
	c.mismatches = r.Counter("dssmem_fleet_digest_mismatch_total",
		"Worker responses whose X-Digest disagreed with the coordinator's computation.")
	c.workerUp = r.GaugeVec("dssmem_fleet_worker_up",
		"Last /healthz aggregation verdict per worker (1 up, 0 down).", "worker")
	c.scrapeErrs = r.CounterVec("dssmem_fleet_scrape_errors_total",
		"Worker scrape failures during /metrics or /healthz aggregation.", "worker")
	c.memberState = r.GaugeVec("dssmem_fleet_member_state",
		"Membership state per worker: 0 ejected, 1 pending, 2 probing, 3 active.", "worker")
	c.transitions = r.CounterVec("dssmem_fleet_member_transitions_total",
		"Membership state transitions by worker and destination state.", "worker", "to")
	c.joins = r.Counter("dssmem_fleet_joins_total",
		"Join registrations accepted (new members).")
	c.heartbeats = r.Counter("dssmem_fleet_heartbeats_total",
		"Push heartbeats received on /v1/fleet/join.")
	c.hintsQueued = r.Counter("dssmem_fleet_hints_queued_total",
		"Results queued for replay because their home owner was down.")
	c.hintsSent = r.Counter("dssmem_fleet_hints_replayed_total",
		"Hinted results successfully replayed to a rejoined owner.")
	c.hintsErrs = r.Counter("dssmem_fleet_hint_errors_total",
		"Hint replays that failed (the repair pass retries them).")
	c.repairs = r.Counter("dssmem_fleet_repairs_total",
		"Entries copied to their home owner by the anti-entropy pass.")
	c.repairErrs = r.Counter("dssmem_fleet_repair_errors_total",
		"Anti-entropy repair attempts that failed.")
	c.jobsResumed = r.Counter("dssmem_fleet_jobs_resumed_total",
		"Unfinished journaled jobs resumed after a restart.")
	c.sweepPoints = r.CounterVec("dssmem_fleet_sweep_points_total",
		"Sweep points fetched from workers, by the worker's cache verdict.", "cache")
	r.PollGauge("dssmem_fleet_workers", "Known fleet members.",
		nil, func(emit func(float64, ...string)) { emit(float64(len(c.mem.list()))) })
	r.PollGauge("dssmem_fleet_workers_active", "Members currently on the routing ring.",
		nil, func(emit func(float64, ...string)) {
			n := 0
			for _, mi := range c.mem.list() {
				if mi.State == MemberActive || mi.State == MemberPending {
					n++
				}
			}
			emit(float64(n))
		})
	r.PollGauge("dssmem_fleet_hints_pending", "Hints queued awaiting an owner's rejoin.",
		nil, func(emit func(float64, ...string)) {
			total := 0
			for _, mi := range c.mem.list() {
				total += c.hints.pending(mi.Worker.Name)
			}
			emit(float64(total))
		})
	r.PollGauge("dssmem_fleet_jobs", "Journaled jobs by state.",
		[]string{"state"}, func(emit func(float64, ...string)) {
			counts := map[job.State]int{}
			for _, j := range c.jobs.Jobs() {
				counts[j.State()]++
			}
			for _, st := range []job.State{job.StateRunning, job.StateDone, job.StateFailed} {
				emit(float64(counts[st]), string(st))
			}
		})
	r.PollGauge("dssmem_fleet_uptime_seconds", "Seconds since the coordinator started.",
		nil, func(emit func(float64, ...string)) { emit(time.Since(c.start).Seconds()) })
}

// onMemberChange is the membership layer's transition observer: it keeps the
// state gauge current, counts real transitions, and kicks off hint replay
// when a member earns its way back onto the ring.
func (c *Coordinator) onMemberChange(name string, from, to MemberState) {
	c.memberState.With(name).Set(int64(to))
	if from == to {
		return // initial registration: gauge only
	}
	c.transitions.With(name, to.String()).Inc()
	if c.cfg.Log != nil {
		c.cfg.Log.Info("fleet member transition", "worker", name, "from", from.String(), "to", to.String())
	}
	if to == MemberActive && (from == MemberEjected || from == MemberProbing) {
		c.bg.Add(1)
		go c.replayHints(name)
	}
}

// membershipLoop is the coordinator's pull side: every Heartbeat it probes
// members it has not heard from recently — keeping static fleets (no push
// heartbeats) fully managed — and half-open-probes ejected members back in.
func (c *Coordinator) membershipLoop() {
	defer c.bg.Done()
	t := time.NewTicker(c.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.tickMembership()
		}
	}
}

// tickMembership runs one round of pull observations, concurrently, and
// waits for them (each bounded by ScrapeTimeout).
func (c *Coordinator) tickMembership() {
	var wg sync.WaitGroup
	for _, mi := range c.mem.list() {
		if mi.State == MemberActive && c.mem.fresh(mi.Worker.Name, c.cfg.Heartbeat) {
			continue // a push heartbeat already covered this interval
		}
		wg.Add(1)
		go func(mi memberInfo) {
			defer wg.Done()
			c.probeMember(mi.Worker.Name)
		}(mi)
	}
	wg.Wait()
}

// probeMember contacts one member's /healthz and feeds the result into the
// state machine. Any 200 counts as alive — a degraded worker is serving.
func (c *Coordinator) probeMember(name string) MemberState {
	mi, ok := c.memberByName(name)
	if !ok {
		return MemberEjected
	}
	ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, mi.Worker.URL+"/healthz", nil)
	if err != nil {
		return c.mem.observe(name, false, c.cfg.EjectAfter)
	}
	resp, err := c.scrape.Do(req)
	alive := err == nil && resp.StatusCode == http.StatusOK
	if err == nil {
		resp.Body.Close()
	}
	return c.mem.observe(name, alive, c.cfg.EjectAfter)
}

func (c *Coordinator) memberByName(name string) (memberInfo, bool) {
	for _, mi := range c.mem.list() {
		if mi.Worker.Name == name {
			return mi, true
		}
	}
	return memberInfo{}, false
}

// replayHints drains the hint queue for a rejoined owner and PUTs each
// framed entry into its cache. Failures are counted and dropped — the
// anti-entropy pass is the backstop.
func (c *Coordinator) replayHints(owner string) {
	defer c.bg.Done()
	mi, ok := c.memberByName(owner)
	if !ok {
		return
	}
	for _, ht := range c.hints.drain(owner) {
		ctx, cancel := context.WithTimeout(c.baseCtx, c.cfg.ScrapeTimeout)
		err := putEntry(ctx, c.scrape, mi.Worker.URL, ht.ns, ht.dig, ht.payload)
		cancel()
		if err != nil {
			c.hintsErrs.Inc()
			if c.cfg.Log != nil {
				c.cfg.Log.Warn("hint replay failed", "worker", owner, "digest", ht.dig.Short(), "err", err)
			}
			continue
		}
		c.hintsSent.Inc()
	}
}

// maybeHint queues payload for the digest's home owner when it was served by
// someone else while the owner was off the ring.
func (c *Coordinator) maybeHint(ns string, dig rescache.Digest, payload []byte, servedBy string) {
	owner, ok := c.mem.snapshot().homeOwner(string(dig))
	if !ok || owner == servedBy {
		return
	}
	if st := c.mem.state(owner); st == MemberActive || st == MemberPending {
		return // owner is routable; it missed this one by steal/race, not death
	}
	buf := make([]byte, len(payload))
	copy(buf, payload)
	if c.hints.add(owner, hint{ns: ns, dig: dig, payload: buf}) {
		c.hintsQueued.Inc()
	}
}

// instrument mirrors the worker-side request wrapper: ID minted or honored,
// echoed, tracked, timed, logged — so a request that fans out across the
// fleet reads the same way at every hop.
func (c *Coordinator) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.reqTotal.Inc()
		id := telemetry.CleanID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = telemetry.NewID()
		}
		q := telemetry.NewRequest(id, endpoint)
		if n, err := strconv.Atoi(r.Header.Get("X-Request-Attempt")); err == nil && n > 1 {
			q.Attempt = n
		}
		w.Header().Set("X-Request-ID", id)
		c.tracker.Begin(q)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(telemetry.NewContext(r.Context(), q)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := "ok"
		if status >= 400 {
			outcome = "error"
		}
		q.Finish(status, outcome)
		c.reqSeconds.With(endpoint).Observe(q.Duration().Seconds())
		for _, ph := range q.Phases() {
			c.phaseSeconds.With(ph.Name).Observe(ph.Seconds)
		}
		c.tracker.End(q)
		c.logRequest(r, q)
	})
}

func (c *Coordinator) logRequest(r *http.Request, q *telemetry.Request) {
	if c.cfg.Log == nil {
		return
	}
	v := q.View()
	args := []any{
		"req", v.ID,
		"endpoint", v.Endpoint,
		"query", r.URL.RawQuery,
		"status", v.Status,
		"outcome", v.Outcome,
		"duration_ms", v.DurationMS,
	}
	if v.Digest != "" {
		args = append(args, "digest", v.Digest)
	}
	if v.Cache != "" {
		args = append(args, "cache", v.Cache)
	}
	for _, ph := range v.Phases {
		args = append(args, "phase_"+ph.Name+"_ms", ph.DurationMS)
	}
	level := slog.LevelInfo
	switch {
	case v.Status >= 500:
		level = slog.LevelError
	case v.Status >= 400:
		level = slog.LevelWarn
	}
	c.cfg.Log.Log(r.Context(), level, "request", args...)
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ParseWorkers parses a fleet roster flag: comma-separated "name=url" pairs
// (bare "url" elements take the URL as the name — stable only as long as the
// URL is).
func ParseWorkers(spec string) ([]Worker, error) {
	var out []Worker
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok {
			name, raw = part, part
		}
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fleet: worker %q: bad URL %q (want http[s]://host:port)", name, raw)
		}
		out = append(out, Worker{Name: name, URL: strings.TrimRight(raw, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("fleet: empty worker list")
	}
	return out, nil
}

// fail writes the coordinator's structured error body (the same shape the
// workers use, so internal/client's decoding works unchanged).
func (c *Coordinator) fail(w http.ResponseWriter, status int, retriable bool, retryAfter time.Duration, err error) {
	c.reqErrors.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if retriable {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
		Status    int    `json:"status"`
	}{err.Error(), retriable, status})
}

// failFetch maps a fan-out error onto an HTTP response: a worker's API error
// propagates its status, retriability and Retry-After hint; anything else
// (transport failure with every candidate exhausted, an empty ring) is a
// retriable 502/503.
func (c *Coordinator) failFetch(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		c.fail(w, ae.Status, ae.Retriable, ae.RetryAfter, err)
		return
	}
	if errors.Is(err, errNoWorkers) {
		c.fail(w, http.StatusServiceUnavailable, true, 2*time.Second, err)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.fail(w, http.StatusServiceUnavailable, true, 0, err)
		return
	}
	c.fail(w, http.StatusBadGateway, true, 0, err)
}
