// Package fleet turns N dssmemd workers into one logical measurement service
// behind the unchanged /v1 API. A coordinator shards the content-addressed
// keyspace across workers with a consistent-hash ring (every rescache digest
// has a stable home worker), fans /v1/sweep out point-by-point to the owning
// workers, steals work from stragglers past a deadline (re-issuing a slow
// point to the next worker on the ring — the simulations are deterministic
// and content-addressed, so a stolen-and-original duplicate yields one value
// and byte-identical bodies), and aggregates the fleet's health and metrics.
//
// The layering mirrors the paper's cc-NUMA machines: a worker's memory tier
// is the local cache, its disk tier is local memory, the peer-fill tier
// (rescache.PeerFetch, served by /v1/cache/{ns}/{digest}) is a remote-node
// fetch, the ring is the directory that names the home node, and recompute
// is the memory access of last resort. One X-Request-ID, minted or honored
// at the coordinator, rides every coordinator→worker call and peer fetch, so
// a single ID stitches the distributed trace across all logs and inspectors.
package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/experiments"
	"dssmem/internal/rescache"
	"dssmem/internal/telemetry"
)

// Worker names one fleet member. Name is the sharding identity (hashed onto
// the ring, shown as the `worker` metrics label): keep it stable across
// restarts even when the URL moves, or ~all of the worker's keyspace remaps.
type Worker struct {
	Name string
	URL  string
}

// Config parameterizes a Coordinator.
type Config struct {
	// Preset must match every worker's preset: the coordinator computes the
	// same content digests the workers answer under, and verifies each
	// response's X-Digest against its own computation (a mismatch means
	// fleet misconfiguration and fails the request rather than serving
	// bytes of unknown identity).
	Preset experiments.Preset
	// Workers is the fleet roster. At least one required.
	Workers []Worker
	// HTTP overrides the transport for worker calls (tests, benchmarks).
	// nil uses a dedicated client with no global timeout — per-call
	// lifetimes come from request contexts.
	HTTP *http.Client
	// StealAfter is the straggler deadline: a fanned-out call not resolved
	// within it is re-issued to the next worker on the ring while the
	// original keeps running; first verified answer wins. 0 = 15s;
	// negative disables stealing.
	StealAfter time.Duration
	// MaxAttempts bounds the retry loop of each per-worker client
	// (0 = 3; transport errors also fail over to the next worker).
	MaxAttempts int
	// ScrapeTimeout bounds each worker scrape during /healthz and /metrics
	// aggregation (0 = 3s).
	ScrapeTimeout time.Duration
	// Replicas is the ring's virtual-node count per worker (0 = 128).
	Replicas int
	// DisableCache turns off the coordinator-local result cache so every
	// request fans out (routing-path benchmarks; production keeps it on).
	DisableCache bool
	// Log receives one structured line per API request. nil disables.
	Log *slog.Logger
	// RecentRequests sizes the /debug/requests ring (0 = default).
	RecentRequests int
}

// Coordinator serves the /v1 API over a worker fleet. Create with New.
type Coordinator struct {
	cfg     Config
	ring    *Ring
	clients []*client.Client // index-aligned with cfg.Workers
	store   *rescache.Store  // memory-only: coordinator result cache + singleflight
	scrape  *http.Client     // healthz/metrics fan-in
	mux     *http.ServeMux
	start   time.Time

	reg     *telemetry.Registry
	tracker *telemetry.Tracker

	reqTotal     *telemetry.Counter
	reqErrors    *telemetry.Counter
	reqSeconds   *telemetry.HistVec
	phaseSeconds *telemetry.HistVec
	workerCalls  *telemetry.CounterVec // by worker, outcome
	steals       *telemetry.Counter
	failovers    *telemetry.Counter
	mismatches   *telemetry.Counter
	workerUp     *telemetry.GaugeVec
	scrapeErrs   *telemetry.CounterVec
}

// PhaseFanout is the coordinator-side phase charging time spent waiting on
// workers (it appears in dssmem_fleet_phase_seconds and /debug/requests).
const PhaseFanout = "fanout"

// New builds a coordinator. It performs no I/O: workers are contacted
// lazily, per request, so a coordinator can start before its fleet.
func New(cfg Config) (*Coordinator, error) {
	if cfg.Preset.Name == "" {
		return nil, errors.New("fleet: config needs a preset")
	}
	if len(cfg.Workers) == 0 {
		return nil, errors.New("fleet: config needs at least one worker")
	}
	seen := make(map[string]bool, len(cfg.Workers))
	names := make([]string, len(cfg.Workers))
	for i, w := range cfg.Workers {
		if w.Name == "" || w.URL == "" {
			return nil, fmt.Errorf("fleet: worker %d needs a name and a URL", i)
		}
		if seen[w.Name] {
			return nil, fmt.Errorf("fleet: duplicate worker name %q", w.Name)
		}
		seen[w.Name] = true
		names[i] = w.Name
	}
	if cfg.StealAfter == 0 {
		cfg.StealAfter = 15 * time.Second
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.ScrapeTimeout <= 0 {
		cfg.ScrapeTimeout = 3 * time.Second
	}
	httpc := cfg.HTTP
	if httpc == nil {
		httpc = &http.Client{}
	}
	c := &Coordinator{
		cfg:    cfg,
		ring:   NewRing(names, cfg.Replicas),
		store:  rescache.NewMemory(),
		scrape: httpc,
		start:  time.Now(),
	}
	c.clients = make([]*client.Client, len(cfg.Workers))
	for i, w := range cfg.Workers {
		cl, err := client.New(client.Config{
			BaseURL:     w.URL,
			HTTP:        httpc,
			MaxAttempts: cfg.MaxAttempts,
			BaseDelay:   50 * time.Millisecond,
			MaxDelay:    2 * time.Second,
			Seed:        int64(i + 1),
			Log:         cfg.Log,
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: worker %s: %w", w.Name, err)
		}
		c.clients[i] = cl
	}
	c.tracker = telemetry.NewTracker(cfg.RecentRequests)
	c.initMetrics()
	c.mux = http.NewServeMux()
	c.mux.HandleFunc("GET /healthz", c.handleHealthz)
	c.mux.HandleFunc("GET /metrics", c.handleMetrics)
	c.mux.Handle("GET /debug/requests", c.tracker)
	c.mux.Handle("GET /v1/measure", c.instrument("/v1/measure", c.handleMeasure))
	c.mux.Handle("GET /v1/figure/{id}", c.instrument("/v1/figure", c.handleFigure))
	c.mux.Handle("GET /v1/sweep", c.instrument("/v1/sweep", c.handleSweep))
	return c, nil
}

// Handler returns the coordinator's HTTP handler.
func (c *Coordinator) Handler() http.Handler { return c.mux }

// Registry exposes the coordinator's own metrics registry (fleet families
// only; worker families are merged in at scrape time).
func (c *Coordinator) Registry() *telemetry.Registry { return c.reg }

// Ring exposes the shard map (tests, debugging).
func (c *Coordinator) Ring() *Ring { return c.ring }

// DebugRequests exposes the live request inspector (mounted at
// /debug/requests; the debug listener mounts it too).
func (c *Coordinator) DebugRequests() http.Handler { return c.tracker }

func (c *Coordinator) initMetrics() {
	r := telemetry.NewRegistry()
	c.reg = r
	c.reqTotal = r.Counter("dssmem_fleet_requests_total", "API requests handled by the coordinator.")
	c.reqErrors = r.Counter("dssmem_fleet_request_errors_total", "Coordinator API requests that failed.")
	c.reqSeconds = r.HistogramVec("dssmem_fleet_request_seconds", "End-to-end coordinator request latency.", nil, "endpoint")
	c.phaseSeconds = r.HistogramVec("dssmem_fleet_phase_seconds",
		"Coordinator request time by phase: cache_mem, fanout, encode.", nil, "phase")
	c.workerCalls = r.CounterVec("dssmem_fleet_worker_calls_total",
		"Coordinator→worker calls by worker and outcome (ok, error, mismatch).", "worker", "outcome")
	c.steals = r.Counter("dssmem_fleet_steals_total",
		"Straggler re-issues: calls re-dispatched to another worker past the steal deadline.")
	c.failovers = r.Counter("dssmem_fleet_failovers_total",
		"Calls moved to the next ring worker after a worker failed.")
	c.mismatches = r.Counter("dssmem_fleet_digest_mismatch_total",
		"Worker responses whose X-Digest disagreed with the coordinator's computation.")
	c.workerUp = r.GaugeVec("dssmem_fleet_worker_up",
		"Last /healthz aggregation verdict per worker (1 up, 0 down).", "worker")
	c.scrapeErrs = r.CounterVec("dssmem_fleet_scrape_errors_total",
		"Worker scrape failures during /metrics or /healthz aggregation.", "worker")
	r.PollGauge("dssmem_fleet_workers", "Configured fleet size.",
		nil, func(emit func(float64, ...string)) { emit(float64(len(c.cfg.Workers))) })
	r.PollGauge("dssmem_fleet_uptime_seconds", "Seconds since the coordinator started.",
		nil, func(emit func(float64, ...string)) { emit(time.Since(c.start).Seconds()) })
}

// instrument mirrors the worker-side request wrapper: ID minted or honored,
// echoed, tracked, timed, logged — so a request that fans out across the
// fleet reads the same way at every hop.
func (c *Coordinator) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		c.reqTotal.Inc()
		id := telemetry.CleanID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = telemetry.NewID()
		}
		q := telemetry.NewRequest(id, endpoint)
		if n, err := strconv.Atoi(r.Header.Get("X-Request-Attempt")); err == nil && n > 1 {
			q.Attempt = n
		}
		w.Header().Set("X-Request-ID", id)
		c.tracker.Begin(q)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(telemetry.NewContext(r.Context(), q)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := "ok"
		if status >= 400 {
			outcome = "error"
		}
		q.Finish(status, outcome)
		c.reqSeconds.With(endpoint).Observe(q.Duration().Seconds())
		for _, ph := range q.Phases() {
			c.phaseSeconds.With(ph.Name).Observe(ph.Seconds)
		}
		c.tracker.End(q)
		c.logRequest(r, q)
	})
}

func (c *Coordinator) logRequest(r *http.Request, q *telemetry.Request) {
	if c.cfg.Log == nil {
		return
	}
	v := q.View()
	args := []any{
		"req", v.ID,
		"endpoint", v.Endpoint,
		"query", r.URL.RawQuery,
		"status", v.Status,
		"outcome", v.Outcome,
		"duration_ms", v.DurationMS,
	}
	if v.Digest != "" {
		args = append(args, "digest", v.Digest)
	}
	if v.Cache != "" {
		args = append(args, "cache", v.Cache)
	}
	for _, ph := range v.Phases {
		args = append(args, "phase_"+ph.Name+"_ms", ph.DurationMS)
	}
	level := slog.LevelInfo
	switch {
	case v.Status >= 500:
		level = slog.LevelError
	case v.Status >= 400:
		level = slog.LevelWarn
	}
	c.cfg.Log.Log(r.Context(), level, "request", args...)
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// ParseWorkers parses a fleet roster flag: comma-separated "name=url" pairs
// (bare "url" elements take the URL as the name — stable only as long as the
// URL is).
func ParseWorkers(spec string) ([]Worker, error) {
	var out []Worker
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, raw, ok := strings.Cut(part, "=")
		if !ok {
			name, raw = part, part
		}
		u, err := url.Parse(raw)
		if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
			return nil, fmt.Errorf("fleet: worker %q: bad URL %q (want http[s]://host:port)", name, raw)
		}
		out = append(out, Worker{Name: name, URL: strings.TrimRight(raw, "/")})
	}
	if len(out) == 0 {
		return nil, errors.New("fleet: empty worker list")
	}
	return out, nil
}

// fail writes the coordinator's structured error body (the same shape the
// workers use, so internal/client's decoding works unchanged).
func (c *Coordinator) fail(w http.ResponseWriter, status int, retriable bool, retryAfter time.Duration, err error) {
	c.reqErrors.Inc()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if retriable {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
		Status    int    `json:"status"`
	}{err.Error(), retriable, status})
}

// failFetch maps a fan-out error onto an HTTP response: a worker's API error
// propagates its status, retriability and Retry-After hint; anything else
// (transport failure with every candidate exhausted) is a retriable 502.
func (c *Coordinator) failFetch(w http.ResponseWriter, err error) {
	var ae *client.APIError
	if errors.As(err, &ae) {
		c.fail(w, ae.Status, ae.Retriable, ae.RetryAfter, err)
		return
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		c.fail(w, http.StatusServiceUnavailable, true, 0, err)
		return
	}
	c.fail(w, http.StatusBadGateway, true, 0, err)
}
