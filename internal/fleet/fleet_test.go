package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssmem/internal/experiments"
	"dssmem/internal/service"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// The fleet tests run real service.Server workers behind in-process proxies
// that can observe headers, inject latency, and die like a SIGKILLed process
// (connection closed, no HTTP reply) — so coordinator behavior is tested
// against the failure modes it exists for, without real process management.

var (
	tinyDataOnce sync.Once
	tinyData     *tpch.Data
)

func sharedTinyData() *tpch.Data {
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	return tinyData
}

// proxyWorker fronts one worker with kill/latency/observation controls.
type proxyWorker struct {
	name  string
	ts    *httptest.Server
	srv   atomic.Pointer[service.Server]
	dead  atomic.Bool
	delay atomic.Int64 // ns slept before forwarding /v1 requests

	mu      sync.Mutex
	seenIDs []string // X-Request-ID of every inbound request
}

func (p *proxyWorker) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.seenIDs = append(p.seenIDs, r.Header.Get("X-Request-ID"))
	p.mu.Unlock()
	if p.dead.Load() {
		// A killed process never writes an HTTP reply: drop the connection.
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	}
	if d := p.delay.Load(); d > 0 && strings.HasPrefix(r.URL.Path, "/v1/") {
		time.Sleep(time.Duration(d))
	}
	p.srv.Load().Handler().ServeHTTP(w, r)
}

// kill makes the worker unreachable and severs every live connection.
func (p *proxyWorker) kill() {
	p.dead.Store(true)
	p.ts.CloseClientConnections()
}

// restart brings the worker back as a fresh process would come back: new
// server state behind the same address.
func (p *proxyWorker) restart(t *testing.T, cfg service.Config) {
	t.Helper()
	old := p.srv.Swap(newWorkerServer(t, cfg))
	old.Close()
	p.dead.Store(false)
}

func (p *proxyWorker) ids() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.seenIDs...)
}

func newWorkerServer(t *testing.T, cfg service.Config) *service.Server {
	t.Helper()
	if cfg.Preset.Name == "" {
		cfg.Preset = experiments.Tiny
		cfg.Data = sharedTinyData()
	}
	srv, err := service.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func newProxyWorker(t *testing.T, name string, cfg service.Config) *proxyWorker {
	t.Helper()
	p := &proxyWorker{name: name}
	p.srv.Store(newWorkerServer(t, cfg))
	p.ts = httptest.NewServer(p)
	t.Cleanup(p.ts.Close)
	return p
}

// newFleet builds n workers and a coordinator over them; cfgFn (when non-nil)
// adjusts the coordinator config before New.
func newFleet(t *testing.T, n int, cfgFn func(*Config)) ([]*proxyWorker, *Coordinator, *httptest.Server) {
	t.Helper()
	workers := make([]*proxyWorker, n)
	roster := make([]Worker, n)
	for i := range workers {
		name := fmt.Sprintf("w%d", i)
		workers[i] = newProxyWorker(t, name, service.Config{})
		roster[i] = Worker{Name: name, URL: workers[i].ts.URL}
	}
	cfg := Config{
		Preset:        experiments.Tiny,
		Workers:       roster,
		StealAfter:    -1, // individual tests opt in
		MaxAttempts:   2,
		ScrapeTimeout: 2 * time.Second,
	}
	if cfgFn != nil {
		cfgFn(&cfg)
	}
	coord, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)
	return workers, coord, ts
}

func get(t *testing.T, ts *httptest.Server, path string, hdr ...string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, ts.URL+path, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// metricValue extracts one unlabeled sample value from an exposition.
func metricValue(body []byte, name string) float64 {
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, name+" "); ok {
			v, err := strconv.ParseFloat(strings.TrimSpace(rest), 64)
			if err == nil {
				return v
			}
		}
	}
	return -1
}

func coordMetric(t *testing.T, coord *Coordinator, name string) float64 {
	t.Helper()
	var buf bytes.Buffer
	coord.Registry().WriteText(&buf)
	return metricValue(buf.Bytes(), name)
}

// TestFleetByteIdentity is the core contract: the coordinator's answers are
// byte-for-byte the answers a single node gives — sharding, splicing, and
// the coordinator cache are invisible to clients.
func TestFleetByteIdentity(t *testing.T) {
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	_, _, coord := newFleet(t, 3, nil)

	paths := []string{
		"/v1/measure?machine=vclass&cpus=4&query=Q6&procs=2",
		"/v1/measure?machine=origin&query=Q12&procs=1",
		"/v1/sweep?machine=vclass&query=Q6",
	}
	for _, p := range paths {
		refResp, refBody := get(t, ref, p)
		for round := 0; round < 2; round++ { // miss then coordinator-cache hit
			resp, body := get(t, coord, p)
			if resp.StatusCode != 200 {
				t.Fatalf("%s round %d: %d %s", p, round, resp.StatusCode, body)
			}
			if got, want := resp.Header.Get("X-Digest"), refResp.Header.Get("X-Digest"); got != want {
				t.Fatalf("%s round %d: X-Digest %s, single-node %s", p, round, got, want)
			}
			if strings.Contains(p, "sweep") {
				if !bytes.Equal(body, refBody) {
					t.Fatalf("%s round %d: fleet sweep body differs from single node:\n got %s\nwant %s", p, round, body, refBody)
				}
				continue
			}
			var got, want struct {
				Digest      string          `json:"digest"`
				Measurement json.RawMessage `json:"measurement"`
			}
			if err := json.Unmarshal(body, &got); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(refBody, &want); err != nil {
				t.Fatal(err)
			}
			if got.Digest != want.Digest || string(got.Measurement) != string(want.Measurement) {
				t.Fatalf("%s round %d: fleet measurement differs from single node:\n got %s\nwant %s",
					p, round, got.Measurement, want.Measurement)
			}
		}
		// Second fetch must be a coordinator-cache hit.
		resp, _ := get(t, coord, p)
		if resp.Header.Get("X-Cache") != "hit" {
			t.Errorf("%s: second fetch X-Cache = %q, want hit", p, resp.Header.Get("X-Cache"))
		}
	}
}

// TestFleetRequestIDPropagation: one inbound X-Request-ID must appear on
// every coordinator→worker hop of the request it names.
func TestFleetRequestIDPropagation(t *testing.T) {
	workers, _, coord := newFleet(t, 3, nil)

	const id = "fleet-trace-0001"
	resp, body := get(t, coord, "/v1/sweep?machine=vclass&query=Q6", "X-Request-ID", id)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Request-ID") != id {
		t.Errorf("coordinator echoed X-Request-ID %q, want %q", resp.Header.Get("X-Request-ID"), id)
	}
	hops := 0
	for _, w := range workers {
		for _, seen := range w.ids() {
			hops++
			if seen != id {
				t.Errorf("worker %s saw X-Request-ID %q, want %q", w.name, seen, id)
			}
		}
	}
	if hops < len(experiments.ProcCounts) {
		t.Errorf("sweep produced %d worker hops, want at least one per point (%d)", hops, len(experiments.ProcCounts))
	}
}

// TestFleetWorkSteal: a straggling owner is raced by the ring successor and
// the client still gets the right bytes, on time.
func TestFleetWorkSteal(t *testing.T) {
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	workers, coord, cts := newFleet(t, 2, func(c *Config) {
		c.StealAfter = 75 * time.Millisecond
	})

	const path = "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1"
	spec, err := service.ParseMachine("vclass", "2", experiments.Tiny.MemScale)
	if err != nil {
		t.Fatal(err)
	}
	q, _ := service.ParseQuery("Q6")
	dig := service.MeasureDigest(experiments.Tiny, q, 1, workload.Options{Spec: spec})
	owner := coord.Ring().Owner(string(dig))

	// The owner answers, but far too slowly; the successor is prewarmed so
	// the stolen call returns fast and deterministically wins the race.
	_, refBody := get(t, ref, path)
	get(t, workers[1-owner].ts, path)
	workers[owner].delay.Store(int64(2 * time.Second))

	start := time.Now()
	resp, body := get(t, cts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("stolen measure: %d %s", resp.StatusCode, body)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("stolen measure took %v, stealing should beat the %v straggler", elapsed, 2*time.Second)
	}
	var got, want struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	json.Unmarshal(body, &got)
	json.Unmarshal(refBody, &want)
	if string(got.Measurement) != string(want.Measurement) {
		t.Fatalf("stolen measurement differs from single node:\n got %s\nwant %s", got.Measurement, want.Measurement)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_steals_total"); v < 1 {
		t.Errorf("dssmem_fleet_steals_total = %v, want >= 1", v)
	}
}

// TestFleetFailover: a dead owner's keyspace is served by the ring successor.
func TestFleetFailover(t *testing.T) {
	workers, coord, cts := newFleet(t, 2, nil)

	const path = "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1"
	spec, _ := service.ParseMachine("vclass", "2", experiments.Tiny.MemScale)
	q, _ := service.ParseQuery("Q6")
	dig := service.MeasureDigest(experiments.Tiny, q, 1, workload.Options{Spec: spec})
	owner := coord.Ring().Owner(string(dig))
	workers[owner].kill()

	resp, body := get(t, cts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("failover measure: %d %s", resp.StatusCode, body)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_failovers_total"); v < 1 {
		t.Errorf("dssmem_fleet_failovers_total = %v, want >= 1", v)
	}
}

// TestFleetDigestMismatch: a worker running the wrong preset computes under
// different content addresses; the coordinator must refuse its answers and
// fail over rather than serve bytes of unknown identity.
func TestFleetDigestMismatch(t *testing.T) {
	good := newProxyWorker(t, "good", service.Config{})
	skewed := newProxyWorker(t, "skewed", service.Config{
		Preset: experiments.Small, // wrong preset: digests disagree
		Data:   tpch.Generate(experiments.Small.SF, experiments.Small.Seed),
	})
	coord, err := New(Config{
		Preset: experiments.Tiny,
		Workers: []Worker{
			{Name: "good", URL: good.ts.URL},
			{Name: "skewed", URL: skewed.ts.URL},
		},
		StealAfter:  -1,
		MaxAttempts: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// Every point of a sweep hits both workers' keyspaces with high
	// probability; all five must come back, all verified.
	resp, body := get(t, cts, "/v1/sweep?machine=vclass&query=Q6")
	if resp.StatusCode != 200 {
		t.Fatalf("sweep with skewed worker: %d %s", resp.StatusCode, body)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_digest_mismatch_total"); v < 1 {
		t.Skip("ring routed no point to the skewed worker (unlikely); nothing to verify")
	}
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	_, refBody := get(t, ref, "/v1/sweep?machine=vclass&query=Q6")
	if !bytes.Equal(body, refBody) {
		t.Fatalf("sweep past a skewed worker differs from single node:\n got %s\nwant %s", body, refBody)
	}
}

// TestFleetPeerFill: a worker's local miss is filled from the peer that
// already holds the digest — verified, charged to the peer tier, and with
// the same X-Request-ID on the peer hop.
func TestFleetPeerFill(t *testing.T) {
	w1 := newProxyWorker(t, "w1", service.Config{})
	pf, err := NewPeerFetch([]Worker{{Name: "w1", URL: w1.ts.URL}}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	w0 := newProxyWorker(t, "w0", service.Config{PeerFetch: pf})

	const path = "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1"
	_, primed := get(t, w1.ts, path) // w1 computes and caches

	const id = "peer-trace-0001"
	resp, body := get(t, w0.ts, path, "X-Request-ID", id)
	if resp.StatusCode != 200 {
		t.Fatalf("peer-filled measure: %d %s", resp.StatusCode, body)
	}
	var got, want struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	json.Unmarshal(body, &got)
	json.Unmarshal(primed, &want)
	if string(got.Measurement) != string(want.Measurement) {
		t.Fatalf("peer-filled measurement differs:\n got %s\nwant %s", got.Measurement, want.Measurement)
	}

	st := w0.srv.Load().Store().Stats()
	if st.PeerHits != 1 {
		t.Errorf("w0 PeerHits = %d, want 1 (stats: %+v)", st.PeerHits, st)
	}
	var buf bytes.Buffer
	w0.srv.Load().Registry().WriteText(&buf)
	if v := metricValue(buf.Bytes(), "dssmem_runs_total"); v != 0 {
		t.Errorf("w0 ran %v simulations, want 0 — the peer fill should have answered", v)
	}
	if v := metricValue(buf.Bytes(), "dssmem_cache_peer_hits_total"); v != 1 {
		t.Errorf("dssmem_cache_peer_hits_total = %v, want 1", v)
	}

	peerHop := false
	for _, seen := range w1.ids() {
		if seen == id {
			peerHop = true
		}
	}
	if !peerHop {
		t.Errorf("peer fetch did not carry the inbound X-Request-ID %q (w1 saw %v)", id, w1.ids())
	}
}

// TestFleetMetricsRollup: the merged /metrics page is lint-clean, carries
// the coordinator's own families, and re-exposes worker families with the
// worker label.
func TestFleetMetricsRollup(t *testing.T) {
	_, _, cts := newFleet(t, 2, nil)
	get(t, cts, "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1")

	resp, body := get(t, cts, "/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	rep, err := telemetry.Lint(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) > 0 {
		t.Fatalf("fleet /metrics fails lint:\n%s", strings.Join(rep.Problems, "\n"))
	}
	for _, want := range []string{
		"dssmem_fleet_requests_total",
		"dssmem_fleet_worker_calls_total",
		`dssmem_requests_total{worker="w0"}`,
		`dssmem_requests_total{worker="w1"}`,
		`dssmem_phase_seconds_bucket{worker="w0",phase=`,
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("fleet /metrics missing %q", want)
		}
	}
}

// TestFleetHealthz: ok with a healthy fleet, partial with a dead worker, ok
// again once it returns.
func TestFleetHealthz(t *testing.T) {
	workers, _, cts := newFleet(t, 2, nil)

	status := func() string {
		_, body := get(t, cts, "/healthz")
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz: %s: %v", body, err)
		}
		return h.Status
	}

	if got := status(); got != "ok" {
		t.Fatalf("healthy fleet: healthz %q, want ok", got)
	}
	workers[0].kill()
	if got := status(); got != "partial" {
		t.Fatalf("fleet with dead worker: healthz %q, want partial", got)
	}
	workers[0].restart(t, service.Config{})
	if got := status(); got != "ok" {
		t.Fatalf("fleet after restart: healthz %q, want ok", got)
	}
}
