package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"dssmem/internal/experiments"
	"dssmem/internal/job"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
	"dssmem/internal/workload"
)

func healthzStatus(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	_, body := get(t, ts, "/healthz")
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz: %s: %v", body, err)
	}
	return h.Status
}

func postJoin(t *testing.T, ts *httptest.Server, name, url string) {
	t.Helper()
	body, _ := json.Marshal(struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}{name, url})
	resp, err := ts.Client().Post(ts.URL+"/v1/fleet/join", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join %s: HTTP %d", name, resp.StatusCode)
	}
}

// digestHomedOn scans measure trials until it finds one whose digest the home
// ring assigns to the named worker, returning the digest and request path.
// Deterministic: digests and the home ring are both pure functions.
func digestHomedOn(t *testing.T, coord *Coordinator, name string) (rescache.Digest, string) {
	t.Helper()
	spec, err := service.ParseMachine("vclass", "2", experiments.Tiny.MemScale)
	if err != nil {
		t.Fatal(err)
	}
	q, err := service.ParseQuery("Q6")
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial <= 100; trial++ {
		d := service.MeasureDigest(experiments.Tiny, q, 1, workload.Options{Spec: spec, Trial: trial})
		if owner, ok := coord.mem.snapshot().homeOwner(string(d)); ok && owner == name {
			return d, fmt.Sprintf("/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1&trial=%d", trial)
		}
	}
	t.Fatalf("no trial homed on %s in 100 tries", name)
	return "", ""
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFleetStartupConverges pins the startup ordering fix: a coordinator
// booted before any worker exists starts degraded (not crashed, not "ok"),
// refuses API traffic with a retriable 503, and converges to "ok" as workers
// join dynamically — with zero static roster.
func TestFleetStartupConverges(t *testing.T) {
	coord, err := New(Config{
		Preset:        experiments.Tiny,
		StealAfter:    -1,
		MaxAttempts:   1,
		Heartbeat:     -1, // observations via joins and healthz only: deterministic
		ScrapeTimeout: 2 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	if got := healthzStatus(t, cts); got != "degraded" {
		t.Fatalf("empty fleet healthz = %q, want degraded", got)
	}
	resp, body := get(t, cts, "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("measure with no workers: %d %s, want 503", resp.StatusCode, body)
	}
	var eb struct {
		Retriable bool `json:"retriable"`
	}
	if err := json.Unmarshal(body, &eb); err != nil || !eb.Retriable {
		t.Fatalf("no-workers error must be retriable, got %s", body)
	}

	w0 := newProxyWorker(t, "w0", service.Config{})
	w1 := newProxyWorker(t, "w1", service.Config{})
	postJoin(t, cts, "w0", w0.ts.URL)
	postJoin(t, cts, "w1", w1.ts.URL)

	// Joins admit via a half-open probe, not on the worker's say-so: wait for
	// the probes to verify both.
	waitFor(t, 5*time.Second, "both members active", func() bool {
		return coord.MemberState("w0") == MemberActive && coord.MemberState("w1") == MemberActive
	})
	if got := healthzStatus(t, cts); got != "ok" {
		t.Fatalf("converged fleet healthz = %q, want ok", got)
	}
	resp, body = get(t, cts, "/v1/measure?machine=vclass&cpus=2&query=Q6&procs=1")
	if resp.StatusCode != 200 {
		t.Fatalf("measure after join: %d %s", resp.StatusCode, body)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_joins_total"); v != 2 {
		t.Errorf("dssmem_fleet_joins_total = %v, want 2", v)
	}
}

// TestFleetEjectRejoinHints drives the full membership cycle without timers:
// a worker dies, consecutive failed observations eject it (the ring remaps),
// a result for its keyspace is computed by the failover worker and queued as
// a hint, the worker returns, a heartbeat plus half-open probe re-admits it,
// and the hint is replayed into its cache.
func TestFleetEjectRejoinHints(t *testing.T) {
	workers, coord, cts := newFleet(t, 2, func(c *Config) {
		c.Heartbeat = -1 // no ticker: this test IS the observation source
		c.EjectAfter = 2
		c.MaxAttempts = 1
	})

	// A digest homed on a known worker, chosen by the home ring itself.
	dig, path := digestHomedOn(t, coord, "w0")
	const owner = 0

	// Fault-free single-node baseline for the byte-identity check.
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	_, refBody := get(t, ref, path)

	// First contact: healthz marks both active.
	get(t, cts, "/healthz")
	waitFor(t, 2*time.Second, "roster active", func() bool {
		return coord.MemberState("w0") == MemberActive && coord.MemberState("w1") == MemberActive
	})

	// Kill the owner. EjectAfter=2 failed observations (healthz scrapes are
	// observations) move it active -> ejected, and the ring drops to one.
	workers[owner].kill()
	get(t, cts, "/healthz")
	if st := coord.MemberState("w0"); st != MemberActive {
		t.Fatalf("after 1 missed observation: w0 %v, want still active", st)
	}
	if got := healthzStatus(t, cts); got != "partial" {
		t.Fatalf("healthz with dead w0 = %q, want partial", got)
	}
	waitFor(t, 2*time.Second, "w0 ejected", func() bool {
		get(t, cts, "/healthz")
		return coord.MemberState("w0") == MemberEjected
	})
	if got, want := len(coord.mem.snapshot().names), 1; got != want {
		t.Fatalf("routing ring has %d members after ejection, want %d", got, want)
	}

	// The dead owner's keyspace serves via the survivor — byte-identically —
	// and the result is queued as a hint for the owner.
	resp, body := get(t, cts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("measure with owner ejected: %d %s", resp.StatusCode, body)
	}
	var got, want struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	json.Unmarshal(body, &got)
	json.Unmarshal(refBody, &want)
	if string(got.Measurement) != string(want.Measurement) {
		t.Fatalf("failover measurement differs from single node:\n got %s\nwant %s", got.Measurement, want.Measurement)
	}
	if n := coord.hints.pending("w0"); n != 1 {
		t.Fatalf("hints pending for w0 = %d, want 1", n)
	}

	// The worker returns and heartbeats. A bare heartbeat must NOT re-admit:
	// the half-open probe has to see it answer first — then the hint replays.
	workers[owner].restart(t, service.Config{})
	postJoin(t, cts, "w0", workers[owner].ts.URL)
	waitFor(t, 5*time.Second, "w0 re-admitted", func() bool {
		return coord.MemberState("w0") == MemberActive
	})
	waitFor(t, 5*time.Second, "hint replayed into w0's cache", func() bool {
		r, err := http.Get(workers[owner].ts.URL + "/v1/cache/" + rescache.NSMeasurement + "/" + string(dig))
		if err != nil {
			return false
		}
		r.Body.Close()
		return r.StatusCode == 200
	})
	if v := coordMetric(t, coord, "dssmem_fleet_hints_queued_total"); v < 1 {
		t.Errorf("dssmem_fleet_hints_queued_total = %v, want >= 1", v)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_hints_replayed_total"); v < 1 {
		t.Errorf("dssmem_fleet_hints_replayed_total = %v, want >= 1", v)
	}
	if got := healthzStatus(t, cts); got != "ok" {
		t.Fatalf("healthz after rejoin = %q, want ok", got)
	}
	// The replayed entry is byte-identical at its owner: fetch it from w0's
	// cache endpoint and unframe.
	r, err := http.Get(workers[owner].ts.URL + "/v1/cache/" + rescache.NSMeasurement + "/" + string(dig))
	if err != nil {
		t.Fatal(err)
	}
	framed := readAll(t, r)
	payload, err := rescache.UnframeEntry(framed)
	if err != nil {
		t.Fatalf("replayed entry frame invalid: %v", err)
	}
	if string(payload) != string(want.Measurement) {
		t.Fatalf("replayed entry differs from single-node measurement:\n got %s\nwant %s", payload, want.Measurement)
	}
}

// TestFleetHalfOpenProbe: a heartbeat from an ejected worker that is still
// unreachable must NOT put it back on the routing ring — the probe fails and
// it stays ejected.
func TestFleetHalfOpenProbe(t *testing.T) {
	workers, coord, cts := newFleet(t, 2, func(c *Config) {
		c.Heartbeat = -1
		c.EjectAfter = 1
		c.MaxAttempts = 1
		c.ScrapeTimeout = 300 * time.Millisecond
	})
	get(t, cts, "/healthz")
	workers[0].kill()
	waitFor(t, 2*time.Second, "w0 ejected", func() bool {
		get(t, cts, "/healthz")
		return coord.MemberState("w0") == MemberEjected
	})

	// The (still dead) worker's heartbeat arrives — a liveness claim the
	// probe must falsify.
	postJoin(t, cts, "w0", workers[0].ts.URL)
	waitFor(t, 3*time.Second, "probe verdict", func() bool {
		return coord.MemberState("w0") != MemberProbing
	})
	if st := coord.MemberState("w0"); st != MemberEjected {
		t.Fatalf("unreachable worker re-admitted: state %v, want ejected", st)
	}
	if got := len(coord.mem.snapshot().names); got != 1 {
		t.Fatalf("routing ring has %d members, want 1 (w0 must stay off)", got)
	}
}

// TestFleetSweepJob: a sweep through the coordinator is journaled as a
// durable job — X-Job-ID names it, every point is recorded, /v1/jobs serves
// its state, and the parameter-lookup endpoint reattaches without the header.
func TestFleetSweepJob(t *testing.T) {
	jobDir := t.TempDir()
	_, coord, cts := newFleet(t, 2, func(c *Config) { c.JobDir = jobDir })

	const query = "machine=vclass&query=Q6"
	resp, body := get(t, cts, "/v1/sweep?"+query)
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Job-ID")
	if id == "" {
		t.Fatal("sweep response missing X-Job-ID")
	}
	j := coord.Jobs().Get(id)
	if j == nil {
		t.Fatalf("job %s not found", id)
	}
	snap := j.Snapshot()
	if snap.State != job.StateDone || snap.Completed != len(experiments.ProcCounts) {
		t.Fatalf("job after sweep: state %s completed %d, want done with %d points", snap.State, snap.Completed, len(experiments.ProcCounts))
	}

	_, jbody := get(t, cts, "/v1/jobs/"+id)
	var js struct {
		State     string `json:"state"`
		Completed int    `json:"completed"`
	}
	if err := json.Unmarshal(jbody, &js); err != nil {
		t.Fatal(err)
	}
	if js.State != "done" {
		t.Fatalf("/v1/jobs/{id} state = %q, want done", js.State)
	}
	_, lbody := get(t, cts, "/v1/jobs/sweep?"+query)
	var ls struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(lbody, &ls); err != nil {
		t.Fatal(err)
	}
	if ls.ID != id {
		t.Fatalf("/v1/jobs/sweep found %q, want %q", ls.ID, id)
	}
}

// TestFleetJobResume: a journal left mid-flight by a killed coordinator is
// resumed by the next one — the job finishes in the background, the sweep is
// then served from the coordinator's cache, and the resume counter proves it
// went through the resume path.
func TestFleetJobResume(t *testing.T) {
	jobDir := t.TempDir()
	spec, _ := service.ParseMachine("vclass", "", experiments.Tiny.MemScale)
	q, _ := service.ParseQuery("Q6")
	dig, err := service.SweepDigest(experiments.Tiny, spec, q)
	if err != nil {
		t.Fatal(err)
	}

	// Simulate the aftermath of a SIGKILL mid-sweep: a journal holding the
	// start record and some points, never finished.
	jm, err := job.Open(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	j0, _, err := jm.Start(string(dig), "sweep", "/v1/sweep?machine=vclass&query=Q6", len(experiments.ProcCounts))
	if err != nil {
		t.Fatal(err)
	}
	pdig := service.MeasureDigest(experiments.Tiny, q, experiments.ProcCounts[0], workload.Options{Spec: spec})
	if err := j0.Point(0, string(pdig)); err != nil {
		t.Fatal(err)
	}

	// The "restarted" coordinator picks the journal up and resumes.
	_, coord, cts := newFleet(t, 2, func(c *Config) { c.JobDir = jobDir })
	waitFor(t, 30*time.Second, "job resumed", func() bool {
		j := coord.Jobs().Get(string(dig))
		return j != nil && j.State() == job.StateDone
	})
	if v := coordMetric(t, coord, "dssmem_fleet_jobs_resumed_total"); v != 1 {
		t.Errorf("dssmem_fleet_jobs_resumed_total = %v, want 1", v)
	}

	// The resumed result is in the coordinator cache: the client's re-GET is
	// a hit and matches the single-node answer byte for byte.
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	_, refBody := get(t, ref, "/v1/sweep?machine=vclass&query=Q6")
	resp, body := get(t, cts, "/v1/sweep?machine=vclass&query=Q6")
	if resp.StatusCode != 200 {
		t.Fatalf("sweep after resume: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("sweep after resume X-Cache = %q, want hit (resume already computed it)", resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(body, refBody) {
		t.Fatalf("resumed sweep differs from single node:\n got %s\nwant %s", body, refBody)
	}
}

// TestFleetRepairPass: an entry held only by a non-owner (the aftermath of a
// failover the hint queue never saw) is copied to its home owner by the
// anti-entropy pass.
func TestFleetRepairPass(t *testing.T) {
	workers, coord, cts := newFleet(t, 2, func(c *Config) {
		c.Heartbeat = -1
		c.MaxAttempts = 1
	})
	get(t, cts, "/healthz") // both active
	waitFor(t, 2*time.Second, "roster active", func() bool {
		return coord.MemberState("w0") == MemberActive && coord.MemberState("w1") == MemberActive
	})

	// Find a digest homed on w0, then plant its entry only on w1.
	dig, path := digestHomedOn(t, coord, "w0")
	get(t, workers[1].ts, path) // w1 computes and caches an entry it does not own

	if n := coord.repairPass(t.Context()); n != 1 {
		t.Fatalf("repairPass repaired %d entries, want 1", n)
	}
	r, err := http.Get(workers[0].ts.URL + "/v1/cache/" + rescache.NSMeasurement + "/" + string(dig))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != 200 {
		t.Fatalf("after repair, owner w0 still misses %s (HTTP %d)", dig.Short(), r.StatusCode)
	}
	// Idempotent: the owner now holds it, so a second pass copies nothing.
	if n := coord.repairPass(t.Context()); n != 0 {
		t.Fatalf("second repairPass repaired %d entries, want 0", n)
	}
}

func readAll(t *testing.T, r *http.Response) []byte {
	t.Helper()
	defer r.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
