package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/experiments"
	"dssmem/internal/job"
	"dssmem/internal/machine"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// ---- fan-out core ----

type fetchResult struct {
	resp *client.Response
	name string
	err  error
}

// raceFetch resolves one fanned-out worker call with verification, failover
// and work stealing, over the current membership snapshot. The call goes to
// the key's ring owner first. If that attempt fails outright (transport
// error, 5xx after the per-worker client's retries) it fails over to the
// next routable worker on the ring immediately; if it is merely slow — no
// answer within StealAfter — the same call is re-issued to the next worker
// while the original keeps running, and the first verified answer wins.
// Stealing is safe because every call is a pure function of its path,
// addressed by content digest: a duplicate execution produces the same
// bytes, and the loser's result is simply discarded.
//
// Every response's X-Digest is checked against want — the coordinator's own
// computation of the content address. A mismatch means the worker is
// misconfigured (wrong preset, wrong version) and is treated as a failure of
// that worker, never served. Returns the winning worker's name alongside the
// response, so callers can queue hints for a down home owner.
func (c *Coordinator) raceFetch(ctx context.Context, key, path string, want rescache.Digest) (*client.Response, string, error) {
	v := c.mem.snapshot()
	if v == nil || v.ring == nil {
		return nil, "", errNoWorkers
	}
	seq := v.ring.Seq(key)
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the losers once a winner returns
	results := make(chan fetchResult, len(seq))

	launched, outstanding := 0, 0
	launch := func() {
		wi := seq[launched]
		launched++
		outstanding++
		name, cl := v.names[wi], v.clients[wi]
		go func() {
			resp, err := cl.Get(fanCtx, path)
			if err == nil {
				if got := resp.Header.Get("X-Digest"); got != string(want) {
					c.workerCalls.With(name, "mismatch").Inc()
					c.mismatches.Inc()
					resp, err = nil, fmt.Errorf("fleet: worker %s answered %s with digest %q, want %q (preset or version skew)",
						name, path, got, want)
				} else {
					c.workerCalls.With(name, "ok").Inc()
				}
			} else if !errors.Is(err, context.Canceled) {
				c.workerCalls.With(name, "error").Inc()
			}
			results <- fetchResult{resp, name, err}
		}()
	}
	launch()

	var stealC <-chan time.Time
	var timer *time.Timer
	if c.cfg.StealAfter > 0 {
		timer = time.NewTimer(c.cfg.StealAfter)
		defer timer.Stop()
		stealC = timer.C
	}

	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.resp, r.name, nil
			}
			if lastErr == nil || !errors.Is(r.err, context.Canceled) {
				lastErr = r.err
			}
			// A worker's definitive non-retriable verdict (bad request,
			// unknown figure) is the same on every worker — the parameters,
			// not the worker, are at fault. Don't burn the rest of the ring.
			var ae *client.APIError
			if errors.As(r.err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
				return nil, "", r.err
			}
			if launched < len(seq) {
				c.failovers.Inc()
				launch()
			} else if outstanding == 0 {
				return nil, "", lastErr
			}
		case <-stealC:
			if launched < len(seq) {
				c.steals.Inc()
				launch()
			}
			timer.Reset(c.cfg.StealAfter)
		case <-ctx.Done():
			return nil, "", fmt.Errorf("fleet: %w", context.Cause(ctx))
		}
	}
}

// fanout is the cache-or-fetch cycle every API handler runs: coordinator
// cache first (memory-only, with singleflight — a thundering herd on one
// digest costs one fan-out), then raceFetch, with extract (when non-nil)
// reducing the worker's body to the cacheable value. A result served by a
// non-owner while the owner is down is queued as a hint for replay.
func (c *Coordinator) fanout(ctx context.Context, ns string, dig rescache.Digest, path string, extract func([]byte) ([]byte, error)) ([]byte, bool, error) {
	fetch := func(runCtx context.Context) ([]byte, error) {
		defer telemetry.FromContext(runCtx).StartPhase(PhaseFanout)()
		resp, servedBy, err := c.raceFetch(runCtx, string(dig), path, dig)
		if err != nil {
			return nil, err
		}
		body := resp.Body
		if extract != nil {
			if body, err = extract(body); err != nil {
				return nil, err
			}
		}
		c.maybeHint(ns, dig, body, servedBy)
		return body, nil
	}
	if c.cfg.DisableCache {
		v, err := fetch(ctx)
		return v, false, err
	}
	return c.store.Do(ctx, ns, dig, fetch)
}

// extractMeasurement pulls the measurement object out of a worker's
// /v1/measure body. The coordinator caches (and re-serves) only this part:
// the wrapper's "cache" word describes the worker's cache at one instant and
// must not be frozen into the coordinator's cache.
func extractMeasurement(body []byte) (json.RawMessage, error) {
	var wrap struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	if err := json.Unmarshal(body, &wrap); err != nil {
		return nil, fmt.Errorf("fleet: undecodable worker measure response: %w", err)
	}
	if len(wrap.Measurement) == 0 {
		return nil, errors.New("fleet: worker measure response has no measurement")
	}
	return wrap.Measurement, nil
}

// ---- API handlers ----

func (c *Coordinator) handleMeasure(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	spec, err := service.ParseMachine(qp.Get("machine"), qp.Get("cpus"), c.cfg.Preset.MemScale)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	q, err := service.ParseQuery(qp.Get("query"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	procs, err := parseIntDefault(qp.Get("procs"), 1)
	if err != nil || procs < 1 {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad procs %q", qp.Get("procs")))
		return
	}
	trial, err := parseIntDefault(qp.Get("trial"), 0)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad trial %q", qp.Get("trial")))
		return
	}
	opts := workload.Options{Spec: spec, Trial: trial, ColdRun: boolParam(qp.Get("cold"))}
	dig := service.MeasureDigest(c.cfg.Preset, q, procs, opts)

	// The original query string is forwarded verbatim: workers parse it with
	// the same code that fed the digest above, so the worker's X-Digest must
	// agree or raceFetch rejects the answer.
	meas, hit, err := c.fanout(r.Context(), rescache.NSMeasurement, dig, "/v1/measure?"+r.URL.RawQuery,
		func(body []byte) ([]byte, error) { return extractMeasurement(body) })
	if err != nil {
		c.failFetch(w, err)
		return
	}
	body, err := json.Marshal(struct {
		Digest      string          `json:"digest"`
		Cache       string          `json:"cache"`
		Measurement json.RawMessage `json:"measurement"`
	}{string(dig), cacheWord(hit), meas})
	if err != nil {
		c.fail(w, http.StatusInternalServerError, false, 0, err)
		return
	}
	c.respondRaw(w, r, hit, dig, body)
}

func (c *Coordinator) handleFigure(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad figure id %q", r.PathValue("id")))
		return
	}
	dig, err := service.FigureDigest(c.cfg.Preset, id)
	if err != nil {
		c.fail(w, http.StatusInternalServerError, false, 0, err)
		return
	}
	// A figure is one indivisible computation; it routes whole to the
	// digest's owner and the body is cached and re-served verbatim.
	raw, hit, err := c.fanout(r.Context(), rescache.NSFigure, dig, "/v1/figure/"+strconv.Itoa(id), nil)
	if err != nil {
		c.failFetch(w, err)
		return
	}
	c.respondRaw(w, r, hit, dig, raw)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	spec, q, dig, err := c.parseSweep(qp)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}

	// The sweep is a durable job from here on: the journal records its
	// identity and every completed point, so a coordinator killed mid-sweep
	// resumes it on restart. Reattaching callers find it under X-Job-ID.
	j, _, jerr := c.jobs.Start(string(dig), "sweep", "/v1/sweep?"+r.URL.RawQuery, len(experiments.ProcCounts))
	if jerr == nil {
		w.Header().Set("X-Job-ID", string(dig))
	}

	raw, hit, err := c.runSweep(r.Context(), qp, spec, q, dig, j)
	if err != nil {
		if j != nil {
			j.Fail(err)
		}
		c.failFetch(w, err)
		return
	}
	if j != nil {
		j.Done()
	}
	c.respondRaw(w, r, hit, dig, raw)
}

// parseSweep resolves a sweep's query parameters to its machine spec, query
// and content digest — shared by the live handler, the job lookup endpoint,
// and the restart resume loop.
func (c *Coordinator) parseSweep(qp url.Values) (machine.Spec, tpch.QueryID, rescache.Digest, error) {
	spec, err := service.ParseMachine(qp.Get("machine"), qp.Get("cpus"), c.cfg.Preset.MemScale)
	if err != nil {
		return machine.Spec{}, 0, "", err
	}
	q, err := service.ParseQuery(qp.Get("query"))
	if err != nil {
		return machine.Spec{}, 0, "", err
	}
	dig, err := service.SweepDigest(c.cfg.Preset, spec, q)
	if err != nil {
		return machine.Spec{}, 0, "", err
	}
	return spec, q, dig, nil
}

// runSweep is where sharding earns its keep: each process-count point is an
// independent measurement with its own content digest and its own home
// worker, so the curve's points compute on different machines in parallel.
// The coordinator reassembles them in ProcCounts order into a struct shaped
// exactly like core.Series (same field order, no tags), so the merged body
// is byte-identical to a single node's — the simulations are deterministic
// and JSON re-encoding is stable, so the splice is invisible to clients.
// Each completed point is journaled on j before the sweep is assembled.
func (c *Coordinator) runSweep(ctx context.Context, qp url.Values, spec machine.Spec, q tpch.QueryID, dig rescache.Digest, j *job.Job) ([]byte, bool, error) {
	fetch := func(runCtx context.Context) ([]byte, error) {
		defer telemetry.FromContext(runCtx).StartPhase(PhaseFanout)()
		points := make([]json.RawMessage, len(experiments.ProcCounts))
		errs := make([]error, len(experiments.ProcCounts))
		var wg sync.WaitGroup
		for i, n := range experiments.ProcCounts {
			pdig := service.MeasureDigest(c.cfg.Preset, q, n, workload.Options{Spec: spec})
			vals := url.Values{}
			for _, p := range []string{"machine", "cpus", "query"} {
				if v := qp.Get(p); v != "" {
					vals.Set(p, v)
				}
			}
			vals.Set("procs", strconv.Itoa(n))
			path := "/v1/measure?" + vals.Encode()
			wg.Add(1)
			go func(i int, path string, pdig rescache.Digest) {
				defer wg.Done()
				resp, servedBy, err := c.raceFetch(runCtx, string(pdig), path, pdig)
				if err != nil {
					errs[i] = err
					return
				}
				c.sweepPoints.With(resp.Header.Get("X-Cache")).Inc()
				points[i], errs[i] = extractMeasurement(resp.Body)
				if errs[i] != nil {
					return
				}
				if !c.cfg.DisableCache {
					// Seed the per-point cache too: a later /v1/measure for
					// this exact point is answered locally.
					c.store.Put(rescache.NSMeasurement, pdig, points[i])
				}
				c.maybeHint(rescache.NSMeasurement, pdig, points[i], servedBy)
				if j != nil {
					j.Point(i, string(pdig))
				}
			}(i, path, pdig)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return json.Marshal(struct {
			Machine string
			Query   string
			Points  []json.RawMessage
		}{spec.Name, q.String(), points})
	}

	if c.cfg.DisableCache {
		raw, err := fetch(ctx)
		return raw, false, err
	}
	return c.store.Do(ctx, rescache.NSSweep, dig, fetch)
}

// ---- durable job resume ----

// resumeUnfinished launches the background resume of every journaled job
// still running after a restart. Completed points come back from the
// workers' caches, so a resume recomputes nothing that finished before the
// kill.
func (c *Coordinator) resumeUnfinished() {
	var unfinished []*job.Job
	for _, j := range c.jobs.Jobs() {
		if j.State() == job.StateRunning {
			unfinished = append(unfinished, j)
		}
	}
	if len(unfinished) == 0 {
		return
	}
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		for _, j := range unfinished {
			c.resumeJob(j)
		}
	}()
}

// resumeJob re-runs one journaled sweep, waiting out an unconverged fleet:
// right after a restart the workers may not have joined yet, so retriable
// failures back off and try again until the fleet can answer.
func (c *Coordinator) resumeJob(j *job.Job) {
	u, err := url.Parse(j.Path())
	if err != nil {
		j.Fail(fmt.Errorf("fleet: resume: unparseable job path %q: %w", j.Path(), err))
		return
	}
	qp := u.Query()
	spec, q, dig, err := c.parseSweep(qp)
	if err != nil || string(dig) != j.ID() {
		if err == nil {
			err = fmt.Errorf("fleet: resume: job %s path resolves to digest %s (preset or version skew)", j.ID(), dig.Short())
		}
		j.Fail(err)
		return
	}
	backoff := 200 * time.Millisecond
	for attempt := 0; attempt < 100; attempt++ {
		if c.baseCtx.Err() != nil {
			return
		}
		_, _, err = c.runSweep(c.baseCtx, qp, spec, q, dig, j)
		if err == nil {
			j.Done()
			c.jobsResumed.Inc()
			if c.cfg.Log != nil {
				c.cfg.Log.Info("resumed job", "job", j.ID(), "kind", "sweep", "query", u.RawQuery)
			}
			return
		}
		select {
		case <-c.baseCtx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
	j.Fail(fmt.Errorf("fleet: resume gave up: %w", err))
}

// ---- membership + job endpoints ----

// handleJoin admits or heartbeats a member. A new name registers as probing
// and is verified by an immediate half-open probe — a worker is routable
// when the coordinator has seen it answer, not merely heard it claim to be
// alive. A known member's heartbeat refreshes an active member, or kicks an
// ejected one into its re-admission probe.
func (c *Coordinator) handleJoin(w http.ResponseWriter, r *http.Request) {
	var req struct {
		Name string `json:"name"`
		URL  string `json:"url"`
	}
	if err := json.NewDecoder(io.LimitReader(r.Body, 4096)).Decode(&req); err != nil {
		writeJSONErr(w, http.StatusBadRequest, false, fmt.Errorf("fleet: bad join body: %w", err))
		return
	}
	req.Name = strings.TrimSpace(req.Name)
	u, err := url.Parse(req.URL)
	if req.Name == "" || err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		writeJSONErr(w, http.StatusBadRequest, false,
			fmt.Errorf("fleet: join needs a name and an http[s] URL, got name=%q url=%q", req.Name, req.URL))
		return
	}
	wk := Worker{Name: req.Name, URL: strings.TrimRight(req.URL, "/")}

	created, _, err := c.mem.add(wk, MemberProbing)
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, false, err)
		return
	}
	if created {
		c.joins.Inc()
		c.asyncProbe(wk.Name)
	} else {
		c.heartbeats.Inc()
		if err := c.mem.setURL(wk.Name, wk.URL); err != nil {
			writeJSONErr(w, http.StatusBadRequest, false, err)
			return
		}
		switch c.mem.state(wk.Name) {
		case MemberActive:
			c.mem.observe(wk.Name, true, c.cfg.EjectAfter)
		case MemberEjected:
			// Half-open: the heartbeat alone does not re-admit; a probe must
			// see the worker answer first.
			c.mem.transition(wk.Name, MemberProbing)
			c.asyncProbe(wk.Name)
		case MemberPending:
			c.asyncProbe(wk.Name)
		case MemberProbing:
			// probe already in flight
		}
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status    string  `json:"status"`
		State     string  `json:"state"`
		Heartbeat float64 `json:"heartbeat_seconds"`
	}{"accepted", c.mem.state(wk.Name).String(), c.cfg.Heartbeat.Seconds()})
}

func (c *Coordinator) asyncProbe(name string) {
	c.bg.Add(1)
	go func() {
		defer c.bg.Done()
		c.probeMember(name)
	}()
}

func (c *Coordinator) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := c.jobs.Jobs()
	snaps := make([]job.Snapshot, len(jobs))
	for i, j := range jobs {
		snaps[i] = j.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Jobs []job.Snapshot `json:"jobs"`
	}{snaps})
}

func (c *Coordinator) handleJob(w http.ResponseWriter, r *http.Request) {
	j := c.jobs.Get(r.PathValue("id"))
	if j == nil {
		writeJSONErr(w, http.StatusNotFound, false, fmt.Errorf("fleet: unknown job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Snapshot())
}

// handleJobLookup finds the sweep job for a set of sweep parameters — the
// reattach path for a client that lost the response (and its X-Job-ID
// header) to a coordinator crash.
func (c *Coordinator) handleJobLookup(w http.ResponseWriter, r *http.Request) {
	_, _, dig, err := c.parseSweep(r.URL.Query())
	if err != nil {
		writeJSONErr(w, http.StatusBadRequest, false, err)
		return
	}
	j := c.jobs.Get(string(dig))
	if j == nil {
		writeJSONErr(w, http.StatusNotFound, false, fmt.Errorf("fleet: no job for sweep %s", dig.Short()))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Snapshot())
}

// writeJSONErr is the control-plane error writer: same body shape as fail,
// without touching the API request counters (these endpoints are not
// instrumented).
func writeJSONErr(w http.ResponseWriter, status int, retriable bool, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
		Status    int    `json:"status"`
	}{err.Error(), retriable, status})
}

// ---- anti-entropy repair ----

// repairLoop runs the digest-comparison pass every RepairInterval.
func (c *Coordinator) repairLoop() {
	defer c.bg.Done()
	t := time.NewTicker(c.cfg.RepairInterval)
	defer t.Stop()
	for {
		select {
		case <-c.baseCtx.Done():
			return
		case <-t.C:
			c.repairPass(c.baseCtx)
		}
	}
}

// maxRepairsPerPass bounds one pass's copy work so a freshly rejoined
// worker's backlog spreads over several intervals instead of one burst.
const maxRepairsPerPass = 256

// repairPass compares digest listings across active members and copies every
// entry held by a non-owner but missing at its active home owner: fetch the
// framed entry from a holder, verify it, PUT it to the owner. This is the
// backstop behind hinted handoff — it heals entries the hint queue dropped,
// results that predate a membership change, and anything stolen onto the
// wrong worker. Returns how many entries were copied.
func (c *Coordinator) repairPass(ctx context.Context) int {
	v := c.mem.snapshot()
	type peer struct {
		name string
		url  string
		cl   *client.Client
	}
	var actives []peer
	for _, mi := range c.mem.list() {
		if mi.State == MemberActive {
			actives = append(actives, peer{mi.Worker.Name, mi.Worker.URL, mi.Client})
		}
	}
	if len(actives) < 2 {
		return 0 // nothing to compare against
	}
	repaired := 0
	for _, ns := range []string{rescache.NSMeasurement, rescache.NSFigure, rescache.NSSweep, rescache.NSWarm} {
		holds := make(map[string]map[string]bool, len(actives)) // member -> digest set
		var order []string                                      // digests in first-seen order
		holder := make(map[string]peer)                         // digest -> one member holding it
		for _, p := range actives {
			resp, err := p.cl.Get(ctx, "/v1/cache/"+ns)
			if err != nil {
				c.repairErrs.Inc()
				continue
			}
			var listing struct {
				Digests []string `json:"digests"`
			}
			if err := json.Unmarshal(resp.Body, &listing); err != nil {
				c.repairErrs.Inc()
				continue
			}
			set := make(map[string]bool, len(listing.Digests))
			for _, d := range listing.Digests {
				set[d] = true
				if _, seen := holder[d]; !seen {
					holder[d] = p
					order = append(order, d)
				}
			}
			holds[p.name] = set
		}
		for _, d := range order {
			if repaired >= maxRepairsPerPass || ctx.Err() != nil {
				return repaired
			}
			owner, ok := v.homeOwner(d)
			if !ok || c.mem.state(owner) != MemberActive {
				continue
			}
			if holds[owner] == nil || holds[owner][d] {
				continue // owner holds it (or its listing failed: skip, next pass)
			}
			src := holder[d]
			if src.name == owner {
				continue
			}
			resp, err := src.cl.Get(ctx, "/v1/cache/"+ns+"/"+d)
			if err != nil {
				c.repairErrs.Inc()
				continue
			}
			payload, err := rescache.UnframeEntry(resp.Body)
			if err != nil {
				c.repairErrs.Inc()
				continue
			}
			ownerInfo, ok := c.memberByName(owner)
			if !ok {
				continue
			}
			if err := putEntry(ctx, c.scrape, ownerInfo.Worker.URL, ns, rescache.Digest(d), payload); err != nil {
				c.repairErrs.Inc()
				continue
			}
			repaired++
			c.repairs.Inc()
		}
	}
	return repaired
}

// ---- health and metrics aggregation ----

type workerHealth struct {
	Name   string `json:"name"`
	State  string `json:"state"`  // membership: active | pending | probing | ejected
	Status string `json:"status"` // this scrape: ok | degraded | down
	Error  string `json:"error,omitempty"`
}

// handleHealthz aggregates the fleet's health and doubles as a pull
// observation round: every member is scraped, the results feed the
// membership state machine (so a restarted worker re-admits on the next
// health check, without waiting for the ticker), and the verdict reflects
// the post-observation states. "ok" means every member answers healthy;
// "degraded" means the fleet serves but is not converged — a member is
// still booting (pending, never seen), mid-probe, reporting a degraded
// store, or the fleet is empty; "partial" means a member that had been
// alive is unreachable or ejected (its keyspace fails over). Always 200: a
// coordinator with a degraded fleet is serving, not dead.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	members := c.mem.list()
	type scraped struct {
		i    int
		body []byte
		err  error
	}
	ch := make(chan scraped, len(members))
	for i := range members {
		go func(i int) {
			b, err := c.scrapeURL(r.Context(), members[i].Worker, "/healthz")
			ch <- scraped{i, b, err}
		}(i)
	}
	results := make([]scraped, len(members))
	for range members {
		s := <-ch
		results[s.i] = s
	}
	// Feed observations first: state below reflects this scrape.
	for i, mi := range members {
		c.mem.observe(mi.Worker.Name, results[i].err == nil, c.cfg.EjectAfter)
	}

	status := "ok"
	if len(members) == 0 {
		status = "degraded" // an empty fleet is still converging
	}
	health := make([]workerHealth, len(members))
	for i, mi := range members {
		name := mi.Worker.Name
		state := c.mem.state(name)
		s := results[i]
		h := workerHealth{Name: name, State: state.String(), Status: "ok"}
		if s.err == nil {
			var wh struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(s.body, &wh); err != nil {
				s.err = fmt.Errorf("fleet: %s: undecodable healthz: %w", name, err)
			} else if wh.Status != "ok" {
				h.Status = wh.Status
				status = worseStatus(status, "degraded")
			}
		}
		if s.err != nil {
			h.Status = "down"
			h.Error = s.err.Error()
			c.scrapeErrs.With(name).Inc()
			c.workerUp.With(name).Set(0)
			if state == MemberPending && mi.LastSeen.IsZero() {
				// Never seen: the fleet is still starting, not broken.
				status = worseStatus(status, "degraded")
			} else {
				status = worseStatus(status, "partial")
			}
		} else {
			c.workerUp.With(name).Set(1)
		}
		health[i] = h
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status  string         `json:"status"`
		Role    string         `json:"role"`
		Preset  string         `json:"preset"`
		Workers []workerHealth `json:"workers"`
		UptimeS int64          `json:"uptime_seconds"`
	}{status, "coordinator", c.cfg.Preset.Name, health, int64(time.Since(c.start).Seconds())})
}

// worseStatus ranks fleet health verdicts: ok < degraded < partial.
func worseStatus(a, b string) string {
	rank := map[string]int{"ok": 0, "degraded": 1, "partial": 2}
	if rank[b] > rank[a] {
		return b
	}
	return a
}

// handleMetrics serves the fleet rollup: the coordinator's own families
// (dssmem_fleet_*) followed by every reachable member's families with a
// `worker` label injected — worker families keep their dssmem_* names, so
// the two namespaces never collide and the merged page stays lint-clean.
// An unreachable worker's series are absent (and counted), never fabricated.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	members := c.mem.list()
	type scraped struct {
		i    int
		body []byte
		err  error
	}
	ch := make(chan scraped, len(members))
	for i := range members {
		go func(i int) {
			b, err := c.scrapeURL(r.Context(), members[i].Worker, "/metrics")
			ch <- scraped{i, b, err}
		}(i)
	}
	bodies := make([][]byte, len(members))
	for range members {
		s := <-ch
		if s.err != nil {
			c.scrapeErrs.With(members[s.i].Worker.Name).Inc()
			continue
		}
		bodies[s.i] = s.body
	}
	srcs := make([]telemetry.Exposition, 0, len(members))
	for i, b := range bodies { // registration order, not arrival order
		if b != nil {
			srcs = append(srcs, telemetry.Exposition{Source: members[i].Worker.Name, Text: string(b)})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WriteText(w)
	if err := telemetry.MergeExpositions(w, "worker", srcs); err != nil && c.cfg.Log != nil {
		c.cfg.Log.Error("metrics rollup failed", "err", err)
	}
}

// scrapeURL fetches one worker-local endpoint within ScrapeTimeout.
func (c *Coordinator) scrapeURL(ctx context.Context, wk Worker, path string) ([]byte, error) {
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, wk.URL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.scrape.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: scraping %s%s: %w", wk.Name, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("fleet: scraping %s%s: %w", wk.Name, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: scraping %s%s: HTTP %d", wk.Name, path, resp.StatusCode)
	}
	return b, nil
}

// ---- worker-side peer fill ----

// NewPeerFetch builds the worker-side peer-fill tier for rescache: on a full
// local miss, ask the fleet peers holding the digest's neighborhood (ring
// order, up to maxTries peers) for the entry before recomputing. The peers
// answer from their local tiers only — /v1/cache never computes — so the
// worst case is maxTries cheap 404s, and the fetched bytes arrive in the
// checksummed frame and are verified before use. maxTries 0 means 2: the
// home worker plus one successor covers both steady state and one recent
// remap or steal.
func NewPeerFetch(peers []Worker, httpc *http.Client, maxTries int) (rescache.PeerFetch, error) {
	if len(peers) == 0 {
		return nil, errors.New("fleet: peer fetch needs at least one peer")
	}
	if maxTries <= 0 {
		maxTries = 2
	}
	if maxTries > len(peers) {
		maxTries = len(peers)
	}
	names := make([]string, len(peers))
	clients := make([]*client.Client, len(peers))
	for i, p := range peers {
		if p.Name == "" || p.URL == "" {
			return nil, fmt.Errorf("fleet: peer %d needs a name and a URL", i)
		}
		names[i] = p.Name
		cl, err := client.New(client.Config{
			BaseURL:     p.URL,
			HTTP:        httpc,
			MaxAttempts: 1, // a peer fetch is an optimization; never retry-storm it
			Seed:        int64(i + 1),
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %s: %w", p.Name, err)
		}
		clients[i] = cl
	}
	ring := NewRing(names, 0)
	return func(ctx context.Context, ns string, d rescache.Digest) ([]byte, error) {
		var lastErr error
		for _, wi := range ring.Seq(string(d))[:maxTries] {
			resp, err := clients[wi].Get(ctx, "/v1/cache/"+ns+"/"+string(d))
			if err == nil {
				return resp.Body, nil
			}
			if ctx.Err() != nil {
				return nil, err
			}
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
				continue // healthy miss: this peer just doesn't hold it
			}
			lastErr = err // transport-level trouble: feeds the peer breaker
		}
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, rescache.ErrPeerMiss
	}, nil
}

// ---- small parsers (mirror internal/service's parameter discipline) ----

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func (c *Coordinator) respondRaw(w http.ResponseWriter, r *http.Request, hit bool, dig rescache.Digest, body []byte) {
	q := telemetry.FromContext(r.Context())
	q.SetDigest(string(dig))
	q.SetCache(cacheWord(hit))
	defer q.StartPhase(telemetry.PhaseEncode)()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", cacheWord(hit))
	h.Set("X-Digest", string(dig))
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

func parseIntDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func boolParam(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
