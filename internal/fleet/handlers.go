package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/experiments"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
	"dssmem/internal/telemetry"
	"dssmem/internal/workload"
)

// ---- fan-out core ----

type fetchResult struct {
	resp *client.Response
	err  error
}

// raceFetch resolves one fanned-out worker call with verification, failover
// and work stealing. The call goes to the key's ring owner first. If that
// attempt fails outright (transport error, 5xx after the per-worker client's
// retries) it fails over to the next worker on the ring immediately; if it is
// merely slow — no answer within StealAfter — the same call is re-issued to
// the next worker while the original keeps running, and the first verified
// answer wins. Stealing is safe because every call is a pure function of its
// path, addressed by content digest: a duplicate execution produces the same
// bytes, and the loser's result is simply discarded.
//
// Every response's X-Digest is checked against want — the coordinator's own
// computation of the content address. A mismatch means the worker is
// misconfigured (wrong preset, wrong version) and is treated as a failure of
// that worker, never served.
func (c *Coordinator) raceFetch(ctx context.Context, key, path string, want rescache.Digest) (*client.Response, error) {
	seq := c.ring.Seq(key)
	fanCtx, cancel := context.WithCancel(ctx)
	defer cancel() // releases the losers once a winner returns
	results := make(chan fetchResult, len(seq))

	launched, outstanding := 0, 0
	launch := func() {
		wi := seq[launched]
		launched++
		outstanding++
		name, cl := c.cfg.Workers[wi].Name, c.clients[wi]
		go func() {
			resp, err := cl.Get(fanCtx, path)
			if err == nil {
				if got := resp.Header.Get("X-Digest"); got != string(want) {
					c.workerCalls.With(name, "mismatch").Inc()
					c.mismatches.Inc()
					resp, err = nil, fmt.Errorf("fleet: worker %s answered %s with digest %q, want %q (preset or version skew)",
						name, path, got, want)
				} else {
					c.workerCalls.With(name, "ok").Inc()
				}
			} else if !errors.Is(err, context.Canceled) {
				c.workerCalls.With(name, "error").Inc()
			}
			results <- fetchResult{resp, err}
		}()
	}
	launch()

	var stealC <-chan time.Time
	var timer *time.Timer
	if c.cfg.StealAfter > 0 {
		timer = time.NewTimer(c.cfg.StealAfter)
		defer timer.Stop()
		stealC = timer.C
	}

	var lastErr error
	for {
		select {
		case r := <-results:
			outstanding--
			if r.err == nil {
				return r.resp, nil
			}
			if lastErr == nil || !errors.Is(r.err, context.Canceled) {
				lastErr = r.err
			}
			// A worker's definitive non-retriable verdict (bad request,
			// unknown figure) is the same on every worker — the parameters,
			// not the worker, are at fault. Don't burn the rest of the ring.
			var ae *client.APIError
			if errors.As(r.err, &ae) && ae.Status < 500 && ae.Status != http.StatusTooManyRequests {
				return nil, r.err
			}
			if launched < len(seq) {
				c.failovers.Inc()
				launch()
			} else if outstanding == 0 {
				return nil, lastErr
			}
		case <-stealC:
			if launched < len(seq) {
				c.steals.Inc()
				launch()
			}
			timer.Reset(c.cfg.StealAfter)
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: %w", context.Cause(ctx))
		}
	}
}

// fanout is the cache-or-fetch cycle every API handler runs: coordinator
// cache first (memory-only, with singleflight — a thundering herd on one
// digest costs one fan-out), then raceFetch, with extract (when non-nil)
// reducing the worker's body to the cacheable value.
func (c *Coordinator) fanout(ctx context.Context, ns string, dig rescache.Digest, path string, extract func([]byte) ([]byte, error)) ([]byte, bool, error) {
	fetch := func(runCtx context.Context) ([]byte, error) {
		defer telemetry.FromContext(runCtx).StartPhase(PhaseFanout)()
		resp, err := c.raceFetch(runCtx, string(dig), path, dig)
		if err != nil {
			return nil, err
		}
		if extract != nil {
			return extract(resp.Body)
		}
		return resp.Body, nil
	}
	if c.cfg.DisableCache {
		v, err := fetch(ctx)
		return v, false, err
	}
	return c.store.Do(ctx, ns, dig, fetch)
}

// extractMeasurement pulls the measurement object out of a worker's
// /v1/measure body. The coordinator caches (and re-serves) only this part:
// the wrapper's "cache" word describes the worker's cache at one instant and
// must not be frozen into the coordinator's cache.
func extractMeasurement(body []byte) (json.RawMessage, error) {
	var wrap struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	if err := json.Unmarshal(body, &wrap); err != nil {
		return nil, fmt.Errorf("fleet: undecodable worker measure response: %w", err)
	}
	if len(wrap.Measurement) == 0 {
		return nil, errors.New("fleet: worker measure response has no measurement")
	}
	return wrap.Measurement, nil
}

// ---- API handlers ----

func (c *Coordinator) handleMeasure(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	spec, err := service.ParseMachine(qp.Get("machine"), qp.Get("cpus"), c.cfg.Preset.MemScale)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	q, err := service.ParseQuery(qp.Get("query"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	procs, err := parseIntDefault(qp.Get("procs"), 1)
	if err != nil || procs < 1 {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad procs %q", qp.Get("procs")))
		return
	}
	trial, err := parseIntDefault(qp.Get("trial"), 0)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad trial %q", qp.Get("trial")))
		return
	}
	opts := workload.Options{Spec: spec, Trial: trial, ColdRun: boolParam(qp.Get("cold"))}
	dig := service.MeasureDigest(c.cfg.Preset, q, procs, opts)

	// The original query string is forwarded verbatim: workers parse it with
	// the same code that fed the digest above, so the worker's X-Digest must
	// agree or raceFetch rejects the answer.
	meas, hit, err := c.fanout(r.Context(), rescache.NSMeasurement, dig, "/v1/measure?"+r.URL.RawQuery,
		func(body []byte) ([]byte, error) { return extractMeasurement(body) })
	if err != nil {
		c.failFetch(w, err)
		return
	}
	body, err := json.Marshal(struct {
		Digest      string          `json:"digest"`
		Cache       string          `json:"cache"`
		Measurement json.RawMessage `json:"measurement"`
	}{string(dig), cacheWord(hit), meas})
	if err != nil {
		c.fail(w, http.StatusInternalServerError, false, 0, err)
		return
	}
	c.respondRaw(w, r, hit, dig, body)
}

func (c *Coordinator) handleFigure(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, fmt.Errorf("bad figure id %q", r.PathValue("id")))
		return
	}
	dig, err := service.FigureDigest(c.cfg.Preset, id)
	if err != nil {
		c.fail(w, http.StatusInternalServerError, false, 0, err)
		return
	}
	// A figure is one indivisible computation; it routes whole to the
	// digest's owner and the body is cached and re-served verbatim.
	raw, hit, err := c.fanout(r.Context(), rescache.NSFigure, dig, "/v1/figure/"+strconv.Itoa(id), nil)
	if err != nil {
		c.failFetch(w, err)
		return
	}
	c.respondRaw(w, r, hit, dig, raw)
}

func (c *Coordinator) handleSweep(w http.ResponseWriter, r *http.Request) {
	qp := r.URL.Query()
	spec, err := service.ParseMachine(qp.Get("machine"), qp.Get("cpus"), c.cfg.Preset.MemScale)
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	q, err := service.ParseQuery(qp.Get("query"))
	if err != nil {
		c.fail(w, http.StatusBadRequest, false, 0, err)
		return
	}
	dig, err := service.SweepDigest(c.cfg.Preset, spec, q)
	if err != nil {
		c.fail(w, http.StatusInternalServerError, false, 0, err)
		return
	}

	// The sweep is where sharding earns its keep: each process-count point is
	// an independent measurement with its own content digest and its own home
	// worker, so the curve's points compute on different machines in
	// parallel. The coordinator reassembles them in ProcCounts order into a
	// struct shaped exactly like core.Series (same field order, no tags), so
	// the merged body is byte-identical to a single node's — the simulations
	// are deterministic and JSON re-encoding is stable, so the splice is
	// invisible to clients.
	fetch := func(runCtx context.Context) ([]byte, error) {
		defer telemetry.FromContext(runCtx).StartPhase(PhaseFanout)()
		points := make([]json.RawMessage, len(experiments.ProcCounts))
		errs := make([]error, len(experiments.ProcCounts))
		var wg sync.WaitGroup
		for i, n := range experiments.ProcCounts {
			pdig := service.MeasureDigest(c.cfg.Preset, q, n, workload.Options{Spec: spec})
			vals := url.Values{}
			for _, p := range []string{"machine", "cpus", "query"} {
				if v := qp.Get(p); v != "" {
					vals.Set(p, v)
				}
			}
			vals.Set("procs", strconv.Itoa(n))
			path := "/v1/measure?" + vals.Encode()
			wg.Add(1)
			go func(i int, path string, pdig rescache.Digest) {
				defer wg.Done()
				resp, err := c.raceFetch(runCtx, string(pdig), path, pdig)
				if err != nil {
					errs[i] = err
					return
				}
				points[i], errs[i] = extractMeasurement(resp.Body)
				if errs[i] == nil && !c.cfg.DisableCache {
					// Seed the per-point cache too: a later /v1/measure for
					// this exact point is answered locally.
					c.store.Put(rescache.NSMeasurement, pdig, points[i])
				}
			}(i, path, pdig)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, err
			}
		}
		return json.Marshal(struct {
			Machine string
			Query   string
			Points  []json.RawMessage
		}{spec.Name, q.String(), points})
	}

	var raw []byte
	var hit bool
	if c.cfg.DisableCache {
		raw, err = fetch(r.Context())
	} else {
		raw, hit, err = c.store.Do(r.Context(), rescache.NSSweep, dig, fetch)
	}
	if err != nil {
		c.failFetch(w, err)
		return
	}
	c.respondRaw(w, r, hit, dig, raw)
}

// ---- health and metrics aggregation ----

type workerHealth struct {
	Name   string `json:"name"`
	Status string `json:"status"` // ok | degraded | down
	Error  string `json:"error,omitempty"`
}

// handleHealthz aggregates the fleet's health: "ok" when every worker
// answers healthy, "degraded" when all answer but at least one runs
// memory-only, "partial" when at least one worker is unreachable (the fleet
// still serves — its keyspace fails over — but with reduced capacity).
// Always 200: a coordinator with a degraded fleet is serving, not dead.
func (c *Coordinator) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type scraped struct {
		i    int
		body []byte
		err  error
	}
	ch := make(chan scraped, len(c.cfg.Workers))
	for i := range c.cfg.Workers {
		go func(i int) {
			b, err := c.scrapeWorker(r.Context(), i, "/healthz")
			ch <- scraped{i, b, err}
		}(i)
	}
	health := make([]workerHealth, len(c.cfg.Workers))
	status := "ok"
	for range c.cfg.Workers {
		s := <-ch
		name := c.cfg.Workers[s.i].Name
		h := workerHealth{Name: name, Status: "ok"}
		if s.err == nil {
			var wh struct {
				Status string `json:"status"`
			}
			if err := json.Unmarshal(s.body, &wh); err != nil {
				s.err = fmt.Errorf("fleet: %s: undecodable healthz: %w", name, err)
			} else if wh.Status != "ok" {
				h.Status = wh.Status
				if status == "ok" {
					status = "degraded"
				}
			}
		}
		if s.err != nil {
			h.Status = "down"
			h.Error = s.err.Error()
			c.scrapeErrs.With(name).Inc()
			status = "partial"
			c.workerUp.With(name).Set(0)
		} else {
			c.workerUp.With(name).Set(1)
		}
		health[s.i] = h
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status  string         `json:"status"`
		Role    string         `json:"role"`
		Preset  string         `json:"preset"`
		Workers []workerHealth `json:"workers"`
		UptimeS int64          `json:"uptime_seconds"`
	}{status, "coordinator", c.cfg.Preset.Name, health, int64(time.Since(c.start).Seconds())})
}

// handleMetrics serves the fleet rollup: the coordinator's own families
// (dssmem_fleet_*) followed by every reachable worker's families with a
// `worker` label injected — worker families keep their dssmem_* names, so
// the two namespaces never collide and the merged page stays lint-clean.
// An unreachable worker's series are absent (and counted), never fabricated.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	type scraped struct {
		i    int
		body []byte
		err  error
	}
	ch := make(chan scraped, len(c.cfg.Workers))
	for i := range c.cfg.Workers {
		go func(i int) {
			b, err := c.scrapeWorker(r.Context(), i, "/metrics")
			ch <- scraped{i, b, err}
		}(i)
	}
	srcs := make([]telemetry.Exposition, 0, len(c.cfg.Workers))
	bodies := make([][]byte, len(c.cfg.Workers))
	for range c.cfg.Workers {
		s := <-ch
		if s.err != nil {
			c.scrapeErrs.With(c.cfg.Workers[s.i].Name).Inc()
			continue
		}
		bodies[s.i] = s.body
	}
	for i, b := range bodies { // roster order, not arrival order
		if b != nil {
			srcs = append(srcs, telemetry.Exposition{Source: c.cfg.Workers[i].Name, Text: string(b)})
		}
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	c.reg.WriteText(w)
	if err := telemetry.MergeExpositions(w, "worker", srcs); err != nil && c.cfg.Log != nil {
		c.cfg.Log.Error("metrics rollup failed", "err", err)
	}
}

// scrapeWorker fetches one worker-local endpoint within ScrapeTimeout.
func (c *Coordinator) scrapeWorker(ctx context.Context, i int, path string) ([]byte, error) {
	w := c.cfg.Workers[i]
	sctx, cancel := context.WithTimeout(ctx, c.cfg.ScrapeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet, w.URL+path, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.scrape.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: scraping %s%s: %w", w.Name, path, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return nil, fmt.Errorf("fleet: scraping %s%s: %w", w.Name, path, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: scraping %s%s: HTTP %d", w.Name, path, resp.StatusCode)
	}
	return b, nil
}

// ---- worker-side peer fill ----

// NewPeerFetch builds the worker-side peer-fill tier for rescache: on a full
// local miss, ask the fleet peers holding the digest's neighborhood (ring
// order, up to maxTries peers) for the entry before recomputing. The peers
// answer from their local tiers only — /v1/cache never computes — so the
// worst case is maxTries cheap 404s, and the fetched bytes arrive in the
// checksummed frame and are verified before use. maxTries 0 means 2: the
// home worker plus one successor covers both steady state and one recent
// remap or steal.
func NewPeerFetch(peers []Worker, httpc *http.Client, maxTries int) (rescache.PeerFetch, error) {
	if len(peers) == 0 {
		return nil, errors.New("fleet: peer fetch needs at least one peer")
	}
	if maxTries <= 0 {
		maxTries = 2
	}
	if maxTries > len(peers) {
		maxTries = len(peers)
	}
	names := make([]string, len(peers))
	clients := make([]*client.Client, len(peers))
	for i, p := range peers {
		if p.Name == "" || p.URL == "" {
			return nil, fmt.Errorf("fleet: peer %d needs a name and a URL", i)
		}
		names[i] = p.Name
		cl, err := client.New(client.Config{
			BaseURL:     p.URL,
			HTTP:        httpc,
			MaxAttempts: 1, // a peer fetch is an optimization; never retry-storm it
			Seed:        int64(i + 1),
		})
		if err != nil {
			return nil, fmt.Errorf("fleet: peer %s: %w", p.Name, err)
		}
		clients[i] = cl
	}
	ring := NewRing(names, 0)
	return func(ctx context.Context, ns string, d rescache.Digest) ([]byte, error) {
		var lastErr error
		for _, wi := range ring.Seq(string(d))[:maxTries] {
			resp, err := clients[wi].Get(ctx, "/v1/cache/"+ns+"/"+string(d))
			if err == nil {
				return resp.Body, nil
			}
			if ctx.Err() != nil {
				return nil, err
			}
			var ae *client.APIError
			if errors.As(err, &ae) && ae.Status == http.StatusNotFound {
				continue // healthy miss: this peer just doesn't hold it
			}
			lastErr = err // transport-level trouble: feeds the peer breaker
		}
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, rescache.ErrPeerMiss
	}, nil
}

// ---- small parsers (mirror internal/service's parameter discipline) ----

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func (c *Coordinator) respondRaw(w http.ResponseWriter, r *http.Request, hit bool, dig rescache.Digest, body []byte) {
	q := telemetry.FromContext(r.Context())
	q.SetDigest(string(dig))
	q.SetCache(cacheWord(hit))
	defer q.StartPhase(telemetry.PhaseEncode)()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", cacheWord(hit))
	h.Set("X-Digest", string(dig))
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

func parseIntDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func boolParam(v string) bool {
	switch strings.ToLower(v) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
