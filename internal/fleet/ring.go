package fleet

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// The shard map is a consistent-hash ring over the content-addressed
// keyspace: each worker owns the arc below each of its virtual nodes, so a
// digest's owner is a pure function of the worker set — deterministic across
// coordinators and restarts (the hash is unseeded SHA-256) — and adding or
// removing one worker remaps only ~1/N of the keyspace instead of reshuffling
// everything. This is the fleet analogue of the paper's cc-NUMA home-node
// assignment: every cache line (here: every result digest) has a stable home,
// and requests go home first.

// defaultReplicas is the virtual-node count per worker. 128 keeps the
// ownership split within a few percent of even for small fleets while the
// ring stays tiny (N×128 points).
const defaultReplicas = 128

// Ring maps string keys (rescache digests) to worker indices.
type Ring struct {
	points []ringPoint
	n      int
}

type ringPoint struct {
	hash   uint64
	worker int
}

// NewRing builds the shard map for the named workers. Names are the hashed
// identity: keep them stable across restarts and URL changes or the keyspace
// remaps. Panics on an empty worker set — a fleet with no workers cannot
// route anything.
func NewRing(names []string, replicas int) *Ring {
	if len(names) == 0 {
		panic("fleet: ring needs at least one worker")
	}
	if replicas <= 0 {
		replicas = defaultReplicas
	}
	r := &Ring{n: len(names), points: make([]ringPoint, 0, len(names)*replicas)}
	for wi, name := range names {
		for v := 0; v < replicas; v++ {
			r.points = append(r.points, ringPoint{hash: ringHash(fmt.Sprintf("%s\x00%d", name, v)), worker: wi})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].worker < r.points[j].worker // total order on (unlikely) collisions
	})
	return r
}

// Workers reports the worker count.
func (r *Ring) Workers() int { return r.n }

// Owner returns the worker index owning key.
func (r *Ring) Owner(key string) int {
	return r.points[r.search(ringHash(key))].worker
}

// Seq returns every worker index in ring order starting at key's owner: the
// owner first, then the distinct successors — the failover and work-stealing
// candidate order, stable for a fixed worker set.
func (r *Ring) Seq(key string) []int {
	out := make([]int, 0, r.n)
	seen := make([]bool, r.n)
	i := r.search(ringHash(key))
	for len(out) < r.n {
		w := r.points[i].worker
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
		i++
		if i == len(r.points) {
			i = 0
		}
	}
	return out
}

// search finds the first ring point at or clockwise-after h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}
