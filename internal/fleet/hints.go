package fleet

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dssmem/internal/rescache"
)

// A hint is a result that landed on the wrong worker: computed (or served)
// by a failover worker while the digest's home owner was down. It is queued
// per owner and replayed — PUT back to the owner's cache — when the owner
// rejoins, so the ring's locality heals instead of depending on recompute
// or peer fetches forever.
type hint struct {
	ns      string
	dig     rescache.Digest
	payload []byte
}

// hintCap bounds the per-owner queue; beyond it the oldest hints drop (the
// anti-entropy repair pass catches anything the queue sheds).
const hintCap = 1024

type hintQueue struct {
	mu      sync.Mutex
	byOwner map[string][]hint
	dropped uint64
}

func newHintQueue() *hintQueue {
	return &hintQueue{byOwner: make(map[string][]hint)}
}

// add queues a hint for owner, dropping the oldest beyond hintCap. Reports
// whether it was queued without displacing another.
func (h *hintQueue) add(owner string, ht hint) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.byOwner[owner]
	for _, have := range q {
		if have.ns == ht.ns && have.dig == ht.dig {
			return false // already queued
		}
	}
	if len(q) >= hintCap {
		q = q[1:]
		h.dropped++
	}
	h.byOwner[owner] = append(q, ht)
	return true
}

// drain removes and returns every hint queued for owner.
func (h *hintQueue) drain(owner string) []hint {
	h.mu.Lock()
	defer h.mu.Unlock()
	q := h.byOwner[owner]
	delete(h.byOwner, owner)
	return q
}

// pending reports how many hints are queued for owner.
func (h *hintQueue) pending(owner string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.byOwner[owner])
}

func (h *hintQueue) droppedCount() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// putEntry writes one framed cache entry to a worker's cache-fill endpoint
// (PUT /v1/cache/{ns}/{digest}) — the hint-replay and repair write path. The
// body is the checksummed entry frame, verified by the receiver before it
// stores anything.
func putEntry(ctx context.Context, httpc *http.Client, baseURL, ns string, dig rescache.Digest, payload []byte) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		baseURL+"/v1/cache/"+ns+"/"+string(dig), bytes.NewReader(rescache.FrameEntry(payload)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := httpc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusNoContent && resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: cache fill %s/%s: HTTP %d", ns, dig.Short(), resp.StatusCode)
	}
	return nil
}
