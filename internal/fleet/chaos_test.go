package fleet

// Fleet chaos test: every worker's disk, compute, and simulation layers fail
// probabilistically, one worker is killed outright mid-sweep and later
// restarted on its (possibly rotten) cache directory — and the coordinator
// must hold the single-node contract throughout:
//
//   1. every HTTP 200 carries bytes identical to the fault-free single-node
//      baseline (stealing, failover, and peer fills may change WHERE an
//      answer comes from, never WHAT it is), and
//   2. every failure is marked retriable — valid requests never die for good;
//   3. once the faults stop and the dead worker returns, fleet /healthz
//      recovers to "ok".

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/experiments"
	"dssmem/internal/fault"
	"dssmem/internal/rescache"
	"dssmem/internal/service"
)

type measureBody struct {
	Digest      string          `json:"digest"`
	Measurement json.RawMessage `json:"measurement"`
}

func fleetChaosIters(t *testing.T) int {
	if v := os.Getenv("CHAOS_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_ITERS=%q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 6
	}
	return 15
}

func TestFleetChaos(t *testing.T) {
	const nWorkers = 3

	// Each worker gets its own injector (so all three misbehave
	// independently) and its own persistent cache directory (so the restart
	// reads a disk that chaos actually wrote to).
	dirs := make([]string, nWorkers)
	injs := make([]*fault.Injector, nWorkers)
	for i := range dirs {
		dirs[i] = t.TempDir()
		injs[i] = fault.New(int64(20260808 + i))
	}

	workerCfg := func(i int) service.Config {
		store, err := rescache.OpenFS(dirs[i], fault.FS{Inner: rescache.OSFS{}, Inj: injs[i]})
		if err != nil {
			t.Fatal(err)
		}
		store.SetBreaker(3, 100*time.Millisecond)
		return service.Config{
			Preset:       experiments.Tiny,
			Data:         sharedTinyData(),
			Workers:      4,
			MaxQueue:     32,
			HardDeadline: 3 * time.Second,
			Store:        store,
			Faults:       injs[i],
		}
	}

	workers := make([]*proxyWorker, nWorkers)
	roster := make([]Worker, nWorkers)
	for i := range workers {
		workers[i] = newProxyWorker(t, fmt.Sprintf("w%d", i), workerCfg(i))
		roster[i] = Worker{Name: workers[i].name, URL: workers[i].ts.URL}
	}
	// Arm the peer-fill tier on every worker: each consults the other two
	// before recomputing, so chaos also exercises fetches against a fleet
	// that is itself failing (and, once w0 dies, against a dead peer).
	wirePeers := func() {
		for i, w := range workers {
			var peers []Worker
			for j, r := range roster {
				if j != i {
					peers = append(peers, r)
				}
			}
			pf, err := NewPeerFetch(peers, nil, 2)
			if err != nil {
				t.Fatal(err)
			}
			st := w.srv.Load().Store()
			st.SetPeerFetch(pf)
			st.SetPeerBreaker(3, 100*time.Millisecond)
		}
	}
	wirePeers()

	coord, err := New(Config{
		Preset:      experiments.Tiny,
		Workers:     roster,
		StealAfter:  300 * time.Millisecond,
		MaxAttempts: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	cts := httptest.NewServer(coord.Handler())
	defer cts.Close()

	// Fault-free single-node baseline: the ground truth for every later 200.
	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	var measurePaths []string
	for _, m := range []string{"vclass", "origin"} {
		for _, q := range []string{"Q6", "Q12"} {
			for _, trial := range []int{0, 1} {
				measurePaths = append(measurePaths,
					fmt.Sprintf("/v1/measure?machine=%s&query=%s&procs=2&trial=%d", m, q, trial))
			}
		}
	}
	sweepPaths := []string{
		"/v1/sweep?machine=vclass&query=Q6",
		"/v1/sweep?machine=origin&query=Q6",
	}
	baselineMeasure := make(map[string]measureBody)
	for _, p := range measurePaths {
		resp, body := get(t, ref, p)
		if resp.StatusCode != 200 {
			t.Fatalf("baseline %s: %d %s", p, resp.StatusCode, body)
		}
		var mb measureBody
		if err := json.Unmarshal(body, &mb); err != nil {
			t.Fatal(err)
		}
		baselineMeasure[p] = mb
	}
	baselineSweep := make(map[string][]byte)
	for _, p := range sweepPaths {
		resp, body := get(t, ref, p)
		if resp.StatusCode != 200 {
			t.Fatalf("baseline %s: %d %s", p, resp.StatusCode, body)
		}
		baselineSweep[p] = body
	}

	arm := func() {
		for _, inj := range injs {
			inj.Set(fault.DiskReadErr, 0.10)
			inj.Set(fault.DiskReadCorrupt, 0.10)
			inj.Set(fault.DiskWriteErr, 0.10)
			inj.Set(fault.DiskWriteTorn, 0.10)
			inj.Set(fault.ComputePanic, 0.05)
			inj.Set(fault.SimStall, 0.02)
			inj.SetStall(2 * time.Millisecond)
		}
	}
	disarm := func() {
		for _, inj := range injs {
			inj.DisableAll()
		}
	}

	// --- chaos phase: all workers faulty, w0 killed mid-sweep ---
	arm()
	cl, err := client.New(client.Config{
		BaseURL:     cts.URL,
		HTTP:        cts.Client(),
		MaxAttempts: 8,
		BaseDelay:   5 * time.Millisecond,
		MaxDelay:    100 * time.Millisecond,
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}

	iters := fleetChaosIters(t)
	var okCount, errCount atomic.Int64
	checkErr := func(p string, err error) {
		var ae *client.APIError
		if errors.As(err, &ae) && !ae.Retriable {
			t.Errorf("%s: non-retriable error for a valid request: %v", p, err)
			return
		}
		errCount.Add(1)
	}

	var wg sync.WaitGroup
	// The sweep that gets its worker shot out from under it: launched first,
	// with the kill following while its fan-out is in flight.
	wg.Add(1)
	go func() {
		defer wg.Done()
		p := sweepPaths[0]
		resp, err := cl.Get(context.Background(), p)
		if err != nil {
			checkErr(p, err)
			return
		}
		if !bytes.Equal(resp.Body, baselineSweep[p]) {
			t.Errorf("%s (kill mid-sweep): 200 body differs from fault-free single node:\n got %s\nwant %s",
				p, resp.Body, baselineSweep[p])
			return
		}
		okCount.Add(1)
	}()
	killed := make(chan struct{})
	go func() {
		time.Sleep(25 * time.Millisecond)
		workers[0].kill()
		close(killed)
	}()

	const goroutines = 4
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				if rng.Intn(8) == 0 { // sweeps are ~5x the work; keep them rare
					p := sweepPaths[rng.Intn(len(sweepPaths))]
					resp, err := cl.Get(context.Background(), p)
					if err != nil {
						checkErr(p, err)
						continue
					}
					if !bytes.Equal(resp.Body, baselineSweep[p]) {
						t.Errorf("%s: 200 body differs from fault-free single node", p)
						return
					}
					okCount.Add(1)
					continue
				}
				p := measurePaths[rng.Intn(len(measurePaths))]
				resp, err := cl.Get(context.Background(), p)
				if err != nil {
					checkErr(p, err)
					continue
				}
				var mb measureBody
				if err := json.Unmarshal(resp.Body, &mb); err != nil {
					t.Errorf("%s: 200 with undecodable body: %v", p, err)
					return
				}
				want := baselineMeasure[p]
				if mb.Digest != want.Digest || string(mb.Measurement) != string(want.Measurement) {
					t.Errorf("%s: 200 measurement differs from fault-free single node:\n got %s\nwant %s",
						p, mb.Measurement, want.Measurement)
					return
				}
				okCount.Add(1)
			}
		}(g)
	}
	wg.Wait()
	<-killed
	if t.Failed() {
		t.FailNow()
	}
	if okCount.Load() == 0 {
		t.Fatal("fleet chaos produced no successful requests — faults too aggressive to mean anything")
	}

	// --- recovery phase: faults off, dead worker restarted on its old disk ---
	disarm()
	workers[0].restart(t, workerCfg(0))
	wirePeers()

	deadline := time.Now().Add(30 * time.Second)
	probe := 100
	for {
		_, body := get(t, cts, "/healthz")
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz: %s: %v", body, err)
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck in %q after faults stopped and worker restarted: %s", h.Status, body)
		}
		// Fresh-digest traffic forces disk probes through each worker's
		// half-open breaker; the ring spreads successive trials fleet-wide.
		get(t, cts, fmt.Sprintf("/v1/measure?machine=vclass&query=Q6&procs=1&trial=%d", probe))
		probe++
		time.Sleep(50 * time.Millisecond)
	}

	// Full verification: every path serves the baseline answer via the fleet.
	for _, p := range measurePaths {
		resp, body := get(t, cts, p)
		if resp.StatusCode != 200 {
			t.Fatalf("post-chaos %s: %d %s", p, resp.StatusCode, body)
		}
		var mb measureBody
		if err := json.Unmarshal(body, &mb); err != nil {
			t.Fatal(err)
		}
		if string(mb.Measurement) != string(baselineMeasure[p].Measurement) {
			t.Fatalf("post-chaos %s: measurement differs from baseline", p)
		}
	}
	for _, p := range sweepPaths {
		resp, body := get(t, cts, p)
		if resp.StatusCode != 200 {
			t.Fatalf("post-chaos %s: %d %s", p, resp.StatusCode, body)
		}
		if !bytes.Equal(body, baselineSweep[p]) {
			t.Fatalf("post-chaos %s: body differs from baseline", p)
		}
	}
	t.Logf("fleet chaos: %d ok, %d gave up after retries", okCount.Load(), errCount.Load())
}

// TestFleetChurn is the membership-churn companion to TestFleetChaos: instead
// of probabilistic faults, it exercises the full dynamic-membership cycle
// under live timers. A worker is killed mid-sweep; the heartbeat ticker
// ejects it after EjectAfter missed probes while the sweep completes via
// failover; a result homed on the dead worker is computed elsewhere and
// queued as a hint; the worker comes back, the half-open probe re-admits it,
// the hint replays into its cache, and /healthz converges to "ok" — with
// every 200 along the way byte-identical to a fault-free single-node run.
func TestFleetChurn(t *testing.T) {
	workers, coord, cts := newFleet(t, 3, func(c *Config) {
		c.Heartbeat = 25 * time.Millisecond
		c.EjectAfter = 2
		c.ScrapeTimeout = 500 * time.Millisecond
		c.StealAfter = 150 * time.Millisecond
		c.MaxAttempts = 3
	})

	ref := httptest.NewServer(newWorkerServer(t, service.Config{}).Handler())
	defer ref.Close()
	const sweepPath = "/v1/sweep?machine=vclass&query=Q6"
	_, refSweep := get(t, ref, sweepPath)

	waitFor(t, 5*time.Second, "all members active", func() bool {
		for _, w := range workers {
			if coord.MemberState(w.name) != MemberActive {
				return false
			}
		}
		return true
	})

	// Launch the sweep, then shoot w0 while its fan-out is in flight. The
	// request must still return 200 with the single-node bytes: in-flight
	// points fail over inside raceFetch, later points route around the corpse
	// once the ticker ejects it.
	type result struct {
		body []byte
		err  error
	}
	sweepDone := make(chan result, 1)
	go func() {
		r, err := cts.Client().Get(cts.URL + sweepPath)
		if err != nil {
			sweepDone <- result{err: err}
			return
		}
		body := readAll(t, r)
		if r.StatusCode != 200 {
			sweepDone <- result{err: fmt.Errorf("HTTP %d: %s", r.StatusCode, body)}
			return
		}
		sweepDone <- result{body: body}
	}()
	time.Sleep(20 * time.Millisecond)
	workers[0].kill()

	res := <-sweepDone
	if res.err != nil {
		t.Fatalf("sweep with worker killed mid-flight: %v", res.err)
	}
	if !bytes.Equal(res.body, refSweep) {
		t.Fatalf("kill-mid-sweep 200 differs from fault-free single node:\n got %s\nwant %s", res.body, refSweep)
	}

	// The ticker notices: EjectAfter missed probes move w0 off the routing
	// ring without any help from the test.
	waitFor(t, 10*time.Second, "ticker ejects w0", func() bool {
		return coord.MemberState("w0") == MemberEjected
	})

	// A key homed on the corpse is served byte-identically by the survivors
	// and queued as a hint for the owner's return.
	dig, path := digestHomedOn(t, coord, "w0")
	_, refBody := get(t, ref, path)
	var refMeasure measureBody
	if err := json.Unmarshal(refBody, &refMeasure); err != nil {
		t.Fatal(err)
	}
	sameMeasure := func(body []byte) bool {
		var mb measureBody
		if err := json.Unmarshal(body, &mb); err != nil {
			return false
		}
		return mb.Digest == refMeasure.Digest && string(mb.Measurement) == string(refMeasure.Measurement)
	}
	resp, body := get(t, cts, path)
	if resp.StatusCode != 200 {
		t.Fatalf("measure with owner ejected: %d %s", resp.StatusCode, body)
	}
	if !sameMeasure(body) {
		t.Fatalf("failover measure differs from single node:\n got %s\nwant %s", body, refBody)
	}
	if n := coord.hints.pending("w0"); n < 1 {
		t.Fatalf("hints pending for ejected owner = %d, want >= 1", n)
	}

	// The worker returns on the same address. No join call: the ticker's
	// half-open probe must find it, re-admit it, and trigger hint replay.
	workers[0].restart(t, service.Config{})
	waitFor(t, 10*time.Second, "ticker re-admits w0", func() bool {
		return coord.MemberState("w0") == MemberActive
	})
	waitFor(t, 10*time.Second, "hint replayed into w0's cache", func() bool {
		r, err := http.Get(workers[0].ts.URL + "/v1/cache/" + rescache.NSMeasurement + "/" + string(dig))
		if err != nil {
			return false
		}
		r.Body.Close()
		return r.StatusCode == 200
	})
	waitFor(t, 10*time.Second, "healthz ok", func() bool {
		return healthzStatus(t, cts) == "ok"
	})

	// Post-churn, the whole fleet still speaks single-node bytes.
	resp, body = get(t, cts, sweepPath)
	if resp.StatusCode != 200 || !bytes.Equal(body, refSweep) {
		t.Fatalf("post-churn sweep: %d, identical=%v", resp.StatusCode, bytes.Equal(body, refSweep))
	}
	resp, body = get(t, cts, path)
	if resp.StatusCode != 200 || !sameMeasure(body) {
		t.Fatalf("post-churn measure: %d %s, want 200 matching %s", resp.StatusCode, body, refBody)
	}
	if v := coordMetric(t, coord, "dssmem_fleet_hints_replayed_total"); v < 1 {
		t.Errorf("dssmem_fleet_hints_replayed_total = %v, want >= 1", v)
	}
}
