package fleet

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"dssmem/internal/client"
)

// MemberState positions one worker in the membership state machine:
//
//	pending --first successful contact--> active
//	active  --EjectAfter consecutive failed observations--> ejected
//	ejected --push heartbeat/join--> probing --probe ok--> active
//	ejected --pull probe ok--> active   (the pull IS the half-open probe)
//	probing --probe failed--> ejected
//
// Pending members (the static boot roster, or a fresh join awaiting its
// probe) are routable — the coordinator extends the benefit of the doubt at
// boot exactly as the pre-membership fleet did, and failover absorbs a
// pending member that is not up yet. Ejected and probing members are off the
// routing ring: a worker that died earns its way back with a verified probe,
// never with a bare heartbeat.
type MemberState int

const (
	MemberEjected MemberState = iota // off the ring after repeated missed heartbeats
	MemberPending                    // known, never successfully contacted; routable
	MemberProbing                    // half-open: claims liveness, probe in flight
	MemberActive                     // verified alive; routable
)

func (s MemberState) String() string {
	switch s {
	case MemberEjected:
		return "ejected"
	case MemberPending:
		return "pending"
	case MemberProbing:
		return "probing"
	case MemberActive:
		return "active"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// member is one worker's membership record. Fields are guarded by
// membership.mu.
type member struct {
	worker   Worker
	cl       *client.Client
	state    MemberState
	lastSeen time.Time // last successful contact; zero until first
	missed   int       // consecutive failed observations
	seq      int       // registration order (client seed, stable listings)
}

// ringView is the immutable routing snapshot raceFetch operates on: the
// routing ring over routable members and the home ring over every known
// member (the true owner for hinted handoff, so a briefly dead worker keeps
// its keyspace identity).
type ringView struct {
	ring      *Ring // nil when no member is routable
	names     []string
	clients   []*client.Client
	home      *Ring // nil only when the fleet is empty
	homeNames []string
}

// membership tracks the fleet roster and its state machine. Reads on the
// request path go through an atomic view snapshot; mutations rebuild it.
type membership struct {
	mu        sync.Mutex
	members   map[string]*member
	order     []string
	replicas  int
	newClient func(w Worker, seq int) (*client.Client, error)
	// onChange observes every state transition (metrics, hint replay). Called
	// without mu held.
	onChange func(name string, from, to MemberState)

	view atomic.Pointer[ringView]
}

func newMembership(replicas int, newClient func(Worker, int) (*client.Client, error)) *membership {
	m := &membership{
		members:   make(map[string]*member),
		replicas:  replicas,
		newClient: newClient,
	}
	m.rebuildLocked()
	return m
}

// seed registers the static boot roster as pending members.
func (m *membership) seed(workers []Worker) error {
	for _, w := range workers {
		if _, _, err := m.add(w, MemberPending); err != nil {
			return err
		}
	}
	return nil
}

// add registers a new member in the given initial state. Reports whether the
// member was created (false: it already existed, untouched).
func (m *membership) add(w Worker, state MemberState) (created bool, mb *member, err error) {
	m.mu.Lock()
	if mb := m.members[w.Name]; mb != nil {
		m.mu.Unlock()
		return false, mb, nil
	}
	cl, err := m.newClient(w, len(m.order)+1)
	if err != nil {
		m.mu.Unlock()
		return false, nil, err
	}
	mb = &member{worker: w, cl: cl, state: state, seq: len(m.order) + 1}
	m.members[w.Name] = mb
	m.order = append(m.order, w.Name)
	m.rebuildLocked()
	m.mu.Unlock()
	if m.onChange != nil {
		m.onChange(w.Name, state, state) // surface the initial state
	}
	return true, mb, nil
}

// setURL updates a member's URL (a worker came back on a new port) and
// rebuilds its client.
func (m *membership) setURL(name, url string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb := m.members[name]
	if mb == nil || mb.worker.URL == url {
		return nil
	}
	cl, err := m.newClient(Worker{Name: name, URL: url}, mb.seq)
	if err != nil {
		return err
	}
	mb.worker.URL = url
	mb.cl = cl
	m.rebuildLocked()
	return nil
}

// transition moves name to state, rebuilding the rings when routability
// changes. Reports the previous state and whether anything changed.
func (m *membership) transition(name string, to MemberState) (from MemberState, changed bool) {
	m.mu.Lock()
	mb := m.members[name]
	if mb == nil || mb.state == to {
		if mb != nil {
			from = mb.state
		}
		m.mu.Unlock()
		return from, false
	}
	from = mb.state
	mb.state = to
	if to == MemberActive {
		mb.missed = 0
	}
	m.rebuildLocked()
	m.mu.Unlock()
	if m.onChange != nil {
		m.onChange(name, from, to)
	}
	return from, true
}

// observe records the result of contacting a member (push heartbeat, pull
// probe, or a healthz scrape — all observations are equal). A success
// revives pending/probing/ejected members to active; ejectAfter consecutive
// failures eject an active member, and any failure knocks a probing member
// back to ejected. Returns the member's state after the observation.
func (m *membership) observe(name string, ok bool, ejectAfter int) MemberState {
	m.mu.Lock()
	mb := m.members[name]
	if mb == nil {
		m.mu.Unlock()
		return MemberEjected
	}
	if ok {
		mb.lastSeen = time.Now()
		mb.missed = 0
		state := mb.state
		m.mu.Unlock()
		if state != MemberActive {
			m.transition(name, MemberActive)
			return MemberActive
		}
		return state
	}
	mb.missed++
	state, missed := mb.state, mb.missed
	m.mu.Unlock()
	switch {
	case state == MemberProbing:
		m.transition(name, MemberEjected)
		return MemberEjected
	case state == MemberActive && missed >= ejectAfter:
		m.transition(name, MemberEjected)
		return MemberEjected
	}
	return state
}

// fresh reports whether the member was successfully contacted within d —
// the ticker skips probing members with a recent push heartbeat.
func (m *membership) fresh(name string, d time.Duration) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	mb := m.members[name]
	return mb != nil && !mb.lastSeen.IsZero() && time.Since(mb.lastSeen) < d
}

// state returns one member's current state (MemberEjected for unknown).
func (m *membership) state(name string) MemberState {
	m.mu.Lock()
	defer m.mu.Unlock()
	if mb := m.members[name]; mb != nil {
		return mb.state
	}
	return MemberEjected
}

// info snapshots one member for health detail.
type memberInfo struct {
	Worker   Worker
	State    MemberState
	LastSeen time.Time
	Missed   int
	Client   *client.Client
}

// list snapshots every member in registration order.
func (m *membership) list() []memberInfo {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]memberInfo, 0, len(m.order))
	for _, name := range m.order {
		mb := m.members[name]
		out = append(out, memberInfo{
			Worker:   mb.worker,
			State:    mb.state,
			LastSeen: mb.lastSeen,
			Missed:   mb.missed,
			Client:   mb.cl,
		})
	}
	return out
}

// snapshot returns the current routing view. Never nil; rings inside may be.
func (m *membership) snapshot() *ringView { return m.view.Load() }

// rebuildLocked recomputes the routing and home rings. Callers hold m.mu
// (or are the constructor).
func (m *membership) rebuildLocked() {
	v := &ringView{}
	for _, name := range m.order {
		mb := m.members[name]
		v.homeNames = append(v.homeNames, name)
		if mb.state == MemberActive || mb.state == MemberPending {
			v.names = append(v.names, name)
			v.clients = append(v.clients, mb.cl)
		}
	}
	if len(v.names) > 0 {
		v.ring = NewRing(v.names, m.replicas)
	}
	if len(v.homeNames) > 0 {
		v.home = NewRing(v.homeNames, m.replicas)
	}
	m.view.Store(v)
}

// homeOwner names the digest's true owner on the full-membership ring, and
// whether that owner is currently active. Hinted handoff keys on this: a
// result served by anyone else while the owner is not active is queued for
// replay.
func (v *ringView) homeOwner(key string) (string, bool) {
	if v == nil || v.home == nil {
		return "", false
	}
	return v.homeNames[v.home.Owner(key)], true
}
