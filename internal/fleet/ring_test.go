package fleet

import (
	"fmt"
	"testing"
)

func ringKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%064x", i) // digest-shaped keys
	}
	return keys
}

func TestRingDeterministic(t *testing.T) {
	names := []string{"w0", "w1", "w2", "w3", "w4"}
	a := NewRing(names, 0)
	b := NewRing(names, 0)
	for _, k := range ringKeys(1000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner of %s differs between identical rings: %d vs %d", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestRingSeq(t *testing.T) {
	r := NewRing([]string{"w0", "w1", "w2"}, 0)
	for _, k := range ringKeys(100) {
		seq := r.Seq(k)
		if len(seq) != 3 {
			t.Fatalf("Seq(%s) = %v, want all 3 workers", k, seq)
		}
		if seq[0] != r.Owner(k) {
			t.Fatalf("Seq(%s)[0] = %d, owner = %d", k, seq[0], r.Owner(k))
		}
		seen := map[int]bool{}
		for _, w := range seq {
			if seen[w] {
				t.Fatalf("Seq(%s) repeats worker %d: %v", k, w, seq)
			}
			seen[w] = true
		}
	}
}

func TestRingBalance(t *testing.T) {
	names := []string{"w0", "w1", "w2", "w3", "w4"}
	r := NewRing(names, 0)
	counts := make([]int, len(names))
	keys := ringKeys(10000)
	for _, k := range keys {
		counts[r.Owner(k)]++
	}
	for i, c := range counts {
		frac := float64(c) / float64(len(keys))
		if frac < 0.10 || frac > 0.32 {
			t.Errorf("worker %s owns %.1f%% of the keyspace, want roughly 20%% (counts %v)",
				names[i], frac*100, counts)
		}
	}
}

// TestRingRemap measures the consistent-hashing contract the fleet depends
// on: growing or shrinking the fleet by one worker remaps only about 1/N of
// the keyspace, and a removed worker's keys are the ONLY ones that move.
func TestRingRemap(t *testing.T) {
	keys := ringKeys(10000)
	five := NewRing([]string{"w0", "w1", "w2", "w3", "w4"}, 0)

	t.Run("add one", func(t *testing.T) {
		six := NewRing([]string{"w0", "w1", "w2", "w3", "w4", "w5"}, 0)
		moved := 0
		for _, k := range keys {
			oldOwner, newOwner := five.Owner(k), six.Owner(k)
			if newOwner != oldOwner {
				moved++
				if newOwner != 5 {
					t.Fatalf("key %s moved w%d -> w%d: only moves TO the new worker are allowed", k, oldOwner, newOwner)
				}
			}
		}
		frac := float64(moved) / float64(len(keys))
		// Ideal is 1/6 ≈ 16.7%; allow vnode-placement noise either way.
		if frac < 0.08 || frac > 0.30 {
			t.Errorf("adding 6th worker remapped %.1f%% of keys, want ~16.7%%", frac*100)
		}
	})

	// The membership contract layered on top of remapping: an eject followed
	// by a rejoin is a no-op on the ring. A returning worker reclaims exactly
	// its old keyspace (names, not slots, are hashed), so hinted results
	// replayed to it land back where routing will look for them.
	t.Run("eject and rejoin round-trips", func(t *testing.T) {
		rejoined := NewRing([]string{"w0", "w1", "w2", "w3", "w4"}, 0)
		for _, k := range keys {
			if five.Owner(k) != rejoined.Owner(k) {
				t.Fatalf("key %s changed owner across an eject/rejoin cycle: w%d -> w%d",
					k, five.Owner(k), rejoined.Owner(k))
			}
		}
		// Even with the churn happening via membership (eject = removal from
		// the routing ring), the interim ring only moves the ejected worker's
		// keys, and the home ring never changes — pin the composition.
		interim := NewRing([]string{"w0", "w1", "w2", "w4"}, 0)
		interimNames := []string{"w0", "w1", "w2", "w4"}
		fiveNames := []string{"w0", "w1", "w2", "w3", "w4"}
		for _, k := range keys {
			oldName := fiveNames[five.Owner(k)]
			if oldName == "w3" {
				continue // failed over while w3 was out; returns with the rejoin
			}
			if got := interimNames[interim.Owner(k)]; got != oldName {
				t.Fatalf("key %s owned by surviving %s served by %s during the ejection", k, oldName, got)
			}
		}
	})

	t.Run("remove one", func(t *testing.T) {
		four := NewRing([]string{"w0", "w1", "w2", "w4"}, 0) // w3 gone
		moved := 0
		for _, k := range keys {
			oldOwner := five.Owner(k)
			newName := []string{"w0", "w1", "w2", "w4"}[four.Owner(k)]
			oldName := []string{"w0", "w1", "w2", "w3", "w4"}[oldOwner]
			if oldName != "w3" && newName != oldName {
				t.Fatalf("key %s owned by surviving %s moved to %s: removal must only move the dead worker's keys", k, oldName, newName)
			}
			if oldName == "w3" {
				moved++
			}
		}
		frac := float64(moved) / float64(len(keys))
		if frac < 0.08 || frac > 0.35 {
			t.Errorf("w3 owned %.1f%% of keys, want ~20%%", frac*100)
		}
	})
}

func TestParseWorkers(t *testing.T) {
	ws, err := ParseWorkers("w0=http://a:1, w1=http://b:2 ,http://c:3")
	if err != nil {
		t.Fatal(err)
	}
	want := []Worker{
		{Name: "w0", URL: "http://a:1"},
		{Name: "w1", URL: "http://b:2"},
		{Name: "http://c:3", URL: "http://c:3"}, // bare URL: name = URL
	}
	if len(ws) != len(want) {
		t.Fatalf("got %v", ws)
	}
	for i := range want {
		if ws[i] != want[i] {
			t.Errorf("worker %d = %+v, want %+v", i, ws[i], want[i])
		}
	}
	for _, bad := range []string{"", "w0=not-a-url", "w0=ftp://x:1", "w0="} {
		if _, err := ParseWorkers(bad); err == nil {
			t.Errorf("ParseWorkers(%q) accepted", bad)
		}
	}
}
