package cache

import (
	"testing"
	"testing/quick"
)

func small() *Cache {
	return New(Config{Name: "t", Size: 1024, LineSize: 32, Assoc: 2}) // 16 sets
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Name: "zero"},
		{Name: "line", Size: 1024, LineSize: 33, Assoc: 2},
		{Name: "div", Size: 1000, LineSize: 32, Assoc: 2},
		{Name: "sets", Size: 32 * 3 * 2, LineSize: 32, Assoc: 2}, // 3 sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %q should be invalid", cfg.Name)
		}
	}
	good := Config{Name: "ok", Size: 1024, LineSize: 32, Assoc: 2}
	if err := good.Validate(); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	if good.Lines() != 32 || good.Sets() != 16 {
		t.Fatalf("geometry: lines=%d sets=%d", good.Lines(), good.Sets())
	}
}

func TestMissThenHit(t *testing.T) {
	c := small()
	line := c.LineOf(0x1000)
	if _, hit := c.Lookup(line, false); hit {
		t.Fatal("cold lookup should miss")
	}
	c.Insert(line, Exclusive)
	st, hit := c.Lookup(line, false)
	if !hit || st != Exclusive {
		t.Fatalf("expected E hit, got %v %v", st, hit)
	}
	if c.Stats.ReadMisses != 1 || c.Stats.Reads != 2 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestLRUEviction(t *testing.T) {
	c := small() // 2-way; lines mapping to same set differ by 16 in line number
	a, b, d := uint64(0), uint64(16), uint64(32)
	c.Lookup(a, false)
	c.Insert(a, Shared)
	c.Lookup(b, false)
	c.Insert(b, Shared)
	c.Lookup(a, false) // touch a, making b the LRU
	v := c.Insert(d, Shared)
	if v.Line != b || v.State != Shared {
		t.Fatalf("victim = %+v, want line %d", v, b)
	}
	if c.StateOf(a) != Shared || c.StateOf(d) != Shared || c.StateOf(b) != Invalid {
		t.Fatal("wrong resident set after eviction")
	}
}

func TestDirtyEvictionCountsWriteback(t *testing.T) {
	c := small()
	c.Insert(0, Modified)
	c.Insert(16, Shared)
	c.Insert(32, Shared) // evicts line 0 (LRU) which is dirty
	if c.Stats.Writebacks != 1 || c.Stats.Evictions != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestInvalidateAndDowngrade(t *testing.T) {
	c := small()
	c.Insert(5, Modified)
	if st := c.Downgrade(5); st != Modified {
		t.Fatalf("downgrade returned %v", st)
	}
	if c.StateOf(5) != Shared {
		t.Fatal("line not downgraded")
	}
	if st := c.Invalidate(5); st != Shared {
		t.Fatalf("invalidate returned %v", st)
	}
	if c.StateOf(5) != Invalid {
		t.Fatal("line not invalidated")
	}
	if c.Invalidate(5) != Invalid {
		t.Fatal("double invalidate should be a no-op")
	}
	if c.Stats.InvalidationsReceived != 1 || c.Stats.DowngradesReceived != 1 {
		t.Fatalf("stats: %+v", c.Stats)
	}
}

func TestDowngradeSharedIsNoop(t *testing.T) {
	c := small()
	c.Insert(7, Shared)
	if st := c.Downgrade(7); st != Shared {
		t.Fatalf("got %v", st)
	}
	if c.Stats.DowngradesReceived != 0 {
		t.Fatal("S->S must not count as downgrade")
	}
}

func TestSetStatePanicsOnAbsent(t *testing.T) {
	c := small()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.SetState(99, Modified)
}

func TestUpgradePath(t *testing.T) {
	c := small()
	c.Insert(3, Shared)
	st, hit := c.Lookup(3, true)
	if !hit || st != Shared {
		t.Fatalf("write lookup: %v %v", st, hit)
	}
	// The protocol layer decides this is an upgrade; cache just changes state.
	c.SetState(3, Modified)
	if c.StateOf(3) != Modified {
		t.Fatal("upgrade failed")
	}
}

func TestFlushFraction(t *testing.T) {
	c := New(Config{Name: "t", Size: 4096, LineSize: 32, Assoc: 4})
	for i := uint64(0); i < 128; i++ {
		c.Insert(i, Shared)
	}
	before := c.ValidLines()
	victims := c.FlushFraction(0.25)
	after := c.ValidLines()
	if len(victims) == 0 || before-after != len(victims) {
		t.Fatalf("flush removed %d, victims %d", before-after, len(victims))
	}
	frac := float64(len(victims)) / float64(before)
	if frac < 0.15 || frac > 0.35 {
		t.Fatalf("flushed fraction %.2f, want ~0.25", frac)
	}
	if c.FlushFraction(0) != nil {
		t.Fatal("frac 0 should flush nothing")
	}
}

func TestLineOf(t *testing.T) {
	c := small()
	if c.LineOf(0) != 0 || c.LineOf(31) != 0 || c.LineOf(32) != 1 {
		t.Fatal("LineOf broken")
	}
}

// Property: the cache never holds more than Assoc lines of any one set, and a
// just-inserted line is always resident.
func TestInsertResidencyProperty(t *testing.T) {
	f := func(addrs []uint32) bool {
		c := small()
		for _, a := range addrs {
			line := c.LineOf(uint64(a))
			if _, hit := c.Lookup(line, false); !hit {
				c.Insert(line, Exclusive)
			}
			if c.StateOf(line) == Invalid {
				return false
			}
			if c.ValidLines() > c.Config().Lines() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: hits + misses == accesses for any access pattern.
func TestStatsBalanceProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		c := small()
		hits := uint64(0)
		for _, op := range ops {
			line := uint64(op % 97)
			write := op&1 == 1
			if _, hit := c.Lookup(line, write); hit {
				hits++
			} else {
				c.Insert(line, Exclusive)
			}
		}
		return c.Stats.Accesses() == uint64(len(ops)) &&
			c.Stats.Accesses()-c.Stats.Misses() == hits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// A fully-sequential scan larger than the cache must miss exactly once per
// line (pure spatial locality, no reuse).
func TestSequentialScanMissesOncePerLine(t *testing.T) {
	c := New(Config{Name: "t", Size: 2048, LineSize: 32, Assoc: 2})
	const span = 16 * 1024
	for addr := uint64(0); addr < span; addr += 8 {
		line := c.LineOf(addr)
		if _, hit := c.Lookup(line, false); !hit {
			c.Insert(line, Exclusive)
		}
	}
	wantMisses := uint64(span / 32)
	if c.Stats.ReadMisses != wantMisses {
		t.Fatalf("misses = %d, want %d", c.Stats.ReadMisses, wantMisses)
	}
}
