// Package cache implements set-associative, write-back, write-allocate caches
// with true-LRU replacement and MESI line states. It models tags and states
// only (contents live elsewhere); the machine layer composes caches into
// hierarchies and drives the coherence protocol.
package cache

import "fmt"

// State is a MESI coherence state.
type State uint8

// MESI states. The zero value is Invalid so fresh tag arrays are empty.
const (
	Invalid State = iota
	Shared
	Exclusive
	Modified
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Dirty reports whether a line in this state must be written back on eviction.
func (s State) Dirty() bool { return s == Modified }

// Config describes one cache.
type Config struct {
	Name     string
	Size     int // total bytes; must be Assoc*LineSize*2^k
	LineSize int // bytes; power of two
	Assoc    int // ways
}

// Lines returns the number of lines in the cache.
func (c Config) Lines() int { return c.Size / c.LineSize }

// Sets returns the number of sets.
func (c Config) Sets() int { return c.Lines() / c.Assoc }

// Validate reports whether the geometry is coherent.
func (c Config) Validate() error {
	if c.Size <= 0 || c.LineSize <= 0 || c.Assoc <= 0 {
		return fmt.Errorf("cache %s: non-positive geometry %+v", c.Name, c)
	}
	if c.LineSize&(c.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size %d not a power of two", c.Name, c.LineSize)
	}
	if c.Size%(c.LineSize*c.Assoc) != 0 {
		return fmt.Errorf("cache %s: size %d not divisible by assoc*line", c.Name, c.Size)
	}
	sets := c.Sets()
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d not a power of two", c.Name, sets)
	}
	return nil
}

// Stats counts cache events. Miss *classification* (cold / capacity /
// coherence) is done by the coherence layer, which has the global view.
type Stats struct {
	Reads, Writes         uint64
	ReadMisses            uint64
	WriteMisses           uint64 // includes write misses to absent lines only
	Upgrades              uint64 // write hits on Shared lines (ownership needed)
	Evictions             uint64
	Writebacks            uint64 // dirty evictions
	InvalidationsReceived uint64 // lines removed by remote coherence
	DowngradesReceived    uint64 // M/E -> S by remote read
	FlushEvictions        uint64 // lines lost to context-switch pollution
}

// Accesses returns total reads+writes.
func (s *Stats) Accesses() uint64 { return s.Reads + s.Writes }

// Misses returns read+write misses (upgrades are not misses: data is present).
func (s *Stats) Misses() uint64 { return s.ReadMisses + s.WriteMisses }

type way struct {
	tag   uint64 // full line number (addr >> lineShift)
	state State
	used  uint64 // LRU timestamp
}

// Victim describes a line displaced from the cache.
type Victim struct {
	Line  uint64
	State State
}

// Cache is a single level of set-associative cache. Not safe for concurrent
// use; the simulation kernel serializes all access.
type Cache struct {
	cfg       Config
	lineShift uint
	setMask   uint64
	ways      []way // sets*assoc, set-major
	assoc     int
	tick      uint64
	Stats     Stats
}

// New builds a cache; it panics on invalid geometry (configs are code, not
// user input).
func New(cfg Config) *Cache {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	ls := uint(0)
	for 1<<ls < cfg.LineSize {
		ls++
	}
	return &Cache{
		cfg:       cfg,
		lineShift: ls,
		setMask:   uint64(cfg.Sets() - 1),
		ways:      make([]way, cfg.Sets()*cfg.Assoc),
		assoc:     cfg.Assoc,
	}
}

// Config returns the cache geometry.
func (c *Cache) Config() Config { return c.cfg }

// LineOf maps a byte address to this cache's line number.
func (c *Cache) LineOf(addr uint64) uint64 { return addr >> c.lineShift }

func (c *Cache) set(line uint64) []way {
	s := line & c.setMask
	return c.ways[s*uint64(c.assoc) : (s+1)*uint64(c.assoc)]
}

// Lookup records an access to line. On a hit it refreshes LRU and returns the
// current state with hit=true. On a miss it returns (Invalid, false) and the
// caller is expected to fetch the line and call Insert.
func (c *Cache) Lookup(line uint64, write bool) (State, bool) {
	if write {
		c.Stats.Writes++
	} else {
		c.Stats.Reads++
	}
	set := c.set(line)
	for i := range set {
		// Tag first: distinct valid lines never share a tag, and a stale tag
		// on an Invalid way is rejected by the state check, so most ways fail
		// after a single compare.
		if set[i].tag == line && set[i].state != Invalid {
			c.tick++
			set[i].used = c.tick
			return set[i].state, true
		}
	}
	if write {
		c.Stats.WriteMisses++
	} else {
		c.Stats.ReadMisses++
	}
	return Invalid, false
}

// Insert places line with the given state, evicting the LRU way if the set is
// full. It returns the victim (State==Invalid when no valid line was
// displaced).
func (c *Cache) Insert(line uint64, st State) Victim {
	set := c.set(line)
	victim := 0
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			goto place
		}
		if set[i].used < set[victim].used {
			victim = i
		}
	}
place:
	v := Victim{Line: set[victim].tag, State: set[victim].state}
	if v.State != Invalid {
		c.Stats.Evictions++
		if v.State.Dirty() {
			c.Stats.Writebacks++
		}
	}
	c.tick++
	set[victim] = way{tag: line, state: st, used: c.tick}
	return v
}

// SetState changes the state of a resident line; it panics if absent, which
// would indicate a protocol bug.
func (c *Cache) SetState(line uint64, st State) {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line && set[i].state != Invalid {
			set[i].state = st
			return
		}
	}
	panic(fmt.Sprintf("cache %s: SetState(%#x) on absent line", c.cfg.Name, line))
}

// MarkModified sets a resident line to Modified without LRU effects and
// reports whether the line was present. It is the fused form of the
// StateOf-then-SetState idiom on the write path (one set scan, not two).
func (c *Cache) MarkModified(line uint64) bool {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line && set[i].state != Invalid {
			set[i].state = Modified
			return true
		}
	}
	return false
}

// StateOf returns the state of line without LRU effects (Invalid if absent).
func (c *Cache) StateOf(line uint64) State {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line && set[i].state != Invalid {
			return set[i].state
		}
	}
	return Invalid
}

// Invalidate removes line (coherence action) and returns its prior state.
func (c *Cache) Invalidate(line uint64) State {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line && set[i].state != Invalid {
			st := set[i].state
			set[i].state = Invalid
			c.Stats.InvalidationsReceived++
			return st
		}
	}
	return Invalid
}

// Downgrade moves line from M/E to S (remote read intervention) and returns
// its prior state (Invalid if absent).
func (c *Cache) Downgrade(line uint64) State {
	set := c.set(line)
	for i := range set {
		if set[i].tag == line && set[i].state != Invalid {
			st := set[i].state
			if st == Modified || st == Exclusive {
				set[i].state = Shared
				c.Stats.DowngradesReceived++
			}
			return st
		}
	}
	return Invalid
}

// FlushFraction invalidates roughly frac of the valid lines (deterministically,
// by walking ways with a stride) to model the cache pollution caused by a
// context switch running kernel/scheduler code. Victims (with their states,
// so the caller can write back dirty ones and fix the directory) are returned.
func (c *Cache) FlushFraction(frac float64) []Victim {
	if frac <= 0 {
		return nil
	}
	stride := int(1 / frac)
	if stride < 1 {
		stride = 1
	}
	var victims []Victim
	for i := 0; i < len(c.ways); i += stride {
		w := &c.ways[i]
		if w.state != Invalid {
			victims = append(victims, Victim{Line: w.tag, State: w.state})
			if w.state.Dirty() {
				c.Stats.Writebacks++
			}
			c.Stats.FlushEvictions++
			w.state = Invalid
		}
	}
	return victims
}

// ValidLines returns the number of resident lines (test/inspection helper).
func (c *Cache) ValidLines() int {
	n := 0
	for i := range c.ways {
		if c.ways[i].state != Invalid {
			n++
		}
	}
	return n
}
