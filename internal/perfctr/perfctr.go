// Package perfctr models the hardware event counters the paper sampled: the
// PA-8200 counters on the V-Class (accessed through the PARASOL library) and
// the R10000 counters on the Origin 2000 (accessed via ioctl). The simulator
// increments them at exactly the points the hardware would.
package perfctr

// Counters is one CPU's (or one process's aggregated) event-counter file.
type Counters struct {
	Cycles       uint64 // thread cycles (time the thread spent on-CPU)
	Instructions uint64
	Loads        uint64
	Stores       uint64

	L1DMisses uint64 // V-Class: the single-level D-cache; Origin: L1 D
	L2DMisses uint64 // Origin only; zero on single-level machines
	Upgrades  uint64 // ownership requests for lines already present

	// Miss classification, from the directory's global view.
	ColdMisses      uint64
	CapacityMisses  uint64
	CoherenceMisses uint64

	// Memory-latency accounting à la PA-8200: the hardware increments a
	// counter each bus clock for every open memory request; summing request
	// latencies gives the same integral.
	MemRequests      uint64
	MemLatencyCycles uint64
	StallCycles      uint64 // pipeline stall cycles attributed to memory

	Dirty3HopMisses uint64 // misses served by a dirty remote intervention

	// OS events.
	VolCtxSwitches   uint64
	InvolCtxSwitches uint64

	// Lock-manager events (DBMS instrumentation, as in the paper's modified
	// PostgreSQL executable).
	LockAcquires   uint64
	SpinIterations uint64
	LockBackoffs   uint64 // select() back-offs; each causes a VolCtxSwitch
}

// Add accumulates o into c.
func (c *Counters) Add(o *Counters) {
	c.Cycles += o.Cycles
	c.Instructions += o.Instructions
	c.Loads += o.Loads
	c.Stores += o.Stores
	c.L1DMisses += o.L1DMisses
	c.L2DMisses += o.L2DMisses
	c.Upgrades += o.Upgrades
	c.ColdMisses += o.ColdMisses
	c.CapacityMisses += o.CapacityMisses
	c.CoherenceMisses += o.CoherenceMisses
	c.MemRequests += o.MemRequests
	c.MemLatencyCycles += o.MemLatencyCycles
	c.StallCycles += o.StallCycles
	c.Dirty3HopMisses += o.Dirty3HopMisses
	c.VolCtxSwitches += o.VolCtxSwitches
	c.InvolCtxSwitches += o.InvolCtxSwitches
	c.LockAcquires += o.LockAcquires
	c.SpinIterations += o.SpinIterations
	c.LockBackoffs += o.LockBackoffs
}

// Sub returns the field-wise difference c - o: the counter deltas between
// two snapshots of one monotonically growing counter file (the basis of the
// obs layer's interval samples and operator attributions).
func (c *Counters) Sub(o *Counters) Counters {
	return Counters{
		Cycles:           c.Cycles - o.Cycles,
		Instructions:     c.Instructions - o.Instructions,
		Loads:            c.Loads - o.Loads,
		Stores:           c.Stores - o.Stores,
		L1DMisses:        c.L1DMisses - o.L1DMisses,
		L2DMisses:        c.L2DMisses - o.L2DMisses,
		Upgrades:         c.Upgrades - o.Upgrades,
		ColdMisses:       c.ColdMisses - o.ColdMisses,
		CapacityMisses:   c.CapacityMisses - o.CapacityMisses,
		CoherenceMisses:  c.CoherenceMisses - o.CoherenceMisses,
		MemRequests:      c.MemRequests - o.MemRequests,
		MemLatencyCycles: c.MemLatencyCycles - o.MemLatencyCycles,
		StallCycles:      c.StallCycles - o.StallCycles,
		Dirty3HopMisses:  c.Dirty3HopMisses - o.Dirty3HopMisses,
		VolCtxSwitches:   c.VolCtxSwitches - o.VolCtxSwitches,
		InvolCtxSwitches: c.InvolCtxSwitches - o.InvolCtxSwitches,
		LockAcquires:     c.LockAcquires - o.LockAcquires,
		SpinIterations:   c.SpinIterations - o.SpinIterations,
		LockBackoffs:     c.LockBackoffs - o.LockBackoffs,
	}
}

// Scale divides every counter by n (no-op for n <= 1) — the per-process
// averaging the paper applies when it reports one bar per configuration.
func (c *Counters) Scale(n int) {
	if n <= 1 {
		return
	}
	d := uint64(n)
	c.Cycles /= d
	c.Instructions /= d
	c.Loads /= d
	c.Stores /= d
	c.L1DMisses /= d
	c.L2DMisses /= d
	c.Upgrades /= d
	c.ColdMisses /= d
	c.CapacityMisses /= d
	c.CoherenceMisses /= d
	c.MemRequests /= d
	c.MemLatencyCycles /= d
	c.StallCycles /= d
	c.Dirty3HopMisses /= d
	c.VolCtxSwitches /= d
	c.InvolCtxSwitches /= d
	c.LockAcquires /= d
	c.SpinIterations /= d
	c.LockBackoffs /= d
}

// CPI returns cycles per instruction (0 when no instructions retired).
func (c *Counters) CPI() float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(c.Cycles) / float64(c.Instructions)
}

// AvgMemLatency returns the mean memory-request latency in cycles — the
// paper's Fig. 9 metric ("total time taken in completing a memory access
// without considering latency hiding").
func (c *Counters) AvgMemLatency() float64 {
	if c.MemRequests == 0 {
		return 0
	}
	return float64(c.MemLatencyCycles) / float64(c.MemRequests)
}

// PerMillionInstr scales an event count to events per 1M instructions, the
// normalization used throughout the paper's multi-process figures.
func (c *Counters) PerMillionInstr(events uint64) float64 {
	if c.Instructions == 0 {
		return 0
	}
	return float64(events) / float64(c.Instructions) * 1e6
}

// Region classifies an address by the paper's DBMS data taxonomy ("there is
// record data, index data, metadata and private data in a DBMS").
type Region uint8

// Regions.
const (
	RegionRecord Region = iota
	RegionIndex
	RegionMetadata
	RegionPrivate
	NumRegions
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionRecord:
		return "record"
	case RegionIndex:
		return "index"
	case RegionMetadata:
		return "metadata"
	case RegionPrivate:
		return "private"
	}
	return "region?"
}

// RegionCounters tallies accesses and misses per data region.
type RegionCounters struct {
	Accesses [NumRegions]uint64
	L1Misses [NumRegions]uint64
	L2Misses [NumRegions]uint64
}

// Add accumulates o into r.
func (r *RegionCounters) Add(o *RegionCounters) {
	for i := 0; i < int(NumRegions); i++ {
		r.Accesses[i] += o.Accesses[i]
		r.L1Misses[i] += o.L1Misses[i]
		r.L2Misses[i] += o.L2Misses[i]
	}
}

// Share returns region i's fraction of the given per-region array.
func Share(arr [NumRegions]uint64, i Region) float64 {
	var total uint64
	for _, v := range arr {
		total += v
	}
	if total == 0 {
		return 0
	}
	return float64(arr[i]) / float64(total)
}

// MissRate returns misses/accesses for the given miss and access counts.
func MissRate(misses, accesses uint64) float64 {
	if accesses == 0 {
		return 0
	}
	return float64(misses) / float64(accesses)
}
