package perfctr

import (
	"testing"
	"testing/quick"
)

func TestCPI(t *testing.T) {
	c := Counters{Cycles: 300, Instructions: 200}
	if c.CPI() != 1.5 {
		t.Fatalf("CPI = %v", c.CPI())
	}
	var z Counters
	if z.CPI() != 0 {
		t.Fatal("zero instructions must not divide")
	}
}

func TestAvgMemLatency(t *testing.T) {
	c := Counters{MemRequests: 4, MemLatencyCycles: 400}
	if c.AvgMemLatency() != 100 {
		t.Fatalf("lat = %v", c.AvgMemLatency())
	}
	var z Counters
	if z.AvgMemLatency() != 0 {
		t.Fatal("no requests must not divide")
	}
}

func TestPerMillionInstr(t *testing.T) {
	c := Counters{Instructions: 2_000_000}
	if got := c.PerMillionInstr(50); got != 25 {
		t.Fatalf("got %v", got)
	}
}

func TestMissRate(t *testing.T) {
	if MissRate(5, 100) != 0.05 || MissRate(1, 0) != 0 {
		t.Fatal("MissRate broken")
	}
}

// Property: Add is commutative and total-preserving on a few key fields.
func TestAddProperty(t *testing.T) {
	f := func(a, b Counters) bool {
		x := a
		x.Add(&b)
		y := b
		y.Add(&a)
		return x == y &&
			x.Cycles == a.Cycles+b.Cycles &&
			x.LockBackoffs == a.LockBackoffs+b.LockBackoffs &&
			x.CoherenceMisses == a.CoherenceMisses+b.CoherenceMisses
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
