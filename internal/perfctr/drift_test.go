package perfctr

import (
	"reflect"
	"testing"
)

// fillDistinct sets field i of c to base*(i+1), so every field carries a
// unique nonzero value and a swap or omission is detectable.
func fillDistinct(c *Counters, base uint64) {
	v := reflect.ValueOf(c).Elem()
	for i := 0; i < v.NumField(); i++ {
		v.Field(i).SetUint(base * uint64(i+1))
	}
}

// TestAddCoversEveryField guards against counter drift: when a new field is
// added to Counters but forgotten in Add, this test fails without needing a
// hand-maintained field list.
func TestAddCoversEveryField(t *testing.T) {
	var c, o Counters
	fillDistinct(&o, 1)
	c.Add(&o)
	c.Add(&o)
	v := reflect.ValueOf(c)
	for i := 0; i < v.NumField(); i++ {
		want := 2 * uint64(i+1)
		if got := v.Field(i).Uint(); got != want {
			t.Errorf("Add dropped or misrouted field %s: got %d, want %d",
				v.Type().Field(i).Name, got, want)
		}
	}
}

// TestSubCoversEveryField checks Sub is the exact inverse of Add field-wise.
func TestSubCoversEveryField(t *testing.T) {
	var a, b Counters
	fillDistinct(&a, 3)
	fillDistinct(&b, 1)
	d := a.Sub(&b)
	v := reflect.ValueOf(d)
	for i := 0; i < v.NumField(); i++ {
		want := 2 * uint64(i+1) // 3(i+1) - 1(i+1)
		if got := v.Field(i).Uint(); got != want {
			t.Errorf("Sub dropped or misrouted field %s: got %d, want %d",
				v.Type().Field(i).Name, got, want)
		}
	}
}

// TestScaleCoversEveryField checks Scale divides every field.
func TestScaleCoversEveryField(t *testing.T) {
	var c Counters
	fillDistinct(&c, 4)
	c.Scale(2)
	v := reflect.ValueOf(c)
	for i := 0; i < v.NumField(); i++ {
		want := 2 * uint64(i+1)
		if got := v.Field(i).Uint(); got != want {
			t.Errorf("Scale missed field %s: got %d, want %d",
				v.Type().Field(i).Name, got, want)
		}
	}

	before := c
	c.Scale(1)
	if c != before {
		t.Errorf("Scale(1) must be a no-op")
	}
}

// TestRegionAddCoversEveryField applies the same drift guard to the
// per-region tallies (fields are fixed-size arrays).
func TestRegionAddCoversEveryField(t *testing.T) {
	var r, o RegionCounters
	ov := reflect.ValueOf(&o).Elem()
	next := uint64(1)
	for i := 0; i < ov.NumField(); i++ {
		arr := ov.Field(i)
		for j := 0; j < arr.Len(); j++ {
			arr.Index(j).SetUint(next)
			next++
		}
	}
	r.Add(&o)
	r.Add(&o)
	rv := reflect.ValueOf(r)
	next = 1
	for i := 0; i < rv.NumField(); i++ {
		arr := rv.Field(i)
		for j := 0; j < arr.Len(); j++ {
			want := 2 * next
			if got := arr.Index(j).Uint(); got != want {
				t.Errorf("RegionCounters.Add dropped %s[%d]: got %d, want %d",
					rv.Type().Field(i).Name, j, got, want)
			}
			next++
		}
	}
}
