// Package simos models the operating-system layer the paper's measurements
// run under: processes pinned to CPUs, a time-slice scheduler that produces
// involuntary context switches, and select()-style sleeping that produces
// voluntary context switches (the PostgreSQL spinlock back-off path).
//
// It distinguishes the two clocks the paper distinguishes:
//
//   - thread time: cycles the process spends on a CPU (what the hardware
//     counters measure and Figs. 2, 5, 7 report);
//   - wall time: thread time plus the time the process is off-CPU sleeping in
//     select(), which is why "backoff using the select() call ... increases
//     the wall time (response time) significantly".
package simos

import (
	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/obs"
	"dssmem/internal/perfctr"
	"dssmem/internal/sim"
)

// Config holds the OS parameters, in CPU cycles of the host machine.
type Config struct {
	// TimeSlice is the scheduling quantum; its expiry causes an involuntary
	// context switch (10 ms on the studied systems).
	TimeSlice uint64
	// SwitchCost is the direct kernel cost of one context switch.
	SwitchCost uint64
	// FlushFraction is the fraction of cache displaced by the kernel/another
	// process across a context switch.
	FlushFraction float64
	// Backoff is the base select() sleep when a spinlock acquisition backs
	// off (the 10 ms select granularity of the era dominates it).
	Backoff uint64
	// Seed perturbs the per-process back-off jitter, letting repeated trials
	// of one configuration differ the way OS noise made the paper's four
	// trials differ. 0 is a valid (default) seed.
	Seed uint64
}

// DefaultConfig returns OS parameters for a machine at the given clock rate.
// Times follow the paper's platforms: 10 ms time slices, ~5 µs switch cost,
// 10 ms select() granularity.
func DefaultConfig(clockMHz int) Config {
	return DefaultConfigScaled(clockMHz, 1)
}

// DefaultConfigScaled returns OS parameters with the select() back-off
// divided by timeScale. When the harness scales the database and caches down
// by a memory-scale factor, run times shrink by the same factor; dividing the
// back-off keeps the ratio of sleep duration to cache-line lifetime — which
// controls how far concurrent scanners drift apart — as on the real machines.
// The time slice is NOT scaled: involuntary switches per instruction are a
// per-CPU-time rate the real systems pin at one per 10 ms.
func DefaultConfigScaled(clockMHz, timeScale int) Config {
	if timeScale < 1 {
		timeScale = 1
	}
	perMs := uint64(clockMHz) * 1000
	backoff := 10 * perMs / uint64(timeScale)
	if backoff < 1000 {
		backoff = 1000
	}
	return Config{
		TimeSlice:     10 * perMs,
		SwitchCost:    5 * perMs / 1000,
		FlushFraction: 0.05,
		Backoff:       backoff,
	}
}

// OS ties a machine to the simulation kernel and runs processes on it.
type OS struct {
	cfg      Config
	mach     *machine.Machine
	kernel   *sim.Kernel
	procs    []*Process
	obs      *obs.Observer
	sampling *obs.SamplingController
}

// New builds an OS over a machine. quantum is the simulation-kernel
// scheduling granule (0 for the default).
func New(m *machine.Machine, cfg Config, quantum sim.Clock) *OS {
	return &OS{cfg: cfg, mach: m, kernel: sim.NewKernel(quantum)}
}

// Machine returns the underlying machine.
func (o *OS) Machine() *machine.Machine { return o.mach }

// Config returns the OS parameters.
func (o *OS) Config() Config { return o.cfg }

// Observe attaches an observer: counter sampling at kernel scheduling
// points, plus context-switch, back-off and lock events. Call before Run
// (Spawn order does not matter — the hooks bind when processes start).
func (o *OS) Observe(ob *obs.Observer) { o.obs = ob }

// Spawn registers a process pinned to the given CPU. Bodies run when Run is
// called. By convention the workload pins process i to CPU i, matching the
// paper's "different query processes are assigned to different processors".
func (o *OS) Spawn(cpu int, body func(*Process)) *Process {
	p := &Process{
		os:        o,
		CPU:       cpu,
		sliceLeft: o.cfg.TimeSlice,
		rng:       (uint64(cpu)+o.cfg.Seed*0x9E3779B97F4A7C15+1)*2862933555777941757 + 3037000493,
	}
	p.sp = o.kernel.Spawn(func(sp *sim.Proc) {
		p.sp = sp
		if ob := o.obs; ob != nil {
			sp.OnYield = func(now sim.Clock) { ob.Tick(p.CPU, uint64(now), p.Counters()) }
			sp.OnExit = func(now sim.Clock) { ob.ProcExit(p.CPU, uint64(now), p.Counters()) }
		}
		body(p)
	})
	o.procs = append(o.procs, p)
	return p
}

// Run executes all processes to completion.
func (o *OS) Run() error { return o.kernel.Run() }

// Interrupt aborts an in-flight Run at the next scheduling-quantum boundary.
// It is the one OS method that may be called from outside the simulation
// (any goroutine, any time); see sim.Kernel.Interrupt.
func (o *OS) Interrupt(cause error) { o.kernel.Interrupt(cause) }

// SetSampling installs a SMARTS interval-sampling controller, consulted on
// every memory access: fast-forwarded accesses skip the machine model and
// charge the controller's estimate instead. Must be called before Run.
func (o *OS) SetSampling(c *obs.SamplingController) { o.sampling = c }

// SetFaultHook installs a scheduler-level fault-injection hook, invoked at
// every quantum boundary; see sim.Kernel.FaultHook. Must be called before
// Run.
func (o *OS) SetFaultHook(h func()) { o.kernel.FaultHook = h }

// EnableBoundWeave switches the kernel to the two-phase parallel scheduler;
// see sim.Kernel.EnableBoundWeave. Must be called before Run.
func (o *OS) EnableBoundWeave(window sim.Clock) { o.kernel.EnableBoundWeave(window) }

// AddWeaver registers a window-boundary weave callback; see
// sim.Kernel.AddWeaver. Must be called before Run.
func (o *OS) AddWeaver(fn func()) { o.kernel.AddWeaver(fn) }

// Processes returns the spawned processes.
func (o *OS) Processes() []*Process { return o.procs }

// Process is one simulated OS process, pinned to a CPU.
type Process struct {
	os        *OS
	sp        *sim.Proc
	CPU       int
	sliceLeft uint64
	thread    uint64 // on-CPU cycles
	rng       uint64

	vol, invol uint64

	// Classifier, when set, maps addresses to data regions and Regions
	// accumulates per-region access/miss tallies (the paper's
	// record/index/metadata/private taxonomy).
	Classifier func(memsys.Addr) perfctr.Region
	Regions    perfctr.RegionCounters
}

// Counters returns the hardware counter file of the process's CPU. With one
// process per CPU (the paper's setup) this is also the process's counter set.
func (p *Process) Counters() *perfctr.Counters { return p.os.mach.Counters(p.CPU) }

// Now returns the process's wall clock in cycles.
func (p *Process) Now() uint64 { return uint64(p.sp.Now()) }

// ThreadCycles returns the on-CPU (thread) time in cycles.
func (p *Process) ThreadCycles() uint64 { return p.thread }

// VoluntarySwitches and InvoluntarySwitches report the OS-level switch counts.
func (p *Process) VoluntarySwitches() uint64 { return p.vol }

// InvoluntarySwitches reports time-slice expiries.
func (p *Process) InvoluntarySwitches() uint64 { return p.invol }

// onCPU charges cycles of on-CPU execution, handling time-slice expiry.
func (p *Process) onCPU(cycles uint64) {
	p.thread += cycles
	p.sp.Advance(sim.Clock(cycles))
	if cycles >= p.sliceLeft {
		p.involuntarySwitch()
	} else {
		p.sliceLeft -= cycles
	}
}

// involuntarySwitch models a quantum expiry: the kernel runs, pollutes the
// cache, and (with one runnable process per CPU) reschedules this process.
func (p *Process) involuntarySwitch() {
	p.invol++
	p.Counters().InvolCtxSwitches++
	p.os.obs.CtxSwitch(p.CPU, p.Now(), false)
	p.chargeSwitch()
	p.sliceLeft = p.os.cfg.TimeSlice
}

// chargeSwitch charges the kernel path and cache pollution of one context
// switch. The time-slice timer is NOT reset here: timer ticks fire on on-CPU
// time regardless of voluntary sleeps, so the involuntary-switch rate per
// instruction stays roughly constant as lock contention adds voluntary ones
// (the paper observes involuntary switches growing only slowly while
// voluntary ones take over).
func (p *Process) chargeSwitch() {
	cost := p.os.cfg.SwitchCost
	p.thread += cost
	p.Counters().Cycles += cost
	p.sp.Advance(sim.Clock(cost))
	p.os.mach.FlushFraction(p.CPU, p.os.cfg.FlushFraction, p.Now())
}

// Load performs a read of size bytes at addr.
func (p *Process) Load(addr memsys.Addr, size int) { p.access(addr, size, false) }

// Store performs a write of size bytes at addr.
func (p *Process) Store(addr memsys.Addr, size int) { p.access(addr, size, true) }

func (p *Process) access(addr memsys.Addr, size int, write bool) {
	sc := p.os.sampling
	if sc != nil {
		if cyc, ff := sc.Access(p.CPU, p.Counters(), write, p.Now()); ff {
			// Fast-forwarded: functional counters are bumped, timing is the
			// controller's estimate, and the cache/directory walk (and the
			// region tally, which attributes detailed misses) is skipped.
			p.onCPU(cyc)
			return
		}
	}
	if p.Classifier == nil {
		cyc := p.os.mach.Access(p.CPU, addr, size, write, p.Now())
		if sc != nil {
			sc.Detailed(p.CPU, cyc)
		}
		p.onCPU(cyc)
		return
	}
	ct := p.Counters()
	l1, l2 := ct.L1DMisses, ct.L2DMisses
	cyc := p.os.mach.Access(p.CPU, addr, size, write, p.Now())
	if sc != nil {
		sc.Detailed(p.CPU, cyc)
	}
	region := p.Classifier(addr)
	p.Regions.Accesses[region]++
	p.Regions.L1Misses[region] += ct.L1DMisses - l1
	p.Regions.L2Misses[region] += ct.L2DMisses - l2
	p.onCPU(cyc)
}

// Work retires n non-memory instructions.
func (p *Process) Work(n uint64) {
	if n == 0 {
		return
	}
	cyc := p.os.mach.InstrCycles(p.CPU, n)
	p.onCPU(cyc)
}

// Spin charges one busy-wait iteration (test of a lock word already counted
// by the caller's Load) and records it.
func (p *Process) Spin() {
	p.Counters().SpinIterations++
	p.Work(4)
}

// Backoff models the PostgreSQL s_lock select() back-off: a voluntary context
// switch and an off-CPU sleep of the base back-off duration with a small
// deterministic jitter. Wall time advances; thread time does not (beyond the
// switch cost itself).
func (p *Process) Backoff() {
	p.vol++
	ct := p.Counters()
	ct.VolCtxSwitches++
	ct.LockBackoffs++
	p.os.obs.CtxSwitch(p.CPU, p.Now(), true)
	p.chargeSwitch()
	// Deterministic per-process jitter (xorshift) of up to 25% of the base.
	p.rng ^= p.rng << 13
	p.rng ^= p.rng >> 7
	p.rng ^= p.rng << 17
	sleep := p.os.cfg.Backoff + p.rng%(p.os.cfg.Backoff/4+1)
	p.os.obs.Backoff(p.CPU, p.Now(), sleep)
	p.sp.Advance(sim.Clock(sleep)) // off CPU: wall time only
}

// BlockUntil advances the wall clock to t without consuming CPU (e.g. waiting
// for I/O completion); it yields so other processes can progress.
func (p *Process) BlockUntil(t uint64) {
	p.sp.AdvanceTo(sim.Clock(t))
}

// IOWait models a blocking I/O: the process voluntarily yields the CPU (a
// voluntary context switch, as the paper notes: "a voluntary context switch
// is initiated by the process itself when it does I/O") and sleeps for the
// device latency. Thread time gains only the switch cost.
func (p *Process) IOWait(cycles uint64) {
	p.vol++
	p.Counters().VolCtxSwitches++
	p.os.obs.CtxSwitch(p.CPU, p.Now(), true)
	p.chargeSwitch()
	p.sp.Advance(sim.Clock(cycles))
}

// LockAcquired implements lock.Eventer: it counts the acquisition in the
// CPU's counter file (the paper's modified-executable DBMS instrumentation)
// and forwards it to the observer.
func (p *Process) LockAcquired(addr memsys.Addr, contended bool) {
	p.Counters().LockAcquires++
	p.os.obs.LockAcquire(p.CPU, uint64(addr), p.Now(), contended)
}

// BeginOp implements obs.Spanner: it opens an operator-attribution span on
// this process's CPU.
func (p *Process) BeginOp(name string) {
	p.os.obs.BeginOp(p.CPU, name, p.Now(), p.Counters())
}

// EndOp implements obs.Spanner: it closes the innermost operator span.
func (p *Process) EndOp() {
	p.os.obs.EndOp(p.CPU, p.Now(), p.Counters())
}

// YieldCPU gives other simulated processes a chance to run without advancing
// this process's clocks (a kernel-scheduler artifact point, used by spin
// loops).
func (p *Process) YieldCPU() { p.sp.Yield() }
