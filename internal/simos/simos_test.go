package simos

import (
	"testing"

	"dssmem/internal/machine"
	"dssmem/internal/memsys"
	"dssmem/internal/perfctr"
)

func testOS(cpus int) *OS {
	m := machine.New(machine.VClassSpec(cpus, 256))
	cfg := Config{
		TimeSlice:     50_000,
		SwitchCost:    500,
		FlushFraction: 0.1,
		Backoff:       100_000,
	}
	return New(m, cfg, 1000)
}

func TestDefaultConfigScalesWithClock(t *testing.T) {
	c := DefaultConfig(200)
	if c.TimeSlice != 2_000_000 { // 10ms at 200MHz
		t.Fatalf("timeslice = %d", c.TimeSlice)
	}
	if c.Backoff != c.TimeSlice {
		t.Fatalf("backoff should be 10ms too, got %d", c.Backoff)
	}
	if c.SwitchCost != 1000 { // 5µs
		t.Fatalf("switch cost = %d", c.SwitchCost)
	}
}

func TestWorkAdvancesThreadAndWall(t *testing.T) {
	o := testOS(1)
	var p *Process
	p = o.Spawn(0, func(p *Process) {
		p.Work(10_000)
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if p.ThreadCycles() != 10_000 || p.Now() != 10_000 {
		t.Fatalf("thread=%d wall=%d", p.ThreadCycles(), p.Now())
	}
	if p.Counters().Instructions != 10_000 {
		t.Fatalf("instr = %d", p.Counters().Instructions)
	}
}

func TestInvoluntarySwitchOnSliceExpiry(t *testing.T) {
	o := testOS(1)
	p := o.Spawn(0, func(p *Process) {
		for i := 0; i < 30; i++ {
			p.Work(10_000) // 300k cycles over a 50k slice
		}
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if p.InvoluntarySwitches() < 4 || p.InvoluntarySwitches() > 8 {
		t.Fatalf("invol switches = %d, want ~6", p.InvoluntarySwitches())
	}
	if p.Counters().InvolCtxSwitches != p.InvoluntarySwitches() {
		t.Fatal("counter mismatch")
	}
	// Thread time includes the switch cost.
	if p.ThreadCycles() != 300_000+500*p.InvoluntarySwitches() {
		t.Fatalf("thread = %d", p.ThreadCycles())
	}
}

func TestBackoffAdvancesWallOnly(t *testing.T) {
	o := testOS(1)
	p := o.Spawn(0, func(p *Process) {
		p.Work(1000)
		p.Backoff()
		p.Work(1000)
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if p.VoluntarySwitches() != 1 || p.Counters().LockBackoffs != 1 {
		t.Fatalf("vol = %d", p.VoluntarySwitches())
	}
	// Wall >= thread + base backoff; thread = work + switch cost only.
	if p.ThreadCycles() != 2000+500 {
		t.Fatalf("thread = %d", p.ThreadCycles())
	}
	if p.Now() < p.ThreadCycles()+100_000 {
		t.Fatalf("wall = %d, want >= thread+backoff", p.Now())
	}
}

func TestSwitchPollutesCache(t *testing.T) {
	o := testOS(1)
	var missesBefore, missesAfter uint64
	p := o.Spawn(0, func(p *Process) {
		// Warm 64 lines.
		for a := memsys.Addr(0); a < 2048; a += 32 {
			p.Load(a, 8)
		}
		missesBefore = p.Counters().L1DMisses
		p.Backoff() // flushes a fraction
		for a := memsys.Addr(0); a < 2048; a += 32 {
			p.Load(a, 8)
		}
		missesAfter = p.Counters().L1DMisses
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	_ = p
	if missesAfter == missesBefore {
		t.Fatal("context switch should cause re-fetch misses")
	}
}

func TestLoadStoreCountersFlow(t *testing.T) {
	o := testOS(2)
	done := make([]bool, 2)
	for i := 0; i < 2; i++ {
		i := i
		o.Spawn(i, func(p *Process) {
			p.Load(0x1000, 8)
			p.Store(0x1000, 8)
			done[i] = true
		})
	}
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if !done[0] || !done[1] {
		t.Fatal("processes did not finish")
	}
	m := o.Machine()
	if m.Counters(0).Loads != 1 || m.Counters(1).Stores != 1 {
		t.Fatal("per-CPU counters missing events")
	}
	// CPU1 wrote a line CPU0 holds: coherence traffic must have occurred.
	d := m.Directory().Stats
	if d.InvalidationsSent+d.DirtyInterventions+d.MigratoryTransfers == 0 {
		t.Fatalf("no coherence activity: %+v", d)
	}
}

func TestBlockUntil(t *testing.T) {
	o := testOS(1)
	p := o.Spawn(0, func(p *Process) {
		p.Work(10)
		p.BlockUntil(5000)
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Now() != 5000 || p.ThreadCycles() != 10 {
		t.Fatalf("wall=%d thread=%d", p.Now(), p.ThreadCycles())
	}
}

func TestSpinChargesInstructions(t *testing.T) {
	o := testOS(1)
	p := o.Spawn(0, func(p *Process) {
		for i := 0; i < 10; i++ {
			p.Spin()
		}
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	if p.Counters().SpinIterations != 10 || p.Counters().Instructions != 40 {
		t.Fatalf("counters: %+v", p.Counters())
	}
}

func TestDeterministicInterleaving(t *testing.T) {
	run := func() uint64 {
		o := testOS(4)
		for i := 0; i < 4; i++ {
			o.Spawn(i, func(p *Process) {
				for j := 0; j < 50; j++ {
					p.Load(memsys.Addr(j*32), 8)
					p.Work(100)
				}
			})
		}
		if err := o.Run(); err != nil {
			t.Fatal(err)
		}
		var sum uint64
		for _, p := range o.Processes() {
			sum += p.ThreadCycles() * uint64(p.CPU+1)
		}
		return sum
	}
	if run() != run() {
		t.Fatal("simulation is not deterministic")
	}
}

func TestDefaultConfigScaledBackoff(t *testing.T) {
	base := DefaultConfigScaled(200, 1)
	scaled := DefaultConfigScaled(200, 32)
	if scaled.Backoff != base.Backoff/32 {
		t.Fatalf("backoff = %d, want %d", scaled.Backoff, base.Backoff/32)
	}
	// The time slice is intentionally NOT scaled.
	if scaled.TimeSlice != base.TimeSlice {
		t.Fatal("time slice must not scale")
	}
	// Floor: a huge scale never drops the backoff below 1000 cycles.
	if DefaultConfigScaled(200, 1<<20).Backoff != 1000 {
		t.Fatal("backoff floor missing")
	}
	if DefaultConfigScaled(200, 0).Backoff != base.Backoff {
		t.Fatal("scale 0 should clamp to 1")
	}
}

func TestSeedPerturbsBackoffJitter(t *testing.T) {
	run := func(seed uint64) uint64 {
		m := machine.New(machine.VClassSpec(1, 256))
		cfg := Config{TimeSlice: 1 << 40, SwitchCost: 100, Backoff: 10_000, Seed: seed}
		o := New(m, cfg, 0)
		p := o.Spawn(0, func(p *Process) {
			p.Backoff()
			p.Backoff()
		})
		if err := o.Run(); err != nil {
			t.Fatal(err)
		}
		return p.Now()
	}
	if run(1) == run(2) {
		t.Fatal("different seeds should change backoff jitter")
	}
	if run(3) != run(3) {
		t.Fatal("same seed must reproduce")
	}
}

func TestRegionClassifierCounts(t *testing.T) {
	m := machine.New(machine.VClassSpec(1, 256))
	o := New(m, DefaultConfig(200), 0)
	o.Spawn(0, func(p *Process) {
		p.Classifier = func(a memsys.Addr) perfctr.Region {
			if _, priv := memsys.IsPrivate(a); priv {
				return perfctr.RegionPrivate
			}
			return perfctr.RegionRecord
		}
		p.Load(0x100, 8)                      // shared -> record
		p.Load(memsys.PrivateBase(0)+64, 8)   // private
		p.Store(memsys.PrivateBase(0)+128, 8) // private
	})
	if err := o.Run(); err != nil {
		t.Fatal(err)
	}
	pr := o.Processes()[0]
	if pr.Regions.Accesses[perfctr.RegionRecord] != 1 ||
		pr.Regions.Accesses[perfctr.RegionPrivate] != 2 {
		t.Fatalf("region accesses: %+v", pr.Regions.Accesses)
	}
	// All three were cold misses; the classifier must attribute them.
	if pr.Regions.L1Misses[perfctr.RegionRecord] != 1 ||
		pr.Regions.L1Misses[perfctr.RegionPrivate] != 2 {
		t.Fatalf("region misses: %+v", pr.Regions.L1Misses)
	}
}
