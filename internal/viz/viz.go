// Package viz renders experiment series as terminal charts — the paper's
// figures are bar/line charts, and dssbench can echo their shape directly in
// the terminal (-chart).
package viz

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// blocks are eighth-height bar glyphs.
var blocks = []rune(" ▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode sparkline, scaled to
// [min,max] of the data (a flat series renders mid-height).
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	var b strings.Builder
	for _, v := range values {
		idx := 4 // mid-height for flat series
		if hi > lo {
			idx = int((v - lo) / (hi - lo) * float64(len(blocks)-2))
			idx++ // never render the empty glyph for a real point
		}
		if idx >= len(blocks) {
			idx = len(blocks) - 1
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}

// BarRow is one labeled value of a bar chart.
type BarRow struct {
	Label string
	Value float64
}

// BarChart renders horizontal bars scaled to the maximum value, width
// characters wide, with the numeric value appended.
func BarChart(w io.Writer, title string, rows []BarRow, width int) error {
	if width <= 0 {
		width = 40
	}
	maxVal := 0.0
	maxLabel := 0
	for _, r := range rows {
		if r.Value > maxVal {
			maxVal = r.Value
		}
		if len(r.Label) > maxLabel {
			maxLabel = len(r.Label)
		}
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	for _, r := range rows {
		n := 0
		if maxVal > 0 {
			n = int(r.Value / maxVal * float64(width))
		}
		if n == 0 && r.Value > 0 {
			n = 1
		}
		if _, err := fmt.Fprintf(w, "%-*s  %-*s %.4g\n",
			maxLabel, r.Label, width, strings.Repeat("█", n), r.Value); err != nil {
			return err
		}
	}
	return nil
}

// Lines renders multiple labeled series as aligned sparklines with their
// ranges, e.g. for a Figs. 5–10-style sweep.
func Lines(w io.Writer, title string, labels []string, series [][]float64) error {
	if len(labels) != len(series) {
		return fmt.Errorf("viz: %d labels for %d series", len(labels), len(series))
	}
	if title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", title); err != nil {
			return err
		}
	}
	maxLabel := 0
	for _, l := range labels {
		if len(l) > maxLabel {
			maxLabel = len(l)
		}
	}
	for i, s := range series {
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range s {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		if len(s) == 0 {
			lo, hi = 0, 0
		}
		if _, err := fmt.Fprintf(w, "%-*s  %s  [%.4g .. %.4g]\n",
			maxLabel, labels[i], Sparkline(s), lo, hi); err != nil {
			return err
		}
	}
	return nil
}
