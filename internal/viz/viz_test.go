package viz

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
	"unicode/utf8"
)

func TestSparklineBasics(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input")
	}
	s := Sparkline([]float64{0, 1, 2, 3})
	if utf8.RuneCountInString(s) != 4 {
		t.Fatalf("length: %q", s)
	}
	runes := []rune(s)
	if runes[0] >= runes[3] {
		t.Fatalf("monotone data should render ascending glyphs: %q", s)
	}
	flat := Sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r == ' ' {
			t.Fatal("flat series rendered empty glyphs")
		}
	}
}

// Property: sparkline length equals input length and never contains spaces.
func TestSparklineProperty(t *testing.T) {
	f := func(raw []int8) bool {
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Sparkline(xs)
		if utf8.RuneCountInString(s) != len(xs) {
			return false
		}
		return !strings.ContainsRune(s, ' ')
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBarChart(t *testing.T) {
	var buf bytes.Buffer
	err := BarChart(&buf, "title", []BarRow{
		{Label: "a", Value: 10},
		{Label: "bb", Value: 5},
		{Label: "c", Value: 0},
	}, 20)
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || lines[0] != "title" {
		t.Fatalf("output:\n%s", out)
	}
	aBar := strings.Count(lines[1], "█")
	bBar := strings.Count(lines[2], "█")
	cBar := strings.Count(lines[3], "█")
	if aBar != 20 || bBar != 10 || cBar != 0 {
		t.Fatalf("bar widths: %d %d %d", aBar, bBar, cBar)
	}
}

func TestBarChartTinyValueStillVisible(t *testing.T) {
	var buf bytes.Buffer
	if err := BarChart(&buf, "", []BarRow{{Label: "big", Value: 1000}, {Label: "tiny", Value: 1}}, 10); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if strings.Count(lines[1], "█") != 1 {
		t.Fatalf("tiny nonzero value should render one block:\n%s", buf.String())
	}
}

func TestLines(t *testing.T) {
	var buf bytes.Buffer
	err := Lines(&buf, "sweep", []string{"Q6", "Q21"}, [][]float64{
		{1, 2, 3}, {3, 2, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Q6") || !strings.Contains(out, "[1 .. 3]") {
		t.Fatalf("output:\n%s", out)
	}
}

func TestLinesMismatch(t *testing.T) {
	if err := Lines(&bytes.Buffer{}, "", []string{"a"}, nil); err == nil {
		t.Fatal("mismatched labels accepted")
	}
}
