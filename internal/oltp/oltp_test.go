package oltp

import (
	"testing"

	"dssmem/internal/db/dbtest"
	"dssmem/internal/machine"
)

func tinyCfg() Config {
	return Config{Warehouses: 2, Transactions: 30, PaymentShare: 50, Seed: 5}
}

func TestLoadShape(t *testing.T) {
	d := Load(tinyCfg())
	if d.wh.Heap.NumTuples() != 2 {
		t.Fatalf("warehouses = %d", d.wh.Heap.NumTuples())
	}
	if d.district.Heap.NumTuples() != 2*DistrictsPerWarehouse {
		t.Fatalf("districts = %d", d.district.Heap.NumTuples())
	}
	if d.customer.Heap.NumTuples() != 2*DistrictsPerWarehouse*CustomersPerDistrict {
		t.Fatalf("customers = %d", d.customer.Heap.NumTuples())
	}
	if d.stock.Heap.NumTuples() != 2*ItemsPerWarehouse {
		t.Fatalf("stock = %d", d.stock.Heap.NumTuples())
	}
}

func TestLoadRejectsZeroWarehouses(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Load(Config{})
}

func TestPaymentUpdatesBalances(t *testing.T) {
	d := Load(tinyCfg())
	p := &dbtest.FakeProc{}
	c := d.NewClient(p, 0)
	for i := 0; i < 10; i++ {
		if err := c.Payment(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Payments != 10 || c.AppliedAmount <= 0 {
		t.Fatalf("client stats: %+v", c)
	}
	if p.Stores == 0 || p.Loads == 0 {
		t.Fatal("payment charged nothing")
	}
}

func TestNewOrderConsumesStock(t *testing.T) {
	d := Load(tinyCfg())
	c := d.NewClient(&dbtest.FakeProc{}, 0)
	for i := 0; i < 10; i++ {
		if err := c.NewOrder(); err != nil {
			t.Fatal(err)
		}
	}
	if c.NewOrders != 10 {
		t.Fatalf("new orders = %d", c.NewOrders)
	}
}

func TestRunConservesMoney(t *testing.T) {
	st, err := Run(machine.VClassSpec(16, 256), tinyCfg(), 4, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st.YtdTotal != st.AppliedAmount {
		t.Fatalf("conservation: %d vs %d", st.YtdTotal, st.AppliedAmount)
	}
	if st.Transactions != 4*tinyCfg().Transactions {
		t.Fatalf("transactions = %d", st.Transactions)
	}
	if st.Payments == 0 || st.NewOrders == 0 {
		t.Fatalf("mix degenerate: %+v", st)
	}
	if st.TxPerMCycle() <= 0 {
		t.Fatal("no throughput")
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() *Stats {
		st, err := Run(machine.OriginSpec(32, 256), tinyCfg(), 2, 256)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a.ThreadCycles != b.ThreadCycles || a.WallCycles != b.WallCycles || a.YtdTotal != b.YtdTotal {
		t.Fatalf("nondeterministic: %+v vs %+v", a, b)
	}
}

func TestRowLocksBeatRelationLocksUnderContention(t *testing.T) {
	// The paper's §2.2 bottleneck claim, measured: with 8 writers, row-level
	// locking must deliver higher throughput than relation-level locking.
	cfg := tinyCfg()
	cfg.Transactions = 40
	rel, err := Run(machine.VClassSpec(16, 256), cfg, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Granularity = RowLocks
	row, err := Run(machine.VClassSpec(16, 256), cfg, 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if row.TxPerMCycle() <= rel.TxPerMCycle() {
		t.Fatalf("row locks (%.2f tx/Mcyc) should beat relation locks (%.2f tx/Mcyc)",
			row.TxPerMCycle(), rel.TxPerMCycle())
	}
	if rel.Backoffs <= row.Backoffs {
		t.Fatalf("relation locks should back off more: %d vs %d", rel.Backoffs, row.Backoffs)
	}
}

func TestOLTPSharesMoreThanDSS(t *testing.T) {
	// The contrast with the DSS workload: transactional writes make
	// communication (dirty hand-offs) a visible miss component even at small
	// scale.
	st, err := Run(machine.OriginSpec(32, 256), tinyCfg(), 8, 256)
	if err != nil {
		t.Fatal(err)
	}
	if st.Dirty3Hop == 0 {
		t.Fatal("OLTP writes produced no dirty interventions")
	}
}

func TestRunRejectsBadProcessCount(t *testing.T) {
	if _, err := Run(machine.VClassSpec(4, 256), tinyCfg(), 0, 256); err == nil {
		t.Fatal("0 processes accepted")
	}
	if _, err := Run(machine.VClassSpec(4, 256), tinyCfg(), 5, 256); err == nil {
		t.Fatal("more processes than CPUs accepted")
	}
}

func TestGranularityNames(t *testing.T) {
	if RelationLocks.String() != "relation" || RowLocks.String() != "row" {
		t.Fatal("names wrong")
	}
}
