// Package oltp implements a TPC-C-flavoured transactional companion workload
// (Payment and New-Order transactions over warehouse/district/customer/stock
// tables). The paper positions its DSS study against the OLTP
// characterizations of its related work (Keeton et al., Iyer's TPC-C trace
// analysis); this package makes that contrast measurable on the same machine
// models, and directly probes the paper's §2.2 remark that PostgreSQL's
// relation-level locking "may become a bottleneck in multiple parallel
// queries": writers take relation-level exclusive locks by default, with
// row-level locking as the ablation.
package oltp

import (
	"fmt"

	"dssmem/internal/db/catalog"
	"dssmem/internal/db/engine"
	"dssmem/internal/db/executor"
	"dssmem/internal/db/storage"
	"dssmem/internal/machine"
	"dssmem/internal/simos"
)

// Granularity selects the write-lock unit.
type Granularity int

// Lock granularities.
const (
	// RelationLocks is the era-PostgreSQL behaviour the paper describes.
	RelationLocks Granularity = iota
	// RowLocks is the finer granularity modern engines use (ablation).
	RowLocks
)

// String implements fmt.Stringer.
func (g Granularity) String() string {
	if g == RowLocks {
		return "row"
	}
	return "relation"
}

// Column layout of the OLTP tables.
const (
	WID = iota
	WYtd
)

// District columns.
const (
	DID = iota
	DYtd
	DNextOID
)

// Customer columns.
const (
	CID = iota
	CBalance
	CYtdPayment
)

// Stock columns.
const (
	SID = iota
	SQuantity
	SYtd
)

// Scale constants (per warehouse).
const (
	DistrictsPerWarehouse = 10
	CustomersPerDistrict  = 300
	ItemsPerWarehouse     = 1000
)

// Config sizes and shapes an OLTP run.
type Config struct {
	Warehouses   int
	Transactions int // per process
	Granularity  Granularity
	// PaymentShare in percent; the rest are New-Order transactions.
	PaymentShare int
	Seed         uint64
}

// DefaultConfig returns a small standard mix (TPC-C is ~43% Payment).
func DefaultConfig() Config {
	return Config{Warehouses: 4, Transactions: 200, PaymentShare: 45, Seed: 11}
}

// DB is a loaded OLTP database.
type DB struct {
	cfg      Config
	db       *engine.Database
	wh       *catalog.Relation
	district *catalog.Relation
	customer *catalog.Relation
	stock    *catalog.Relation
}

// Load builds the OLTP schema and rows.
func Load(cfg Config) *DB {
	if cfg.Warehouses <= 0 {
		panic("oltp: need at least one warehouse")
	}
	rows := cfg.Warehouses * (1 + DistrictsPerWarehouse +
		DistrictsPerWarehouse*CustomersPerDistrict + ItemsPerWarehouse)
	pages := rows/200 + 128
	db := engine.Open(engine.Config{PoolPages: pages * 2})

	d := &DB{cfg: cfg, db: db}
	d.wh = db.CreateTable("warehouse", storage.NewSchema(
		storage.Column{Name: "w_id", Width: 8},
		storage.Column{Name: "w_ytd", Width: 8},
	))
	d.district = db.CreateTable("district", storage.NewSchema(
		storage.Column{Name: "d_id", Width: 8},
		storage.Column{Name: "d_ytd", Width: 8},
		storage.Column{Name: "d_next_o_id", Width: 8},
	))
	d.customer = db.CreateTable("customer", storage.NewSchema(
		storage.Column{Name: "c_id", Width: 8},
		storage.Column{Name: "c_balance", Width: 8},
		storage.Column{Name: "c_ytd_payment", Width: 8},
	))
	d.stock = db.CreateTable("stock", storage.NewSchema(
		storage.Column{Name: "s_id", Width: 8},
		storage.Column{Name: "s_quantity", Width: 8},
		storage.Column{Name: "s_ytd", Width: 8},
	))

	for w := 0; w < cfg.Warehouses; w++ {
		d.wh.Heap.Append([]int64{int64(w), 0})
		for dd := 0; dd < DistrictsPerWarehouse; dd++ {
			d.district.Heap.Append([]int64{districtKey(w, dd), 0, 1})
			for c := 0; c < CustomersPerDistrict; c++ {
				d.customer.Heap.Append([]int64{customerKey(w, dd, c), 0, 0})
			}
		}
		for s := 0; s < ItemsPerWarehouse; s++ {
			d.stock.Heap.Append([]int64{stockKey(w, s), 100, 0})
		}
	}
	db.BuildIndex(d.wh, "warehouse_pk", WID)
	db.BuildIndex(d.district, "district_pk", DID)
	db.BuildIndex(d.customer, "customer_pk", CID)
	db.BuildIndex(d.stock, "stock_pk", SID)
	return d
}

// Engine exposes the underlying database.
func (d *DB) Engine() *engine.Database { return d.db }

func districtKey(w, dd int) int64 { return int64(w)*DistrictsPerWarehouse + int64(dd) }

func customerKey(w, dd, c int) int64 {
	return (int64(w)*DistrictsPerWarehouse+int64(dd))*CustomersPerDistrict + int64(c)
}

func stockKey(w, s int) int64 { return int64(w)*ItemsPerWarehouse + int64(s) }

// txRng is a splitmix64 stream for transaction parameters.
type txRng struct{ s uint64 }

func (r *txRng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *txRng) intn(n int) int { return int(r.next() % uint64(n)) }

// Client runs one process's transaction stream.
type Client struct {
	d   *DB
	s   *engine.Session
	ctx *executor.Context
	rng txRng
	pid int

	// Stats.
	Payments  int
	NewOrders int
	// AppliedAmount is this client's total Payment volume (for the global
	// conservation check).
	AppliedAmount int64
}

// NewClient opens a transaction client for process pid.
func (d *DB) NewClient(p engine.Proc, pid int) *Client {
	s := d.db.NewSession(p, pid)
	return &Client{
		d:   d,
		s:   s,
		ctx: executor.NewContext(s),
		rng: txRng{s: d.cfg.Seed + uint64(pid)*0x9E3779B97F4A7C15},
		pid: pid,
	}
}

// lockWrite takes the configured write lock for (rel,row).
func (c *Client) lockWrite(rel *catalog.Relation, row int64) {
	if c.d.cfg.Granularity == RowLocks {
		c.d.db.LockMgr.AcquireRowExclusive(c.s.P, c.pid, rel.ID, row)
	} else {
		c.d.db.LockMgr.AcquireExclusive(c.s.P, c.pid, rel.ID)
	}
}

func (c *Client) unlockWrite(rel *catalog.Relation, row int64) {
	if c.d.cfg.Granularity == RowLocks {
		c.d.db.LockMgr.ReleaseRowExclusive(c.s.P, c.pid, rel.ID, row)
	} else {
		c.d.db.LockMgr.ReleaseExclusive(c.s.P, c.pid, rel.ID)
	}
}

// fetchRow finds a row by primary key via the index, returning its TID.
func (c *Client) fetchRow(rel *catalog.Relation, index string, key int64) (storage.TID, bool) {
	var tid storage.TID
	found := false
	executor.IndexLookupEach(c.ctx, rel, index, key, func(t storage.TID) bool {
		tid = t
		found = true
		return false
	})
	return tid, found
}

// update rewrites one column of a locked, pinned row.
func (c *Client) update(rel *catalog.Relation, tid storage.TID, col int, delta int64) int64 {
	c.s.PinPage(int(tid.Page))
	v := rel.Heap.ReadField(c.s.Mem(), tid, col)
	v += delta
	rel.Heap.WriteField(c.s.Mem(), tid, col, v)
	c.s.P.Work(60) // heap_update bookkeeping
	c.s.UnpinPage(int(tid.Page))
	return v
}

// Payment applies a customer payment: warehouse, district and customer rows
// all take a write.
func (c *Client) Payment() error {
	w := c.rng.intn(c.d.cfg.Warehouses)
	dd := c.rng.intn(DistrictsPerWarehouse)
	cu := c.rng.intn(CustomersPerDistrict)
	amount := int64(c.rng.intn(5000) + 1)
	c.s.P.Work(4000) // parse/plan/begin

	wTID, ok := c.fetchRow(c.d.wh, "warehouse_pk", int64(w))
	if !ok {
		return fmt.Errorf("oltp: warehouse %d missing", w)
	}
	c.lockWrite(c.d.wh, int64(w))
	c.update(c.d.wh, wTID, WYtd, amount)
	c.unlockWrite(c.d.wh, int64(w))

	dKey := districtKey(w, dd)
	dTID, ok := c.fetchRow(c.d.district, "district_pk", dKey)
	if !ok {
		return fmt.Errorf("oltp: district %d missing", dKey)
	}
	c.lockWrite(c.d.district, dKey)
	c.update(c.d.district, dTID, DYtd, amount)
	c.unlockWrite(c.d.district, dKey)

	cKey := customerKey(w, dd, cu)
	cTID, ok := c.fetchRow(c.d.customer, "customer_pk", cKey)
	if !ok {
		return fmt.Errorf("oltp: customer %d missing", cKey)
	}
	c.lockWrite(c.d.customer, cKey)
	c.update(c.d.customer, cTID, CBalance, -amount)
	c.update(c.d.customer, cTID, CYtdPayment, amount)
	c.unlockWrite(c.d.customer, cKey)

	c.Payments++
	c.AppliedAmount += amount
	return nil
}

// NewOrder consumes stock for a handful of items and advances the district's
// order counter.
func (c *Client) NewOrder() error {
	w := c.rng.intn(c.d.cfg.Warehouses)
	dd := c.rng.intn(DistrictsPerWarehouse)
	nItems := 5 + c.rng.intn(10)
	c.s.P.Work(6000)

	dKey := districtKey(w, dd)
	dTID, ok := c.fetchRow(c.d.district, "district_pk", dKey)
	if !ok {
		return fmt.Errorf("oltp: district %d missing", dKey)
	}
	c.lockWrite(c.d.district, dKey)
	c.update(c.d.district, dTID, DNextOID, 1)
	c.unlockWrite(c.d.district, dKey)

	for i := 0; i < nItems; i++ {
		sKey := stockKey(w, c.rng.intn(ItemsPerWarehouse))
		sTID, ok := c.fetchRow(c.d.stock, "stock_pk", sKey)
		if !ok {
			return fmt.Errorf("oltp: stock %d missing", sKey)
		}
		qty := int64(1 + c.rng.intn(5))
		c.lockWrite(c.d.stock, sKey)
		if got := c.update(c.d.stock, sTID, SQuantity, -qty); got < 10 {
			c.update(c.d.stock, sTID, SQuantity, 91) // restock, as TPC-C does
		}
		c.update(c.d.stock, sTID, SYtd, qty)
		c.unlockWrite(c.d.stock, sKey)
	}
	c.NewOrders++
	return nil
}

// RunMix executes the configured number of transactions.
func (c *Client) RunMix() error {
	for i := 0; i < c.d.cfg.Transactions; i++ {
		if c.rng.intn(100) < c.d.cfg.PaymentShare {
			if err := c.Payment(); err != nil {
				return err
			}
		} else {
			if err := c.NewOrder(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Stats is the outcome of an OLTP run.
type Stats struct {
	MachineName   string
	Granularity   Granularity
	Processes     int
	Transactions  int
	Payments      int
	NewOrders     int
	ThreadCycles  uint64 // total across processes
	WallCycles    uint64 // max across processes (makespan)
	VolSwitches   uint64
	Backoffs      uint64
	CoherencePct  float64
	Dirty3Hop     uint64
	AppliedAmount int64
	YtdTotal      int64 // measured warehouse w_ytd sum (conservation check)
}

// TxPerMCycle returns throughput in transactions per million wall cycles.
func (s *Stats) TxPerMCycle() float64 {
	if s.WallCycles == 0 {
		return 0
	}
	return float64(s.Transactions) / (float64(s.WallCycles) / 1e6)
}

// Run executes the OLTP mix with n processes on the given machine and checks
// the money-conservation invariant (sum of warehouse YTDs equals the total
// applied payment volume).
func Run(spec machine.Spec, cfg Config, n int, osTimeScale int) (*Stats, error) {
	if n <= 0 || n > spec.CPUs {
		return nil, fmt.Errorf("oltp: bad process count %d", n)
	}
	d := Load(cfg)
	spec.SharedLimit = d.db.SharedBytes
	m := machine.New(spec)
	osys := simos.New(m, simos.DefaultConfigScaled(spec.ClockMHz, osTimeScale), 0)

	clients := make([]*Client, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		osys.Spawn(i, func(p *simos.Process) {
			p.Classifier = d.db.Classify
			c := d.NewClient(p, i)
			clients[i] = c
			errs[i] = c.RunMix()
		})
	}
	if err := osys.Run(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	st := &Stats{
		MachineName: spec.Name,
		Granularity: cfg.Granularity,
		Processes:   n,
	}
	var cold, capac, coh uint64
	for i, p := range osys.Processes() {
		c := clients[i]
		st.Transactions += c.Payments + c.NewOrders
		st.Payments += c.Payments
		st.NewOrders += c.NewOrders
		st.AppliedAmount += c.AppliedAmount
		st.ThreadCycles += p.ThreadCycles()
		if p.Now() > st.WallCycles {
			st.WallCycles = p.Now()
		}
		st.VolSwitches += p.VoluntarySwitches()
		ct := m.Counters(i)
		st.Backoffs += ct.LockBackoffs
		st.Dirty3Hop += ct.Dirty3HopMisses
		cold += ct.ColdMisses
		capac += ct.CapacityMisses
		coh += ct.CoherenceMisses
	}
	if total := cold + capac + coh; total > 0 {
		st.CoherencePct = 100 * float64(coh) / float64(total)
	}

	// Conservation: warehouse YTDs must equal the applied payment volume.
	for r := 0; r < d.wh.Heap.NumTuples(); r++ {
		st.YtdTotal += d.wh.Heap.ReadField(storage.NullMem{}, d.wh.Heap.TIDOf(r), WYtd)
	}
	if st.YtdTotal != st.AppliedAmount {
		return nil, fmt.Errorf("oltp: money not conserved: ytd %d vs applied %d",
			st.YtdTotal, st.AppliedAmount)
	}
	return st, nil
}
