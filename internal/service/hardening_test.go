package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"dssmem/internal/experiments"
	"dssmem/internal/fault"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// errBody decodes the structured error body every non-200 response carries.
type errBody struct {
	Error     string `json:"error"`
	Retriable bool   `json:"retriable"`
	Status    int    `json:"status"`
}

func newTestServerCfg(t *testing.T, cfg Config) *Server {
	t.Helper()
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	cfg.Preset = experiments.Tiny
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.data = tinyData
	t.Cleanup(func() { s.Close() })
	return s
}

// TestAdmissionControlSheds: with one worker and a one-deep queue, a third
// concurrent distinct request is shed with 429, Retry-After, and a
// structured retriable body — and the server keeps serving afterwards.
func TestAdmissionControlSheds(t *testing.T) {
	srv := newTestServerCfg(t, Config{Workers: 1, MaxQueue: 1})
	gate := make(chan struct{})
	running := make(chan int, 8)
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		running <- o.Processes
		select {
		case <-gate:
		case <-ctx.Done():
		}
		return workload.RunContext(ctx, o)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Distinct procs => distinct digests => no singleflight merging.
	path := func(procs int) string {
		return fmt.Sprintf("/v1/measure?machine=vclass&query=Q6&procs=%d", procs)
	}
	type res struct {
		code int
		body []byte
		hdr  http.Header
	}
	resc := make(chan res, 3)
	do := func(procs int) {
		resp, body := get(t, ts, path(procs))
		resc <- res{resp.StatusCode, body, resp.Header}
	}

	go do(1)
	<-running // request 1 holds the worker slot
	go do(2)
	for srv.queued.Load() < 1 { // request 2 is parked in the wait queue
		time.Sleep(time.Millisecond)
	}
	resp, body := get(t, ts, path(3)) // no room left: shed
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third request: %d %s, want 429", resp.StatusCode, body)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Fatal("429 without Retry-After")
	} else if n, err := strconv.Atoi(ra); err != nil || n < 1 {
		t.Fatalf("Retry-After %q not a positive integer", ra)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil || !eb.Retriable || eb.Status != 429 {
		t.Fatalf("429 body %s (err %v), want retriable structured error", body, err)
	}
	if srv.shed.Load() != 1 {
		t.Fatalf("shed = %d, want 1", srv.shed.Load())
	}

	close(gate) // release; the two admitted requests must complete
	for i := 0; i < 2; i++ {
		r := <-resc
		if r.code != http.StatusOK {
			t.Fatalf("admitted request finished %d: %s", r.code, r.body)
		}
	}
}

// TestWatchdogAbandonsWedgedRun: a run that ignores cancellation entirely is
// abandoned at the hard deadline with a retriable 504, its worker slot is
// reclaimed, and the server keeps serving.
func TestWatchdogAbandonsWedgedRun(t *testing.T) {
	// The deadline must be long enough that the genuine run of the second
	// request (procs=2, ~tens of ms, slower under -race) never trips it.
	srv := newTestServerCfg(t, Config{Workers: 1, HardDeadline: 2 * time.Second})
	wedged := make(chan struct{})
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		if o.Processes == 1 {
			<-wedged // ignores ctx: a truly hung simulation
			return nil, fmt.Errorf("released")
		}
		return workload.RunContext(ctx, o)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer close(wedged)

	resp, body := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("wedged run: %d %s, want 504", resp.StatusCode, body)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil || !eb.Retriable {
		t.Fatalf("504 body %s, want retriable", body)
	}
	if srv.wdKills.Load() != 1 {
		t.Fatalf("watchdog kills = %d, want 1", srv.wdKills.Load())
	}
	if srv.hung.Load() != 1 {
		t.Fatalf("hung gauge = %d, want 1 while the zombie lives", srv.hung.Load())
	}

	// The slot was reclaimed: the next (distinct) request completes even
	// though the zombie still blocks.
	resp, body = get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-watchdog request: %d %s", resp.StatusCode, body)
	}
}

// TestInjectedPanicIsRetriable503: a compute panic is isolated, surfaces as
// a retriable 503, and the digest stays retriable — the next attempt
// succeeds.
func TestInjectedPanicIsRetriable503(t *testing.T) {
	inj := fault.New(1)
	inj.Set(fault.ComputePanic, 1)
	srv := newTestServerCfg(t, Config{Workers: 2, Faults: inj})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("panicked run: %d %s, want 503", resp.StatusCode, body)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil || !eb.Retriable {
		t.Fatalf("503 body %s, want retriable", body)
	}
	inj.DisableAll()
	resp, body = get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retry after panic: %d %s", resp.StatusCode, body)
	}
}

// TestHealthzDegradedAndRecovery: disk faults trip the store's breaker;
// healthz flips to "degraded"; once the disk heals and a probe succeeds it
// returns to "ok".
func TestHealthzDegradedAndRecovery(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(3)
	store, err := rescache.OpenFS(dir, fault.FS{Inner: rescache.OSFS{}, Inj: inj})
	if err != nil {
		t.Fatal(err)
	}
	store.SetBreaker(1, 10*time.Millisecond)
	srv := newTestServerCfg(t, Config{Workers: 2, Store: store})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	health := func() string {
		_, body := get(t, ts, "/healthz")
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz body %s: %v", body, err)
		}
		return h.Status
	}
	if got := health(); got != "ok" {
		t.Fatalf("initial health %q", got)
	}

	inj.Set(fault.DiskWriteErr, 1)
	resp, body := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure during disk faults: %d %s (results must not depend on disk)", resp.StatusCode, body)
	}
	if got := health(); got != "degraded" {
		t.Fatalf("health after breaker trip = %q, want degraded", got)
	}

	// Disk heals; after the cooldown a fresh (uncached) request's Put is
	// the half-open probe that closes the breaker.
	inj.DisableAll()
	deadline := time.Now().Add(5 * time.Second)
	for health() != "ok" {
		if time.Now().After(deadline) {
			t.Fatal("health never recovered to ok after faults stopped")
		}
		time.Sleep(20 * time.Millisecond)
		get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=2")
	}
}

// TestBadRequestBodyShape: 400s carry the structured body with
// retriable=false (a malformed request never succeeds on retry).
func TestBadRequestBodyShape(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, "").Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/v1/measure?machine=cray")
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var eb errBody
	if err := json.Unmarshal(body, &eb); err != nil {
		t.Fatalf("400 body %s not structured: %v", body, err)
	}
	if eb.Retriable || eb.Status != 400 || eb.Error == "" {
		t.Fatalf("400 body: %+v", eb)
	}
	if resp.Header.Get("Retry-After") != "" {
		t.Fatal("non-retriable response carries Retry-After")
	}
	if !strings.Contains(resp.Header.Get("Content-Type"), "application/json") {
		t.Fatalf("content type %q", resp.Header.Get("Content-Type"))
	}
}
