package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"dssmem/internal/experiments"
	"dssmem/internal/job"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// TestSweepJobJournaled: a live sweep through the worker API is recorded as
// a durable job — the response names it via X-Job-ID, and the jobs API
// serves its terminal state with every point accounted for.
func TestSweepJobJournaled(t *testing.T) {
	srv := newTestServerCfg(t, Config{JobDir: t.TempDir()})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := get(t, ts, "/v1/sweep?machine=vclass&query=Q6")
	if resp.StatusCode != 200 {
		t.Fatalf("sweep: %d %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Job-ID")
	if id == "" {
		t.Fatal("sweep response missing X-Job-ID")
	}

	_, jbody := get(t, ts, "/v1/jobs/"+id)
	var snap job.Snapshot
	if err := json.Unmarshal(jbody, &snap); err != nil {
		t.Fatalf("job body %s: %v", jbody, err)
	}
	if snap.State != job.StateDone || snap.Completed != len(experiments.ProcCounts) {
		t.Fatalf("job = %+v, want done with %d points", snap, len(experiments.ProcCounts))
	}
	_, lbody := get(t, ts, "/v1/jobs")
	if !strings.Contains(string(lbody), id) {
		t.Fatalf("/v1/jobs listing misses job %s: %s", id, lbody)
	}
	resp, ebody := get(t, ts, "/v1/jobs/"+strings.Repeat("0", 64))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: %d %s, want 404", resp.StatusCode, ebody)
	}
}

// TestSweepJobResume: a journal left running by a killed daemon is picked up
// on the next start — the sweep finishes in the background and the client's
// retried GET is served from cache, not recomputed.
func TestSweepJobResume(t *testing.T) {
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	jobDir := t.TempDir()
	spec, err := ParseMachine("vclass", "", experiments.Tiny.MemScale)
	if err != nil {
		t.Fatal(err)
	}
	q, err := ParseQuery("Q6")
	if err != nil {
		t.Fatal(err)
	}
	dig, err := SweepDigest(experiments.Tiny, spec, q)
	if err != nil {
		t.Fatal(err)
	}

	// The moment after a SIGKILL: start record and one completed point in the
	// journal, no terminal record.
	jm, err := job.Open(jobDir)
	if err != nil {
		t.Fatal(err)
	}
	j0, _, err := jm.Start(string(dig), "sweep", "/v1/sweep?machine=vclass&query=Q6", len(experiments.ProcCounts))
	if err != nil {
		t.Fatal(err)
	}
	pdig := MeasureDigest(experiments.Tiny, q, experiments.ProcCounts[0], workload.Options{Spec: spec})
	if err := j0.Point(0, string(pdig)); err != nil {
		t.Fatal(err)
	}

	// "Restart" the daemon on the same journal dir. Data is passed in the
	// config (not patched afterwards) because the resume goroutine starts
	// inside New.
	srv, err := New(Config{Preset: experiments.Tiny, Data: tinyData, JobDir: jobDir})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	deadline := time.Now().Add(30 * time.Second)
	for {
		j := srv.Jobs().Get(string(dig))
		if j != nil && j.State() == job.StateDone {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job not resumed: %v", j)
		}
		time.Sleep(20 * time.Millisecond)
	}

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/v1/sweep?machine=vclass&query=Q6")
	if resp.StatusCode != 200 {
		t.Fatalf("sweep after resume: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("sweep after resume X-Cache = %q, want hit", resp.Header.Get("X-Cache"))
	}
	_, metrics := get(t, ts, "/metrics")
	if !strings.Contains(string(metrics), "dssmem_jobs_resumed_total 1") {
		t.Errorf("metrics missing dssmem_jobs_resumed_total 1")
	}
	if !strings.Contains(string(metrics), `dssmem_jobs{state="done"} 1`) {
		t.Errorf("metrics missing dssmem_jobs{state=\"done\"} 1")
	}

	// The resumed bytes match a fresh computation on a clean server.
	ref := httptest.NewServer(newTestServer(t, "").Handler())
	defer ref.Close()
	_, refBody := get(t, ref, "/v1/sweep?machine=vclass&query=Q6")
	if !bytes.Equal(body, refBody) {
		t.Fatalf("resumed sweep differs from fresh compute:\n got %s\nwant %s", body, refBody)
	}
}

// TestCacheFillEndpoint: the PUT side of hinted handoff — a framed entry
// round-trips through PUT and GET byte-identically, shows up in the
// namespace listing, and corrupt frames or bad namespaces change nothing.
func TestCacheFillEndpoint(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	payload := []byte(`{"planted":true}`)
	dig := strings.Repeat("ab", 32)
	put := func(ns, dig string, body []byte) int {
		t.Helper()
		req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/cache/"+ns+"/"+dig, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	framed := rescache.FrameEntry(payload)
	if code := put(rescache.NSMeasurement, dig, framed); code != http.StatusNoContent {
		t.Fatalf("PUT framed entry: %d, want 204", code)
	}
	resp, body := get(t, ts, "/v1/cache/"+rescache.NSMeasurement+"/"+dig)
	if resp.StatusCode != 200 {
		t.Fatalf("GET after fill: %d", resp.StatusCode)
	}
	if !bytes.Equal(body, framed) {
		t.Fatalf("fill did not round-trip:\n got %q\nwant %q", body, framed)
	}
	_, listing := get(t, ts, "/v1/cache/"+rescache.NSMeasurement)
	if !strings.Contains(string(listing), dig) {
		t.Fatalf("listing misses filled digest: %s", listing)
	}

	// A frame with a flipped payload byte fails verification before storage.
	bad := rescache.FrameEntry(payload)
	bad[len(bad)-1] ^= 0xff
	other := strings.Repeat("cd", 32)
	if code := put(rescache.NSMeasurement, other, bad); code != http.StatusBadRequest {
		t.Fatalf("PUT corrupt frame: %d, want 400", code)
	}
	if resp, _ := get(t, ts, "/v1/cache/"+rescache.NSMeasurement+"/"+other); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("corrupt fill stored something: GET = %d, want 404", resp.StatusCode)
	}
	if code := put("nonsense", dig, framed); code != http.StatusBadRequest {
		t.Fatalf("PUT to unknown namespace: %d, want 400", code)
	}
	if code := put(rescache.NSMeasurement, "not-a-digest", framed); code != http.StatusBadRequest {
		t.Fatalf("PUT malformed digest: %d, want 400", code)
	}
}
