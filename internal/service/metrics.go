package service

import (
	"fmt"
	"net/http"
	"time"
)

// handleMetrics renders the daemon's counters in the Prometheus text
// exposition format. Written by hand — the repository takes no dependency on
// a metrics library; the format is four lines of convention.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	cs := s.store.Stats()
	s.latMu.Lock()
	latSum, latCount := s.latSum, s.latCount
	s.latMu.Unlock()

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := func(format string, args ...any) { fmt.Fprintf(w, format+"\n", args...) }

	p("# HELP dssmem_cache_hits_total Results served without simulation, by tier.")
	p("# TYPE dssmem_cache_hits_total counter")
	p("dssmem_cache_hits_total{tier=\"mem\"} %d", cs.MemHits)
	p("dssmem_cache_hits_total{tier=\"disk\"} %d", cs.DiskHits)
	p("# HELP dssmem_cache_misses_total Requests that required a compute.")
	p("# TYPE dssmem_cache_misses_total counter")
	p("dssmem_cache_misses_total %d", cs.Misses)
	p("# HELP dssmem_singleflight_shared_total Requests that joined an identical in-flight compute.")
	p("# TYPE dssmem_singleflight_shared_total counter")
	p("dssmem_singleflight_shared_total %d", cs.Shared)
	p("# HELP dssmem_cache_aborted_total Computes cancelled because every waiter left.")
	p("# TYPE dssmem_cache_aborted_total counter")
	p("dssmem_cache_aborted_total %d", cs.Aborted)
	p("# HELP dssmem_cache_panics_total Computes that panicked (isolated).")
	p("# TYPE dssmem_cache_panics_total counter")
	p("dssmem_cache_panics_total %d", cs.Panics)
	p("# HELP dssmem_cache_disk_errors_total Disk tier I/O failures (feed the circuit breaker).")
	p("# TYPE dssmem_cache_disk_errors_total counter")
	p("dssmem_cache_disk_errors_total %d", cs.DiskErrors)
	p("# HELP dssmem_cache_corrupt_total Disk entries that failed checksum verification.")
	p("# TYPE dssmem_cache_corrupt_total counter")
	p("dssmem_cache_corrupt_total %d", cs.Corrupt)
	p("# HELP dssmem_cache_quarantined_total Corrupt entries moved to quarantine.")
	p("# TYPE dssmem_cache_quarantined_total counter")
	p("dssmem_cache_quarantined_total %d", cs.Quarantined)
	p("# HELP dssmem_cache_disk_skipped_total Disk operations bypassed in degraded (memory-only) mode.")
	p("# TYPE dssmem_cache_disk_skipped_total counter")
	p("dssmem_cache_disk_skipped_total %d", cs.DiskSkipped)
	p("# HELP dssmem_cache_breaker_state Disk circuit breaker: 0 closed, 1 half-open, 2 open.")
	p("# TYPE dssmem_cache_breaker_state gauge")
	p("dssmem_cache_breaker_state %d", breakerGauge(cs.Breaker))
	p("# HELP dssmem_cache_breaker_trips_total Breaker transitions into the open state.")
	p("# TYPE dssmem_cache_breaker_trips_total counter")
	p("dssmem_cache_breaker_trips_total %d", cs.BreakerTrips)
	p("# HELP dssmem_cache_orphans_swept_total Crash-orphaned temp files removed at startup.")
	p("# TYPE dssmem_cache_orphans_swept_total counter")
	p("dssmem_cache_orphans_swept_total %d", cs.OrphansSwept)

	p("# HELP dssmem_runs_total Simulations started by the worker pool.")
	p("# TYPE dssmem_runs_total counter")
	p("dssmem_runs_total %d", s.runs.Load())
	p("# HELP dssmem_runs_inflight Simulations currently executing.")
	p("# TYPE dssmem_runs_inflight gauge")
	p("dssmem_runs_inflight %d", s.inflight.Load())
	p("# HELP dssmem_run_errors_total Simulations that returned an error (including aborts).")
	p("# TYPE dssmem_run_errors_total counter")
	p("dssmem_run_errors_total %d", s.runErrs.Load())
	p("# HELP dssmem_run_aborts_total Simulations aborted by cancellation or timeout.")
	p("# TYPE dssmem_run_aborts_total counter")
	p("dssmem_run_aborts_total %d", s.aborted.Load())
	p("# HELP dssmem_runs_queued Runs waiting for a worker slot.")
	p("# TYPE dssmem_runs_queued gauge")
	p("dssmem_runs_queued %d", s.queued.Load())
	p("# HELP dssmem_runs_shed_total Runs rejected by admission control (429).")
	p("# TYPE dssmem_runs_shed_total counter")
	p("dssmem_runs_shed_total %d", s.shed.Load())
	p("# HELP dssmem_watchdog_kills_total Runs abandoned by the hard-deadline watchdog.")
	p("# TYPE dssmem_watchdog_kills_total counter")
	p("dssmem_watchdog_kills_total %d", s.wdKills.Load())
	p("# HELP dssmem_runs_abandoned_live Abandoned runs that have not exited yet.")
	p("# TYPE dssmem_runs_abandoned_live gauge")
	p("dssmem_runs_abandoned_live %d", s.hung.Load())
	p("# HELP dssmem_run_seconds Wall-clock simulation time.")
	p("# TYPE dssmem_run_seconds summary")
	p("dssmem_run_seconds_sum %g", latSum)
	p("dssmem_run_seconds_count %d", latCount)

	p("# HELP dssmem_requests_total API requests handled.")
	p("# TYPE dssmem_requests_total counter")
	p("dssmem_requests_total %d", s.reqTotal.Load())
	p("# HELP dssmem_request_errors_total API requests that failed.")
	p("# TYPE dssmem_request_errors_total counter")
	p("dssmem_request_errors_total %d", s.reqErrors.Load())
	p("# HELP dssmem_uptime_seconds Seconds since the daemon started.")
	p("# TYPE dssmem_uptime_seconds gauge")
	p("dssmem_uptime_seconds %g", time.Since(s.start).Seconds())
}

func breakerGauge(state string) int {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}
