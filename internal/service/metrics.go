package service

import (
	"net/http"
	"time"

	"dssmem/internal/job"
	"dssmem/internal/telemetry"
)

// initMetrics builds the server's metric families on one registry — the
// single snapshot source for /metrics. Rescache counters are polled from the
// store at scrape time (the store's atomics stay authoritative; no double
// accounting); service counters live directly in the registry. Every family
// name predates the registry and must stay stable — the name-compat test
// pins the list.
func (s *Server) initMetrics() {
	r := telemetry.NewRegistry()
	s.reg = r

	r.PollCounter("dssmem_cache_hits_total", "Results served without simulation, by tier.",
		[]string{"tier"}, func(emit func(float64, ...string)) {
			cs := s.store.Stats()
			emit(float64(cs.MemHits), "mem")
			emit(float64(cs.DiskHits), "disk")
		})
	pollStore := func(name, help string, field func() uint64) {
		r.PollCounter(name, help, nil, func(emit func(float64, ...string)) {
			emit(float64(field()))
		})
	}
	pollStore("dssmem_cache_misses_total", "Requests that required a compute.",
		func() uint64 { return s.store.Stats().Misses })
	pollStore("dssmem_singleflight_shared_total", "Requests that joined an identical in-flight compute.",
		func() uint64 { return s.store.Stats().Shared })
	pollStore("dssmem_cache_puts_total", "Results stored into the cache.",
		func() uint64 { return s.store.Stats().Puts })
	pollStore("dssmem_cache_aborted_total", "Computes cancelled because every waiter left.",
		func() uint64 { return s.store.Stats().Aborted })
	pollStore("dssmem_cache_panics_total", "Computes that panicked (isolated).",
		func() uint64 { return s.store.Stats().Panics })
	pollStore("dssmem_cache_disk_errors_total", "Disk tier I/O failures (feed the circuit breaker).",
		func() uint64 { return s.store.Stats().DiskErrors })
	pollStore("dssmem_cache_corrupt_total", "Disk entries that failed checksum verification.",
		func() uint64 { return s.store.Stats().Corrupt })
	pollStore("dssmem_cache_quarantined_total", "Corrupt entries moved to quarantine.",
		func() uint64 { return s.store.Stats().Quarantined })
	pollStore("dssmem_cache_disk_skipped_total", "Disk operations bypassed in degraded (memory-only) mode.",
		func() uint64 { return s.store.Stats().DiskSkipped })
	pollStore("dssmem_cache_peer_hits_total", "Local misses filled from a fleet peer (verified).",
		func() uint64 { return s.store.Stats().PeerHits })
	pollStore("dssmem_cache_peer_misses_total", "Peer-tier lookups no peer could answer.",
		func() uint64 { return s.store.Stats().PeerMisses })
	pollStore("dssmem_cache_peer_errors_total", "Peer fetches failing in transport (feed the peer breaker).",
		func() uint64 { return s.store.Stats().PeerErrors })
	pollStore("dssmem_cache_peer_corrupt_total", "Peer replies that failed frame verification.",
		func() uint64 { return s.store.Stats().PeerCorrupt })
	pollStore("dssmem_cache_peer_skipped_total", "Peer fetches bypassed while the peer breaker was open.",
		func() uint64 { return s.store.Stats().PeerSkipped })
	r.PollGauge("dssmem_cache_peer_breaker_state", "Peer-tier circuit breaker: 0 closed, 1 half-open, 2 open.",
		nil, func(emit func(float64, ...string)) {
			emit(float64(breakerGauge(s.store.Stats().PeerBreaker)))
		})
	r.PollGauge("dssmem_cache_breaker_state", "Disk circuit breaker: 0 closed, 1 half-open, 2 open.",
		nil, func(emit func(float64, ...string)) {
			emit(float64(breakerGauge(s.store.Stats().Breaker)))
		})
	pollStore("dssmem_cache_breaker_trips_total", "Breaker transitions into the open state.",
		func() uint64 { return s.store.Stats().BreakerTrips })
	pollStore("dssmem_cache_orphans_swept_total", "Crash-orphaned temp files removed at startup.",
		func() uint64 { return s.store.Stats().OrphansSwept })

	s.runs = r.Counter("dssmem_runs_total", "Simulations started by the worker pool.")
	s.inflight = r.Gauge("dssmem_runs_inflight", "Simulations currently executing.")
	s.runErrs = r.Counter("dssmem_run_errors_total", "Simulations that returned an error (including aborts).")
	s.aborted = r.Counter("dssmem_run_aborts_total", "Simulations aborted by cancellation or timeout.")
	s.queued = r.Gauge("dssmem_runs_queued", "Runs waiting for a worker slot.")
	s.shed = r.Counter("dssmem_runs_shed_total", "Runs rejected by admission control (429).")
	s.wdKills = r.Counter("dssmem_watchdog_kills_total", "Runs abandoned by the hard-deadline watchdog.")
	s.hung = r.Gauge("dssmem_runs_abandoned_live", "Abandoned runs that have not exited yet.")
	s.runSeconds = r.Histogram("dssmem_run_seconds", "Wall-clock simulation time.", nil)

	s.reqTotal = r.Counter("dssmem_requests_total", "API requests handled.")
	s.reqErrors = r.Counter("dssmem_request_errors_total", "API requests that failed.")
	s.retries = r.Counter("dssmem_request_retries_total", "Requests arriving as a retry (X-Request-Attempt > 1).")
	s.reqSeconds = r.HistogramVec("dssmem_request_seconds", "End-to-end API request latency.", nil, "endpoint")
	s.phaseSeconds = r.HistogramVec("dssmem_phase_seconds",
		"Request time by phase: queue, cache_mem, cache_disk, cache_peer, compute, encode.", nil, "phase")
	r.PollGauge("dssmem_uptime_seconds", "Seconds since the daemon started.",
		nil, func(emit func(float64, ...string)) {
			emit(time.Since(s.start).Seconds())
		})

	s.jobsResumed = r.Counter("dssmem_jobs_resumed_total",
		"Unfinished journaled sweeps resumed after a restart.")
	r.PollGauge("dssmem_jobs", "Journaled jobs by state.",
		[]string{"state"}, func(emit func(float64, ...string)) {
			counts := map[job.State]int{}
			for _, j := range s.jobs.Jobs() {
				counts[j.State()]++
			}
			for _, st := range []job.State{job.StateRunning, job.StateDone, job.StateFailed} {
				emit(float64(counts[st]), string(st))
			}
		})
}

// handleMetrics renders the registry in the Prometheus text exposition
// format. The repository still takes no dependency on a metrics library —
// the registry is internal/telemetry.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WriteText(w)
}

func breakerGauge(state string) int {
	switch state {
	case "half-open":
		return 1
	case "open":
		return 2
	}
	return 0
}
