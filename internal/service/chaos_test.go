package service

// Chaos test: hammer a daemon whose disk, compute, and simulation layers are
// all failing probabilistically, through the retrying client, and assert the
// only two permissible outcomes:
//
//   1. HTTP 200 with a measurement byte-identical to the fault-free baseline
//      (faults may slow an answer or force a retry, never change it), or
//   2. an error the server marked retriable (shed, degraded, watchdog-killed,
//      panicked) — never a silent wrong answer, never a non-retriable error
//      for a valid request.
//
// The daemon is restarted between rounds on the same cache directory so the
// disk tier — where torn writes and bit rot live — is actually on the read
// path (a warm memory tier would mask it), and must recover to health once
// the faults stop. CHAOS_ITERS scales the per-goroutine iteration count for
// the nightly CI job.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"
	"time"

	"dssmem/internal/client"
	"dssmem/internal/fault"
	"dssmem/internal/rescache"
)

type measureBody struct {
	Digest      string          `json:"digest"`
	Cache       string          `json:"cache"`
	Measurement json.RawMessage `json:"measurement"`
}

func chaosIters(t *testing.T) int {
	if v := os.Getenv("CHAOS_ITERS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("CHAOS_ITERS=%q: %v", v, err)
		}
		return n
	}
	if testing.Short() {
		return 10
	}
	return 40
}

func TestChaos(t *testing.T) {
	dir := t.TempDir()
	inj := fault.New(20260806)

	paths := make([]string, 0, 12)
	for _, m := range []string{"vclass", "origin"} {
		for _, q := range []string{"Q6", "Q12"} {
			for _, p := range []int{1, 2, 4} {
				paths = append(paths, fmt.Sprintf("/v1/measure?machine=%s&query=%s&procs=%d", m, q, p))
			}
		}
	}

	// newRound opens a fresh daemon over the same cache directory: cold
	// memory tier, warm (and possibly rotten) disk tier.
	newRound := func() (*Server, *httptest.Server) {
		store, err := rescache.OpenFS(dir, fault.FS{Inner: rescache.OSFS{}, Inj: inj})
		if err != nil {
			t.Fatal(err)
		}
		store.SetBreaker(3, 100*time.Millisecond)
		srv := newTestServerCfg(t, Config{
			Workers:      4,
			MaxQueue:     16,
			HardDeadline: 3 * time.Second,
			Store:        store,
			Faults:       inj,
		})
		return srv, httptest.NewServer(srv.Handler())
	}

	// Fault-free baseline: the ground truth every later 200 is held to.
	srv, ts := newRound()
	baseline := make(map[string]measureBody, len(paths))
	for _, p := range paths {
		resp, body := get(t, ts, p)
		if resp.StatusCode != 200 {
			t.Fatalf("baseline %s: %d %s", p, resp.StatusCode, body)
		}
		var mb measureBody
		if err := json.Unmarshal(body, &mb); err != nil {
			t.Fatalf("baseline %s: %v", p, err)
		}
		baseline[p] = mb
	}

	arm := func() {
		inj.Set(fault.DiskReadErr, 0.10)
		inj.Set(fault.DiskReadCorrupt, 0.10)
		inj.Set(fault.DiskWriteErr, 0.10)
		inj.Set(fault.DiskWriteTorn, 0.10)
		inj.Set(fault.ComputePanic, 0.05)
		inj.Set(fault.ComputeHang, 0.005)
		// SimStall fires per quantum boundary (hundreds per run): keep the
		// per-boundary probability and stall small or runs take seconds.
		inj.Set(fault.SimStall, 0.02)
		inj.SetStall(2 * time.Millisecond)
	}

	iters := chaosIters(t)
	const goroutines = 8
	var okCount, errCount int64
	var cmu sync.Mutex

	for round := 0; round < 3; round++ {
		if round > 0 {
			// Restart on the rotten disk: startup sweep + disk-tier reads.
			inj.DisableAll()
			ts.Close()
			srv.Close()
			srv, ts = newRound()
		}
		arm()

		cl, err := client.New(client.Config{
			BaseURL:     ts.URL,
			HTTP:        ts.Client(),
			MaxAttempts: 8,
			BaseDelay:   2 * time.Millisecond,
			MaxDelay:    50 * time.Millisecond,
			Seed:        int64(round + 1),
		})
		if err != nil {
			t.Fatal(err)
		}

		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(round*goroutines + g)))
				for i := 0; i < iters; i++ {
					p := paths[rng.Intn(len(paths))]
					resp, err := cl.Get(context.Background(), p)
					if err != nil {
						var ae *client.APIError
						if errors.As(err, &ae) && !ae.Retriable {
							t.Errorf("%s: non-retriable server error for a valid request: %v", p, err)
							return
						}
						// Retries exhausted or transport failure under
						// injected faults: acceptable, but never wrong data.
						cmu.Lock()
						errCount++
						cmu.Unlock()
						continue
					}
					var mb measureBody
					if err := json.Unmarshal(resp.Body, &mb); err != nil {
						t.Errorf("%s: 200 with undecodable body: %v", p, err)
						return
					}
					want := baseline[p]
					if mb.Digest != want.Digest {
						t.Errorf("%s: digest drifted under faults: %s != %s", p, mb.Digest, want.Digest)
						return
					}
					if string(mb.Measurement) != string(want.Measurement) {
						t.Errorf("%s: 200 body differs from fault-free baseline under faults:\n got %s\nwant %s",
							p, mb.Measurement, want.Measurement)
						return
					}
					cmu.Lock()
					okCount++
					cmu.Unlock()
				}
			}(g)
		}
		wg.Wait()
		if t.Failed() {
			t.Fatalf("round %d: wrong answers under fault injection (quarantine dir: %s)", round, srv.Store().QuarantineDir())
		}
	}

	// Faults stop; the daemon must recover to full health. Fresh-digest
	// requests force Put probes through the half-open breaker (warm cache
	// hits never touch the disk, so they cannot heal it).
	inj.DisableAll()
	deadline := time.Now().Add(15 * time.Second)
	probe := 5
	for {
		_, body := get(t, ts, "/healthz")
		var h struct {
			Status string `json:"status"`
		}
		if err := json.Unmarshal(body, &h); err != nil {
			t.Fatalf("healthz: %s: %v", body, err)
		}
		if h.Status == "ok" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon stuck in %q after faults stopped", h.Status)
		}
		get(t, ts, fmt.Sprintf("/v1/measure?machine=vclass&query=Q6&procs=%d", probe))
		probe++
		time.Sleep(50 * time.Millisecond)
	}

	// Full verification sweep: every path still serves the baseline answer.
	for _, p := range paths {
		resp, body := get(t, ts, p)
		if resp.StatusCode != 200 {
			t.Fatalf("post-chaos %s: %d %s", p, resp.StatusCode, body)
		}
		var mb measureBody
		if err := json.Unmarshal(body, &mb); err != nil {
			t.Fatal(err)
		}
		if string(mb.Measurement) != string(baseline[p].Measurement) {
			t.Fatalf("post-chaos %s: measurement differs from baseline", p)
		}
	}

	st := srv.Store().Stats()
	t.Logf("chaos: %d ok, %d gave up after retries; store: %+v", okCount, errCount, st)
	if okCount == 0 {
		t.Fatal("chaos produced no successful requests — faults too aggressive to mean anything")
	}
}
