package service

import (
	"bytes"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"dssmem/internal/experiments"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
)

// legacyMetricNames pins every family name that existed before the registry:
// renaming any of them breaks dashboards and the fleet rollup, so this list
// only ever grows.
var legacyMetricNames = []string{
	"dssmem_cache_hits_total",
	"dssmem_cache_misses_total",
	"dssmem_singleflight_shared_total",
	"dssmem_cache_aborted_total",
	"dssmem_cache_panics_total",
	"dssmem_cache_disk_errors_total",
	"dssmem_cache_corrupt_total",
	"dssmem_cache_quarantined_total",
	"dssmem_cache_disk_skipped_total",
	"dssmem_cache_breaker_state",
	"dssmem_cache_breaker_trips_total",
	"dssmem_cache_orphans_swept_total",
	"dssmem_runs_total",
	"dssmem_runs_inflight",
	"dssmem_run_errors_total",
	"dssmem_run_aborts_total",
	"dssmem_runs_queued",
	"dssmem_runs_shed_total",
	"dssmem_watchdog_kills_total",
	"dssmem_runs_abandoned_live",
	"dssmem_run_seconds",
	"dssmem_requests_total",
	"dssmem_request_errors_total",
	"dssmem_uptime_seconds",
}

func TestMetricsNameCompatAndLint(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Exercise a real request so run/request/phase series materialize.
	resp, _ := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d", resp.StatusCode)
	}

	_, body := get(t, ts, "/metrics")
	rep, err := telemetry.Lint(bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Problems) != 0 {
		t.Fatalf("/metrics lint problems: %v", rep.Problems)
	}
	for _, name := range legacyMetricNames {
		if !rep.HasFamily(name) {
			t.Errorf("legacy family %s missing from /metrics", name)
		}
	}
	// dssmem_run_seconds is a histogram now; the old summary's _sum/_count
	// series must still exist under the same names.
	for _, s := range []string{"dssmem_run_seconds_sum", "dssmem_run_seconds_count", "dssmem_run_seconds_bucket"} {
		if !rep.HasSeries(s) {
			t.Errorf("series %s missing", s)
		}
	}
	// New request-scoped families.
	for _, name := range []string{"dssmem_request_seconds", "dssmem_phase_seconds", "dssmem_request_retries_total", "dssmem_cache_puts_total"} {
		if !rep.HasFamily(name) {
			t.Errorf("new family %s missing", name)
		}
	}
	out := string(body)
	for _, want := range []string{
		`dssmem_request_seconds_count{endpoint="/v1/measure"} 1`,
		`dssmem_phase_seconds_count{phase="compute"} 1`,
		`dssmem_phase_seconds_count{phase="cache_mem"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestRequestIDPropagation(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Server mints an ID when none is supplied.
	resp, _ := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	minted := resp.Header.Get("X-Request-ID")
	if len(minted) != 16 {
		t.Fatalf("minted X-Request-ID = %q, want 16 hex chars", minted)
	}

	// A well-formed inbound ID is honored and echoed.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/measure?machine=vclass&query=Q6&procs=1", nil)
	req.Header.Set("X-Request-ID", "caller-id-42")
	req.Header.Set("X-Request-Attempt", "3")
	resp2, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if got := resp2.Header.Get("X-Request-ID"); got != "caller-id-42" {
		t.Fatalf("echoed ID = %q, want caller-id-42", got)
	}
	if srv.retries.Load() != 1 {
		t.Fatalf("retries counter = %d, want 1 (attempt 3 arrived)", srv.retries.Load())
	}

	// A malformed inbound ID (label-breaking characters) is replaced.
	req3, _ := http.NewRequest("GET", ts.URL+"/v1/measure?machine=vclass&query=Q6&procs=1", nil)
	req3.Header.Set("X-Request-ID", `evil"id{}`)
	resp3, err := ts.Client().Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	resp3.Body.Close()
	if got := resp3.Header.Get("X-Request-ID"); got == `evil"id{}` || len(got) != 16 {
		t.Fatalf("malformed inbound ID must be replaced with a minted one, got %q", got)
	}
}

func TestDebugRequests(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/measure?machine=vclass&query=Q6&procs=1", nil)
	req.Header.Set("X-Request-ID", "debug-test-req")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	_, body := get(t, ts, "/debug/requests")
	var doc struct {
		Inflight []telemetry.RequestView `json:"inflight"`
		Recent   []telemetry.RequestView `json:"recent"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatalf("bad /debug/requests JSON: %v\n%s", err, body)
	}
	var found *telemetry.RequestView
	for i := range doc.Recent {
		if doc.Recent[i].ID == "debug-test-req" {
			found = &doc.Recent[i]
		}
	}
	if found == nil {
		t.Fatalf("request debug-test-req not in recent: %s", body)
	}
	if found.Endpoint != "/v1/measure" || !found.Done || found.Status != 200 ||
		found.Outcome != "ok" || found.Cache == "" || found.Digest == "" {
		t.Fatalf("recent view incomplete: %+v", found)
	}
	phases := map[string]bool{}
	for _, ph := range found.Phases {
		phases[ph.Name] = true
	}
	if !phases[telemetry.PhaseCompute] || !phases[telemetry.PhaseCacheMem] || !phases[telemetry.PhaseEncode] {
		t.Fatalf("phase breakdown incomplete: %+v", found.Phases)
	}
}

func TestStructuredRequestLog(t *testing.T) {
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, err := New(Config{Preset: experiments.Tiny, Log: logger})
	if err != nil {
		t.Fatal(err)
	}
	s.data = tinyData
	t.Cleanup(func() { s.Close() })
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	req, _ := http.NewRequest("GET", ts.URL+"/v1/measure?machine=vclass&query=Q6&procs=1", nil)
	req.Header.Set("X-Request-ID", "log-test-req")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	var line map[string]any
	dec := json.NewDecoder(&buf)
	found := false
	for dec.More() {
		if err := dec.Decode(&line); err != nil {
			break
		}
		if line["req"] == "log-test-req" {
			found = true
			break
		}
	}
	if !found {
		t.Fatalf("no structured log line for the request; log:\n%s", buf.String())
	}
	for _, key := range []string{"endpoint", "status", "outcome", "duration_ms", "digest", "cache", "phase_compute_ms", "phase_cache_mem_ms", "phase_encode_ms"} {
		if _, ok := line[key]; !ok {
			t.Errorf("log line missing %q: %v", key, line)
		}
	}
	if line["endpoint"] != "/v1/measure" || line["status"] != float64(200) || line["outcome"] != "ok" {
		t.Errorf("log line fields wrong: %v", line)
	}
}
