package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dssmem/internal/core"
	"dssmem/internal/experiments"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// newTestServer builds a tiny-preset server. The generated dataset is cached
// per test binary via sync.Once (generation is deterministic, so sharing is
// sound).
var (
	tinyDataOnce sync.Once
	tinyData     *tpch.Data
)

func newTestServer(t *testing.T, cacheDir string) *Server {
	t.Helper()
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	s, err := New(Config{Preset: experiments.Tiny, CacheDir: cacheDir})
	if err != nil {
		t.Fatal(err)
	}
	s.data = tinyData
	t.Cleanup(func() { s.Close() })
	return s
}

func get(t *testing.T, ts *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

func TestHealthzAndMetrics(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, "").Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/healthz")
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
		t.Fatalf("healthz: %d %q", resp.StatusCode, body)
	}
	resp, body = get(t, ts, "/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d", resp.StatusCode)
	}
	for _, want := range []string{
		"dssmem_cache_hits_total{tier=\"mem\"}",
		"dssmem_cache_misses_total",
		"dssmem_runs_inflight",
		"dssmem_run_aborts_total",
		"dssmem_run_seconds_sum",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestMeasureEndpointAndCacheHit(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const path = "/v1/measure?machine=vclass&query=Q6&procs=2"
	resp, body := get(t, ts, path)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first request X-Cache = %q", got)
	}
	var out struct {
		Digest      string           `json:"digest"`
		Cache       string           `json:"cache"`
		Measurement core.Measurement `json:"measurement"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("bad body %s: %v", body, err)
	}
	if len(out.Digest) != 64 || out.Cache != "miss" {
		t.Fatalf("body header: %+v", out)
	}
	if out.Measurement.Processes != 2 || out.Measurement.Query != "Q6" || out.Measurement.CPI <= 0 {
		t.Fatalf("measurement: %+v", out.Measurement)
	}

	resp, body2 := get(t, ts, path)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second request X-Cache = %q", got)
	}
	// Byte-identical measurement on the warm path.
	var out2 struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	var out1 struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	json.Unmarshal(body, &out1)
	json.Unmarshal(body2, &out2)
	if string(out1.Measurement) != string(out2.Measurement) {
		t.Fatalf("warm measurement differs:\ncold %s\nwarm %s", out1.Measurement, out2.Measurement)
	}
	if runs := srv.runs.Load(); runs != 1 {
		t.Fatalf("runs = %d, want 1", runs)
	}
}

func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(newTestServer(t, "").Handler())
	defer ts.Close()
	for _, path := range []string{
		"/v1/measure?machine=cray",
		"/v1/measure?query=Q99",
		"/v1/measure?procs=zero",
		"/v1/figure/notanumber",
	} {
		resp, _ := get(t, ts, path)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: %d, want 400", path, resp.StatusCode)
		}
	}
	resp, _ := get(t, ts, "/v1/figure/42")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("figure 42: %d, want 404", resp.StatusCode)
	}
}

// TestDaemonSmoke is the in-process version of CI's daemon smoke test: serve
// the tiny preset, request Figure 2 twice, assert the second response is a
// cache hit; then restart onto the same cache directory and assert the hit
// survives with zero simulations run.
func TestDaemonSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 2 runs 12 simulations")
	}
	dir := t.TempDir()
	srv := newTestServer(t, dir)
	ts := httptest.NewServer(srv.Handler())

	resp, body := get(t, ts, "/v1/figure/2")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("figure 2: %d %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("first figure request X-Cache = %q", got)
	}
	var fig experiments.Result
	if err := json.Unmarshal(body, &fig); err != nil {
		t.Fatalf("figure body: %v", err)
	}
	if fig.ID != "fig2" || len(fig.Rows) == 0 {
		t.Fatalf("figure result: %+v", fig)
	}

	resp, body2 := get(t, ts, "/v1/figure/2")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("second figure request X-Cache = %q", got)
	}
	if string(body) != string(body2) {
		t.Fatal("cache hit served different bytes")
	}
	ts.Close()
	srv.Close()

	// "Restart" the daemon on the same cache directory.
	srv2 := newTestServer(t, dir)
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	resp, body3 := get(t, ts2, "/v1/figure/2")
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("post-restart X-Cache = %q", got)
	}
	if string(body3) != string(body) {
		t.Fatal("post-restart bytes differ")
	}
	if runs := srv2.runs.Load(); runs != 0 {
		t.Fatalf("restarted daemon ran %d simulations for a persisted figure", runs)
	}
}

// TestConcurrentIdenticalRequestsDeduplicate: N identical in-flight requests
// cost one simulation.
func TestConcurrentIdenticalRequestsDeduplicate(t *testing.T) {
	srv := newTestServer(t, "")
	gate := make(chan struct{})
	var entered sync.WaitGroup
	entered.Add(1)
	var once sync.Once
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		once.Do(entered.Done)
		<-gate
		return workload.RunContext(ctx, o)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const n = 6
	var wg sync.WaitGroup
	codes := make([]int, n)
	caches := make([]string, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, _ := get(t, ts, "/v1/measure?machine=origin&query=Q6&procs=1")
			codes[i] = resp.StatusCode
			caches[i] = resp.Header.Get("X-Cache")
		}(i)
	}
	entered.Wait() // the one compute is running
	// Give the remaining requests time to join the flight, then release.
	for srv.store.Stats().Shared < n-1 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	for i, c := range codes {
		if c != http.StatusOK {
			t.Fatalf("request %d: %d", i, c)
		}
	}
	if runs := srv.runs.Load(); runs != 1 {
		t.Fatalf("%d simulations for %d identical concurrent requests", runs, n)
	}
	st := srv.store.Stats()
	if st.Misses != 1 || st.Shared != n-1 {
		t.Fatalf("store stats: %+v", st)
	}
}

// TestClientDisconnectAbortsRun: when the only client goes away, the
// simulation is cancelled rather than left running.
func TestClientDisconnectAbortsRun(t *testing.T) {
	srv := newTestServer(t, "")
	started := make(chan struct{})
	stopped := make(chan struct{})
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		close(started)
		<-ctx.Done() // a real run polls this at every scheduling quantum
		close(stopped)
		return nil, fmt.Errorf("workload: run aborted: %w", context.Cause(ctx))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/measure?machine=vclass&query=Q21&procs=4", nil)
	errc := make(chan error, 1)
	go func() {
		_, err := ts.Client().Do(req)
		errc <- err
	}()
	<-started
	cancel() // client disconnects
	if err := <-errc; err == nil {
		t.Fatal("request succeeded despite disconnect")
	}
	select {
	case <-stopped:
	case <-time.After(10 * time.Second):
		t.Fatal("simulation kept running after its only client disconnected")
	}
}

// TestCloseReleasesBlockedRequests: shutdown hard-aborts in-flight work with
// a service-unavailable response.
func TestCloseReleasesBlockedRequests(t *testing.T) {
	srv := newTestServer(t, "")
	started := make(chan struct{})
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		close(started)
		<-ctx.Done()
		return nil, fmt.Errorf("workload: run aborted: %w", context.Cause(ctx))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	type result struct {
		code int
		err  error
	}
	resc := make(chan result, 1)
	go func() {
		resp, err := ts.Client().Get(ts.URL + "/v1/measure?machine=vclass&query=Q6&procs=1")
		r := result{err: err}
		if err == nil {
			r.code = resp.StatusCode
			resp.Body.Close()
		}
		resc <- r
	}()
	<-started
	srv.Close()
	select {
	case r := <-resc:
		if r.err != nil {
			t.Fatalf("transport error: %v", r.err)
		}
		if r.code != http.StatusServiceUnavailable {
			t.Fatalf("status = %d, want 503", r.code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("request still blocked after Close")
	}
}

// TestRunTimeout: a per-run ceiling aborts runaway simulations.
func TestRunTimeout(t *testing.T) {
	tinyDataOnce.Do(func() { tinyData = tpch.Generate(experiments.Tiny.SF, experiments.Tiny.Seed) })
	srv, err := New(Config{Preset: experiments.Tiny, CacheDir: "", RunTimeout: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.data = tinyData
	defer srv.Close()
	srv.runHook = func(ctx context.Context, o workload.Options) (*workload.Stats, error) {
		<-ctx.Done()
		return nil, fmt.Errorf("workload: run aborted: %w", context.Cause(ctx))
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, _ := get(t, ts, "/v1/measure?machine=vclass&query=Q6&procs=1")
	if resp.StatusCode != http.StatusGatewayTimeout && resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want timeout-ish", resp.StatusCode)
	}
	if a := srv.aborted.Load(); a == 0 {
		t.Fatal("timeout not counted as an abort")
	}
}

func TestMeasureMatchesDirectRun(t *testing.T) {
	srv := newTestServer(t, "")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, body := get(t, ts, "/v1/measure?machine=origin&query=Q12&procs=1")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("measure: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Measurement json.RawMessage `json:"measurement"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}

	env := experiments.NewEnvWith(experiments.Tiny, tinyData)
	spec := env.Origin()
	o := env.CanonicalOptions(tpch.Q12, 1, workload.Options{Spec: spec})
	o.Data = tinyData
	st, err := workload.Run(o)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := json.Marshal(core.FromStats(st))
	if err != nil {
		t.Fatal(err)
	}
	if string(out.Measurement) != string(direct) {
		t.Fatalf("served measurement differs from direct workload.Run:\nserved %s\ndirect %s", out.Measurement, direct)
	}
}
