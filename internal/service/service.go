// Package service is the simulation-as-a-service layer: an HTTP API over the
// deterministic workload runner, backed by the persistent content-addressed
// result cache (internal/rescache) and a cancellation-aware job manager.
//
// Endpoints:
//
//	GET /v1/measure?machine=vclass&query=Q6&procs=4[&trial=N][&cold=1]
//	GET /v1/figure/{id}      one of the paper's figures (2..10)
//	GET /v1/sweep?machine=origin&query=Q21
//	GET /healthz
//	GET /metrics             Prometheus text format
//
// Responses carry X-Cache: hit|miss and X-Digest headers. Identical
// in-flight requests are deduplicated to one simulation; a client disconnect
// aborts a run (at the next simulation scheduling quantum) once its last
// waiter is gone; results persist across daemon restarts when a cache
// directory is configured.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dssmem/internal/core"
	"dssmem/internal/experiments"
	"dssmem/internal/machine"
	"dssmem/internal/rescache"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Preset selects the database/machine scale (experiments.PresetByName).
	Preset experiments.Preset
	// CacheDir persists results across restarts ("" = memory only).
	CacheDir string
	// Workers bounds concurrently executing simulations across all requests
	// (0 = GOMAXPROCS). Queued runs wait, cancellation-aware, for a slot.
	Workers int
	// RunTimeout aborts any single simulation exceeding it (0 = no limit).
	RunTimeout time.Duration
	// EnvParallelism bounds the per-request fan-out inside figure/sweep
	// computations (0 = GOMAXPROCS). Total concurrency is still capped by
	// Workers, which gates at the simulation level.
	EnvParallelism int
}

// Server implements the HTTP API. Create with New, expose via Handler.
type Server struct {
	cfg   Config
	data  *tpch.Data
	store *rescache.Store
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time

	// base is cancelled by Close: it hard-aborts every in-flight run after
	// the HTTP layer has drained (or when draining is abandoned).
	base     context.Context
	baseStop context.CancelCauseFunc

	inflight atomic.Int64
	runs     atomic.Uint64
	runErrs  atomic.Uint64
	aborted  atomic.Uint64

	latMu     sync.Mutex
	latSum    float64
	latCount  uint64
	reqTotal  atomic.Uint64
	reqErrors atomic.Uint64

	// runHook replaces the workload runner in tests (nil = workload.RunContext).
	runHook func(context.Context, workload.Options) (*workload.Stats, error)
}

// errShutdown is the cancellation cause used when the server closes.
var errShutdown = errors.New("service: server shutting down")

// New builds a server: generates the preset's database (deterministic, so
// identical across restarts) and opens the result store.
func New(cfg Config) (*Server, error) {
	if cfg.Preset.Name == "" {
		return nil, fmt.Errorf("service: config needs a preset")
	}
	store, err := rescache.Open(cfg.CacheDir)
	if err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	base, stop := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:      cfg,
		data:     tpch.Generate(cfg.Preset.SF, cfg.Preset.Seed),
		store:    store,
		sem:      make(chan struct{}, cfg.Workers),
		start:    time.Now(),
		base:     base,
		baseStop: stop,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /v1/measure", s.handleMeasure)
	s.mux.HandleFunc("GET /v1/figure/{id}", s.handleFigure)
	s.mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	return s, nil
}

// Handler returns the HTTP handler. Wire it into http.Server; graceful
// shutdown is the owner's job (http.Server.Shutdown drains in-flight
// requests, whose runs complete; call Close to hard-abort instead).
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the result store (metrics, tests).
func (s *Server) Store() *rescache.Store { return s.store }

// Close hard-cancels every in-flight run: waiters are released with an error
// and the underlying simulations abort at their next scheduling quantum.
// Idempotent.
func (s *Server) Close() error {
	s.baseStop(errShutdown)
	return nil
}

// requestCtx derives the job context for one HTTP request: it ends when the
// client disconnects, or when the server closes.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.base, func() { cancel(context.Cause(s.base)) })
	return ctx, func() { stop(); cancel(nil) }
}

// env builds a per-request experiment environment sharing the daemon's data
// and persistent store; the gated runner funnels every simulation through
// the worker pool.
func (s *Server) env(ctx context.Context) *experiments.Env {
	e := experiments.NewEnvWith(s.cfg.Preset, s.data)
	e.Results = s.store
	e.Ctx = ctx
	e.Runner = s.gatedRun
	if s.cfg.EnvParallelism > 0 {
		e.Parallelism = s.cfg.EnvParallelism
	}
	return e
}

// gatedRun is the run lifecycle: bounded worker slot (cancellation-aware
// acquisition), per-run timeout, metrics. Panic isolation lives one level
// up, in rescache.Store.Do, which owns the compute goroutine.
func (s *Server) gatedRun(ctx context.Context, opts workload.Options) (*workload.Stats, error) {
	select {
	case s.sem <- struct{}{}:
	case <-ctx.Done():
		s.aborted.Add(1)
		return nil, fmt.Errorf("service: run cancelled while queued: %w", context.Cause(ctx))
	}
	defer func() { <-s.sem }()
	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.RunTimeout, fmt.Errorf("service: run exceeded %v", s.cfg.RunTimeout))
		defer cancel()
	}
	run := workload.RunContext
	if s.runHook != nil {
		run = s.runHook
	}
	s.inflight.Add(1)
	s.runs.Add(1)
	begin := time.Now()
	st, err := run(ctx, opts)
	s.inflight.Add(-1)
	s.latMu.Lock()
	s.latSum += time.Since(begin).Seconds()
	s.latCount++
	s.latMu.Unlock()
	if err != nil {
		s.runErrs.Add(1)
		if ctx.Err() != nil {
			s.aborted.Add(1)
		}
	}
	return st, err
}

// --- handlers ---

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	ctx, done := s.requestCtx(r)
	defer done()

	spec, err := parseMachine(r.URL.Query().Get("machine"), r.URL.Query().Get("cpus"), s.cfg.Preset.MemScale)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := parseQuery(r.URL.Query().Get("query"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	procs, err := parseIntDefault(r.URL.Query().Get("procs"), 1)
	if err != nil || procs < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad procs %q", r.URL.Query().Get("procs")))
		return
	}
	trial, err := parseIntDefault(r.URL.Query().Get("trial"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad trial %q", r.URL.Query().Get("trial")))
		return
	}
	opts := workload.Options{
		Spec:    spec,
		Trial:   trial,
		ColdRun: boolParam(r, "cold"),
	}

	env := s.env(ctx)
	m, hit, err := env.MeasureCached(spec.Name, q, procs, opts)
	if err != nil {
		s.failRun(w, err)
		return
	}
	dig := rescache.DigestOptions(s.cfg.Preset.SF, s.cfg.Preset.Seed, env.CanonicalOptions(q, procs, opts))
	s.respond(w, hit, dig, struct {
		Digest      string           `json:"digest"`
		Cache       string           `json:"cache"`
		Measurement core.Measurement `json:"measurement"`
	}{string(dig), cacheWord(hit), m})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	ctx, done := s.requestCtx(r)
	defer done()

	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad figure id %q", r.PathValue("id")))
		return
	}
	dig, err := rescache.DigestJSON(struct {
		Schema int                `json:"schema"`
		Kind   string             `json:"kind"`
		Preset experiments.Preset `json:"preset"`
		Figure int                `json:"figure"`
		Procs  []int              `json:"procs"`
	}{1, "figure", s.cfg.Preset, id, experiments.ProcCounts})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	raw, hit, err := s.store.Do(ctx, rescache.NSFigure, dig, func(runCtx context.Context) ([]byte, error) {
		res, err := experiments.RunFigure(s.env(runCtx), id, nil)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		if strings.Contains(err.Error(), "no figure") {
			s.fail(w, http.StatusNotFound, err)
			return
		}
		s.failRun(w, err)
		return
	}
	s.respondRaw(w, hit, dig, raw)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	s.reqTotal.Add(1)
	ctx, done := s.requestCtx(r)
	defer done()

	spec, err := parseMachine(r.URL.Query().Get("machine"), r.URL.Query().Get("cpus"), s.cfg.Preset.MemScale)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := parseQuery(r.URL.Query().Get("query"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	dig, err := rescache.DigestJSON(struct {
		Schema  int                `json:"schema"`
		Kind    string             `json:"kind"`
		Preset  experiments.Preset `json:"preset"`
		Machine machine.Spec       `json:"machine"`
		Query   string             `json:"query"`
		Procs   []int              `json:"procs"`
	}{1, "sweep", s.cfg.Preset, spec, q.String(), experiments.ProcCounts})
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	raw, hit, err := s.store.Do(ctx, rescache.NSSweep, dig, func(runCtx context.Context) ([]byte, error) {
		series, err := s.env(runCtx).Sweep(spec.Name, spec, q, workload.Options{})
		if err != nil {
			return nil, err
		}
		return json.Marshal(series)
	})
	if err != nil {
		s.failRun(w, err)
		return
	}
	s.respondRaw(w, hit, dig, raw)
}

// --- response helpers ---

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func (s *Server) respond(w http.ResponseWriter, hit bool, dig rescache.Digest, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.respondRaw(w, hit, dig, b)
}

func (s *Server) respondRaw(w http.ResponseWriter, hit bool, dig rescache.Digest, body []byte) {
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", cacheWord(hit))
	h.Set("X-Digest", string(dig))
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// failRun maps run errors to HTTP statuses: cancellations and timeouts are
// the client's doing or the server's deadline, everything else is a 500.
func (s *Server) failRun(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errShutdown):
		status = http.StatusServiceUnavailable
	}
	s.fail(w, status, err)
}

func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.reqErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{err.Error()})
}

// --- parameter parsing ---

func parseMachine(name, cpus string, memScale int) (machine.Spec, error) {
	n := 0
	if cpus != "" {
		var err error
		n, err = strconv.Atoi(cpus)
		if err != nil || n < 1 {
			return machine.Spec{}, fmt.Errorf("bad cpus %q", cpus)
		}
	}
	switch strings.ToLower(name) {
	case "", "vclass", "hpv", "v-class":
		if n == 0 {
			n = 16
		}
		return machine.VClassSpec(n, memScale), nil
	case "origin", "sgi", "origin2000":
		if n == 0 {
			n = 32
		}
		return machine.OriginSpec(n, memScale), nil
	case "starfire", "e10000":
		if n == 0 {
			n = 64
		}
		return machine.StarfireSpec(n, memScale), nil
	}
	return machine.Spec{}, fmt.Errorf("unknown machine %q (vclass|origin|starfire)", name)
}

func parseQuery(name string) (tpch.QueryID, error) {
	switch strings.ToUpper(name) {
	case "", "Q6":
		return tpch.Q6, nil
	case "Q21":
		return tpch.Q21, nil
	case "Q12":
		return tpch.Q12, nil
	case "Q1":
		return tpch.Q1, nil
	}
	return 0, fmt.Errorf("unknown query %q (Q6|Q21|Q12|Q1)", name)
}

func parseIntDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
