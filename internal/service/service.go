// Package service is the simulation-as-a-service layer: an HTTP API over the
// deterministic workload runner, backed by the persistent content-addressed
// result cache (internal/rescache) and a cancellation-aware job manager.
//
// Endpoints:
//
//	GET /v1/measure?machine=vclass&query=Q6&procs=4[&trial=N][&cold=1]
//	GET /v1/figure/{id}      one of the paper's figures (2..10)
//	GET /v1/sweep?machine=origin&query=Q21
//	GET /healthz
//	GET /metrics             Prometheus text format
//
// Responses carry X-Cache: hit|miss and X-Digest headers. Identical
// in-flight requests are deduplicated to one simulation; a client disconnect
// aborts a run (at the next simulation scheduling quantum) once its last
// waiter is gone; results persist across daemon restarts when a cache
// directory is configured.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/url"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"dssmem/internal/core"
	"dssmem/internal/experiments"
	"dssmem/internal/fault"
	"dssmem/internal/job"
	"dssmem/internal/machine"
	"dssmem/internal/rescache"
	"dssmem/internal/telemetry"
	"dssmem/internal/tpch"
	"dssmem/internal/workload"
)

// Config parameterizes a Server.
type Config struct {
	// Preset selects the database/machine scale (experiments.PresetByName).
	Preset experiments.Preset
	// Data overrides the dataset generated from Preset. Generation is
	// deterministic, so a fleet test (or a process hosting several servers)
	// can share one generation across them all. nil = generate.
	Data *tpch.Data
	// CacheDir persists results across restarts ("" = memory only).
	CacheDir string
	// JobDir persists sweep-job journals (internal/job): each completed
	// sweep point is recorded so a killed daemon resumes unfinished sweeps
	// on restart, recomputing nothing the cache already holds. "" keeps
	// jobs in memory only (no resume across restarts).
	JobDir string
	// Store overrides the result store built from CacheDir (the chaos
	// harness wires one over a fault-injecting filesystem). nil = open from
	// CacheDir.
	Store *rescache.Store
	// Workers bounds concurrently executing simulations across all requests
	// (0 = GOMAXPROCS). Queued runs wait, cancellation-aware, for a slot.
	Workers int
	// MaxQueue bounds runs waiting for a worker slot (admission control):
	// beyond it, requests are shed immediately with 429 + Retry-After
	// instead of queueing unboundedly. 0 = 4×Workers; negative = unbounded.
	MaxQueue int
	// RunTimeout aborts any single simulation exceeding it (0 = no limit)
	// via the cooperative quantum-boundary interrupt.
	RunTimeout time.Duration
	// HardDeadline is the watchdog: a run still executing after it is
	// abandoned (its worker slot reclaimed, 504 returned) even if it never
	// honours cancellation — the backstop for wedged simulations. 0 picks
	// 2×RunTimeout when RunTimeout is set, else none; negative = none.
	HardDeadline time.Duration
	// EnvParallelism bounds the per-request fan-out inside figure/sweep
	// computations (0 = GOMAXPROCS). Total concurrency is still capped by
	// Workers, which gates at the simulation level.
	EnvParallelism int
	// PeerFetch, when non-nil, arms the result store's peer-fill tier: a
	// full local cache miss consults fleet peers (memory → disk → peer →
	// compute) before simulating. Wired by cmd/dssmemd in -role=worker from
	// the -peers flag; the fetched bytes are checksum-verified before use.
	PeerFetch rescache.PeerFetch
	// Faults, when non-nil, arms the service-level fault sites (compute
	// panic/hang, scheduler stalls) for chaos testing. Disk sites are wired
	// separately, via Store over a fault.FS.
	Faults *fault.Injector
	// Checkpoints enables warm-state restore for every measurement this
	// daemon computes: the warmup prelude is captured once per dataset
	// identity, cached under rescache.NSWarm (shared with fleet peers), and
	// restored instead of rebuilt. Results are byte-identical either way, so
	// this changes no digests — it only removes redundant warmup work.
	Checkpoints bool
	// SampleQuanta, when > 1, is the daemon-wide default SMARTS sampling
	// period: requests that do not pass sample_quanta themselves run with
	// interval sampling at this period. Sampled results live under their own
	// content digests; 0 (or 1) keeps every run exact.
	SampleQuanta int
	// Log receives one structured line per API request (id, endpoint, status,
	// per-phase timings). nil disables request logging.
	Log *slog.Logger
	// RecentRequests sizes the /debug/requests completed-request ring
	// (0 = telemetry.DefaultRecent).
	RecentRequests int
}

// Server implements the HTTP API. Create with New, expose via Handler.
type Server struct {
	cfg   Config
	data  *tpch.Data
	store *rescache.Store
	jobs  *job.Manager
	sem   chan struct{}
	mux   *http.ServeMux
	start time.Time
	bg    sync.WaitGroup // background job resume; Close waits for it

	// base is cancelled by Close: it hard-aborts every in-flight run after
	// the HTTP layer has drained (or when draining is abandoned).
	base     context.Context
	baseStop context.CancelCauseFunc

	// reg owns every counter below: one registry is the single snapshot
	// mechanism for /metrics (no side ledgers, no torn mixed-source reads).
	reg     *telemetry.Registry
	tracker *telemetry.Tracker

	inflight *telemetry.Gauge   // simulations currently executing
	queued   *telemetry.Gauge   // runs admitted but not yet holding a worker slot
	runs     *telemetry.Counter // simulations started
	runErrs  *telemetry.Counter
	aborted  *telemetry.Counter
	shed     *telemetry.Counter // runs rejected by admission control
	wdKills  *telemetry.Counter // runs abandoned by the watchdog
	hung     *telemetry.Gauge   // abandoned runs that have not finished yet

	reqTotal     *telemetry.Counter
	reqErrors    *telemetry.Counter
	retries      *telemetry.Counter // requests arriving with X-Request-Attempt > 1
	runSeconds   *telemetry.Hist    // wall-clock simulation time
	reqSeconds   *telemetry.HistVec // end-to-end request latency, by endpoint
	phaseSeconds *telemetry.HistVec // per-phase time, by phase name

	jobsResumed *telemetry.Counter // journaled sweeps resumed after restart

	// runHook replaces the workload runner in tests (nil = workload.RunContext).
	runHook func(context.Context, workload.Options) (*workload.Stats, error)
}

// errShutdown is the cancellation cause used when the server closes.
var errShutdown = errors.New("service: server shutting down")

// errOverloaded is returned by admission control when the wait queue is
// full; it maps to 429 + Retry-After.
var errOverloaded = errors.New("service: overloaded")

// errWatchdog marks a run abandoned by the hard-deadline watchdog; it maps
// to 504 (retriable — the next attempt gets a fresh run).
var errWatchdog = errors.New("service: watchdog abandoned wedged run")

// New builds a server: generates the preset's database (deterministic, so
// identical across restarts) and opens the result store.
func New(cfg Config) (*Server, error) {
	if cfg.Preset.Name == "" {
		return nil, fmt.Errorf("service: config needs a preset")
	}
	store := cfg.Store
	if store == nil {
		var err error
		store, err = rescache.Open(cfg.CacheDir)
		if err != nil {
			return nil, err
		}
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue == 0 {
		cfg.MaxQueue = 4 * cfg.Workers
	}
	if cfg.MaxQueue < 0 {
		cfg.MaxQueue = int(^uint(0) >> 1) // effectively unbounded
	}
	if cfg.HardDeadline == 0 && cfg.RunTimeout > 0 {
		cfg.HardDeadline = 2 * cfg.RunTimeout
	}
	data := cfg.Data
	if data == nil {
		data = tpch.Generate(cfg.Preset.SF, cfg.Preset.Seed)
	}
	jobs, err := job.Open(cfg.JobDir)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	base, stop := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:      cfg,
		data:     data,
		store:    store,
		jobs:     jobs,
		sem:      make(chan struct{}, cfg.Workers),
		start:    time.Now(),
		base:     base,
		baseStop: stop,
	}
	if cfg.PeerFetch != nil {
		store.SetPeerFetch(cfg.PeerFetch)
	}
	s.tracker = telemetry.NewTracker(cfg.RecentRequests)
	s.initMetrics()
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.Handle("GET /debug/requests", s.tracker)
	s.mux.Handle("GET /v1/measure", s.instrument("/v1/measure", s.handleMeasure))
	s.mux.Handle("GET /v1/figure/{id}", s.instrument("/v1/figure", s.handleFigure))
	s.mux.Handle("GET /v1/sweep", s.instrument("/v1/sweep", s.handleSweep))
	s.mux.Handle("GET /v1/cache/{ns}/{digest}", s.instrument("/v1/cache", s.handleCacheEntry))
	s.mux.Handle("PUT /v1/cache/{ns}/{digest}", s.instrument("/v1/cache", s.handleCachePut))
	s.mux.Handle("GET /v1/cache/{ns}", s.instrument("/v1/cache", s.handleCacheList))
	s.mux.HandleFunc("GET /v1/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	s.resumeUnfinished()
	return s, nil
}

// Handler returns the HTTP handler. Wire it into http.Server; graceful
// shutdown is the owner's job (http.Server.Shutdown drains in-flight
// requests, whose runs complete; call Close to hard-abort instead).
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the result store (metrics, tests).
func (s *Server) Store() *rescache.Store { return s.store }

// Registry exposes the metrics registry (the debug listener re-serves it).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// DebugRequests exposes the live request inspector (mounted at
// /debug/requests on the API mux; the debug listener mounts it too).
func (s *Server) DebugRequests() http.Handler { return s.tracker }

// Jobs exposes the sweep-job manager (tests, debugging).
func (s *Server) Jobs() *job.Manager { return s.jobs }

// Close hard-cancels every in-flight run: waiters are released with an error
// and the underlying simulations abort at their next scheduling quantum —
// including any background job resume, which it then waits out. Idempotent.
func (s *Server) Close() error {
	s.baseStop(errShutdown)
	s.bg.Wait()
	return nil
}

// requestCtx derives the job context for one HTTP request: it ends when the
// client disconnects, or when the server closes.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancelCause(r.Context())
	stop := context.AfterFunc(s.base, func() { cancel(context.Cause(s.base)) })
	return ctx, func() { stop(); cancel(nil) }
}

// statusWriter captures the status an API handler wrote, for the request log
// and latency histogram.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

// instrument wraps an API handler with request-scoped telemetry: every
// request gets an ID (the caller's X-Request-ID when well-formed, minted
// otherwise) that is echoed in the response, attached to the context for the
// cache/compute layers to charge phases against, tracked by the live
// inspector, observed into the latency and phase histograms, and emitted as
// one structured log line.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.reqTotal.Inc()
		id := telemetry.CleanID(r.Header.Get("X-Request-ID"))
		if id == "" {
			id = telemetry.NewID()
		}
		q := telemetry.NewRequest(id, endpoint)
		if n, err := strconv.Atoi(r.Header.Get("X-Request-Attempt")); err == nil && n > 1 {
			q.Attempt = n
			s.retries.Inc()
		}
		w.Header().Set("X-Request-ID", id)
		s.tracker.Begin(q)
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r.WithContext(telemetry.NewContext(r.Context(), q)))
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		outcome := "ok"
		if status >= 400 {
			outcome = "error"
		}
		q.Finish(status, outcome)
		s.reqSeconds.With(endpoint).Observe(q.Duration().Seconds())
		for _, ph := range q.Phases() {
			s.phaseSeconds.With(ph.Name).Observe(ph.Seconds)
		}
		s.tracker.End(q)
		s.logRequest(r, q)
	})
}

// logRequest emits the one structured line per request: identity, outcome,
// and the per-phase decomposition in milliseconds.
func (s *Server) logRequest(r *http.Request, q *telemetry.Request) {
	if s.cfg.Log == nil {
		return
	}
	v := q.View()
	args := []any{
		"req", v.ID,
		"endpoint", v.Endpoint,
		"query", r.URL.RawQuery,
		"status", v.Status,
		"outcome", v.Outcome,
		"duration_ms", v.DurationMS,
	}
	if v.Attempt > 1 {
		args = append(args, "attempt", v.Attempt)
	}
	if v.Digest != "" {
		args = append(args, "digest", v.Digest)
	}
	if v.Cache != "" {
		args = append(args, "cache", v.Cache)
	}
	for _, ph := range v.Phases {
		args = append(args, "phase_"+ph.Name+"_ms", ph.DurationMS)
	}
	level := slog.LevelInfo
	switch {
	case v.Status >= 500:
		level = slog.LevelError
	case v.Status >= 400:
		level = slog.LevelWarn
	}
	s.cfg.Log.Log(r.Context(), level, "request", args...)
}

// env builds a per-request experiment environment sharing the daemon's data
// and persistent store; the gated runner funnels every simulation through
// the worker pool.
func (s *Server) env(ctx context.Context) *experiments.Env {
	e := experiments.NewEnvWith(s.cfg.Preset, s.data)
	e.Results = s.store
	e.Ctx = ctx
	e.Runner = s.gatedRun
	e.Checkpoints = s.cfg.Checkpoints
	if s.cfg.EnvParallelism > 0 {
		e.Parallelism = s.cfg.EnvParallelism
	}
	return e
}

// sampleQuanta resolves a request's effective sampling period: the
// sample_quanta query parameter when present, else the daemon default. The
// caller folds a non-zero result into the request's content digest (sampled
// results must never collide with exact ones).
func (s *Server) sampleQuanta(r *http.Request) (int, error) {
	v := r.URL.Query().Get("sample_quanta")
	if v == "" {
		if s.cfg.SampleQuanta > 1 {
			return s.cfg.SampleQuanta, nil
		}
		return 0, nil
	}
	n, err := strconv.Atoi(v)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("bad sample_quanta %q", v)
	}
	if n <= 1 {
		return 0, nil // exact; 1 cannot sample (the controller clamps to 2)
	}
	return n, nil
}

// gatedRun is the run lifecycle: admission control (bounded wait queue with
// fast shedding), cancellation-aware worker-slot acquisition, per-run
// timeout, fault injection, and the hard-deadline watchdog. Panic isolation
// for the simulation itself lives one level up, in rescache.Store.Do, which
// owns the compute goroutine; the watchdog goroutine here has its own
// recover so an injected panic surfaces as an error either way.
func (s *Server) gatedRun(ctx context.Context, opts workload.Options) (*workload.Stats, error) {
	req := telemetry.FromContext(ctx)
	// Admission control: take a free worker slot if one exists; otherwise
	// wait only while the bounded queue has room, and past that shed
	// immediately — a bounded queue with a fast 429 beats an unbounded one
	// with unbounded latency.
	select {
	case s.sem <- struct{}{}:
	default:
		if s.queued.Add(1) > int64(s.cfg.MaxQueue) {
			s.queued.Add(-1)
			s.shed.Inc()
			return nil, fmt.Errorf("service: wait queue full (%d workers busy, %d queued): %w",
				s.cfg.Workers, s.cfg.MaxQueue, errOverloaded)
		}
		endQueue := req.StartPhase(telemetry.PhaseQueue)
		select {
		case s.sem <- struct{}{}:
			s.queued.Add(-1)
			endQueue()
		case <-ctx.Done():
			s.queued.Add(-1)
			endQueue()
			s.aborted.Inc()
			return nil, fmt.Errorf("service: run cancelled while queued: %w", context.Cause(ctx))
		}
	}
	defer func() { <-s.sem }()

	if s.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeoutCause(ctx, s.cfg.RunTimeout, fmt.Errorf("service: run exceeded %v", s.cfg.RunTimeout))
		defer cancel()
	}
	// The run gets its own cancellable context so the watchdog can abort a
	// cooperative run it is abandoning.
	runCtx, cancelRun := context.WithCancelCause(ctx)
	defer cancelRun(nil)

	run := workload.RunContext
	if s.runHook != nil {
		run = s.runHook
	}
	inj := s.cfg.Faults
	s.inflight.Add(1)
	s.runs.Inc()
	begin := time.Now()

	type result struct {
		st  *workload.Stats
		err error
	}
	resc := make(chan result, 1)
	go func() {
		var r result
		defer func() {
			s.inflight.Add(-1)
			d := time.Since(begin)
			s.runSeconds.Observe(d.Seconds())
			req.AddPhase(telemetry.PhaseCompute, d)
			if p := recover(); p != nil {
				r = result{err: fmt.Errorf("service: run: %w: %v", rescache.ErrPanicked, p)}
			}
			resc <- r
		}()
		if inj.Hit(fault.ComputePanic) {
			panic(fmt.Errorf("%w: compute panic", fault.ErrInjected))
		}
		if inj.Hit(fault.ComputeHang) {
			// A wedged simulation: ignores cancellation entirely. Unblocked
			// only by server Close so the goroutine does not outlive tests.
			<-s.base.Done()
			r = result{err: fmt.Errorf("service: hung run released by shutdown: %w", errShutdown)}
			return
		}
		if inj != nil {
			opts.SimFault = s.simFault
		}
		st, err := run(runCtx, opts)
		r = result{st: st, err: err}
	}()

	var watchdog <-chan time.Time
	if s.cfg.HardDeadline > 0 {
		t := time.NewTimer(s.cfg.HardDeadline)
		defer t.Stop()
		watchdog = t.C
	}
	select {
	case r := <-resc:
		if r.err != nil {
			s.runErrs.Add(1)
			if ctx.Err() != nil {
				s.aborted.Add(1)
			}
		}
		return r.st, r.err
	case <-watchdog:
		// The run blew through even the hard deadline: the quantum-boundary
		// interrupt never fired (wedged scheduler, hung hook). Abandon it —
		// reclaim the worker slot now, cancel what can be cancelled, and
		// account for the zombie until it actually exits.
		s.wdKills.Add(1)
		s.runErrs.Add(1)
		s.hung.Add(1)
		cancelRun(errWatchdog)
		go func() {
			<-resc
			s.hung.Add(-1)
		}()
		return nil, fmt.Errorf("service: run exceeded hard deadline %v: %w", s.cfg.HardDeadline, errWatchdog)
	}
}

// simFault is the quantum-boundary hook handed to the simulation kernel
// when fault injection is armed: SimStall sleeps wall-clock time mid-run
// (simulated clocks and results untouched). The hook fires at every quantum
// boundary — hundreds of times per run — so only per-boundary sites belong
// here; per-run sites (ComputeHang, ComputePanic) are drawn once in gatedRun,
// where one probability roll maps to one run.
func (s *Server) simFault() {
	inj := s.cfg.Faults
	if inj.Hit(fault.SimStall) {
		time.Sleep(inj.StallFor())
	}
}

// --- handlers ---

// handleHealthz reports liveness plus the degradation state. The status is
// "ok" when fully healthy and "degraded" while the result store's disk tier
// is tripped to memory-only (results still correct, persistence suspended).
// Always 200: a degraded daemon is serving, not dead.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	cs := s.store.Stats()
	status := "ok"
	if cs.Degraded {
		status = "degraded"
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Status   string `json:"status"`
		Preset   string `json:"preset"`
		Cache    string `json:"cache_breaker"`
		Inflight int64  `json:"runs_inflight"`
		Queued   int64  `json:"runs_queued"`
		Hung     int64  `json:"runs_abandoned_live"`
		UptimeS  int64  `json:"uptime_seconds"`
	}{status, s.cfg.Preset.Name, cs.Breaker, s.inflight.Load(), s.queued.Load(), s.hung.Load(), int64(time.Since(s.start).Seconds())})
}

func (s *Server) handleMeasure(w http.ResponseWriter, r *http.Request) {
	ctx, done := s.requestCtx(r)
	defer done()

	spec, err := parseMachine(r.URL.Query().Get("machine"), r.URL.Query().Get("cpus"), s.cfg.Preset.MemScale)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := parseQuery(r.URL.Query().Get("query"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	procs, err := parseIntDefault(r.URL.Query().Get("procs"), 1)
	if err != nil || procs < 1 {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad procs %q", r.URL.Query().Get("procs")))
		return
	}
	trial, err := parseIntDefault(r.URL.Query().Get("trial"), 0)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad trial %q", r.URL.Query().Get("trial")))
		return
	}
	sq, err := s.sampleQuanta(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	opts := workload.Options{
		Spec:         spec,
		Trial:        trial,
		ColdRun:      boolParam(r, "cold"),
		SampleQuanta: sq,
	}

	env := s.env(ctx)
	if boolParam(r, "ckpt") {
		env.Checkpoints = true
	}
	m, hit, err := env.MeasureCached(spec.Name, q, procs, opts)
	if err != nil {
		s.failRun(w, err)
		return
	}
	dig := rescache.DigestOptions(s.cfg.Preset.SF, s.cfg.Preset.Seed, env.CanonicalOptions(q, procs, opts))
	s.respond(w, r, hit, dig, struct {
		Digest      string           `json:"digest"`
		Cache       string           `json:"cache"`
		Measurement core.Measurement `json:"measurement"`
	}{string(dig), cacheWord(hit), m})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) {
	ctx, done := s.requestCtx(r)
	defer done()

	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad figure id %q", r.PathValue("id")))
		return
	}
	sq, err := s.sampleQuanta(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	dig, err := FigureDigestSampled(s.cfg.Preset, id, sq)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	raw, hit, err := s.store.Do(ctx, rescache.NSFigure, dig, func(runCtx context.Context) ([]byte, error) {
		env := s.env(runCtx)
		env.SampleQuanta = sq
		res, err := experiments.RunFigure(env, id, nil)
		if err != nil {
			return nil, err
		}
		return json.Marshal(res)
	})
	if err != nil {
		if strings.Contains(err.Error(), "no figure") {
			s.fail(w, http.StatusNotFound, err)
			return
		}
		s.failRun(w, err)
		return
	}
	s.respondRaw(w, r, hit, dig, raw)
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	ctx, done := s.requestCtx(r)
	defer done()

	spec, err := parseMachine(r.URL.Query().Get("machine"), r.URL.Query().Get("cpus"), s.cfg.Preset.MemScale)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	q, err := parseQuery(r.URL.Query().Get("query"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	sq, err := s.sampleQuanta(r)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	dig, err := SweepDigestSampled(s.cfg.Preset, spec, q, sq)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	// The sweep is journaled as a durable job: each completed point lands in
	// the journal, so a daemon killed mid-sweep resumes the job on restart
	// with the finished points answered from the result cache.
	j, _, jerr := s.jobs.Start(string(dig), "sweep", "/v1/sweep?"+r.URL.RawQuery, len(experiments.ProcCounts))
	if jerr == nil {
		w.Header().Set("X-Job-ID", string(dig))
	}
	raw, hit, err := s.runSweep(ctx, spec, q, sq, dig, j)
	if err != nil {
		if j != nil {
			j.Fail(err)
		}
		s.failRun(w, err)
		return
	}
	if j != nil {
		j.Done()
	}
	s.respondRaw(w, r, hit, dig, raw)
}

// runSweep computes (or recalls) one sweep, journaling each completed point
// on j. Shared by the live handler and the restart resume path.
func (s *Server) runSweep(ctx context.Context, spec machine.Spec, q tpch.QueryID, sq int, dig rescache.Digest, j *job.Job) ([]byte, bool, error) {
	return s.store.Do(ctx, rescache.NSSweep, dig, func(runCtx context.Context) ([]byte, error) {
		env := s.env(runCtx)
		env.SampleQuanta = sq
		if j != nil {
			env.OnPoint = func(idx, procs int, pdig rescache.Digest, hit bool) {
				j.Point(idx, string(pdig))
			}
		}
		series, err := env.Sweep(spec.Name, spec, q, workload.Options{})
		if err != nil {
			return nil, err
		}
		return json.Marshal(series)
	})
}

// resumeUnfinished re-runs, in the background, every journaled sweep still
// marked running after a restart: the kill interrupted it mid-flight. The
// completed points hit the result cache (memory or disk), so only the
// interrupted remainder computes.
func (s *Server) resumeUnfinished() {
	var unfinished []*job.Job
	for _, j := range s.jobs.Jobs() {
		if j.State() == job.StateRunning {
			unfinished = append(unfinished, j)
		}
	}
	if len(unfinished) == 0 {
		return
	}
	s.bg.Add(1)
	go func() {
		defer s.bg.Done()
		for _, j := range unfinished {
			s.resumeJob(j)
		}
	}()
}

func (s *Server) resumeJob(j *job.Job) {
	u, err := url.Parse(j.Path())
	if err != nil {
		j.Fail(fmt.Errorf("service: resume: unparseable job path %q: %w", j.Path(), err))
		return
	}
	qp := u.Query()
	spec, err := parseMachine(qp.Get("machine"), qp.Get("cpus"), s.cfg.Preset.MemScale)
	if err != nil {
		j.Fail(fmt.Errorf("service: resume job %s: %w", j.ID(), err))
		return
	}
	q, err := parseQuery(qp.Get("query"))
	if err != nil {
		j.Fail(fmt.Errorf("service: resume job %s: %w", j.ID(), err))
		return
	}
	sq := 0
	if v := qp.Get("sample_quanta"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			j.Fail(fmt.Errorf("service: resume job %s: bad sample_quanta %q", j.ID(), v))
			return
		}
		if n > 1 {
			sq = n
		}
	} else if s.cfg.SampleQuanta > 1 {
		sq = s.cfg.SampleQuanta
	}
	dig, err := SweepDigestSampled(s.cfg.Preset, spec, q, sq)
	if err != nil || string(dig) != j.ID() {
		if err == nil {
			err = fmt.Errorf("service: resume: job %s path resolves to digest %s (preset or version skew)", j.ID(), dig.Short())
		}
		j.Fail(err)
		return
	}
	if _, _, err := s.runSweep(s.base, spec, q, sq, dig, j); err != nil {
		j.Fail(fmt.Errorf("service: resume: %w", err))
		return
	}
	j.Done()
	s.jobsResumed.Inc()
	if s.cfg.Log != nil {
		s.cfg.Log.Info("resumed job", "job", j.ID(), "kind", "sweep", "query", u.RawQuery)
	}
}

func (s *Server) handleJobs(w http.ResponseWriter, _ *http.Request) {
	jobs := s.jobs.Jobs()
	snaps := make([]job.Snapshot, len(jobs))
	for i, j := range jobs {
		snaps[i] = j.Snapshot()
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Jobs []job.Snapshot `json:"jobs"`
	}{snaps})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.jobs.Get(r.PathValue("id"))
	if j == nil {
		// Control-plane miss: same body shape as fail, but these endpoints
		// are not instrumented, so no error counter.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(struct {
			Error     string `json:"error"`
			Retriable bool   `json:"retriable"`
			Status    int    `json:"status"`
		}{fmt.Sprintf("unknown job %q", r.PathValue("id")), false, http.StatusNotFound})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(j.Snapshot())
}

// handleCacheEntry is the peer-fetch endpoint: it serves one cached entry's
// bytes in the checksummed frame (the disk format on the wire), or 404 when
// this worker does not hold the entry. It reads the local tiers only — a
// peer fetch must never trigger a compute, or a fleet-wide miss would fan
// out into N simulations of the same digest.
func (s *Server) handleCacheEntry(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	switch ns {
	case rescache.NSMeasurement, rescache.NSFigure, rescache.NSSweep, rescache.NSWarm:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown cache namespace %q", ns))
		return
	}
	dig := rescache.Digest(r.PathValue("digest"))
	if !validDigest(string(dig)) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("malformed digest %q", dig))
		return
	}
	b, ok := s.store.Get(ns, dig)
	if !ok {
		// A miss is a healthy answer, not a failure: plain 404, no error
		// counter — the peer tier treats it as "fall through to compute".
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusNotFound)
		json.NewEncoder(w).Encode(struct {
			Error     string `json:"error"`
			Retriable bool   `json:"retriable"`
			Status    int    `json:"status"`
		}{"cache entry not held", false, http.StatusNotFound})
		return
	}
	q := telemetry.FromContext(r.Context())
	q.SetDigest(string(dig))
	q.SetCache("hit")
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Write(rescache.FrameEntry(b))
}

// handleCachePut is the cache-fill endpoint — the receiving side of hinted
// handoff and anti-entropy repair. The body is the same checksummed frame
// GET serves; it is verified before anything is stored, so a corrupted or
// truncated transfer changes nothing. Storing is idempotent.
func (s *Server) handleCachePut(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	switch ns {
	case rescache.NSMeasurement, rescache.NSFigure, rescache.NSSweep, rescache.NSWarm:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown cache namespace %q", ns))
		return
	}
	dig := rescache.Digest(r.PathValue("digest"))
	if !validDigest(string(dig)) {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("malformed digest %q", dig))
		return
	}
	framed, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("reading cache fill body: %w", err))
		return
	}
	payload, err := rescache.UnframeEntry(framed)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("cache fill frame rejected: %w", err))
		return
	}
	s.store.Put(ns, dig, payload)
	q := telemetry.FromContext(r.Context())
	q.SetDigest(string(dig))
	w.WriteHeader(http.StatusNoContent)
}

// handleCacheList serves the digest inventory of one namespace (memory ∪
// disk tiers) — the comparison input for the coordinator's anti-entropy
// repair pass.
func (s *Server) handleCacheList(w http.ResponseWriter, r *http.Request) {
	ns := r.PathValue("ns")
	switch ns {
	case rescache.NSMeasurement, rescache.NSFigure, rescache.NSSweep, rescache.NSWarm:
	default:
		s.fail(w, http.StatusBadRequest, fmt.Errorf("unknown cache namespace %q", ns))
		return
	}
	digests := s.store.Digests(ns)
	names := make([]string, len(digests))
	for i, d := range digests {
		names[i] = string(d)
	}
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(struct {
		Namespace string   `json:"namespace"`
		Count     int      `json:"count"`
		Digests   []string `json:"digests"`
	}{ns, len(names), names})
}

// validDigest accepts exactly the hex form rescache digests take; anything
// else is rejected before it can reach a disk path.
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// --- content digests ---

// FigureDigest is the content address of one figure result under preset p.
// Exported so the fleet coordinator computes the identical address its
// workers will answer under.
func FigureDigest(p experiments.Preset, id int) (rescache.Digest, error) {
	return FigureDigestSampled(p, id, 0)
}

// FigureDigestSampled is FigureDigest for a figure computed with SMARTS
// interval sampling at the given period. sampleQuanta 0 encodes to exactly
// the pre-sampling digest (omitempty), so existing exact caches stay valid;
// any other period addresses its own estimated result.
func FigureDigestSampled(p experiments.Preset, id, sampleQuanta int) (rescache.Digest, error) {
	return rescache.DigestJSON(struct {
		Schema       int                `json:"schema"`
		Kind         string             `json:"kind"`
		Preset       experiments.Preset `json:"preset"`
		Figure       int                `json:"figure"`
		Procs        []int              `json:"procs"`
		SampleQuanta int                `json:"sample_quanta,omitempty"`
	}{1, "figure", p, id, experiments.ProcCounts, sampleQuanta})
}

// SweepDigest is the content address of one sweep result under preset p
// (see FigureDigest).
func SweepDigest(p experiments.Preset, spec machine.Spec, q tpch.QueryID) (rescache.Digest, error) {
	return SweepDigestSampled(p, spec, q, 0)
}

// SweepDigestSampled is SweepDigest under interval sampling (see
// FigureDigestSampled for the compatibility contract).
func SweepDigestSampled(p experiments.Preset, spec machine.Spec, q tpch.QueryID, sampleQuanta int) (rescache.Digest, error) {
	return rescache.DigestJSON(struct {
		Schema       int                `json:"schema"`
		Kind         string             `json:"kind"`
		Preset       experiments.Preset `json:"preset"`
		Machine      machine.Spec       `json:"machine"`
		Query        string             `json:"query"`
		Procs        []int              `json:"procs"`
		SampleQuanta int                `json:"sample_quanta,omitempty"`
	}{1, "sweep", p, spec, q.String(), experiments.ProcCounts, sampleQuanta})
}

// MeasureDigest is the content address of one measurement under preset p:
// the canonical digest of the fully-defaulted workload options, identical to
// what the measure and sweep paths compute server-side.
func MeasureDigest(p experiments.Preset, q tpch.QueryID, procs int, opts workload.Options) rescache.Digest {
	env := &experiments.Env{Preset: p}
	return rescache.DigestOptions(p.SF, p.Seed, env.CanonicalOptions(q, procs, opts))
}

// --- response helpers ---

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func (s *Server) respond(w http.ResponseWriter, r *http.Request, hit bool, dig rescache.Digest, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	s.respondRaw(w, r, hit, dig, b)
}

func (s *Server) respondRaw(w http.ResponseWriter, r *http.Request, hit bool, dig rescache.Digest, body []byte) {
	q := telemetry.FromContext(r.Context())
	q.SetDigest(string(dig))
	q.SetCache(cacheWord(hit))
	defer q.StartPhase(telemetry.PhaseEncode)()
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("X-Cache", cacheWord(hit))
	h.Set("X-Digest", string(dig))
	w.Write(body)
	if len(body) > 0 && body[len(body)-1] != '\n' {
		w.Write([]byte("\n"))
	}
}

// failRun maps run errors to HTTP statuses. Transient conditions — load
// shedding, watchdog kills, timeouts, shutdown, isolated compute panics —
// are retriable (the digest was never cached, so the next attempt computes
// fresh); everything else is a 500.
func (s *Server) failRun(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, errOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, errWatchdog), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errShutdown):
		status = http.StatusServiceUnavailable
	case errors.Is(err, rescache.ErrPanicked):
		// Isolated and not cached; a retry gets a clean run.
		status = http.StatusServiceUnavailable
	}
	s.fail(w, status, err)
}

// retriable statuses are the ones internal/client retries: the request was
// well-formed and a later identical attempt can succeed.
func retriableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfterSeconds estimates when capacity frees up: mean run latency
// scaled by queue pressure, clamped to [1s, 60s].
func (s *Server) retryAfterSeconds() int {
	latCount, latSum := s.runSeconds.Snapshot()
	mean := 1.0
	if latCount > 0 {
		mean = latSum / float64(latCount)
	}
	est := int(mean*float64(s.queued.Load()+1)/float64(s.cfg.Workers)) + 1
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// fail writes the structured error body every non-200 response carries:
// {"error": ..., "retriable": bool, "status": N}. Retriable responses also
// carry Retry-After, which internal/client honours.
func (s *Server) fail(w http.ResponseWriter, status int, err error) {
	s.reqErrors.Inc()
	retriable := retriableStatus(status)
	h := w.Header()
	h.Set("Content-Type", "application/json")
	if retriable {
		h.Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(struct {
		Error     string `json:"error"`
		Retriable bool   `json:"retriable"`
		Status    int    `json:"status"`
	}{err.Error(), retriable, status})
}

// --- parameter parsing ---

// ParseMachine resolves the machine/cpus API parameters into a spec at the
// given memory scale. Exported for the fleet coordinator, which must parse
// requests exactly as its workers do — the spec feeds the content digest, so
// any divergence would shard requests under the wrong address.
func ParseMachine(name, cpus string, memScale int) (machine.Spec, error) {
	return parseMachine(name, cpus, memScale)
}

// ParseQuery resolves the query API parameter (same contract as ParseMachine).
func ParseQuery(name string) (tpch.QueryID, error) {
	return parseQuery(name)
}

func parseMachine(name, cpus string, memScale int) (machine.Spec, error) {
	n := 0
	if cpus != "" {
		var err error
		n, err = strconv.Atoi(cpus)
		if err != nil || n < 1 {
			return machine.Spec{}, fmt.Errorf("bad cpus %q", cpus)
		}
	}
	switch strings.ToLower(name) {
	case "", "vclass", "hpv", "v-class":
		if n == 0 {
			n = 16
		}
		return machine.VClassSpec(n, memScale), nil
	case "origin", "sgi", "origin2000":
		if n == 0 {
			n = 32
		}
		return machine.OriginSpec(n, memScale), nil
	case "starfire", "e10000":
		if n == 0 {
			n = 64
		}
		return machine.StarfireSpec(n, memScale), nil
	}
	return machine.Spec{}, fmt.Errorf("unknown machine %q (vclass|origin|starfire)", name)
}

func parseQuery(name string) (tpch.QueryID, error) {
	switch strings.ToUpper(name) {
	case "", "Q6":
		return tpch.Q6, nil
	case "Q21":
		return tpch.Q21, nil
	case "Q12":
		return tpch.Q12, nil
	case "Q1":
		return tpch.Q1, nil
	}
	return 0, fmt.Errorf("unknown query %q (Q6|Q21|Q12|Q1)", name)
}

func parseIntDefault(s string, def int) (int, error) {
	if s == "" {
		return def, nil
	}
	return strconv.Atoi(s)
}

func boolParam(r *http.Request, name string) bool {
	switch strings.ToLower(r.URL.Query().Get(name)) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}
