package fault

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"testing"
)

func TestDeterministicFromSeed(t *testing.T) {
	seq := func() []bool {
		in := New(42)
		in.Set(DiskReadErr, 0.5)
		out := make([]bool, 64)
		for i := range out {
			out[i] = in.Hit(DiskReadErr)
		}
		return out
	}
	a, b := seq(), seq()
	hits := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
		if a[i] {
			hits++
		}
	}
	if hits == 0 || hits == len(a) {
		t.Fatalf("p=0.5 fired %d/%d times", hits, len(a))
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.Hit(ComputePanic) {
		t.Fatal("nil injector fired")
	}
	if err := in.Err(DiskReadErr, "x"); err != nil {
		t.Fatalf("nil injector errored: %v", err)
	}
	if b := in.Corrupt(DiskReadCorrupt, []byte("abc")); string(b) != "abc" {
		t.Fatalf("nil injector corrupted: %q", b)
	}
	if d := in.StallFor(); d != 0 {
		t.Fatalf("nil injector stall = %v", d)
	}
}

func TestCorruptFlipsExactlyOneByteOfACopy(t *testing.T) {
	in := New(1)
	in.Set(DiskReadCorrupt, 1)
	orig := []byte("hello, checksummed world")
	got := in.Corrupt(DiskReadCorrupt, orig)
	if string(orig) != "hello, checksummed world" {
		t.Fatal("input mutated in place")
	}
	diff := 0
	for i := range orig {
		if orig[i] != got[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bytes differ, want 1", diff)
	}
}

func TestErrWrapsSentinel(t *testing.T) {
	in := New(1)
	in.Set(DiskWriteErr, 1)
	err := in.Err(DiskWriteErr, "write x")
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if errors.Is(err, fs.ErrNotExist) {
		t.Fatal("injected error must not look like a missing file")
	}
}

func TestDisableAllAndFired(t *testing.T) {
	in := New(7)
	in.Set(ComputePanic, 1)
	if !in.Hit(ComputePanic) {
		t.Fatal("p=1 did not fire")
	}
	in.DisableAll()
	if in.Hit(ComputePanic) {
		t.Fatal("fired after DisableAll")
	}
	if n := in.Fired()[ComputePanic]; n != 1 {
		t.Fatalf("fired count = %d, want 1", n)
	}
}

func TestParseSpec(t *testing.T) {
	m, err := ParseSpec("disk.read.err=0.25, compute.panic=0.01")
	if err != nil {
		t.Fatal(err)
	}
	if m[DiskReadErr] != 0.25 || m[ComputePanic] != 0.01 {
		t.Fatalf("parsed %v", m)
	}
	if m, err := ParseSpec(""); err != nil || len(m) != 0 {
		t.Fatalf("empty spec: %v %v", m, err)
	}
	for _, bad := range []string{"nope=0.1", "disk.read.err=2", "disk.read.err", "disk.read.err=x"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}

// osFS mirrors rescache's production filesystem for the wrapper test.
type osFS struct{}

func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }
func (osFS) WriteFile(name string, data []byte, perm fs.FileMode) error {
	return os.WriteFile(name, data, perm)
}
func (osFS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (osFS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error                     { return os.Remove(name) }
func (osFS) Glob(pattern string) ([]string, error)        { return filepath.Glob(pattern) }

func TestFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	in := New(3)
	in.Set(DiskWriteTorn, 1)
	f := FS{Inner: osFS{}, Inj: in}
	p := filepath.Join(dir, "torn")
	if err := f.WriteFile(p, []byte("0123456789"), 0o644); err != nil {
		t.Fatalf("torn write reported failure: %v", err)
	}
	b, err := os.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != "01234" {
		t.Fatalf("torn write left %q, want truncated prefix", b)
	}
}

func TestFSReadFaults(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "f")
	os.WriteFile(p, []byte("payload"), 0o644)

	in := New(9)
	in.Set(DiskReadErr, 1)
	f := FS{Inner: osFS{}, Inj: in}
	if _, err := f.ReadFile(p); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v", err)
	}
	in.DisableAll()
	in.Set(DiskReadCorrupt, 1)
	b, err := f.ReadFile(p)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) == "payload" {
		t.Fatal("corruption site did not corrupt")
	}
	// A missing file stays a missing file — never masked by injection.
	in.DisableAll()
	if _, err := f.ReadFile(filepath.Join(dir, "absent")); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("missing file err = %v", err)
	}
}
