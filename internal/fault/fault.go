// Package fault is the deterministic fault-injection layer behind the
// daemon's robustness tests. An Injector holds per-site firing probabilities
// over a seeded RNG, so a chaos run is reproducible from its seed; every
// production failure path — disk I/O errors, corrupted or torn cache bytes,
// latency stalls, compute panics, hung simulations — has a named site here,
// and the hardened code paths (internal/rescache, internal/service) consume
// faults through the same interfaces production uses, so the tested paths
// are the shipped paths.
//
// A nil *Injector is valid and injects nothing; production code calls the
// hook methods unconditionally.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Site names one injectable failure point.
type Site string

// The named sites. Disk sites are exercised by the FS wrapper around the
// result store; compute sites by the service's gated runner; SimStall by the
// simulation kernel's quantum-boundary hook.
const (
	DiskReadErr      Site = "disk.read.err"      // ReadFile fails with a non-NotExist error
	DiskReadCorrupt  Site = "disk.read.corrupt"  // ReadFile succeeds but a byte is flipped
	DiskWriteErr     Site = "disk.write.err"     // WriteFile/Rename fails
	DiskWriteTorn    Site = "disk.write.torn"    // WriteFile persists a truncated prefix yet reports success
	SimStall         Site = "sim.stall"          // a scheduling quantum stalls for StallFor
	ComputePanic     Site = "compute.panic"      // the run goroutine panics
	ComputeHang      Site = "compute.hang"       // the run wedges, ignoring cancellation
	NetDialErr       Site = "net.dial.err"       // an outbound HTTP request fails before any bytes move
	NetRespTruncated Site = "net.resp.truncated" // a response body is cut mid-stream
)

// Sites lists every known site in stable order.
func Sites() []Site {
	return []Site{
		DiskReadErr, DiskReadCorrupt, DiskWriteErr, DiskWriteTorn,
		SimStall, ComputePanic, ComputeHang,
		NetDialErr, NetRespTruncated,
	}
}

// ErrInjected is the sentinel wrapped by every injected error, so tests and
// callers can tell deliberate faults from organic ones with errors.Is.
var ErrInjected = errors.New("fault: injected")

// Injector decides, site by site, whether a fault fires. Safe for concurrent
// use. The zero probability for every site means the injector is inert.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	probs map[Site]float64
	fired map[Site]uint64
	stall time.Duration
}

// New returns an injector whose decisions are a pure function of seed and
// the call sequence.
func New(seed int64) *Injector {
	return &Injector{
		rng:   rand.New(rand.NewSource(seed)),
		probs: make(map[Site]float64),
		fired: make(map[Site]uint64),
	}
}

// Set makes site fire with probability p (clamped to [0, 1]).
func (in *Injector) Set(site Site, p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	in.mu.Lock()
	in.probs[site] = p
	in.mu.Unlock()
}

// SetStall sets the duration one SimStall firing blocks for.
func (in *Injector) SetStall(d time.Duration) {
	in.mu.Lock()
	in.stall = d
	in.mu.Unlock()
}

// StallFor reports the configured stall duration.
func (in *Injector) StallFor() time.Duration {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stall
}

// DisableAll zeroes every site's probability; fired counts are kept.
func (in *Injector) DisableAll() {
	in.mu.Lock()
	for s := range in.probs {
		in.probs[s] = 0
	}
	in.mu.Unlock()
}

// Hit reports whether site fires this time, advancing the RNG and the fired
// count when it does. Nil-safe.
func (in *Injector) Hit(site Site) bool {
	if in == nil {
		return false
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	p := in.probs[site]
	if p <= 0 {
		return false
	}
	if in.rng.Float64() >= p {
		return false
	}
	in.fired[site]++
	return true
}

// Err returns an injected error for site (or nil if it does not fire). op
// names the failed operation for the error message.
func (in *Injector) Err(site Site, op string) error {
	if !in.Hit(site) {
		return nil
	}
	return fmt.Errorf("%w: %s at %s", ErrInjected, op, site)
}

// Corrupt possibly flips one byte of b (a copy; b is never modified in
// place) when site fires. Empty input is returned unchanged.
func (in *Injector) Corrupt(site Site, b []byte) []byte {
	if len(b) == 0 || !in.Hit(site) {
		return b
	}
	in.mu.Lock()
	i := in.rng.Intn(len(b))
	in.mu.Unlock()
	c := make([]byte, len(b))
	copy(c, b)
	c[i] ^= 0xff
	return c
}

// Fired snapshots per-site firing counts.
func (in *Injector) Fired() map[Site]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Site]uint64, len(in.fired))
	for s, n := range in.fired {
		out[s] = n
	}
	return out
}

// String renders the non-zero configuration, for logs.
func (in *Injector) String() string {
	if in == nil {
		return "fault: none"
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	var parts []string
	for s, p := range in.probs {
		if p > 0 {
			parts = append(parts, fmt.Sprintf("%s=%g", s, p))
		}
	}
	sort.Strings(parts)
	if len(parts) == 0 {
		return "fault: none"
	}
	return "fault: " + strings.Join(parts, ",")
}

// ParseSpec parses a "site=prob,site=prob" flag value (e.g.
// "disk.read.err=0.05,compute.panic=0.01") against the known sites.
func ParseSpec(spec string) (map[Site]float64, error) {
	out := make(map[Site]float64)
	if strings.TrimSpace(spec) == "" {
		return out, nil
	}
	known := make(map[Site]bool, len(Sites()))
	for _, s := range Sites() {
		known[s] = true
	}
	for _, part := range strings.Split(spec, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("fault: bad spec element %q (want site=prob)", part)
		}
		site := Site(strings.TrimSpace(name))
		if !known[site] {
			return nil, fmt.Errorf("fault: unknown site %q (known: %v)", site, Sites())
		}
		p, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil || p < 0 || p > 1 {
			return nil, fmt.Errorf("fault: bad probability %q for %s", val, site)
		}
		out[site] = p
	}
	return out, nil
}

// Configure applies a parsed spec to an injector.
func (in *Injector) Configure(probs map[Site]float64) {
	for s, p := range probs {
		in.Set(s, p)
	}
}
